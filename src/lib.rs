//! # Free Atomics — a cycle-level reproduction
//!
//! This crate reproduces **"Free Atomics: Hardware Atomic Operations
//! without Fences"** (Asgharzadeh, Cebrian, Perais, Kaxiras, Ros —
//! ISCA 2022): a deterministic cycle-level multicore out-of-order simulator
//! with directory-based MESI coherence and cache locking, four atomic-RMW
//! execution policies (from the fenced x86 baseline to Free Atomics with
//! store-to-load forwarding to/from atomics), a 26-application synthetic
//! workload suite, and a benchmark harness regenerating every table and
//! figure of the paper's evaluation.
//!
//! The facade re-exports the workspace crates:
//!
//! * [`isa`] — guest ISA, micro-ops, assembler, golden-model interpreter
//! * [`mem`] — caches, coherence, cache locking, interconnect
//! * [`core`] — the out-of-order core, Atomic Queue and policies
//! * [`sim`] — machine driver, presets, energy model, litmus + TSO oracle
//! * [`workloads`] — the 26-kernel suite
//!
//! # Quickstart
//!
//! Run a contended fetch-add counter on four cores under two policies:
//!
//! ```
//! use free_atomics::prelude::*;
//!
//! // Guest kernel: 100 atomic increments of a shared counter.
//! let mut k = Kasm::new();
//! k.li(Reg::R1, 0x100);
//! k.li(Reg::R2, 1);
//! k.li(Reg::R3, 0);
//! let top = k.here_label();
//! k.fetch_add(Reg::R4, Reg::R1, 0, Reg::R2);
//! k.addi(Reg::R3, Reg::R3, 1);
//! k.blt_imm(Reg::R3, 100, top);
//! k.halt();
//! let prog = k.finish()?;
//!
//! let mut cycles = Vec::new();
//! for policy in [AtomicPolicy::FencedBaseline, AtomicPolicy::FreeFwd] {
//!     let mut cfg = icelake_like();
//!     cfg.core.policy = policy;
//!     let mut m = Machine::new(cfg, vec![prog.clone(); 4], GuestMem::new(1 << 16));
//!     let result = m.run(10_000_000).expect("quiesces");
//!     assert_eq!(m.guest_mem().load(0x100), 400); // atomicity holds
//!     cycles.push(result.cycles);
//! }
//! assert!(cycles[1] < cycles[0], "Free atomics must beat the fenced baseline");
//! # Ok::<(), free_atomics::isa::AsmError>(())
//! ```

pub use fa_core as core;
pub use fa_isa as isa;
pub use fa_mem as mem;
pub use fa_sim as sim;
pub use fa_workloads as workloads;

/// Convenient single-import surface for examples and downstream users.
pub mod prelude {
    pub use fa_core::{AtomicPolicy, Core, CoreConfig, CoreStats, SquashCause};
    pub use fa_isa::interp::{GuestMem, Interp, McInterp};
    pub use fa_isa::{AluOp, Cond, Instr, Kasm, Operand, Program, Reg, RmwOp};
    pub use fa_mem::{CoreId, MemConfig, MemorySystem};
    pub use fa_sim::axiom::{CheckReport, Execution, Violation};
    pub use fa_sim::energy::{EnergyBreakdown, EnergyModel};
    pub use fa_isa::MemOrder;
    pub use fa_sim::litmus::{LOp, LitmusTest};
    pub use fa_sim::{CheckMode, MemModel};
    pub use fa_sim::machine::{Machine, MachineConfig, RunResult};
    pub use fa_sim::methodology::{measure, Methodology};
    pub use fa_sim::presets::{icelake_like, skylake_like, tiny_machine};
    pub use fa_workloads::{suite, Workload, WorkloadParams, WorkloadSpec};
}
