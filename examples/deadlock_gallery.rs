//! The §3.2.5 deadlock gallery, live.
//!
//! Constructs each deadlock scenario the paper analyzes — RMW-RMW
//! (Figure 5), Store-RMW (Figure 6), Load-RMW (Figure 7) and the eviction
//! livelock (Figure 4) — runs it under Free Atomics with a deliberately
//! small watchdog, and shows the watchdog breaking it.
//!
//! ```sh
//! cargo run --example deadlock_gallery
//! ```

use free_atomics::prelude::*;

const A: i64 = 0x1000;
const B: i64 = 0x2000;

/// fetch_add(first); fetch_add(second) — two cores in opposite orders is
/// the Figure-5 shape.
fn rmw_rmw(first: i64, second: i64, iters: i64) -> Program {
    let mut k = Kasm::new();
    k.li(Reg::R1, first);
    k.li(Reg::R2, second);
    k.li(Reg::R3, 1);
    k.li(Reg::R4, 0);
    let top = k.here_label();
    k.fetch_add(Reg::R5, Reg::R1, 0, Reg::R3);
    k.fetch_add(Reg::R5, Reg::R2, 0, Reg::R3);
    k.addi(Reg::R4, Reg::R4, 1);
    k.blt_imm(Reg::R4, iters, top);
    k.halt();
    k.finish().unwrap()
}

/// st(mine); fetch_add(other) — crossed over two cores is the Figure-6
/// shape (the RMW commits only once the store drains; the store's GetX is
/// parked at the remote lock).
fn store_rmw(store_to: i64, rmw_on: i64, iters: i64) -> Program {
    let mut k = Kasm::new();
    k.li(Reg::R1, store_to);
    k.li(Reg::R2, rmw_on);
    k.li(Reg::R3, 1);
    k.li(Reg::R4, 0);
    let top = k.here_label();
    k.st(Reg::R3, Reg::R1, 0);
    k.fetch_add(Reg::R5, Reg::R2, 0, Reg::R3);
    k.addi(Reg::R4, Reg::R4, 1);
    k.blt_imm(Reg::R4, iters, top);
    k.halt();
    k.finish().unwrap()
}

/// ld(other); fetch_add(mine) — crossed is the Figure-7 shape (the load
/// parks at the remote lock; the speculative RMW locked its own line).
fn load_rmw(load_from: i64, rmw_on: i64, iters: i64) -> Program {
    let mut k = Kasm::new();
    k.li(Reg::R1, load_from);
    k.li(Reg::R2, rmw_on);
    k.li(Reg::R3, 1);
    k.li(Reg::R4, 0);
    let top = k.here_label();
    k.ld(Reg::R5, Reg::R1, 0);
    k.fetch_add(Reg::R6, Reg::R2, 0, Reg::R3);
    k.add(Reg::R7, Reg::R7, Reg::R5);
    k.addi(Reg::R4, Reg::R4, 1);
    k.blt_imm(Reg::R4, iters, top);
    k.halt();
    k.finish().unwrap()
}

/// More concurrent atomics than cache ways in one set: exercises the
/// "locked lines are never victims" rule and, with a tiny cache, the
/// all-ways-locked fill stall (Figure 4's livelock, made deadlock-safe).
fn set_pressure(iters: i64, lines: i64, set_stride: i64) -> Program {
    let mut k = Kasm::new();
    k.li(Reg::R3, 1);
    k.li(Reg::R4, 0);
    let top = k.here_label();
    for i in 0..lines {
        k.li(Reg::R1, 0x8000 + i * set_stride);
        k.fetch_add(Reg::R5, Reg::R1, 0, Reg::R3);
    }
    k.addi(Reg::R4, Reg::R4, 1);
    k.blt_imm(Reg::R4, iters, top);
    k.halt();
    k.finish().unwrap()
}

fn run_pair(name: &str, progs: Vec<Program>, cfg: MachineConfig) {
    let mut m = Machine::new(cfg, progs, GuestMem::new(1 << 20));
    let r = m.run(30_000_000).expect("the watchdog must guarantee progress");
    let agg = r.aggregate();
    println!(
        "{name:<28} completed in {:>8} cycles, watchdog fired {:>3}x, {} squashed uops",
        r.cycles,
        agg.watchdog_fires,
        agg.squashed_uops
    );
}

fn main() {
    let iters = 30;
    let mut cfg = tiny_machine();
    cfg.core.policy = AtomicPolicy::FreeFwd;
    cfg.core.watchdog_threshold = 300; // small, to show many recoveries fast

    println!("Free Atomics deadlock gallery (watchdog threshold = 300 cycles)\n");
    run_pair(
        "RMW-RMW (Fig. 5)",
        vec![rmw_rmw(A, B, iters), rmw_rmw(B, A, iters)],
        cfg.clone(),
    );
    run_pair(
        "Store-RMW (Fig. 6)",
        vec![store_rmw(A, B, iters), store_rmw(B, A, iters)],
        cfg.clone(),
    );
    run_pair(
        "Load-RMW (Fig. 7)",
        vec![load_rmw(A, B, iters), load_rmw(B, A, iters)],
        cfg.clone(),
    );
    run_pair(
        "set pressure (Fig. 4)",
        vec![set_pressure(iters, 2, 4 * 64 * 8); 2],
        cfg.clone(),
    );
    println!("\nEvery scenario made forward progress: only the lock-holding core");
    println!("ever squashes its own atomic, so re-execution cannot re-deadlock");
    println!("against the same instruction (the paper's progress invariant).");
}
