//! Lock-contention scaling study.
//!
//! Sweeps core counts on a ticket-lock critical section and prints the
//! execution time of the fenced baseline vs Free Atomics. Uncontended,
//! unfencing removes the whole serialization cost; under heavy contention
//! the critical path shifts to coherence hand-off latency, which no atomic
//! implementation can hide — the same reason the paper's biggest wins come
//! from kernels with many *uncontended or locality-friendly* atomics
//! (fluidanimate, barnes, canneal) and from lock-table kernels with
//! overlap opportunities (TATP, TPCC, AS).
//!
//! ```sh
//! cargo run --example counter_scaling
//! ```

use free_atomics::prelude::*;

/// Ticket-lock protected increment, `iters` times.
fn ticket_kernel(iters: i64) -> Program {
    let mut k = Kasm::new();
    let (lock, cnt, i, t0, t1, t2) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6);
    k.li(lock, 0x1000);
    k.li(cnt, 0x2000);
    k.li(i, 0);
    let top = k.here_label();
    // acquire: my = fetch_add(next); spin until serving == my
    k.li(t1, 1);
    k.fetch_add(t0, lock, 0, t1);
    let spin = k.here_label();
    let go = k.new_label();
    k.ld(t2, lock, 8);
    k.beq(t2, t0, go);
    k.pause();
    k.jump(spin);
    k.bind(go);
    // critical section
    k.ld(t2, cnt, 0);
    k.addi(t2, t2, 1);
    k.st(t2, cnt, 0);
    // release: serving += 1
    k.ld(t2, lock, 8);
    k.addi(t2, t2, 1);
    k.st(t2, lock, 8);
    k.addi(i, i, 1);
    k.blt_imm(i, iters, top);
    k.halt();
    k.finish().unwrap()
}

fn main() {
    let iters = 60;
    println!("ticket-lock critical section, {iters} acquisitions per core\n");
    println!(
        "{:<7} {:>12} {:>12} {:>9}",
        "cores", "baseline", "free+fwd", "speedup"
    );
    for cores in [1usize, 2, 4, 8, 16] {
        let mut cycles = Vec::new();
        for policy in [AtomicPolicy::FencedBaseline, AtomicPolicy::FreeFwd] {
            let mut cfg = icelake_like();
            cfg.core.policy = policy;
            let mut m = Machine::new(
                cfg,
                vec![ticket_kernel(iters); cores],
                GuestMem::new(1 << 16),
            );
            let r = m.run(200_000_000).expect("quiesces");
            assert_eq!(
                m.guest_mem().load(0x2000),
                (cores as u64) * iters as u64,
                "mutual exclusion violated"
            );
            cycles.push(r.cycles);
        }
        println!(
            "{:<7} {:>12} {:>12} {:>8.2}x",
            cores,
            cycles[0],
            cycles[1],
            cycles[0] as f64 / cycles[1] as f64
        );
    }
    println!("\nUncontended, unfencing wins outright; as contention rises the");
    println!("critical path becomes the lock hand-off itself (coherence latency),");
    println!("which bounds every implementation equally.");
}
