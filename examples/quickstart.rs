//! Quickstart: the paper's effect in one terminal screen.
//!
//! Runs a contended fetch-add counter on four cores under all four atomic
//! policies and prints the execution time of each — the minimal kernel in
//! which removing the fences around atomic RMWs pays off.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use free_atomics::prelude::*;

fn counter_kernel(iters: i64) -> Program {
    let mut k = Kasm::new();
    k.li(Reg::R1, 0x100); // counter address
    k.li(Reg::R2, 1);
    k.li(Reg::R3, 0);
    let top = k.here_label();
    k.fetch_add(Reg::R4, Reg::R1, 0, Reg::R2);
    k.addi(Reg::R3, Reg::R3, 1);
    k.blt_imm(Reg::R3, iters, top);
    k.halt();
    k.finish().expect("valid kernel")
}

fn main() {
    let cores = 4;
    let iters = 200;
    println!("{cores} cores x {iters} atomic increments of one shared counter\n");
    println!("{:<18} {:>10} {:>14} {:>10}", "policy", "cycles", "vs baseline", "timeouts");

    let mut baseline = None;
    for policy in AtomicPolicy::ALL {
        let mut cfg = icelake_like();
        cfg.core.policy = policy;
        let mut m = Machine::new(
            cfg,
            vec![counter_kernel(iters); cores],
            GuestMem::new(1 << 16),
        );
        let r = m.run(50_000_000).expect("machine quiesces");
        // Atomicity is architecturally guaranteed — check it anyway.
        assert_eq!(m.guest_mem().load(0x100), (cores as u64) * iters as u64);
        let base = *baseline.get_or_insert(r.cycles);
        let agg = r.aggregate();
        println!(
            "{:<18} {:>10} {:>13.1}% {:>10}",
            policy.label(),
            r.cycles,
            r.cycles as f64 * 100.0 / base as f64,
            agg.watchdog_fires,
        );
    }
    println!("\nLower is better. FreeAtomics+Fwd chains the atomics through");
    println!("store-to-load forwarding without ever releasing the line lock.");
}
