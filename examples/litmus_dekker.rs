//! Litmus tests against the operational x86-TSO oracle.
//!
//! Reproduces the paper's §3.4 argument (Figure 10): Dekker's algorithm
//! with atomic RMWs as barriers must never observe both loads reading 0 —
//! Free atomics are *type-1* atomics. Each litmus shape is run on the
//! detailed simulator under every policy and checked against the exhaustive
//! TSO reference enumeration.
//!
//! ```sh
//! cargo run --example litmus_dekker
//! ```

use free_atomics::prelude::*;

fn main() {
    let base = icelake_like();
    let offsets: [&[u64]; 5] = [&[], &[0, 60], &[60, 0], &[25, 0, 50, 10], &[100, 0]];
    for test in LitmusTest::all() {
        let allowed = test.allowed_outcomes();
        print!("{:<22} {} TSO-allowed outcomes; ", test.name, allowed.len());
        let mut observed_total = 0;
        for policy in AtomicPolicy::ALL {
            // verify_under panics on any TSO-forbidden observation.
            let observed = test.verify_under(&base, policy, &offsets);
            observed_total += observed.len();
        }
        println!("observed {observed_total} (all allowed) across 4 policies");
    }
    println!("\nEvery outcome the detailed machine produced is x86-TSO-legal.");
}
