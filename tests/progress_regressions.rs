//! Injected-hang regressions for the unified forward-progress framework.
//!
//! The deadlock gallery (`tests/deadlock_gallery.rs`) proves the §3.2.5
//! rescue valves *resolve* every wedge; this suite welds those valves shut
//! and proves the progress layer *detects* each wedge instead — promptly,
//! at the right site, and with the structured `SimError::NoProgress`
//! stuck-resource report. One scenario per site:
//!
//! * `core-commit` — the crossed-RMW deadlock of Figure 5, tipped into a
//!   permanent wedge by chaos-clamped MSHRs and a third core's load
//!   interference, with the core watchdog disabled: cores stop committing.
//! * `dir-alloc` — a directory set whose every way is held by a remotely
//!   locked line, starving a third core's allocation polls (the inclusion
//!   wedge, with and without injected chaos).
//! * `lsq-retry` — the same deadlock, plus a late-starting core that parks
//!   both chaos-clamped MSHRs on the permanently locked lines; its third
//!   miss then retries forever at the LSQ.
//! * `noc-backlog` — the interconnect cannot wedge by construction
//!   (queued messages always drain), so the detector plumbing is pinned
//!   with an artificially tiny backlog bound under a contended crossbar.
//!
//! A final golden-cleanliness test pins the other direction: on healthy
//! runs the escalation thresholds never trip, no rescue fires, and
//! results are bit-identical with the progress config on or off.

use free_atomics::mem::{ChaosConfig, NocConfig, ProgressConfig};
use free_atomics::prelude::*;
use free_atomics::sim::SimError;

const A: i64 = 0x1000;
const B: i64 = 0x2000;
const MEM: u64 = 1 << 20;

/// Effectively-infinite threshold for the sites a test does *not* target.
const HUGE: u64 = u64::MAX / 2;

/// The crossed-RMW loop of Figure 5 (same shape as the deadlock gallery):
/// with the watchdog disabled, two of these against each other deadlock
/// with both lines locked forever.
fn rmw_pair(first: i64, second: i64, iters: i64) -> Program {
    let mut k = Kasm::new();
    k.li(Reg::R1, first);
    k.li(Reg::R2, second);
    k.li(Reg::R3, 1);
    k.li(Reg::R4, 0);
    let top = k.here_label();
    k.fetch_add(Reg::R5, Reg::R1, 0, Reg::R3);
    k.fetch_add(Reg::R5, Reg::R2, 0, Reg::R3);
    k.addi(Reg::R4, Reg::R4, 1);
    k.blt_imm(Reg::R4, iters, top);
    k.halt();
    k.finish().unwrap()
}

/// Unwraps the expected escalation, or panics with whatever else happened.
fn expect_no_progress(r: Result<RunResult, SimError>) -> (&'static str, u64, u64) {
    match r {
        Err(SimError::NoProgress { site, observed, threshold, .. }) => {
            (site, observed, threshold)
        }
        Ok(r) => panic!("wedge resolved itself in {} cycles; nothing detected", r.cycles),
        Err(other) => panic!("expected NoProgress, got: {other}"),
    }
}

/// Three loads: two that interfere with (and, post-wedge, park on) the
/// crossed pair's lines, then a miss to an untouched third line.
fn three_loads() -> Program {
    let mut k = Kasm::new();
    k.li(Reg::R1, A);
    k.li(Reg::R2, B);
    k.li(Reg::R3, 0x5000);
    k.ld(Reg::R4, Reg::R1, 0);
    k.ld(Reg::R5, Reg::R2, 0);
    k.ld(Reg::R6, Reg::R3, 0);
    k.halt();
    k.finish().unwrap()
}

/// The base injected wedge: on the tiny machine, chaos-clamped MSHRs plus
/// a third core's load interference tip the crossed-RMW pair of Figure 5
/// into a *permanent* deadlock (empirically: 50M cycles without
/// quiescing) — the speculative re-locks never untangle. The watchdog is
/// welded shut so only the progress layer can notice.
fn wedge_cfg() -> MachineConfig {
    let mut cfg = tiny_machine();
    cfg.core.policy = AtomicPolicy::FreeFwd;
    cfg.core.watchdog_threshold = u64::MAX;
    cfg.mem.chaos = ChaosConfig { enabled: true, mshr_clamp: 2, ..ChaosConfig::default() };
    cfg
}

#[test]
fn crossed_rmw_wedge_is_detected_at_the_core_commit_site() {
    let mut cfg = wedge_cfg();
    cfg.mem.progress = ProgressConfig {
        enabled: true,
        stall_cycles: 20_000,
        max_attempts: HUGE,
        max_backlog: HUGE,
    };
    let progs = vec![rmw_pair(A, B, 50), rmw_pair(B, A, 50), three_loads()];
    let mut m = Machine::new(cfg, progs, GuestMem::new(MEM));
    let err = m.run(50_000_000).unwrap_err();
    // The stuck-resource report must surface the site in the message.
    assert!(err.to_string().contains("core-commit"), "report: {err}");
    let (site, observed, threshold) = expect_no_progress(Err(err));
    assert_eq!(site, "core-commit");
    assert_eq!(threshold, 20_000);
    assert!(observed > threshold);
    // Detection within the threshold, not the 50M-cycle budget: the stall
    // counter is checked every loop iteration, so escalation fires almost
    // immediately after the threshold is crossed.
    assert!(observed < threshold + 10_000, "late detection: stalled {observed} cycles");
}

#[test]
fn locked_out_directory_set_is_detected_at_the_dir_alloc_site() {
    // With and without injected chaos: storms only evict *idle* directory
    // entries, so the wedge below survives fault injection unchanged.
    for chaos in [ChaosConfig::default(), ChaosConfig::stress(0xD1CE)] {
        let mut cfg = tiny_machine();
        cfg.core.policy = AtomicPolicy::FreeFwd;
        cfg.core.watchdog_threshold = u64::MAX;
        // One directory set, two ways: the crossed pair's permanently
        // locked lines (A and B) occupy both, and locked entries are
        // never eviction victims — core 2's allocation polls starve.
        cfg.mem.dir_sets = 1;
        cfg.mem.dir_ways = 2;
        cfg.mem.chaos = chaos.clone();
        // Escalate well below the §3.2.5 rescue threshold (10 000 polls),
        // so this trips before the directory's own valve would fire.
        cfg.mem.progress = ProgressConfig {
            enabled: true,
            stall_cycles: HUGE,
            max_attempts: 2_000,
            max_backlog: HUGE,
        };
        let mut starved = Kasm::new();
        starved.li(Reg::R1, 0x4000);
        starved.li(Reg::R3, 1);
        starved.li(Reg::R4, 0);
        let top = starved.here_label();
        starved.fetch_add(Reg::R5, Reg::R1, 0, Reg::R3);
        starved.beq_imm(Reg::R4, 0, top); // unconditional: hammer forever
        starved.halt();
        let progs =
            vec![rmw_pair(A, B, 50), rmw_pair(B, A, 50), starved.finish().unwrap()];
        let mut m = Machine::new(cfg, progs, GuestMem::new(MEM));
        let (site, observed, threshold) = expect_no_progress(m.run(50_000_000));
        assert_eq!(site, "dir-alloc", "chaos {:?}", chaos.enabled);
        assert_eq!(threshold, 2_000);
        assert!(observed > threshold);
        // Polled every 1024 driver iterations; anything far beyond that
        // slack means the counter kept climbing undetected.
        assert!(observed < 50_000, "late detection: {observed} polls");
    }
}

#[test]
fn mshr_clamp_starvation_is_detected_at_the_lsq_retry_site() {
    let mut cfg = wedge_cfg();
    cfg.mem.progress = ProgressConfig {
        enabled: true,
        stall_cycles: HUGE,
        max_attempts: 500,
        max_backlog: HUGE,
    };
    // Core 3 starts well after the deadlock has formed: its loads of A and
    // B park both chaos-clamped MSHRs forever (remote requests to locked
    // lines are deferred until an unlock that never comes), so its third
    // miss gets `Retry` at the LSQ every cycle from then on.
    let progs =
        vec![rmw_pair(A, B, 50), rmw_pair(B, A, 50), three_loads(), three_loads()];
    let mut m = Machine::new(cfg, progs, GuestMem::new(MEM));
    m.set_start_offsets(vec![0, 0, 0, 30_000]);
    let (site, observed, threshold) = expect_no_progress(m.run(50_000_000));
    assert_eq!(site, "lsq-retry");
    assert_eq!(threshold, 500);
    assert!(observed > threshold);
    assert!(observed < 50_000, "late detection: {observed} consecutive retries");
}

#[test]
fn contended_interconnect_pressure_trips_the_noc_backlog_bound() {
    // The crossbar drains every queued message eventually, so a genuine
    // unbounded NoC wedge is impossible by construction; this pins the
    // sampling + escalation plumbing with a deliberately tiny bound that
    // ordinary miss traffic must exceed.
    let mut cfg = icelake_like();
    cfg.mem.noc = NocConfig::contended(1);
    cfg.mem.progress = ProgressConfig {
        enabled: true,
        stall_cycles: HUGE,
        max_attempts: HUGE,
        max_backlog: 8,
    };
    // Eight cores streaming misses over disjoint line sets.
    fn streamer(base: i64) -> Program {
        let mut k = Kasm::new();
        k.li(Reg::R4, 0);
        let top = k.here_label();
        for i in 0..16 {
            k.li(Reg::R1, base + i * 64);
            k.ld(Reg::R5, Reg::R1, 0);
        }
        k.addi(Reg::R4, Reg::R4, 1);
        k.blt_imm(Reg::R4, 64, top);
        k.halt();
        k.finish().unwrap()
    }
    let progs: Vec<Program> = (0..8).map(|c| streamer(0x10000 + c * 0x4000)).collect();
    let mut m = Machine::new(cfg, progs, GuestMem::new(MEM));
    let (site, observed, threshold) = expect_no_progress(m.run(50_000_000));
    assert_eq!(site, "noc-backlog");
    assert_eq!(threshold, 8);
    assert!(observed > threshold);
}

/// The other direction: on healthy runs — including gallery scenarios the
/// watchdog rescues — the wedge-sized default thresholds never trip, the
/// directory's rescue valve never fires, and enabling escalation changes
/// nothing observable.
#[test]
fn golden_runs_are_untouched_by_the_progress_layer() {
    let run = |progress: ProgressConfig| {
        let mut cfg = icelake_like();
        cfg.core.policy = AtomicPolicy::FreeFwd;
        cfg.core.watchdog_threshold = 400; // rescue valve active, as shipped
        cfg.mem.progress = progress;
        let progs = vec![rmw_pair(A, B, 50), rmw_pair(B, A, 50)];
        let mut m = Machine::new(cfg, progs, GuestMem::new(MEM));
        let r = m.run(50_000_000).expect("healthy run must complete");
        (r.cycles, r.mem.progress, m.guest_mem().load(A as u64))
    };
    let (cycles_on, stats_on, mem_on) = run(ProgressConfig::default());
    let (cycles_off, stats_off, mem_off) = run(ProgressConfig::off());
    // Zero rescue firings across golden runs; retry counters are honest
    // (the gallery scenario *does* retry) but far below escalation.
    assert_eq!(stats_on.dir_rescues, 0, "no dir rescue may fire on a golden run");
    assert!(stats_on.lsq_attempts_max < ProgressConfig::default().max_attempts);
    assert!(stats_on.dir_alloc_attempts_max < ProgressConfig::default().max_attempts);
    // Escalation is pure observation: bit-identical results either way.
    assert_eq!(cycles_on, cycles_off);
    assert_eq!(stats_on, stats_off);
    assert_eq!(mem_on, mem_off);
    assert_eq!(mem_on, 100, "crossed pair must still produce exact counts");
}
