//! Workload-suite correctness on the detailed machine: every kernel must
//! quiesce under every atomic policy, and the kernels with checkable
//! architectural invariants must produce exact results.

use free_atomics::prelude::*;
use free_atomics::workloads::kernels::{DATA_BASE, LOCK_BASE};

fn run_suite_workload(name: &str, policy: AtomicPolicy, cores: usize, scale: f64) -> Machine {
    let spec = suite::by_name(name).unwrap_or_else(|| panic!("unknown workload {name}"));
    let w = spec.build(&WorkloadParams { cores, scale, seed: 0xABCD });
    let mut cfg = icelake_like();
    cfg.core.policy = policy;
    let mut m = Machine::new(cfg, w.programs, w.mem);
    m.run(300_000_000).unwrap_or_else(|e| panic!("{name} under {policy:?}: {e}"));
    m
}

#[test]
fn every_workload_quiesces_under_every_policy() {
    for spec in suite::all() {
        for policy in AtomicPolicy::ALL {
            run_suite_workload(spec.name, policy, 3, 0.05);
        }
    }
}

#[test]
fn tpcc_record_counts_are_conserved() {
    for policy in [AtomicPolicy::FencedBaseline, AtomicPolicy::FreeFwd] {
        let m = run_suite_workload("TPCC", policy, 4, 0.1);
        // All locks released.
        for i in 0..128u64 {
            assert_eq!(m.guest_mem().load(LOCK_BASE as u64 + i * 64), 0, "{policy:?} lock {i}");
        }
        // Record touches: between 5 and 12 per iteration per core.
        let total: u64 =
            (0..128u64).map(|i| m.guest_mem().load(DATA_BASE as u64 + i * 64)).sum();
        let iters = 4 * 10; // cores * scaled(100, 0.1)
        assert!((iters * 5..=iters * 12).contains(&total), "{policy:?}: total {total}");
    }
}

#[test]
fn as_swap_multiset_is_preserved() {
    for policy in [AtomicPolicy::FencedBaseline, AtomicPolicy::Free, AtomicPolicy::FreeFwd] {
        let spec = suite::by_name("AS").unwrap();
        let w = spec.build(&WorkloadParams { cores: 4, scale: 0.1, seed: 7 });
        let before = (0..64u64)
            .map(|i| w.mem.load(DATA_BASE as u64 + i * 64))
            .fold(0u64, u64::wrapping_add);
        let mut cfg = icelake_like();
        cfg.core.policy = policy;
        let mut m = Machine::new(cfg, w.programs, w.mem);
        m.run(300_000_000).unwrap_or_else(|e| panic!("AS {policy:?}: {e}"));
        let after = (0..64u64)
            .map(|i| m.guest_mem().load(DATA_BASE as u64 + i * 64))
            .fold(0u64, u64::wrapping_add);
        // Swaps preserve the (wrapping) sum; rare same-index picks add at
        // most cores*iters increments.
        let max_incr = 4 * 25;
        let delta = after.wrapping_sub(before);
        assert!(delta <= max_incr, "{policy:?}: wrapping delta {delta}");
        // Every lock released.
        for i in 0..64u64 {
            assert_eq!(m.guest_mem().load(LOCK_BASE as u64 + i * 64), 0);
        }
    }
}

#[test]
fn cq_queue_is_conserved_and_empty() {
    use free_atomics::workloads::kernels::COUNTER_BASE;
    for policy in [AtomicPolicy::FencedBaseline, AtomicPolicy::FreeFwd] {
        let m = run_suite_workload("CQ", policy, 4, 0.1);
        let enq = m.guest_mem().load((COUNTER_BASE + 8) as u64);
        let deq = m.guest_mem().load((COUNTER_BASE + 64 + 8) as u64);
        assert_eq!(enq, deq, "{policy:?}: {enq} enqueued vs {deq} dequeued");
        assert_eq!(enq, 4 * 25, "{policy:?}");
        for s in 0..64u64 {
            assert_eq!(m.guest_mem().load(DATA_BASE as u64 + s * 64), 0, "slot {s}");
        }
    }
}

#[test]
fn rbt_tree_touches_are_exact() {
    for policy in [AtomicPolicy::FencedBaseline, AtomicPolicy::FreeFwd] {
        let m = run_suite_workload("RBT", policy, 3, 0.1);
        let depth = 8u64;
        let total: u64 =
            (0..(1 << depth)).map(|i| m.guest_mem().load(DATA_BASE as u64 + i * 8)).sum();
        assert_eq!(total, 3 * 15 * depth, "{policy:?}");
    }
}

#[test]
fn workload_results_are_policy_independent_where_deterministic() {
    // RBT's total is checked above per policy; here compare full data
    // regions between baseline and FreeFwd for a kernel whose final state
    // is schedule-independent (every node increment commutes).
    let a = run_suite_workload("RBT", AtomicPolicy::FencedBaseline, 3, 0.1);
    let b = run_suite_workload("RBT", AtomicPolicy::FreeFwd, 3, 0.1);
    for i in 0..(1u64 << 8) {
        assert_eq!(
            a.guest_mem().load(DATA_BASE as u64 + i * 8),
            b.guest_mem().load(DATA_BASE as u64 + i * 8),
            "node {i} diverged between policies"
        );
    }
}

#[test]
fn runs_are_bit_deterministic() {
    let run = || {
        let spec = suite::by_name("canneal").unwrap();
        let w = spec.build(&WorkloadParams { cores: 4, scale: 0.05, seed: 99 });
        let mut cfg = icelake_like();
        cfg.core.policy = AtomicPolicy::FreeFwd;
        let mut m = Machine::new(cfg, w.programs, w.mem);
        let r = m.run(100_000_000).expect("quiesces");
        (r.cycles, r.instructions())
    };
    assert_eq!(run(), run(), "identical runs must be bit-identical");
}
