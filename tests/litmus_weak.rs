//! Weak-memory conformance: the memlog-ported synchronization suite.
//!
//! Ported from temper's memlog `fence_atomic` / `atomic_fence` families:
//! every case pairs a release-side synchronizer (release fence or release
//! store before the flag write) with a reader-side one (acquire load or
//! acquire fence), in both directions:
//!
//! - **fenced**: the synchronized variant — the stale outcome is forbidden
//!   by the weak enumerator, never observed on the detailed machine, and
//!   the corresponding stale *history* is rejected by the parameterized
//!   axiomatic checker with a named `weak-ghb` violation carrying a
//!   minimal happens-before cycle;
//! - **stripped**: the reader-side synchronizer removed — the stale
//!   outcome becomes enumerator-allowed and the stale history
//!   checker-accepted, proving the suite would catch a frontend that
//!   silently strengthened (or the checker a model that silently
//!   weakened).
//!
//! One family deliberately breaks the symmetry: stripping the *release*
//! annotation of `memlog_mp_release_store` is architecturally unobservable
//! in this frontend, because the FIFO store buffer preserves W→W order for
//! relaxed stores too. That direction is asserted as a documented
//! always-pass invariant rather than silently skipped.

use free_atomics::prelude::*;
use free_atomics::sim::{
    axiom, run_cells, write_id, DataEvent, Execution, SerEvent, WRITE_ID_INIT,
};

fn offsets() -> [&'static [u64]; 6] {
    [&[], &[0, 40], &[40, 0], &[0, 90], &[90, 0], &[17, 43]]
}

/// One ported memlog family: the synchronized shape, the reader-stripped
/// shape, the stale observation vector the synchronization forbids, and
/// whether stripping is observable (false only for the release-store
/// family).
struct MemlogCase {
    fenced: LitmusTest,
    stripped: LitmusTest,
    stale: Vec<u64>,
    strip_observable: bool,
}

fn memlog_suite() -> Vec<MemlogCase> {
    vec![
        MemlogCase {
            fenced: LitmusTest::memlog_fence_atomic_acq_op(false),
            stripped: LitmusTest::memlog_fence_atomic_acq_op(true),
            stale: vec![1, 0],
            strip_observable: true,
        },
        MemlogCase {
            fenced: LitmusTest::memlog_atomic_fence_acq_fence(false),
            stripped: LitmusTest::memlog_atomic_fence_acq_fence(true),
            stale: vec![1, 0],
            strip_observable: true,
        },
        MemlogCase {
            fenced: LitmusTest::memlog_fence_atomic_chain(false),
            stripped: LitmusTest::memlog_fence_atomic_chain(true),
            stale: vec![1, 1, 0],
            strip_observable: true,
        },
        MemlogCase {
            fenced: LitmusTest::memlog_sb_sc_fence(false),
            stripped: LitmusTest::memlog_sb_sc_fence(true),
            stale: vec![0, 0],
            strip_observable: true,
        },
        MemlogCase {
            fenced: LitmusTest::memlog_sb_sc_store(false),
            stripped: LitmusTest::memlog_sb_sc_store(true),
            stale: vec![0, 0],
            strip_observable: true,
        },
        MemlogCase {
            fenced: LitmusTest::memlog_mp_release_store(false),
            stripped: LitmusTest::memlog_mp_release_store(true),
            stale: vec![1, 0],
            strip_observable: false,
        },
    ]
}

#[test]
fn memlog_enumerator_forbids_fenced_and_exposes_stripped() {
    for c in memlog_suite() {
        let fenced = c.fenced.allowed_outcomes_under(MemModel::Weak);
        assert!(
            !fenced.contains(&c.stale),
            "{}: synchronized variant must forbid {:?}",
            c.fenced.name,
            c.stale
        );
        let stripped = c.stripped.allowed_outcomes_under(MemModel::Weak);
        if c.strip_observable {
            assert!(
                stripped.contains(&c.stale),
                "{}: stripping the reader-side synchronizer must expose {:?}; \
                 allowed: {stripped:?}",
                c.stripped.name,
                c.stale
            );
        } else {
            // Documented always-pass invariant: the FIFO store buffer keeps
            // W->W order even for relaxed stores, so a stripped *release*
            // annotation changes nothing observable.
            assert!(
                !stripped.contains(&c.stale),
                "{}: release-side stripping must stay unobservable (FIFO SB)",
                c.stripped.name
            );
            assert_eq!(
                stripped,
                fenced,
                "{}: release-side stripping must not change the outcome set",
                c.stripped.name
            );
        }
    }
}

#[test]
fn memlog_suite_is_sound_on_weak_hardware_across_policies() {
    // Dual oracle on every run: verify_under_model asserts the observation
    // vector against the weak enumerator, and CheckMode::Tso arms the
    // full-execution conformance check inside Machine::run — which, with
    // cfg.core.model = Weak, validates the history against the weak
    // parameterized axioms before the outcome is even read.
    let base = icelake_like().with_check(CheckMode::Tso);
    for c in memlog_suite() {
        for t in [&c.fenced, &c.stripped] {
            for policy in AtomicPolicy::ALL {
                t.verify_under_model(&base, policy, MemModel::Weak, &offsets());
            }
        }
    }
}

#[test]
fn memlog_suite_is_sound_on_weak_hardware_across_nocs_and_presets() {
    // Timing variety (contended interconnect, tiny machine) must not
    // change soundness; the fenced/free extremes bound the policy space.
    let mut contended = icelake_like().with_check(CheckMode::Tso);
    contended.mem.noc = free_atomics::mem::NocConfig::contended(2);
    let tiny = tiny_machine().with_check(CheckMode::Tso);
    for base in [contended, tiny] {
        for c in memlog_suite() {
            for t in [&c.fenced, &c.stripped] {
                for policy in [AtomicPolicy::FencedBaseline, AtomicPolicy::FreeFwd] {
                    t.verify_under_model(&base, policy, MemModel::Weak, &offsets());
                }
            }
        }
    }
}

#[test]
fn memlog_hardware_outcomes_are_bit_identical_across_worker_threads() {
    // The acceptance bar: the whole suite's observation vectors, enumerated
    // over (case, variant, policy, offset set), are byte-identical whether
    // the grid fans across 1 or 8 sweep workers (the FA_THREADS axis).
    let suite = memlog_suite();
    let mut jobs: Vec<(usize, usize, usize, usize)> = Vec::new();
    for ci in 0..suite.len() {
        for variant in 0..2 {
            for (pi, _) in [AtomicPolicy::FencedBaseline, AtomicPolicy::FreeFwd]
                .iter()
                .enumerate()
            {
                for oi in 0..offsets().len() {
                    jobs.push((ci, variant, pi, oi));
                }
            }
        }
    }
    let run_all = |threads: usize| -> Vec<Vec<u64>> {
        run_cells(&jobs, threads, |_, &(ci, variant, pi, oi)| {
            let c = &suite[ci];
            let t = if variant == 0 { &c.fenced } else { &c.stripped };
            let policy = [AtomicPolicy::FencedBaseline, AtomicPolicy::FreeFwd][pi];
            let mut cfg = icelake_like();
            cfg.core.policy = policy;
            cfg.core.model = MemModel::Weak;
            t.run_detailed(&cfg, offsets()[oi])
        })
    };
    let serial = run_all(1);
    let parallel = run_all(8);
    assert_eq!(
        serial, parallel,
        "memlog outcomes must be bit-identical at FA_THREADS=1 and FA_THREADS=8"
    );
}

// ---------------------------------------------------------- checker side

const DATA: u64 = 0x1000;
const FLAG: u64 = 0x1040;
const FLAG2: u64 = 0x1080;

/// The reader-side synchronizer of a synthetic stale-MP history.
#[derive(Clone, Copy, PartialEq)]
enum Sync {
    AcqLoad,
    AcqFence,
    None,
}

/// Builds the stale message-passing history: writer publishes `data=42`
/// then `flag=1` (with `writer_rel` annotating the flag store Release),
/// reader sees `flag=1` but stale `data=0` — exactly the execution the
/// detailed machine would log if it violated the synchronization.
fn stale_mp(sync: Sync, writer_rel: bool) -> Execution {
    let st_ord = if writer_rel { MemOrder::Release } else { MemOrder::Relaxed };
    let writer = vec![
        DataEvent::Store { seq: 1, addr: DATA, value: 42, ord: MemOrder::Relaxed },
        DataEvent::Store { seq: 2, addr: FLAG, value: 1, ord: st_ord },
    ];
    let flag_ord = if sync == Sync::AcqLoad { MemOrder::Acquire } else { MemOrder::Relaxed };
    let mut reader = vec![DataEvent::Load {
        seq: 1,
        addr: FLAG,
        value: 1,
        writer: write_id(0, 2),
        ord: flag_ord,
    }];
    if sync == Sync::AcqFence {
        reader.push(DataEvent::Fence { seq: 2, ord: MemOrder::Acquire });
    }
    reader.push(DataEvent::Load {
        seq: 3,
        addr: DATA,
        value: 0,
        writer: WRITE_ID_INIT,
        ord: MemOrder::Relaxed,
    });
    Execution {
        cores: vec![writer, reader],
        ser: vec![
            SerEvent { addr: DATA, writer: write_id(0, 1), value: 42, epoch: 0, under_lock: false },
            SerEvent { addr: FLAG, writer: write_id(0, 2), value: 1, epoch: 0, under_lock: false },
        ],
    }
}

/// Builds the stale Dekker history: both threads store 1 then read the
/// other's location as 0, with either SC fences between (`sc_fence`) or
/// SC store annotations (`sc_store`).
fn stale_sb(sc_fence: bool, sc_store: bool) -> Execution {
    let ord = if sc_store { MemOrder::SeqCst } else { MemOrder::Relaxed };
    let thread = |addr_w: u64, addr_r: u64| {
        let mut evs = vec![DataEvent::Store { seq: 1, addr: addr_w, value: 1, ord }];
        if sc_fence {
            evs.push(DataEvent::Fence { seq: 2, ord: MemOrder::SeqCst });
        }
        evs.push(DataEvent::Load {
            seq: 3,
            addr: addr_r,
            value: 0,
            writer: WRITE_ID_INIT,
            ord: MemOrder::Relaxed,
        });
        evs
    };
    Execution {
        cores: vec![thread(DATA, FLAG), thread(FLAG, DATA)],
        ser: vec![
            SerEvent { addr: DATA, writer: write_id(0, 1), value: 1, epoch: 0, under_lock: false },
            SerEvent { addr: FLAG, writer: write_id(1, 1), value: 1, epoch: 0, under_lock: false },
        ],
    }
}

/// Builds the stale release-chain history: T0 publishes data+flag, T1
/// consumes the flag and republishes flag2, T2 consumes flag2 but reads
/// stale data. `acq` annotates both consumer loads.
fn stale_chain(acq: bool) -> Execution {
    let ord = if acq { MemOrder::Acquire } else { MemOrder::Relaxed };
    Execution {
        cores: vec![
            vec![
                DataEvent::Store { seq: 1, addr: DATA, value: 42, ord: MemOrder::Relaxed },
                DataEvent::Store { seq: 2, addr: FLAG, value: 1, ord: MemOrder::Release },
            ],
            vec![
                DataEvent::Load { seq: 1, addr: FLAG, value: 1, writer: write_id(0, 2), ord },
                DataEvent::Store { seq: 2, addr: FLAG2, value: 1, ord: MemOrder::Release },
            ],
            vec![
                DataEvent::Load { seq: 1, addr: FLAG2, value: 1, writer: write_id(1, 2), ord },
                DataEvent::Load {
                    seq: 2,
                    addr: DATA,
                    value: 0,
                    writer: WRITE_ID_INIT,
                    ord: MemOrder::Relaxed,
                },
            ],
        ],
        ser: vec![
            SerEvent { addr: DATA, writer: write_id(0, 1), value: 42, epoch: 0, under_lock: false },
            SerEvent { addr: FLAG, writer: write_id(0, 2), value: 1, epoch: 0, under_lock: false },
            SerEvent { addr: FLAG2, writer: write_id(1, 2), value: 1, epoch: 0, under_lock: false },
        ],
    }
}

fn assert_weak_ghb_cycle(x: &Execution, what: &str) {
    let v = axiom::check_model(x, MemModel::Weak)
        .expect_err(&format!("{what}: stale history must be rejected"));
    assert_eq!(v.axiom, "weak-ghb", "{what}: the named axiom must be the weak ghb");
    assert!(
        v.detail.contains("global-happens-before cycle"),
        "{what}: the violation must carry the witnessing cycle: {}",
        v.detail
    );
    assert!(
        v.detail.contains("[rfe]"),
        "{what}: the stale-read cycle crosses cores via rfe: {}",
        v.detail
    );
}

#[test]
fn checker_witnesses_cycles_for_synchronized_stale_histories() {
    // Fenced direction: each family's stale history, with its
    // synchronization present, is rejected with a named weak-ghb cycle.
    assert_weak_ghb_cycle(&stale_mp(Sync::AcqLoad, false), "memlog-fence-atomic-acq-op");
    assert_weak_ghb_cycle(&stale_mp(Sync::AcqFence, false), "memlog-atomic-fence");
    assert_weak_ghb_cycle(&stale_mp(Sync::AcqLoad, true), "memlog-mp-release-store");
    assert_weak_ghb_cycle(&stale_chain(true), "memlog-fence-atomic-chain");
    // The Dekker shapes trip the cycle through po-wb / SC-store edges
    // rather than rfe — check them with the label they actually use.
    for (x, what, label) in [
        (stale_sb(true, false), "memlog-sb-sc-fence", "[po-wb]"),
        (stale_sb(false, true), "memlog-sb-sc-store", "[po]"),
    ] {
        let v = axiom::check_model(&x, MemModel::Weak)
            .expect_err(&format!("{what}: stale history must be rejected"));
        assert_eq!(v.axiom, "weak-ghb", "{what}");
        assert!(v.detail.contains("global-happens-before cycle"), "{what}: {}", v.detail);
        assert!(v.detail.contains(label), "{what} must cycle through {label}: {}", v.detail);
    }
}

#[test]
fn checker_accepts_stripped_stale_histories() {
    // Stripped direction: remove the reader-side synchronizer and the very
    // same stale values become weak-legal — the checker must accept, or it
    // would be enforcing more than the model.
    for (x, what) in [
        (stale_mp(Sync::None, false), "memlog-fence-atomic-acq-op-stripped"),
        (stale_mp(Sync::None, true), "memlog-mp-release-store reader-stripped"),
        (stale_chain(false), "memlog-fence-atomic-chain-stripped"),
        (stale_sb(false, false), "memlog-sb-stripped"),
    ] {
        if let Err(v) = axiom::check_model(&x, MemModel::Weak) {
            panic!("{what}: stripped stale history must be weak-legal, got {v}");
        }
    }
    // The stale MP histories are TSO-illegal even without annotations —
    // the parameterization is doing real work, not just renaming the
    // axiom — while the stale SB history is TSO-legal too, W->R being
    // TSO's own defining relaxation.
    for (x, what) in [
        (stale_mp(Sync::None, false), "mp"),
        (stale_mp(Sync::None, true), "mp-rel"),
        (stale_chain(false), "chain"),
    ] {
        let v = axiom::check_model(&x, MemModel::Tso)
            .expect_err("stale MP histories violate TSO regardless of annotations");
        assert_eq!(v.axiom, "tso-ghb", "{what}");
    }
    assert!(
        axiom::check_model(&stale_sb(false, false), MemModel::Tso).is_ok(),
        "the unfenced Dekker outcome is TSO-legal (store-buffer relaxation)"
    );
}

#[test]
fn release_side_stripping_is_unobservable_and_documented() {
    // The invariant in full: with the reader acquire kept, the stale
    // history is rejected whether or not the writer's release annotation
    // survives — W->W rides the FIFO store buffer — so release-side
    // stripping can never be caught by an outcome assertion, only by this
    // history-level one.
    assert_weak_ghb_cycle(&stale_mp(Sync::AcqLoad, true), "release kept");
    assert_weak_ghb_cycle(&stale_mp(Sync::AcqLoad, false), "release stripped");
    // And on hardware the stripped variant still never shows the stale
    // outcome, across the same offset spread the suite uses.
    let t = LitmusTest::memlog_mp_release_store(true);
    let mut cfg = icelake_like();
    cfg.core.policy = AtomicPolicy::FreeFwd;
    cfg.core.model = MemModel::Weak;
    for off in offsets() {
        let o = t.run_detailed(&cfg, off);
        assert!(
            !(o[0] == 1 && o[1] == 0),
            "release-side stripping must stay unobservable, saw {o:?}"
        );
    }
}
