//! Property-based validation of the detailed model.
//!
//! Five families:
//!
//! 1. **Golden-model equivalence** — random single-threaded programs must
//!    leave identical architectural state on the out-of-order machine and
//!    the sequential interpreter, under every atomic policy.
//! 2. **Atomicity** — random multi-core atomic mixes over a small set of
//!    shared counters must commute to the exact expected totals.
//! 3. **TSO soundness** — randomly generated litmus shapes run on the
//!    detailed machine must only ever produce outcomes the operational
//!    x86-TSO enumerator allows.
//! 4. **Oracle vs oracle** — synthetic executions produced by a
//!    schedule-driven operational TSO machine (explicit store buffers)
//!    must yield outcomes the enumerator allows AND histories the
//!    axiomatic checker accepts; corrupting one value in the history must
//!    flip the checker to reject.
//! 5. **Oracle vs oracle, weak** — the same agreement property under the
//!    ARM-like weak baseline: a schedule-driven weak operational machine
//!    (load hoisting, FIFO store buffers, SC-store load gates) against
//!    `enumerate_weak_outcomes` and `axiom::check_model(.., Weak)`, plus
//!    the corrupted-rf rejection case under the weak model.

use free_atomics::prelude::*;
use free_atomics::sim::{axiom, write_id, DataEvent, SerEvent, WRITE_ID_INIT};
use proptest::prelude::*;
use std::collections::{HashMap, VecDeque};

const MEM: u64 = 1 << 16;

// ---------------------------------------------------------------- family 1

/// A tiny structured program generator: a loop over random straight-line
/// bodies of ALU ops, loads, stores and RMWs on a private region.
#[derive(Clone, Debug)]
enum BodyOp {
    Alu(u8, u8, u8, i64),
    Load(u8, i64),
    Store(u8, i64),
    Rmw(u8, u8, i64),
    SkipIfOdd(u8),
}

fn reg(i: u8) -> Reg {
    Reg::new(1 + (i % 12))
}

fn alu_of(i: u8) -> AluOp {
    const OPS: [AluOp; 8] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Mul,
        AluOp::Shl,
        AluOp::SltU,
    ];
    OPS[(i % 8) as usize]
}

fn body_op() -> impl Strategy<Value = BodyOp> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), any::<u8>(), 0i64..64).prop_map(|(a, b, c, i)| BodyOp::Alu(a, b, c, i)),
        (any::<u8>(), 0i64..32).prop_map(|(r, s)| BodyOp::Load(r, s)),
        (any::<u8>(), 0i64..32).prop_map(|(r, s)| BodyOp::Store(r, s)),
        (any::<u8>(), any::<u8>(), 0i64..8).prop_map(|(d, s, a)| BodyOp::Rmw(d, s, a)),
        any::<u8>().prop_map(BodyOp::SkipIfOdd),
    ]
}

fn build_program(ops: &[BodyOp], loop_iters: i64) -> Program {
    let mut k = Kasm::new();
    let base = Reg::R14;
    let idx = Reg::R15;
    k.li(base, 0x4000);
    k.li(idx, 0);
    let top = k.here_label();
    for op in ops {
        match *op {
            BodyOp::Alu(a, b, c, imm) => {
                if imm % 2 == 0 {
                    k.alu(alu_of(a), reg(b), reg(c), Operand::Imm(imm));
                } else {
                    k.alu(alu_of(a), reg(b), reg(c), Operand::Reg(reg(a)));
                }
            }
            BodyOp::Load(r, slot) => {
                k.ld(reg(r), base, slot * 8);
            }
            BodyOp::Store(r, slot) => {
                k.st(reg(r), base, slot * 8);
            }
            BodyOp::Rmw(d, s, slot) => {
                // dst must differ from base (reg() never returns R14) and
                // from src (ISA validation rejects the alias).
                let d = if reg(d) == reg(s) { d.wrapping_add(1) } else { d };
                k.fetch_add(reg(d), base, 0x100 + slot * 8, reg(s));
            }
            BodyOp::SkipIfOdd(r) => {
                let skip = k.new_label();
                let tmp = Reg::R13;
                k.and(tmp, reg(r), 1);
                k.bne_imm(tmp, 0, skip);
                k.addi(reg(r), reg(r), 3);
                k.bind(skip);
            }
        }
    }
    k.addi(idx, idx, 1);
    k.blt_imm(idx, loop_iters, top);
    k.st(Reg::R1, base, 0x800);
    k.halt();
    k.finish().expect("generated programs are valid")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn random_programs_match_golden_model(
        ops in prop::collection::vec(body_op(), 1..18),
        iters in 1i64..24,
        policy_idx in 0usize..4,
    ) {
        let prog = build_program(&ops, iters);
        let mut golden = Interp::new(prog.clone(), MEM);
        golden.run(4_000_000).expect("golden completes");

        let mut cfg = icelake_like();
        cfg.core.policy = AtomicPolicy::ALL[policy_idx];
        let mut m = Machine::new(cfg, vec![prog], GuestMem::new(MEM));
        let r = m.run(40_000_000).expect("detailed completes");

        // Full data-region equivalence.
        for slot in 0..0x120u64 {
            prop_assert_eq!(
                m.guest_mem().load(0x4000 + slot * 8),
                golden.mem().load(0x4000 + slot * 8),
                "slot {} diverged", slot
            );
        }
        prop_assert_eq!(r.instructions(), golden.executed);
    }
}

// ---------------------------------------------------------------- family 2

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, .. ProptestConfig::default() })]

    #[test]
    fn random_atomic_mixes_are_exact(
        per_core_iters in prop::collection::vec(1i64..25, 2..5),
        counters in 1i64..4,
        policy_idx in 0usize..4,
        seed in any::<u64>(),
    ) {
        // Each core fetch-adds a per-core-chosen constant into round-robin
        // counters; expected totals are computable exactly.
        let n = per_core_iters.len();
        let progs: Vec<Program> = per_core_iters
            .iter()
            .enumerate()
            .map(|(tid, &iters)| {
                let mut k = Kasm::new();
                let (a, v, i) = (Reg::R1, Reg::R2, Reg::R3);
                k.li(v, (tid + 1) as i64);
                k.li(i, 0);
                let top = k.here_label();
                // counter index = i % counters (unrolled modulo via mask-free
                // subtract loop is overkill; use multiples of 8 addressing).
                for c in 0..counters {
                    let skip = k.new_label();
                    k.li(Reg::R5, counters);
                    k.alu(AluOp::Mul, Reg::R6, i, Operand::Imm(0)); // R6 = 0
                    let _ = seed;
                    k.li(a, 0x1000 + c * 64);
                    k.and(Reg::R6, i, (counters - 1).max(0));
                    k.bne_imm(Reg::R6, c, skip);
                    k.fetch_add(Reg::R4, a, 0, v);
                    k.bind(skip);
                }
                k.addi(i, i, 1);
                k.blt_imm(i, iters, top);
                k.halt();
                k.finish().unwrap()
            })
            .collect();
        let mut cfg = icelake_like();
        cfg.core.policy = AtomicPolicy::ALL[policy_idx];
        let mut m = Machine::new(cfg, progs, GuestMem::new(MEM));
        m.run(60_000_000).expect("quiesces");

        // Expected: for each counter c, sum over cores of (tid+1) * count of
        // i in [0,iters) with (i & (counters-1)) == c.
        for c in 0..counters {
            let mut expect = 0u64;
            for (tid, &iters) in per_core_iters.iter().enumerate() {
                let hits = (0..iters).filter(|i| i & (counters - 1) == c).count() as u64;
                expect += (tid as u64 + 1) * hits;
            }
            prop_assert_eq!(m.guest_mem().load((0x1000 + c * 64) as u64), expect);
        }
        let _ = n;
    }
}

// ---------------------------------------------------------------- family 3

fn litmus_op() -> impl Strategy<Value = (u8, u8, u8)> {
    // (kind, addr, value) — out slots are assigned post hoc.
    (0u8..3, 0u8..3, 1u8..4)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    #[test]
    fn random_litmus_shapes_are_tso_sound(
        t0 in prop::collection::vec(litmus_op(), 1..4),
        t1 in prop::collection::vec(litmus_op(), 1..4),
        policy_idx in 0usize..4,
        offset in 0u64..80,
    ) {
        let mut next_out = 0u8;
        let mut mk = |ops: &[(u8, u8, u8)]| -> Vec<LOp> {
            ops.iter()
                .map(|&(kind, addr, val)| match kind {
                    0 => LOp::st(addr, val as u64),
                    1 => {
                        let out = next_out;
                        next_out += 1;
                        LOp::ld(addr, out)
                    }
                    _ => {
                        let out = next_out;
                        next_out += 1;
                        LOp::fadd(addr, val as u64, out)
                    }
                })
                .collect()
        };
        let threads = vec![mk(&t0), mk(&t1)];
        let test = LitmusTest { name: "random", threads };
        let base = icelake_like();
        let offsets: [&[u64]; 2] = [&[], &[offset, 0]];
        test.verify_under(&base, AtomicPolicy::ALL[policy_idx], &offsets);
    }
}

// ---------------------------------------------------------------- family 4

/// Maps an abstract litmus location to a guest address (one line apart),
/// mirroring the harness's layout so events look like the real machine's.
fn f4_loc(a: u8) -> u64 {
    0x1000 + (a as u64) * 64
}

/// A small operational x86-TSO machine with explicit per-thread store
/// buffers, driven by an arbitrary schedule. Returns the outcome vector
/// plus the execution history in exactly the shape the detailed simulator
/// emits: per-core committed [`DataEvent`]s (RMW = `LoadLock` at seq `s`
/// plus `StoreUnlock` at `s+2`, store-buffer-forwarded loads reading
/// their own store's write-id) and the global write-serialization order.
fn run_operational_tso(
    threads: &[Vec<LOp>],
    schedule: &[u16],
    num_outs: usize,
) -> (Vec<u64>, free_atomics::sim::Execution) {
    struct Thread<'a> {
        ops: &'a [LOp],
        pc: usize,
        seq: u64,
        sb: VecDeque<(u64, u64, u64)>, // (seq, addr, value)
        events: Vec<DataEvent>,
    }
    let mut ts: Vec<Thread> = threads
        .iter()
        .map(|ops| Thread { ops, pc: 0, seq: 1, sb: VecDeque::new(), events: Vec::new() })
        .collect();
    let mut mem: HashMap<u64, u64> = HashMap::new();
    let mut last_writer: HashMap<u64, u64> = HashMap::new();
    let mut ser: Vec<SerEvent> = Vec::new();
    let mut outs = vec![0u64; num_outs];
    let mut step = 0usize;
    loop {
        // Enabled actions: (thread, is_drain). Executing a Fence or RMW
        // requires an empty store buffer (they drain first on x86);
        // draining requires a non-empty one — so some action is always
        // enabled until every thread is done and drained.
        let mut enabled: Vec<(usize, bool)> = Vec::new();
        for (i, t) in ts.iter().enumerate() {
            if t.pc < t.ops.len() {
                let needs_empty_sb =
                    matches!(t.ops[t.pc], LOp::Fence { .. } | LOp::FetchAdd { .. });
                if !needs_empty_sb || t.sb.is_empty() {
                    enabled.push((i, false));
                }
            }
            if !t.sb.is_empty() {
                enabled.push((i, true));
            }
        }
        if enabled.is_empty() {
            break;
        }
        let pick = schedule[step % schedule.len()] as usize % enabled.len();
        step += 1;
        let (i, drain) = enabled[pick];
        let core = i as u16;
        let t = &mut ts[i];
        if drain {
            let (sseq, addr, value) = t.sb.pop_front().expect("drain picked on non-empty SB");
            let wid = write_id(core, sseq);
            mem.insert(addr, value);
            last_writer.insert(addr, wid);
            ser.push(SerEvent { addr, writer: wid, value, epoch: 0, under_lock: false });
            continue;
        }
        match t.ops[t.pc] {
            LOp::St { addr, val, ord } => {
                let addr = f4_loc(addr);
                t.sb.push_back((t.seq, addr, val));
                t.events.push(DataEvent::Store { seq: t.seq, addr, value: val, ord });
                t.seq += 1;
            }
            LOp::Ld { addr, out, ord } => {
                let addr = f4_loc(addr);
                // Newest same-address store-buffer entry forwards; its
                // write-id is the rf source even before it performs.
                let (value, writer) = match t.sb.iter().rev().find(|e| e.1 == addr) {
                    Some(&(sseq, _, v)) => (v, write_id(core, sseq)),
                    None => (
                        mem.get(&addr).copied().unwrap_or(0),
                        last_writer.get(&addr).copied().unwrap_or(WRITE_ID_INIT),
                    ),
                };
                t.events.push(DataEvent::Load { seq: t.seq, addr, value, writer, ord });
                outs[out as usize] = value;
                t.seq += 1;
            }
            LOp::FetchAdd { addr, val, out, .. } => {
                let addr = f4_loc(addr);
                // SB is empty here; the read-modify-write is one atomic
                // step. The µop triple occupies seqs s, s+1, s+2.
                let old = mem.get(&addr).copied().unwrap_or(0);
                let writer = last_writer.get(&addr).copied().unwrap_or(WRITE_ID_INIT);
                let new = old.wrapping_add(val);
                let su_seq = t.seq + 2;
                let wid = write_id(core, su_seq);
                t.events.push(DataEvent::LoadLock { seq: t.seq, addr, value: old, writer });
                t.events.push(DataEvent::StoreUnlock { seq: su_seq, addr, value: new });
                mem.insert(addr, new);
                last_writer.insert(addr, wid);
                ser.push(SerEvent { addr, writer: wid, value: new, epoch: 0, under_lock: true });
                outs[out as usize] = old;
                t.seq += 3;
            }
            LOp::Fence { ord } => {
                t.events.push(DataEvent::Fence { seq: t.seq, ord });
                t.seq += 1;
            }
        }
        t.pc += 1;
    }
    let cores = ts.into_iter().map(|t| t.events).collect();
    (outs, free_atomics::sim::Execution { cores, ser })
}

fn family4_op() -> impl Strategy<Value = (u8, u8, u8, u8)> {
    // (kind: St/Ld/FetchAdd/Fence, addr, value, ordering index). Under
    // TSO the annotation is inert; under weak it selects the hardware
    // ordering strength.
    (0u8..4, 0u8..3, 1u8..4, 0u8..MemOrder::ALL.len() as u8)
}

/// Builds two litmus threads from raw generator tuples, assigning
/// observation slots in encounter order. Thread 0 is prefixed with a
/// plain store so the corruption step always has a write to mutate.
fn family4_threads(t0: &[(u8, u8, u8, u8)], t1: &[(u8, u8, u8, u8)]) -> Vec<Vec<LOp>> {
    let mut next_out = 0u8;
    let mut mk = |ops: &[(u8, u8, u8, u8)]| -> Vec<LOp> {
        ops.iter()
            .map(|&(kind, addr, val, ord)| {
                let ord = MemOrder::ALL[ord as usize];
                match kind {
                    0 => LOp::st_ord(addr, val as u64, ord),
                    1 => {
                        let out = next_out;
                        next_out += 1;
                        LOp::ld_ord(addr, out, ord)
                    }
                    2 => {
                        let out = next_out;
                        next_out += 1;
                        LOp::fadd(addr, val as u64, out)
                    }
                    _ => LOp::fence_ord(ord),
                }
            })
            .collect()
    };
    let mut first = vec![LOp::st(0, 7)];
    first.extend(mk(t0));
    vec![first, mk(t1)]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn synthetic_tso_histories_satisfy_both_oracles(
        t0 in prop::collection::vec(family4_op(), 1..4),
        t1 in prop::collection::vec(family4_op(), 1..4),
        schedule in prop::collection::vec(any::<u16>(), 8..32),
    ) {
        let threads = family4_threads(&t0, &t1);
        let test = LitmusTest { name: "family4", threads: threads.clone() };

        let (outs, x) = run_operational_tso(&threads, &schedule, test.num_outs());

        // Oracle 1: the operational enumerator allows this outcome.
        prop_assert!(
            test.allowed_outcomes().contains(&outs),
            "operational executor produced an outcome the enumerator forbids: {outs:?}"
        );
        // Oracle 2: the axiomatic checker accepts the full history.
        if let Err(v) = axiom::check(&x) {
            prop_assert!(false, "axiomatic checker rejected a TSO-valid history: {v}");
        }

        // Corrupted rf/co must be rejected by a well-formedness axiom.
        let v = axiom::check(&corrupt_history(&x)).expect_err("corrupted history must be rejected");
        prop_assert!(
            v.axiom == "rf-wf" || v.axiom == "co-wf",
            "corruption must trip a well-formedness axiom, got {}",
            v.axiom
        );
    }
}

/// Corrupts one value in a history: bumps a read-from-store value if any
/// load read a real write, else bumps a committed store's value. Either
/// way the result desynchronizes rf/co, which the checker must catch
/// with a well-formedness axiom under *any* memory model.
fn corrupt_history(x: &free_atomics::sim::Execution) -> free_atomics::sim::Execution {
    let mut bad = x.clone();
    let mut mutated = false;
    'outer: for evs in bad.cores.iter_mut() {
        for ev in evs.iter_mut() {
            match ev {
                DataEvent::Load { value, writer, .. }
                | DataEvent::LoadLock { value, writer, .. }
                    if *writer != WRITE_ID_INIT =>
                {
                    *value += 1;
                    mutated = true;
                    break 'outer;
                }
                _ => {}
            }
        }
    }
    if !mutated {
        'outer2: for evs in bad.cores.iter_mut() {
            for ev in evs.iter_mut() {
                if let DataEvent::Store { value, .. } | DataEvent::StoreUnlock { value, .. } = ev {
                    *value += 1;
                    break 'outer2;
                }
            }
        }
    }
    bad
}

// ---------------------------------------------------------------- family 5

/// A schedule-driven operational machine for the ARM-like weak baseline,
/// mirroring `enumerate_weak_outcomes`' transition system exactly: loads
/// may hoist over undone non-acquire loads to other addresses, stores
/// drain FIFO, an SC store in the local buffer blocks younger loads, SC
/// fences and RMWs require an empty buffer while weaker fences only pin
/// program order. Events are recorded per program position and emitted
/// in program order (hardware commits in order even when memory acts
/// out of order), in exactly the shape the detailed simulator emits.
fn run_operational_weak(
    threads: &[Vec<LOp>],
    schedule: &[u16],
    num_outs: usize,
) -> (Vec<u64>, free_atomics::sim::Execution) {
    struct Thread<'a> {
        ops: &'a [LOp],
        seqs: Vec<u64>,
        done: u32,
        sb: VecDeque<(u64, u64, u64, bool)>, // (seq, addr, value, sc)
        events: Vec<Vec<DataEvent>>,         // per program position
    }
    // Mirror of `tsoref::weak_ready`: op `i` may execute when all its
    // predecessors are done, or when it is a load and every undone
    // predecessor is a non-acquire load to a different address.
    fn ready(ops: &[LOp], done: u32, i: usize) -> bool {
        let undone = |j: usize| done & (1 << j) == 0;
        if (0..i).all(|j| !undone(j)) {
            return true;
        }
        let LOp::Ld { addr, .. } = ops[i] else { return false };
        (0..i).filter(|&j| undone(j)).all(|j| match ops[j] {
            LOp::Ld { addr: a, ord, .. } => !ord.is_acquire() && a != addr,
            _ => false,
        })
    }
    let mut ts: Vec<Thread> = threads
        .iter()
        .map(|ops| {
            let mut seq = 1u64;
            let seqs = ops
                .iter()
                .map(|op| {
                    let s = seq;
                    seq += if matches!(op, LOp::FetchAdd { .. }) { 3 } else { 1 };
                    s
                })
                .collect();
            Thread {
                ops,
                seqs,
                done: 0,
                sb: VecDeque::new(),
                events: vec![Vec::new(); ops.len()],
            }
        })
        .collect();
    let mut mem: HashMap<u64, u64> = HashMap::new();
    let mut last_writer: HashMap<u64, u64> = HashMap::new();
    let mut ser: Vec<SerEvent> = Vec::new();
    let mut outs = vec![0u64; num_outs];
    let mut step = 0usize;
    loop {
        // Enabled actions: (thread, Some(op index)) executes, (thread,
        // None) drains the oldest store-buffer entry.
        let mut enabled: Vec<(usize, Option<usize>)> = Vec::new();
        for (i, t) in ts.iter().enumerate() {
            for (j, op) in t.ops.iter().enumerate() {
                if t.done & (1 << j) != 0 || !ready(t.ops, t.done, j) {
                    continue;
                }
                let ok = match *op {
                    LOp::St { .. } => true,
                    // SC store pending locally: its store-load fence half
                    // holds younger loads back until it drains.
                    LOp::Ld { .. } => !t.sb.iter().any(|&(_, _, _, sc)| sc),
                    LOp::FetchAdd { .. } => t.sb.is_empty(),
                    LOp::Fence { ord } => !ord.is_sc() || t.sb.is_empty(),
                };
                if ok {
                    enabled.push((i, Some(j)));
                }
            }
            if !t.sb.is_empty() {
                enabled.push((i, None));
            }
        }
        if enabled.is_empty() {
            break;
        }
        let pick = schedule[step % schedule.len()] as usize % enabled.len();
        step += 1;
        let (i, act) = enabled[pick];
        let core = i as u16;
        let t = &mut ts[i];
        let Some(j) = act else {
            let (sseq, addr, value, _) = t.sb.pop_front().expect("drain picked on non-empty SB");
            let wid = write_id(core, sseq);
            mem.insert(addr, value);
            last_writer.insert(addr, wid);
            ser.push(SerEvent { addr, writer: wid, value, epoch: 0, under_lock: false });
            continue;
        };
        let seq = t.seqs[j];
        match t.ops[j] {
            LOp::St { addr, val, ord } => {
                let addr = f4_loc(addr);
                t.sb.push_back((seq, addr, val, ord.is_sc()));
                t.events[j].push(DataEvent::Store { seq, addr, value: val, ord });
            }
            LOp::Ld { addr, out, ord } => {
                let addr = f4_loc(addr);
                let (value, writer) = match t.sb.iter().rev().find(|e| e.1 == addr) {
                    Some(&(sseq, _, v, _)) => (v, write_id(core, sseq)),
                    None => (
                        mem.get(&addr).copied().unwrap_or(0),
                        last_writer.get(&addr).copied().unwrap_or(WRITE_ID_INIT),
                    ),
                };
                t.events[j].push(DataEvent::Load { seq, addr, value, writer, ord });
                outs[out as usize] = value;
            }
            LOp::FetchAdd { addr, val, out, .. } => {
                let addr = f4_loc(addr);
                let old = mem.get(&addr).copied().unwrap_or(0);
                let writer = last_writer.get(&addr).copied().unwrap_or(WRITE_ID_INIT);
                let new = old.wrapping_add(val);
                let su_seq = seq + 2;
                let wid = write_id(core, su_seq);
                t.events[j].push(DataEvent::LoadLock { seq, addr, value: old, writer });
                t.events[j].push(DataEvent::StoreUnlock { seq: su_seq, addr, value: new });
                mem.insert(addr, new);
                last_writer.insert(addr, wid);
                ser.push(SerEvent { addr, writer: wid, value: new, epoch: 0, under_lock: true });
                outs[out as usize] = old;
            }
            LOp::Fence { ord } => {
                t.events[j].push(DataEvent::Fence { seq, ord });
            }
        }
        t.done |= 1 << j;
    }
    let cores = ts
        .into_iter()
        .map(|t| t.events.into_iter().flatten().collect())
        .collect();
    (outs, free_atomics::sim::Execution { cores, ser })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn synthetic_weak_histories_satisfy_both_oracles(
        t0 in prop::collection::vec(family4_op(), 1..4),
        t1 in prop::collection::vec(family4_op(), 1..4),
        schedule in prop::collection::vec(any::<u16>(), 8..32),
    ) {
        let threads = family4_threads(&t0, &t1);
        let test = LitmusTest { name: "family5", threads: threads.clone() };

        let (outs, x) = run_operational_weak(&threads, &schedule, test.num_outs());

        // Oracle 1: the weak enumerator allows this outcome.
        prop_assert!(
            test.allowed_outcomes_under(MemModel::Weak).contains(&outs),
            "weak operational executor produced an outcome the enumerator forbids: {outs:?}"
        );
        // Oracle 2: the parameterized axiomatic checker accepts it.
        if let Err(v) = axiom::check_model(&x, MemModel::Weak) {
            prop_assert!(false, "axiomatic checker rejected a weak-valid history: {v}");
        }

        // Corrupted rf/co is rejected under the weak model too — the
        // well-formedness axioms are model-independent.
        let v = axiom::check_model(&corrupt_history(&x), MemModel::Weak)
            .expect_err("corrupted history must be rejected");
        prop_assert!(
            v.axiom == "rf-wf" || v.axiom == "co-wf",
            "corruption must trip a well-formedness axiom, got {}",
            v.axiom
        );
    }
}
