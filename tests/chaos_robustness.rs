//! Acceptance tests for the fault-injection + invariant-audit layer.
//!
//! Two pillars: (1) a differential fuzzing campaign — hundreds of random
//! concurrent programs run under aggressive fault injection across atomic
//! policies, every outcome checked against the operational x86-TSO
//! enumerator with the invariant auditor sweeping every cycle; (2) strict
//! determinism — the same seed and fault configuration must reproduce
//! bit-identical final statistics, so any fuzz finding is a replayable
//! repro rather than a flake.

use fa_core::AtomicPolicy;
use fa_isa::interp::GuestMem;
use fa_isa::{Kasm, Program, Reg};
use fa_mem::{AuditConfig, ChaosConfig, NocConfig};
use fa_sim::fuzz::{fuzz_litmus, FuzzConfig};
use fa_sim::presets::tiny_machine;
use fa_sim::{CheckMode, DataEvent, Machine, SimError, WRITE_ID_INIT};

/// The issue's acceptance bar: ≥500 seeded cases across ≥2 atomic
/// policies with fault injection enabled, zero TSO violations and zero
/// audit failures.
#[test]
fn fuzz_campaign_500_cases_two_policies_clean() {
    let fcfg = FuzzConfig {
        cases: 500,
        policies: vec![AtomicPolicy::FencedBaseline, AtomicPolicy::FreeFwd],
        ..FuzzConfig::default()
    };
    assert!(fcfg.chaos.enabled, "campaign must run with fault injection on");
    let report = fuzz_litmus(&tiny_machine(), &fcfg);
    assert!(report.ok(), "{report}");
    assert_eq!(report.cases, 500);
    assert_eq!(report.runs, 1000);
    // Chaos exists to surface rare interleavings; a campaign this size
    // should observe a rich spread of distinct TSO-legal outcomes.
    assert!(report.distinct_outcomes >= 20, "{report}");
}

fn counter(iters: i64) -> Program {
    let mut k = Kasm::new();
    k.li(Reg::R1, 0x100);
    k.li(Reg::R2, 1);
    k.li(Reg::R3, 0);
    let top = k.here_label();
    k.fetch_add(Reg::R4, Reg::R1, 0, Reg::R2);
    k.addi(Reg::R3, Reg::R3, 1);
    k.blt_imm(Reg::R3, iters, top);
    k.halt();
    k.finish().unwrap()
}

/// Same seed + same fault configuration ⇒ bit-identical final stats (and
/// correct final memory), across two atomic policies. Compares the full
/// `Debug` rendering of every per-core and memory-system counter.
#[test]
fn chaos_runs_are_bit_identical_across_repeats() {
    for policy in [AtomicPolicy::FencedBaseline, AtomicPolicy::Free] {
        let run = || {
            let mut cfg = tiny_machine();
            cfg.core.policy = policy;
            cfg.mem.chaos = ChaosConfig::stress(0xDE7E_2025);
            cfg.mem.audit = AuditConfig::on();
            let mut m = Machine::new(cfg, vec![counter(40); 4], GuestMem::new(1 << 16));
            m.set_start_offsets(vec![0, 17, 31, 53]);
            let r = m.run(20_000_000).expect("quiesces under chaos");
            let total = m.guest_mem().load(0x100);
            let injected = r.mem.chaos.delayed_events;
            (r.cycles, format!("{:?}", r.per_core), format!("{:?}", r.mem), total, injected)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "chaos run must replay bit-identically under {policy:?}");
        assert_eq!(a.3, 160, "4 cores x 40 increments under {policy:?}");
        // The fault injector must actually have fired, not idled.
        assert!(a.4 > 0, "no faults injected under {policy:?}");
    }
}

/// Fault injection stacked on crossbar contention: jitter now rides on
/// queued, bandwidth-limited links, so the two perturbation sources
/// compound. The per-cycle auditors (SWMR + inclusion) must stay clean,
/// the result must stay correct, and the replay must stay bit-identical.
#[test]
fn chaos_on_contended_crossbar_is_audited_and_deterministic() {
    for policy in [AtomicPolicy::FencedBaseline, AtomicPolicy::FreeFwd] {
        let run = || {
            let mut cfg = tiny_machine();
            cfg.core.policy = policy;
            cfg.mem.chaos = ChaosConfig::stress(0xC0_57ED);
            cfg.mem.audit = AuditConfig::on();
            cfg.mem.noc = NocConfig::contended(1);
            let mut m = Machine::new(cfg, vec![counter(40); 4], GuestMem::new(1 << 16));
            m.set_start_offsets(vec![0, 17, 31, 53]);
            let r = m.run(20_000_000).expect("quiesces under chaos + contention");
            (r.cycles, format!("{:?}", r.mem), m.guest_mem().load(0x100))
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "chaos+contention must replay bit-identically under {policy:?}");
        assert_eq!(a.2, 160, "4 cores x 40 increments under {policy:?}");
        // Contention must be real: the stats block records a queued network.
        assert!(a.1.contains("Contended"), "noc stats missing from {policy:?} run");
    }
}

/// The conformance checker must not be vacuous: corrupting a real
/// execution's history — swapping the values of two committed stores —
/// must produce a `SimError` naming the violated well-formedness axiom.
#[test]
fn injected_store_value_swap_is_caught_and_names_the_axiom() {
    let cfg = tiny_machine().with_check(CheckMode::Tso);
    let mut m = Machine::new(cfg, vec![counter(10); 2], GuestMem::new(1 << 16));
    m.run(20_000_000).expect("clean run quiesces");
    let mut x = m.execution();
    // Pick two committed RMW stores from core 0 (a counter only writes via
    // store_unlock) and swap their — necessarily distinct — values.
    let idx: Vec<usize> = x.cores[0]
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e, DataEvent::StoreUnlock { .. }))
        .map(|(i, _)| i)
        .take(2)
        .collect();
    assert_eq!(idx.len(), 2, "counter must commit at least two stores");
    let grab = |e: &DataEvent| match e {
        DataEvent::StoreUnlock { value, .. } => *value,
        _ => unreachable!(),
    };
    let (va, vb) = (grab(&x.cores[0][idx[0]]), grab(&x.cores[0][idx[1]]));
    assert_ne!(va, vb, "counter stores strictly increasing values");
    let mut put = |i: usize, v: u64| match &mut x.cores[0][i] {
        DataEvent::StoreUnlock { value, .. } => *value = v,
        _ => unreachable!(),
    };
    put(idx[0], vb);
    put(idx[1], va);
    let err = m.check_execution(&x).expect_err("swapped store values must be rejected");
    let SimError::Tso { axiom, .. } = &err else {
        panic!("expected a TSO violation, got {err}");
    };
    assert!(
        *axiom == "rf-wf" || *axiom == "co-wf",
        "store-value swap must fail well-formedness, got {axiom}"
    );
    assert!(err.to_string().contains(axiom), "error must name the axiom: {err}");
}

/// Second injected violation: drop an RMW's atomicity window by retargeting
/// its load half one step back in the coherence order (the RMW then appears
/// to have read a value that another write overwrote before the RMW's own
/// store serialized). The checker must name `rmw-atomicity` specifically —
/// the history stays well-formed and sc-per-location clean.
#[test]
fn injected_rmw_window_drop_is_caught_and_names_rmw_atomicity() {
    let rmw_once = || {
        let mut k = Kasm::new();
        k.li(Reg::R1, 0x100);
        k.li(Reg::R2, 1);
        k.fetch_add(Reg::R4, Reg::R1, 0, Reg::R2);
        k.halt();
        k.finish().unwrap()
    };
    let two_stores = || {
        let mut k = Kasm::new();
        k.li(Reg::R1, 0x100);
        k.li(Reg::R2, 7);
        k.st(Reg::R2, Reg::R1, 0);
        k.li(Reg::R2, 9);
        k.st(Reg::R2, Reg::R1, 0);
        k.halt();
        k.finish().unwrap()
    };
    let cfg = tiny_machine().with_check(CheckMode::Tso);
    let mut m = Machine::new(cfg, vec![rmw_once(), two_stores()], GuestMem::new(1 << 16));
    // Start the RMW thread late so its load_lock reads a real write, not
    // the init value — the retargeting below needs a co-predecessor.
    m.set_start_offsets(vec![400, 0]);
    m.run(20_000_000).expect("clean run quiesces");
    let mut x = m.execution();
    // Coherence order at 0x100, from the write-serialization log.
    let co: Vec<(u64, u64)> =
        x.ser.iter().filter(|s| s.addr == 0x100).map(|s| (s.writer, s.value)).collect();
    let ll = x.cores[0]
        .iter_mut()
        .find(|e| matches!(e, DataEvent::LoadLock { addr: 0x100, .. }))
        .expect("the RMW committed a load_lock");
    let DataEvent::LoadLock { value, writer, .. } = ll else { unreachable!() };
    assert_ne!(*writer, WRITE_ID_INIT, "offset must make the RMW read a real write");
    let pos = co.iter().position(|(w, _)| w == writer).expect("reader's writer serialized");
    let (pw, pv) = if pos == 0 { (WRITE_ID_INIT, 0) } else { co[pos - 1] };
    *writer = pw;
    *value = pv;
    let err = m.check_execution(&x).expect_err("a non-adjacent RMW pair must be rejected");
    let SimError::Tso { axiom, .. } = &err else {
        panic!("expected a TSO violation, got {err}");
    };
    assert_eq!(*axiom, "rmw-atomicity", "window drop must be attributed precisely");
    assert!(err.to_string().contains("rmw-atomicity"), "error must name the axiom: {err}");
}

/// The full adversarial stack at once — fault injection, contended
/// crossbar, audit, and the axiomatic checker armed — must quiesce clean
/// with a correct result, and the checker must actually have had events to
/// chew on (non-vacuity of the in-run conformance gate).
#[test]
fn chaos_contended_checked_run_is_clean_and_non_vacuous() {
    let mut cfg = tiny_machine().with_check(CheckMode::Tso);
    cfg.core.policy = AtomicPolicy::FreeFwd;
    cfg.mem.chaos = ChaosConfig::stress(0x0DDB_A115);
    cfg.mem.audit = AuditConfig::on();
    cfg.mem.noc = NocConfig::contended(1);
    let mut m = Machine::new(cfg, vec![counter(40); 4], GuestMem::new(1 << 16));
    m.set_start_offsets(vec![0, 17, 31, 53]);
    m.run(20_000_000).expect("checked run quiesces under chaos + contention");
    assert_eq!(m.guest_mem().load(0x100), 160, "4 cores x 40 increments");
    let x = m.execution();
    assert!(x.cores.iter().all(|c| !c.is_empty()), "every core must have committed events");
    assert!(x.ser.iter().any(|s| s.under_lock), "RMW writes must appear in the ser log");
}

/// Different chaos seeds must actually perturb timing — otherwise the
/// determinism test above would pass vacuously.
#[test]
fn chaos_seed_changes_timing() {
    let run = |seed: u64| {
        let mut cfg = tiny_machine();
        cfg.mem.chaos = ChaosConfig::stress(seed);
        let mut m = Machine::new(cfg, vec![counter(40); 4], GuestMem::new(1 << 16));
        m.run(20_000_000).expect("quiesces").cycles
    };
    let cycles: Vec<u64> = (0..4).map(|s| run(0x5EED_0000 + s)).collect();
    assert!(
        cycles.windows(2).any(|w| w[0] != w[1]),
        "four different chaos seeds produced identical cycle counts: {cycles:?}"
    );
}
