//! Acceptance tests for the fault-injection + invariant-audit layer.
//!
//! Two pillars: (1) a differential fuzzing campaign — hundreds of random
//! concurrent programs run under aggressive fault injection across atomic
//! policies, every outcome checked against the operational x86-TSO
//! enumerator with the invariant auditor sweeping every cycle; (2) strict
//! determinism — the same seed and fault configuration must reproduce
//! bit-identical final statistics, so any fuzz finding is a replayable
//! repro rather than a flake.

use fa_core::AtomicPolicy;
use fa_isa::interp::GuestMem;
use fa_isa::{Kasm, Program, Reg};
use fa_mem::{AuditConfig, ChaosConfig, NocConfig};
use fa_sim::fuzz::{fuzz_litmus, FuzzConfig};
use fa_sim::presets::tiny_machine;
use fa_sim::Machine;

/// The issue's acceptance bar: ≥500 seeded cases across ≥2 atomic
/// policies with fault injection enabled, zero TSO violations and zero
/// audit failures.
#[test]
fn fuzz_campaign_500_cases_two_policies_clean() {
    let fcfg = FuzzConfig {
        cases: 500,
        policies: vec![AtomicPolicy::FencedBaseline, AtomicPolicy::FreeFwd],
        ..FuzzConfig::default()
    };
    assert!(fcfg.chaos.enabled, "campaign must run with fault injection on");
    let report = fuzz_litmus(&tiny_machine(), &fcfg);
    assert!(report.ok(), "{report}");
    assert_eq!(report.cases, 500);
    assert_eq!(report.runs, 1000);
    // Chaos exists to surface rare interleavings; a campaign this size
    // should observe a rich spread of distinct TSO-legal outcomes.
    assert!(report.distinct_outcomes >= 20, "{report}");
}

fn counter(iters: i64) -> Program {
    let mut k = Kasm::new();
    k.li(Reg::R1, 0x100);
    k.li(Reg::R2, 1);
    k.li(Reg::R3, 0);
    let top = k.here_label();
    k.fetch_add(Reg::R4, Reg::R1, 0, Reg::R2);
    k.addi(Reg::R3, Reg::R3, 1);
    k.blt_imm(Reg::R3, iters, top);
    k.halt();
    k.finish().unwrap()
}

/// Same seed + same fault configuration ⇒ bit-identical final stats (and
/// correct final memory), across two atomic policies. Compares the full
/// `Debug` rendering of every per-core and memory-system counter.
#[test]
fn chaos_runs_are_bit_identical_across_repeats() {
    for policy in [AtomicPolicy::FencedBaseline, AtomicPolicy::Free] {
        let run = || {
            let mut cfg = tiny_machine();
            cfg.core.policy = policy;
            cfg.mem.chaos = ChaosConfig::stress(0xDE7E_2025);
            cfg.mem.audit = AuditConfig::on();
            let mut m = Machine::new(cfg, vec![counter(40); 4], GuestMem::new(1 << 16));
            m.set_start_offsets(vec![0, 17, 31, 53]);
            let r = m.run(20_000_000).expect("quiesces under chaos");
            let total = m.guest_mem().load(0x100);
            let injected = r.mem.chaos.delayed_events;
            (r.cycles, format!("{:?}", r.per_core), format!("{:?}", r.mem), total, injected)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "chaos run must replay bit-identically under {policy:?}");
        assert_eq!(a.3, 160, "4 cores x 40 increments under {policy:?}");
        // The fault injector must actually have fired, not idled.
        assert!(a.4 > 0, "no faults injected under {policy:?}");
    }
}

/// Fault injection stacked on crossbar contention: jitter now rides on
/// queued, bandwidth-limited links, so the two perturbation sources
/// compound. The per-cycle auditors (SWMR + inclusion) must stay clean,
/// the result must stay correct, and the replay must stay bit-identical.
#[test]
fn chaos_on_contended_crossbar_is_audited_and_deterministic() {
    for policy in [AtomicPolicy::FencedBaseline, AtomicPolicy::FreeFwd] {
        let run = || {
            let mut cfg = tiny_machine();
            cfg.core.policy = policy;
            cfg.mem.chaos = ChaosConfig::stress(0xC0_57ED);
            cfg.mem.audit = AuditConfig::on();
            cfg.mem.noc = NocConfig::contended(1);
            let mut m = Machine::new(cfg, vec![counter(40); 4], GuestMem::new(1 << 16));
            m.set_start_offsets(vec![0, 17, 31, 53]);
            let r = m.run(20_000_000).expect("quiesces under chaos + contention");
            (r.cycles, format!("{:?}", r.mem), m.guest_mem().load(0x100))
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "chaos+contention must replay bit-identically under {policy:?}");
        assert_eq!(a.2, 160, "4 cores x 40 increments under {policy:?}");
        // Contention must be real: the stats block records a queued network.
        assert!(a.1.contains("Contended"), "noc stats missing from {policy:?} run");
    }
}

/// Different chaos seeds must actually perturb timing — otherwise the
/// determinism test above would pass vacuously.
#[test]
fn chaos_seed_changes_timing() {
    let run = |seed: u64| {
        let mut cfg = tiny_machine();
        cfg.mem.chaos = ChaosConfig::stress(seed);
        let mut m = Machine::new(cfg, vec![counter(40); 4], GuestMem::new(1 << 16));
        m.run(20_000_000).expect("quiesces").cycles
    };
    let cycles: Vec<u64> = (0..4).map(|s| run(0x5EED_0000 + s)).collect();
    assert!(
        cycles.windows(2).any(|w| w[0] != w[1]),
        "four different chaos seeds produced identical cycle counts: {cycles:?}"
    );
}
