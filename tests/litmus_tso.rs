//! Cross-crate consistency verification: every litmus shape, every atomic
//! policy, detailed simulator vs the operational x86-TSO enumeration.
//!
//! This is the soundness core of the reproduction: the paper's central
//! claim is that removing the fences around atomic RMWs preserves x86-TSO
//! and type-1 atomicity (§3.2.3, §3.4). A single TSO-forbidden observation
//! here falsifies the model.

use free_atomics::prelude::*;

fn offsets() -> [&'static [u64]; 6] {
    [&[], &[0, 40], &[40, 0], &[0, 90], &[90, 0], &[17, 43]]
}

#[test]
fn all_litmus_shapes_all_policies_are_tso_sound() {
    let base = icelake_like();
    for test in LitmusTest::all() {
        for policy in AtomicPolicy::ALL {
            test.verify_under(&base, policy, &offsets());
        }
    }
}

#[test]
fn gallery_is_sound_under_both_oracles_across_policies_and_nocs() {
    // The classic gallery (IRIW, WRC, RWC, R, S, 2+2W and the RMW-as-fence
    // variants), table-driven: every run is simultaneously validated by
    // the operational enumerator (observation vector ∈ allowed set, via
    // verify_under) and the axiomatic checker (CheckMode::Tso arms the
    // full-execution conformance check inside Machine::run, so any
    // violated axiom fails the run before an outcome is even read) — for
    // every AtomicPolicy on both interconnect models.
    let gallery = [
        LitmusTest::iriw(),
        LitmusTest::wrc(),
        LitmusTest::wrc_rmw(),
        LitmusTest::rwc(),
        LitmusTest::rwc_rmw(),
        LitmusTest::r(),
        LitmusTest::s(),
        LitmusTest::two_plus_two_w(),
        LitmusTest::sb_rmw_mixed(),
    ];
    for noc in [free_atomics::mem::NocConfig::default(), free_atomics::mem::NocConfig::contended(2)]
    {
        let mut base = icelake_like().with_check(CheckMode::Tso);
        base.mem.noc = noc;
        for test in &gallery {
            for policy in AtomicPolicy::ALL {
                test.verify_under(&base, policy, &offsets());
            }
        }
    }
}

#[test]
fn dekker_with_rmws_is_type1_under_free_policies() {
    // Figure 10 of the paper, directly: the RMW must order store→load even
    // though it targets an unrelated address.
    let base = icelake_like();
    let t = LitmusTest::sb_rmws();
    for policy in [AtomicPolicy::Free, AtomicPolicy::FreeFwd] {
        let observed = t.verify_under(&base, policy, &offsets());
        for o in &observed {
            assert!(
                !(o[0] == 0 && o[1] == 0),
                "type-1 atomicity violated under {policy:?}: {o:?}"
            );
        }
    }
}

#[test]
fn plain_sb_can_expose_store_buffering() {
    // Sanity in the other direction: the machine must NOT be secretly
    // sequentially consistent. With skewed starts the store-buffering
    // outcome (both loads 0) should be reachable under some offset.
    let base = icelake_like();
    let t = LitmusTest::sb();
    let mut cfg = base.clone();
    cfg.core.policy = AtomicPolicy::FreeFwd;
    let mut saw_weak = false;
    for off in offsets() {
        let o = t.run_detailed(&cfg, off);
        if o[0] == 0 && o[1] == 0 {
            saw_weak = true;
        }
    }
    assert!(
        saw_weak,
        "store-buffering never observed: the model is over-serialized"
    );
}

#[test]
fn litmus_under_tiny_machine_is_still_sound() {
    // Tiny caches/queues change timing radically; consistency must not.
    let base = tiny_machine();
    for test in [LitmusTest::sb_rmws(), LitmusTest::mp(), LitmusTest::lb()] {
        for policy in AtomicPolicy::ALL {
            test.verify_under(&base, policy, &offsets());
        }
    }
}
