//! The §3.2.5 deadlock scenarios as integration tests: each must complete
//! (the watchdog guarantees forward progress) and produce the
//! architecturally correct result under every policy.

use free_atomics::prelude::*;

const A: i64 = 0x1000;
const B: i64 = 0x2000;
const MEM: u64 = 1 << 20;

fn machine(policy: AtomicPolicy, progs: Vec<Program>, threshold: u64) -> Machine {
    let mut cfg = icelake_like();
    cfg.core.policy = policy;
    cfg.core.watchdog_threshold = threshold;
    Machine::new(cfg, progs, GuestMem::new(MEM))
}

fn rmw_pair(first: i64, second: i64, iters: i64) -> Program {
    let mut k = Kasm::new();
    k.li(Reg::R1, first);
    k.li(Reg::R2, second);
    k.li(Reg::R3, 1);
    k.li(Reg::R4, 0);
    let top = k.here_label();
    k.fetch_add(Reg::R5, Reg::R1, 0, Reg::R3);
    k.fetch_add(Reg::R5, Reg::R2, 0, Reg::R3);
    k.addi(Reg::R4, Reg::R4, 1);
    k.blt_imm(Reg::R4, iters, top);
    k.halt();
    k.finish().unwrap()
}

#[test]
fn rmw_rmw_figure5_completes_with_exact_counts() {
    let iters = 50;
    for policy in AtomicPolicy::ALL {
        let mut m = machine(policy, vec![rmw_pair(A, B, iters), rmw_pair(B, A, iters)], 400);
        m.run(50_000_000).unwrap_or_else(|e| panic!("{policy:?}: {e}"));
        assert_eq!(m.guest_mem().load(A as u64), 2 * iters as u64, "{policy:?}");
        assert_eq!(m.guest_mem().load(B as u64), 2 * iters as u64, "{policy:?}");
    }
}

fn store_then_rmw(store_to: i64, rmw_on: i64, iters: i64) -> Program {
    let mut k = Kasm::new();
    k.li(Reg::R1, store_to);
    k.li(Reg::R2, rmw_on);
    k.li(Reg::R3, 1);
    k.li(Reg::R4, 0);
    let top = k.here_label();
    k.st(Reg::R4, Reg::R1, 8); // plain store next to the remote atomic's line
    k.fetch_add(Reg::R5, Reg::R2, 0, Reg::R3);
    k.addi(Reg::R4, Reg::R4, 1);
    k.blt_imm(Reg::R4, iters, top);
    k.halt();
    k.finish().unwrap()
}

#[test]
fn store_rmw_figure6_completes_with_exact_counts() {
    let iters = 50;
    for policy in [AtomicPolicy::Free, AtomicPolicy::FreeFwd] {
        let mut m = machine(
            policy,
            vec![store_then_rmw(A, B, iters), store_then_rmw(B, A, iters)],
            400,
        );
        m.run(50_000_000).unwrap_or_else(|e| panic!("{policy:?}: {e}"));
        // Each address is RMW'd by exactly one core in the crossed pair.
        assert_eq!(m.guest_mem().load(A as u64), iters as u64, "{policy:?}");
        assert_eq!(m.guest_mem().load(B as u64), iters as u64, "{policy:?}");
    }
}

fn load_then_rmw(load_from: i64, rmw_on: i64, iters: i64, out: i64) -> Program {
    let mut k = Kasm::new();
    k.li(Reg::R1, load_from);
    k.li(Reg::R2, rmw_on);
    k.li(Reg::R3, 1);
    k.li(Reg::R4, 0);
    k.li(Reg::R7, 0);
    let top = k.here_label();
    k.ld(Reg::R5, Reg::R1, 0);
    k.fetch_add(Reg::R6, Reg::R2, 0, Reg::R3);
    k.add(Reg::R7, Reg::R7, Reg::R5);
    k.addi(Reg::R4, Reg::R4, 1);
    k.blt_imm(Reg::R4, iters, top);
    k.li(Reg::R1, out);
    k.st(Reg::R7, Reg::R1, 0);
    k.halt();
    k.finish().unwrap()
}

#[test]
fn load_rmw_figure7_completes_with_exact_counts() {
    let iters = 50;
    for policy in [AtomicPolicy::Free, AtomicPolicy::FreeFwd] {
        let mut m = machine(
            policy,
            vec![
                load_then_rmw(A, B, iters, 0x3000),
                load_then_rmw(B, A, iters, 0x3040),
            ],
            400,
        );
        m.run(50_000_000).unwrap_or_else(|e| panic!("{policy:?}: {e}"));
        // Each address is RMW'd by exactly one core in the crossed pair.
        assert_eq!(m.guest_mem().load(A as u64), iters as u64, "{policy:?}");
        assert_eq!(m.guest_mem().load(B as u64), iters as u64, "{policy:?}");
    }
}

/// Inclusion deadlock (§3.2.5, MAD-style): a tiny directory forces entry
/// evictions whose back-invalidations hit locked lines.
#[test]
fn inclusion_deadlock_resolves_on_tiny_directory() {
    let iters = 40;
    let mut cfg = tiny_machine();
    cfg.core.policy = AtomicPolicy::FreeFwd;
    cfg.core.watchdog_threshold = 400;
    // Several cores hammering atomics over more lines than the directory
    // set can hold.
    fn prog(iters: i64, lines: i64, stride: i64, base: i64) -> Program {
        let mut k = Kasm::new();
        k.li(Reg::R3, 1);
        k.li(Reg::R4, 0);
        let top = k.here_label();
        for i in 0..lines {
            k.li(Reg::R1, base + i * stride);
            k.fetch_add(Reg::R5, Reg::R1, 0, Reg::R3);
        }
        k.addi(Reg::R4, Reg::R4, 1);
        k.blt_imm(Reg::R4, iters, top);
        k.halt();
        k.finish().unwrap()
    }
    // tiny(): dir is 8 sets x 4 ways; stride of 8*64 lands every line in
    // one directory set.
    let lines = 6;
    let stride = 8 * 64;
    let progs = vec![prog(iters, lines, stride, 0x8000); 3];
    let mut m = Machine::new(cfg, progs, GuestMem::new(MEM));
    let r = m.run(80_000_000).expect("inclusion deadlock must resolve");
    for i in 0..lines {
        assert_eq!(
            m.guest_mem().load((0x8000 + i * stride) as u64),
            3 * iters as u64,
            "line {i}"
        );
    }
    let dir_evictions = r.mem.dir.entry_evictions;
    assert!(dir_evictions > 0, "test must actually exercise directory eviction");
}

/// Eviction livelock (Figure 4): more lock-hungry atomics than cache ways,
/// under a tiny L2. Locked lines are never victims; fills wait; the
/// watchdog resolves the resulting stalls. Must terminate with exact
/// counts.
#[test]
fn eviction_pressure_figure4_terminates_exactly() {
    let iters = 40;
    let mut cfg = tiny_machine();
    cfg.core.policy = AtomicPolicy::FreeFwd;
    cfg.core.aq_size = 4; // allow more concurrent locks than tiny L2 ways
    cfg.core.watchdog_threshold = 400;
    fn prog(iters: i64) -> Program {
        let mut k = Kasm::new();
        k.li(Reg::R3, 1);
        k.li(Reg::R4, 0);
        let top = k.here_label();
        // Three atomics to lines in the same tiny-L2 set (8 sets * 64B).
        for i in 0..3 {
            k.li(Reg::R1, 0x8000 + i * 8 * 64);
            k.fetch_add(Reg::R5, Reg::R1, 0, Reg::R3);
        }
        k.addi(Reg::R4, Reg::R4, 1);
        k.blt_imm(Reg::R4, iters, top);
        k.halt();
        k.finish().unwrap()
    }
    let mut m = Machine::new(cfg, vec![prog(iters); 2], GuestMem::new(MEM));
    m.run(80_000_000).expect("figure-4 pressure must terminate");
    for i in 0..3u64 {
        assert_eq!(m.guest_mem().load(0x8000 + i * 8 * 64), 2 * iters as u64);
    }
}

/// The progress invariant (§3.2.5): after any deadlock recovery the
/// machine still reaches the exact architectural result — nothing is lost
/// or duplicated by watchdog squashes. Stress with a very small threshold.
#[test]
fn aggressive_watchdog_never_corrupts_state() {
    let iters = 60;
    for threshold in [120, 600, 10_000] {
        let mut m = machine(
            AtomicPolicy::FreeFwd,
            vec![rmw_pair(A, B, iters), rmw_pair(B, A, iters)],
            threshold,
        );
        m.run(80_000_000).unwrap_or_else(|e| panic!("threshold {threshold}: {e}"));
        assert_eq!(m.guest_mem().load(A as u64), 2 * iters as u64);
        assert_eq!(m.guest_mem().load(B as u64), 2 * iters as u64);
    }
}
