//! No-op derive macros for the vendored `serde` stub: the stub's traits
//! have blanket implementations, so the derives emit nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
