//! Deterministic random source for the proptest stub.

/// SplitMix64 — tiny, fast, and deterministic across platforms. Each test
/// function gets a seed derived from its own name (FNV-1a hash) so case
/// sequences are stable run-to-run and machine-to-machine.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Creates a generator seeded from a test name.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::from_seed(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0)");
        // Modulo bias is irrelevant for test-case generation.
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_sequence_is_stable() {
        let mut a = TestRng::from_seed(42);
        let mut b = TestRng::from_seed(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn name_seeding_differs_per_test() {
        let a = TestRng::from_name("alpha").next_u64();
        let b = TestRng::from_name("beta").next_u64();
        assert_ne!(a, b);
    }
}
