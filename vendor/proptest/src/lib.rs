//! Offline stand-in for `proptest`.
//!
//! The workspace builds where no crates registry is reachable, so external
//! dependencies are vendored as local stubs. This one keeps the property
//! tests *running* rather than gating them out: it implements the subset of
//! the proptest API the repository uses — `proptest!`, `prop_oneof!`,
//! `prop::collection::vec`, `any::<T>()`, integer-range strategies, tuple
//! strategies, `prop_map`, and `prop_assert*` — on top of a deterministic
//! SplitMix64 generator seeded from the test name.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case reports the generated inputs via the
//!   panic message (all strategies produce `Debug` values in this repo).
//! - **Deterministic.** Each test function derives its seed from its own
//!   name, so failures reproduce exactly across runs and machines.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    pub use crate::strategy::vec;
}

/// The `prop` facade module (`prop::collection::vec`).
pub mod prop {
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

pub use strategy::{any, Any, Arbitrary, Just, Map, Strategy, Union, VecStrategy};
pub use test_runner::TestRng;

/// Subset of proptest's run configuration honoured by the stub.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for API compatibility; the stub never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
    };
}

/// Runs each `#[test]` body against `config.cases` deterministically
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            #[test]
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $body
                    }));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest stub: case {case}/{} of {} failed with inputs:",
                            config.cases,
                            stringify!($name),
                        );
                        $(eprintln!("  {} = {:?}", stringify!($arg), $arg);)+
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )+
    };
    (
        $(
            #[test]
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(#[test] fn $name( $($arg in $strat),+ ) $body)+
        }
    };
}

/// Uniformly picks one of several same-valued strategies per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $s:expr),+ $(,)?) => {
        $crate::prop_oneof![$($s),+]
    };
    ($($s:expr),+ $(,)?) => {{
        $crate::Union::new(vec![
            $({
                let s = $s;
                ::std::boxed::Box::new(move |rng: &mut $crate::TestRng| {
                    $crate::Strategy::generate(&s, rng)
                }) as ::std::boxed::Box<dyn Fn(&mut $crate::TestRng) -> _>
            }),+
        ])
    }};
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = (3i64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let u = (0usize..4).generate(&mut rng);
            assert!(u < 4);
        }
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let strat = prop::collection::vec(any::<u8>(), 1..8);
        let mut a = crate::TestRng::from_name("det");
        let mut b = crate::TestRng::from_name("det");
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_round_trip(
            xs in prop::collection::vec(any::<u8>(), 1..5),
            k in 1u64..9,
            pick in prop_oneof![Just(0u8), Just(1u8)],
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 5);
            prop_assert!((1..9u64).contains(&k));
            prop_assert!(pick <= 1u8);
            let doubled = (any::<u8>(), 0i64..4).prop_map(|(a, b)| a as i64 + b);
            let mut rng = crate::TestRng::from_name("inner");
            prop_assert!(doubled.generate(&mut rng) <= 255 + 3);
        }
    }
}
