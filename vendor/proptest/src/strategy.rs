//! Value-generation strategies for the proptest stub.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for [`Arbitrary`] types.
#[derive(Clone, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )+};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident $i:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A 0, B 1),
    (A 0, B 1, C 2),
    (A 0, B 1, C 2, D 3),
    (A 0, B 1, C 2, D 3, E 4),
    (A 0, B 1, C 2, D 3, E 4, F 5),
);

/// One boxed generator arm of a [`Union`].
pub type UnionArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// Uniform choice between same-valued strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<UnionArm<V>>,
}

impl<V> Union<V> {
    /// Builds a union from boxed generator arms.
    pub fn new(arms: Vec<UnionArm<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "empty prop_oneof!");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        (self.arms[i])(rng)
    }
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union").field("arms", &self.arms.len()).finish()
    }
}

/// Vectors of `element` with a length drawn from `len` (`prop::collection::vec`).
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// Strategy for `Vec<S::Value>` with `len` in the given range.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.clone().generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_tuple_compose() {
        let mut rng = TestRng::from_seed(7);
        let s = (0u8..4, 10i64..20).prop_map(|(a, b)| a as i64 * 100 + b);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((10..320).contains(&v));
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut rng = TestRng::from_seed(9);
        let u = Union::new(vec![
            Box::new(|_: &mut TestRng| 1u8) as Box<dyn Fn(&mut TestRng) -> u8>,
            Box::new(|_: &mut TestRng| 2u8),
        ]);
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn vec_respects_length_range() {
        let mut rng = TestRng::from_seed(11);
        let s = vec(any::<u8>(), 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }
}
