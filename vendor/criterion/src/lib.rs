//! Offline stand-in for `criterion`.
//!
//! The workspace builds where no crates registry is reachable, so external
//! dependencies are vendored as local stubs. This one keeps the `benches/`
//! targets compiling and *executing*: each registered benchmark closure runs
//! a small fixed number of iterations and the mean wall-clock time is
//! printed. No warm-up, outlier rejection, or statistics — for real
//! measurements swap the workspace manifest back to the published crate.

use std::fmt::Display;
use std::time::Instant;

const ITERS: u32 = 3;

/// Timing context passed to benchmark closures.
pub struct Bencher {
    nanos_per_iter: f64,
}

impl Bencher {
    /// Times `f` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(f());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / ITERS as f64;
    }
}

/// Top-level benchmark registry.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Creates a default instance.
    pub fn new() -> Criterion {
        Criterion::default()
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { nanos_per_iter: 0.0 };
        f(&mut b);
        report(name, b.nanos_per_iter);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_string() }
    }

    /// Accepted for API compatibility; the stub has no configuration.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Accepted for API compatibility; the stub writes no reports.
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { nanos_per_iter: 0.0 };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.0), b.nanos_per_iter);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { nanos_per_iter: 0.0 };
        f(&mut b);
        report(&format!("{}/{}", self.name, name), b.nanos_per_iter);
        self
    }

    /// Accepted for API compatibility.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifier for one parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(name: impl Display, param: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{param}"))
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId(param.to_string())
    }
}

/// Opaque-value helper mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn report(name: &str, nanos: f64) {
    if nanos >= 1e9 {
        println!("{name:<48} {:.3} s/iter", nanos / 1e9);
    } else if nanos >= 1e6 {
        println!("{name:<48} {:.3} ms/iter", nanos / 1e6);
    } else {
        println!("{name:<48} {:.3} µs/iter", nanos / 1e3);
    }
}

/// Collects benchmark functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_closure() {
        let mut c = Criterion::new();
        let mut ran = 0u32;
        c.bench_function("noop", |b| b.iter(|| ran += 1));
        assert_eq!(ran, ITERS);
    }

    #[test]
    fn group_runs_parameterized_benches() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("g");
        let mut total = 0u64;
        for p in [2u64, 3] {
            g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
                b.iter(|| total += p)
            });
        }
        g.finish();
        assert_eq!(total, (2 + 3) * ITERS as u64);
    }
}
