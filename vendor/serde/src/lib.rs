//! Offline stand-in for `serde`.
//!
//! This workspace builds in environments with no access to a crates
//! registry, so external dependencies are vendored as minimal local stubs.
//! The real codebase only uses `#[derive(Serialize, Deserialize)]` as
//! annotations (no runtime serialization calls anywhere), so marker traits
//! with blanket implementations plus no-op derive macros are fully
//! sufficient. Swapping back to the real `serde` is a one-line change in
//! the workspace manifest.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_serialize<T: Serialize>() {}
    fn assert_deserialize<T: for<'de> Deserialize<'de>>() {}

    #[derive(Serialize, Deserialize)]
    struct Derived {
        _x: u64,
    }

    #[test]
    fn blanket_impls_cover_everything() {
        assert_serialize::<Derived>();
        assert_deserialize::<Derived>();
        assert_serialize::<Vec<String>>();
    }
}
