//! Memory-ordering annotations.
//!
//! Loads, stores, fences and RMWs carry a [`MemOrder`] drawn from the
//! C++11/LLVM lattice. Under the TSO memory model the annotations are
//! semantically inert (every access already has TSO strength); under the
//! weak model (`FA_MODEL=weak`) they select how much reordering the frontend
//! may perform. See `DESIGN.md` § "Weak-memory frontend" for the exact
//! mapping from each ordering to the LSQ/SB rules.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A memory-ordering annotation (C++11 lattice, minus `Consume`).
///
/// Defaults: plain loads and stores are [`MemOrder::Relaxed`] (matching an
/// ARM-like ISA where unadorned accesses are unordered), standalone fences
/// and RMWs are [`MemOrder::SeqCst`] (matching the pre-existing `MFENCE` /
/// `LOCK`-prefix semantics, which keeps the TSO model's behaviour unchanged).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub enum MemOrder {
    /// No ordering beyond per-location coherence.
    #[default]
    Relaxed,
    /// Loads: no younger access may appear to perform before this load.
    Acquire,
    /// Stores: no older access may appear to perform after this store.
    /// (Free on this pipeline: the FIFO store buffer already preserves it.)
    Release,
    /// Both acquire and release.
    AcqRel,
    /// Sequentially consistent: acquire + release + global total order.
    /// SC stores additionally forbid younger loads from passing them
    /// (the store buffer is drained first); SC fences order everything.
    SeqCst,
}

impl MemOrder {
    /// True for orderings with acquire strength (`Acquire`/`AcqRel`/`SeqCst`).
    pub fn is_acquire(self) -> bool {
        matches!(self, MemOrder::Acquire | MemOrder::AcqRel | MemOrder::SeqCst)
    }

    /// True for orderings with release strength (`Release`/`AcqRel`/`SeqCst`).
    pub fn is_release(self) -> bool {
        matches!(self, MemOrder::Release | MemOrder::AcqRel | MemOrder::SeqCst)
    }

    /// True for `SeqCst`.
    pub fn is_sc(self) -> bool {
        matches!(self, MemOrder::SeqCst)
    }

    /// Short lower-case name (`rlx`/`acq`/`rel`/`acq_rel`/`sc`).
    pub fn name(self) -> &'static str {
        match self {
            MemOrder::Relaxed => "rlx",
            MemOrder::Acquire => "acq",
            MemOrder::Release => "rel",
            MemOrder::AcqRel => "acq_rel",
            MemOrder::SeqCst => "sc",
        }
    }

    /// All five orderings, for coverage sweeps.
    pub const ALL: [MemOrder; 5] = [
        MemOrder::Relaxed,
        MemOrder::Acquire,
        MemOrder::Release,
        MemOrder::AcqRel,
        MemOrder::SeqCst,
    ];
}

impl fmt::Display for MemOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_classes() {
        assert!(!MemOrder::Relaxed.is_acquire() && !MemOrder::Relaxed.is_release());
        assert!(MemOrder::Acquire.is_acquire() && !MemOrder::Acquire.is_release());
        assert!(!MemOrder::Release.is_acquire() && MemOrder::Release.is_release());
        assert!(MemOrder::AcqRel.is_acquire() && MemOrder::AcqRel.is_release());
        assert!(MemOrder::SeqCst.is_acquire() && MemOrder::SeqCst.is_release());
        assert!(MemOrder::SeqCst.is_sc() && !MemOrder::AcqRel.is_sc());
    }

    #[test]
    fn default_is_relaxed() {
        assert_eq!(MemOrder::default(), MemOrder::Relaxed);
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> =
            MemOrder::ALL.iter().map(|o| o.name()).collect();
        assert_eq!(names.len(), 5);
    }
}
