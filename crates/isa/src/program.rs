//! Validated guest programs.

use crate::instr::Instr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Coarse instruction classes used by statistics and the energy model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum InstrClass {
    /// Integer ALU.
    Alu,
    /// Ordinary load.
    Load,
    /// Ordinary store.
    Store,
    /// Atomic read-modify-write.
    Rmw,
    /// Branch or jump.
    Control,
    /// Fence, pause, monitor-wait, halt, nop.
    Other,
}

impl InstrClass {
    /// Classifies an instruction.
    pub fn of(instr: &Instr) -> InstrClass {
        match instr {
            Instr::Alu { .. } => InstrClass::Alu,
            Instr::Load { .. } => InstrClass::Load,
            Instr::Store { .. } => InstrClass::Store,
            Instr::Rmw { .. } => InstrClass::Rmw,
            Instr::Branch { .. } | Instr::Jump { .. } => InstrClass::Control,
            _ => InstrClass::Other,
        }
    }
}

/// Error found while validating a program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidateProgramError {
    /// A branch or jump targets an instruction index outside the program.
    TargetOutOfRange { pc: usize, target: u32 },
    /// An atomic RMW names the same register as destination and address
    /// base, which would corrupt the `store_unlock` address computation.
    RmwDstAliasesBase { pc: usize },
    /// An atomic RMW names the same register as destination and source (or
    /// comparison) operand. The `load_lock` micro-op writes the destination
    /// before the `op` micro-op reads its operands, so aliasing them would
    /// feed the loaded value back into the operation (x86's `xadd` fuses
    /// this aliasing into one definition; this ISA keeps the roles
    /// separate).
    RmwDstAliasesOperand { pc: usize },
    /// The program does not end every path with `Halt` — specifically, the
    /// final instruction can fall through past the end of the program.
    FallsOffEnd,
    /// The program is empty.
    Empty,
}

impl fmt::Display for ValidateProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateProgramError::TargetOutOfRange { pc, target } => {
                write!(f, "instruction {pc} targets out-of-range index {target}")
            }
            ValidateProgramError::RmwDstAliasesBase { pc } => {
                write!(f, "atomic RMW at {pc} uses the same register for dst and base")
            }
            ValidateProgramError::RmwDstAliasesOperand { pc } => {
                write!(f, "atomic RMW at {pc} uses the same register for dst and src/cmp")
            }
            ValidateProgramError::FallsOffEnd => {
                write!(f, "control can fall through past the final instruction")
            }
            ValidateProgramError::Empty => write!(f, "program is empty"),
        }
    }
}

impl std::error::Error for ValidateProgramError {}

/// A validated sequence of guest instructions for one hardware thread.
///
/// Construct through [`Program::new`] (which validates) or the [`crate::Kasm`]
/// assembler (which validates on `finish`).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Program {
    instrs: Vec<Instr>,
}

impl Program {
    /// Validates and wraps an instruction sequence.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateProgramError`] if any branch target is out of
    /// range, an RMW aliases `dst` and `base`, the program is empty, or the
    /// last instruction can fall through past the end.
    pub fn new(instrs: Vec<Instr>) -> Result<Program, ValidateProgramError> {
        if instrs.is_empty() {
            return Err(ValidateProgramError::Empty);
        }
        for (pc, i) in instrs.iter().enumerate() {
            match *i {
                Instr::Branch { target, .. } | Instr::Jump { target, .. }
                    if target as usize >= instrs.len() => {
                        return Err(ValidateProgramError::TargetOutOfRange { pc, target });
                    }
                Instr::Rmw { op, dst, base, src, cmp, .. } => {
                    if dst == base {
                        return Err(ValidateProgramError::RmwDstAliasesBase { pc });
                    }
                    let cmp_used = matches!(op, crate::instr::RmwOp::CompareSwap);
                    if !dst.is_zero() && (dst == src || (cmp_used && dst == cmp)) {
                        return Err(ValidateProgramError::RmwDstAliasesOperand { pc });
                    }
                }
                _ => {}
            }
        }
        match instrs[instrs.len() - 1] {
            Instr::Halt | Instr::Jump { .. } => {}
            _ => return Err(ValidateProgramError::FallsOffEnd),
        }
        Ok(Program { instrs })
    }

    /// The instruction at `pc`, or `None` past the end.
    #[inline]
    pub fn get(&self, pc: usize) -> Option<&Instr> {
        self.instrs.get(pc)
    }

    /// Number of static instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if the program has no instructions (never — validation rejects
    /// empty programs — but provided for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Iterates over the instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, Instr> {
        self.instrs.iter()
    }

    /// Counts static instructions per class.
    pub fn class_histogram(&self) -> Vec<(InstrClass, usize)> {
        let classes = [
            InstrClass::Alu,
            InstrClass::Load,
            InstrClass::Store,
            InstrClass::Rmw,
            InstrClass::Control,
            InstrClass::Other,
        ];
        classes
            .iter()
            .map(|&c| (c, self.instrs.iter().filter(|i| InstrClass::of(i) == c).count()))
            .collect()
    }
}

impl AsRef<[Instr]> for Program {
    fn as_ref(&self) -> &[Instr] {
        &self.instrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AluOp, Operand, RmwOp};
    use crate::reg::Reg;

    #[test]
    fn rejects_empty() {
        assert_eq!(Program::new(vec![]), Err(ValidateProgramError::Empty));
    }

    #[test]
    fn rejects_out_of_range_target() {
        let p = Program::new(vec![Instr::Jump { target: 5 }, Instr::Halt]);
        assert!(matches!(p, Err(ValidateProgramError::TargetOutOfRange { pc: 0, target: 5 })));
    }

    #[test]
    fn rejects_rmw_alias() {
        let p = Program::new(vec![
            Instr::Rmw {
                op: RmwOp::Swap,
                dst: Reg::R1,
                base: Reg::R1,
                offset: 0,
                src: Reg::R2,
                cmp: Reg::R0,
                ord: crate::MemOrder::SeqCst,
            },
            Instr::Halt,
        ]);
        assert!(matches!(p, Err(ValidateProgramError::RmwDstAliasesBase { pc: 0 })));
    }

    #[test]
    fn rejects_fallthrough_end() {
        let p = Program::new(vec![Instr::Nop]);
        assert_eq!(p, Err(ValidateProgramError::FallsOffEnd));
    }

    #[test]
    fn accepts_valid_program_and_classifies() {
        let p = Program::new(vec![
            Instr::Alu { op: AluOp::Add, dst: Reg::R1, a: Reg::R0, b: Operand::Imm(1) },
            Instr::Store { src: Reg::R1, base: Reg::R0, offset: 0, ord: crate::MemOrder::Relaxed },
            Instr::Halt,
        ])
        .unwrap();
        assert_eq!(p.len(), 3);
        let hist = p.class_histogram();
        assert!(hist.contains(&(InstrClass::Alu, 1)));
        assert!(hist.contains(&(InstrClass::Store, 1)));
        assert!(hist.contains(&(InstrClass::Other, 1)));
    }
}
