//! Human-readable program listings (used by debugging tools and the
//! examples when inspecting generated kernels).

use crate::instr::{AluOp, Cond, Instr, Operand, RmwOp};
use crate::order::MemOrder;
use crate::program::Program;
use std::fmt::Write;

fn alu_mnemonic(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Shl => "shl",
        AluOp::Shr => "shr",
        AluOp::Sra => "sra",
        AluOp::Mul => "mul",
        AluOp::SltU => "sltu",
        AluOp::Slt => "slt",
    }
}

fn cond_mnemonic(cond: Cond) -> &'static str {
    match cond {
        Cond::Eq => "beq",
        Cond::Ne => "bne",
        Cond::Lt => "blt",
        Cond::Ge => "bge",
        Cond::LtU => "bltu",
        Cond::GeU => "bgeu",
    }
}

fn rmw_mnemonic(op: RmwOp) -> &'static str {
    match op {
        RmwOp::FetchAdd => "fetch_add",
        RmwOp::FetchAnd => "fetch_and",
        RmwOp::FetchOr => "fetch_or",
        RmwOp::FetchXor => "fetch_xor",
        RmwOp::Swap => "swap",
        RmwOp::TestSet => "test_set",
        RmwOp::CompareSwap => "cas",
    }
}

fn operand(o: Operand) -> String {
    match o {
        Operand::Reg(r) => r.to_string(),
        Operand::Imm(v) => format!("#{v}"),
    }
}

/// Suffix for a non-default ordering annotation (`.acq`, `.sc`, ...).
fn ord_suffix(ord: MemOrder, default: MemOrder) -> String {
    if ord == default {
        String::new()
    } else {
        format!(".{ord}")
    }
}

/// Formats one instruction as assembly-like text.
pub fn disasm_instr(i: &Instr) -> String {
    match *i {
        Instr::Alu { op, dst, a, b } => {
            format!("{:<10} {dst}, {a}, {}", alu_mnemonic(op), operand(b))
        }
        Instr::Load { dst, base, offset, ord } => {
            let m = format!("ld{}", ord_suffix(ord, MemOrder::Relaxed));
            format!("{m:<10} {dst}, [{base}{offset:+}]")
        }
        Instr::Store { src, base, offset, ord } => {
            let m = format!("st{}", ord_suffix(ord, MemOrder::Relaxed));
            format!("{m:<10} {src}, [{base}{offset:+}]")
        }
        Instr::Rmw { op, dst, base, offset, src, cmp, ord } => {
            let m = format!("{}{}", rmw_mnemonic(op), ord_suffix(ord, MemOrder::SeqCst));
            let mut s = format!("{m:<10} {dst}, [{base}{offset:+}], {src}");
            if matches!(op, RmwOp::CompareSwap) {
                let _ = write!(s, ", cmp={cmp}");
            }
            s
        }
        Instr::Branch { cond, a, b, target } => {
            format!("{:<10} {a}, {}, -> {target}", cond_mnemonic(cond), operand(b))
        }
        Instr::Jump { target } => format!("{:<10} -> {target}", "jump"),
        Instr::Fence { ord } => format!("mfence{}", ord_suffix(ord, MemOrder::SeqCst)),
        Instr::Pause => "pause".to_string(),
        Instr::MonitorWait { base, offset } => {
            format!("{:<10} [{base}{offset:+}]", "mwait")
        }
        Instr::Halt => "halt".to_string(),
        Instr::Nop => "nop".to_string(),
    }
}

/// Formats a whole program with indices and branch-target markers.
///
/// ```
/// use fa_isa::{Kasm, Reg, disasm::disasm_program};
///
/// let mut k = Kasm::new();
/// let top = k.here_label();
/// k.addi(Reg::R1, Reg::R1, 1);
/// k.blt_imm(Reg::R1, 3, top);
/// k.halt();
/// let text = disasm_program(&k.finish().unwrap());
/// assert!(text.contains("add"));
/// assert!(text.contains("halt"));
/// ```
pub fn disasm_program(p: &Program) -> String {
    // Mark every instruction some branch jumps to.
    let mut is_target = vec![false; p.len()];
    for i in p.iter() {
        if let Instr::Branch { target, .. } | Instr::Jump { target } = *i {
            is_target[target as usize] = true;
        }
    }
    let mut out = String::new();
    for (pc, i) in p.iter().enumerate() {
        let mark = if is_target[pc] { ">" } else { " " };
        let _ = writeln!(out, "{mark}{pc:>5}:  {}", disasm_instr(i));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Kasm;
    use crate::reg::Reg;

    #[test]
    fn every_instruction_kind_formats() {
        let mut k = Kasm::new();
        let top = k.here_label();
        k.li(Reg::R1, 5);
        k.ld(Reg::R2, Reg::R1, 8);
        k.st(Reg::R2, Reg::R1, -8);
        k.fetch_add(Reg::R3, Reg::R1, 0, Reg::R2);
        k.cas(Reg::R4, Reg::R1, 0, Reg::R5, Reg::R6);
        k.fence();
        k.pause();
        k.monitor_wait(Reg::R1, 0);
        k.bne(Reg::R2, Reg::R3, top);
        k.jump(top);
        k.nop();
        k.halt();
        let text = disasm_program(&k.finish().unwrap());
        for needle in [
            "add", "ld", "st", "fetch_add", "cas", "cmp=r5", "mfence", "pause", "mwait", "bne",
            "jump", "nop", "halt", "[r1+8]", "[r1-8]", "-> 0",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // The loop head is marked as a branch target.
        assert!(text.lines().next().unwrap().starts_with('>'));
    }

    #[test]
    fn listing_has_one_line_per_instruction() {
        let mut k = Kasm::new();
        k.li(Reg::R1, 1);
        k.halt();
        let p = k.finish().unwrap();
        assert_eq!(disasm_program(&p).lines().count(), p.len());
    }
}
