//! Architectural registers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of general-purpose architectural registers.
pub const NUM_ARCH_REGS: usize = 32;

/// Number of hidden micro-architectural temporaries used by the micro-op
/// decoder (e.g. the value produced by the `op` micro-op of an atomic RMW
/// travels to the `store_unlock` through a temporary).
pub const NUM_TEMP_REGS: usize = 4;

/// Total register-file size seen by the rename stage.
pub const NUM_REGS: usize = NUM_ARCH_REGS + NUM_TEMP_REGS;

/// An architectural register.
///
/// `R0` is hard-wired to zero: reads return 0, writes are discarded — the
/// RISC convention, which keeps the assembler DSL compact. `T0..T3` are
/// decoder-internal temporaries and never appear in guest programs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(u8);

macro_rules! named_regs {
    ($($name:ident = $idx:expr),* $(,)?) => {
        impl Reg {
            $(pub const $name: Reg = Reg($idx);)*
        }
    };
}

named_regs! {
    R0 = 0, R1 = 1, R2 = 2, R3 = 3, R4 = 4, R5 = 5, R6 = 6, R7 = 7,
    R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14, R15 = 15,
    R16 = 16, R17 = 17, R18 = 18, R19 = 19, R20 = 20, R21 = 21, R22 = 22, R23 = 23,
    R24 = 24, R25 = 25, R26 = 26, R27 = 27, R28 = 28, R29 = 29, R30 = 30, R31 = 31,
    T0 = 32, T1 = 33, T2 = 34, T3 = 35,
}

impl Reg {
    /// Creates a general-purpose register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 32`; the temporaries `T0..T3` cannot be created this
    /// way on purpose, as they are reserved for the decoder.
    pub fn new(idx: u8) -> Reg {
        assert!((idx as usize) < NUM_ARCH_REGS, "register index {idx} out of range");
        Reg(idx)
    }

    /// Index into a combined (architectural + temporary) register file.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// True for the hard-wired zero register.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// True for decoder-internal temporaries.
    #[inline]
    pub fn is_temp(self) -> bool {
        (self.0 as usize) >= NUM_ARCH_REGS
    }
}

impl Default for Reg {
    /// The zero register.
    fn default() -> Reg {
        Reg::R0
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_temp() {
            write!(f, "t{}", self.0 as usize - NUM_ARCH_REGS)
        } else {
            write!(f, "r{}", self.0)
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_round_trip() {
        for i in 0..32u8 {
            assert_eq!(Reg::new(i).index(), i as usize);
        }
    }

    #[test]
    fn zero_and_temp_classification() {
        assert!(Reg::R0.is_zero());
        assert!(!Reg::R1.is_zero());
        assert!(Reg::T0.is_temp());
        assert!(!Reg::R31.is_temp());
    }

    #[test]
    #[should_panic]
    fn new_rejects_temp_range() {
        let _ = Reg::new(32);
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::R7.to_string(), "r7");
        assert_eq!(Reg::T1.to_string(), "t1");
    }
}
