//! `Kasm`, a tiny kernel assembler.
//!
//! The workload suite writes its guest kernels through this builder: it
//! provides labels with forward references, mnemonic-style emitters, and
//! validates the finished [`Program`].
//!
//! ```
//! use fa_isa::{Kasm, Reg};
//!
//! let mut k = Kasm::new();
//! let done = k.new_label();
//! k.li(Reg::R1, 5);
//! let top = k.here_label();
//! k.addi(Reg::R1, Reg::R1, -1);
//! k.beq_imm(Reg::R1, 0, done);
//! k.jump(top);
//! k.bind(done);
//! k.halt();
//! let prog = k.finish().unwrap();
//! assert_eq!(prog.len(), 5);
//! ```

use crate::instr::{AluOp, Cond, Instr, Operand, RmwOp};
use crate::order::MemOrder;
use crate::program::{Program, ValidateProgramError};
use crate::reg::Reg;
use std::fmt;

/// A branch target. Created unbound (forward reference) by
/// [`Kasm::new_label`] and bound to a position with [`Kasm::bind`], or both
/// at once by [`Kasm::here_label`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Label(usize);

/// Error produced by [`Kasm::finish`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never bound.
    UnboundLabel(Label),
    /// A label was bound twice.
    Rebound(Label),
    /// The patched program failed validation.
    Invalid(ValidateProgramError),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel(l) => write!(f, "label {l:?} referenced but never bound"),
            AsmError::Rebound(l) => write!(f, "label {l:?} bound twice"),
            AsmError::Invalid(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for AsmError {}

impl From<ValidateProgramError> for AsmError {
    fn from(e: ValidateProgramError) -> AsmError {
        AsmError::Invalid(e)
    }
}

/// The kernel assembler. See the [module documentation](self) for an example.
#[derive(Clone, Debug, Default)]
pub struct Kasm {
    instrs: Vec<Instr>,
    labels: Vec<Option<u32>>,
    fixups: Vec<(usize, Label)>,
    rebound: Option<Label>,
}

impl Kasm {
    /// Creates an empty assembler.
    pub fn new() -> Kasm {
        Kasm::default()
    }

    /// Current position (index of the next emitted instruction).
    pub fn here(&self) -> usize {
        self.instrs.len()
    }

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    pub fn bind(&mut self, label: Label) {
        if self.labels[label.0].is_some() {
            self.rebound.get_or_insert(label);
            return;
        }
        self.labels[label.0] = Some(self.instrs.len() as u32);
    }

    /// Creates a label bound to the current position.
    pub fn here_label(&mut self) -> Label {
        let l = self.new_label();
        self.bind(l);
        l
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, i: Instr) -> &mut Kasm {
        self.instrs.push(i);
        self
    }

    // ---- ALU ----

    /// `dst = a <op> b`
    pub fn alu(&mut self, op: AluOp, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Kasm {
        self.emit(Instr::Alu { op, dst, a, b: b.into() })
    }

    /// `dst = a + b`
    pub fn add(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Kasm {
        self.alu(AluOp::Add, dst, a, b)
    }

    /// `dst = a + imm`
    pub fn addi(&mut self, dst: Reg, a: Reg, imm: i64) -> &mut Kasm {
        self.alu(AluOp::Add, dst, a, imm)
    }

    /// `dst = a - b`
    pub fn sub(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Kasm {
        self.alu(AluOp::Sub, dst, a, b)
    }

    /// `dst = a * b`
    pub fn mul(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Kasm {
        self.alu(AluOp::Mul, dst, a, b)
    }

    /// `dst = a & imm_or_reg`
    pub fn and(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Kasm {
        self.alu(AluOp::And, dst, a, b)
    }

    /// `dst = a | imm_or_reg`
    pub fn or(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Kasm {
        self.alu(AluOp::Or, dst, a, b)
    }

    /// `dst = a ^ imm_or_reg`
    pub fn xor(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Kasm {
        self.alu(AluOp::Xor, dst, a, b)
    }

    /// `dst = a << sh`
    pub fn shl(&mut self, dst: Reg, a: Reg, sh: impl Into<Operand>) -> &mut Kasm {
        self.alu(AluOp::Shl, dst, a, sh)
    }

    /// `dst = a >> sh` (logical)
    pub fn shr(&mut self, dst: Reg, a: Reg, sh: impl Into<Operand>) -> &mut Kasm {
        self.alu(AluOp::Shr, dst, a, sh)
    }

    /// `dst = imm`
    pub fn li(&mut self, dst: Reg, imm: i64) -> &mut Kasm {
        self.addi(dst, Reg::R0, imm)
    }

    /// `dst = src`
    pub fn mov(&mut self, dst: Reg, src: Reg) -> &mut Kasm {
        self.addi(dst, src, 0)
    }

    // ---- Memory ----

    /// `dst = mem[base + offset]` (relaxed ordering).
    pub fn ld(&mut self, dst: Reg, base: Reg, offset: i64) -> &mut Kasm {
        self.ld_ord(dst, base, offset, MemOrder::Relaxed)
    }

    /// `dst = mem[base + offset]` with an explicit ordering annotation.
    pub fn ld_ord(&mut self, dst: Reg, base: Reg, offset: i64, ord: MemOrder) -> &mut Kasm {
        self.emit(Instr::Load { dst, base, offset, ord })
    }

    /// `mem[base + offset] = src` (relaxed ordering).
    pub fn st(&mut self, src: Reg, base: Reg, offset: i64) -> &mut Kasm {
        self.st_ord(src, base, offset, MemOrder::Relaxed)
    }

    /// `mem[base + offset] = src` with an explicit ordering annotation.
    pub fn st_ord(&mut self, src: Reg, base: Reg, offset: i64, ord: MemOrder) -> &mut Kasm {
        self.emit(Instr::Store { src, base, offset, ord })
    }

    // ---- Atomics ----

    /// Generic RMW; `dst` receives the old value.
    pub fn rmw(&mut self, op: RmwOp, dst: Reg, base: Reg, offset: i64, src: Reg) -> &mut Kasm {
        self.rmw_ord(op, dst, base, offset, src, MemOrder::SeqCst)
    }

    /// Generic RMW with an explicit ordering annotation. The annotation is
    /// recorded but RMWs execute at `SeqCst` strength in both memory models.
    pub fn rmw_ord(
        &mut self,
        op: RmwOp,
        dst: Reg,
        base: Reg,
        offset: i64,
        src: Reg,
        ord: MemOrder,
    ) -> &mut Kasm {
        self.emit(Instr::Rmw { op, dst, base, offset, src, cmp: Reg::R0, ord })
    }

    /// `dst = fetch_add(mem[base+offset], src)`
    pub fn fetch_add(&mut self, dst: Reg, base: Reg, offset: i64, src: Reg) -> &mut Kasm {
        self.rmw(RmwOp::FetchAdd, dst, base, offset, src)
    }

    /// `dst = swap(mem[base+offset], src)`
    pub fn swap(&mut self, dst: Reg, base: Reg, offset: i64, src: Reg) -> &mut Kasm {
        self.rmw(RmwOp::Swap, dst, base, offset, src)
    }

    /// `dst = test_and_set(mem[base+offset])`
    pub fn test_set(&mut self, dst: Reg, base: Reg, offset: i64) -> &mut Kasm {
        self.rmw(RmwOp::TestSet, dst, base, offset, Reg::R0)
    }

    /// `dst = cas(mem[base+offset], expected=cmp, new=src)`; `dst` gets the
    /// old value (compare with `cmp` to test success).
    pub fn cas(&mut self, dst: Reg, base: Reg, offset: i64, cmp: Reg, src: Reg) -> &mut Kasm {
        self.emit(Instr::Rmw {
            op: RmwOp::CompareSwap,
            dst,
            base,
            offset,
            src,
            cmp,
            ord: MemOrder::SeqCst,
        })
    }

    // ---- Control ----

    fn branch_to(&mut self, cond: Cond, a: Reg, b: Operand, label: Label) -> &mut Kasm {
        self.fixups.push((self.instrs.len(), label));
        self.emit(Instr::Branch { cond, a, b, target: u32::MAX })
    }

    /// Branch if `a == b`.
    pub fn beq(&mut self, a: Reg, b: Reg, label: Label) -> &mut Kasm {
        self.branch_to(Cond::Eq, a, Operand::Reg(b), label)
    }

    /// Branch if `a == imm`.
    pub fn beq_imm(&mut self, a: Reg, imm: i64, label: Label) -> &mut Kasm {
        self.branch_to(Cond::Eq, a, Operand::Imm(imm), label)
    }

    /// Branch if `a != b`.
    pub fn bne(&mut self, a: Reg, b: Reg, label: Label) -> &mut Kasm {
        self.branch_to(Cond::Ne, a, Operand::Reg(b), label)
    }

    /// Branch if `a != imm`.
    pub fn bne_imm(&mut self, a: Reg, imm: i64, label: Label) -> &mut Kasm {
        self.branch_to(Cond::Ne, a, Operand::Imm(imm), label)
    }

    /// Branch if signed `a < b`.
    pub fn blt(&mut self, a: Reg, b: Reg, label: Label) -> &mut Kasm {
        self.branch_to(Cond::Lt, a, Operand::Reg(b), label)
    }

    /// Branch if signed `a < imm`.
    pub fn blt_imm(&mut self, a: Reg, imm: i64, label: Label) -> &mut Kasm {
        self.branch_to(Cond::Lt, a, Operand::Imm(imm), label)
    }

    /// Branch if signed `a >= b`.
    pub fn bge(&mut self, a: Reg, b: Reg, label: Label) -> &mut Kasm {
        self.branch_to(Cond::Ge, a, Operand::Reg(b), label)
    }

    /// Branch if unsigned `a < b`.
    pub fn bltu(&mut self, a: Reg, b: Reg, label: Label) -> &mut Kasm {
        self.branch_to(Cond::LtU, a, Operand::Reg(b), label)
    }

    /// Unconditional jump.
    pub fn jump(&mut self, label: Label) -> &mut Kasm {
        self.fixups.push((self.instrs.len(), label));
        self.emit(Instr::Jump { target: u32::MAX })
    }

    // ---- Misc ----

    /// Standalone sequentially-consistent memory fence (`MFENCE`).
    pub fn fence(&mut self) -> &mut Kasm {
        self.fence_ord(MemOrder::SeqCst)
    }

    /// Standalone memory fence with an explicit ordering annotation.
    pub fn fence_ord(&mut self, ord: MemOrder) -> &mut Kasm {
        self.emit(Instr::Fence { ord })
    }

    /// Spin hint.
    pub fn pause(&mut self) -> &mut Kasm {
        self.emit(Instr::Pause)
    }

    /// Sleep until `mem[base+offset]`'s line is written remotely.
    pub fn monitor_wait(&mut self, base: Reg, offset: i64) -> &mut Kasm {
        self.emit(Instr::MonitorWait { base, offset })
    }

    /// Terminate the thread.
    pub fn halt(&mut self) -> &mut Kasm {
        self.emit(Instr::Halt)
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Kasm {
        self.emit(Instr::Nop)
    }

    /// Resolves labels and validates the program.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] if any referenced label is unbound, a label was
    /// bound twice, or the resulting program fails [`Program::new`]
    /// validation.
    pub fn finish(mut self) -> Result<Program, AsmError> {
        if let Some(l) = self.rebound {
            return Err(AsmError::Rebound(l));
        }
        for (pos, label) in &self.fixups {
            let target = self.labels[label.0].ok_or(AsmError::UnboundLabel(*label))?;
            match &mut self.instrs[*pos] {
                Instr::Branch { target: t, .. } | Instr::Jump { target: t } => *t = target,
                other => unreachable!("fixup at non-branch {other:?}"),
            }
        }
        Ok(Program::new(self.instrs)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut k = Kasm::new();
        let fwd = k.new_label();
        let back = k.here_label();
        k.jump(fwd); // 0 -> 2
        k.jump(back); // 1 -> 0 (dead, but valid)
        k.bind(fwd);
        k.halt(); // 2
        let p = k.finish().unwrap();
        assert_eq!(p.get(0), Some(&Instr::Jump { target: 2 }));
        assert_eq!(p.get(1), Some(&Instr::Jump { target: 0 }));
    }

    #[test]
    fn unbound_label_errors() {
        let mut k = Kasm::new();
        let l = k.new_label();
        k.jump(l);
        k.halt();
        assert!(matches!(k.finish(), Err(AsmError::UnboundLabel(_))));
    }

    #[test]
    fn double_bind_errors() {
        let mut k = Kasm::new();
        let l = k.new_label();
        k.bind(l);
        k.nop();
        k.bind(l);
        k.halt();
        assert!(matches!(k.finish(), Err(AsmError::Rebound(_))));
    }

    #[test]
    fn validation_errors_propagate() {
        let mut k = Kasm::new();
        k.nop(); // falls off the end
        assert!(matches!(
            k.finish(),
            Err(AsmError::Invalid(ValidateProgramError::FallsOffEnd))
        ));
    }

    #[test]
    fn mnemonics_emit_expected_instrs() {
        let mut k = Kasm::new();
        k.li(Reg::R1, 7);
        k.fetch_add(Reg::R2, Reg::R1, 8, Reg::R3);
        k.cas(Reg::R4, Reg::R1, 0, Reg::R5, Reg::R6);
        k.halt();
        let p = k.finish().unwrap();
        assert!(matches!(p.get(1), Some(Instr::Rmw { op: RmwOp::FetchAdd, offset: 8, .. })));
        assert!(matches!(
            p.get(2),
            Some(Instr::Rmw { op: RmwOp::CompareSwap, cmp: Reg::R5, src: Reg::R6, .. })
        ));
    }

    #[test]
    fn ordering_emitters_and_defaults() {
        let mut k = Kasm::new();
        k.ld(Reg::R1, Reg::R0, 0x100);
        k.ld_ord(Reg::R2, Reg::R0, 0x100, MemOrder::Acquire);
        k.st(Reg::R1, Reg::R0, 0x108);
        k.st_ord(Reg::R1, Reg::R0, 0x108, MemOrder::SeqCst);
        k.fence();
        k.fence_ord(MemOrder::Acquire);
        k.rmw_ord(RmwOp::FetchAdd, Reg::R3, Reg::R1, 0, Reg::R2, MemOrder::AcqRel);
        k.halt();
        let p = k.finish().unwrap();
        assert!(matches!(p.get(0), Some(Instr::Load { ord: MemOrder::Relaxed, .. })));
        assert!(matches!(p.get(1), Some(Instr::Load { ord: MemOrder::Acquire, .. })));
        assert!(matches!(p.get(2), Some(Instr::Store { ord: MemOrder::Relaxed, .. })));
        assert!(matches!(p.get(3), Some(Instr::Store { ord: MemOrder::SeqCst, .. })));
        assert!(matches!(p.get(4), Some(Instr::Fence { ord: MemOrder::SeqCst })));
        assert!(matches!(p.get(5), Some(Instr::Fence { ord: MemOrder::Acquire })));
        assert!(matches!(p.get(6), Some(Instr::Rmw { ord: MemOrder::AcqRel, .. })));
    }
}
