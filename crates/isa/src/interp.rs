//! Sequential golden-model interpreters.
//!
//! Two executors live here:
//!
//! * [`Interp`] — runs a single program to completion, one instruction at a
//!   time. Used as the reference model in property tests: any single-core
//!   execution of the detailed out-of-order pipeline must produce exactly the
//!   same architectural state.
//! * [`McInterp`] — runs several programs under a *sequentially consistent*
//!   interleaving chosen by a deterministic schedule. Useful as an oracle for
//!   programs whose result is interleaving-independent (e.g. all cores
//!   fetch-add a shared counter) and for computing expected outputs of
//!   data-parallel kernels.

use crate::instr::{Instr, Operand};
use crate::program::Program;
use crate::reg::{Reg, NUM_REGS};
use crate::{Addr, Word};
use std::fmt;

/// Flat, word-granular guest memory.
///
/// All guest accesses are 8 bytes wide and 8-byte aligned; the backing store
/// is a `Vec<u64>` indexed by `addr / 8`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GuestMem {
    words: Vec<Word>,
}

impl GuestMem {
    /// Allocates `bytes` of zeroed memory (rounded up to 8).
    pub fn new(bytes: u64) -> GuestMem {
        GuestMem { words: vec![0; bytes.div_ceil(8) as usize] }
    }

    /// Size in bytes.
    pub fn size(&self) -> u64 {
        self.words.len() as u64 * 8
    }

    fn index(&self, addr: Addr) -> usize {
        assert!(addr.is_multiple_of(8), "misaligned guest access at {addr:#x}");
        let idx = (addr / 8) as usize;
        assert!(idx < self.words.len(), "guest access out of bounds at {addr:#x}");
        idx
    }

    /// Reads the 8-byte word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics on misaligned or out-of-bounds access — both indicate a bug in
    /// a workload kernel, never a legal guest behaviour.
    #[inline]
    pub fn load(&self, addr: Addr) -> Word {
        self.words[self.index(addr)]
    }

    /// Writes the 8-byte word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics on misaligned or out-of-bounds access.
    #[inline]
    pub fn store(&mut self, addr: Addr, value: Word) {
        let i = self.index(addr);
        self.words[i] = value;
    }

    /// True if `addr` names an in-bounds, aligned word.
    pub fn contains(&self, addr: Addr) -> bool {
        addr.is_multiple_of(8) && ((addr / 8) as usize) < self.words.len()
    }
}

/// Why an interpreter stopped before `Halt`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InterpError {
    /// The step budget ran out before every thread halted.
    StepLimit,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::StepLimit => write!(f, "step limit exceeded before halt"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Architectural thread context: PC + register file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadCtx {
    /// Program counter (instruction index).
    pub pc: u32,
    /// Register file including decoder temporaries.
    pub regs: [Word; NUM_REGS],
    /// True once `Halt` has executed.
    pub halted: bool,
}

impl Default for ThreadCtx {
    fn default() -> ThreadCtx {
        ThreadCtx { pc: 0, regs: [0; NUM_REGS], halted: false }
    }
}

impl ThreadCtx {
    /// Reads a register (the zero register reads 0).
    #[inline]
    pub fn read(&self, r: Reg) -> Word {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Writes a register (writes to the zero register are discarded).
    #[inline]
    pub fn write(&mut self, r: Reg, v: Word) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    fn operand(&self, op: Operand) -> Word {
        match op {
            Operand::Reg(r) => self.read(r),
            Operand::Imm(v) => v as u64,
        }
    }
}

/// Executes one instruction of `prog` for thread `ctx` against `mem`.
///
/// Returns `true` if the thread is still running. `Fence`, `Pause` and
/// `MonitorWait` are no-ops here (the golden model is sequentially
/// consistent, so fences add nothing and sleeping is invisible).
pub fn step_thread(prog: &Program, ctx: &mut ThreadCtx, mem: &mut GuestMem) -> bool {
    if ctx.halted {
        return false;
    }
    let instr = *prog.get(ctx.pc as usize).expect("pc past validated program end");
    let mut next = ctx.pc + 1;
    match instr {
        Instr::Alu { op, dst, a, b } => {
            let v = op.eval(ctx.read(a), ctx.operand(b));
            ctx.write(dst, v);
        }
        Instr::Load { dst, base, offset, .. } => {
            let addr = ctx.read(base).wrapping_add(offset as u64);
            let v = mem.load(addr);
            ctx.write(dst, v);
        }
        Instr::Store { src, base, offset, .. } => {
            let addr = ctx.read(base).wrapping_add(offset as u64);
            mem.store(addr, ctx.read(src));
        }
        Instr::Rmw { op, dst, base, offset, src, cmp, .. } => {
            let addr = ctx.read(base).wrapping_add(offset as u64);
            let old = mem.load(addr);
            let newv = op.store_value(old, ctx.read(src), ctx.read(cmp));
            mem.store(addr, newv);
            ctx.write(dst, old);
        }
        Instr::Branch { cond, a, b, target } => {
            if cond.eval(ctx.read(a), ctx.operand(b)) {
                next = target;
            }
        }
        Instr::Jump { target } => next = target,
        Instr::Fence { .. } | Instr::Pause | Instr::MonitorWait { .. } | Instr::Nop => {}
        Instr::Halt => {
            ctx.halted = true;
            return false;
        }
    }
    ctx.pc = next;
    true
}

/// Single-thread golden-model interpreter.
#[derive(Clone, Debug)]
pub struct Interp {
    prog: Program,
    ctx: ThreadCtx,
    mem: GuestMem,
    /// Dynamic instructions executed so far.
    pub executed: u64,
}

impl Interp {
    /// Creates an interpreter over `prog` with `mem_bytes` of zeroed memory.
    pub fn new(prog: Program, mem_bytes: u64) -> Interp {
        Interp { prog, ctx: ThreadCtx::default(), mem: GuestMem::new(mem_bytes), executed: 0 }
    }

    /// Creates an interpreter with pre-initialized memory.
    pub fn with_mem(prog: Program, mem: GuestMem) -> Interp {
        Interp { prog, ctx: ThreadCtx::default(), mem, executed: 0 }
    }

    /// Runs until `Halt` or until `max_steps` instructions have executed.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError::StepLimit`] if the budget is exhausted first.
    pub fn run(&mut self, max_steps: u64) -> Result<(), InterpError> {
        for _ in 0..max_steps {
            if !step_thread(&self.prog, &mut self.ctx, &mut self.mem) {
                if self.ctx.halted {
                    // The Halt instruction itself executed.
                    self.executed += 1;
                }
                return Ok(());
            }
            self.executed += 1;
        }
        if self.ctx.halted {
            Ok(())
        } else {
            Err(InterpError::StepLimit)
        }
    }

    /// Final memory.
    pub fn mem(&self) -> &GuestMem {
        &self.mem
    }

    /// Mutable memory (for pre-run initialization).
    pub fn mem_mut(&mut self) -> &mut GuestMem {
        &mut self.mem
    }

    /// Thread context (registers, PC, halt flag).
    pub fn ctx(&self) -> &ThreadCtx {
        &self.ctx
    }
}

/// Multi-thread sequentially consistent interpreter.
///
/// Threads are interleaved by a deterministic schedule: thread `i` executes
/// `quantum` instructions, then the next runnable thread takes over, with a
/// seeded xorshift perturbation of the rotation order so different seeds
/// explore different interleavings.
#[derive(Clone, Debug)]
pub struct McInterp {
    progs: Vec<Program>,
    ctxs: Vec<ThreadCtx>,
    mem: GuestMem,
    quantum: u32,
    rng: u64,
    /// Total dynamic instructions executed across all threads.
    pub executed: u64,
}

impl McInterp {
    /// Creates a multicore interpreter with `mem_bytes` of zeroed memory.
    pub fn new(progs: Vec<Program>, mem_bytes: u64, seed: u64) -> McInterp {
        let n = progs.len();
        McInterp {
            progs,
            ctxs: vec![ThreadCtx::default(); n],
            mem: GuestMem::new(mem_bytes),
            quantum: 16,
            rng: seed | 1,
            executed: 0,
        }
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Sets the scheduling quantum (instructions per turn).
    pub fn set_quantum(&mut self, q: u32) {
        self.quantum = q.max(1);
    }

    /// Mutable memory (for pre-run initialization).
    pub fn mem_mut(&mut self) -> &mut GuestMem {
        &mut self.mem
    }

    /// Final memory.
    pub fn mem(&self) -> &GuestMem {
        &self.mem
    }

    /// Thread contexts.
    pub fn ctxs(&self) -> &[ThreadCtx] {
        &self.ctxs
    }

    /// Runs until all threads halt or `max_steps` total instructions execute.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError::StepLimit`] if the budget is exhausted first —
    /// including when remaining threads spin forever on a condition another
    /// (halted) thread will never satisfy.
    pub fn run(&mut self, max_steps: u64) -> Result<(), InterpError> {
        let n = self.progs.len();
        let mut budget = max_steps;
        while budget > 0 {
            if self.ctxs.iter().all(|c| c.halted) {
                return Ok(());
            }
            let start = (self.next_rand() as usize) % n;
            let mut progressed = false;
            for off in 0..n {
                let t = (start + off) % n;
                if self.ctxs[t].halted {
                    continue;
                }
                for _ in 0..self.quantum {
                    if budget == 0 {
                        break;
                    }
                    if !step_thread(&self.progs[t], &mut self.ctxs[t], &mut self.mem) {
                        // The thread was runnable, so this is a fresh Halt:
                        // count the Halt instruction itself.
                        self.executed += 1;
                        progressed = true;
                        break;
                    }
                    self.executed += 1;
                    budget -= 1;
                    progressed = true;
                }
            }
            if !progressed && self.ctxs.iter().all(|c| c.halted) {
                return Ok(());
            }
        }
        if self.ctxs.iter().all(|c| c.halted) {
            Ok(())
        } else {
            Err(InterpError::StepLimit)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Kasm;
    use crate::instr::RmwOp;

    #[test]
    fn guest_mem_load_store() {
        let mut m = GuestMem::new(64);
        m.store(8, 0xdead_beef);
        assert_eq!(m.load(8), 0xdead_beef);
        assert_eq!(m.load(16), 0);
        assert_eq!(m.size(), 64);
        assert!(m.contains(56));
        assert!(!m.contains(64));
        assert!(!m.contains(7));
    }

    #[test]
    #[should_panic]
    fn guest_mem_rejects_misaligned() {
        let m = GuestMem::new(64);
        let _ = m.load(4);
    }

    #[test]
    fn countdown_loop_runs() {
        let mut k = Kasm::new();
        let done = k.new_label();
        k.li(Reg::R1, 100);
        let top = k.here_label();
        k.addi(Reg::R1, Reg::R1, -1);
        k.beq_imm(Reg::R1, 0, done);
        k.jump(top);
        k.bind(done);
        k.st(Reg::R1, Reg::R0, 0);
        k.halt();
        let mut i = Interp::new(k.finish().unwrap(), 64);
        i.run(10_000).unwrap();
        assert_eq!(i.ctx().read(Reg::R1), 0);
        assert!(i.ctx().halted);
    }

    #[test]
    fn step_limit_reported() {
        let mut k = Kasm::new();
        let top = k.here_label();
        k.jump(top);
        let mut i = Interp::new(k.finish().unwrap(), 8);
        assert_eq!(i.run(100), Err(InterpError::StepLimit));
    }

    #[test]
    fn rmw_semantics_in_interp() {
        let mut k = Kasm::new();
        k.li(Reg::R1, 8); // address
        k.li(Reg::R2, 5);
        k.rmw(RmwOp::FetchAdd, Reg::R3, Reg::R1, 0, Reg::R2);
        k.li(Reg::R4, 42);
        k.li(Reg::R5, 5); // expected (current value)
        k.cas(Reg::R6, Reg::R1, 0, Reg::R5, Reg::R4);
        k.halt();
        let mut i = Interp::new(k.finish().unwrap(), 64);
        i.run(100).unwrap();
        assert_eq!(i.ctx().read(Reg::R3), 0); // old value of fetch_add
        assert_eq!(i.ctx().read(Reg::R6), 5); // old value seen by CAS
        assert_eq!(i.mem().load(8), 42); // CAS succeeded
    }

    fn counter_prog(iters: i64) -> Program {
        let mut k = Kasm::new();
        k.li(Reg::R1, 0); // counter addr
        k.li(Reg::R2, 1);
        k.li(Reg::R3, 0);
        let top = k.here_label();
        k.fetch_add(Reg::R4, Reg::R1, 0, Reg::R2);
        k.addi(Reg::R3, Reg::R3, 1);
        k.blt_imm(Reg::R3, iters, top);
        k.halt();
        k.finish().unwrap()
    }

    #[test]
    fn mc_interp_counter_is_exact() {
        let n = 4;
        let iters = 50;
        let progs = vec![counter_prog(iters); n];
        for seed in [1u64, 7, 99] {
            let mut m = McInterp::new(progs.clone(), 64, seed);
            m.run(1_000_000).unwrap();
            assert_eq!(m.mem().load(0), (n as u64) * iters as u64);
        }
    }

    #[test]
    fn mc_interp_detects_livelock_via_step_limit() {
        // Thread 1 spins on a flag nobody sets.
        let mut k = Kasm::new();
        let top = k.here_label();
        k.ld(Reg::R1, Reg::R0, 0);
        k.beq_imm(Reg::R1, 0, top);
        k.halt();
        let spin = k.finish().unwrap();
        let mut m = McInterp::new(vec![spin], 64, 3);
        assert_eq!(m.run(1000), Err(InterpError::StepLimit));
    }
}
