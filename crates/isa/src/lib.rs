//! Guest ISA for the Free Atomics simulator.
//!
//! The paper ("Free Atomics: Hardware Atomic Operations without Fences",
//! ISCA 2022) studies a *micro-architectural* mechanism: executing atomic
//! read-modify-write (RMW) instructions without their surrounding memory
//! fences. The mechanism lives entirely at the micro-op / load-store-queue /
//! cache-lock level, so the guest ISA only needs to provide the same raw
//! material as the paper's x86 substrate:
//!
//! * 64-bit integer ALU operations,
//! * 8-byte loads and stores,
//! * conditional branches (so atomics can sit on speculative paths),
//! * atomic RMW instructions that decode into the canonical five micro-op
//!   sequence `mem_fence / load_lock / op / store_unlock / mem_fence`
//!   (Figure 2 of the paper), and
//! * a standalone `Fence` (x86 `MFENCE` analogue), `Pause` (spin hint),
//!   `MonitorWait` (MWAIT analogue used to model sleep cycles), and `Halt`.
//!
//! The crate also ships an assembler DSL ([`Kasm`]) used by the workload
//! suite, and a sequential golden-model interpreter ([`interp`]) used by the
//! property tests to validate the detailed out-of-order model.
//!
//! # Example
//!
//! ```
//! use fa_isa::{Kasm, Reg, RmwOp, interp::Interp};
//!
//! // A tiny kernel: fetch-and-add 1 to address 0x100, ten times.
//! let mut k = Kasm::new();
//! let counter = Reg::R1;
//! let one = Reg::R2;
//! let i = Reg::R3;
//! k.li(counter, 0x100);
//! k.li(one, 1);
//! k.li(i, 0);
//! let top = k.here_label();
//! k.rmw(RmwOp::FetchAdd, Reg::R4, counter, 0, one);
//! k.addi(i, i, 1);
//! k.blt_imm(i, 10, top);
//! k.halt();
//! let prog = k.finish().unwrap();
//!
//! let mut m = Interp::new(prog, 0x1000);
//! m.run(10_000).unwrap();
//! assert_eq!(m.mem().load(0x100), 10);
//! ```

pub mod asm;
pub mod disasm;
pub mod instr;
pub mod interp;
pub mod order;
pub mod program;
pub mod reg;
pub mod uop;

pub use asm::{AsmError, Kasm, Label};
pub use instr::{AluOp, Cond, Instr, Operand, RmwOp};
pub use order::MemOrder;
pub use program::{InstrClass, Program};
pub use reg::Reg;
pub use uop::{decode, FenceKind, Uop, UopKind};

/// Machine word: every architectural value is a 64-bit integer.
pub type Word = u64;

/// Byte address into the guest's flat physical address space.
pub type Addr = u64;

/// Log2 of the cache line size; lines are 64 bytes everywhere in the model.
pub const LINE_SHIFT: u32 = 6;

/// Cache line size in bytes.
pub const LINE_BYTES: u64 = 1 << LINE_SHIFT;

/// Returns the line-aligned base address containing `addr`.
#[inline]
pub fn line_of(addr: Addr) -> Addr {
    addr & !(LINE_BYTES - 1)
}

/// Returns true if two 8-byte accesses at `a` and `b` overlap.
///
/// All guest accesses are 8 bytes and 8-byte aligned, so overlap reduces to
/// equality; the helper exists so call sites state intent.
#[inline]
pub fn accesses_overlap(a: Addr, b: Addr) -> bool {
    a == b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_of_masks_low_bits() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(63), 0);
        assert_eq!(line_of(64), 64);
        assert_eq!(line_of(0x12345), 0x12340);
    }

    #[test]
    fn overlap_is_equality_for_aligned_words() {
        assert!(accesses_overlap(8, 8));
        assert!(!accesses_overlap(8, 16));
    }
}
