//! Micro-op decomposition.
//!
//! Atomic RMW instructions decode into the five micro-op sequence of the
//! paper's Figure 2 — `mem_fence / load_lock / op / store_unlock / mem_fence`
//! — using gem5-20 naming. The fence micro-ops are *always emitted*; whether
//! they actually constrain scheduling is decided by the core's atomic policy
//! (under the Free policies they retire as no-ops and are counted as
//! "omitted fences", the first column of Table 2).

use crate::instr::{AluOp, Cond, Instr, Operand, RmwOp};
use crate::order::MemOrder;
use crate::reg::Reg;
use serde::{Deserialize, Serialize};

/// Which role a fence micro-op plays.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum FenceKind {
    /// `Mem_Fence1` of an atomic RMW: drains the store buffer and blocks the
    /// `load_lock` until it is the oldest memory operation.
    AtomicPre,
    /// `Mem_Fence2` of an atomic RMW: blocks younger loads until the RMW
    /// commits.
    AtomicPost,
    /// A programmer-inserted `MFENCE`; never removed by any policy.
    Standalone,
}

impl FenceKind {
    /// True for the two fences that surround an atomic RMW — the ones Free
    /// Atomics removes.
    pub fn is_atomic_fence(self) -> bool {
        matches!(self, FenceKind::AtomicPre | FenceKind::AtomicPost)
    }
}

/// The operation a micro-op performs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum UopKind {
    /// Integer ALU operation.
    Alu { op: AluOp, dst: Reg, a: Reg, b: Operand },
    /// Ordinary load.
    Load { dst: Reg, base: Reg, offset: i64 },
    /// Ordinary store.
    Store { src: Reg, base: Reg, offset: i64 },
    /// The load half of an atomic RMW: reads with *write* permission and
    /// locks the target cache line when it performs.
    LoadLock { dst: Reg, base: Reg, offset: i64 },
    /// The arithmetic micro-op of an atomic RMW: consumes the `load_lock`
    /// result (`old`), produces the value to store into `dst` (a decoder
    /// temporary).
    RmwAlu { op: RmwOp, dst: Reg, old: Reg, src: Reg, cmp: Reg },
    /// The store half of an atomic RMW: writes and unlocks the line when it
    /// performs (drains from the store buffer).
    StoreUnlock { src: Reg, base: Reg, offset: i64 },
    /// Conditional branch.
    Branch { cond: Cond, a: Reg, b: Operand, target: u32 },
    /// Unconditional jump.
    Jump { target: u32 },
    /// Memory fence.
    Fence(FenceKind),
    /// MWAIT-style sleep on a watched line.
    MonitorWait { base: Reg, offset: i64 },
    /// Spin hint.
    Pause,
    /// Thread termination.
    Halt,
    /// No operation.
    Nop,
}

/// A decoded micro-op, tagged with its provenance.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Uop {
    /// Operation.
    pub kind: UopKind,
    /// Index of the parent instruction in the program.
    pub pc: u32,
    /// Position of this micro-op within the parent instruction (0-based).
    pub slot: u8,
    /// True for the final micro-op of the instruction; committing it retires
    /// the instruction.
    pub last: bool,
    /// Memory-ordering annotation inherited from the parent instruction.
    ///
    /// Meaningful on `Load`, `Store` and `Fence(Standalone)` micro-ops;
    /// atomic micro-ops (and their surrounding fences) carry the parent
    /// RMW's annotation for the record, but execute at `SeqCst` strength in
    /// both memory models. Non-memory micro-ops carry `Relaxed`.
    pub ord: MemOrder,
}

/// Fixed-capacity list of source registers (at most 3 for any micro-op).
#[derive(Clone, Copy, Debug, Default)]
pub struct SrcRegs {
    regs: [Reg; 3],
    len: u8,
}

impl SrcRegs {
    fn push(&mut self, r: Reg) {
        // The zero register is constant: not a real dependency.
        if !r.is_zero() {
            self.regs[self.len as usize] = r;
            self.len += 1;
        }
    }

    /// Iterates over the source registers.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        self.regs[..self.len as usize].iter().copied()
    }

    /// Number of source registers.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if there are no source registers.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Uop {
    /// The destination register written by this micro-op, if any.
    ///
    /// Writes to the zero register are architecturally discarded but still
    /// reported here; the rename stage handles the discard.
    pub fn dst(&self) -> Option<Reg> {
        match self.kind {
            UopKind::Alu { dst, .. }
            | UopKind::Load { dst, .. }
            | UopKind::LoadLock { dst, .. }
            | UopKind::RmwAlu { dst, .. } => Some(dst),
            _ => None,
        }
    }

    /// Source registers read by this micro-op (excluding the zero register).
    pub fn srcs(&self) -> SrcRegs {
        let mut s = SrcRegs::default();
        match self.kind {
            UopKind::Alu { a, b, .. } => {
                s.push(a);
                if let Operand::Reg(r) = b {
                    s.push(r);
                }
            }
            UopKind::Load { base, .. }
            | UopKind::LoadLock { base, .. }
            | UopKind::MonitorWait { base, .. } => s.push(base),
            UopKind::Store { src, base, .. } | UopKind::StoreUnlock { src, base, .. } => {
                s.push(base);
                s.push(src);
            }
            UopKind::RmwAlu { old, src, cmp, op, .. } => {
                s.push(old);
                s.push(src);
                if matches!(op, RmwOp::CompareSwap) {
                    s.push(cmp);
                }
            }
            UopKind::Branch { a, b, .. } => {
                s.push(a);
                if let Operand::Reg(r) = b {
                    s.push(r);
                }
            }
            _ => {}
        }
        s
    }

    /// True for micro-ops that access the data cache.
    pub fn is_mem(&self) -> bool {
        matches!(
            self.kind,
            UopKind::Load { .. }
                | UopKind::Store { .. }
                | UopKind::LoadLock { .. }
                | UopKind::StoreUnlock { .. }
        )
    }

    /// True for the load-class micro-ops (occupy a load-queue entry).
    pub fn is_load_class(&self) -> bool {
        matches!(self.kind, UopKind::Load { .. } | UopKind::LoadLock { .. })
    }

    /// True for the store-class micro-ops (occupy a store-queue entry).
    pub fn is_store_class(&self) -> bool {
        matches!(self.kind, UopKind::Store { .. } | UopKind::StoreUnlock { .. })
    }

    /// True if this micro-op belongs to an atomic RMW instruction.
    pub fn is_atomic_part(&self) -> bool {
        matches!(
            self.kind,
            UopKind::LoadLock { .. }
                | UopKind::RmwAlu { .. }
                | UopKind::StoreUnlock { .. }
                | UopKind::Fence(FenceKind::AtomicPre)
                | UopKind::Fence(FenceKind::AtomicPost)
        )
    }
}

/// Decodes one instruction into its micro-op sequence.
///
/// Ordinary instructions decode 1:1. Atomic RMWs decode into the Figure-2
/// five-micro-op sequence; the `op` micro-op writes decoder temporary
/// [`Reg::T0`], which the `store_unlock` reads.
pub fn decode(instr: Instr, pc: u32) -> Vec<Uop> {
    let ord = match instr {
        Instr::Load { ord, .. }
        | Instr::Store { ord, .. }
        | Instr::Rmw { ord, .. }
        | Instr::Fence { ord } => ord,
        _ => MemOrder::Relaxed,
    };
    let mk = |kind, slot, last| Uop { kind, pc, slot, last, ord };
    match instr {
        Instr::Alu { op, dst, a, b } => vec![mk(UopKind::Alu { op, dst, a, b }, 0, true)],
        Instr::Load { dst, base, offset, .. } => {
            vec![mk(UopKind::Load { dst, base, offset }, 0, true)]
        }
        Instr::Store { src, base, offset, .. } => {
            vec![mk(UopKind::Store { src, base, offset }, 0, true)]
        }
        Instr::Rmw { op, dst, base, offset, src, cmp, .. } => vec![
            mk(UopKind::Fence(FenceKind::AtomicPre), 0, false),
            mk(UopKind::LoadLock { dst, base, offset }, 1, false),
            mk(UopKind::RmwAlu { op, dst: Reg::T0, old: dst, src, cmp }, 2, false),
            mk(UopKind::StoreUnlock { src: Reg::T0, base, offset }, 3, false),
            mk(UopKind::Fence(FenceKind::AtomicPost), 4, true),
        ],
        Instr::Branch { cond, a, b, target } => {
            vec![mk(UopKind::Branch { cond, a, b, target }, 0, true)]
        }
        Instr::Jump { target } => vec![mk(UopKind::Jump { target }, 0, true)],
        Instr::Fence { .. } => vec![mk(UopKind::Fence(FenceKind::Standalone), 0, true)],
        Instr::Pause => vec![mk(UopKind::Pause, 0, true)],
        Instr::MonitorWait { base, offset } => {
            vec![mk(UopKind::MonitorWait { base, offset }, 0, true)]
        }
        Instr::Halt => vec![mk(UopKind::Halt, 0, true)],
        Instr::Nop => vec![mk(UopKind::Nop, 0, true)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rmw() -> Instr {
        Instr::Rmw {
            op: RmwOp::FetchAdd,
            dst: Reg::R1,
            base: Reg::R2,
            offset: 8,
            src: Reg::R3,
            cmp: Reg::R0,
            ord: MemOrder::SeqCst,
        }
    }

    #[test]
    fn rmw_decodes_to_five_uops() {
        let uops = decode(rmw(), 42);
        assert_eq!(uops.len(), 5);
        assert!(matches!(uops[0].kind, UopKind::Fence(FenceKind::AtomicPre)));
        assert!(matches!(uops[1].kind, UopKind::LoadLock { dst: Reg::R1, .. }));
        assert!(matches!(uops[2].kind, UopKind::RmwAlu { dst: Reg::T0, .. }));
        assert!(matches!(
            uops[3].kind,
            UopKind::StoreUnlock { src: Reg::T0, .. }
        ));
        assert!(matches!(uops[4].kind, UopKind::Fence(FenceKind::AtomicPost)));
        assert!(uops[4].last);
        assert!(uops[..4].iter().all(|u| !u.last));
        assert!(uops.iter().all(|u| u.pc == 42));
        assert_eq!(
            uops.iter().map(|u| u.slot).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn rmw_dataflow_links_through_temp() {
        let uops = decode(rmw(), 0);
        // op µop reads the load_lock result (r1) and writes t0.
        let srcs: Vec<_> = uops[2].srcs().iter().collect();
        assert!(srcs.contains(&Reg::R1));
        assert_eq!(uops[2].dst(), Some(Reg::T0));
        // store_unlock reads t0.
        let srcs: Vec<_> = uops[3].srcs().iter().collect();
        assert!(srcs.contains(&Reg::T0));
    }

    #[test]
    fn cas_reads_cmp_register() {
        let uops = decode(
            Instr::Rmw {
                op: RmwOp::CompareSwap,
                dst: Reg::R1,
                base: Reg::R2,
                offset: 0,
                src: Reg::R3,
                cmp: Reg::R4,
                ord: MemOrder::SeqCst,
            },
            0,
        );
        let srcs: Vec<_> = uops[2].srcs().iter().collect();
        assert!(srcs.contains(&Reg::R4));
    }

    #[test]
    fn zero_register_is_not_a_dependency() {
        let u = decode(
            Instr::Alu { op: AluOp::Add, dst: Reg::R1, a: Reg::R0, b: Operand::Reg(Reg::R0) },
            0,
        );
        assert!(u[0].srcs().is_empty());
    }

    #[test]
    fn classification_helpers() {
        let uops = decode(rmw(), 0);
        assert!(uops[1].is_mem() && uops[1].is_load_class());
        assert!(uops[3].is_mem() && uops[3].is_store_class());
        assert!(uops.iter().all(|u| u.is_atomic_part()));
        let ld = decode(
            Instr::Load { dst: Reg::R1, base: Reg::R2, offset: 0, ord: MemOrder::Relaxed },
            0,
        );
        assert!(ld[0].is_load_class() && !ld[0].is_atomic_part());
    }

    #[test]
    fn simple_instrs_decode_to_one_uop() {
        for i in [
            Instr::Nop,
            Instr::Halt,
            Instr::Pause,
            Instr::Fence { ord: MemOrder::SeqCst },
            Instr::Jump { target: 3 },
        ] {
            assert_eq!(decode(i, 0).len(), 1);
            assert!(decode(i, 0)[0].last);
        }
    }

    #[test]
    fn ordering_annotations_thread_through_decode() {
        let ld = decode(
            Instr::Load { dst: Reg::R1, base: Reg::R2, offset: 0, ord: MemOrder::Acquire },
            0,
        );
        assert_eq!(ld[0].ord, MemOrder::Acquire);
        let st = decode(
            Instr::Store { src: Reg::R1, base: Reg::R2, offset: 0, ord: MemOrder::Release },
            0,
        );
        assert_eq!(st[0].ord, MemOrder::Release);
        let f = decode(Instr::Fence { ord: MemOrder::Acquire }, 0);
        assert_eq!(f[0].ord, MemOrder::Acquire);
        // Every micro-op of an RMW carries the parent annotation.
        assert!(decode(rmw(), 0).iter().all(|u| u.ord == MemOrder::SeqCst));
        // Non-memory instructions carry Relaxed.
        assert_eq!(decode(Instr::Nop, 0)[0].ord, MemOrder::Relaxed);
    }
}
