//! Guest instructions.

use crate::order::MemOrder;
use crate::reg::Reg;
use crate::Word;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Second ALU operand: a register or a sign-extended immediate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// Read the operand from a register.
    Reg(Reg),
    /// Use the immediate value directly.
    Imm(i64),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Operand {
        Operand::Imm(v)
    }
}

impl fmt::Debug for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "#{v}"),
        }
    }
}

/// Integer ALU operations. All operate on 64-bit words; wrapping semantics.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AluOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a & b`
    And,
    /// `a | b`
    Or,
    /// `a ^ b`
    Xor,
    /// `a << (b & 63)`
    Shl,
    /// logical `a >> (b & 63)`
    Shr,
    /// arithmetic `a >> (b & 63)`
    Sra,
    /// `a * b` (low 64 bits)
    Mul,
    /// unsigned `a < b ? 1 : 0`
    SltU,
    /// signed `a < b ? 1 : 0`
    Slt,
}

impl AluOp {
    /// Evaluates the operation on two words.
    pub fn eval(self, a: Word, b: Word) -> Word {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl((b & 63) as u32),
            AluOp::Shr => a.wrapping_shr((b & 63) as u32),
            AluOp::Sra => ((a as i64).wrapping_shr((b & 63) as u32)) as u64,
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::SltU => u64::from(a < b),
            AluOp::Slt => u64::from((a as i64) < (b as i64)),
        }
    }
}

/// Branch conditions comparing two operands.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Cond {
    /// `a == b`
    Eq,
    /// `a != b`
    Ne,
    /// signed `a < b`
    Lt,
    /// signed `a >= b`
    Ge,
    /// unsigned `a < b`
    LtU,
    /// unsigned `a >= b`
    GeU,
}

impl Cond {
    /// Evaluates the condition on two words.
    pub fn eval(self, a: Word, b: Word) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => (a as i64) < (b as i64),
            Cond::Ge => (a as i64) >= (b as i64),
            Cond::LtU => a < b,
            Cond::GeU => a >= b,
        }
    }
}

/// Atomic read-modify-write flavours (the x86 `LOCK`-prefixed family).
///
/// All read the old 8-byte value at the target address into the destination
/// register, compute a new value, and write it back atomically.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum RmwOp {
    /// `new = old + src` (x86 `lock xadd`)
    FetchAdd,
    /// `new = old & src`
    FetchAnd,
    /// `new = old | src`
    FetchOr,
    /// `new = old ^ src`
    FetchXor,
    /// `new = src` (x86 `xchg`)
    Swap,
    /// `new = 1` regardless of `src` (test-and-set)
    TestSet,
    /// `new = (old == cmp) ? src : old` (x86 `lock cmpxchg`)
    CompareSwap,
}

impl RmwOp {
    /// Computes the value to be stored back by the RMW's `op` micro-op.
    ///
    /// `old` is the value read by `load_lock`; `src` is the instruction's
    /// source operand; `cmp` is the comparison value (only meaningful for
    /// [`RmwOp::CompareSwap`]).
    pub fn store_value(self, old: Word, src: Word, cmp: Word) -> Word {
        match self {
            RmwOp::FetchAdd => old.wrapping_add(src),
            RmwOp::FetchAnd => old & src,
            RmwOp::FetchOr => old | src,
            RmwOp::FetchXor => old ^ src,
            RmwOp::Swap => src,
            RmwOp::TestSet => 1,
            RmwOp::CompareSwap => {
                if old == cmp {
                    src
                } else {
                    old
                }
            }
        }
    }
}

/// A guest instruction. Program counters are indices into the instruction
/// vector; there is no encoding layer (the simulator is trace-driven by
/// construction, like gem5's `AtomicSimpleCPU`-generated micro-op streams).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Instr {
    /// `dst = op(a, b)`
    Alu { op: AluOp, dst: Reg, a: Reg, b: Operand },
    /// `dst = mem[ base + offset ]` (8 bytes, must be 8-byte aligned).
    ///
    /// `ord` defaults to [`MemOrder::Relaxed`]; only acquire-class values
    /// are meaningful on loads.
    Load { dst: Reg, base: Reg, offset: i64, ord: MemOrder },
    /// `mem[ base + offset ] = src`.
    ///
    /// `ord` defaults to [`MemOrder::Relaxed`]; release is architecturally
    /// free (FIFO store buffer), `SeqCst` additionally blocks younger loads
    /// under the weak model.
    Store { src: Reg, base: Reg, offset: i64, ord: MemOrder },
    /// Atomic RMW on `mem[ base + offset ]`: `dst = old`, store per [`RmwOp`].
    ///
    /// `cmp` is only read by [`RmwOp::CompareSwap`]. `dst` must differ from
    /// `base` (enforced by the assembler) so the `store_unlock` micro-op can
    /// recompute the address. `ord` is accepted and recorded but RMW
    /// execution is pinned to `SeqCst` strength in both memory models (the
    /// line-lock protocol is inherently SC); it defaults to
    /// [`MemOrder::SeqCst`].
    Rmw { op: RmwOp, dst: Reg, base: Reg, offset: i64, src: Reg, cmp: Reg, ord: MemOrder },
    /// Conditional branch to `target` (an instruction index).
    Branch { cond: Cond, a: Reg, b: Operand, target: u32 },
    /// Unconditional jump.
    Jump { target: u32 },
    /// Standalone memory fence. With `ord == SeqCst` this is the x86
    /// `MFENCE` analogue (orders everything, drains the store buffer);
    /// weaker orderings act as pipeline reorder barriers that do not drain
    /// the store buffer under the weak model. Never removed by any policy.
    Fence { ord: MemOrder },
    /// Spin-loop hint (x86 `PAUSE`): de-pipelines briefly, saving energy.
    Pause,
    /// Sleep until the watched line `mem[ base + offset ]` is written by
    /// another core, or a periodic timer expires (x86 `MONITOR`/`MWAIT`).
    MonitorWait { base: Reg, offset: i64 },
    /// Terminate this hardware thread.
    Halt,
    /// No operation.
    Nop,
}

impl Instr {
    /// True for instructions that access memory (loads, stores, RMWs).
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Instr::Load { .. } | Instr::Store { .. } | Instr::Rmw { .. }
        )
    }

    /// True for atomic read-modify-write instructions.
    pub fn is_rmw(&self) -> bool {
        matches!(self, Instr::Rmw { .. })
    }

    /// True for control-flow instructions.
    pub fn is_control(&self) -> bool {
        matches!(self, Instr::Branch { .. } | Instr::Jump { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_eval_semantics() {
        assert_eq!(AluOp::Add.eval(3, u64::MAX), 2); // wrapping
        assert_eq!(AluOp::Sub.eval(3, 5), (-2i64) as u64);
        assert_eq!(AluOp::Shl.eval(1, 65), 2); // shift masked to 6 bits
        assert_eq!(AluOp::Sra.eval((-8i64) as u64, 1), (-4i64) as u64);
        assert_eq!(AluOp::Shr.eval((-8i64) as u64, 1), ((-8i64) as u64) >> 1);
        assert_eq!(AluOp::Slt.eval((-1i64) as u64, 0), 1);
        assert_eq!(AluOp::SltU.eval((-1i64) as u64, 0), 0);
    }

    #[test]
    fn cond_eval_semantics() {
        assert!(Cond::Eq.eval(4, 4));
        assert!(Cond::Ne.eval(4, 5));
        assert!(Cond::Lt.eval((-1i64) as u64, 0));
        assert!(!Cond::LtU.eval((-1i64) as u64, 0));
        assert!(Cond::Ge.eval(0, (-1i64) as u64));
        assert!(Cond::GeU.eval((-1i64) as u64, 0));
    }

    #[test]
    fn rmw_store_values() {
        assert_eq!(RmwOp::FetchAdd.store_value(10, 5, 0), 15);
        assert_eq!(RmwOp::Swap.store_value(10, 5, 0), 5);
        assert_eq!(RmwOp::TestSet.store_value(0, 99, 0), 1);
        assert_eq!(RmwOp::CompareSwap.store_value(10, 5, 10), 5); // success
        assert_eq!(RmwOp::CompareSwap.store_value(10, 5, 11), 10); // failure
        assert_eq!(RmwOp::FetchXor.store_value(0b1100, 0b1010, 0), 0b0110);
    }

    #[test]
    fn instr_classification() {
        let rmw = Instr::Rmw {
            op: RmwOp::FetchAdd,
            dst: Reg::R1,
            base: Reg::R2,
            offset: 0,
            src: Reg::R3,
            cmp: Reg::R0,
            ord: MemOrder::SeqCst,
        };
        assert!(rmw.is_mem());
        assert!(rmw.is_rmw());
        assert!(!rmw.is_control());
        assert!(Instr::Jump { target: 0 }.is_control());
        assert!(!Instr::Fence { ord: MemOrder::SeqCst }.is_mem());
    }
}
