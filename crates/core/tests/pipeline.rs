//! End-to-end pipeline tests: single- and multi-core programs driven to
//! completion against the detailed memory system, checked against the
//! sequential golden model where the result is interleaving-independent.

use fa_core::{AtomicPolicy, Core, CoreConfig};
use fa_isa::interp::{GuestMem, Interp};
use fa_isa::{Kasm, Program, Reg};
use fa_mem::{CoreId, MemConfig, MemorySystem};

const MEM_BYTES: u64 = 1 << 16;

/// Runs `progs` (one per core) to completion; returns (machine, cores).
fn run(
    progs: Vec<Program>,
    policy: AtomicPolicy,
    mem_cfg: MemConfig,
    max_cycles: u64,
) -> (MemorySystem, Vec<Core>) {
    let mut mem = MemorySystem::new(mem_cfg, progs.len(), GuestMem::new(MEM_BYTES));
    let cfg = CoreConfig::default().with_policy(policy);
    let mut cores: Vec<Core> = progs
        .into_iter()
        .enumerate()
        .map(|(i, p)| Core::new(CoreId(i as u16), cfg.clone(), p, MEM_BYTES))
        .collect();
    for now in 1..=max_cycles {
        mem.tick();
        for c in cores.iter_mut() {
            c.tick(now, &mut mem);
        }
        if cores.iter().all(|c| c.halted() && c.sb_len() == 0) {
            return (mem, cores);
        }
    }
    panic!(
        "machine did not quiesce within {max_cycles} cycles (halted: {:?})",
        cores.iter().map(|c| c.halted()).collect::<Vec<_>>()
    );
}

fn run1(prog: Program, policy: AtomicPolicy) -> (MemorySystem, Core) {
    let (mem, mut cores) = run(vec![prog], policy, MemConfig::default(), 2_000_000);
    (mem, cores.remove(0))
}

/// A compute-heavy single-thread kernel with data-dependent branches: sums
/// f(i) over i in [0, n), storing intermediate results.
fn scalar_kernel(n: i64) -> Program {
    let mut k = Kasm::new();
    let (i, acc, tmp, base) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4);
    k.li(i, 0);
    k.li(acc, 0);
    k.li(base, 0x800);
    let top = k.here_label();
    let skip = k.new_label();
    k.and(tmp, i, 3);
    k.bne_imm(tmp, 0, skip);
    k.alu(fa_isa::AluOp::Mul, tmp, i, fa_isa::Operand::Imm(7));
    k.add(acc, acc, tmp);
    k.bind(skip);
    k.addi(acc, acc, 1);
    k.and(tmp, i, 63);
    k.shl(tmp, tmp, 3);
    k.add(tmp, base, tmp);
    k.st(acc, tmp, 0);
    k.ld(tmp, tmp, 0);
    k.add(acc, acc, tmp);
    k.addi(i, i, 1);
    k.blt_imm(i, n, top);
    k.st(acc, base, 0x400);
    k.halt();
    k.finish().unwrap()
}

#[test]
fn single_core_matches_golden_model() {
    let prog = scalar_kernel(500);
    let mut golden = Interp::new(prog.clone(), MEM_BYTES);
    golden.run(1_000_000).unwrap();
    for policy in AtomicPolicy::ALL {
        let (mem, core) = run1(prog.clone(), policy);
        assert_eq!(
            mem.backing().load(0x800 + 0x400),
            golden.mem().load(0x800 + 0x400),
            "policy {policy:?} diverged from the golden model"
        );
        assert_eq!(core.stats.instructions, golden.executed);
    }
}

fn counter_prog(iters: i64, counter_addr: i64) -> Program {
    let mut k = Kasm::new();
    let (a, one, i, old) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4);
    k.li(a, counter_addr);
    k.li(one, 1);
    k.li(i, 0);
    let top = k.here_label();
    k.fetch_add(old, a, 0, one);
    k.addi(i, i, 1);
    k.blt_imm(i, iters, top);
    k.halt();
    k.finish().unwrap()
}

#[test]
fn fetch_add_loop_counts_exactly_single_core() {
    for policy in AtomicPolicy::ALL {
        let (mem, core) = run1(counter_prog(200, 0x100), policy);
        assert_eq!(mem.backing().load(0x100), 200, "policy {policy:?}");
        assert_eq!(core.stats.atomics, 200, "policy {policy:?}");
    }
}

#[test]
fn contended_counter_is_exact_across_cores() {
    for policy in AtomicPolicy::ALL {
        let n = 4;
        let iters = 100;
        let progs = vec![counter_prog(iters, 0x100); n];
        let (mem, cores) = run(progs, policy, MemConfig::default(), 4_000_000);
        assert_eq!(
            mem.backing().load(0x100),
            (n as u64) * iters as u64,
            "atomicity violated under {policy:?}"
        );
        let total_atomics: u64 = cores.iter().map(|c| c.stats.atomics).sum();
        assert_eq!(total_atomics, (n as u64) * iters as u64);
    }
}

#[test]
fn contended_counter_with_tiny_caches() {
    // Small caches force evictions, inclusion victims and lock pressure.
    for policy in [AtomicPolicy::FencedBaseline, AtomicPolicy::Free, AtomicPolicy::FreeFwd] {
        let n = 4;
        let iters = 60;
        let progs = vec![counter_prog(iters, 0x100); n];
        let (mem, _) = run(progs, policy, MemConfig::tiny(), 8_000_000);
        assert_eq!(mem.backing().load(0x100), (n as u64) * iters as u64, "{policy:?}");
    }
}

/// Two cores lock two lines in opposite orders — the paper's Figure-5
/// RMW-RMW deadlock. Free policies need the watchdog to finish.
#[test]
fn rmw_rmw_deadlock_is_broken_by_watchdog() {
    fn prog(first: i64, second: i64, iters: i64) -> Program {
        let mut k = Kasm::new();
        let (a, b, one, i, old) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
        k.li(a, first);
        k.li(b, second);
        k.li(one, 1);
        k.li(i, 0);
        let top = k.here_label();
        k.fetch_add(old, a, 0, one);
        k.fetch_add(old, b, 0, one);
        k.addi(i, i, 1);
        k.blt_imm(i, iters, top);
        k.halt();
        k.finish().unwrap()
    }
    for policy in AtomicPolicy::ALL {
        let iters = 40;
        // Low threshold so the test runs fast.
        let mut cfg = CoreConfig::default().with_policy(policy);
        cfg.watchdog_threshold = 200;
        let mut mem =
            MemorySystem::new(MemConfig::default(), 2, GuestMem::new(MEM_BYTES));
        let mut cores = [
            Core::new(CoreId(0), cfg.clone(), prog(0x100, 0x200, iters), MEM_BYTES),
            Core::new(CoreId(1), cfg.clone(), prog(0x200, 0x100, iters), MEM_BYTES),
        ];
        let mut done = false;
        for now in 1..=6_000_000 {
            mem.tick();
            for c in cores.iter_mut() {
                c.tick(now, &mut mem);
            }
            if cores.iter().all(|c| c.halted() && c.sb_len() == 0) {
                done = true;
                break;
            }
        }
        assert!(done, "deadlocked under {policy:?}");
        assert_eq!(mem.backing().load(0x100), 2 * iters as u64, "{policy:?}");
        assert_eq!(mem.backing().load(0x200), 2 * iters as u64, "{policy:?}");
    }
}

/// Dekker's algorithm with RMWs as barriers (paper Figure 10): the outcome
/// r0 == 0 && r1 == 0 is forbidden under TSO with type-1 atomics.
#[test]
fn dekker_with_rmws_forbids_both_zero() {
    fn prog(mine: i64, theirs: i64, scratch: i64, out: i64) -> Program {
        let mut k = Kasm::new();
        let (m, t, one, old, r) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
        k.li(m, mine);
        k.li(t, theirs);
        k.li(one, 1);
        k.st(one, m, 0); // st mine, 1
        k.li(r, scratch);
        k.fetch_add(old, r, 0, one); // RMW to an unrelated address
        k.ld(r, t, 0); // ld theirs
        k.li(old, out);
        k.st(r, old, 0); // publish observation
        k.halt();
        k.finish().unwrap()
    }
    for policy in AtomicPolicy::ALL {
        for trial in 0..12 {
            let p0 = prog(0x100, 0x200, 0x300 + 64 * (trial % 3), 0x400);
            let p1 = prog(0x200, 0x100, 0x340 + 64 * (trial % 2), 0x440);
            let (mem, _) = run(vec![p0, p1], policy, MemConfig::default(), 2_000_000);
            let r0 = mem.backing().load(0x400);
            let r1 = mem.backing().load(0x440);
            assert!(
                !(r0 == 0 && r1 == 0),
                "store→RMW→load order violated under {policy:?} (trial {trial})"
            );
        }
    }
}

/// Plain Dekker with MFENCE: store→load order via the standalone fence.
#[test]
fn dekker_with_mfence_forbids_both_zero() {
    fn prog(mine: i64, theirs: i64, out: i64) -> Program {
        let mut k = Kasm::new();
        let (m, t, one, r, o) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
        k.li(m, mine);
        k.li(t, theirs);
        k.li(one, 1);
        k.st(one, m, 0);
        k.fence();
        k.ld(r, t, 0);
        k.li(o, out);
        k.st(r, o, 0);
        k.halt();
        k.finish().unwrap()
    }
    for policy in AtomicPolicy::ALL {
        let p0 = prog(0x100, 0x200, 0x400);
        let p1 = prog(0x200, 0x100, 0x440);
        let (mem, _) = run(vec![p0, p1], policy, MemConfig::default(), 2_000_000);
        let r0 = mem.backing().load(0x400);
        let r1 = mem.backing().load(0x440);
        assert!(!(r0 == 0 && r1 == 0), "MFENCE failed under {policy:?}");
    }
}

/// Without any fence, Dekker's forbidden outcome *should* be observable
/// (store buffers!). This guards against accidentally over-serializing the
/// model. We only check the machine completes; both-zero is permitted.
#[test]
fn dekker_unfenced_completes() {
    fn prog(mine: i64, theirs: i64, out: i64) -> Program {
        let mut k = Kasm::new();
        let (m, t, one, r, o) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
        k.li(m, mine);
        k.li(t, theirs);
        k.li(one, 1);
        k.st(one, m, 0);
        k.ld(r, t, 0);
        k.li(o, out);
        k.st(r, o, 0);
        k.halt();
        k.finish().unwrap()
    }
    let p0 = prog(0x100, 0x200, 0x400);
    let p1 = prog(0x200, 0x100, 0x440);
    let (mem, _) = run(vec![p0, p1], AtomicPolicy::FreeFwd, MemConfig::default(), 1_000_000);
    // Both observations are architecturally defined (0 or 1).
    assert!(mem.backing().load(0x400) <= 1);
    assert!(mem.backing().load(0x440) <= 1);
}

/// Message passing: core 0 writes data then flag; core 1 spins on the flag
/// and must observe the data (TSO store→store + load→load).
#[test]
fn message_passing_litmus() {
    let mut k = Kasm::new();
    let (d, f, v) = (Reg::R1, Reg::R2, Reg::R3);
    k.li(d, 0x100);
    k.li(f, 0x140);
    k.li(v, 42);
    k.st(v, d, 0);
    k.li(v, 1);
    k.st(v, f, 0);
    k.halt();
    let writer = k.finish().unwrap();

    let mut k = Kasm::new();
    let (d, f, v, o) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4);
    k.li(d, 0x100);
    k.li(f, 0x140);
    let spin = k.here_label();
    k.ld(v, f, 0);
    k.beq_imm(v, 0, spin);
    k.ld(v, d, 0);
    k.li(o, 0x400);
    k.st(v, o, 0);
    k.halt();
    let reader = k.finish().unwrap();

    for policy in AtomicPolicy::ALL {
        let (mem, _) = run(
            vec![writer.clone(), reader.clone()],
            policy,
            MemConfig::default(),
            2_000_000,
        );
        assert_eq!(mem.backing().load(0x400), 42, "MP violated under {policy:?}");
    }
}

/// A test-and-set spinlock protecting a plain (non-atomic) counter.
#[test]
fn spinlock_protects_plain_counter() {
    fn prog(iters: i64) -> Program {
        let mut k = Kasm::new();
        let (lock, cnt, old, v, i) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
        k.li(lock, 0x100);
        k.li(cnt, 0x200);
        k.li(i, 0);
        let top = k.here_label();
        let acquire = k.here_label();
        k.test_set(old, lock, 0);
        k.bne_imm(old, 0, acquire);
        // Critical section: plain load/store increment.
        k.ld(v, cnt, 0);
        k.addi(v, v, 1);
        k.st(v, cnt, 0);
        // Release: plain store of zero.
        k.st(Reg::R0, lock, 0);
        k.addi(i, i, 1);
        k.blt_imm(i, iters, top);
        k.halt();
        k.finish().unwrap()
    }
    for policy in AtomicPolicy::ALL {
        let n = 4;
        let iters = 50;
        let progs = vec![prog(iters); n];
        let (mem, _) = run(progs, policy, MemConfig::default(), 8_000_000);
        assert_eq!(
            mem.backing().load(0x200),
            (n as u64) * iters as u64,
            "mutual exclusion violated under {policy:?}"
        );
        assert_eq!(mem.backing().load(0x100), 0, "lock must end released");
    }
}

/// CAS-based lock with MonitorWait sleeping (exercises sleep/wake).
#[test]
fn monitor_wait_wakes_on_remote_store() {
    // Core 0 sleeps on a flag; core 1 sets it after some busywork.
    let mut k = Kasm::new();
    let (f, v, o) = (Reg::R1, Reg::R2, Reg::R3);
    k.li(f, 0x100);
    let spin = k.here_label();
    k.ld(v, f, 0);
    let done = k.new_label();
    k.bne_imm(v, 0, done);
    k.monitor_wait(f, 0);
    k.jump(spin);
    k.bind(done);
    k.li(o, 0x400);
    k.st(v, o, 0);
    k.halt();
    let waiter = k.finish().unwrap();

    let mut k = Kasm::new();
    let (f, v, i) = (Reg::R1, Reg::R2, Reg::R3);
    k.li(i, 0);
    let top = k.here_label();
    k.addi(i, i, 1);
    k.blt_imm(i, 2000, top);
    k.li(f, 0x100);
    k.li(v, 7);
    k.st(v, f, 0);
    k.halt();
    let setter = k.finish().unwrap();

    let (mem, cores) = run(
        vec![waiter, setter],
        AtomicPolicy::FreeFwd,
        MemConfig::default(),
        2_000_000,
    );
    assert_eq!(mem.backing().load(0x400), 7);
    assert!(cores[0].stats.monitor_sleeps >= 1);
    assert!(cores[0].stats.sleep_cycles > 0);
}

/// Atomics on a speculative path that gets squashed must not corrupt
/// memory or leak locks.
#[test]
fn speculative_atomic_under_mispredicted_branch() {
    // if (data[i] & 1) fetch_add(counter) — with data all even, the atomic
    // only executes on wrong paths when mispredicted.
    fn prog(iters: i64) -> Program {
        let mut k = Kasm::new();
        let (c, one, i, v, t) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
        k.li(c, 0x100);
        k.li(one, 1);
        k.li(i, 0);
        let top = k.here_label();
        let skip = k.new_label();
        k.and(v, i, 7);
        k.bne_imm(v, 3, skip); // taken 7/8 of the time: mispredicts happen
        k.fetch_add(t, c, 0, one);
        k.bind(skip);
        k.addi(i, i, 1);
        k.blt_imm(i, iters, top);
        k.halt();
        k.finish().unwrap()
    }
    for policy in [AtomicPolicy::FencedSpec, AtomicPolicy::Free, AtomicPolicy::FreeFwd] {
        let iters = 400;
        let (mem, core) = run1(prog(iters), policy);
        // Exactly iters/8 atomics commit (i & 7 == 3).
        assert_eq!(mem.backing().load(0x100), (iters / 8) as u64, "{policy:?}");
        assert_eq!(core.stats.atomics, (iters / 8) as u64);
        assert!(core.stats.squashes_branch > 0, "expected some mispredictions");
    }
}

/// The Free policies must actually omit the atomic fences, and the fenced
/// ones must not.
#[test]
fn fence_omission_accounting() {
    let (_, core) = run1(counter_prog(50, 0x100), AtomicPolicy::FreeFwd);
    assert_eq!(core.stats.fences_omitted, 100); // 2 per atomic
    assert_eq!(core.stats.fences_enforced, 0);
    let (_, core) = run1(counter_prog(50, 0x100), AtomicPolicy::FencedBaseline);
    assert_eq!(core.stats.fences_omitted, 0);
    assert_eq!(core.stats.fences_enforced, 100);
}

/// Back-to-back atomics to the same address: under FreeFwd the younger
/// load_lock forwards from the older store_unlock (FbA in Table 2) and the
/// line lock is handed over without ever being released in between.
#[test]
fn atomic_chain_forwards_under_freefwd() {
    let (mem, core) = run1(counter_prog(100, 0x100), AtomicPolicy::FreeFwd);
    assert_eq!(mem.backing().load(0x100), 100);
    assert!(
        core.stats.atomics_fwd_from_atomic > 0,
        "expected store_unlock→load_lock forwarding, stats: {:?}",
        core.stats
    );
    // And under plain Free, no forwarding happens.
    let (_, core) = run1(counter_prog(100, 0x100), AtomicPolicy::Free);
    assert_eq!(core.stats.atomics_fwd_from_atomic, 0);
}

/// Forwarding from an ordinary store to a load_lock (FbS): store to X then
/// immediately RMW X.
#[test]
fn ordinary_store_forwards_to_load_lock() {
    let mut k = Kasm::new();
    let (a, v, one, old, i) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
    k.li(a, 0x100);
    k.li(one, 1);
    k.li(i, 0);
    let top = k.here_label();
    k.shl(v, i, 3);
    k.st(v, a, 0); // plain store
    k.fetch_add(old, a, 0, one); // immediately RMW the same address
    k.addi(i, i, 1);
    k.blt_imm(i, 100, top);
    k.halt();
    let prog = k.finish().unwrap();

    let (mem, core) = run1(prog.clone(), AtomicPolicy::FreeFwd);
    assert!(core.stats.atomics_fwd_from_store > 0, "stats: {:?}", core.stats);
    // Final value: last store wrote (99<<3), atomic added 1.
    assert_eq!(mem.backing().load(0x100), (99 << 3) + 1);

    // The same program must compute the same value under every policy.
    for policy in AtomicPolicy::ALL {
        let (mem, _) = run1(prog.clone(), policy);
        assert_eq!(mem.backing().load(0x100), (99 << 3) + 1, "{policy:?}");
    }
}

/// CAS success and failure paths.
#[test]
fn cas_semantics_under_all_policies() {
    let mut k = Kasm::new();
    let (a, exp, new, old, out) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
    k.li(a, 0x100);
    k.li(exp, 0);
    k.li(new, 5);
    k.cas(old, a, 0, exp, new); // succeeds: 0 -> 5
    k.li(exp, 99);
    k.li(new, 7);
    k.cas(out, a, 0, exp, new); // fails: stays 5
    k.li(exp, 0x400);
    k.st(old, exp, 0);
    k.li(exp, 0x440);
    k.st(out, exp, 0);
    k.halt();
    let prog = k.finish().unwrap();
    for policy in AtomicPolicy::ALL {
        let (mem, _) = run1(prog.clone(), policy);
        assert_eq!(mem.backing().load(0x100), 5, "{policy:?}");
        assert_eq!(mem.backing().load(0x400), 0, "{policy:?}: first CAS old");
        assert_eq!(mem.backing().load(0x440), 5, "{policy:?}: second CAS old");
    }
}

/// Figure-1 accounting: the fenced baseline pays Drain_SB cycles when
/// stores precede an atomic; Free atomics mostly do not.
#[test]
fn drain_accounting_shows_fence_cost() {
    fn prog(iters: i64) -> Program {
        let mut k = Kasm::new();
        let (a, b, one, old, i, v) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6);
        k.li(a, 0x100);
        k.li(b, 0x4000); // stores go to a different region (cold lines)
        k.li(one, 1);
        k.li(i, 0);
        let top = k.here_label();
        k.shl(v, i, 3);
        k.and(v, v, 0xfff);
        k.add(v, b, v);
        k.st(one, v, 0); // store that must drain before a fenced atomic
        k.fetch_add(old, a, 0, one);
        k.addi(i, i, 1);
        k.blt_imm(i, iters, top);
        k.halt();
        k.finish().unwrap()
    }
    let (_, fenced) = run1(prog(100), AtomicPolicy::FencedBaseline);
    let (_, free) = run1(prog(100), AtomicPolicy::FreeFwd);
    let (fenced_drain, _) = fenced.stats.atomic_cost();
    let (free_drain, _) = free.stats.atomic_cost();
    assert!(
        fenced_drain > free_drain + 1.0,
        "fenced drain {fenced_drain:.1} should exceed free drain {free_drain:.1}"
    );
    // And the fenced run must be slower overall.
    assert!(fenced.stats.cycles > free.stats.cycles);
}

/// Memory-dependence violations are detected and recovered.
#[test]
fn store_load_violation_recovers() {
    // A store whose address depends on a slow chain, followed by a load to
    // the same address that will speculate past it.
    let mut k = Kasm::new();
    let (a, v, t, out) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4);
    k.li(a, 0x100);
    k.li(v, 1);
    // Slow chain to delay the store's address.
    k.li(t, 0x100);
    for _ in 0..12 {
        k.alu(fa_isa::AluOp::Mul, t, t, fa_isa::Operand::Imm(1));
    }
    k.st(v, t, 0); // store 1 -> [0x100], address late
    k.ld(out, a, 0); // load [0x100] — speculates, must see 1
    k.li(t, 0x400);
    k.st(out, t, 0);
    k.halt();
    let prog = k.finish().unwrap();
    for policy in AtomicPolicy::ALL {
        let (mem, _) = run1(prog.clone(), policy);
        assert_eq!(mem.backing().load(0x400), 1, "{policy:?}: load bypassed store");
    }
}
