//! The Atomic Queue (AQ) — the paper's §4 hardware structure.
//!
//! One entry per in-flight atomic RMW, allocated when the `load_lock`
//! dispatches and deallocated when the `store_unlock` performs its write and
//! leaves the store queue. The entry records whether the atomic holds a
//! cache-line lock (`Locked`), is waiting to acquire one (`WaitLock`), or
//! obtained its data through store-to-load forwarding and therefore relies
//! on the forwarding store's responsibility (`Fwd`, §3.3).

use crate::rob::Seq;
use fa_mem::Line;
use std::collections::VecDeque;

/// Lock state of one atomic's AQ entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AqState {
    /// load_lock dispatched but not performed.
    WaitLock,
    /// load_lock performed and holds a lock on `Line` (contributes one lock
    /// count at the private cache).
    Locked(Line),
    /// load_lock forwarded from the store with sequence `store_seq`
    /// (the paper's SQid field); `from_atomic` distinguishes store_unlock
    /// (do_not_unlock) from ordinary stores (lock_on_access).
    Fwd { store_seq: Seq, from_atomic: bool },
}

/// One AQ entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AqEntry {
    /// Sequence number of the owning load_lock.
    pub ll_seq: Seq,
    /// Lock state.
    pub state: AqState,
    /// Length of the forwarding chain ending at this atomic (§3.3.4).
    pub chain: u32,
    /// Cycle the load_lock issued (Figure-1 "Atomic" accounting; 0 = not
    /// yet issued).
    pub issued_at: u64,
    /// Cycle the atomic acquired its line lock (fill response arrived, or
    /// data forwarded); 0 = not yet acquired. Splits the exec window into
    /// acquire-side and local-execute-side for the atomic-lifetime
    /// attribution.
    pub acquired_at: u64,
    /// Acquire-side latency split of the issue→response window, staged
    /// here and folded into [`CoreStats`](crate::CoreStats) only when the
    /// atomic's store_unlock performs — squashed atomics contribute
    /// nothing, so the committed split sums exactly to the exec latency.
    /// Cache-lock acquire cycles (the window minus transfer and park).
    pub acquire: u64,
    /// Interconnect transfer cycles of the fill's final leg.
    pub xfer: u64,
    /// `LatClass::index()` of the fill, bucketing `xfer`.
    pub xfer_class: usize,
    /// Cycles the directory request sat parked behind a busy entry.
    pub park: u64,
}

/// The Atomic Queue, managed as a FIFO in program order.
#[derive(Clone, Debug)]
pub struct AtomicQueue {
    entries: VecDeque<AqEntry>,
    cap: usize,
}

impl AtomicQueue {
    /// Creates an AQ with `cap` entries (the paper evaluates 4).
    pub fn new(cap: usize) -> AtomicQueue {
        AtomicQueue { entries: VecDeque::with_capacity(cap), cap }
    }

    /// True when no atomic can dispatch (front-end stall condition).
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.cap
    }

    /// Occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no atomics are in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Allocates an entry for the load_lock `ll_seq`.
    ///
    /// # Panics
    ///
    /// Panics if full (the dispatch stage must check [`AtomicQueue::is_full`])
    /// or out of program order.
    pub fn alloc(&mut self, ll_seq: Seq) {
        assert!(!self.is_full(), "AQ overflow");
        debug_assert!(self.entries.back().map(|e| e.ll_seq < ll_seq).unwrap_or(true));
        self.entries.push_back(AqEntry {
            ll_seq,
            state: AqState::WaitLock,
            chain: 0,
            issued_at: 0,
            acquired_at: 0,
            acquire: 0,
            xfer: 0,
            xfer_class: 0,
            park: 0,
        });
    }

    /// Entry owned by load_lock `ll_seq`.
    pub fn get(&self, ll_seq: Seq) -> Option<&AqEntry> {
        self.entries.iter().find(|e| e.ll_seq == ll_seq)
    }

    /// Mutable entry owned by load_lock `ll_seq`.
    pub fn get_mut(&mut self, ll_seq: Seq) -> Option<&mut AqEntry> {
        self.entries.iter_mut().find(|e| e.ll_seq == ll_seq)
    }

    /// Releases the entry of `ll_seq` (its store_unlock performed).
    ///
    /// Returns the entry.
    ///
    /// # Panics
    ///
    /// Panics if absent — store_unlock perform without a matching atomic is
    /// an accounting bug.
    pub fn release(&mut self, ll_seq: Seq) -> AqEntry {
        let pos = self
            .entries
            .iter()
            .position(|e| e.ll_seq == ll_seq)
            .expect("release of absent AQ entry");
        self.entries.remove(pos).expect("position valid")
    }

    /// Removes all entries with `ll_seq >= from` (squash), returning them
    /// youngest-first.
    pub fn squash_from(&mut self, from: Seq) -> Vec<AqEntry> {
        let mut out = Vec::new();
        while let Some(back) = self.entries.back() {
            if back.ll_seq >= from {
                out.push(self.entries.pop_back().unwrap());
            } else {
                break;
            }
        }
        out
    }

    /// Converts every `Fwd` entry referencing `store_seq` into a `Locked`
    /// holder of `line` (the performing store broadcast its SQid with the
    /// L1D set/way, §4.2). Returns how many entries converted — the caller
    /// adds that many lock counts at the private cache, net of the
    /// performing store's own unlock.
    pub fn capture_from_store(&mut self, store_seq: Seq, line: Line) -> u32 {
        let mut n = 0;
        for e in self.entries.iter_mut() {
            if let AqState::Fwd { store_seq: s, .. } = e.state {
                if s == store_seq {
                    e.state = AqState::Locked(line);
                    n += 1;
                }
            }
        }
        n
    }

    /// Iterates over entries currently holding a lock.
    pub fn locked(&self) -> impl Iterator<Item = &AqEntry> + '_ {
        self.entries.iter().filter(|e| matches!(e.state, AqState::Locked(_)))
    }

    /// Oldest entry holding a lock (watchdog flush point).
    pub fn oldest_locked(&self) -> Option<&AqEntry> {
        self.locked().next()
    }

    /// True if any entry holds a lock.
    pub fn any_locked(&self) -> bool {
        self.oldest_locked().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_alloc_release() {
        let mut aq = AtomicQueue::new(2);
        aq.alloc(10);
        aq.alloc(20);
        assert!(aq.is_full());
        let e = aq.release(10);
        assert_eq!(e.ll_seq, 10);
        assert_eq!(aq.len(), 1);
        assert!(!aq.is_full());
    }

    #[test]
    #[should_panic]
    fn alloc_past_capacity_panics() {
        let mut aq = AtomicQueue::new(1);
        aq.alloc(1);
        aq.alloc(2);
    }

    #[test]
    fn squash_removes_suffix() {
        let mut aq = AtomicQueue::new(4);
        for s in [1, 5, 9] {
            aq.alloc(s);
        }
        aq.get_mut(5).unwrap().state = AqState::Locked(0x40);
        let removed = aq.squash_from(5);
        assert_eq!(removed.len(), 2);
        assert_eq!(removed[0].ll_seq, 9);
        assert!(matches!(removed[1].state, AqState::Locked(0x40)));
        assert_eq!(aq.len(), 1);
    }

    #[test]
    fn capture_converts_matching_forwards() {
        let mut aq = AtomicQueue::new(4);
        aq.alloc(1);
        aq.alloc(2);
        aq.alloc(3);
        aq.get_mut(2).unwrap().state = AqState::Fwd { store_seq: 77, from_atomic: true };
        aq.get_mut(3).unwrap().state = AqState::Fwd { store_seq: 88, from_atomic: false };
        let n = aq.capture_from_store(77, 0x100);
        assert_eq!(n, 1);
        assert_eq!(aq.get(2).unwrap().state, AqState::Locked(0x100));
        assert!(matches!(aq.get(3).unwrap().state, AqState::Fwd { store_seq: 88, .. }));
    }

    #[test]
    fn oldest_locked_is_in_program_order() {
        let mut aq = AtomicQueue::new(4);
        aq.alloc(1);
        aq.alloc(2);
        aq.get_mut(2).unwrap().state = AqState::Locked(0x80);
        assert_eq!(aq.oldest_locked().unwrap().ll_seq, 2);
        aq.get_mut(1).unwrap().state = AqState::Locked(0x40);
        assert_eq!(aq.oldest_locked().unwrap().ll_seq, 1);
        assert!(aq.any_locked());
    }
}

/// Hardware cost of an Atomic Queue per the paper's §4.3 accounting.
///
/// Each entry stores a locked bit, an L1D set/way locator, a wrap-around
/// sequence number sized to the ROB, and an SQ pointer. For the paper's
/// Icelake-like design (4 entries, 48K 12-way L1D, 352-entry ROB, 72-entry
/// SQ) this reproduces the headline "15 bytes" (116 bits).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AqStorage {
    /// Bits per AQ entry.
    pub bits_per_entry: u32,
    /// Total bits across all entries.
    pub total_bits: u32,
    /// Total rounded up to bytes.
    pub total_bytes: u32,
}

/// Computes [`AqStorage`] for a given geometry.
///
/// `l1_sets`/`l1_ways` size the set/way locator, `rob_size` the sequence
/// number (plus 2 wrap bits, as the paper specifies for a ROB below 512),
/// and `sq_size` the SQ pointer.
pub fn aq_storage(
    aq_entries: u32,
    l1_sets: u32,
    l1_ways: u32,
    rob_size: u32,
    sq_size: u32,
) -> AqStorage {
    fn clog2(x: u32) -> u32 {
        32 - x.saturating_sub(1).leading_zeros()
    }
    let locked = 1;
    let set = clog2(l1_sets);
    let way = clog2(l1_ways);
    let seq = clog2(rob_size) + 2;
    let sqid = clog2(sq_size);
    let bits_per_entry = locked + set + way + seq + sqid;
    let total_bits = bits_per_entry * aq_entries;
    AqStorage { bits_per_entry, total_bits, total_bytes: total_bits.div_ceil(8) }
}

#[cfg(test)]
mod storage_tests {
    use super::*;

    #[test]
    fn paper_icelake_design_costs_15_bytes() {
        // §4.3: locked 1 + set/way 6+4 + seqnum 9+2 + SQid 7 = 29 bits per
        // entry; 4 entries = 116 bits = 15 bytes.
        let s = aq_storage(4, 64, 12, 352, 72);
        assert_eq!(s.bits_per_entry, 29);
        assert_eq!(s.total_bits, 116);
        assert_eq!(s.total_bytes, 15);
    }

    #[test]
    fn storage_scales_with_entries() {
        let four = aq_storage(4, 64, 12, 352, 72);
        let eight = aq_storage(8, 64, 12, 352, 72);
        assert_eq!(eight.total_bits, 2 * four.total_bits);
    }
}
