//! Per-core statistics feeding every figure and table of the paper.

use fa_trace::{CpiStack, Hist};
use serde::{Deserialize, Serialize};

/// Number of `fa_mem::LatClass` latency classes mirrored in the
/// per-class atomic transfer counters (indexed by `LatClass::index()`
/// at the recording site; kept as a plain const so the stats struct
/// stays serde-derivable with a fixed-size array).
pub const LAT_CLASSES: usize = 5;

/// Cause of a pipeline squash.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum SquashCause {
    /// Branch misprediction.
    Branch,
    /// Memory-dependence violation (a store resolved under a speculatively
    /// performed younger load).
    MemOrder,
    /// Invalidation (or eviction) hit a speculatively performed load —
    /// the TSO load→load repair.
    Inval,
    /// The deadlock-avoidance watchdog fired (§3.2.5).
    Watchdog,
}

/// Counters collected by one core.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CoreStats {
    /// Cycles the core was powered (running or sleeping).
    pub cycles: u64,
    /// Cycles spent asleep in MonitorWait (the light portion of Figure 14's
    /// bars).
    pub sleep_cycles: u64,
    /// Committed instructions.
    pub instructions: u64,
    /// Committed micro-ops.
    pub uops: u64,
    /// Committed atomic RMW instructions.
    pub atomics: u64,
    /// Squashed (fetched-then-discarded) micro-ops.
    pub squashed_uops: u64,
    /// Squash events by cause.
    pub squashes_branch: u64,
    /// Squashes caused by memory-dependence violations (Table 2 "MDV").
    pub squashes_memorder: u64,
    /// Squashes caused by invalidations of performed loads.
    pub squashes_inval: u64,
    /// Watchdog flushes (Table 2 "Timeouts").
    pub watchdog_fires: u64,
    /// Fence micro-ops that retired with their ordering enforced.
    pub fences_enforced: u64,
    /// Fence micro-ops retired as no-ops by a Free policy (Table 2 "Omitted
    /// Fences").
    pub fences_omitted: u64,
    /// Σ cycles load_locks waited for the SB to drain / ordering before
    /// issue (Figure 1 "Drain_SB").
    pub atomic_drain_cycles: u64,
    /// Σ cycles from load_lock issue to store_unlock perform (Figure 1
    /// "Atomic").
    pub atomic_exec_cycles: u64,
    /// load_locks whose data came via store-to-load forwarding from a
    /// store_unlock (Table 2 "FbA").
    pub atomics_fwd_from_atomic: u64,
    /// load_locks forwarded from an ordinary store (Table 2 "FbS").
    pub atomics_fwd_from_store: u64,
    /// load_locks that found their line in the private cache with write
    /// permission (Figure 13 locality, L1/L2 component).
    pub atomics_local_wp: u64,
    /// Loads that forwarded from the store queue (any kind).
    pub load_forwards: u64,
    /// Branch lookups/mispredicts (copied from the predictor at the end).
    pub branch_lookups: u64,
    /// Mispredicted branches.
    pub branch_mispredicts: u64,
    /// Pause instructions committed (spin-energy accounting).
    pub pauses: u64,
    /// MonitorWait sleeps entered.
    pub monitor_sleeps: u64,
    /// Cycles the dispatch stage stalled because the Atomic Queue was full.
    pub aq_full_stalls: u64,
    /// Distribution of per-atomic SB-drain waits (the population whose sum
    /// is `atomic_drain_cycles`; log₂ buckets, deterministic merge).
    pub atomic_drain_hist: Hist,
    /// Distribution of per-atomic load_lock-issue → store_unlock-perform
    /// windows (the population whose sum is `atomic_exec_cycles`).
    pub atomic_exec_hist: Hist,
    /// Top-down cycle accounting: every powered cycle attributed to
    /// exactly one taxonomy leaf. Invariant: `cpi.total() == cycles`.
    pub cpi: CpiStack,
    /// Σ cycles atomics spent acquiring the cache-line lock after the
    /// fill arrived at the directory side (exec minus transfer, park and
    /// local execute). Part of the atomic-lifetime split:
    /// `atomic_exec_cycles == acquire + Σ xfer + park + local` for
    /// cache-served atomics (forwarded atomics contribute only `local`).
    pub atomic_lock_acquire_cycles: u64,
    /// Σ remote-line transfer cycles per `LatClass` (NoC injection stamp →
    /// delivery, from the fill response), indexed by `LatClass::index()`.
    pub atomic_xfer_cycles: [u64; LAT_CLASSES],
    /// Σ cycles atomics' fill requests sat parked behind a busy directory
    /// entry before being granted.
    pub atomic_dir_park_cycles: u64,
    /// Σ cycles from lock acquisition to `store_unlock` perform (the local
    /// execute portion of the atomic window).
    pub atomic_local_cycles: u64,
}

impl CoreStats {
    /// Records a squash event of `cause` covering `uops` micro-ops.
    pub fn record_squash(&mut self, cause: SquashCause, uops: u64) {
        self.squashed_uops += uops;
        match cause {
            SquashCause::Branch => self.squashes_branch += 1,
            SquashCause::MemOrder => self.squashes_memorder += 1,
            SquashCause::Inval => self.squashes_inval += 1,
            SquashCause::Watchdog => self.watchdog_fires += 1,
        }
    }

    /// Total squash events.
    pub fn total_squashes(&self) -> u64 {
        self.squashes_branch + self.squashes_memorder + self.squashes_inval + self.watchdog_fires
    }

    /// Committed atomics per kilo-instruction (Figure 12).
    pub fn apki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.atomics as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Fraction of fences omitted (Table 2, col. 2).
    pub fn omitted_fence_ratio(&self) -> f64 {
        let total = self.fences_enforced + self.fences_omitted;
        if total == 0 {
            0.0
        } else {
            self.fences_omitted as f64 / total as f64
        }
    }

    /// Mean Figure-1 cost per atomic: (drain, exec).
    pub fn atomic_cost(&self) -> (f64, f64) {
        if self.atomics == 0 {
            (0.0, 0.0)
        } else {
            (
                self.atomic_drain_cycles as f64 / self.atomics as f64,
                self.atomic_exec_cycles as f64 / self.atomics as f64,
            )
        }
    }

    /// Figure-13 locality ratio and its forwarded component:
    /// `(total_ratio, forwarded_ratio)`.
    pub fn atomic_locality(&self) -> (f64, f64) {
        if self.atomics == 0 {
            return (0.0, 0.0);
        }
        let fwd = (self.atomics_fwd_from_atomic + self.atomics_fwd_from_store) as f64;
        let local = self.atomics_local_wp as f64;
        ((fwd + local) / self.atomics as f64, fwd / self.atomics as f64)
    }

    /// Merges another core's counters into this one (machine-level roll-up).
    pub fn merge(&mut self, o: &CoreStats) {
        self.cycles = self.cycles.max(o.cycles);
        self.sleep_cycles += o.sleep_cycles;
        self.instructions += o.instructions;
        self.uops += o.uops;
        self.atomics += o.atomics;
        self.squashed_uops += o.squashed_uops;
        self.squashes_branch += o.squashes_branch;
        self.squashes_memorder += o.squashes_memorder;
        self.squashes_inval += o.squashes_inval;
        self.watchdog_fires += o.watchdog_fires;
        self.fences_enforced += o.fences_enforced;
        self.fences_omitted += o.fences_omitted;
        self.atomic_drain_cycles += o.atomic_drain_cycles;
        self.atomic_exec_cycles += o.atomic_exec_cycles;
        self.atomics_fwd_from_atomic += o.atomics_fwd_from_atomic;
        self.atomics_fwd_from_store += o.atomics_fwd_from_store;
        self.atomics_local_wp += o.atomics_local_wp;
        self.load_forwards += o.load_forwards;
        self.branch_lookups += o.branch_lookups;
        self.branch_mispredicts += o.branch_mispredicts;
        self.pauses += o.pauses;
        self.monitor_sleeps += o.monitor_sleeps;
        self.aq_full_stalls += o.aq_full_stalls;
        self.atomic_drain_hist.merge(&o.atomic_drain_hist);
        self.atomic_exec_hist.merge(&o.atomic_exec_hist);
        self.cpi.merge(&o.cpi);
        self.atomic_lock_acquire_cycles += o.atomic_lock_acquire_cycles;
        for (a, b) in self.atomic_xfer_cycles.iter_mut().zip(o.atomic_xfer_cycles.iter()) {
            *a += *b;
        }
        self.atomic_dir_park_cycles += o.atomic_dir_park_cycles;
        self.atomic_local_cycles += o.atomic_local_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apki_and_ratios() {
        let s = CoreStats {
            instructions: 2000,
            atomics: 3,
            fences_enforced: 1,
            fences_omitted: 3,
            ..CoreStats::default()
        };
        assert!((s.apki() - 1.5).abs() < 1e-9);
        assert!((s.omitted_fence_ratio() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn squash_recording() {
        let mut s = CoreStats::default();
        s.record_squash(SquashCause::Branch, 10);
        s.record_squash(SquashCause::MemOrder, 5);
        s.record_squash(SquashCause::Watchdog, 2);
        assert_eq!(s.squashed_uops, 17);
        assert_eq!(s.total_squashes(), 3);
        assert_eq!(s.watchdog_fires, 1);
    }

    #[test]
    fn locality_split() {
        let s = CoreStats {
            atomics: 10,
            atomics_local_wp: 4,
            atomics_fwd_from_atomic: 3,
            atomics_fwd_from_store: 1,
            ..CoreStats::default()
        };
        let (total, fwd) = s.atomic_locality();
        assert!((total - 0.8).abs() < 1e-9);
        assert!((fwd - 0.4).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates_and_maxes_cycles() {
        let mut a = CoreStats { cycles: 10, instructions: 5, ..CoreStats::default() };
        let b = CoreStats { cycles: 20, instructions: 7, ..CoreStats::default() };
        a.merge(&b);
        assert_eq!(a.cycles, 20);
        assert_eq!(a.instructions, 12);
    }

    #[test]
    fn merge_sums_cpi_and_atomic_split_element_wise() {
        use fa_trace::CpiLeaf;
        let mut a = CoreStats {
            atomic_lock_acquire_cycles: 3,
            atomic_xfer_cycles: [1, 0, 0, 2, 0],
            atomic_dir_park_cycles: 5,
            atomic_local_cycles: 7,
            ..CoreStats::default()
        };
        a.cpi.add(CpiLeaf::Commit, 4);
        let mut b = CoreStats {
            atomic_lock_acquire_cycles: 10,
            atomic_xfer_cycles: [0, 0, 6, 0, 0],
            ..CoreStats::default()
        };
        b.cpi.add(CpiLeaf::Idle, 9);
        a.merge(&b);
        assert_eq!(a.cpi.get(CpiLeaf::Commit), 4);
        assert_eq!(a.cpi.get(CpiLeaf::Idle), 9);
        assert_eq!(a.atomic_lock_acquire_cycles, 13);
        assert_eq!(a.atomic_xfer_cycles, [1, 0, 6, 2, 0]);
        assert_eq!(a.atomic_dir_park_cycles, 5);
        assert_eq!(a.atomic_local_cycles, 7);
    }
}
