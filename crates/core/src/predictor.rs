//! Branch direction prediction and memory-dependence prediction.
//!
//! The paper's configuration uses L-TAGE and StoreSets (Table 1). The
//! mechanism under study only needs *realistic* squash rates, not
//! state-of-the-art accuracy, so the direction predictor here is a
//! gshare/bimodal tournament; the memory-dependence predictor is a faithful
//! small StoreSet (SSIT + LFST) after Chrysos & Emer.

/// Two-bit saturating counter.
#[derive(Clone, Copy, Debug, Default)]
struct Ctr2(u8);

impl Ctr2 {
    fn taken(self) -> bool {
        self.0 >= 2
    }
    fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// Tournament (bimodal + gshare) conditional-branch direction predictor.
#[derive(Clone, Debug)]
pub struct BranchPredictor {
    bimodal: Vec<Ctr2>,
    gshare: Vec<Ctr2>,
    choice: Vec<Ctr2>,
    history: u64,
    history_mask: u64,
    index_mask: usize,
    /// Predictions made.
    pub lookups: u64,
    /// Mispredictions detected at resolve time.
    pub mispredicts: u64,
}

impl BranchPredictor {
    /// Creates a predictor with `2^table_bits` entries per table and
    /// `history_bits` of global history.
    pub fn new(table_bits: u32, history_bits: u32) -> BranchPredictor {
        let n = 1usize << table_bits;
        BranchPredictor {
            bimodal: vec![Ctr2(1); n],
            gshare: vec![Ctr2(1); n],
            choice: vec![Ctr2(2); n],
            history: 0,
            history_mask: (1u64 << history_bits) - 1,
            index_mask: n - 1,
            lookups: 0,
            mispredicts: 0,
        }
    }

    fn indices(&self, pc: u32) -> (usize, usize) {
        let b = (pc as usize) & self.index_mask;
        let g = ((pc as u64) ^ self.history) as usize & self.index_mask;
        (b, g)
    }

    /// Predicts the direction of the branch at `pc` and returns a snapshot
    /// of the history to pass back at resolve time.
    pub fn predict(&mut self, pc: u32) -> (bool, u64) {
        self.lookups += 1;
        let (b, g) = self.indices(pc);
        let use_gshare = self.choice[b].taken();
        let taken = if use_gshare { self.gshare[g].taken() } else { self.bimodal[b].taken() };
        let snapshot = self.history;
        // Speculatively update history with the prediction.
        self.history = ((self.history << 1) | u64::from(taken)) & self.history_mask;
        (taken, snapshot)
    }

    /// Resolves the branch at `pc`: trains the tables and, on a
    /// misprediction, repairs the global history from the snapshot.
    pub fn resolve(&mut self, pc: u32, snapshot: u64, predicted: bool, actual: bool) {
        let b = (pc as usize) & self.index_mask;
        let g = ((pc as u64) ^ snapshot) as usize & self.index_mask;
        let bim_correct = self.bimodal[b].taken() == actual;
        let gsh_correct = self.gshare[g].taken() == actual;
        if bim_correct != gsh_correct {
            self.choice[b].update(gsh_correct);
        }
        self.bimodal[b].update(actual);
        self.gshare[g].update(actual);
        if predicted != actual {
            self.mispredicts += 1;
            self.history = ((snapshot << 1) | u64::from(actual)) & self.history_mask;
        }
    }
}

/// StoreSet memory-dependence predictor (SSIT + LFST).
///
/// Loads that have violated a dependence on a store in the past are steered
/// into the store's set; while any store of that set has an unresolved
/// address in flight, the load waits.
#[derive(Clone, Debug)]
pub struct StoreSets {
    /// Store-Set Id Table: pc -> set id.
    ssit: Vec<Option<u32>>,
    /// Last Fetched Store Table: set id -> sequence number of the youngest
    /// in-flight store of the set (cleared when it resolves or squashes).
    lfst: Vec<Option<u64>>,
    next_set: u32,
    mask: usize,
    /// Violations trained.
    pub trainings: u64,
}

impl StoreSets {
    /// Creates tables of `2^bits` entries.
    pub fn new(bits: u32) -> StoreSets {
        let n = 1usize << bits;
        StoreSets { ssit: vec![None; n], lfst: vec![None; n], next_set: 0, mask: n - 1, trainings: 0 }
    }

    fn idx(&self, pc: u32) -> usize {
        (pc as usize) & self.mask
    }

    /// Trains on a violation between the load at `load_pc` and the store at
    /// `store_pc` (assigns both to one set).
    pub fn train_violation(&mut self, load_pc: u32, store_pc: u32) {
        self.trainings += 1;
        let li = self.idx(load_pc);
        let si = self.idx(store_pc);
        let set = match (self.ssit[li], self.ssit[si]) {
            (Some(a), _) => a,
            (None, Some(b)) => b,
            (None, None) => {
                let s = self.next_set;
                self.next_set = (self.next_set + 1) & self.mask as u32;
                s
            }
        };
        self.ssit[li] = Some(set);
        self.ssit[si] = Some(set);
    }

    /// A store at `pc` with sequence `seq` was dispatched: tracks it if it
    /// belongs to a set.
    pub fn store_dispatched(&mut self, pc: u32, seq: u64) {
        if let Some(set) = self.ssit[self.idx(pc)] {
            self.lfst[set as usize & self.mask] = Some(seq);
        }
    }

    /// The store `seq` at `pc` resolved its address (or was squashed).
    pub fn store_resolved(&mut self, pc: u32, seq: u64) {
        if let Some(set) = self.ssit[self.idx(pc)] {
            let slot = &mut self.lfst[set as usize & self.mask];
            if *slot == Some(seq) {
                *slot = None;
            }
        }
    }

    /// Should the load at `pc` wait? Returns the store sequence it must wait
    /// for, if any.
    pub fn load_should_wait(&self, pc: u32) -> Option<u64> {
        let set = self.ssit[self.idx(pc)]?;
        self.lfst[set as usize & self.mask]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_learns_biased_branch() {
        let mut bp = BranchPredictor::new(10, 8);
        for _ in 0..32 {
            let (pred, snap) = bp.predict(7);
            bp.resolve(7, snap, pred, true);
        }
        let (pred, _) = bp.predict(7);
        assert!(pred, "a strongly taken branch must predict taken");
    }

    #[test]
    fn predictor_learns_alternating_pattern_via_gshare() {
        let mut bp = BranchPredictor::new(10, 8);
        let mut taken = false;
        let mut correct = 0;
        for i in 0..512 {
            taken = !taken;
            let (pred, snap) = bp.predict(3);
            if i > 256 && pred == taken {
                correct += 1;
            }
            bp.resolve(3, snap, pred, taken);
        }
        assert!(correct > 200, "gshare should capture an alternating pattern, got {correct}/256");
    }

    #[test]
    fn misprediction_repairs_history() {
        let mut bp = BranchPredictor::new(10, 8);
        let (pred, snap) = bp.predict(1);
        bp.resolve(1, snap, pred, !pred);
        assert_eq!(bp.mispredicts, 1);
        assert_eq!(bp.history & 1, u64::from(!pred));
    }

    #[test]
    fn storesets_steer_trained_pairs() {
        let mut ss = StoreSets::new(6);
        assert_eq!(ss.load_should_wait(10), None);
        ss.train_violation(10, 20);
        ss.store_dispatched(20, 99);
        assert_eq!(ss.load_should_wait(10), Some(99));
        ss.store_resolved(20, 99);
        assert_eq!(ss.load_should_wait(10), None);
    }

    #[test]
    fn storesets_ignore_untrained_pcs() {
        let mut ss = StoreSets::new(6);
        ss.store_dispatched(20, 99); // not in any set
        assert_eq!(ss.load_should_wait(10), None);
    }

    #[test]
    fn storesets_merge_into_existing_set() {
        let mut ss = StoreSets::new(6);
        ss.train_violation(10, 20);
        ss.train_violation(11, 20); // store already has a set; load joins it
        ss.store_dispatched(20, 5);
        assert_eq!(ss.load_should_wait(11), Some(5));
    }
}
