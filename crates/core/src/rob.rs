//! Reorder buffer: in-flight micro-op entries with sequence-number access.

use fa_isa::{Addr, Reg, Uop, Word};
use std::collections::VecDeque;

/// Global (per-core) micro-op sequence number.
pub type Seq = u64;

/// One source operand of an in-flight micro-op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SrcVal {
    /// Value available.
    Ready(Word),
    /// Waiting for the producer micro-op `seq`; `reg` lets the value be
    /// recovered from the architectural file if the producer has committed.
    Wait { seq: Seq, reg: Reg },
}

/// Progress of a memory micro-op through the LSU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemPhase {
    /// Not yet sent anywhere.
    Idle,
    /// A cache request is outstanding.
    WaitCache,
    /// Value bound (from cache or forwarding).
    Performed,
}

/// Where a forwarded load got its data (Table 2 FbA/FbS classification).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FwdSource {
    /// From a `store_unlock` (forwarded by an atomic).
    Atomic,
    /// From an ordinary store.
    Store,
}

/// A reorder-buffer entry.
#[derive(Clone, Debug)]
pub struct Entry {
    /// Sequence number (unique, monotonically increasing).
    pub seq: Seq,
    /// The micro-op.
    pub uop: Uop,
    /// Source registers aligned with `srcs`.
    pub src_regs: [Reg; 3],
    /// Source operand states.
    pub srcs: [SrcVal; 3],
    /// Number of live sources.
    pub nsrcs: u8,
    /// Rename undo record: (dst, previous mapping).
    pub prev_map: Option<(Reg, Option<Seq>)>,
    /// Issued to a functional unit / the LSU.
    pub issued: bool,
    /// Result available; for memory ops, performed.
    pub done: bool,
    /// Cycle at which an in-flight execution completes.
    pub done_at: Option<u64>,
    /// Result value (dst payload; for stores, unused).
    pub result: Word,
    /// Effective address once computed.
    pub addr: Option<Addr>,
    /// Wrong-path access to an invalid address: never sent to memory and
    /// must never commit.
    pub poisoned: bool,
    /// LSU progress for memory micro-ops.
    pub mem: MemPhase,
    /// For a forwarded load: the providing store's sequence number.
    pub fwd_from: Option<Seq>,
    /// For a forwarded load_lock: provider kind (FbA/FbS stats).
    pub fwd_kind: Option<FwdSource>,
    /// For a performing load_lock: the line it found locally writable
    /// (Figure-13 locality).
    pub local_wp: bool,
    /// Branch: predicted direction.
    pub pred_taken: bool,
    /// Branch: history snapshot for predictor repair.
    pub bp_snapshot: u64,
    /// First cycle the micro-op's operands were ready (drain accounting).
    pub ready_since: Option<u64>,
    /// Cycle the micro-op issued.
    pub issued_at: Option<u64>,
    /// Store responsibilities (§3.3): forward-count of load_locks served.
    pub fwd_count: u32,
    /// Ordinary store must lock its line when performing (§3.3.2).
    pub lock_on_access: bool,
    /// store_unlock must leave the line locked when performing (§3.3.1).
    pub do_not_unlock: bool,
    /// For a performed load: write-id of the store that produced the
    /// value (0 = initial memory). Only populated under `CheckMode::Tso`.
    pub writer: u64,
}

impl Entry {
    /// Creates a fresh entry for `uop` with sequence `seq`.
    pub fn new(seq: Seq, uop: Uop) -> Entry {
        Entry {
            seq,
            uop,
            src_regs: [Reg::R0; 3],
            srcs: [SrcVal::Ready(0); 3],
            nsrcs: 0,
            prev_map: None,
            issued: false,
            done: false,
            done_at: None,
            result: 0,
            addr: None,
            poisoned: false,
            mem: MemPhase::Idle,
            fwd_from: None,
            fwd_kind: None,
            local_wp: false,
            pred_taken: false,
            bp_snapshot: 0,
            ready_since: None,
            issued_at: None,
            fwd_count: 0,
            lock_on_access: false,
            do_not_unlock: false,
            writer: 0,
        }
    }

    /// Resolved value of source register `r`, if ready. `R0` is always 0.
    pub fn value_of(&self, r: Reg) -> Option<Word> {
        if r.is_zero() {
            return Some(0);
        }
        for i in 0..self.nsrcs as usize {
            if self.src_regs[i] == r {
                return match self.srcs[i] {
                    SrcVal::Ready(v) => Some(v),
                    SrcVal::Wait { .. } => None,
                };
            }
        }
        // A register that is not a tracked source cannot be queried.
        None
    }

    /// True once every source operand is ready.
    pub fn srcs_ready(&self) -> bool {
        self.srcs[..self.nsrcs as usize]
            .iter()
            .all(|s| matches!(s, SrcVal::Ready(_)))
    }
}

/// The reorder buffer: a deque of entries addressable by sequence number.
#[derive(Debug, Default)]
pub struct Rob {
    entries: VecDeque<Entry>,
}

impl Rob {
    /// Creates an empty ROB.
    pub fn new() -> Rob {
        Rob::default()
    }

    /// Number of in-flight micro-ops.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sequence number of the oldest entry.
    pub fn head_seq(&self) -> Option<Seq> {
        self.entries.front().map(|e| e.seq)
    }

    /// Appends an entry. Sequence numbers must increase monotonically but
    /// may have gaps (squashes never recycle sequence numbers — unique seqs
    /// are what make orphaned memory responses detectable).
    pub fn push(&mut self, e: Entry) {
        debug_assert!(self.entries.back().map(|b| b.seq < e.seq).unwrap_or(true));
        self.entries.push_back(e);
    }

    /// Pops the oldest entry (commit).
    pub fn pop_front(&mut self) -> Option<Entry> {
        self.entries.pop_front()
    }

    fn index_of(&self, seq: Seq) -> Option<usize> {
        let i = self.entries.partition_point(|e| e.seq < seq);
        (i < self.entries.len() && self.entries[i].seq == seq).then_some(i)
    }

    /// Entry by sequence number.
    pub fn get(&self, seq: Seq) -> Option<&Entry> {
        self.index_of(seq).map(|i| &self.entries[i])
    }

    /// Mutable entry by sequence number.
    pub fn get_mut(&mut self, seq: Seq) -> Option<&mut Entry> {
        let i = self.index_of(seq)?;
        Some(&mut self.entries[i])
    }

    /// Oldest entry.
    pub fn front(&self) -> Option<&Entry> {
        self.entries.front()
    }

    /// Mutable oldest entry.
    pub fn front_mut(&mut self) -> Option<&mut Entry> {
        self.entries.front_mut()
    }

    /// Iterates oldest → youngest.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = &Entry> + '_ {
        self.entries.iter()
    }

    /// Mutable iteration oldest → youngest.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Entry> + '_ {
        self.entries.iter_mut()
    }

    /// Removes and returns every entry with `seq >= from`, youngest first
    /// (squash order).
    pub fn drain_from(&mut self, from: Seq) -> Vec<Entry> {
        let mut out = Vec::new();
        while let Some(back) = self.entries.back() {
            if back.seq >= from {
                out.push(self.entries.pop_back().unwrap());
            } else {
                break;
            }
        }
        out
    }

    /// Counts in-flight micro-ops satisfying `pred`.
    pub fn count(&self, pred: impl Fn(&Entry) -> bool) -> usize {
        self.entries.iter().filter(|e| pred(e)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_isa::{decode, Instr};

    fn entry(seq: Seq) -> Entry {
        Entry::new(seq, decode(Instr::Nop, 0)[0])
    }

    #[test]
    fn seq_addressing() {
        let mut r = Rob::new();
        for s in 5..10 {
            r.push(entry(s));
        }
        assert_eq!(r.head_seq(), Some(5));
        assert_eq!(r.get(7).map(|e| e.seq), Some(7));
        assert!(r.get(4).is_none());
        assert!(r.get(10).is_none());
        r.pop_front();
        assert!(r.get(5).is_none());
        assert_eq!(r.get(6).map(|e| e.seq), Some(6));
    }

    #[test]
    fn drain_from_removes_suffix_youngest_first() {
        let mut r = Rob::new();
        for s in 0..6 {
            r.push(entry(s));
        }
        let drained = r.drain_from(3);
        assert_eq!(drained.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![5, 4, 3]);
        assert_eq!(r.len(), 3);
        assert!(r.get(3).is_none());
    }

    #[test]
    fn value_of_handles_zero_and_missing() {
        let mut e = entry(0);
        e.src_regs[0] = Reg::R3;
        e.srcs[0] = SrcVal::Ready(42);
        e.nsrcs = 1;
        assert_eq!(e.value_of(Reg::R0), Some(0));
        assert_eq!(e.value_of(Reg::R3), Some(42));
        assert_eq!(e.value_of(Reg::R4), None);
        e.srcs[0] = SrcVal::Wait { seq: 9, reg: Reg::R3 };
        assert_eq!(e.value_of(Reg::R3), None);
        assert!(!e.srcs_ready());
    }
}
