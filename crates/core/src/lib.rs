//! Out-of-order core model for the Free Atomics simulator.
//!
//! Implements the processor of the paper's Table 1: a wide out-of-order
//! pipeline with a unified ROB, load/store queues with store-to-load
//! forwarding and StoreSet memory-dependence prediction, a tournament branch
//! predictor, a committed-store buffer draining under TSO — and, on top, the
//! paper's contribution: the **Atomic Queue** and the four atomic-RMW
//! execution policies ([`AtomicPolicy`]), from the fully fenced x86 baseline
//! to Free Atomics with store-to-load forwarding to/from atomics.
//!
//! The core is driven one cycle at a time against a shared
//! [`fa_mem::MemorySystem`]:
//!
//! ```
//! use fa_core::{Core, CoreConfig, AtomicPolicy};
//! use fa_isa::{Kasm, Reg};
//! use fa_isa::interp::GuestMem;
//! use fa_mem::{CoreId, MemConfig, MemorySystem};
//!
//! let mut k = Kasm::new();
//! k.li(Reg::R1, 0x100);
//! k.li(Reg::R2, 1);
//! k.fetch_add(Reg::R3, Reg::R1, 0, Reg::R2);
//! k.halt();
//! let prog = k.finish().unwrap();
//!
//! let mut mem = MemorySystem::new(MemConfig::default(), 1, GuestMem::new(0x1000));
//! let cfg = CoreConfig::default().with_policy(AtomicPolicy::FreeFwd);
//! let mut core = Core::new(CoreId(0), cfg, prog, 0x1000);
//! for now in 1..10_000 {
//!     mem.tick();
//!     core.tick(now, &mut mem);
//!     if core.halted() && core.sb_len() == 0 {
//!         break;
//!     }
//! }
//! assert_eq!(mem.backing().load(0x100), 1);
//! ```

pub mod aq;
pub mod config;
#[allow(clippy::module_inception)]
pub mod core;
pub mod predictor;
pub mod rob;
pub mod stats;

pub use crate::core::{Core, CoreDiag};
pub use aq::{aq_storage, AqEntry, AqState, AqStorage, AtomicQueue};
pub use config::{AtomicPolicy, CoreConfig};
pub use stats::{CoreStats, SquashCause};
