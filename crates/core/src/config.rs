//! Core configuration and the atomic RMW execution policies.

use fa_trace::{CheckMode, MemModel, TraceConfig};
use serde::{Deserialize, Serialize};

/// How atomic RMW instructions execute — the paper's iteratively built
/// flavours (§3, evaluated in Figure 14).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AtomicPolicy {
    /// The x86-documented baseline: the store buffer drains before the
    /// `load_lock` issues, the `load_lock` issues only at the ROB head
    /// (never speculated), and younger loads stall until the RMW commits.
    FencedBaseline,
    /// "baseline+Spec" (§3.1): fences stay, but the RMW may issue from a
    /// control-speculative path, acquiring the `unlock_on_squash`
    /// responsibility.
    FencedSpec,
    /// Free atomics (§3.2): fences removed; `load_lock` issues speculatively
    /// and out of order; multiple lines may be locked concurrently; the RMW
    /// commits only once the store buffer is empty. No store-to-load
    /// forwarding to/from atomics (overlapping `load_lock`s re-schedule).
    Free,
    /// Free atomics + store-to-load forwarding (§3.3): `load_lock` may
    /// forward from a `store_unlock` (`do_not_unlock`) or an ordinary store
    /// (`lock_on_access`), with bounded forwarding chains.
    FreeFwd,
}

impl AtomicPolicy {
    /// True for the two policies that keep the surrounding fences.
    pub fn fenced(self) -> bool {
        matches!(self, AtomicPolicy::FencedBaseline | AtomicPolicy::FencedSpec)
    }

    /// True when `load_lock` may issue speculatively (not at ROB head).
    pub fn speculative_atomics(self) -> bool {
        !matches!(self, AtomicPolicy::FencedBaseline)
    }

    /// True when store-to-load forwarding to/from atomics is allowed.
    pub fn atomic_forwarding(self) -> bool {
        matches!(self, AtomicPolicy::FreeFwd)
    }

    /// All four policies in evaluation order (the Figure-14 bars).
    pub const ALL: [AtomicPolicy; 4] = [
        AtomicPolicy::FencedBaseline,
        AtomicPolicy::FencedSpec,
        AtomicPolicy::Free,
        AtomicPolicy::FreeFwd,
    ];

    /// Short label used by the benchmark harness.
    pub fn label(self) -> &'static str {
        match self {
            AtomicPolicy::FencedBaseline => "baseline",
            AtomicPolicy::FencedSpec => "baseline+Spec",
            AtomicPolicy::Free => "FreeAtomics",
            AtomicPolicy::FreeFwd => "FreeAtomics+Fwd",
        }
    }
}

/// Out-of-order core parameters. Defaults follow Table 1 (Icelake-like).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Instructions fetched/decoded per cycle (Table 1: 5).
    pub fetch_width: usize,
    /// Micro-ops issued per cycle (Table 1: 10).
    pub issue_width: usize,
    /// Micro-ops committed per cycle (Table 1: 10).
    pub commit_width: usize,
    /// Reorder-buffer capacity in micro-ops (Icelake: 352; Skylake: 224).
    pub rob_size: usize,
    /// Load-queue entries (Table 1: 128).
    pub lq_size: usize,
    /// Store-queue entries, committed store-buffer portion included
    /// (Table 1: 72).
    pub sq_size: usize,
    /// Atomic Queue entries (§4.3: 4).
    pub aq_size: usize,
    /// Atomic execution policy.
    pub policy: AtomicPolicy,
    /// Watchdog threshold in cycles (§3.2.5: 10 000).
    pub watchdog_threshold: u64,
    /// Maximum consecutive atomic forwardings (§3.3.4: 32).
    pub fwd_chain_max: u32,
    /// Issue the store's GetX when it commits rather than at the SB head
    /// (Table 1: "at-commit store prefetch").
    pub store_prefetch_at_commit: bool,
    /// Front-end refill penalty after a squash, in cycles.
    pub redirect_penalty: u64,
    /// Integer ALU latency.
    pub alu_lat: u64,
    /// Multiplier latency.
    pub mul_lat: u64,
    /// Store-to-load forwarding latency.
    pub fwd_lat: u64,
    /// `Pause` spin-hint stall, in cycles.
    pub pause_lat: u64,
    /// MonitorWait periodic re-check interval (models the timer interrupt
    /// that bounds MWAIT sleeps), in cycles.
    pub monitor_timeout: u64,
    /// Branch-predictor global-history bits.
    pub bp_history_bits: u32,
    /// log2 of branch-predictor table entries.
    pub bp_table_bits: u32,
    /// Structured event tracing (default: off). Latency histograms are
    /// collected regardless of this mode; only event recording is gated.
    pub trace: TraceConfig,
    /// End-of-run axiomatic conformance checking (default: off). With
    /// `Tso`, the commit path logs per-access data events for the
    /// `sim::axiom` checker; collection is passive and never perturbs
    /// simulated state.
    pub check: CheckMode,
    /// Memory consistency model the frontend implements (default: TSO).
    /// Under [`MemModel::Weak`] the LSQ/SB rules honour the per-access
    /// [`fa_isa::MemOrder`] annotations; under TSO the annotations are
    /// inert and behaviour is bit-identical to the pre-annotation core.
    pub model: MemModel,
}

impl Default for CoreConfig {
    fn default() -> CoreConfig {
        CoreConfig {
            fetch_width: 5,
            issue_width: 10,
            commit_width: 10,
            rob_size: 352,
            lq_size: 128,
            sq_size: 72,
            aq_size: 4,
            policy: AtomicPolicy::FencedBaseline,
            watchdog_threshold: 10_000,
            fwd_chain_max: 32,
            store_prefetch_at_commit: true,
            redirect_penalty: 10,
            alu_lat: 1,
            mul_lat: 3,
            fwd_lat: 4,
            pause_lat: 8,
            monitor_timeout: 1024,
            bp_history_bits: 12,
            bp_table_bits: 12,
            trace: TraceConfig::default(),
            check: CheckMode::default(),
            model: MemModel::default(),
        }
    }
}

impl CoreConfig {
    /// Returns a copy with the given policy.
    pub fn with_policy(mut self, policy: AtomicPolicy) -> CoreConfig {
        self.policy = policy;
        self
    }

    /// Returns a copy with the given memory model.
    pub fn with_model(mut self, model: MemModel) -> CoreConfig {
        self.model = model;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_predicates() {
        use AtomicPolicy::*;
        assert!(FencedBaseline.fenced() && FencedSpec.fenced());
        assert!(!Free.fenced() && !FreeFwd.fenced());
        assert!(!FencedBaseline.speculative_atomics());
        assert!(FencedSpec.speculative_atomics());
        assert!(FreeFwd.atomic_forwarding());
        assert!(!Free.atomic_forwarding());
        assert_eq!(AtomicPolicy::ALL.len(), 4);
    }

    #[test]
    fn default_matches_table1() {
        let c = CoreConfig::default();
        assert_eq!(c.rob_size, 352);
        assert_eq!(c.sq_size, 72);
        assert_eq!(c.lq_size, 128);
        assert_eq!(c.aq_size, 4);
        assert_eq!(c.watchdog_threshold, 10_000);
        assert_eq!(c.fwd_chain_max, 32);
    }
}
