//! The out-of-order core pipeline.
//!
//! A unified-ROB model: fetch/decode/rename dispatch micro-ops into the ROB;
//! a scan-based scheduler wakes and issues them; loads and stores go through
//! LSQ disambiguation with StoreSet prediction and store-to-load forwarding;
//! commit retires in order, moving stores into the store buffer, which drains
//! to the memory system under TSO. Atomic RMWs follow one of the four
//! [`AtomicPolicy`] flavours; the Atomic Queue tracks their cache-line locks
//! and forwarding responsibilities, and the watchdog breaks the deadlocks
//! that fence-free execution can create (§3.2.5 of the paper).

use crate::aq::{AqState, AtomicQueue};
use crate::config::{AtomicPolicy, CoreConfig};
use crate::predictor::{BranchPredictor, StoreSets};
use crate::rob::{Entry, FwdSource, MemPhase, Rob, Seq, SrcVal};
use crate::stats::{CoreStats, SquashCause};
use fa_isa::reg::NUM_REGS;
use fa_isa::{line_of, Addr, FenceKind, Instr, Program, Reg, Uop, UopKind, Word};
use fa_mem::{CoreId, CoreNotice, CoreResp, Line, MemorySystem};
use fa_trace::{write_id, CpiLeaf, DataEvent, MemModel, MemOrder, TraceBuf, TraceEvent, TraceRecord};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// A point-in-time snapshot of a core's hang-relevant pipeline state,
/// attached to timeout diagnostics by the machine driver.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreDiag {
    /// Terminal halt reached.
    pub halted: bool,
    /// Asleep in MonitorWait.
    pub sleeping: bool,
    /// Instructions committed so far.
    pub committed: u64,
    /// In-flight micro-ops.
    pub rob_len: usize,
    /// Committed stores waiting to perform.
    pub sb_len: usize,
    /// Consecutive cycles the oldest atomic has waited (watchdog input).
    pub wd_counter: u64,
    /// `(seq, pc, kind, issued, done)` of the ROB-head micro-op, if any.
    pub rob_head: Option<(u64, u32, String, bool, bool)>,
    /// Cache lines locked on behalf of this core's Atomic Queue.
    pub aq_locked: Vec<Line>,
}

impl fmt::Display for CoreDiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.halted {
            return write!(f, "halted after {} instructions", self.committed);
        }
        write!(
            f,
            "{}{} committed, rob {}, sb {}, wd {}",
            if self.sleeping { "sleeping, " } else { "" },
            self.committed,
            self.rob_len,
            self.sb_len,
            self.wd_counter
        )?;
        if let Some((seq, pc, kind, issued, done)) = &self.rob_head {
            write!(f, ", head µop #{seq} {kind} @pc {pc} (issued={issued} done={done})")?;
        }
        if !self.aq_locked.is_empty() {
            write!(f, ", locked:")?;
            for l in &self.aq_locked {
                write!(f, " {l:#x}")?;
            }
        }
        Ok(())
    }
}

/// Debug switch (`FA_WD_DEBUG=1`): log watchdog flushes with pipeline
/// context.
fn wd_debug() -> bool {
    use std::sync::OnceLock;
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| std::env::var("FA_WD_DEBUG").is_ok())
}

/// Why the front-end stopped fetching.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FetchBarrier {
    /// A `Halt` was fetched; nothing follows.
    Halt,
    /// A `MonitorWait` was fetched; fetch resumes at wake.
    Monitor,
}

/// Execution state of the core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CoreState {
    /// Executing normally.
    Running,
    /// Asleep in MonitorWait.
    Sleeping { line: Line, wake_at: u64, resume_pc: u32 },
    /// Halted (terminal).
    Halted,
}

/// A committed store waiting to perform, in program order.
#[derive(Clone, Copy, Debug)]
struct SbEntry {
    seq: Seq,
    pc: u32,
    addr: Addr,
    value: Word,
    /// This is a store_unlock draining (releases its atomic's lock unless
    /// forwarding transferred it).
    is_unlock: bool,
    /// For a store_unlock: its load_lock's sequence number (AQ release key).
    ll_seq: Option<Seq>,
    /// A GetX for this entry is outstanding.
    acquire_pending: bool,
    /// The store carries a `SeqCst` annotation (plain stores only): under
    /// the weak model younger loads may not issue while it waits here.
    sc: bool,
}

/// One simulated out-of-order core.
///
/// Drive it by calling [`Core::tick`] once per cycle with the shared
/// [`MemorySystem`]; query progress via [`Core::halted`] and
/// [`Core::stats`].
#[derive(Debug)]
pub struct Core {
    id: CoreId,
    cfg: CoreConfig,
    prog: Program,
    mem_bytes: u64,

    // Front end.
    fetch_pc: u32,
    fetch_stall_until: u64,
    fetch_barrier: Option<FetchBarrier>,
    next_seq: Seq,

    // Rename + architectural state.
    rename: [Option<Seq>; NUM_REGS],
    arch_regs: [Word; NUM_REGS],

    // Back end.
    rob: Rob,
    aq: AtomicQueue,
    sb: VecDeque<SbEntry>,
    lq_count: usize,
    sq_count: usize,
    bp: BranchPredictor,
    ss: StoreSets,

    state: CoreState,
    wd_counter: u64,

    /// Per-cycle cycle-accounting flags, reset at the top of every tick:
    /// fetch stopped because the ROB had no room for the next instruction.
    fetch_blocked_rob: bool,
    /// Fetch stopped on an LQ/SQ/AQ structural limit.
    fetch_blocked_lsq: bool,

    /// Statistics, live during the run.
    pub stats: CoreStats,
    /// Structured trace ring for pipeline events (µop lifecycle, atomic
    /// lock windows, squashes). A no-op unless `cfg.trace` enables it.
    trace: TraceBuf,
    /// Committed data accesses in program order, for the axiomatic
    /// conformance checker. Empty unless `cfg.check` is on; strictly
    /// passive — nothing in the pipeline reads it.
    dlog: Vec<DataEvent>,
}

impl Core {
    /// Creates a core executing `prog` against a guest memory of
    /// `mem_bytes` (used to detect wrong-path wild addresses).
    pub fn new(id: CoreId, cfg: CoreConfig, prog: Program, mem_bytes: u64) -> Core {
        let bp = BranchPredictor::new(cfg.bp_table_bits, cfg.bp_history_bits);
        let ss = StoreSets::new(10);
        let aq = AtomicQueue::new(cfg.aq_size);
        let trace = TraceBuf::new(&cfg.trace);
        Core {
            id,
            cfg,
            prog,
            mem_bytes,
            fetch_pc: 0,
            fetch_stall_until: 0,
            fetch_barrier: None,
            next_seq: 1,
            rename: [None; NUM_REGS],
            arch_regs: [0; NUM_REGS],
            rob: Rob::new(),
            aq,
            sb: VecDeque::new(),
            lq_count: 0,
            sq_count: 0,
            bp,
            ss,
            state: CoreState::Running,
            wd_counter: 0,
            fetch_blocked_rob: false,
            fetch_blocked_lsq: false,
            stats: CoreStats::default(),
            trace,
            dlog: Vec::new(),
        }
    }

    /// This core's trace ring (empty unless `cfg.trace` enables recording).
    pub fn trace_records(&self) -> Vec<TraceRecord> {
        self.trace.records()
    }

    /// Committed data accesses in program order (empty unless
    /// `cfg.check` is on).
    pub fn data_events(&self) -> &[DataEvent] {
        &self.dlog
    }

    /// The last `n` trace records (flight-recorder tail).
    pub fn trace_tail(&self, n: usize) -> Vec<TraceRecord> {
        self.trace.tail(n)
    }

    /// True once `Halt` has committed.
    pub fn halted(&self) -> bool {
        self.state == CoreState::Halted
    }

    /// True while the core sleeps in MonitorWait.
    pub fn sleeping(&self) -> bool {
        matches!(self.state, CoreState::Sleeping { .. })
    }

    /// The cycle at which a sleeping core's monitor timeout fires (`None`
    /// while not sleeping). Until then the core only wakes on a `LineLost`
    /// notice for its monitored line, so a driver that knows no traffic is
    /// pending may skip its ticks entirely.
    pub fn wake_at(&self) -> Option<u64> {
        match self.state {
            CoreState::Sleeping { wake_at, .. } => Some(wake_at),
            _ => None,
        }
    }

    /// True when ticking this core would be a pure no-op apart from sleep
    /// accounting: halted or MonitorWait-sleeping, with an empty store
    /// buffer. Callers must additionally confirm no responses/notices are
    /// queued for the core and (for a sleeper) that the monitor timeout has
    /// not come due.
    pub fn idle_skippable(&self) -> bool {
        (self.halted() || self.sleeping()) && self.sb.is_empty()
    }

    /// Accounts `n` skipped cycles for a sleeping core, exactly as `n`
    /// ticks in `CoreState::Sleeping` would have: the cycle and
    /// sleep-cycle counters advance, nothing else changes. Halted cores
    /// need no accounting (their tick path does not count cycles).
    ///
    /// # Panics
    ///
    /// Panics (debug) if the core is not sleeping — crediting sleep cycles
    /// to a running core would corrupt its statistics.
    pub fn credit_idle_cycles(&mut self, n: u64) {
        debug_assert!(self.sleeping(), "idle credit is only defined while sleeping");
        self.stats.cycles += n;
        self.stats.sleep_cycles += n;
        self.stats.cpi.add(CpiLeaf::Idle, n);
    }

    /// The core's id.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// Architectural register value (valid at halt; speculative state is
    /// not included).
    pub fn arch_reg(&self, r: Reg) -> Word {
        if r.is_zero() {
            0
        } else {
            self.arch_regs[r.index()]
        }
    }

    /// Finalizes predictor statistics into [`Core::stats`]. Call once at the
    /// end of a run.
    pub fn finalize_stats(&mut self) {
        self.stats.branch_lookups = self.bp.lookups;
        self.stats.branch_mispredicts = self.bp.mispredicts;
    }

    /// Advances the core one cycle.
    pub fn tick(&mut self, now: u64, mem: &mut MemorySystem) {
        if self.state == CoreState::Halted {
            // The pipeline is dead but committed stores must still drain.
            let responses = mem.drain_responses(self.id);
            let _ = mem.drain_notices(self.id);
            self.handle_idle_responses(&responses, mem);
            self.drain_store_buffer(now, mem);
            return;
        }
        self.stats.cycles += 1;
        self.fetch_blocked_rob = false;
        self.fetch_blocked_lsq = false;

        let notices = mem.drain_notices(self.id);
        let responses = mem.drain_responses(self.id);

        // Sleeping: drain the SB and watch for the wake condition.
        if let CoreState::Sleeping { line, wake_at, resume_pc } = self.state {
            self.stats.sleep_cycles += 1;
            self.stats.cpi.record(CpiLeaf::Idle);
            self.handle_idle_responses(&responses, mem);
            self.drain_store_buffer(now, mem);
            let line_written = notices
                .iter()
                .any(|n| matches!(n, CoreNotice::LineLost { line: l, .. } if *l == line));
            if line_written || now >= wake_at {
                self.state = CoreState::Running;
                self.fetch_barrier = None;
                self.fetch_pc = resume_pc;
                self.fetch_stall_until = now + 1;
            }
            return;
        }

        if wd_debug() && now.is_multiple_of(5000) && self.aq.any_locked() {
            eprintln!(
                "[state {:?} @{now}] rob_head={:?} rob_len={} sb_len={} wd={} aq={:?}",
                self.id,
                self.rob.front().map(|e| (e.seq, e.uop.kind, e.uop.pc, e.done, e.issued)),
                self.rob.len(),
                self.sb.len(),
                self.wd_counter,
                self.aq
            );
        }

        // 1. Invalidation-driven squash of speculatively performed loads
        //    (the TSO load→load repair).
        for n in &notices {
            let CoreNotice::LineLost { line, .. } = n;
            self.squash_performed_loads_on(*line, now, mem);
        }

        // 2. Memory responses.
        self.handle_responses(&responses, now, mem);

        // 3. Finish executions whose latency expired (branches may squash).
        self.finalize_executions(now, mem);

        // 4. Deadlock watchdog.
        self.watchdog(now, mem);

        // 5. In-order commit.
        let uops_before = self.stats.uops;
        self.commit(now, mem);

        // 6. Store-buffer drain.
        self.drain_store_buffer(now, mem);

        // 7. Wakeup + issue.
        self.wakeup(now);
        self.issue(now, mem);

        // 8. Fetch/decode/rename/dispatch.
        self.fetch(now);

        // 9. Cycle accounting: attribute this cycle to exactly one leaf.
        self.account_cycle(uops_before, mem);
    }

    /// Attributes the cycle just simulated to one [`CpiLeaf`], top-down:
    /// a committing cycle is `Commit` no matter what else stalled; an
    /// empty ROB is front-end starvation; otherwise the ROB head names the
    /// bottleneck (commit-blocking drains, then the memory wait — refined
    /// by the memory system's pure-read probes — then the structural
    /// back-pressure fetch recorded this cycle). Strictly passive: every
    /// input is state the pipeline already computed.
    fn account_cycle(&mut self, uops_before: u64, mem: &MemorySystem) {
        let leaf = if self.stats.uops > uops_before {
            CpiLeaf::Commit
        } else if self.rob.is_empty() {
            CpiLeaf::FetchStarved
        } else {
            let head = self.rob.front().expect("nonempty");
            let is_ll = matches!(head.uop.kind, UopKind::LoadLock { .. });
            if head.done && is_ll && !self.sb.is_empty() {
                // store→RMW commit order (§3.2.3): the atomic waits on the
                // store buffer.
                CpiLeaf::SbDrain
            } else if matches!(head.uop.kind, UopKind::Fence(FenceKind::Standalone))
                && !self.sb.is_empty()
            {
                CpiLeaf::FenceDrain
            } else if head.mem == MemPhase::WaitCache {
                if mem.core_alloc_waiting(self.id) {
                    CpiLeaf::DirAllocWait
                } else if mem.core_backpressured(self.id) {
                    CpiLeaf::NocBackpressure
                } else if is_ll {
                    CpiLeaf::AtomicLockWait
                } else {
                    CpiLeaf::LoadFill
                }
            } else if is_ll
                && !head.issued
                && head.addr.is_some()
                && !self.load_lock_may_issue(head.seq)
            {
                // Fenced-policy issue gate: the head atomic may not issue
                // until the store buffer drains.
                CpiLeaf::SbDrain
            } else if self.fetch_blocked_rob {
                CpiLeaf::RobFull
            } else if self.fetch_blocked_lsq {
                CpiLeaf::LsqFull
            } else {
                CpiLeaf::Issue
            }
        };
        self.stats.cpi.record(leaf);
    }

    // ---------------------------------------------------------------- fetch

    fn fetch(&mut self, now: u64) {
        if self.state != CoreState::Running
            || self.fetch_barrier.is_some()
            || now < self.fetch_stall_until
        {
            return;
        }
        let mut fetched = 0;
        while fetched < self.cfg.fetch_width {
            let pc = self.fetch_pc;
            let instr = *self.prog.get(pc as usize).expect("fetch past program end");
            let uops = fa_isa::decode(instr, pc);
            // Structural resources for the whole instruction.
            if self.rob.len() + uops.len() > self.cfg.rob_size {
                self.fetch_blocked_rob = true;
                break;
            }
            let loads = uops.iter().filter(|u| u.is_load_class()).count()
                + uops
                    .iter()
                    .filter(|u| matches!(u.kind, UopKind::MonitorWait { .. }))
                    .count();
            let stores = uops.iter().filter(|u| u.is_store_class()).count();
            if self.lq_count + loads > self.cfg.lq_size
                || self.sq_count + stores > self.cfg.sq_size
            {
                self.fetch_blocked_lsq = true;
                break;
            }
            if instr.is_rmw() && self.aq.is_full() {
                self.stats.aq_full_stalls += 1;
                self.fetch_blocked_lsq = true;
                break;
            }
            for u in &uops {
                self.dispatch_uop(*u, now);
            }
            fetched += 1;
            match instr {
                Instr::Branch { .. } => {
                    // Direction was predicted inside dispatch_uop; it set
                    // fetch_pc already.
                }
                Instr::Jump { target } => self.fetch_pc = target,
                Instr::Halt => {
                    self.fetch_barrier = Some(FetchBarrier::Halt);
                    break;
                }
                Instr::MonitorWait { .. } => {
                    self.fetch_barrier = Some(FetchBarrier::Monitor);
                    break;
                }
                _ => self.fetch_pc = pc + 1,
            }
        }
    }

    fn dispatch_uop(&mut self, uop: Uop, now: u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut e = Entry::new(seq, uop);

        // Capture sources through the rename table.
        for r in uop.srcs().iter() {
            let i = e.nsrcs as usize;
            e.src_regs[i] = r;
            e.srcs[i] = match self.rename[r.index()] {
                Some(pseq) => match self.rob.get(pseq) {
                    Some(p) if p.done => SrcVal::Ready(p.result),
                    Some(_) => SrcVal::Wait { seq: pseq, reg: r },
                    None => SrcVal::Ready(self.arch_regs[r.index()]),
                },
                None => SrcVal::Ready(self.arch_regs[r.index()]),
            };
            e.nsrcs += 1;
        }
        // Rename the destination.
        if let Some(d) = uop.dst() {
            if !d.is_zero() {
                e.prev_map = Some((d, self.rename[d.index()]));
                self.rename[d.index()] = Some(seq);
            }
        }
        // Class bookkeeping.
        if uop.is_load_class() || matches!(uop.kind, UopKind::MonitorWait { .. }) {
            self.lq_count += 1;
        }
        if uop.is_store_class() {
            self.sq_count += 1;
            self.ss.store_dispatched(uop.pc, seq);
        }
        match uop.kind {
            UopKind::LoadLock { .. } => self.aq.alloc(seq),
            UopKind::Branch { target, .. } => {
                let (taken, snap) = self.bp.predict(uop.pc);
                e.pred_taken = taken;
                e.bp_snapshot = snap;
                self.fetch_pc = if taken { target } else { uop.pc + 1 };
            }
            UopKind::Jump { .. }
            | UopKind::Fence(_)
            | UopKind::Nop
            | UopKind::Halt => {
                e.done = true;
            }
            UopKind::Pause => {
                e.done_at = Some(now + self.cfg.pause_lat);
                e.issued = true;
            }
            _ => {}
        }
        self.rob.push(e);
        self.trace.record(now, TraceEvent::UopDispatch { seq, pc: uop.pc as u64 });
    }

    // -------------------------------------------------------------- wakeup

    /// Resolves `Wait` operands against completed producers.
    fn wakeup(&mut self, _now: u64) {
        let Some(head) = self.rob.head_seq() else { return };
        // Collect resolutions read-only, then apply.
        let mut updates: Vec<(Seq, usize, Word)> = Vec::new();
        for e in self.rob.iter() {
            if e.done {
                continue;
            }
            for i in 0..e.nsrcs as usize {
                if let SrcVal::Wait { seq, reg } = e.srcs[i] {
                    if seq < head {
                        updates.push((e.seq, i, self.arch_regs[reg.index()]));
                    } else if let Some(p) = self.rob.get(seq) {
                        if p.done {
                            updates.push((e.seq, i, p.result));
                        }
                    } else {
                        updates.push((e.seq, i, self.arch_regs[reg.index()]));
                    }
                }
            }
        }
        for (seq, i, v) in updates {
            if let Some(e) = self.rob.get_mut(seq) {
                e.srcs[i] = SrcVal::Ready(v);
            }
        }
    }

    // --------------------------------------------------------------- issue

    fn issue(&mut self, now: u64, mem: &mut MemorySystem) {
        // Address generation + store resolution first (may trigger MDV
        // squashes), then issue.
        self.compute_addresses(now, mem);

        let mut budget = self.cfg.issue_width;
        let seqs: Vec<Seq> = self
            .rob
            .iter()
            .filter(|e| !e.issued && !e.done)
            .map(|e| e.seq)
            .collect();
        for seq in seqs {
            if budget == 0 {
                break;
            }
            // The entry may have been squashed by an earlier issue this
            // cycle (an MDV raised by a store issuing, say).
            let Some(e) = self.rob.get(seq) else { continue };
            if e.issued || e.done {
                continue;
            }
            let pc = e.uop.pc;
            let issued = match e.uop.kind {
                UopKind::Alu { .. } | UopKind::RmwAlu { .. } => self.issue_alu(seq, now),
                UopKind::Branch { .. } => self.issue_branch(seq, now),
                UopKind::Load { .. } | UopKind::LoadLock { .. } => {
                    self.issue_load(seq, now, mem)
                }
                UopKind::Store { .. } | UopKind::StoreUnlock { .. } => {
                    self.issue_store(seq, now)
                }
                UopKind::MonitorWait { .. } => self.issue_monitor(seq, now, mem),
                _ => false,
            };
            if issued {
                budget -= 1;
                self.trace.record(now, TraceEvent::UopIssue { seq, pc: pc as u64 });
            }
        }
    }

    fn issue_alu(&mut self, seq: Seq, now: u64) -> bool {
        let e = self.rob.get(seq).expect("entry exists");
        if !e.srcs_ready() {
            return false;
        }
        let (result, lat) = match e.uop.kind {
            UopKind::Alu { op, a, b, .. } => {
                let av = e.value_of(a).expect("ready");
                let bv = match b {
                    fa_isa::Operand::Reg(r) => e.value_of(r).expect("ready"),
                    fa_isa::Operand::Imm(v) => v as u64,
                };
                let lat = if matches!(op, fa_isa::AluOp::Mul) {
                    self.cfg.mul_lat
                } else {
                    self.cfg.alu_lat
                };
                (op.eval(av, bv), lat)
            }
            UopKind::RmwAlu { op, old, src, cmp, .. } => {
                let ov = e.value_of(old).expect("ready");
                let sv = e.value_of(src).expect("ready");
                let cv = e.value_of(cmp).expect("ready");
                (op.store_value(ov, sv, cv), self.cfg.alu_lat)
            }
            _ => unreachable!(),
        };
        let e = self.rob.get_mut(seq).unwrap();
        e.result = result;
        e.issued = true;
        e.issued_at = Some(now);
        e.done_at = Some(now + lat);
        true
    }

    fn issue_branch(&mut self, seq: Seq, now: u64) -> bool {
        let e = self.rob.get(seq).expect("entry exists");
        if !e.srcs_ready() {
            return false;
        }
        let UopKind::Branch { cond, a, b, .. } = e.uop.kind else { unreachable!() };
        let av = e.value_of(a).expect("ready");
        let bv = match b {
            fa_isa::Operand::Reg(r) => e.value_of(r).expect("ready"),
            fa_isa::Operand::Imm(v) => v as u64,
        };
        let taken = cond.eval(av, bv);
        let e = self.rob.get_mut(seq).unwrap();
        e.result = u64::from(taken);
        e.issued = true;
        e.issued_at = Some(now);
        e.done_at = Some(now + self.cfg.alu_lat);
        true
    }

    fn issue_store(&mut self, seq: Seq, now: u64) -> bool {
        // Stores "issue" once address and data are both known; the actual
        // write happens at SB drain. Data readiness is all srcs ready.
        let e = self.rob.get(seq).expect("entry exists");
        if e.addr.is_none() || !e.srcs_ready() {
            return false;
        }
        let e = self.rob.get_mut(seq).unwrap();
        e.issued = true;
        e.issued_at = Some(now);
        e.done = true;
        true
    }

    fn issue_monitor(&mut self, seq: Seq, now: u64, mem: &mut MemorySystem) -> bool {
        let e = self.rob.get(seq).expect("entry exists");
        let Some(addr) = e.addr else { return false };
        if e.poisoned {
            let e = self.rob.get_mut(seq).unwrap();
            e.done = true;
            e.mem = MemPhase::Performed;
            return true;
        }
        match mem.read(self.id, seq, addr, false, false) {
            fa_mem::privcache::ReqOutcome::Accepted => {
                let e = self.rob.get_mut(seq).unwrap();
                e.issued = true;
                e.issued_at = Some(now);
                e.mem = MemPhase::WaitCache;
                true
            }
            fa_mem::privcache::ReqOutcome::Retry => false,
        }
    }

    /// Computes effective addresses for memory micro-ops whose base operand
    /// resolved; newly resolved store addresses run the memory-dependence
    /// violation check.
    fn compute_addresses(&mut self, now: u64, mem: &mut MemorySystem) {
        let mut resolved_stores: Vec<Seq> = Vec::new();
        let mut updates: Vec<(Seq, Addr, bool)> = Vec::new();
        for e in self.rob.iter() {
            if e.addr.is_some() {
                continue;
            }
            let (base, offset) = match e.uop.kind {
                UopKind::Load { base, offset, .. }
                | UopKind::LoadLock { base, offset, .. }
                | UopKind::Store { base, offset, .. }
                | UopKind::StoreUnlock { base, offset, .. }
                | UopKind::MonitorWait { base, offset } => (base, offset),
                _ => continue,
            };
            let Some(bv) = e.value_of(base) else { continue };
            let addr = bv.wrapping_add(offset as u64);
            let poisoned = addr % 8 != 0 || addr >= self.mem_bytes;
            updates.push((e.seq, addr, poisoned));
            if e.uop.is_store_class() && !poisoned {
                resolved_stores.push(e.seq);
            }
        }
        for (seq, addr, poisoned) in updates {
            let e = self.rob.get_mut(seq).unwrap();
            e.addr = Some(addr);
            e.poisoned = poisoned;
            if e.ready_since.is_none() {
                e.ready_since = Some(now);
            }
            if poisoned && e.uop.is_load_class() {
                // Wrong-path wild load: never touches memory, pretends to
                // perform. It can never commit (an older mispredicted branch
                // must flush it).
                e.done = true;
                e.mem = MemPhase::Performed;
            }
        }
        for sseq in resolved_stores {
            let Some(s) = self.rob.get(sseq) else { continue };
            self.ss.store_resolved(s.uop.pc, sseq);
            self.check_mem_order_violation(sseq, now, mem);
        }
    }

    /// A store just resolved its address: any younger load that already
    /// performed against the same address without forwarding from it (or
    /// from a younger store) violated program order.
    fn check_mem_order_violation(&mut self, store_seq: Seq, now: u64, mem: &mut MemorySystem) {
        let store = self.rob.get(store_seq).expect("store exists");
        let saddr = store.addr.expect("resolved");
        let spc = store.uop.pc;
        let victim = self
            .rob
            .iter()
            .filter(|e| e.seq > store_seq && e.uop.is_load_class() && !e.poisoned)
            .filter(|e| e.addr == Some(saddr))
            // In-flight loads (WaitCache) are victims too: their response
            // samples memory at delivery, which may land before this store
            // performs — the load would then commit a pre-store value with
            // nothing left to repair it (a CoWR violation).
            .filter(|e| e.mem != MemPhase::Idle || e.done)
            .find(|e| match e.fwd_from {
                None => true,
                Some(f) => f < store_seq,
            })
            .map(|e| (e.seq, e.uop.pc, e.uop.slot));
        if let Some((lseq, lpc, lslot)) = victim {
            self.ss.train_violation(lpc, spc);
            let first = lseq - lslot as u64;
            self.squash_from(first, lpc, SquashCause::MemOrder, now, mem);
        }
    }

    fn issue_load(&mut self, seq: Seq, now: u64, mem: &mut MemorySystem) -> bool {
        let e = self.rob.get(seq).expect("entry exists");
        if e.addr.is_none() || e.mem != MemPhase::Idle || e.poisoned {
            return false;
        }
        let addr = e.addr.expect("checked");
        let is_ll = matches!(e.uop.kind, UopKind::LoadLock { .. });
        let pc = e.uop.pc;

        // Fence ordering: younger loads wait on standalone fences always,
        // and on atomic-post fences under the fenced policies.
        if self.blocked_by_fence(seq) {
            return false;
        }
        // Weak model: an SC store orders younger loads after its perform
        // (the W→R restoration that makes SC stores Dekker-safe); loads
        // wait while an older SC store is in flight or buffered.
        if self.cfg.model == MemModel::Weak && self.blocked_by_sc_store(seq) {
            return false;
        }
        // Policy-specific load_lock issue conditions.
        if is_ll && !self.load_lock_may_issue(seq) {
            return false;
        }
        // Memory-dependence prediction: wait on trained store sets.
        if let Some(wait_seq) = self.ss.load_should_wait(pc) {
            if wait_seq < seq && self.rob.get(wait_seq).map(|s| s.addr.is_none()).unwrap_or(false)
            {
                return false;
            }
        }

        // Search older stores, youngest first: ROB then SB.
        enum Hit {
            /// Forward `value` from store `seq` (`unlock` = store_unlock).
            Fwd { sseq: Seq, value: Word, unlock: bool },
            /// Conflict that cannot forward yet: wait.
            Wait,
            /// No conflict: go to cache.
            None,
        }
        let mut hit = Hit::None;
        for s in self.rob.iter().rev() {
            if s.seq >= seq || !s.uop.is_store_class() {
                continue;
            }
            match s.addr {
                None => {
                    // Unknown older store address: speculate past it (the
                    // StoreSet check above already held back risky loads).
                    continue;
                }
                Some(sa) if sa == addr => {
                    let unlock = matches!(s.uop.kind, UopKind::StoreUnlock { .. });
                    let data = match s.uop.kind {
                        UopKind::Store { src, .. } | UopKind::StoreUnlock { src, .. } => {
                            s.value_of(src)
                        }
                        _ => None,
                    };
                    hit = match data {
                        Some(v) => Hit::Fwd { sseq: s.seq, value: v, unlock },
                        None => Hit::Wait,
                    };
                    break;
                }
                Some(_) => continue,
            }
        }
        if matches!(hit, Hit::None) {
            // SB: committed but unperformed stores, youngest first.
            for s in self.sb.iter().rev() {
                if s.addr == addr {
                    hit = Hit::Fwd { sseq: s.seq, value: s.value, unlock: s.is_unlock };
                    break;
                }
            }
        }

        match hit {
            Hit::Wait => false,
            Hit::Fwd { sseq, value, unlock } => {
                if is_ll {
                    self.forward_to_load_lock(seq, sseq, value, unlock, now)
                } else {
                    let writer = write_id(self.id.0, sseq);
                    let e = self.rob.get_mut(seq).unwrap();
                    e.result = value;
                    e.fwd_from = Some(sseq);
                    e.writer = writer;
                    e.mem = MemPhase::Performed;
                    e.issued = true;
                    e.issued_at = Some(now);
                    e.done_at = Some(now + self.cfg.fwd_lat);
                    self.stats.load_forwards += 1;
                    true
                }
            }
            Hit::None => {
                match mem.read(self.id, seq, addr, is_ll, is_ll) {
                    fa_mem::privcache::ReqOutcome::Accepted => {
                        let drain = {
                            let e = self.rob.get_mut(seq).unwrap();
                            e.issued = true;
                            e.issued_at = Some(now);
                            e.mem = MemPhase::WaitCache;
                            now.saturating_sub(e.ready_since.unwrap_or(now))
                        };
                        if is_ll {
                            self.stats.atomic_drain_cycles += drain;
                            self.stats.atomic_drain_hist.record(drain);
                            if let Some(a) = self.aq.get_mut(seq) {
                                a.issued_at = now;
                            }
                            self.trace.record(
                                now,
                                TraceEvent::AtomicLoadLock { seq, addr, drain, fwd: false },
                            );
                        }
                        true
                    }
                    fa_mem::privcache::ReqOutcome::Retry => false,
                }
            }
        }
    }

    /// Applies store-to-load forwarding to a load_lock (§3.3), or refuses
    /// when the policy forbids it / the chain limit is hit (the load_lock
    /// then waits for the store to drain — "re-scheduling").
    fn forward_to_load_lock(
        &mut self,
        seq: Seq,
        sseq: Seq,
        value: Word,
        from_unlock: bool,
        now: u64,
    ) -> bool {
        if !self.cfg.policy.atomic_forwarding() {
            return false; // wait for the store to perform
        }
        // Chain length: forwarding from an atomic extends its chain.
        let chain = if from_unlock {
            let src_ll = sseq - 2;
            self.aq.get(src_ll).map(|a| a.chain + 1).unwrap_or(1)
        } else {
            1
        };
        if chain > self.cfg.fwd_chain_max {
            return false;
        }
        // Record the responsibility on the providing store if still in the
        // ROB (informational; lock transfer is driven by the AQ itself).
        if let Some(s) = self.rob.get_mut(sseq) {
            s.fwd_count += 1;
            if from_unlock {
                s.do_not_unlock = true;
            } else {
                s.lock_on_access = true;
            }
        }
        let aqe = self.aq.get_mut(seq).expect("load_lock has an AQ entry");
        aqe.state = AqState::Fwd { store_seq: sseq, from_atomic: from_unlock };
        aqe.chain = chain;
        aqe.issued_at = now;
        // Forwarded load_locks perform immediately: the whole lifetime is
        // local execute (acquire/transfer/park contribute nothing).
        aqe.acquired_at = now;
        let writer = write_id(self.id.0, sseq);
        let (drain, addr) = {
            let e = self.rob.get_mut(seq).unwrap();
            e.result = value;
            e.fwd_from = Some(sseq);
            e.writer = writer;
            e.fwd_kind = Some(if from_unlock { FwdSource::Atomic } else { FwdSource::Store });
            e.mem = MemPhase::Performed;
            e.issued = true;
            e.issued_at = Some(now);
            e.done_at = Some(now + self.cfg.fwd_lat);
            (now.saturating_sub(e.ready_since.unwrap_or(now)), e.addr.unwrap_or(0))
        };
        self.stats.load_forwards += 1;
        self.stats.atomic_drain_cycles += drain;
        self.stats.atomic_drain_hist.record(drain);
        self.trace.record(now, TraceEvent::AtomicLoadLock { seq, addr, drain, fwd: true });
        // A forwarded load_lock performs immediately: reset the watchdog.
        self.wd_counter = 0;
        true
    }

    /// True when `seq` (a load-class micro-op) must wait behind a fence.
    fn blocked_by_fence(&self, seq: Seq) -> bool {
        for e in self.rob.iter() {
            if e.seq >= seq {
                break;
            }
            if let UopKind::Fence(kind) = e.uop.kind {
                match kind {
                    FenceKind::Standalone => return true,
                    FenceKind::AtomicPost if self.cfg.policy.fenced() => return true,
                    _ => {}
                }
            }
        }
        false
    }

    /// True when an older plain `SeqCst` store is still in the ROB or the
    /// store buffer (weak model only; store_unlocks are governed by the
    /// atomic policy's fences instead).
    fn blocked_by_sc_store(&self, seq: Seq) -> bool {
        if self.sb.iter().any(|s| s.sc) {
            return true;
        }
        for e in self.rob.iter() {
            if e.seq >= seq {
                break;
            }
            if matches!(e.uop.kind, UopKind::Store { .. }) && !e.poisoned && e.uop.ord.is_sc() {
                return true;
            }
        }
        false
    }

    /// Policy gate for issuing a load_lock.
    fn load_lock_may_issue(&self, seq: Seq) -> bool {
        match self.cfg.policy {
            AtomicPolicy::FencedBaseline => {
                // Only at the ROB head-of-instruction (everything older
                // committed — the AtomicPre fence commits as a nop ahead of
                // us) and with the SB drained.
                let oldest = self
                    .rob
                    .iter()
                    .find(|e| !matches!(e.uop.kind, UopKind::Fence(_)))
                    .map(|e| e.seq);
                oldest == Some(seq) && self.sb.is_empty()
            }
            AtomicPolicy::FencedSpec => {
                // All older memory operations must have committed and the SB
                // drained — only *control* speculation is allowed (§3.1).
                self.sb.is_empty()
                    && !self.rob.iter().any(|e| e.seq < seq && e.uop.is_mem())
            }
            AtomicPolicy::Free | AtomicPolicy::FreeFwd => true,
        }
    }

    // ----------------------------------------------------------- responses

    fn handle_responses(&mut self, responses: &[CoreResp], now: u64, mem: &mut MemorySystem) {
        for r in responses {
            match *r {
                CoreResp::ReadResp {
                    seq,
                    addr,
                    value,
                    writer,
                    class,
                    had_write_perm,
                    locked,
                    xfer,
                    park,
                } => {
                    let live = self
                        .rob
                        .get(seq)
                        .map(|e| e.mem == MemPhase::WaitCache)
                        .unwrap_or(false);
                    if !live {
                        // Orphaned response (the requester was squashed).
                        if locked {
                            mem.unlock_line(self.id, line_of(addr));
                        }
                        continue;
                    }
                    let is_ll = {
                        let e = self.rob.get_mut(seq).unwrap();
                        e.result = value;
                        e.writer = writer;
                        e.mem = MemPhase::Performed;
                        e.done = true;
                        e.local_wp = had_write_perm;
                        matches!(e.uop.kind, UopKind::LoadLock { .. })
                    };
                    if is_ll {
                        debug_assert!(locked, "load_lock response must lock");
                        let aqe = self.aq.get_mut(seq).expect("AQ entry");
                        aqe.state = AqState::Locked(line_of(addr));
                        aqe.acquired_at = now;
                        // Lifetime split: the issue→response window is
                        // directory park + interconnect transfer (both
                        // stamped by the memory system) + everything else,
                        // which is the cache-lock acquire path. Staged on
                        // the AQ entry; folded into stats only if the
                        // atomic commits (its store_unlock drains).
                        //
                        // A squash-reissued load_lock can merge onto the
                        // still-in-flight MSHR of its first attempt, so the
                        // response's transfer/park stamps may cover a window
                        // that started before this attempt issued. Only the
                        // portion inside this attempt's wait window is this
                        // atomic's exec latency — clamp transfer (the tail
                        // nearest the response) first, park to the rest —
                        // keeping acquire + xfer + park == wait exact.
                        let wait = now.saturating_sub(aqe.issued_at);
                        let xfer = xfer.min(wait);
                        let park = park.min(wait - xfer);
                        aqe.acquire = wait - xfer - park;
                        aqe.xfer = xfer;
                        aqe.xfer_class = class.index();
                        aqe.park = park;
                        // §3.2.5: the watchdog resets whenever a load_lock
                        // performs.
                        self.wd_counter = 0;
                    }
                }
                CoreResp::StoreReady { seq, .. } => {
                    if let Some(s) = self.sb.iter_mut().find(|s| s.seq == seq) {
                        s.acquire_pending = false;
                    }
                }
            }
        }
    }

    /// Response handling while the pipeline is idle (sleeping or halted):
    /// the ROB is empty, so every read response is an orphan (release any
    /// lock it carries), and StoreReady responses still feed the SB.
    fn handle_idle_responses(&mut self, responses: &[CoreResp], mem: &mut MemorySystem) {
        for r in responses {
            match *r {
                CoreResp::ReadResp { addr, locked: true, .. } => {
                    mem.unlock_line(self.id, line_of(addr));
                }
                CoreResp::ReadResp { .. } => {}
                CoreResp::StoreReady { seq, .. } => {
                    if let Some(s) = self.sb.iter_mut().find(|s| s.seq == seq) {
                        s.acquire_pending = false;
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------ finalize

    /// Completes executions whose latency expired; resolves branches.
    fn finalize_executions(&mut self, now: u64, mem: &mut MemorySystem) {
        loop {
            let next = self
                .rob
                .iter()
                .find(|e| !e.done && e.done_at.map(|t| t <= now).unwrap_or(false))
                .map(|e| e.seq);
            let Some(seq) = next else { break };
            let e = self.rob.get_mut(seq).unwrap();
            e.done = true;
            let kind = e.uop.kind;
            if let UopKind::Branch { target, .. } = kind {
                let taken = e.result != 0;
                let predicted = e.pred_taken;
                let snapshot = e.bp_snapshot;
                let pc = e.uop.pc;
                self.bp.resolve(pc, snapshot, predicted, taken);
                if taken != predicted {
                    let redirect = if taken { target } else { pc + 1 };
                    self.squash_from(seq + 1, redirect, SquashCause::Branch, now, mem);
                }
            }
        }
    }

    // -------------------------------------------------------------- commit

    fn commit(&mut self, now: u64, mem: &mut MemorySystem) {
        let mut budget = self.cfg.commit_width;
        while budget > 0 {
            let Some(head) = self.rob.front() else { break };
            if !head.done {
                break;
            }
            let uop = head.uop;
            let seq = head.seq;
            assert!(
                !head.poisoned,
                "core {:?}: wrong-path access to invalid address {:?} reached commit at pc {} — \
                 workload bug",
                self.id, head.addr, uop.pc
            );
            match uop.kind {
                UopKind::LoadLock { .. }
                    // store→RMW order (§3.2.3): the atomic may only commit
                    // once every older store has drained.
                    if !self.sb.is_empty() => {
                        break;
                    }
                UopKind::Fence(FenceKind::Standalone)
                    // MFENCE orders store→load: drain first. Under the weak
                    // model only an SC fence restores W→R; weaker fences
                    // are pipeline reorder barriers that commit without
                    // waiting on the store buffer.
                    if !self.sb.is_empty()
                        && (self.cfg.model == MemModel::Tso || uop.ord.is_sc()) => {
                        break;
                    }
                _ => {}
            }
            let head = self.rob.pop_front().expect("checked");
            budget -= 1;
            self.stats.uops += 1;
            self.trace.record(now, TraceEvent::UopCommit { seq, pc: head.uop.pc as u64 });
            // Free the rename mapping and update architectural state.
            if let Some(d) = head.uop.dst() {
                if !d.is_zero() {
                    self.arch_regs[d.index()] = head.result;
                    if self.rename[d.index()] == Some(seq) {
                        self.rename[d.index()] = None;
                    }
                }
            }
            match head.uop.kind {
                UopKind::Load { .. } => {
                    self.lq_count -= 1;
                    if self.cfg.check.on() {
                        self.dlog.push(DataEvent::Load {
                            seq,
                            addr: head.addr.expect("performed load has an address"),
                            value: head.result,
                            writer: head.writer,
                            ord: head.uop.ord,
                        });
                    }
                }
                UopKind::LoadLock { .. } => {
                    self.lq_count -= 1;
                    if self.cfg.check.on() {
                        self.dlog.push(DataEvent::LoadLock {
                            seq,
                            addr: head.addr.expect("performed load_lock has an address"),
                            value: head.result,
                            writer: head.writer,
                        });
                    }
                    if head.local_wp {
                        self.stats.atomics_local_wp += 1;
                    }
                    match head.fwd_kind {
                        Some(FwdSource::Atomic) => self.stats.atomics_fwd_from_atomic += 1,
                        Some(FwdSource::Store) => self.stats.atomics_fwd_from_store += 1,
                        None => {}
                    }
                }
                UopKind::MonitorWait { .. } => {
                    self.lq_count -= 1;
                    let line = line_of(head.addr.expect("performed"));
                    self.state = CoreState::Sleeping {
                        line,
                        wake_at: now + self.cfg.monitor_timeout,
                        resume_pc: head.uop.pc + 1,
                    };
                    self.stats.monitor_sleeps += 1;
                    self.stats.instructions += 1;
                    return; // sleep starts immediately
                }
                UopKind::Store { src, .. } | UopKind::StoreUnlock { src, .. } => {
                    let is_unlock = matches!(head.uop.kind, UopKind::StoreUnlock { .. });
                    let value = head.value_of(src).expect("store data ready at commit");
                    let addr = head.addr.expect("store address ready at commit");
                    if self.cfg.check.on() {
                        self.dlog.push(if is_unlock {
                            DataEvent::StoreUnlock { seq, addr, value }
                        } else {
                            DataEvent::Store { seq, addr, value, ord: head.uop.ord }
                        });
                    }
                    let entry = SbEntry {
                        seq,
                        pc: head.uop.pc,
                        addr,
                        value,
                        is_unlock,
                        ll_seq: if is_unlock { Some(seq - 2) } else { None },
                        acquire_pending: false,
                        sc: !is_unlock && head.uop.ord.is_sc(),
                    };
                    self.sb.push_back(entry);
                    if self.cfg.store_prefetch_at_commit {
                        if let fa_mem::privcache::ReqOutcome::Accepted =
                            mem.store_acquire(self.id, seq, addr)
                        {
                            self.sb.back_mut().unwrap().acquire_pending = true;
                        }
                    }
                }
                UopKind::Fence(kind) => {
                    if kind.is_atomic_fence() && !self.cfg.policy.fenced() {
                        // Omitted fences carry no ordering: not logged —
                        // the RMW events themselves encode the obligation.
                        self.stats.fences_omitted += 1;
                    } else {
                        self.stats.fences_enforced += 1;
                        if self.cfg.check.on() {
                            // Enforced atomic fences are full barriers
                            // regardless of the RMW's annotation (RMWs are
                            // pinned to SC strength in both models).
                            let ord = if kind.is_atomic_fence() {
                                MemOrder::SeqCst
                            } else {
                                head.uop.ord
                            };
                            self.dlog.push(DataEvent::Fence { seq, ord });
                        }
                    }
                }
                UopKind::Pause => self.stats.pauses += 1,
                UopKind::Halt => {
                    self.stats.instructions += 1;
                    self.state = CoreState::Halted;
                    return;
                }
                _ => {}
            }
            if head.uop.last {
                self.stats.instructions += 1;
                if self
                    .prog
                    .get(head.uop.pc as usize)
                    .map(Instr::is_rmw)
                    .unwrap_or(false)
                {
                    self.stats.atomics += 1;
                    // §3.2.5: reset the watchdog when an atomic commits.
                    self.wd_counter = 0;
                }
            }
        }
    }

    // ------------------------------------------------------------ SB drain

    fn drain_store_buffer(&mut self, now: u64, mem: &mut MemorySystem) {
        let Some(&head) = self.sb.front() else { return };
        let line = line_of(head.addr);
        if mem.writable(self.id, line) {
            let ok = mem.try_store_perform(self.id, head.seq, head.addr, head.value, false, false);
            assert!(ok, "writable line must accept the store");
            self.sb.pop_front();
            self.sq_count -= 1;
            // Lock transfer: forwarded load_locks capture the line now
            // (§4.2: the SQ broadcasts its SQid on perform).
            let captured = self.aq.capture_from_store(head.seq, line);
            for _ in 0..captured {
                mem.lock_line(self.id, line);
            }
            if head.is_unlock {
                let ll_seq = head.ll_seq.expect("store_unlock has its load_lock seq");
                let aqe = self.aq.release(ll_seq);
                match aqe.state {
                    AqState::Locked(l) => {
                        debug_assert_eq!(l, line);
                        mem.unlock_line(self.id, l);
                    }
                    other => panic!(
                        "store_unlock performing while its AQ entry is {other:?}; \
                         the lock must be held by perform time"
                    ),
                }
                let exec = now.saturating_sub(aqe.issued_at);
                self.stats.atomic_exec_cycles += exec;
                self.stats.atomic_exec_hist.record(exec);
                // Fold the staged acquire-side split plus the local-execute
                // remainder into stats, exactly once per committed atomic:
                // acquire + xfer + park + local == exec by construction.
                self.stats.atomic_lock_acquire_cycles += aqe.acquire;
                self.stats.atomic_xfer_cycles[aqe.xfer_class] += aqe.xfer;
                self.stats.atomic_dir_park_cycles += aqe.park;
                let local_since =
                    if aqe.acquired_at > 0 { aqe.acquired_at } else { aqe.issued_at };
                self.stats.atomic_local_cycles += now.saturating_sub(local_since);
                self.trace.record(
                    now,
                    TraceEvent::AtomicStoreUnlock { seq: head.seq, addr: head.addr, exec },
                );
            }
        } else if !head.acquire_pending {
            if let fa_mem::privcache::ReqOutcome::Accepted =
                mem.store_acquire(self.id, head.seq, head.addr)
            {
                self.sb.front_mut().unwrap().acquire_pending = true;
            }
        }
        let _ = head.pc;
    }

    // ------------------------------------------------------------ watchdog

    /// §3.2.5: a cycle counter reset whenever a load_lock performs or an
    /// atomic commits; at the threshold, flush from the oldest lock-holding
    /// atomic. Disabled under the non-speculative baseline, which cannot
    /// deadlock (and whose atomics must never be squashed).
    fn watchdog(&mut self, now: u64, mem: &mut MemorySystem) {
        if self.cfg.policy == AtomicPolicy::FencedBaseline {
            return;
        }
        if !self.aq.any_locked() {
            self.wd_counter = 0;
            return;
        }
        self.wd_counter += 1;
        if self.wd_counter <= self.cfg.watchdog_threshold {
            return;
        }
        // Flush from the oldest lock-holding atomic that is still squashable
        // (its load_lock has not committed). A partially committed atomic is
        // about to perform anyway — its store_unlock drains under the lock —
        // so skipping it is both safe and momentary.
        let victim = self
            .aq
            .locked()
            .map(|a| a.ll_seq)
            .find(|&ll| self.rob.get(ll).is_some());
        let Some(oldest) = victim else {
            if wd_debug() && self.wd_counter == self.cfg.watchdog_threshold + 1 {
                eprintln!(
                    "[wd {:?} @{now}] threshold with NO squashable victim; rob_head={:?} \
                     sb_len={} sb_head={:?} aq={:?}",
                    self.id,
                    self.rob.front().map(|e| (e.seq, e.uop.kind, e.uop.pc, e.done, e.issued)),
                    self.sb.len(),
                    self.sb.front(),
                    self.aq
                );
            }
            return;
        };
        self.wd_counter = 0;
        let (first, pc) = {
            let e = self.rob.get(oldest).expect("just found");
            (e.seq - e.uop.slot as u64, e.uop.pc)
        };
        if wd_debug() {
            let head = self.rob.front().map(|e| (e.seq, e.uop.kind, e.uop.pc, e.done, e.issued));
            eprintln!(
                "[wd {:?} @{now}] flush atomic pc={pc} seq={oldest}; rob_head={head:?} \
                 rob_len={} sb_len={} aq={:?}",
                self.id,
                self.rob.len(),
                self.sb.len(),
                self.aq
            );
        }
        self.squash_from(first, pc, SquashCause::Watchdog, now, mem);
    }

    // -------------------------------------------------------------- squash

    /// Squashes every micro-op with `seq >= from`, restores the rename
    /// table, lifts speculatively taken cache-line locks
    /// (`unlock_on_squash`, §3.1), and redirects fetch to `redirect_pc`.
    fn squash_from(
        &mut self,
        from: Seq,
        redirect_pc: u32,
        cause: SquashCause,
        now: u64,
        mem: &mut MemorySystem,
    ) {
        let drained = self.rob.drain_from(from);
        self.stats.record_squash(cause, drained.len() as u64);
        self.trace.record(now, TraceEvent::Squash { from_seq: from, uops: drained.len() as u64 });
        for e in &drained {
            // Youngest-first restoration of the rename map.
            if let Some((reg, prev)) = e.prev_map {
                self.rename[reg.index()] = prev;
            }
            if e.uop.is_load_class() || matches!(e.uop.kind, UopKind::MonitorWait { .. }) {
                self.lq_count -= 1;
            }
            if e.uop.is_store_class() {
                self.sq_count -= 1;
                self.ss.store_resolved(e.uop.pc, e.seq);
            }
        }
        for aqe in self.aq.squash_from(from) {
            if let AqState::Locked(line) = aqe.state {
                // unlock_on_squash: lift the lock the squashed load_lock
                // held (Figure 3).
                mem.unlock_line(self.id, line);
            }
            // Fwd entries carry no lock count; the forwarding store's
            // "responsibility" evaporates with the AQ entry (§3.3.3).
        }
        self.fetch_pc = redirect_pc;
        self.fetch_stall_until = now + self.cfg.redirect_penalty;
        self.fetch_barrier = None;
    }

    /// Invalidation (or eviction) of `line`: squash from the oldest
    /// speculatively performed, uncommitted load on that line (TSO
    /// load→load enforcement per Gharachorloo et al., which the paper's
    /// §3.2.3 relies on). Forwarded loads are exempt (their value came from
    /// a local store). Loads whose response is still in flight (WaitCache)
    /// are victims as well: losing the line between fill and response
    /// delivery means no later invalidation will snoop this load, yet its
    /// delivered value may predate the write that took the line — an
    /// unrepaired load→load reordering.
    fn squash_performed_loads_on(&mut self, line: Line, now: u64, mem: &mut MemorySystem) {
        let weak = self.cfg.model == MemModel::Weak;
        let victim = self
            .rob
            .iter()
            .filter(|e| e.uop.is_load_class() && !e.poisoned && e.fwd_from.is_none())
            .filter(|e| e.mem != MemPhase::Idle || e.done)
            .filter(|e| e.addr.map(|a| line_of(a) == line).unwrap_or(false))
            .find(|e| !weak || self.weak_squash_required(e))
            .map(|e| (e.seq, e.uop.pc, e.uop.slot));
        if let Some((seq, pc, slot)) = victim {
            let first = seq - slot as u64;
            self.squash_from(first, pc, SquashCause::Inval, now, mem);
        }
    }

    /// Weak-model filter for the invalidation squash: a performed load on
    /// the invalidated line only *needs* repair if some older load it must
    /// stay ordered after has not yet performed. That is the case when the
    /// victim is a `load_lock` (it anchors the RMW's atomicity window), or
    /// when an older unperformed load is acquire-class, targets the same
    /// line (per-location coherence / CoRR holds in both models), or has an
    /// unresolved address (conservatively treated as same-line). Relaxed
    /// loads with only relaxed older loads keep their value — the R→R
    /// reordering this exposes is exactly what the weak model permits.
    fn weak_squash_required(&self, victim: &Entry) -> bool {
        if matches!(victim.uop.kind, UopKind::LoadLock { .. }) {
            return true;
        }
        let vline = victim.addr.map(line_of);
        for e in self.rob.iter() {
            if e.seq >= victim.seq {
                break;
            }
            if !e.uop.is_load_class() || e.poisoned {
                continue;
            }
            if e.mem == MemPhase::Performed || e.done {
                continue;
            }
            if matches!(e.uop.kind, UopKind::LoadLock { .. })
                || e.uop.ord.is_acquire()
                || e.addr.is_none()
                || e.addr.map(line_of) == vline
            {
                return true;
            }
        }
        false
    }

    // ------------------------------------------------------------- queries

    /// Store-buffer occupancy (tests).
    pub fn sb_len(&self) -> usize {
        self.sb.len()
    }

    /// In-flight micro-ops (tests).
    pub fn rob_len(&self) -> usize {
        self.rob.len()
    }

    /// Atomic-queue occupancy (tests).
    pub fn aq_len(&self) -> usize {
        self.aq.len()
    }

    /// Snapshot of the hang-relevant pipeline state for timeout reports.
    pub fn diag(&self) -> CoreDiag {
        let mut aq_locked: Vec<Line> = self
            .aq
            .locked()
            .filter_map(|e| match e.state {
                AqState::Locked(line) => Some(line),
                _ => None,
            })
            .collect();
        aq_locked.sort_unstable();
        CoreDiag {
            halted: self.halted(),
            sleeping: self.sleeping(),
            committed: self.stats.instructions,
            rob_len: self.rob.len(),
            sb_len: self.sb.len(),
            wd_counter: self.wd_counter,
            rob_head: self.rob.front().map(|e| {
                (e.seq, e.uop.pc, format!("{:?}", e.uop.kind), e.issued, e.done)
            }),
            aq_locked,
        }
    }
}
