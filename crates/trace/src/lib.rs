//! Structured cycle-level observability for the Free Atomics substrate.
//!
//! Three cooperating pieces, all deterministic:
//!
//! * [`TraceEvent`] + [`TraceBuf`] — a compact structured event API.
//!   Components (cores, private caches, directory, NoC) record events
//!   into bounded per-component ring buffers with `(cycle, seq)`
//!   ordering. Recording is zero-cost when the mode is [`TraceMode::Off`]
//!   (a single enum compare; no allocation, no clock reads, and — by
//!   construction — no effect on simulated state in any mode).
//! * [`Hist`] — log-bucketed latency histograms with *fixed* bucket
//!   edges (powers of two), so histograms collected on different sweep
//!   workers merge element-wise into bit-identical totals regardless of
//!   merge order or thread count.
//! * [`chrome_trace`] — a Chrome-trace/Perfetto JSON exporter so a full
//!   run can be opened in `ui.perfetto.dev`, plus [`flight_json`] for
//!   dumping a crash flight-recorder tail.
//!
//! The crate sits just above `fa-isa` (for the [`MemOrder`] annotations on
//! data events) and below everything else: no simulator types, only plain
//! integers, so both `fa-core` and `fa-mem` can depend on it without
//! layering cycles.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub use fa_isa::MemOrder;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// How much event recording the simulator performs.
///
/// Latency histograms are *not* governed by this switch: they are plain
/// passive counters, always collected, and therefore identical whatever
/// the mode — the determinism tests pin that.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceMode {
    /// No events recorded (default). `TraceBuf::record` returns after one
    /// enum compare.
    #[default]
    Off,
    /// Flight-recorder mode: each component keeps only the last
    /// [`TraceConfig::ring`] events, drained into crash snapshots.
    Flight,
    /// Full mode: events retained (up to [`TraceConfig::full_cap`] per
    /// component) for timeline export.
    Full,
}

impl TraceMode {
    /// Lower-case name as accepted by `FA_TRACE`.
    pub fn name(self) -> &'static str {
        match self {
            TraceMode::Off => "off",
            TraceMode::Flight => "flight",
            TraceMode::Full => "full",
        }
    }

    /// Parses an `FA_TRACE` mode word.
    pub fn parse(v: &str) -> Option<TraceMode> {
        match v.trim() {
            "off" => Some(TraceMode::Off),
            "flight" => Some(TraceMode::Flight),
            "full" => Some(TraceMode::Full),
            _ => None,
        }
    }
}

/// Parses a full `FA_TRACE` setting: `off`, `flight`, or `full[:path]`.
///
/// # Errors
///
/// Returns a human-readable message on malformed values, for the loud
/// `sim::env` error path.
pub fn parse_trace_setting(v: &str) -> Result<(TraceMode, Option<String>), String> {
    let v = v.trim();
    let (word, path) = match v.split_once(':') {
        Some((w, p)) => (w, Some(p.to_string())),
        None => (v, None),
    };
    match (TraceMode::parse(word), &path) {
        (Some(m @ TraceMode::Full), _) => Ok((m, path)),
        (Some(m), None) => Ok((m, None)),
        (Some(m), Some(_)) => {
            Err(format!("a path is only meaningful with `full`, got {:?}", m.name()))
        }
        (None, _) => Err(format!("mode must be off|flight|full[:path], got {word:?}")),
    }
}

/// Per-component trace sizing. Lives inside `MemConfig`/`CoreConfig` so
/// the mode is plumbed by configuration, never read from the environment
/// inside the simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Recording mode.
    pub mode: TraceMode,
    /// Flight-recorder ring capacity per component.
    pub ring: usize,
    /// Retention cap per component in [`TraceMode::Full`]; the oldest
    /// events are dropped (and counted) beyond this.
    pub full_cap: usize,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig { mode: TraceMode::Off, ring: 128, full_cap: 1 << 20 }
    }
}

impl TraceConfig {
    /// A config with the given mode and default bounds.
    pub fn with_mode(mode: TraceMode) -> TraceConfig {
        TraceConfig { mode, ..TraceConfig::default() }
    }
}

/// How much consistency checking the simulator performs (`FA_CHECK`).
///
/// Like tracing, the collection is strictly passive: with the checker on,
/// cores and the memory system append data events to side logs that the
/// axiomatic checker consumes after quiescence; no simulated state ever
/// reads them, so results are bit-identical in every mode.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckMode {
    /// No data events collected, no end-of-run validation (default).
    #[default]
    Off,
    /// Collect per-access data events and validate the full execution
    /// against the x86-TSO + RMW-atomicity axioms at quiescence.
    Tso,
}

impl CheckMode {
    /// True when data-event collection and end-of-run checking are enabled.
    pub fn on(self) -> bool {
        self != CheckMode::Off
    }

    /// Lower-case name as accepted by `FA_CHECK`.
    pub fn name(self) -> &'static str {
        match self {
            CheckMode::Off => "off",
            CheckMode::Tso => "tso",
        }
    }

    /// Parses an `FA_CHECK` mode word.
    pub fn parse(v: &str) -> Option<CheckMode> {
        match v.trim() {
            "off" => Some(CheckMode::Off),
            "tso" => Some(CheckMode::Tso),
            _ => None,
        }
    }
}

/// Parses a full `FA_CHECK` setting: `off` or `tso`.
///
/// # Errors
///
/// Returns a human-readable message on malformed values, for the loud
/// `sim::env` error path.
pub fn parse_check_setting(v: &str) -> Result<CheckMode, String> {
    CheckMode::parse(v).ok_or_else(|| format!("mode must be off|tso, got {:?}", v.trim()))
}

/// Which memory consistency model the cores implement (`FA_MODEL`).
///
/// Under [`MemModel::Tso`] (the default) every access has TSO strength and
/// [`fa_isa::MemOrder`] annotations are semantically inert, so results are
/// bit-identical to builds that predate the annotations. Under
/// [`MemModel::Weak`] the frontend honours the annotations: relaxed loads
/// may reorder with older non-acquire loads, non-SC fences do not drain the
/// store buffer, and SC stores block younger loads until they drain. The
/// axiomatic checker and the litmus enumerator are parameterized by the
/// same value.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemModel {
    /// x86-TSO: total store order, annotations inert.
    #[default]
    Tso,
    /// ARM-like weak model: annotations select the ordering. The store
    /// buffer stays FIFO (W→W and R→W are always preserved); the model
    /// relaxes R→R for non-acquire loads and keeps the TSO W→R store-buffer
    /// relaxation unless an SC fence or SC store intervenes.
    Weak,
}

impl MemModel {
    /// Lower-case name as accepted by `FA_MODEL`.
    pub fn name(self) -> &'static str {
        match self {
            MemModel::Tso => "tso",
            MemModel::Weak => "weak",
        }
    }

    /// Parses an `FA_MODEL` word.
    pub fn parse(v: &str) -> Option<MemModel> {
        match v.trim() {
            "tso" => Some(MemModel::Tso),
            "weak" => Some(MemModel::Weak),
            _ => None,
        }
    }
}

/// Parses a full `FA_MODEL` setting: `tso` or `weak`.
///
/// # Errors
///
/// Returns a human-readable message on malformed values, for the loud
/// `sim::env` error path.
pub fn parse_model_setting(v: &str) -> Result<MemModel, String> {
    MemModel::parse(v).ok_or_else(|| format!("model must be tso|weak, got {:?}", v.trim()))
}

/// The write-id of initial memory (no store has written the word yet).
pub const WRITE_ID_INIT: u64 = 0;

/// Bits of a write-id reserved for the originating core's µop sequence
/// number. 48 bits of seq + 16 bits of core cover any realistic run.
const WRITE_ID_SEQ_BITS: u32 = 48;

/// Globally unique id of a committed store: `(core, µop seq)` packed into
/// one integer, with [`WRITE_ID_INIT`] = 0 reserved for initial memory
/// (the core field is stored off-by-one so core 0 is distinguishable).
pub fn write_id(core: u16, seq: u64) -> u64 {
    debug_assert!(seq < (1u64 << WRITE_ID_SEQ_BITS), "µop seq overflows the write-id");
    ((core as u64 + 1) << WRITE_ID_SEQ_BITS) | seq
}

/// Decodes a [`write_id`] back into `(core, seq)`; `None` for
/// [`WRITE_ID_INIT`].
pub fn write_id_parts(id: u64) -> Option<(u16, u64)> {
    let core = id >> WRITE_ID_SEQ_BITS;
    (core != 0).then(|| ((core - 1) as u16, id & ((1u64 << WRITE_ID_SEQ_BITS) - 1)))
}

/// One committed data access, logged by a core's commit path in program
/// order when [`CheckMode`] is on. The axiomatic checker reconstructs
/// `po` from the per-core event order, `rf` from the `writer` fields, and
/// `fr` from `rf` composed with the serialization order ([`SerEvent`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataEvent {
    /// A committed plain load.
    Load {
        /// µop sequence number (per-core, strictly increasing).
        seq: u64,
        /// Byte address read.
        addr: u64,
        /// Value the load bound.
        value: u64,
        /// [`write_id`] of the store the value came from
        /// ([`WRITE_ID_INIT`] = initial memory).
        writer: u64,
        /// Ordering annotation (inert under [`MemModel::Tso`]).
        ord: MemOrder,
    },
    /// A committed `load_lock` (the read half of an atomic RMW).
    LoadLock {
        /// µop sequence number.
        seq: u64,
        /// Byte address read.
        addr: u64,
        /// Value the load bound.
        value: u64,
        /// [`write_id`] of the providing store.
        writer: u64,
    },
    /// A committed plain store (logged at commit; it performs later, at
    /// store-buffer drain, where the matching [`SerEvent`] is logged).
    Store {
        /// µop sequence number — `write_id(core, seq)` names this write.
        seq: u64,
        /// Byte address written.
        addr: u64,
        /// Value written.
        value: u64,
        /// Ordering annotation (inert under [`MemModel::Tso`]).
        ord: MemOrder,
    },
    /// A committed `store_unlock` (the write half of an atomic RMW; its
    /// `load_lock` is the entry with seq `seq - 2`).
    StoreUnlock {
        /// µop sequence number.
        seq: u64,
        /// Byte address written.
        addr: u64,
        /// Value written.
        value: u64,
    },
    /// A committed fence that was actually *enforced* (omitted atomic
    /// fences under the free policies are not logged — the RMW events
    /// themselves carry the ordering obligation).
    Fence {
        /// µop sequence number.
        seq: u64,
        /// Ordering annotation: `SeqCst` for `MFENCE` and the enforced
        /// atomic fences; weaker values only arise from annotated
        /// standalone fences.
        ord: MemOrder,
    },
}

impl DataEvent {
    /// The µop sequence number.
    pub fn seq(&self) -> u64 {
        match *self {
            DataEvent::Load { seq, .. }
            | DataEvent::LoadLock { seq, .. }
            | DataEvent::Store { seq, .. }
            | DataEvent::StoreUnlock { seq, .. }
            | DataEvent::Fence { seq, .. } => seq,
        }
    }

    /// The accessed byte address (`None` for fences).
    pub fn addr(&self) -> Option<u64> {
        match *self {
            DataEvent::Load { addr, .. }
            | DataEvent::LoadLock { addr, .. }
            | DataEvent::Store { addr, .. }
            | DataEvent::StoreUnlock { addr, .. } => Some(addr),
            DataEvent::Fence { .. } => None,
        }
    }

    /// True for the two store variants.
    pub fn is_write(&self) -> bool {
        matches!(self, DataEvent::Store { .. } | DataEvent::StoreUnlock { .. })
    }

    /// True for the two load variants.
    pub fn is_read(&self) -> bool {
        matches!(self, DataEvent::Load { .. } | DataEvent::LoadLock { .. })
    }

    /// Effective ordering strength of the event under the weak model.
    ///
    /// `LoadLock`/`StoreUnlock` are pinned to `SeqCst` (the RMW line-lock
    /// protocol); plain accesses and fences report their annotation.
    pub fn ord(&self) -> MemOrder {
        match *self {
            DataEvent::Load { ord, .. }
            | DataEvent::Store { ord, .. }
            | DataEvent::Fence { ord, .. } => ord,
            DataEvent::LoadLock { .. } | DataEvent::StoreUnlock { .. } => MemOrder::SeqCst,
        }
    }
}

/// One performed store in the memory system's global write-serialization
/// order, logged at the instant the backing store is written (the store's
/// *perform* — the single serialization point every coherence transfer
/// funnels through). The per-address subsequence of these events is the
/// coherence order `co`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SerEvent {
    /// Byte address written.
    pub addr: u64,
    /// [`write_id`] of the performing store.
    pub writer: u64,
    /// Value written.
    pub value: u64,
    /// The directory's per-line write-epoch (incremented on every
    /// exclusive grant) at perform time — must be non-decreasing along
    /// each line's serialization order.
    pub epoch: u64,
    /// The line was lock-pinned at the moment of the write (true for
    /// every `store_unlock`: the RMW's atomicity window).
    pub under_lock: bool,
}

/// Number of fixed log₂ buckets in a [`Hist`].
pub const HIST_BUCKETS: usize = 32;

/// A latency histogram with fixed power-of-two bucket edges.
///
/// Bucket 0 holds the value 0; bucket `k` (k ≥ 1) holds values in
/// `[2^(k-1), 2^k)`; the last bucket is unbounded above. Because the
/// edges are fixed at compile time, merging is element-wise addition and
/// therefore associative and commutative — sweep workers can merge in
/// any order and produce bit-identical results.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hist {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (for exact means).
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Log₂-bucketed counts.
    pub buckets: [u64; HIST_BUCKETS],
}

/// The bucket index for a sample.
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Hist {
        Hist::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
        self.buckets[bucket_of(v)] += 1;
    }

    /// Element-wise merge; deterministic under any merge order.
    pub fn merge(&mut self, other: &Hist) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += *o;
        }
    }

    /// Arithmetic mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Hand-rolled JSON: `{"count":..,"sum":..,"max":..,"buckets":[..]}`
    /// with trailing zero buckets trimmed (bucket edges are fixed, so the
    /// index alone identifies the range).
    pub fn json(&self) -> String {
        let last = self.buckets.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
        json_object(&[
            ("count", self.count.to_string()),
            ("sum", self.sum.to_string()),
            ("max", self.max.to_string()),
            ("buckets", json_u64_array(&self.buckets[..last])),
        ])
    }
}

/// Hand-rolls a JSON object from `(key, rendered-value)` pairs — the one
/// serializer shared by every stats emitter ([`Hist::json`],
/// [`CpiStack::json`], the bench sweep's per-row blocks) so the emission
/// discipline lives in one place. Values are spliced verbatim: callers
/// pass already-rendered JSON (numbers, arrays, nested objects).
pub fn json_object(fields: &[(&str, String)]) -> String {
    let body: Vec<String> = fields.iter().map(|(k, v)| format!("\"{k}\":{v}")).collect();
    format!("{{{}}}", body.join(","))
}

/// Hand-rolls a JSON array of integers (helper for [`json_object`] values).
pub fn json_u64_array(vals: &[u64]) -> String {
    let body: Vec<String> = vals.iter().map(u64::to_string).collect();
    format!("[{}]", body.join(","))
}

/// Number of leaves in the cycle-accounting taxonomy.
pub const CPI_LEAVES: usize = 12;

/// One leaf of the top-down cycle-accounting taxonomy: every core-cycle
/// is attributed to *exactly one* of these by the core's per-cycle
/// classifier (see `fa-core`), so the per-core leaf sums are conserved —
/// `sum(leaves) == CoreStats::cycles` exactly, fast-forwarded spans
/// included.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CpiLeaf {
    /// At least one µop retired this cycle.
    Commit,
    /// ROB non-empty but nothing committed and no backend stall
    /// identified: the frontend/scheduler is the bottleneck.
    Issue,
    /// ROB empty: the core is starved for fetched work.
    FetchStarved,
    /// Fetch blocked because the ROB is full.
    RobFull,
    /// Fetch blocked on LSQ occupancy (or a full atomic queue).
    LsqFull,
    /// The oldest µop is a load waiting on a cache fill.
    LoadFill,
    /// Stalled draining the store buffer (baseline atomics wait for an
    /// empty SB before `load_lock` may issue or commit).
    SbDrain,
    /// A standalone fence at the ROB head waiting for the SB to drain.
    FenceDrain,
    /// The oldest µop is a `load_lock` waiting to acquire its cache-line
    /// lock (remote transfer or contention on the lock itself).
    AtomicLockWait,
    /// The oldest memory µop is stuck behind directory-entry allocation.
    DirAllocWait,
    /// The oldest memory µop is waiting while this core's interconnect
    /// links are backpressured.
    NocBackpressure,
    /// Asleep (MonitorWait) or quiescent — including fast-forwarded
    /// spans, credited to keep the accounting exact.
    Idle,
}

impl CpiLeaf {
    /// Every leaf, in stable emission order.
    pub const ALL: [CpiLeaf; CPI_LEAVES] = [
        CpiLeaf::Commit,
        CpiLeaf::Issue,
        CpiLeaf::FetchStarved,
        CpiLeaf::RobFull,
        CpiLeaf::LsqFull,
        CpiLeaf::LoadFill,
        CpiLeaf::SbDrain,
        CpiLeaf::FenceDrain,
        CpiLeaf::AtomicLockWait,
        CpiLeaf::DirAllocWait,
        CpiLeaf::NocBackpressure,
        CpiLeaf::Idle,
    ];

    /// Index into [`CpiStack::leaves`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name (JSON key, report row label).
    pub fn name(self) -> &'static str {
        match self {
            CpiLeaf::Commit => "commit",
            CpiLeaf::Issue => "issue",
            CpiLeaf::FetchStarved => "fetch_starved",
            CpiLeaf::RobFull => "rob_full",
            CpiLeaf::LsqFull => "lsq_full",
            CpiLeaf::LoadFill => "load_fill",
            CpiLeaf::SbDrain => "sb_drain",
            CpiLeaf::FenceDrain => "fence_drain",
            CpiLeaf::AtomicLockWait => "atomic_lock_wait",
            CpiLeaf::DirAllocWait => "dir_alloc_wait",
            CpiLeaf::NocBackpressure => "noc_backpressure",
            CpiLeaf::Idle => "idle",
        }
    }
}

/// A CPI stack: one cycle counter per taxonomy leaf. Same merge
/// discipline as [`Hist`] — element-wise addition, associative and
/// commutative, so sweep workers can merge in any order and produce
/// bit-identical totals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpiStack {
    /// Cycles per leaf, indexed by [`CpiLeaf::index`].
    pub leaves: [u64; CPI_LEAVES],
}

impl CpiStack {
    /// An empty stack.
    pub fn new() -> CpiStack {
        CpiStack::default()
    }

    /// Attributes one cycle to `leaf`.
    pub fn record(&mut self, leaf: CpiLeaf) {
        self.leaves[leaf.index()] += 1;
    }

    /// Attributes `n` cycles to `leaf` (fast-forward crediting).
    pub fn add(&mut self, leaf: CpiLeaf, n: u64) {
        self.leaves[leaf.index()] += n;
    }

    /// Cycles attributed to `leaf`.
    pub fn get(&self, leaf: CpiLeaf) -> u64 {
        self.leaves[leaf.index()]
    }

    /// Element-wise merge; deterministic under any merge order.
    pub fn merge(&mut self, other: &CpiStack) {
        for (a, b) in self.leaves.iter_mut().zip(other.leaves.iter()) {
            *a += *b;
        }
    }

    /// Total attributed cycles — the conservation invariant compares this
    /// against the core's cycle count.
    pub fn total(&self) -> u64 {
        self.leaves.iter().sum()
    }

    /// Hand-rolled JSON object keyed by leaf name, every leaf present
    /// (zero leaves included so rows from different runs diff cleanly).
    pub fn json(&self) -> String {
        let fields: Vec<(&str, String)> = CpiLeaf::ALL
            .iter()
            .map(|l| (l.name(), self.leaves[l.index()].to_string()))
            .collect();
        json_object(&fields)
    }
}

/// MESI state encoding for [`TraceEvent::Mesi`] (plus `MESI_NONE` for
/// not-present), kept as plain integers so this crate stays a leaf.
pub const MESI_I: u8 = 0;
/// Shared.
pub const MESI_S: u8 = 1;
/// Exclusive.
pub const MESI_E: u8 = 2;
/// Modified.
pub const MESI_M: u8 = 3;
/// Line not present (fills from / evictions to "nothing").
pub const MESI_NONE: u8 = 4;

/// Printable name for a MESI encoding.
pub fn mesi_name(s: u8) -> &'static str {
    match s {
        MESI_I => "I",
        MESI_S => "S",
        MESI_E => "E",
        MESI_M => "M",
        _ => "-",
    }
}

/// NoC message-kind encoding for [`TraceEvent::NocSend`]/[`NocDeliver`].
pub const NOC_TO_DIR: u8 = 0;
/// Directory → L1 coherence message.
pub const NOC_TO_L1: u8 = 1;
/// Data fill returning to a core.
pub const NOC_READ_DONE: u8 = 2;
/// Store-permission grant returning to a core.
pub const NOC_STORE_READY: u8 = 3;

/// Printable name for a NoC message-kind encoding.
pub fn noc_kind_name(k: u8) -> &'static str {
    match k {
        NOC_TO_DIR => "to_dir",
        NOC_TO_L1 => "to_l1",
        NOC_READ_DONE => "read_done",
        NOC_STORE_READY => "store_ready",
        _ => "?",
    }
}

/// One structured simulator event. Compact (`Copy`, integers only);
/// the component and time live in the enclosing [`TraceRecord`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// µop entered the ROB.
    UopDispatch {
        /// Global µop sequence number.
        seq: u64,
        /// Program counter.
        pc: u64,
    },
    /// µop left the scheduler for execution.
    UopIssue {
        /// Global µop sequence number.
        seq: u64,
        /// Program counter.
        pc: u64,
    },
    /// µop retired.
    UopCommit {
        /// Global µop sequence number.
        seq: u64,
        /// Program counter.
        pc: u64,
    },
    /// Pipeline flush from `seq` onward.
    Squash {
        /// First squashed µop.
        from_seq: u64,
        /// µops discarded.
        uops: u64,
    },
    /// `load_lock` issued to memory (`fwd` = satisfied by in-window
    /// forwarding instead of the cache); `drain` is the SB-drain wait the
    /// baseline policy paid, 0 under free atomics.
    AtomicLoadLock {
        /// µop sequence number.
        seq: u64,
        /// Byte address.
        addr: u64,
        /// SB-drain cycles paid before issue.
        drain: u64,
        /// Satisfied by store-to-load forwarding.
        fwd: bool,
    },
    /// `store_unlock` performed: the atomic's lock window closed after
    /// `exec` cycles (the paper's atomic execution latency).
    AtomicStoreUnlock {
        /// µop sequence number.
        seq: u64,
        /// Byte address.
        addr: u64,
        /// Cycles from `load_lock` issue to `store_unlock` perform.
        exec: u64,
    },
    /// Cache-line lock count rose (0→1 records the hold-window start).
    LockAcquire {
        /// Line address.
        line: u64,
        /// Nested lock count after acquisition.
        count: u32,
    },
    /// Cache-line lock count fell to 0; `held` is the hold duration.
    LockRelease {
        /// Line address.
        line: u64,
        /// Cycles the line stayed locked.
        held: u64,
    },
    /// An external coherence request parked behind a locked line.
    LockPark {
        /// Line address.
        line: u64,
    },
    /// MESI transition in a private cache ([`mesi_name`] encodings).
    Mesi {
        /// Line address.
        line: u64,
        /// State before ([`MESI_NONE`] = not present).
        from: u8,
        /// State after.
        to: u8,
    },
    /// A fill finally placed after stalling `waited` cycles with every
    /// candidate way locked.
    FillStall {
        /// Line address.
        line: u64,
        /// Cycles the fill waited.
        waited: u64,
    },
    /// Directory entry allocated.
    DirAlloc {
        /// Line address.
        line: u64,
    },
    /// Request parked behind a busy directory entry.
    DirPark {
        /// Line address.
        line: u64,
    },
    /// Starvation-rescue valve fired for this line's allocation.
    DirRescue {
        /// Line address.
        line: u64,
    },
    /// Directory entry evicted (back-invalidation begun).
    DirEvict {
        /// Line address.
        line: u64,
    },
    /// Message entered the interconnect.
    NocSend {
        /// [`noc_kind_name`] encoding.
        kind: u8,
        /// Source core (`u16::MAX` = directory).
        src: u16,
        /// Destination core (`u16::MAX` = directory).
        dst: u16,
    },
    /// Message left the interconnect; `lat` is its delivered latency.
    NocDeliver {
        /// [`noc_kind_name`] encoding.
        kind: u8,
        /// Destination core (`u16::MAX` = directory).
        dst: u16,
        /// Send-to-delivery cycles.
        lat: u64,
    },
}

impl TraceEvent {
    /// Short stable event name (Perfetto `name`, taxonomy key).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::UopDispatch { .. } => "uop.dispatch",
            TraceEvent::UopIssue { .. } => "uop.issue",
            TraceEvent::UopCommit { .. } => "uop.commit",
            TraceEvent::Squash { .. } => "squash",
            TraceEvent::AtomicLoadLock { .. } => "atomic.load_lock",
            TraceEvent::AtomicStoreUnlock { .. } => "atomic.store_unlock",
            TraceEvent::LockAcquire { .. } => "lock.acquire",
            TraceEvent::LockRelease { .. } => "lock.release",
            TraceEvent::LockPark { .. } => "lock.park",
            TraceEvent::Mesi { .. } => "mesi",
            TraceEvent::FillStall { .. } => "fill.stall",
            TraceEvent::DirAlloc { .. } => "dir.alloc",
            TraceEvent::DirPark { .. } => "dir.park",
            TraceEvent::DirRescue { .. } => "dir.rescue",
            TraceEvent::DirEvict { .. } => "dir.evict",
            TraceEvent::NocSend { .. } => "noc.send",
            TraceEvent::NocDeliver { .. } => "noc.deliver",
        }
    }

    /// For events that close a time window: `(duration)`, so the exporter
    /// can draw them as Perfetto duration slices instead of instants.
    pub fn duration(&self) -> Option<u64> {
        match *self {
            TraceEvent::AtomicStoreUnlock { exec, .. } => Some(exec),
            TraceEvent::LockRelease { held, .. } => Some(held),
            TraceEvent::FillStall { waited, .. } => Some(waited),
            TraceEvent::NocDeliver { lat, .. } => Some(lat),
            _ => None,
        }
    }

    /// Hand-rolled JSON object with this event's fields (Perfetto `args`).
    pub fn args_json(&self) -> String {
        match *self {
            TraceEvent::UopDispatch { seq, pc }
            | TraceEvent::UopIssue { seq, pc }
            | TraceEvent::UopCommit { seq, pc } => {
                format!("{{\"useq\":{seq},\"pc\":{pc}}}")
            }
            TraceEvent::Squash { from_seq, uops } => {
                format!("{{\"from_seq\":{from_seq},\"uops\":{uops}}}")
            }
            TraceEvent::AtomicLoadLock { seq, addr, drain, fwd } => format!(
                "{{\"useq\":{seq},\"addr\":{addr},\"drain\":{drain},\"fwd\":{fwd}}}"
            ),
            TraceEvent::AtomicStoreUnlock { seq, addr, exec } => {
                format!("{{\"useq\":{seq},\"addr\":{addr},\"exec\":{exec}}}")
            }
            TraceEvent::LockAcquire { line, count } => {
                format!("{{\"line\":{line},\"count\":{count}}}")
            }
            TraceEvent::LockRelease { line, held } => {
                format!("{{\"line\":{line},\"held\":{held}}}")
            }
            TraceEvent::LockPark { line }
            | TraceEvent::DirAlloc { line }
            | TraceEvent::DirPark { line }
            | TraceEvent::DirRescue { line }
            | TraceEvent::DirEvict { line } => format!("{{\"line\":{line}}}"),
            TraceEvent::Mesi { line, from, to } => format!(
                "{{\"line\":{line},\"from\":\"{}\",\"to\":\"{}\"}}",
                mesi_name(from),
                mesi_name(to)
            ),
            TraceEvent::FillStall { line, waited } => {
                format!("{{\"line\":{line},\"waited\":{waited}}}")
            }
            TraceEvent::NocSend { kind, src, dst } => format!(
                "{{\"kind\":\"{}\",\"src\":{src},\"dst\":{dst}}}",
                noc_kind_name(kind)
            ),
            TraceEvent::NocDeliver { kind, dst, lat } => format!(
                "{{\"kind\":\"{}\",\"dst\":{dst},\"lat\":{lat}}}",
                noc_kind_name(kind)
            ),
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceEvent::UopDispatch { seq, pc }
            | TraceEvent::UopIssue { seq, pc }
            | TraceEvent::UopCommit { seq, pc } => {
                write!(f, "{} useq={seq} pc={pc:#x}", self.kind())
            }
            TraceEvent::Squash { from_seq, uops } => {
                write!(f, "squash from useq={from_seq} ({uops} uops)")
            }
            TraceEvent::AtomicLoadLock { seq, addr, drain, fwd } => write!(
                f,
                "atomic.load_lock useq={seq} addr={addr:#x} drain={drain}{}",
                if fwd { " fwd" } else { "" }
            ),
            TraceEvent::AtomicStoreUnlock { seq, addr, exec } => {
                write!(f, "atomic.store_unlock useq={seq} addr={addr:#x} exec={exec}")
            }
            TraceEvent::LockAcquire { line, count } => {
                write!(f, "lock.acquire line={line:#x} count={count}")
            }
            TraceEvent::LockRelease { line, held } => {
                write!(f, "lock.release line={line:#x} held={held}")
            }
            TraceEvent::LockPark { line } => write!(f, "lock.park line={line:#x}"),
            TraceEvent::Mesi { line, from, to } => {
                write!(f, "mesi line={line:#x} {}->{}", mesi_name(from), mesi_name(to))
            }
            TraceEvent::FillStall { line, waited } => {
                write!(f, "fill.stall line={line:#x} waited={waited}")
            }
            TraceEvent::DirAlloc { line } => write!(f, "dir.alloc line={line:#x}"),
            TraceEvent::DirPark { line } => write!(f, "dir.park line={line:#x}"),
            TraceEvent::DirRescue { line } => write!(f, "dir.rescue line={line:#x}"),
            TraceEvent::DirEvict { line } => write!(f, "dir.evict line={line:#x}"),
            TraceEvent::NocSend { kind, src, dst } => {
                write!(f, "noc.send {} {src}->{dst}", noc_kind_name(kind))
            }
            TraceEvent::NocDeliver { kind, dst, lat } => {
                write!(f, "noc.deliver {} ->{dst} lat={lat}", noc_kind_name(kind))
            }
        }
    }
}

/// One recorded event with its deterministic `(cycle, seq)` position.
/// `seq` is per-component and strictly increasing, so records sort
/// totally and reproducibly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Simulated cycle of the event.
    pub cycle: u64,
    /// Per-component record sequence number.
    pub seq: u64,
    /// The event.
    pub ev: TraceEvent,
}

/// A bounded per-component event ring.
#[derive(Clone, Debug)]
pub struct TraceBuf {
    mode: TraceMode,
    ring: usize,
    full_cap: usize,
    next_seq: u64,
    buf: VecDeque<TraceRecord>,
    dropped: u64,
}

impl TraceBuf {
    /// A buffer sized by `cfg`.
    pub fn new(cfg: &TraceConfig) -> TraceBuf {
        TraceBuf {
            mode: cfg.mode,
            ring: cfg.ring.max(1),
            full_cap: cfg.full_cap.max(1),
            next_seq: 0,
            buf: VecDeque::new(),
            dropped: 0,
        }
    }

    /// True when events are being recorded at all. Callers may use this
    /// to skip building expensive event payloads; the events here are
    /// plain `Copy` structs, so calling [`TraceBuf::record`] directly is
    /// also fine.
    pub fn on(&self) -> bool {
        self.mode != TraceMode::Off
    }

    /// The recording mode.
    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    /// Records `ev` at `cycle`. No-op when the mode is `Off`.
    pub fn record(&mut self, cycle: u64, ev: TraceEvent) {
        let cap = match self.mode {
            TraceMode::Off => return,
            TraceMode::Flight => self.ring,
            TraceMode::Full => self.full_cap,
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.buf.len() == cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(TraceRecord { cycle, seq, ev });
    }

    /// The last `n` records, oldest first (non-destructive — crash
    /// snapshots take `&self`).
    pub fn tail(&self, n: usize) -> Vec<TraceRecord> {
        let skip = self.buf.len().saturating_sub(n);
        self.buf.iter().skip(skip).copied().collect()
    }

    /// All retained records, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.buf.iter().copied().collect()
    }

    /// Retained record count.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Records evicted from the ring since the start of the run.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// A flight-recorder entry: one [`TraceRecord`] tagged with the
/// component it came from (`core3`, `l1c0`, `dir`, `noc`, ...).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlightEntry {
    /// Component label.
    pub comp: String,
    /// Simulated cycle.
    pub cycle: u64,
    /// Per-component sequence number.
    pub seq: u64,
    /// The event.
    pub ev: TraceEvent,
}

impl fmt::Display for FlightEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {:>8} [{:>6}] {}", self.cycle, self.comp, self.ev)
    }
}

/// Hand-rolled JSON array for a flight-recorder tail.
pub fn flight_json(entries: &[FlightEntry]) -> String {
    let rows: Vec<String> = entries
        .iter()
        .map(|e| {
            format!(
                "{{\"comp\":\"{}\",\"cycle\":{},\"seq\":{},\"name\":\"{}\",\"args\":{}}}",
                e.comp,
                e.cycle,
                e.seq,
                e.ev.kind(),
                e.ev.args_json()
            )
        })
        .collect();
    format!("[{}]", rows.join(","))
}

/// Renders per-component record lists as Chrome-trace/Perfetto JSON
/// (one synthetic thread per component; duration events for closed time
/// windows, instants for everything else; `ts` is the simulated cycle).
pub fn chrome_trace(groups: &[(String, Vec<TraceRecord>)]) -> String {
    let mut evs: Vec<String> = Vec::new();
    evs.push("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"fa-sim\"}}".to_string());
    for (tid, (comp, _)) in groups.iter().enumerate() {
        evs.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"args\":{{\"name\":\"{comp}\"}}}}"
        ));
    }
    for (tid, (_, recs)) in groups.iter().enumerate() {
        for r in recs {
            let args = r.ev.args_json();
            // Splice the record seq into the args object for ordering.
            let args = format!("{{\"seq\":{},{}", r.seq, &args[1..]);
            match r.ev.duration() {
                Some(dur) => evs.push(format!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\"args\":{}}}",
                    r.ev.kind(),
                    r.cycle.saturating_sub(dur),
                    dur.max(1),
                    tid,
                    args
                )),
                None => evs.push(format!(
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":{},\"args\":{}}}",
                    r.ev.kind(),
                    r.cycle,
                    tid,
                    args
                )),
            }
        }
    }
    format!("{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ns\"}}\n", evs.join(",\n"))
}

/// Structurally validates Chrome-trace JSON without an external parser:
/// checks string-aware brace/bracket balance, the `traceEvents` header,
/// and returns the number of event objects.
///
/// # Errors
///
/// A human-readable description of the first structural problem.
pub fn validate_chrome_trace(s: &str) -> Result<usize, String> {
    let trimmed = s.trim_start();
    if !trimmed.starts_with("{\"traceEvents\":[") {
        return Err("missing {\"traceEvents\":[ header".to_string());
    }
    let mut stack: Vec<u8> = Vec::new();
    let mut in_str = false;
    let mut escaped = false;
    let mut events = 0usize;
    for c in s.chars() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => {
                // An object opening directly inside the top-level array is
                // one trace event.
                if stack == [b'{', b'['] {
                    events += 1;
                }
                stack.push(b'{');
            }
            '[' => stack.push(b'['),
            '}' if stack.pop() != Some(b'{') => {
                return Err("unbalanced '}'".to_string());
            }
            ']' if stack.pop() != Some(b'[') => {
                return Err("unbalanced ']'".to_string());
            }
            _ => {}
        }
    }
    if in_str {
        return Err("unterminated string".to_string());
    }
    if !stack.is_empty() {
        return Err(format!("{} unclosed scopes", stack.len()));
    }
    // Metadata events (process/thread names) are not simulator events.
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_bucket_edges_are_powers_of_two() {
        let mut h = Hist::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1 << 30, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count, 9);
        assert_eq!(h.max, u64::MAX);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2..3
        assert_eq!(h.buckets[3], 2); // 4..7
        assert_eq!(h.buckets[4], 1); // 8..15
        assert_eq!(h.buckets[HIST_BUCKETS - 1], 2); // >= 2^30
    }

    #[test]
    fn hist_merge_is_order_independent() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        for v in [1, 5, 9] {
            a.record(v);
        }
        for v in [2, 1000] {
            b.record(v);
        }
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count, 5);
    }

    #[test]
    fn hist_json_trims_trailing_zero_buckets() {
        let mut h = Hist::new();
        h.record(1);
        assert_eq!(h.json(), "{\"count\":1,\"sum\":1,\"max\":1,\"buckets\":[0,1]}");
        assert_eq!(Hist::new().json(), "{\"count\":0,\"sum\":0,\"max\":0,\"buckets\":[]}");
    }

    #[test]
    fn cpi_stack_merge_is_order_independent() {
        let mut a = CpiStack::new();
        a.record(CpiLeaf::Commit);
        a.add(CpiLeaf::Idle, 100);
        let mut b = CpiStack::new();
        b.record(CpiLeaf::FenceDrain);
        b.record(CpiLeaf::Commit);
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.total(), 103);
        assert_eq!(ab.get(CpiLeaf::Commit), 2);
    }

    #[test]
    fn cpi_stack_json_names_every_leaf() {
        let mut s = CpiStack::new();
        s.add(CpiLeaf::SbDrain, 7);
        let j = s.json();
        for leaf in CpiLeaf::ALL {
            assert!(j.contains(&format!("\"{}\":", leaf.name())), "missing {}", leaf.name());
        }
        assert!(j.contains("\"sb_drain\":7"));
        assert!(j.starts_with("{\"commit\":0,") && j.ends_with("\"idle\":0}"));
    }

    #[test]
    fn cpi_leaf_indices_match_emission_order() {
        for (i, leaf) in CpiLeaf::ALL.iter().enumerate() {
            assert_eq!(leaf.index(), i);
        }
    }

    #[test]
    fn json_object_splices_fields_verbatim() {
        assert_eq!(json_object(&[]), "{}");
        assert_eq!(
            json_object(&[("a", "1".to_string()), ("b", "[2,3]".to_string())]),
            "{\"a\":1,\"b\":[2,3]}"
        );
        assert_eq!(json_u64_array(&[]), "[]");
        assert_eq!(json_u64_array(&[1, 2]), "[1,2]");
    }

    #[test]
    fn ring_is_bounded_and_ordered() {
        let cfg = TraceConfig { mode: TraceMode::Flight, ring: 3, ..Default::default() };
        let mut t = TraceBuf::new(&cfg);
        for i in 0..10u64 {
            t.record(i, TraceEvent::DirAlloc { line: i });
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 7);
        let tail = t.tail(2);
        assert_eq!(tail.len(), 2);
        assert_eq!((tail[0].cycle, tail[0].seq), (8, 8));
        assert_eq!((tail[1].cycle, tail[1].seq), (9, 9));
    }

    #[test]
    fn off_mode_records_nothing() {
        let mut t = TraceBuf::new(&TraceConfig::default());
        assert!(!t.on());
        t.record(1, TraceEvent::DirAlloc { line: 0 });
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn trace_setting_parses() {
        assert_eq!(parse_trace_setting("off"), Ok((TraceMode::Off, None)));
        assert_eq!(parse_trace_setting(" flight "), Ok((TraceMode::Flight, None)));
        assert_eq!(parse_trace_setting("full"), Ok((TraceMode::Full, None)));
        assert_eq!(
            parse_trace_setting("full:/tmp/t.json"),
            Ok((TraceMode::Full, Some("/tmp/t.json".to_string())))
        );
        assert!(parse_trace_setting("flight:/x").is_err());
        assert!(parse_trace_setting("verbose").is_err());
    }

    #[test]
    fn check_setting_parses() {
        assert_eq!(parse_check_setting("off"), Ok(CheckMode::Off));
        assert_eq!(parse_check_setting(" tso "), Ok(CheckMode::Tso));
        assert!(parse_check_setting("sc").is_err());
        assert!(CheckMode::Tso.on());
        assert!(!CheckMode::Off.on());
        assert_eq!(CheckMode::default(), CheckMode::Off);
        assert_eq!(CheckMode::Tso.name(), "tso");
    }

    #[test]
    fn write_ids_are_unique_and_decodable() {
        assert_eq!(write_id_parts(WRITE_ID_INIT), None);
        assert_eq!(write_id_parts(write_id(0, 0)), Some((0, 0)));
        assert_eq!(write_id_parts(write_id(7, 123_456)), Some((7, 123_456)));
        assert_ne!(write_id(0, 0), WRITE_ID_INIT);
        assert_ne!(write_id(0, 1), write_id(1, 0));
    }

    #[test]
    fn data_event_accessors() {
        let ld = DataEvent::Load { seq: 4, addr: 64, value: 9, writer: write_id(1, 2), ord: MemOrder::Relaxed };
        let st = DataEvent::Store { seq: 5, addr: 64, value: 10, ord: MemOrder::Relaxed };
        let fence = DataEvent::Fence { seq: 6, ord: MemOrder::SeqCst };
        assert!(ld.is_read() && !ld.is_write());
        assert!(st.is_write() && !st.is_read());
        assert_eq!((fence.seq(), fence.addr()), (6, None));
        assert_eq!((st.seq(), st.addr()), (5, Some(64)));
        let su = DataEvent::StoreUnlock { seq: 7, addr: 64, value: 11 };
        let ll = DataEvent::LoadLock { seq: 5, addr: 64, value: 10, writer: WRITE_ID_INIT };
        assert!(su.is_write() && ll.is_read());
    }

    #[test]
    fn chrome_trace_round_trips_validation() {
        let recs = vec![
            TraceRecord { cycle: 5, seq: 0, ev: TraceEvent::LockAcquire { line: 64, count: 1 } },
            TraceRecord { cycle: 9, seq: 1, ev: TraceEvent::LockRelease { line: 64, held: 4 } },
        ];
        let json = chrome_trace(&[("l1c0".to_string(), recs)]);
        let n = validate_chrome_trace(&json).expect("valid trace json");
        assert_eq!(n, 2 + 2); // 2 metadata + 2 events
        assert!(json.contains("\"name\":\"lock.acquire\""));
        assert!(json.contains("\"ph\":\"X\"")); // release renders as a slice
        assert!(validate_chrome_trace("{\"traceEvents\":[}").is_err());
        assert!(validate_chrome_trace("[]").is_err());
    }

    #[test]
    fn flight_entries_render_and_dump() {
        let e = FlightEntry {
            comp: "core0".to_string(),
            cycle: 42,
            seq: 7,
            ev: TraceEvent::AtomicStoreUnlock { seq: 3, addr: 128, exec: 11 },
        };
        assert!(format!("{e}").contains("atomic.store_unlock useq=3"));
        let j = flight_json(std::slice::from_ref(&e));
        assert!(j.starts_with("[{\"comp\":\"core0\",\"cycle\":42,"));
        assert!(j.contains("\"name\":\"atomic.store_unlock\""));
    }
}
