//! The 26-application suite (§5.1): SPLASH-3, PARSEC-3, and the
//! write-intensive benchmarks of Gogte et al. / Kolli et al.
//!
//! Each entry is a synthetic proxy assembled from the [`crate::kernels`]
//! templates, tuned to the application's atomics-per-kilo-instruction
//! profile (Figure 12), its synchronization idiom (§5.2: canneal is purely
//! atomic, fluidanimate uses millions of uncontended locks, barnes and
//! radiosity lock with strong temporal locality, the write-intensive suite
//! follows the §5.5 hotspot descriptions) and its store-buffer pressure
//! (Figure 1: fft/radix/ocean pay hundreds of cycles per fenced atomic).

use crate::kernels::{
    emit_app_loop, emit_atomic_swap_loop, emit_queue_loop, emit_swap_loop, emit_think,
    emit_tpcc_loop, emit_tree_update_loop, AppSpec, ComputeInner, LockChoice, LockKind, LockPart,
    DATA_BASE,
};
use crate::runtime::{emit_prologue, WaitKind};
use crate::{Workload, WorkloadParams, WorkloadSpec, WORKLOAD_MEM_BYTES};
use fa_isa::interp::GuestMem;
use fa_isa::{Kasm, Program};

fn scaled(base: i64, scale: f64) -> i64 {
    ((base as f64 * scale).round() as i64).max(2)
}

fn build_programs(
    params: &WorkloadParams,
    body: impl Fn(&mut Kasm, usize),
) -> Vec<Program> {
    (0..params.cores)
        .map(|tid| {
            let mut k = Kasm::new();
            emit_prologue(&mut k, tid, params.seed);
            body(&mut k, tid);
            k.halt();
            k.finish().expect("suite kernels are valid by construction")
        })
        .collect()
}

fn plain_mem() -> GuestMem {
    GuestMem::new(WORKLOAD_MEM_BYTES)
}

/// Memory with data records initialized to distinct values (swap-style
/// kernels need a populated array).
fn records_mem(n: u64, stride: u64, seed: u64) -> GuestMem {
    let mut m = plain_mem();
    let mut x = seed | 1;
    for i in 0..n {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        m.store(DATA_BASE as u64 + i * stride, x.wrapping_mul(0x2545_F491_4F6C_DD1D));
    }
    m
}

fn app(
    name: &'static str,
    ai: bool,
    params: &WorkloadParams,
    spec: AppSpec,
) -> Workload {
    let n = params.cores;
    let programs = build_programs(params, |k, _| emit_app_loop(k, n, &spec));
    Workload { name, atomic_intensive: ai, programs, mem: plain_mem() }
}

macro_rules! suite_entry {
    ($fn_name:ident, $name:literal, $ai:literal, $body:expr) => {
        fn $fn_name(params: &WorkloadParams) -> Workload {
            #[allow(clippy::redundant_closure_call)]
            ($body)(params)
        }
    };
}

// ---------------------------------------------------------------- SPLASH-3

suite_entry!(watersp, "watersp", false, |p: &WorkloadParams| {
    app(
        "watersp",
        false,
        p,
        AppSpec::compute_only(
            scaled(40, p.scale),
            ComputeInner { iters: 60, loads: 2, stores: 1, alu: 6, stride: 8, region_pow2: 0x8000, shared: false },
        ),
    )
});

suite_entry!(waternsq, "waternsq", false, |p: &WorkloadParams| {
    app(
        "waternsq",
        false,
        p,
        AppSpec {
            outer_iters: scaled(40, p.scale),
            compute: Some(ComputeInner { iters: 50, loads: 2, stores: 1, alu: 5, stride: 8, region_pow2: 0x8000, shared: false }),
            locks: None,
            barrier_every: Some(8),
            wait: WaitKind::Mwait,
        },
    )
});

suite_entry!(fft, "fft", false, |p: &WorkloadParams| {
    app(
        "fft",
        false,
        p,
        AppSpec {
            outer_iters: scaled(25, p.scale),
            compute: Some(ComputeInner { iters: 200, loads: 1, stores: 4, alu: 2, stride: 576, region_pow2: 0x10000, shared: false }),
            locks: Some(LockPart { locks_pow2: 16, kind: LockKind::Tas, choice: LockChoice::Random, cs_work: 1, burst: 2 }),
            barrier_every: Some(4),
            wait: WaitKind::Mwait,
        },
    )
});

suite_entry!(raytrace, "raytrace", false, |p: &WorkloadParams| {
    app(
        "raytrace",
        false,
        p,
        AppSpec {
            outer_iters: scaled(40, p.scale),
            compute: Some(ComputeInner { iters: 200, loads: 3, stores: 0, alu: 6, stride: 64, region_pow2: 0x8000, shared: false }),
            locks: Some(LockPart { locks_pow2: 64, kind: LockKind::Ticket, choice: LockChoice::Sticky, cs_work: 2, burst: 2 }),
            barrier_every: None,
            wait: WaitKind::Mwait,
        },
    )
});

suite_entry!(lu_ncb, "lu_ncb", false, |p: &WorkloadParams| {
    app(
        "lu_ncb",
        false,
        p,
        AppSpec {
            outer_iters: scaled(30, p.scale),
            compute: Some(ComputeInner { iters: 180, loads: 3, stores: 1, alu: 5, stride: 8, region_pow2: 0x10000, shared: true }),
            locks: None,
            barrier_every: Some(2),
            wait: WaitKind::Mwait,
        },
    )
});

suite_entry!(lu_cb, "lu_cb", false, |p: &WorkloadParams| {
    app(
        "lu_cb",
        false,
        p,
        AppSpec {
            outer_iters: scaled(30, p.scale),
            compute: Some(ComputeInner { iters: 180, loads: 3, stores: 1, alu: 5, stride: 8, region_pow2: 0x10000, shared: false }),
            locks: None,
            barrier_every: Some(2),
            wait: WaitKind::Mwait,
        },
    )
});

suite_entry!(radix, "radix", false, |p: &WorkloadParams| {
    app(
        "radix",
        false,
        p,
        AppSpec {
            outer_iters: scaled(25, p.scale),
            compute: Some(ComputeInner { iters: 150, loads: 1, stores: 5, alu: 1, stride: 520, region_pow2: 0x10000, shared: true }),
            locks: None,
            barrier_every: Some(2),
            wait: WaitKind::Mwait,
        },
    )
});

suite_entry!(ocean_ncp, "ocean_ncp", false, |p: &WorkloadParams| {
    app(
        "ocean_ncp",
        false,
        p,
        AppSpec {
            outer_iters: scaled(30, p.scale),
            compute: Some(ComputeInner { iters: 160, loads: 2, stores: 2, alu: 3, stride: 640, region_pow2: 0x20000, shared: true }),
            locks: None,
            barrier_every: Some(2),
            wait: WaitKind::Mwait,
        },
    )
});

suite_entry!(ocean_cp, "ocean_cp", false, |p: &WorkloadParams| {
    app(
        "ocean_cp",
        false,
        p,
        AppSpec {
            outer_iters: scaled(30, p.scale),
            compute: Some(ComputeInner { iters: 160, loads: 2, stores: 2, alu: 3, stride: 320, region_pow2: 0x20000, shared: false }),
            locks: None,
            barrier_every: Some(2),
            wait: WaitKind::Mwait,
        },
    )
});

suite_entry!(fmm, "fmm", false, |p: &WorkloadParams| {
    app(
        "fmm",
        false,
        p,
        AppSpec {
            outer_iters: scaled(40, p.scale),
            compute: Some(ComputeInner { iters: 250, loads: 2, stores: 1, alu: 4, stride: 8, region_pow2: 0x8000, shared: false }),
            locks: Some(LockPart { locks_pow2: 32, kind: LockKind::Ticket, choice: LockChoice::Sticky, cs_work: 3, burst: 3 }),
            barrier_every: None,
            wait: WaitKind::Mwait,
        },
    )
});

suite_entry!(cholesky, "cholesky", false, |p: &WorkloadParams| {
    app(
        "cholesky",
        false,
        p,
        AppSpec {
            outer_iters: scaled(40, p.scale),
            compute: Some(ComputeInner { iters: 150, loads: 3, stores: 1, alu: 5, stride: 8, region_pow2: 0x8000, shared: false }),
            locks: Some(LockPart { locks_pow2: 16, kind: LockKind::Ticket, choice: LockChoice::Sticky, cs_work: 2, burst: 2 }),
            barrier_every: Some(8),
            wait: WaitKind::Mwait,
        },
    )
});

suite_entry!(barnes, "barnes", true, |p: &WorkloadParams| {
    app(
        "barnes",
        true,
        p,
        AppSpec {
            outer_iters: scaled(80, p.scale),
            compute: Some(ComputeInner { iters: 80, loads: 2, stores: 1, alu: 5, stride: 8, region_pow2: 0x8000, shared: false }),
            locks: Some(LockPart { locks_pow2: 64, kind: LockKind::Ticket, choice: LockChoice::Sticky, cs_work: 2, burst: 4 }),
            barrier_every: None,
            wait: WaitKind::Mwait,
        },
    )
});

suite_entry!(volrend, "volrend", true, |p: &WorkloadParams| {
    app(
        "volrend",
        true,
        p,
        AppSpec {
            outer_iters: scaled(100, p.scale),
            compute: Some(ComputeInner { iters: 60, loads: 2, stores: 1, alu: 3, stride: 8, region_pow2: 0x4000, shared: false }),
            locks: Some(LockPart { locks_pow2: 128, kind: LockKind::Ticket, choice: LockChoice::Random, cs_work: 2, burst: 2 }),
            barrier_every: Some(25),
            wait: WaitKind::Mwait,
        },
    )
});

suite_entry!(radiosity, "radiosity", true, |p: &WorkloadParams| {
    app(
        "radiosity",
        true,
        p,
        AppSpec {
            outer_iters: scaled(100, p.scale),
            compute: Some(ComputeInner { iters: 90, loads: 2, stores: 1, alu: 3, stride: 8, region_pow2: 0x4000, shared: false }),
            locks: Some(LockPart { locks_pow2: 32, kind: LockKind::Ticket, choice: LockChoice::Sticky, cs_work: 3, burst: 3 }),
            barrier_every: None,
            wait: WaitKind::Mwait,
        },
    )
});

// ---------------------------------------------------------------- PARSEC-3

suite_entry!(blackscholes, "blackscholes", false, |p: &WorkloadParams| {
    app(
        "blackscholes",
        false,
        p,
        AppSpec::compute_only(
            scaled(40, p.scale),
            ComputeInner { iters: 60, loads: 2, stores: 1, alu: 8, stride: 8, region_pow2: 0x8000, shared: false },
        ),
    )
});

suite_entry!(freqmine, "freqmine", false, |p: &WorkloadParams| {
    app(
        "freqmine",
        false,
        p,
        AppSpec {
            outer_iters: scaled(50, p.scale),
            compute: Some(ComputeInner { iters: 250, loads: 2, stores: 1, alu: 4, stride: 8, region_pow2: 0x8000, shared: false }),
            locks: Some(LockPart { locks_pow2: 64, kind: LockKind::Tas, choice: LockChoice::Random, cs_work: 2, burst: 2 }),
            barrier_every: None,
            wait: WaitKind::Mwait,
        },
    )
});

suite_entry!(facesim, "facesim", false, |p: &WorkloadParams| {
    app(
        "facesim",
        false,
        p,
        AppSpec {
            outer_iters: scaled(50, p.scale),
            compute: Some(ComputeInner { iters: 120, loads: 2, stores: 3, alu: 3, stride: 256, region_pow2: 0x8000, shared: false }),
            locks: Some(LockPart { locks_pow2: 32, kind: LockKind::Tas, choice: LockChoice::Random, cs_work: 4, burst: 1 }),
            barrier_every: Some(16),
            wait: WaitKind::Mwait,
        },
    )
});

suite_entry!(swaptions, "swaptions", false, |p: &WorkloadParams| {
    app(
        "swaptions",
        false,
        p,
        AppSpec::compute_only(
            scaled(30, p.scale),
            ComputeInner { iters: 300, loads: 2, stores: 1, alu: 10, stride: 8, region_pow2: 0x8000, shared: false },
        ),
    )
});

suite_entry!(fluidanimate, "fluidanimate", true, |p: &WorkloadParams| {
    app(
        "fluidanimate",
        true,
        p,
        AppSpec {
            outer_iters: scaled(150, p.scale),
            compute: Some(ComputeInner { iters: 30, loads: 1, stores: 1, alu: 2, stride: 8, region_pow2: 0x2000, shared: false }),
            locks: Some(LockPart { locks_pow2: 64, kind: LockKind::Tas, choice: LockChoice::OwnMostly, cs_work: 1, burst: 3 }),
            barrier_every: Some(50),
            wait: WaitKind::Mwait,
        },
    )
});

suite_entry!(canneal, "canneal", true, |p: &WorkloadParams| {
    let iters = scaled(400, p.scale);
    let programs = build_programs(p, |k, _| {
        emit_atomic_swap_loop(k, iters, 4096, 30);
        k.fence();
    });
    Workload {
        name: "canneal",
        atomic_intensive: true,
        programs,
        mem: records_mem(4096, 8, p.seed),
    }
});

// ----------------------------------------------------- write-intensive

suite_entry!(tatp, "TATP", true, |p: &WorkloadParams| {
    app(
        "TATP",
        true,
        p,
        AppSpec {
            outer_iters: scaled(300, p.scale),
            compute: Some(ComputeInner { iters: 25, loads: 1, stores: 0, alu: 2, stride: 8, region_pow2: 0x2000, shared: false }),
            locks: Some(LockPart { locks_pow2: 256, kind: LockKind::Tas, choice: LockChoice::Random, cs_work: 2, burst: 1 }),
            barrier_every: None,
            wait: WaitKind::Mwait,
        },
    )
});

suite_entry!(pc, "PC", true, |p: &WorkloadParams| {
    app(
        "PC",
        true,
        p,
        AppSpec {
            // Iterations longer than the ROB (352 µops) keep consecutive
            // iterations' RMWs from overlapping in flight; the paper's PC
            // sees only a single watchdog timeout for the same reason.
            outer_iters: scaled(220, p.scale),
            compute: Some(ComputeInner { iters: 35, loads: 1, stores: 0, alu: 2, stride: 8, region_pow2: 0x2000, shared: false }),
            locks: Some(LockPart { locks_pow2: 8, kind: LockKind::Tas, choice: LockChoice::Random, cs_work: 4, burst: 1 }),
            barrier_every: None,
            wait: WaitKind::Mwait,
        },
    )
});

suite_entry!(tpcc, "TPCC", true, |p: &WorkloadParams| {
    let iters = scaled(100, p.scale);
    let programs = build_programs(p, move |k, _| {
        emit_tpcc_loop(k, iters, 128, 800, WaitKind::Mwait);
        k.fence();
    });
    Workload { name: "TPCC", atomic_intensive: true, programs, mem: plain_mem() }
});

suite_entry!(as_bench, "AS", true, |p: &WorkloadParams| {
    let iters = scaled(250, p.scale);
    let programs = build_programs(p, move |k, _| {
        emit_swap_loop(k, iters, 64, 150, WaitKind::Mwait);
        k.fence();
    });
    Workload {
        name: "AS",
        atomic_intensive: true,
        programs,
        mem: records_mem(64, 64, p.seed),
    }
});

suite_entry!(cq, "CQ", true, |p: &WorkloadParams| {
    let iters = scaled(250, p.scale);
    let programs = build_programs(p, move |k, _| {
        emit_queue_loop(k, iters, 64, 30);
        k.fence();
    });
    Workload { name: "CQ", atomic_intensive: true, programs, mem: plain_mem() }
});

suite_entry!(rbt, "RBT", true, |p: &WorkloadParams| {
    let iters = scaled(150, p.scale);
    let programs = build_programs(p, move |k, _| {
        emit_tree_update_loop(k, iters, 8, 250, WaitKind::Mwait);
        k.fence();
        // A short cool-down compute tail keeps the last unlocker busy.
        emit_think(k, 50);
    });
    Workload { name: "RBT", atomic_intensive: true, programs, mem: plain_mem() }
});

/// The full suite in the paper's Figure-1 presentation order.
pub fn all() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec::new("watersp", false, watersp),
        WorkloadSpec::new("blackscholes", false, blackscholes),
        WorkloadSpec::new("waternsq", false, waternsq),
        WorkloadSpec::new("freqmine", false, freqmine),
        WorkloadSpec::new("facesim", false, facesim),
        WorkloadSpec::new("fft", false, fft),
        WorkloadSpec::new("raytrace", false, raytrace),
        WorkloadSpec::new("lu_ncb", false, lu_ncb),
        WorkloadSpec::new("lu_cb", false, lu_cb),
        WorkloadSpec::new("radix", false, radix),
        WorkloadSpec::new("swaptions", false, swaptions),
        WorkloadSpec::new("ocean_ncp", false, ocean_ncp),
        WorkloadSpec::new("ocean_cp", false, ocean_cp),
        WorkloadSpec::new("fmm", false, fmm),
        WorkloadSpec::new("cholesky", false, cholesky),
        WorkloadSpec::new("TATP", true, tatp),
        WorkloadSpec::new("PC", true, pc),
        WorkloadSpec::new("TPCC", true, tpcc),
        WorkloadSpec::new("AS", true, as_bench),
        WorkloadSpec::new("CQ", true, cq),
        WorkloadSpec::new("barnes", true, barnes),
        WorkloadSpec::new("volrend", true, volrend),
        WorkloadSpec::new("radiosity", true, radiosity),
        WorkloadSpec::new("fluidanimate", true, fluidanimate),
        WorkloadSpec::new("RBT", true, rbt),
        WorkloadSpec::new("canneal", true, canneal),
    ]
}

/// Looks a workload up by its paper name (case-sensitive).
pub fn by_name(name: &str) -> Option<WorkloadSpec> {
    all().into_iter().find(|s| s.name == name)
}

/// Only the atomic-intensive subset (§5.2).
pub fn atomic_intensive() -> Vec<WorkloadSpec> {
    all().into_iter().filter(|s| s.atomic_intensive).collect()
}

/// Every workload name, in the paper's presentation order — the sweep
/// engine's cell-enumeration axis.
pub fn names() -> Vec<&'static str> {
    all().iter().map(|s| s.name).collect()
}

/// A workload selection named something the suite does not contain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownWorkload {
    /// The name that failed to resolve.
    pub name: String,
}

impl std::fmt::Display for UnknownWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown workload {:?}; the suite contains: {}",
            self.name,
            names().join(", ")
        )
    }
}

impl std::error::Error for UnknownWorkload {}

/// Resolves an explicit selection in the order given, erroring on the
/// first unknown name. Sweeps use this instead of silent filtering so a
/// typo fails the cell enumeration loudly rather than shrinking the grid.
///
/// # Errors
///
/// [`UnknownWorkload`] naming the first selection the suite lacks.
pub fn select(selection: &[&str]) -> Result<Vec<WorkloadSpec>, UnknownWorkload> {
    selection
        .iter()
        .map(|&name| by_name(name).ok_or_else(|| UnknownWorkload { name: name.to_string() }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_isa::interp::McInterp;

    #[test]
    fn suite_has_26_entries_11_atomic_intensive() {
        let s = all();
        assert_eq!(s.len(), 26);
        assert_eq!(s.iter().filter(|w| w.atomic_intensive).count(), 11);
        assert!(by_name("canneal").is_some());
        assert!(by_name("nonesuch").is_none());
    }

    #[test]
    fn every_workload_builds_and_completes_functionally() {
        // Functional smoke test under the SC golden interpreter at a small
        // scale: every kernel must terminate.
        let params = WorkloadParams { cores: 3, scale: 0.08, seed: 9 };
        for spec in all() {
            let w = spec.build(&params);
            assert_eq!(w.programs.len(), 3, "{}", w.name);
            let mut m = McInterp::new(w.programs, w.mem.size(), 17);
            *m.mem_mut() = w.mem;
            m.run(80_000_000).unwrap_or_else(|e| panic!("{} did not finish: {e}", spec.name));
        }
    }

    #[test]
    fn names_match_paper_order_prefix() {
        let names: Vec<&str> = all().iter().map(|s| s.name).collect();
        assert_eq!(&names[..5], &["watersp", "blackscholes", "waternsq", "freqmine", "facesim"]);
        assert_eq!(names[25], "canneal");
        assert_eq!(super::names(), names);
    }

    #[test]
    fn select_resolves_in_order_and_rejects_unknowns() {
        let picked = select(&["canneal", "fft"]).expect("both exist");
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0].name, "canneal");
        assert_eq!(picked[1].name, "fft");
        let err = select(&["fft", "nonesuch"]).expect_err("typo must fail loudly");
        assert_eq!(err.name, "nonesuch");
        assert!(err.to_string().contains("canneal"), "error lists valid names");
    }
}
