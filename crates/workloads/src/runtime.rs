//! Guest-side synchronization runtime: spinlocks, ticket locks, a
//! sense-reversing barrier, and an inline xorshift PRNG.
//!
//! # Register conventions
//!
//! Emitters reserve `R20`–`R27`; workload compute code must keep its state
//! in `R1`–`R19`:
//!
//! | register | role |
//! |---|---|
//! | `R20`–`R23` | emitter scratch (clobbered) |
//! | `R24` | PRNG state |
//! | `R25` | thread id |
//! | `R26` | barrier sense |

use fa_isa::{Kasm, Reg};

/// Emitter scratch registers.
pub const RT0: Reg = Reg::R20;
/// Emitter scratch.
pub const RT1: Reg = Reg::R21;
/// Emitter scratch.
pub const RT2: Reg = Reg::R22;
/// Emitter scratch.
pub const RT3: Reg = Reg::R23;
/// PRNG state register.
pub const RNG: Reg = Reg::R24;
/// Thread-id register.
pub const TID: Reg = Reg::R25;
/// Barrier sense register.
pub const SENSE: Reg = Reg::R26;

/// Emits the standard prologue: thread id, PRNG seed, barrier sense.
pub fn emit_prologue(k: &mut Kasm, tid: usize, seed: u64) {
    k.li(TID, tid as i64);
    k.li(RNG, (seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (tid as u64 + 1)) as i64 | 1);
    k.li(SENSE, 0);
}

/// Emits `dst = next_random()` (xorshift64; clobbers nothing else).
pub fn emit_rand(k: &mut Kasm, dst: Reg) {
    debug_assert!(dst != RNG);
    k.shr(dst, RNG, 12);
    k.xor(RNG, RNG, dst);
    k.shl(dst, RNG, 25);
    k.xor(RNG, RNG, dst);
    k.shr(dst, RNG, 27);
    k.xor(RNG, RNG, dst);
    k.mov(dst, RNG);
}

/// Emits `dst = next_random() & (pow2 - 1)`.
///
/// # Panics
///
/// Panics unless `pow2` is a power of two.
pub fn emit_rand_pow2(k: &mut Kasm, dst: Reg, pow2: i64) {
    assert!(pow2 > 0 && (pow2 & (pow2 - 1)) == 0, "range must be a power of two");
    emit_rand(k, dst);
    k.and(dst, dst, pow2 - 1);
}

/// How a lock waiter burns time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitKind {
    /// PAUSE-spin (short critical sections).
    Spin,
    /// MonitorWait-sleep (long waits, e.g. barriers) — produces the sleep
    /// cycles of Figure 14.
    Mwait,
}

/// Emits a test-and-set spinlock acquire on `[lock]`.
///
/// Test-and-test-and-set with PAUSE or MWAIT backoff; clobbers `RT0`.
pub fn emit_tas_acquire(k: &mut Kasm, lock: Reg, wait: WaitKind) {
    let acquired = k.new_label();
    let try_it = k.here_label();
    k.test_set(RT0, lock, 0);
    k.beq_imm(RT0, 0, acquired);
    let spin = k.here_label();
    match wait {
        WaitKind::Spin => {
            k.pause();
        }
        WaitKind::Mwait => {
            k.monitor_wait(lock, 0);
        }
    }
    k.ld(RT0, lock, 0);
    k.bne_imm(RT0, 0, spin);
    k.jump(try_it);
    k.bind(acquired);
}

/// Emits a spinlock release on `[lock]` (plain store; TSO suffices).
pub fn emit_release(k: &mut Kasm, lock: Reg) {
    k.st(Reg::R0, lock, 0);
}

/// Emits a ticket-lock acquire. Layout: `[lock]` = next ticket,
/// `[lock+8]` = now serving. Clobbers `RT0`, `RT1`, `RT2`.
pub fn emit_ticket_acquire(k: &mut Kasm, lock: Reg, wait: WaitKind) {
    k.li(RT1, 1);
    k.fetch_add(RT0, lock, 0, RT1); // my ticket
    let done = k.new_label();
    let spin = k.here_label();
    k.ld(RT2, lock, 8);
    k.beq(RT2, RT0, done);
    match wait {
        WaitKind::Spin => {
            k.pause();
        }
        WaitKind::Mwait => {
            k.monitor_wait(lock, 8);
        }
    }
    k.jump(spin);
    k.bind(done);
}

/// Emits a ticket-lock release (serving += 1). Clobbers `RT0`.
pub fn emit_ticket_release(k: &mut Kasm, lock: Reg) {
    k.ld(RT0, lock, 8);
    k.addi(RT0, RT0, 1);
    k.st(RT0, lock, 8);
}

/// Emits a sense-reversing central barrier for `nthreads` threads.
///
/// Layout: `[bar]` = release flag, `[bar+8]` = arrival count. Uses
/// `SENSE`; clobbers `RT0`–`RT3`.
pub fn emit_barrier(k: &mut Kasm, bar: Reg, nthreads: usize, wait: WaitKind) {
    // sense = 1 - sense
    k.li(RT0, 1);
    k.sub(SENSE, RT0, SENSE);
    // arrive
    k.fetch_add(RT1, bar, 8, RT0);
    let not_last = k.new_label();
    let done = k.new_label();
    k.bne_imm(RT1, (nthreads - 1) as i64, not_last);
    // Last arrival: full ordering before releasing everyone — the one real
    // MFENCE per barrier episode that no atomic policy may elide
    // (Table 2's residual, non-omittable fences).
    k.fence();
    k.st(Reg::R0, bar, 8);
    k.st(SENSE, bar, 0);
    k.jump(done);
    k.bind(not_last);
    let spin = k.here_label();
    k.ld(RT2, bar, 0);
    k.beq(RT2, SENSE, done);
    match wait {
        WaitKind::Spin => {
            k.pause();
        }
        WaitKind::Mwait => {
            k.monitor_wait(bar, 0);
        }
    }
    k.jump(spin);
    k.bind(done);
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_isa::interp::McInterp;
    use fa_isa::Program;

    /// Builds `n` thread programs with `body(k, tid)` and runs them under
    /// the SC golden interpreter.
    fn run_mc(n: usize, body: impl Fn(&mut Kasm, usize)) -> McInterp {
        let progs: Vec<Program> = (0..n)
            .map(|tid| {
                let mut k = Kasm::new();
                emit_prologue(&mut k, tid, 7);
                body(&mut k, tid);
                k.halt();
                k.finish().expect("valid runtime program")
            })
            .collect();
        let mut m = McInterp::new(progs, 1 << 16, 99);
        m.run(5_000_000).expect("completes");
        m
    }

    #[test]
    fn rand_produces_distinct_values() {
        let m = run_mc(1, |k, _| {
            k.li(Reg::R1, 0x100);
            for i in 0..4 {
                emit_rand(k, Reg::R2);
                k.st(Reg::R2, Reg::R1, i * 8);
            }
        });
        let vals: Vec<u64> = (0..4).map(|i| m.mem().load(0x100 + i * 8)).collect();
        assert!(vals.windows(2).all(|w| w[0] != w[1]), "{vals:?}");
    }

    #[test]
    fn rand_pow2_stays_in_range() {
        let m = run_mc(1, |k, _| {
            k.li(Reg::R1, 0x100);
            for i in 0..8 {
                emit_rand_pow2(k, Reg::R2, 16);
                k.st(Reg::R2, Reg::R1, i * 8);
            }
        });
        for i in 0..8 {
            assert!(m.mem().load(0x100 + i * 8) < 16);
        }
    }

    #[test]
    fn tas_lock_provides_mutual_exclusion() {
        let m = run_mc(4, |k, _| {
            k.li(Reg::R1, 0x100); // lock
            k.li(Reg::R2, 0x200); // counter
            k.li(Reg::R3, 0);
            let top = k.here_label();
            emit_tas_acquire(k, Reg::R1, WaitKind::Spin);
            k.ld(Reg::R4, Reg::R2, 0);
            k.addi(Reg::R4, Reg::R4, 1);
            k.st(Reg::R4, Reg::R2, 0);
            emit_release(k, Reg::R1);
            k.addi(Reg::R3, Reg::R3, 1);
            k.blt_imm(Reg::R3, 25, top);
        });
        assert_eq!(m.mem().load(0x200), 100);
        assert_eq!(m.mem().load(0x100), 0);
    }

    #[test]
    fn ticket_lock_provides_mutual_exclusion() {
        let m = run_mc(4, |k, _| {
            k.li(Reg::R1, 0x100);
            k.li(Reg::R2, 0x200);
            k.li(Reg::R3, 0);
            let top = k.here_label();
            emit_ticket_acquire(k, Reg::R1, WaitKind::Spin);
            k.ld(Reg::R4, Reg::R2, 0);
            k.addi(Reg::R4, Reg::R4, 1);
            k.st(Reg::R4, Reg::R2, 0);
            emit_ticket_release(k, Reg::R1);
            k.addi(Reg::R3, Reg::R3, 1);
            k.blt_imm(Reg::R3, 25, top);
        });
        assert_eq!(m.mem().load(0x200), 100);
        // next == serving == 100 at the end.
        assert_eq!(m.mem().load(0x100), 100);
        assert_eq!(m.mem().load(0x108), 100);
    }

    #[test]
    fn barrier_separates_phases() {
        // Each thread writes its slot, barriers, then sums every slot.
        // Without a working barrier some thread reads a missing write.
        let n = 4;
        let m = run_mc(n, move |k, _| {
            k.li(Reg::R1, 0x100); // slots base
            k.li(Reg::R2, 0x300); // barrier
            k.shl(Reg::R3, TID, 3);
            k.add(Reg::R3, Reg::R1, Reg::R3);
            k.li(Reg::R4, 1);
            k.st(Reg::R4, Reg::R3, 0);
            emit_barrier(k, Reg::R2, n, WaitKind::Spin);
            // Sum all slots.
            k.li(Reg::R5, 0);
            for i in 0..n as i64 {
                k.ld(Reg::R6, Reg::R1, i * 8);
                k.add(Reg::R5, Reg::R5, Reg::R6);
            }
            // Publish per-thread sum.
            k.li(Reg::R7, 0x400);
            k.shl(Reg::R8, TID, 3);
            k.add(Reg::R7, Reg::R7, Reg::R8);
            k.st(Reg::R5, Reg::R7, 0);
        });
        for t in 0..n as u64 {
            assert_eq!(m.mem().load(0x400 + t * 8), n as u64, "thread {t} missed writes");
        }
    }

    #[test]
    fn barrier_is_reusable_across_phases() {
        let n = 3;
        let m = run_mc(n, move |k, _| {
            k.li(Reg::R2, 0x300);
            k.li(Reg::R9, 0x500);
            for _ in 0..5 {
                emit_barrier(k, Reg::R2, n, WaitKind::Spin);
            }
            // All threads passed 5 barriers: count arrivals.
            k.li(Reg::R1, 1);
            k.fetch_add(Reg::R3, Reg::R9, 0, Reg::R1);
        });
        assert_eq!(m.mem().load(0x500), n as u64);
    }
}
