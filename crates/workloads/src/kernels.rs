//! Reusable kernel templates the 26 workloads are assembled from.
//!
//! Most applications compile to one [`AppSpec`]: an outer loop combining an
//! inner compute loop (loads/stores/ALU over private or shared data), an
//! optional lock burst (acquire/critical-section/release repeated
//! back-to-back — the source of the paper's store-to-load forwarding to
//! atomics), and an optional periodic barrier. The write-intensive suite
//! additionally uses the dedicated TPCC / AS / CQ / canneal / RBT templates
//! matching §5.5's descriptions.

use crate::runtime::{
    emit_barrier, emit_rand_pow2, emit_release, emit_tas_acquire, emit_ticket_acquire,
    emit_ticket_release, WaitKind, RT3, TID,
};
use fa_isa::{Kasm, Reg};

/// Barrier control line.
pub const BARRIER_BASE: i64 = 0x1000;
/// Global shared counters region.
pub const COUNTER_BASE: i64 = 0x100;
/// Lock table: lock `i` occupies the line at `LOCK_BASE + i*64`.
pub const LOCK_BASE: i64 = 0x1_0000;
/// Per-lock data: record `i` at `DATA_BASE + i*64`.
pub const DATA_BASE: i64 = 0x10_0000;
/// Per-thread private regions: thread `t` owns 32 KiB at
/// `PRIVATE_BASE + t*PRIVATE_STRIDE`.
pub const PRIVATE_BASE: i64 = 0x20_0000;
/// Bytes between consecutive threads' private regions.
pub const PRIVATE_STRIDE: i64 = 0x8000;

// Template registers (R1-R14; the runtime owns R20+).
const I: Reg = Reg::R1;
const ADDR: Reg = Reg::R2;
const VAL: Reg = Reg::R3;
const TMP: Reg = Reg::R4;
const CD: Reg = Reg::R5;
const BASE: Reg = Reg::R6;
const LOCKA: Reg = Reg::R7;
const DATAA: Reg = Reg::R8;
const J: Reg = Reg::R9;
const LOCKB: Reg = Reg::R10;
const DATAB: Reg = Reg::R11;
const X2: Reg = Reg::R12;
const K2: Reg = Reg::R13;
const BAR: Reg = Reg::R14;

/// Inner compute loop parameters.
#[derive(Clone, Copy, Debug)]
pub struct ComputeInner {
    /// Inner iterations per outer iteration.
    pub iters: i64,
    /// Loads per inner iteration.
    pub loads: usize,
    /// Stores per inner iteration.
    pub stores: usize,
    /// Extra ALU ops per inner iteration.
    pub alu: usize,
    /// Byte stride between inner iterations (≥512 defeats the prefetcher
    /// and produces the long store-buffer drains of fft/radix in Figure 1).
    pub stride: i64,
    /// Region size in bytes (power of two).
    pub region_pow2: i64,
    /// Walk the shared `DATA_BASE` region instead of the private one.
    pub shared: bool,
}

/// Which lock implementation a lock part uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockKind {
    /// Test-and-set spinlock: re-acquisition forwards from the *release
    /// store* (Table 2's FbS).
    Tas,
    /// Ticket lock: re-acquisition forwards from the previous ticket
    /// `fetch_add`'s store_unlock (Table 2's FbA).
    Ticket,
}

/// How a thread picks its lock each outer iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockChoice {
    /// Uniformly random over the table (TATP/PC-style).
    Random,
    /// Mostly the same lock as last iteration (barnes/fmm/radiosity-style
    /// temporal locality; re-picks with probability 1/8).
    Sticky,
    /// Mostly the thread-own lock, 1/16 random (fluidanimate-style
    /// fine-grained, uncontended locking).
    OwnMostly,
}

/// Lock burst parameters.
#[derive(Clone, Copy, Debug)]
pub struct LockPart {
    /// Lock-table size (power of two).
    pub locks_pow2: i64,
    /// Lock flavour.
    pub kind: LockKind,
    /// Selection pattern.
    pub choice: LockChoice,
    /// Load-increment-store triples inside each critical section.
    pub cs_work: usize,
    /// Back-to-back acquire/release repetitions per outer iteration (>1
    /// creates the same-line atomic chains that forward under FreeFwd).
    pub burst: usize,
}

/// One application loop: `outer_iters` × (compute; lock burst; barrier?).
#[derive(Clone, Copy, Debug)]
pub struct AppSpec {
    /// Outer iterations per thread.
    pub outer_iters: i64,
    /// Inner compute loop, if any.
    pub compute: Option<ComputeInner>,
    /// Lock burst, if any.
    pub locks: Option<LockPart>,
    /// Barrier every `n` outer iterations.
    pub barrier_every: Option<i64>,
    /// Waiter behaviour for locks and barriers.
    pub wait: WaitKind,
}

impl AppSpec {
    /// A pure-compute spec (no locks, end barrier only).
    pub fn compute_only(outer_iters: i64, inner: ComputeInner) -> AppSpec {
        AppSpec {
            outer_iters,
            compute: Some(inner),
            locks: None,
            barrier_every: None,
            wait: WaitKind::Mwait,
        }
    }
}

/// Emits an [`AppSpec`] loop for `nthreads` threads.
pub fn emit_app_loop(k: &mut Kasm, nthreads: usize, spec: &AppSpec) {
    if let Some(c) = &spec.compute {
        assert!((c.region_pow2 as u64).is_power_of_two());
        if c.shared {
            k.li(BASE, DATA_BASE);
        } else {
            k.li(BASE, PRIVATE_BASE);
            k.li(TMP, PRIVATE_STRIDE);
            k.mul(VAL, TID, TMP);
            k.add(BASE, BASE, VAL);
        }
    }
    k.li(BAR, BARRIER_BASE);
    k.li(I, 0);
    if let Some(p) = spec.barrier_every {
        k.li(CD, p);
    }
    let top = k.here_label();

    if let Some(c) = &spec.compute {
        // Inner compute loop.
        k.li(J, 0);
        let inner = k.here_label();
        // addr = base + ((j*stride + i*8 + tid*64) & mask)
        k.li(TMP, c.stride);
        k.mul(ADDR, J, TMP);
        k.shl(TMP, I, 3);
        k.add(ADDR, ADDR, TMP);
        k.shl(TMP, TID, 6);
        k.add(ADDR, ADDR, TMP);
        let span = 8 * c.loads.max(c.stores).max(1) as i64;
        k.and(ADDR, ADDR, c.region_pow2 - span);
        k.and(ADDR, ADDR, -8);
        k.add(ADDR, BASE, ADDR);
        for l in 0..c.loads {
            k.ld(VAL, ADDR, (l as i64) * 8);
        }
        for _ in 0..c.alu {
            k.alu(fa_isa::AluOp::Mul, VAL, VAL, fa_isa::Operand::Imm(0x9E3779B1));
            k.xor(VAL, VAL, J);
        }
        for s in 0..c.stores {
            k.st(VAL, ADDR, (s as i64) * 8);
        }
        k.addi(J, J, 1);
        k.blt_imm(J, c.iters, inner);
    }

    if let Some(l) = &spec.locks {
        assert!((l.locks_pow2 as u64).is_power_of_two());
        // Pick the lock index into X2 per the pattern. X2 persists across
        // iterations for Sticky.
        match l.choice {
            LockChoice::Random => emit_rand_pow2(k, X2, l.locks_pow2),
            LockChoice::Sticky => {
                let keep = k.new_label();
                emit_rand_pow2(k, TMP, 8);
                k.bne_imm(TMP, 0, keep);
                emit_rand_pow2(k, X2, l.locks_pow2);
                k.bind(keep);
            }
            LockChoice::OwnMostly => {
                let own = k.new_label();
                let picked = k.new_label();
                emit_rand_pow2(k, TMP, 16);
                k.bne_imm(TMP, 0, own);
                emit_rand_pow2(k, X2, l.locks_pow2);
                k.jump(picked);
                k.bind(own);
                k.and(X2, TID, l.locks_pow2 - 1);
                k.bind(picked);
            }
        }
        k.shl(TMP, X2, 6);
        k.li(LOCKA, LOCK_BASE);
        k.add(LOCKA, LOCKA, TMP);
        k.li(DATAA, DATA_BASE);
        k.add(DATAA, DATAA, TMP);
        for _ in 0..l.burst.max(1) {
            match l.kind {
                LockKind::Tas => emit_tas_acquire(k, LOCKA, spec.wait),
                LockKind::Ticket => emit_ticket_acquire(k, LOCKA, spec.wait),
            }
            for w in 0..l.cs_work {
                k.ld(TMP, DATAA, (w as i64 % 6) * 8);
                k.addi(TMP, TMP, 1);
                k.st(TMP, DATAA, (w as i64 % 6) * 8);
            }
            match l.kind {
                LockKind::Tas => emit_release(k, LOCKA),
                LockKind::Ticket => emit_ticket_release(k, LOCKA),
            }
        }
    }

    if let Some(p) = spec.barrier_every {
        let skip = k.new_label();
        k.addi(CD, CD, -1);
        k.bne_imm(CD, 0, skip);
        k.li(CD, p);
        emit_barrier(k, BAR, nthreads, spec.wait);
        k.bind(skip);
    }
    k.addi(I, I, 1);
    k.blt_imm(I, spec.outer_iters, top);
    emit_barrier(k, BAR, nthreads, spec.wait);
}

/// Emits a small think loop of `iters` iterations (~4 instructions each).
pub fn emit_think(k: &mut Kasm, iters: i64) {
    if iters <= 0 {
        return;
    }
    k.li(K2, iters);
    let t = k.here_label();
    k.alu(fa_isa::AluOp::Mul, TMP, K2, fa_isa::Operand::Imm(2654435761));
    k.xor(TMP, TMP, K2);
    k.addi(K2, K2, -1);
    k.bne_imm(K2, 0, t);
}

/// TPCC-style template: each iteration acquires a contiguous run of
/// `5 + rand(0..8)` locks in ascending order, touches each record,
/// releases in reverse, then thinks (§5.5: "creates a list of locks
/// (randomized between 5 and 15), acquires them and performs some
/// computations before unlocking").
pub fn emit_tpcc_loop(k: &mut Kasm, iters: i64, locks_pow2: i64, think: i64, wait: WaitKind) {
    assert!((locks_pow2 as u64).is_power_of_two());
    k.li(I, 0);
    let top = k.here_label();
    emit_rand_pow2(k, VAL, locks_pow2 / 2);
    emit_rand_pow2(k, X2, 8);
    k.addi(X2, X2, 5);
    k.li(J, 0);
    let acq = k.here_label();
    k.add(TMP, VAL, J);
    k.shl(TMP, TMP, 6);
    k.li(LOCKA, LOCK_BASE);
    k.add(LOCKA, LOCKA, TMP);
    emit_tas_acquire(k, LOCKA, wait);
    k.li(DATAA, DATA_BASE);
    k.add(DATAA, DATAA, TMP);
    k.ld(RT3, DATAA, 0);
    k.addi(RT3, RT3, 1);
    k.st(RT3, DATAA, 0);
    k.addi(J, J, 1);
    k.blt(J, X2, acq);
    emit_think(k, think);
    let rel = k.here_label();
    k.addi(J, J, -1);
    k.add(TMP, VAL, J);
    k.shl(TMP, TMP, 6);
    k.li(LOCKA, LOCK_BASE);
    k.add(LOCKA, LOCKA, TMP);
    emit_release(k, LOCKA);
    k.bne_imm(J, 0, rel);
    k.addi(I, I, 1);
    k.blt_imm(I, iters, top);
}

/// AS-style template: pick two random records, lock both in index order,
/// swap their values, unlock (§5.5's description of AS).
pub fn emit_swap_loop(k: &mut Kasm, iters: i64, locks_pow2: i64, think: i64, wait: WaitKind) {
    assert!((locks_pow2 as u64).is_power_of_two());
    k.li(I, 0);
    let top = k.here_label();
    emit_rand_pow2(k, VAL, locks_pow2);
    emit_rand_pow2(k, X2, locks_pow2);
    let ordered = k.new_label();
    let same = k.new_label();
    k.beq(VAL, X2, same);
    k.blt(VAL, X2, ordered);
    k.xor(VAL, VAL, X2);
    k.xor(X2, VAL, X2);
    k.xor(VAL, VAL, X2);
    k.bind(ordered);
    k.shl(TMP, VAL, 6);
    k.li(LOCKA, LOCK_BASE);
    k.add(LOCKA, LOCKA, TMP);
    k.li(DATAA, DATA_BASE);
    k.add(DATAA, DATAA, TMP);
    k.shl(TMP, X2, 6);
    k.li(LOCKB, LOCK_BASE);
    k.add(LOCKB, LOCKB, TMP);
    k.li(DATAB, DATA_BASE);
    k.add(DATAB, DATAB, TMP);
    emit_tas_acquire(k, LOCKA, wait);
    emit_tas_acquire(k, LOCKB, wait);
    k.ld(TMP, DATAA, 0);
    k.ld(J, DATAB, 0);
    k.st(J, DATAA, 0);
    k.st(TMP, DATAB, 0);
    emit_release(k, LOCKB);
    emit_release(k, LOCKA);
    let next = k.new_label();
    k.jump(next);
    k.bind(same);
    k.shl(TMP, VAL, 6);
    k.li(LOCKA, LOCK_BASE);
    k.add(LOCKA, LOCKA, TMP);
    k.li(DATAA, DATA_BASE);
    k.add(DATAA, DATAA, TMP);
    emit_tas_acquire(k, LOCKA, wait);
    k.ld(TMP, DATAA, 0);
    k.addi(TMP, TMP, 1);
    k.st(TMP, DATAA, 0);
    emit_release(k, LOCKA);
    k.bind(next);
    emit_think(k, think);
    k.addi(I, I, 1);
    k.blt_imm(I, iters, top);
}

/// CQ-style template: a two-lock Michael–Scott-style MPMC ring queue (the
/// structure of the persistency suite's concurrent queue). Each end is
/// protected by a test-and-set lock — atomics never *block*, waiting
/// happens in spin loops — and per-slot ready flags pass items between
/// producers and consumers. Each iteration enqueues then dequeues one item.
///
/// Layout: enqueue lock + tail index on the `COUNTER_BASE` line; dequeue
/// lock + head index on `COUNTER_BASE + 64`; slot `s` on
/// `DATA_BASE + s*64`.
pub fn emit_queue_loop(k: &mut Kasm, iters: i64, slots_pow2: i64, think: i64) {
    assert!((slots_pow2 as u64).is_power_of_two());
    k.li(I, 0);
    let top = k.here_label();

    // ---- Enqueue ----
    k.li(LOCKA, COUNTER_BASE);
    emit_tas_acquire(k, LOCKA, WaitKind::Spin);
    k.ld(VAL, LOCKA, 8); // tail index
    k.and(TMP, VAL, slots_pow2 - 1);
    k.shl(TMP, TMP, 6);
    k.li(DATAA, DATA_BASE);
    k.add(DATAA, DATAA, TMP);
    // Wait (inside the CS, as the two-lock queue does) until the slot is
    // free, then deposit payload + ready flag and bump the tail.
    let wait_empty = k.here_label();
    k.ld(TMP, DATAA, 0);
    let empty = k.new_label();
    k.beq_imm(TMP, 0, empty);
    k.pause();
    k.jump(wait_empty);
    k.bind(empty);
    k.st(I, DATAA, 8);
    k.li(TMP, 1);
    k.st(TMP, DATAA, 0);
    k.addi(VAL, VAL, 1);
    k.st(VAL, LOCKA, 8);
    emit_release(k, LOCKA);

    // ---- Dequeue ----
    k.li(LOCKB, COUNTER_BASE + 64);
    emit_tas_acquire(k, LOCKB, WaitKind::Spin);
    k.ld(VAL, LOCKB, 8); // head index
    k.and(TMP, VAL, slots_pow2 - 1);
    k.shl(TMP, TMP, 6);
    k.li(DATAB, DATA_BASE);
    k.add(DATAB, DATAB, TMP);
    let wait_full = k.here_label();
    k.ld(TMP, DATAB, 0);
    let full = k.new_label();
    k.bne_imm(TMP, 0, full);
    k.pause();
    k.jump(wait_full);
    k.bind(full);
    k.ld(J, DATAB, 8);
    k.st(Reg::R0, DATAB, 0);
    k.addi(VAL, VAL, 1);
    k.st(VAL, LOCKB, 8);
    emit_release(k, LOCKB);

    emit_think(k, think);
    k.addi(I, I, 1);
    k.blt_imm(I, iters, top);
}

/// canneal-style template: pure-atomic synchronization — each iteration
/// rotates two random elements with three `Swap` RMWs plus evaluation
/// arithmetic.
pub fn emit_atomic_swap_loop(k: &mut Kasm, iters: i64, elems_pow2: i64, think: i64) {
    assert!((elems_pow2 as u64).is_power_of_two());
    k.li(I, 0);
    let top = k.here_label();
    emit_rand_pow2(k, VAL, elems_pow2);
    emit_rand_pow2(k, X2, elems_pow2);
    k.shl(VAL, VAL, 3);
    k.shl(X2, X2, 3);
    k.li(DATAA, DATA_BASE);
    k.add(DATAA, DATAA, VAL);
    k.li(DATAB, DATA_BASE);
    k.add(DATAB, DATAB, X2);
    k.swap(TMP, DATAA, 0, I);
    k.swap(J, DATAB, 0, TMP);
    k.swap(TMP, DATAA, 0, J);
    k.add(VAL, TMP, J);
    k.alu(fa_isa::AluOp::Mul, VAL, VAL, fa_isa::Operand::Imm(0x5851F42D));
    emit_think(k, think);
    k.addi(I, I, 1);
    k.blt_imm(I, iters, top);
}

/// RBT-style template: a global ticket lock protecting a binary-search
/// walk with node updates — long critical sections, few atomics.
pub fn emit_tree_update_loop(k: &mut Kasm, iters: i64, depth: usize, think: i64, wait: WaitKind) {
    k.li(I, 0);
    let top = k.here_label();
    k.li(LOCKA, LOCK_BASE);
    emit_ticket_acquire(k, LOCKA, wait);
    emit_rand_pow2(k, X2, 1 << depth);
    k.li(VAL, 1);
    for level in 0..depth {
        k.shr(TMP, X2, level as i64);
        k.and(TMP, TMP, 1);
        k.shl(VAL, VAL, 1);
        k.add(VAL, VAL, TMP);
        k.and(J, VAL, (1 << depth) - 1);
        k.shl(J, J, 3);
        k.li(DATAA, DATA_BASE);
        k.add(DATAA, DATAA, J);
        k.ld(TMP, DATAA, 0);
        k.addi(TMP, TMP, 1);
        k.st(TMP, DATAA, 0);
    }
    emit_ticket_release(k, LOCKA);
    emit_think(k, think);
    k.addi(I, I, 1);
    k.blt_imm(I, iters, top);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::emit_prologue;
    use fa_isa::interp::McInterp;
    use fa_isa::Program;

    fn build(n: usize, body: impl Fn(&mut Kasm, usize)) -> Vec<Program> {
        (0..n)
            .map(|tid| {
                let mut k = Kasm::new();
                emit_prologue(&mut k, tid, 11);
                body(&mut k, tid);
                k.halt();
                k.finish().expect("valid kernel")
            })
            .collect()
    }

    fn run(progs: Vec<Program>, budget: u64) -> McInterp {
        let mut m = McInterp::new(progs, crate::WORKLOAD_MEM_BYTES, 5);
        m.run(budget).expect("kernel completes in budget");
        m
    }

    #[test]
    fn app_loop_compute_only_runs() {
        let spec = AppSpec::compute_only(
            20,
            ComputeInner { iters: 10, loads: 2, stores: 1, alu: 2, stride: 64, region_pow2: 0x4000, shared: false },
        );
        run(build(3, |k, _| emit_app_loop(k, 3, &spec)), 2_000_000);
    }

    #[test]
    fn app_loop_lock_counts_are_exact() {
        let spec = AppSpec {
            outer_iters: 30,
            compute: None,
            locks: Some(LockPart {
                locks_pow2: 8,
                kind: LockKind::Tas,
                choice: LockChoice::Random,
                cs_work: 2,
                burst: 2,
            }),
            barrier_every: None,
            wait: WaitKind::Spin,
        };
        let m = run(build(4, |k, _| emit_app_loop(k, 4, &spec)), 10_000_000);
        // burst=2 with cs_work=2 increments offsets 0 and 8 of the chosen
        // record twice per outer iteration.
        let total: u64 = (0..8).map(|i| m.mem().load((DATA_BASE + i * 64) as u64)).sum();
        assert_eq!(total, 4 * 30 * 2);
    }

    #[test]
    fn app_loop_ticket_sticky_runs() {
        let spec = AppSpec {
            outer_iters: 25,
            compute: Some(ComputeInner { iters: 5, loads: 1, stores: 1, alu: 1, stride: 8, region_pow2: 0x1000, shared: false }),
            locks: Some(LockPart {
                locks_pow2: 16,
                kind: LockKind::Ticket,
                choice: LockChoice::Sticky,
                cs_work: 1,
                burst: 3,
            }),
            barrier_every: Some(10),
            wait: WaitKind::Spin,
        };
        let m = run(build(3, |k, _| emit_app_loop(k, 3, &spec)), 20_000_000);
        let total: u64 = (0..16).map(|i| m.mem().load((DATA_BASE + i * 64) as u64)).sum();
        assert_eq!(total, 3 * 25 * 3);
    }

    #[test]
    fn tpcc_loop_is_deadlock_free_and_counts() {
        let m = run(build(4, |k, _| emit_tpcc_loop(k, 15, 64, 5, WaitKind::Spin)), 40_000_000);
        let total: u64 = (0..64).map(|i| m.mem().load((DATA_BASE + i * 64) as u64)).sum();
        assert!((4 * 15 * 5..=4 * 15 * 12).contains(&total), "total {total}");
        for i in 0..64 {
            assert_eq!(m.mem().load((LOCK_BASE + i * 64) as u64), 0);
        }
    }

    #[test]
    fn swap_loop_preserves_multiset() {
        let progs = build(4, |k, _| emit_swap_loop(k, 30, 16, 3, WaitKind::Spin));
        let mut m = McInterp::new(progs, crate::WORKLOAD_MEM_BYTES, 5);
        for i in 0..16u64 {
            m.mem_mut().store((DATA_BASE as u64) + i * 64, 1000 + i);
        }
        m.run(40_000_000).expect("completes");
        let sum: u64 = (0..16).map(|i| m.mem().load((DATA_BASE + i * 64) as u64)).sum();
        let base_sum: u64 = (0..16).map(|i| 1000 + i).sum();
        assert!(sum >= base_sum && sum <= base_sum + 120, "sum {sum} vs {base_sum}");
        for i in 0..16 {
            assert_eq!(m.mem().load((LOCK_BASE + i * 64) as u64), 0, "lock {i} leaked");
        }
    }

    #[test]
    fn queue_loop_conserves_items() {
        let n = 4;
        let iters = 25;
        let m = run(build(n, |k, _| emit_queue_loop(k, iters, 16, 2)), 40_000_000);
        // Tail and head indices match: every enqueue was dequeued.
        assert_eq!(m.mem().load((COUNTER_BASE + 8) as u64), (n as u64) * iters as u64);
        assert_eq!(m.mem().load((COUNTER_BASE + 64 + 8) as u64), (n as u64) * iters as u64);
        // Both end locks released and the ring empty.
        assert_eq!(m.mem().load(COUNTER_BASE as u64), 0);
        assert_eq!(m.mem().load((COUNTER_BASE + 64) as u64), 0);
        for s in 0..16 {
            assert_eq!(m.mem().load((DATA_BASE + s * 64) as u64), 0, "slot {s} not empty");
        }
    }

    #[test]
    fn atomic_swap_loop_runs() {
        run(build(4, |k, _| emit_atomic_swap_loop(k, 100, 256, 2)), 10_000_000);
    }

    #[test]
    fn tree_update_loop_counts_node_touches() {
        let n = 3;
        let iters = 20;
        let depth = 6;
        let m = run(
            build(n, |k, _| emit_tree_update_loop(k, iters, depth, 4, WaitKind::Spin)),
            40_000_000,
        );
        let total: u64 =
            (0..(1 << depth)).map(|i| m.mem().load((DATA_BASE + i * 8) as u64)).sum();
        assert_eq!(total, (n as u64) * (iters as u64) * (depth as u64));
    }
}
