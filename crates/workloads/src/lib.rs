//! Synthetic workload suite for the Free Atomics simulator.
//!
//! Twenty-six kernels named after the paper's evaluated applications
//! (SPLASH-3, PARSEC-3 and the write-intensive suite of Gogte et al. /
//! Kolli et al.), written in the guest ISA through the [`Kasm`] assembler.
//! The kernels are *synthetic proxies*: they reproduce each application's
//! synchronization idiom (locks, barriers, pure atomics), its
//! atomics-per-kilo-instruction rate (Figure 12), its lock locality, and its
//! store-buffer pressure — the properties Free Atomics' gains depend on —
//! not its numerical output.
//!
//! [`Kasm`]: fa_isa::Kasm
//!
//! # Example
//!
//! ```
//! use fa_workloads::{suite, WorkloadParams};
//!
//! let spec = suite::by_name("canneal").unwrap();
//! let w = spec.build(&WorkloadParams { cores: 4, scale: 0.1, seed: 42 });
//! assert_eq!(w.programs.len(), 4);
//! ```

pub mod kernels;
pub mod runtime;
pub mod suite;

use fa_isa::interp::GuestMem;
use fa_isa::Program;

/// Parameters every workload builder receives.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadParams {
    /// Number of hardware threads (= cores); the paper evaluates 32.
    pub cores: usize,
    /// Work multiplier: 1.0 ≈ a few hundred thousand instructions per
    /// core. Benchmarks shrink it to fit wall-clock budgets.
    pub scale: f64,
    /// Seed for data and access-pattern randomization.
    pub seed: u64,
}

impl Default for WorkloadParams {
    fn default() -> WorkloadParams {
        WorkloadParams { cores: 32, scale: 1.0, seed: 0xF00D }
    }
}

/// A built workload: one program per core plus initialized guest memory.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Workload name (matches the paper's application name).
    pub name: &'static str,
    /// Whether the paper classifies it atomic-intensive (≥ 0.75 APKI).
    pub atomic_intensive: bool,
    /// One program per core.
    pub programs: Vec<Program>,
    /// Initialized guest memory.
    pub mem: GuestMem,
}

/// A named workload builder.
#[derive(Clone, Copy)]
pub struct WorkloadSpec {
    /// Application name as in the paper.
    pub name: &'static str,
    /// Paper classification (§5.2): ≥ 0.75 atomics per kilo-instruction.
    pub atomic_intensive: bool,
    builder: fn(&WorkloadParams) -> Workload,
}

impl std::fmt::Debug for WorkloadSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadSpec")
            .field("name", &self.name)
            .field("atomic_intensive", &self.atomic_intensive)
            .finish()
    }
}

impl WorkloadSpec {
    pub(crate) const fn new(
        name: &'static str,
        atomic_intensive: bool,
        builder: fn(&WorkloadParams) -> Workload,
    ) -> WorkloadSpec {
        WorkloadSpec { name, atomic_intensive, builder }
    }

    /// Builds the workload for the given parameters.
    pub fn build(&self, params: &WorkloadParams) -> Workload {
        (self.builder)(params)
    }
}

/// Guest memory size every workload uses (4 MiB).
pub const WORKLOAD_MEM_BYTES: u64 = 4 << 20;
