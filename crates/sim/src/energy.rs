//! Event-count energy model (the McPAT substitution).
//!
//! The paper integrates McPAT at 22 nm / 0.6 V to report processor energy
//! (Figure 15), split into dynamic and static. Figure 15's *claims* are
//! relative: dynamic energy falls with fewer committed+squashed micro-ops
//! (less spinning) and better locality; static energy is proportional to
//! execution time, discounted while cores sleep. An event-count model with
//! per-event energies in the McPAT ballpark preserves exactly that
//! structure, so relative comparisons between atomic policies are
//! meaningful; absolute joules are not calibrated.

use crate::machine::RunResult;
use serde::{Deserialize, Serialize};

/// Per-event energies in nanojoules and static power per core.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy per committed micro-op (rename+issue+execute+commit).
    pub nj_per_uop: f64,
    /// Energy per squashed micro-op (work thrown away).
    pub nj_per_squashed_uop: f64,
    /// Energy per L1 access.
    pub nj_per_l1: f64,
    /// Energy per L2 access.
    pub nj_per_l2: f64,
    /// Energy per LLC access.
    pub nj_per_llc: f64,
    /// Energy per DRAM access.
    pub nj_per_mem: f64,
    /// Energy per coherence message.
    pub nj_per_msg: f64,
    /// Static (leakage) energy per core per cycle while awake.
    pub nj_static_per_cycle: f64,
    /// Fraction of static energy burnt while asleep (clock-gated).
    pub sleep_static_factor: f64,
}

impl Default for EnergyModel {
    /// 22 nm / 0.6 V ballpark figures.
    fn default() -> EnergyModel {
        EnergyModel {
            nj_per_uop: 0.12,
            nj_per_squashed_uop: 0.08,
            nj_per_l1: 0.05,
            nj_per_l2: 0.2,
            nj_per_llc: 1.2,
            nj_per_mem: 15.0,
            nj_per_msg: 0.25,
            // Leakage dominates at 0.6 V near-threshold operation (the
            // paper's McPAT point), so the static share is large.
            nj_static_per_cycle: 0.3,
            sleep_static_factor: 0.2,
        }
    }
}

/// Energy totals for one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Dynamic energy in nanojoules.
    pub dynamic_nj: f64,
    /// Static energy in nanojoules.
    pub static_nj: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total_nj(&self) -> f64 {
        self.dynamic_nj + self.static_nj
    }
}

impl EnergyModel {
    /// Evaluates the model over a run.
    pub fn evaluate(&self, r: &RunResult) -> EnergyBreakdown {
        let agg = r.aggregate();
        let mut dynamic = 0.0;
        dynamic += agg.uops as f64 * self.nj_per_uop;
        dynamic += agg.squashed_uops as f64 * self.nj_per_squashed_uop;
        for c in &r.mem.cores {
            dynamic += (c.l1_hits + c.stores_performed) as f64 * self.nj_per_l1;
            dynamic += c.l2_hits as f64 * self.nj_per_l2;
            dynamic += (c.llc_hits + c.remote_transfers) as f64 * self.nj_per_llc;
            dynamic += c.mem_accesses as f64 * self.nj_per_mem;
        }
        dynamic += r.mem.messages as f64 * self.nj_per_msg;

        let cores = r.per_core.len() as f64;
        let total_core_cycles = r.cycles as f64 * cores;
        let sleep: f64 = r.per_core.iter().map(|c| c.sleep_cycles as f64).sum();
        let awake = (total_core_cycles - sleep).max(0.0);
        let static_nj = awake * self.nj_static_per_cycle
            + sleep * self.nj_static_per_cycle * self.sleep_static_factor;
        EnergyBreakdown { dynamic_nj: dynamic, static_nj }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_core::CoreStats;
    use fa_mem::MemStats;

    fn result(cycles: u64, uops: u64, sleep: u64) -> RunResult {
        let mut cs = CoreStats { cycles, uops, sleep_cycles: sleep, ..CoreStats::default() };
        cs.instructions = uops;
        RunResult { cycles, per_core: vec![cs], mem: MemStats::new(1) }
    }

    #[test]
    fn dynamic_scales_with_uops() {
        let m = EnergyModel::default();
        let a = m.evaluate(&result(1000, 100, 0));
        let b = m.evaluate(&result(1000, 200, 0));
        assert!(b.dynamic_nj > a.dynamic_nj);
        assert_eq!(a.static_nj, b.static_nj);
    }

    #[test]
    fn sleeping_discounts_static_energy() {
        let m = EnergyModel::default();
        let awake = m.evaluate(&result(1000, 100, 0));
        let asleep = m.evaluate(&result(1000, 100, 500));
        assert!(asleep.static_nj < awake.static_nj);
        assert!(asleep.total_nj() < awake.total_nj());
    }

    #[test]
    fn static_scales_with_time() {
        let m = EnergyModel::default();
        let short = m.evaluate(&result(1000, 100, 0));
        let long = m.evaluate(&result(2000, 100, 0));
        assert!(long.static_nj > short.static_nj);
    }
}
