//! The paper's measurement methodology (§5.1): run each configuration
//! several times with randomized start perturbations, drop the slowest
//! outliers, and average the rest.

use crate::error::SimError;
use crate::machine::{Machine, MachineConfig, RunResult};
use fa_isa::interp::GuestMem;
use fa_isa::Program;

/// Multi-run settings. The paper uses 10 runs and drops the 3 slowest; the
/// default here is a faster 5-drop-1 with identical structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Methodology {
    /// Total runs.
    pub runs: usize,
    /// Slowest runs discarded.
    pub drop_slowest: usize,
    /// Maximum random start offset per core, in cycles.
    pub max_offset: u64,
    /// Base seed; run `i` uses `seed + i`.
    pub seed: u64,
    /// Per-run cycle budget.
    pub max_cycles: u64,
}

impl Default for Methodology {
    fn default() -> Methodology {
        Methodology { runs: 5, drop_slowest: 1, max_offset: 2000, seed: 0xF5EE_A706, max_cycles: 80_000_000 }
    }
}

/// Summary over the retained runs.
#[derive(Clone, Debug)]
pub struct MultiRun {
    /// Mean cycles over retained runs.
    pub mean_cycles: f64,
    /// Every retained run, fastest first.
    pub runs: Vec<RunResult>,
}

impl MultiRun {
    /// The fastest retained run (used for detailed per-counter reporting).
    pub fn representative(&self) -> &RunResult {
        &self.runs[0]
    }
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Runs `build` (a factory producing identical fresh workloads) under the
/// methodology and averages the retained runs.
///
/// `build` must return `(programs, initialized guest memory)` anew for each
/// run — memory is consumed by the machine.
///
/// # Errors
///
/// Returns the first [`SimError`] encountered (timeout or invariant-audit
/// failure).
// Cold failure path; the error's diagnostic snapshot dominates its size.
#[allow(clippy::result_large_err)]
pub fn measure(
    cfg: &MachineConfig,
    meth: &Methodology,
    mut build: impl FnMut() -> (Vec<Program>, GuestMem),
) -> Result<MultiRun, SimError> {
    let mut results: Vec<RunResult> = Vec::with_capacity(meth.runs);
    let mut rng = meth.seed | 1;
    for _ in 0..meth.runs {
        let (programs, mem) = build();
        let n = programs.len();
        let mut m = Machine::new(cfg.clone(), programs, mem);
        let offsets: Vec<u64> =
            (0..n).map(|_| xorshift(&mut rng) % (meth.max_offset + 1)).collect();
        m.set_start_offsets(offsets);
        results.push(m.run(meth.max_cycles)?);
    }
    results.sort_by_key(|r| r.cycles);
    results.truncate(meth.runs - meth.drop_slowest.min(meth.runs - 1));
    let mean = results.iter().map(|r| r.cycles as f64).sum::<f64>() / results.len() as f64;
    Ok(MultiRun { mean_cycles: mean, runs: results })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_isa::{Kasm, Reg};

    fn counter(iters: i64) -> Program {
        let mut k = Kasm::new();
        k.li(Reg::R1, 0x100);
        k.li(Reg::R2, 1);
        k.li(Reg::R3, 0);
        let top = k.here_label();
        k.fetch_add(Reg::R4, Reg::R1, 0, Reg::R2);
        k.addi(Reg::R3, Reg::R3, 1);
        k.blt_imm(Reg::R3, iters, top);
        k.halt();
        k.finish().unwrap()
    }

    #[test]
    fn measure_drops_slowest_and_averages() {
        let cfg = crate::presets::icelake_like();
        let meth = Methodology { runs: 4, drop_slowest: 1, max_offset: 300, ..Default::default() };
        let mr = measure(&cfg, &meth, || (vec![counter(30); 2], GuestMem::new(1 << 16)))
            .expect("completes");
        assert_eq!(mr.runs.len(), 3);
        assert!(mr.mean_cycles > 0.0);
        // Sorted fastest-first.
        assert!(mr.runs.windows(2).all(|w| w[0].cycles <= w[1].cycles));
        assert!(mr.representative().cycles <= mr.runs.last().unwrap().cycles);
    }
}
