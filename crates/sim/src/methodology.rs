//! The paper's measurement methodology (§5.1): run each configuration
//! several times with randomized start perturbations, drop the slowest
//! outliers, and average the rest.
//!
//! Each run derives its perturbation stream independently from the base
//! seed (run `i` uses a SplitMix64 stream seeded with `seed + i`, the same
//! generator as [`fa_mem::chaos`]), so runs are replayable in isolation and
//! can execute in any order — including concurrently on the
//! [`crate::sweep`] engine — with bit-identical results.

use crate::error::SimError;
use crate::machine::{Machine, MachineConfig, RunResult};
use crate::sweep;
use fa_isa::interp::GuestMem;
use fa_isa::Program;
use fa_mem::SplitMix64;

/// Multi-run settings. The paper uses 10 runs and drops the 3 slowest; the
/// default here is a faster 5-drop-1 with identical structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Methodology {
    /// Total runs. Must be nonzero.
    pub runs: usize,
    /// Slowest runs discarded. Must be less than `runs`.
    pub drop_slowest: usize,
    /// Maximum random start offset per core, in cycles.
    pub max_offset: u64,
    /// Base seed; run `i` uses a fresh SplitMix64 stream seeded `seed + i`.
    pub seed: u64,
    /// Per-run cycle budget.
    pub max_cycles: u64,
}

impl Default for Methodology {
    fn default() -> Methodology {
        Methodology { runs: 5, drop_slowest: 1, max_offset: 2000, seed: 0xF5EE_A706, max_cycles: 80_000_000 }
    }
}

impl Methodology {
    /// Checks that the configuration retains at least one run.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidMethodology`] when `runs == 0` (the mean would
    /// divide by zero) or `drop_slowest >= runs` (every run discarded).
    // Cold validation path; SimError's large variants dominate its size.
    #[allow(clippy::result_large_err)]
    pub fn validate(&self) -> Result<(), SimError> {
        if self.runs == 0 || self.drop_slowest >= self.runs {
            return Err(SimError::InvalidMethodology {
                runs: self.runs,
                drop_slowest: self.drop_slowest,
            });
        }
        Ok(())
    }

    /// The start offsets run `run` applies to `cores` cores: drawn from a
    /// SplitMix64 stream seeded `seed + run`, uniformly in
    /// `[0, max_offset]`. Public so replay tooling (and the seeding
    /// regression tests) can reproduce a single run without the harness.
    pub fn run_offsets(&self, run: usize, cores: usize) -> Vec<u64> {
        let mut rng = SplitMix64::new(self.seed.wrapping_add(run as u64));
        (0..cores).map(|_| rng.below(self.max_offset.saturating_add(1))).collect()
    }

    /// Executes run `run` of this methodology in isolation: fresh machine,
    /// run `run`'s start offsets, run to quiescence. The unit of work the
    /// sweep engine fans out.
    ///
    /// # Errors
    ///
    /// Any [`SimError`] the run raises.
    // Cold failure path; the error's diagnostic snapshot dominates its size.
    #[allow(clippy::result_large_err)]
    pub fn run_single(
        &self,
        cfg: &MachineConfig,
        run: usize,
        programs: Vec<Program>,
        mem: GuestMem,
    ) -> Result<RunResult, SimError> {
        let n = programs.len();
        let mut m = Machine::new(cfg.clone(), programs, mem);
        m.set_start_offsets(self.run_offsets(run, n));
        m.run(self.max_cycles)
    }

    /// Sorts, trims and averages per-run results collected in run order
    /// (fastest first; the `drop_slowest` tail discarded). Because the sort
    /// is stable over run-ordered input, the retained set is identical no
    /// matter where or in what order the runs executed.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidMethodology`] as [`Methodology::validate`], or if
    /// `results` does not hold exactly `runs` entries.
    // Cold validation path; SimError's large variants dominate its size.
    #[allow(clippy::result_large_err)]
    pub fn summarize(&self, mut results: Vec<RunResult>) -> Result<MultiRun, SimError> {
        self.validate()?;
        if results.len() != self.runs {
            return Err(SimError::InvalidMethodology {
                runs: results.len(),
                drop_slowest: self.drop_slowest,
            });
        }
        results.sort_by_key(|r| r.cycles);
        results.truncate(self.runs - self.drop_slowest);
        let mean = results.iter().map(|r| r.cycles as f64).sum::<f64>() / results.len() as f64;
        Ok(MultiRun { mean_cycles: mean, runs: results })
    }
}

/// Summary over the retained runs.
#[derive(Clone, Debug)]
pub struct MultiRun {
    /// Mean cycles over retained runs.
    pub mean_cycles: f64,
    /// Every retained run, fastest first.
    pub runs: Vec<RunResult>,
}

impl MultiRun {
    /// The fastest retained run (used for detailed per-counter reporting).
    pub fn representative(&self) -> &RunResult {
        &self.runs[0]
    }
}

/// Runs `build` (a factory producing identical fresh workloads) under the
/// methodology and averages the retained runs.
///
/// `build` must return `(programs, initialized guest memory)` anew for each
/// run — memory is consumed by the machine.
///
/// # Errors
///
/// [`SimError::InvalidMethodology`] for a configuration retaining no runs;
/// otherwise the first [`SimError`] encountered (timeout or invariant-audit
/// failure).
// Cold failure path; the error's diagnostic snapshot dominates its size.
#[allow(clippy::result_large_err)]
pub fn measure(
    cfg: &MachineConfig,
    meth: &Methodology,
    mut build: impl FnMut() -> (Vec<Program>, GuestMem),
) -> Result<MultiRun, SimError> {
    meth.validate()?;
    let mut results: Vec<RunResult> = Vec::with_capacity(meth.runs);
    for run in 0..meth.runs {
        let (programs, mem) = build();
        results.push(meth.run_single(cfg, run, programs, mem)?);
    }
    meth.summarize(results)
}

/// [`measure`], with the independent runs fanned across `threads` worker
/// threads on the [`crate::sweep`] engine. Because every run derives its
/// perturbations from its own `seed + i` stream and each [`Machine`] is
/// single-threaded and deterministic, the retained runs and the mean are
/// bit-identical to [`measure`]'s regardless of scheduling. `threads == 0`
/// selects the host's available parallelism; `threads == 1` degenerates to
/// the serial path.
///
/// # Errors
///
/// As [`measure`]; when several runs fail, the error of the
/// lowest-numbered failing run is returned (every run is attempted).
// Cold failure path; the error's diagnostic snapshot dominates its size.
#[allow(clippy::result_large_err)]
pub fn measure_parallel(
    cfg: &MachineConfig,
    meth: &Methodology,
    threads: usize,
    build: impl Fn() -> (Vec<Program>, GuestMem) + Sync,
) -> Result<MultiRun, SimError> {
    meth.validate()?;
    let runs: Vec<usize> = (0..meth.runs).collect();
    let results = sweep::run_cells(&runs, threads, |_, &run| {
        let (programs, mem) = build();
        meth.run_single(cfg, run, programs, mem)
    });
    let results: Result<Vec<RunResult>, SimError> = results.into_iter().collect();
    meth.summarize(results?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_isa::{Kasm, Reg};

    fn counter(iters: i64) -> Program {
        let mut k = Kasm::new();
        k.li(Reg::R1, 0x100);
        k.li(Reg::R2, 1);
        k.li(Reg::R3, 0);
        let top = k.here_label();
        k.fetch_add(Reg::R4, Reg::R1, 0, Reg::R2);
        k.addi(Reg::R3, Reg::R3, 1);
        k.blt_imm(Reg::R3, iters, top);
        k.halt();
        k.finish().unwrap()
    }

    #[test]
    fn measure_drops_slowest_and_averages() {
        let cfg = crate::presets::icelake_like();
        let meth = Methodology { runs: 4, drop_slowest: 1, max_offset: 300, ..Default::default() };
        let mr = measure(&cfg, &meth, || (vec![counter(30); 2], GuestMem::new(1 << 16)))
            .expect("completes");
        assert_eq!(mr.runs.len(), 3);
        assert!(mr.mean_cycles > 0.0);
        // Sorted fastest-first.
        assert!(mr.runs.windows(2).all(|w| w[0].cycles <= w[1].cycles));
        assert!(mr.representative().cycles <= mr.runs.last().unwrap().cycles);
    }

    #[test]
    fn zero_runs_and_drop_all_are_structured_errors() {
        let cfg = crate::presets::tiny_machine();
        for (runs, drop_slowest) in [(0, 0), (3, 3), (2, 5)] {
            let meth = Methodology { runs, drop_slowest, ..Default::default() };
            let err = measure(&cfg, &meth, || (vec![counter(5)], GuestMem::new(1 << 12)))
                .expect_err("must reject");
            assert_eq!(err, SimError::InvalidMethodology { runs, drop_slowest });
            let err = measure_parallel(&cfg, &meth, 2, || {
                (vec![counter(5)], GuestMem::new(1 << 12))
            })
            .expect_err("parallel path must reject identically");
            assert_eq!(err, SimError::InvalidMethodology { runs, drop_slowest });
        }
    }

    #[test]
    fn per_run_streams_differ_even_for_seeds_differing_in_bit0() {
        // Regression: the old implementation threaded one xorshift stream
        // seeded `seed | 1`, so seeds differing only in bit 0 produced
        // identical perturbations and run i was not replayable from
        // `seed + i` as documented.
        let even = Methodology { seed: 0x1000, max_offset: 2000, ..Default::default() };
        let odd = Methodology { seed: 0x1001, ..even };
        assert_ne!(
            even.run_offsets(0, 8),
            odd.run_offsets(0, 8),
            "seeds differing in bit 0 must perturb differently"
        );
        // Runs draw from disjoint streams...
        assert_ne!(even.run_offsets(0, 8), even.run_offsets(1, 8));
        // ...and run i of seed s equals run 0 of seed s+i (replay-by-seed).
        let shifted = Methodology { seed: 0x1003, ..even };
        assert_eq!(even.run_offsets(3, 8), shifted.run_offsets(0, 8));
        // Offsets respect the configured bound.
        assert!(even.run_offsets(0, 64).iter().all(|&o| o <= even.max_offset));
    }

    #[test]
    fn parallel_measure_matches_serial_bitwise() {
        let cfg = crate::presets::tiny_machine();
        let meth = Methodology {
            runs: 4,
            drop_slowest: 1,
            max_offset: 200,
            max_cycles: 5_000_000,
            ..Default::default()
        };
        let build = || (vec![counter(20); 2], GuestMem::new(1 << 16));
        let serial = measure(&cfg, &meth, build).expect("serial completes");
        let parallel = measure_parallel(&cfg, &meth, 4, build).expect("parallel completes");
        assert_eq!(serial.mean_cycles, parallel.mean_cycles);
        assert_eq!(serial.runs.len(), parallel.runs.len());
        for (s, p) in serial.runs.iter().zip(&parallel.runs) {
            assert_eq!(s.cycles, p.cycles);
            assert_eq!(s.per_core, p.per_core);
            assert_eq!(s.mem, p.mem);
        }
    }
}
