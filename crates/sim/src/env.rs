//! Unified `FA_*` environment-variable parsing.
//!
//! Every knob the benchmark and tool binaries read from the environment
//! (`FA_THREADS`, `FA_NOC`, `FA_POLICIES`, `FA_PRESETS`, `FA_WORKLOADS`,
//! `FA_BENCH_JSON`, `FA_TRACE`, `FA_CHECK`, the `FA_FUZZ_*` family, ...)
//! goes through
//! these helpers so a malformed value fails **loudly** with the variable
//! name and the expected shape, instead of each binary hand-rolling a
//! slightly different `std::env::var` dance with silently divergent error
//! behavior.
//!
//! Policy: an *unset* variable falls back to the caller's default; a *set
//! but malformed* variable panics. A set-but-empty (or all-whitespace)
//! value is treated as unset, so `FA_TRACE= cargo run ...` behaves like
//! omitting the variable.

use fa_trace::{parse_check_setting, parse_model_setting, parse_trace_setting, CheckMode, MemModel, TraceMode};
use std::time::Duration;

/// The value of `name`, trimmed; `None` when unset or blank.
pub fn var(name: &str) -> Option<String> {
    match std::env::var(name) {
        Ok(v) => {
            let v = v.trim();
            if v.is_empty() {
                None
            } else {
                Some(v.to_string())
            }
        }
        Err(_) => None,
    }
}

/// `name` parsed as a `u64`, or `default` when unset.
///
/// # Panics
///
/// Panics when the variable is set but not a non-negative integer.
pub fn u64_or(name: &str, default: u64) -> u64 {
    match var(name) {
        None => default,
        Some(v) => v
            .parse()
            .unwrap_or_else(|e| panic!("{name}: invalid value {v:?}: {e} (expected an integer)")),
    }
}

/// `name` parsed as a `usize`, or `default` when unset.
///
/// # Panics
///
/// Panics when the variable is set but not a non-negative integer.
pub fn usize_or(name: &str, default: usize) -> usize {
    match var(name) {
        None => default,
        Some(v) => v
            .parse()
            .unwrap_or_else(|e| panic!("{name}: invalid value {v:?}: {e} (expected an integer)")),
    }
}

/// `name` parsed as an `f64`, or `default` when unset.
///
/// # Panics
///
/// Panics when the variable is set but not a number.
pub fn f64_or(name: &str, default: f64) -> f64 {
    match var(name) {
        None => default,
        Some(v) => v
            .parse()
            .unwrap_or_else(|e| panic!("{name}: invalid value {v:?}: {e} (expected a number)")),
    }
}

/// `name` split on commas into trimmed, non-empty items; `None` when unset
/// or blank. The caller validates the item names (so its error can list the
/// legal ones).
pub fn list(name: &str) -> Option<Vec<String>> {
    var(name).map(|v| {
        v.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect()
    })
}

/// The interconnect selection from `FA_NOC`: `ideal` (default),
/// `contended`, or `contended:<bw>`.
///
/// # Panics
///
/// Panics on any other value.
pub fn noc_config() -> fa_mem::NocConfig {
    match var("FA_NOC") {
        None => fa_mem::NocConfig::default(),
        Some(v) => parse_noc(&v)
            .unwrap_or_else(|| panic!("FA_NOC: invalid value {v:?} (expected `ideal`, `contended`, or `contended:<bw>`)")),
    }
}

/// Parses one interconnect spec (the `FA_NOC` grammar).
pub fn parse_noc(v: &str) -> Option<fa_mem::NocConfig> {
    match v {
        "ideal" => Some(fa_mem::NocConfig::default()),
        "contended" => Some(fa_mem::NocConfig::contended(2)),
        other => {
            let bw = other.strip_prefix("contended:")?;
            Some(fa_mem::NocConfig::contended(bw.parse().ok()?))
        }
    }
}

/// The trace setting from `FA_TRACE`: `off` (default), `flight`, `full`,
/// or `full:<path>` — mode plus the optional export path.
///
/// # Panics
///
/// Panics on a malformed value, naming the legal grammar.
pub fn trace_setting() -> (TraceMode, Option<String>) {
    match var("FA_TRACE") {
        None => (TraceMode::Off, None),
        Some(v) => {
            parse_trace_setting(&v).unwrap_or_else(|e| panic!("FA_TRACE: {e}"))
        }
    }
}

/// The conformance-check setting from `FA_CHECK`: `off` (default) or
/// `tso`.
///
/// # Panics
///
/// Panics on a malformed value, naming the legal grammar.
pub fn check_setting() -> CheckMode {
    check_setting_or(CheckMode::Off)
}

/// [`check_setting`] with a caller-chosen default for when `FA_CHECK` is
/// unset (the fuzzer and conformance bins default to `tso`).
///
/// # Panics
///
/// Panics on a malformed value, naming the legal grammar.
pub fn check_setting_or(default: CheckMode) -> CheckMode {
    match var("FA_CHECK") {
        None => default,
        Some(v) => parse_check_setting(&v).unwrap_or_else(|e| panic!("FA_CHECK: {e}")),
    }
}

/// The memory-model selection from `FA_MODEL`: `tso` (default) or `weak`.
///
/// # Panics
///
/// Panics on a malformed value, naming the legal grammar.
pub fn model_setting() -> MemModel {
    match var("FA_MODEL") {
        None => MemModel::default(),
        Some(v) => parse_model_setting(&v).unwrap_or_else(|e| panic!("FA_MODEL: {e}")),
    }
}

/// Supervised-cell retry count from `FA_RETRIES` (default 1: one initial
/// attempt plus one retry before quarantine).
///
/// # Panics
///
/// Panics when the variable is set but not a non-negative integer.
pub fn retries() -> u32 {
    match var("FA_RETRIES") {
        None => 1,
        Some(v) => v.parse().unwrap_or_else(|e| {
            panic!("FA_RETRIES: invalid value {v:?}: {e} (expected a non-negative integer)")
        }),
    }
}

/// Per-cell budget parsed from `FA_CELL_BUDGET`: a simulated-cycle cap and
/// an optional wall-clock watchdog. Both default to "no override".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CellBudget {
    /// Simulated-cycle cap per run (overrides the methodology's
    /// `max_cycles` when set).
    pub max_cycles: Option<u64>,
    /// Wall-clock watchdog per cell attempt
    /// (armed via [`crate::machine::set_wall_deadline`]).
    pub wall: Option<Duration>,
}

/// Parses one `FA_CELL_BUDGET` spec: `<cycles>` or `<cycles>:<wall_secs>`,
/// both strictly positive.
pub fn parse_cell_budget(v: &str) -> Option<CellBudget> {
    let (cycles, wall) = match v.split_once(':') {
        Some((c, w)) => (c, Some(w)),
        None => (v, None),
    };
    let max_cycles: u64 = cycles.parse().ok()?;
    if max_cycles == 0 {
        return None;
    }
    let wall = match wall {
        Some(w) => {
            let secs: u64 = w.parse().ok()?;
            if secs == 0 {
                return None;
            }
            Some(Duration::from_secs(secs))
        }
        None => None,
    };
    Some(CellBudget { max_cycles: Some(max_cycles), wall })
}

/// The per-cell budget from `FA_CELL_BUDGET`: `<cycles>` or
/// `<cycles>:<wall_secs>`. Unset = no override (the methodology's
/// `max_cycles` stands, no wall watchdog).
///
/// # Panics
///
/// Panics on a malformed value, naming the legal grammar.
pub fn cell_budget() -> CellBudget {
    match var("FA_CELL_BUDGET") {
        None => CellBudget::default(),
        Some(v) => parse_cell_budget(&v).unwrap_or_else(|| {
            panic!(
                "FA_CELL_BUDGET: invalid value {v:?} (expected `<cycles>` or \
                 `<cycles>:<wall_secs>`, both positive integers)"
            )
        }),
    }
}

/// The checkpoint journal path from `FA_CHECKPOINT` (`None` = no
/// checkpointing). Any non-blank string is a valid path.
pub fn checkpoint() -> Option<String> {
    var("FA_CHECKPOINT")
}

/// The baseline sweep report for the differential bottleneck report
/// (`FA_REPORT_BASELINE`): the path of a previously written
/// `BENCH_sweep.json` to diff the current one against. Any non-blank
/// string is a valid path; `None` means no baseline was named, which the
/// `report` bin treats as a configuration error (it has nothing to diff
/// without one, unless a positional baseline argument is given).
pub fn report_baseline() -> Option<String> {
    var("FA_REPORT_BASELINE")
}

/// Parses one `FA_PROGRESS` spec: `off`, `on` (default thresholds), or
/// `on:<n>` — escalation on with both the core-commit stall threshold and
/// the per-site retry threshold tightened to `n` cycles/attempts (the NoC
/// backlog threshold keeps its default: it counts events, not cycles).
pub fn parse_progress(v: &str) -> Option<fa_mem::ProgressConfig> {
    match v {
        "off" => Some(fa_mem::ProgressConfig::off()),
        "on" => Some(fa_mem::ProgressConfig::default()),
        other => {
            let n: u64 = other.strip_prefix("on:")?.parse().ok()?;
            if n == 0 {
                return None;
            }
            Some(fa_mem::ProgressConfig {
                enabled: true,
                stall_cycles: n,
                max_attempts: n,
                ..fa_mem::ProgressConfig::default()
            })
        }
    }
}

/// The forward-progress escalation setting from `FA_PROGRESS`: `off`,
/// `on` (the default), or `on:<stall_cycles>`.
///
/// # Panics
///
/// Panics on a malformed value, naming the legal grammar.
pub fn progress_setting() -> fa_mem::ProgressConfig {
    match var("FA_PROGRESS") {
        None => fa_mem::ProgressConfig::default(),
        Some(v) => parse_progress(&v).unwrap_or_else(|| {
            panic!(
                "FA_PROGRESS: invalid value {v:?} (expected `off`, `on`, or \
                 `on:<stall_cycles>` with a positive integer)"
            )
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test uses a variable name nothing else reads, so parallel test
    // execution cannot race on the process environment.

    #[test]
    fn unset_and_blank_fall_back() {
        assert_eq!(u64_or("FA_TEST_ENV_UNSET", 7), 7);
        std::env::set_var("FA_TEST_ENV_BLANK", "   ");
        assert_eq!(usize_or("FA_TEST_ENV_BLANK", 3), 3);
        assert!(var("FA_TEST_ENV_BLANK").is_none());
    }

    #[test]
    fn set_values_parse_with_trimming() {
        std::env::set_var("FA_TEST_ENV_U64", " 42 ");
        assert_eq!(u64_or("FA_TEST_ENV_U64", 0), 42);
        std::env::set_var("FA_TEST_ENV_F64", "1.5");
        assert!((f64_or("FA_TEST_ENV_F64", 0.0) - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "FA_TEST_ENV_BAD")]
    fn malformed_values_panic_loudly() {
        std::env::set_var("FA_TEST_ENV_BAD", "not-a-number");
        u64_or("FA_TEST_ENV_BAD", 0);
    }

    #[test]
    fn lists_split_and_trim() {
        std::env::set_var("FA_TEST_ENV_LIST", "a, b ,,c");
        assert_eq!(
            list("FA_TEST_ENV_LIST").unwrap(),
            vec!["a".to_string(), "b".to_string(), "c".to_string()]
        );
        assert!(list("FA_TEST_ENV_LIST_UNSET").is_none());
    }

    #[test]
    fn noc_grammar() {
        assert_eq!(parse_noc("ideal"), Some(fa_mem::NocConfig::default()));
        assert_eq!(parse_noc("contended"), Some(fa_mem::NocConfig::contended(2)));
        assert_eq!(parse_noc("contended:4"), Some(fa_mem::NocConfig::contended(4)));
        assert_eq!(parse_noc("mesh"), None);
        assert_eq!(parse_noc("contended:x"), None);
    }

    #[test]
    fn check_grammar_via_env() {
        std::env::set_var("FA_TEST_ENV_CHECK", " tso ");
        let v = var("FA_TEST_ENV_CHECK").unwrap();
        assert_eq!(parse_check_setting(&v), Ok(CheckMode::Tso));
        assert!(parse_check_setting("strong").is_err());
    }

    #[test]
    fn model_grammar_via_env() {
        assert_eq!(model_setting(), MemModel::Tso, "unset FA_MODEL defaults to tso");
        std::env::set_var("FA_TEST_ENV_MODEL", " weak ");
        let v = var("FA_TEST_ENV_MODEL").unwrap();
        assert_eq!(parse_model_setting(&v), Ok(MemModel::Weak));
        assert_eq!(parse_model_setting("tso"), Ok(MemModel::Tso));
        assert!(parse_model_setting("sc").is_err());
    }

    #[test]
    fn cell_budget_grammar() {
        assert_eq!(
            parse_cell_budget("5000000"),
            Some(CellBudget { max_cycles: Some(5_000_000), wall: None })
        );
        assert_eq!(
            parse_cell_budget("1000:30"),
            Some(CellBudget { max_cycles: Some(1000), wall: Some(Duration::from_secs(30)) })
        );
        assert_eq!(parse_cell_budget("0"), None, "zero-cycle budget is malformed");
        assert_eq!(parse_cell_budget("1000:0"), None, "zero-second watchdog is malformed");
        assert_eq!(parse_cell_budget("fast"), None);
        assert_eq!(parse_cell_budget("1000:30:9"), None);
    }

    #[test]
    fn progress_grammar() {
        assert_eq!(parse_progress("off"), Some(fa_mem::ProgressConfig::off()));
        assert_eq!(parse_progress("on"), Some(fa_mem::ProgressConfig::default()));
        let tight = parse_progress("on:50000").unwrap();
        assert!(tight.enabled);
        assert_eq!(tight.stall_cycles, 50_000);
        assert_eq!(tight.max_attempts, 50_000);
        assert_eq!(
            tight.max_backlog,
            fa_mem::ProgressConfig::default().max_backlog,
            "backlog threshold counts events, not cycles — untouched by on:<n>"
        );
        assert_eq!(parse_progress("on:0"), None);
        assert_eq!(parse_progress("always"), None);
    }

    #[test]
    fn retries_and_checkpoint_via_env() {
        assert_eq!(retries(), 1, "default is one retry");
        std::env::set_var("FA_TEST_ENV_CKPT", "  /tmp/journal  ");
        assert_eq!(var("FA_TEST_ENV_CKPT").as_deref(), Some("/tmp/journal"));
    }

    #[test]
    fn report_baseline_reads_fa_report_baseline() {
        // No other test touches this variable, so the sequence is safe
        // under parallel test execution.
        assert_eq!(report_baseline(), None);
        std::env::set_var("FA_REPORT_BASELINE", "  base.json  ");
        assert_eq!(report_baseline().as_deref(), Some("base.json"));
        std::env::remove_var("FA_REPORT_BASELINE");
    }

    #[test]
    fn trace_grammar_via_env() {
        std::env::set_var("FA_TEST_ENV_TRACE", "full:/tmp/t.json");
        let v = var("FA_TEST_ENV_TRACE").unwrap();
        assert_eq!(
            parse_trace_setting(&v).unwrap(),
            (TraceMode::Full, Some("/tmp/t.json".to_string()))
        );
    }
}
