//! The multicore machine: N cores + one memory system, one cycle loop.

use crate::axiom::{self, Execution};
use crate::error::SimError;
use fa_core::{Core, CoreConfig, CoreDiag, CoreStats};
use fa_isa::interp::GuestMem;
use fa_isa::Program;
use fa_mem::{AuditViolation, CoreId, MemConfig, MemDiag, MemStats, MemorySystem};
use fa_trace::{chrome_trace, CheckMode, FlightEntry, MemModel, TraceMode, TraceRecord};
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::fmt;
use std::time::{Duration, Instant};

/// Events per component kept in a snapshot's flight-recorder tail.
const FLIGHT_TAIL: usize = 8;

thread_local! {
    /// The wall-clock deadline armed for [`Machine::run`] calls on this
    /// thread: `(deadline, budget_ms)`. Thread-local so concurrent sweep
    /// workers each carry their own cell budget.
    static WALL_DEADLINE: Cell<Option<(Instant, u64)>> = const { Cell::new(None) };
}

/// Arms (or with `None`, disarms) a wall-clock watchdog for subsequent
/// [`Machine::run`] calls on *this thread*. When the deadline passes
/// mid-run, the run aborts with [`SimError::WallTimeout`] carrying a full
/// machine snapshot. The supervised sweep runner arms this per cell
/// attempt from `FA_CELL_BUDGET`; it is sampled every few thousand loop
/// iterations, so enforcement granularity is microseconds, not cycles.
pub fn set_wall_deadline(budget: Option<Duration>) {
    WALL_DEADLINE.with(|d| {
        d.set(budget.map(|b| (Instant::now() + b, b.as_millis() as u64)));
    });
}

/// The armed budget in milliseconds, when the deadline has passed.
fn wall_deadline_expired() -> Option<u64> {
    WALL_DEADLINE
        .with(Cell::get)
        .and_then(|(at, ms)| (Instant::now() >= at).then_some(ms))
}

/// Machine-level configuration: one core config (homogeneous) + the memory
/// hierarchy.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[derive(Default)]
pub struct MachineConfig {
    /// Core parameters (shared by every core).
    pub core: CoreConfig,
    /// Memory-hierarchy parameters.
    pub mem: MemConfig,
}

impl MachineConfig {
    /// Returns a copy with the given trace mode applied to both the core
    /// and memory layers (they are always configured together).
    pub fn with_trace(mut self, mode: TraceMode) -> MachineConfig {
        self.core.trace.mode = mode;
        self.mem.trace.mode = mode;
        self
    }

    /// Returns a copy with the given conformance-check mode applied to
    /// both the core and memory layers (the checker needs both the
    /// per-core data events and the serialization log, so the two are
    /// always configured together).
    pub fn with_check(mut self, mode: CheckMode) -> MachineConfig {
        self.core.check = mode;
        self.mem.check = mode;
        self
    }

    /// Returns a copy with the given memory model on every core. The
    /// axiomatic checker (when enabled) follows the same model.
    pub fn with_model(mut self, model: MemModel) -> MachineConfig {
        self.core.model = model;
        self
    }
}


/// A point-in-time snapshot of the whole machine, attached to errors so a
/// hang names the stuck micro-ops and locked lines instead of dying silent.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineSnapshot {
    /// Cycle the snapshot was taken.
    pub cycle: u64,
    /// Per-core pipeline state, indexed by core id.
    pub cores: Vec<CoreDiag>,
    /// Memory-system state (locked lines, busy directory entries, stalled
    /// fills, in-flight events).
    pub mem: MemDiag,
    /// Flight-recorder tail: the last few structured trace events per
    /// component, in `(cycle, seq)` order. Empty when tracing is off.
    pub trace_tail: Vec<FlightEntry>,
}

impl fmt::Display for MachineSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "machine state at cycle {}:", self.cycle)?;
        for (i, c) in self.cores.iter().enumerate() {
            writeln!(f, "  c{i}: {c}")?;
        }
        write!(f, "{}", self.mem)?;
        if !self.trace_tail.is_empty() {
            write!(f, "\n  flight recorder tail ({} events):", self.trace_tail.len())?;
            for e in &self.trace_tail {
                write!(f, "\n    {e}")?;
            }
        }
        Ok(())
    }
}

/// The run exceeded its cycle budget without quiescing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunTimeout {
    /// Budget that was exhausted.
    pub max_cycles: u64,
    /// Cores that had halted by then.
    pub halted: usize,
    /// Total cores.
    pub cores: usize,
    /// Machine state at the moment the budget ran out.
    pub snapshot: MachineSnapshot,
}

impl fmt::Display for RunTimeout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "machine did not quiesce within {} cycles ({}/{} cores halted)\n{}",
            self.max_cycles, self.halted, self.cores, self.snapshot
        )
    }
}

impl std::error::Error for RunTimeout {}

/// Results of a completed run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunResult {
    /// Cycle at which the machine quiesced (execution time).
    pub cycles: u64,
    /// Per-core statistics.
    pub per_core: Vec<CoreStats>,
    /// Memory-system statistics.
    pub mem: MemStats,
}

impl RunResult {
    /// Roll-up of the per-core statistics (cycles = max across cores; the
    /// rest summed).
    pub fn aggregate(&self) -> CoreStats {
        let mut agg = CoreStats::default();
        for c in &self.per_core {
            agg.merge(c);
        }
        agg
    }

    /// Total committed instructions.
    pub fn instructions(&self) -> u64 {
        self.per_core.iter().map(|c| c.instructions).sum()
    }

    /// Committed atomics per kilo-instruction across the machine
    /// (Figure 12).
    pub fn apki(&self) -> f64 {
        let instrs = self.instructions();
        if instrs == 0 {
            return 0.0;
        }
        let atomics: u64 = self.per_core.iter().map(|c| c.atomics).sum();
        atomics as f64 * 1000.0 / instrs as f64
    }
}

/// A multicore machine ready to run one workload.
pub struct Machine {
    mem: MemorySystem,
    cores: Vec<Core>,
    start_offsets: Vec<u64>,
    now: u64,
    /// Memory model the cores run under — the axiomatic checker follows it.
    model: MemModel,
    /// Idle-skip / fast-forward optimizations (on by default; switched off
    /// only by differential tests proving they preserve results).
    fast_paths: bool,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("cores", &self.cores.len())
            .field("now", &self.now)
            .finish()
    }
}

impl Machine {
    /// Builds a machine with one core per program over `guest_mem`.
    pub fn new(mut cfg: MachineConfig, programs: Vec<Program>, guest_mem: GuestMem) -> Machine {
        let n = programs.len();
        assert!(n > 0, "at least one program required");
        // The conformance checker needs *both* the per-core data events
        // and the memory system's serialization log; if a caller set only
        // one side, enable both (a half-collected execution would raise
        // false co-wf violations).
        if cfg.core.check.on() || cfg.mem.check.on() {
            cfg = cfg.with_check(CheckMode::Tso);
        }
        let mem_bytes = guest_mem.size();
        let mem = MemorySystem::new(cfg.mem.clone(), n, guest_mem);
        let cores = programs
            .into_iter()
            .enumerate()
            .map(|(i, p)| Core::new(CoreId(i as u16), cfg.core.clone(), p, mem_bytes))
            .collect();
        let model = cfg.core.model;
        Machine { mem, cores, start_offsets: vec![0; n], now: 0, model, fast_paths: true }
    }

    /// Disables (or re-enables) the cycle-loop fast paths — skipping
    /// halted/sleeping cores and fast-forwarding over all-quiescent spans.
    /// The fast paths are semantics-preserving (bit-identical results and
    /// statistics); this switch exists so differential tests can prove it.
    pub fn set_fast_paths(&mut self, on: bool) {
        self.fast_paths = on;
    }

    /// Delays each core's first cycle by the given offset — the analogue of
    /// the paper's "randomized sleep timer to alter the architectural
    /// state" (§5.1).
    pub fn set_start_offsets(&mut self, offsets: Vec<u64>) {
        assert_eq!(offsets.len(), self.cores.len());
        self.start_offsets = offsets;
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Guest memory (to inspect results).
    pub fn guest_mem(&self) -> &GuestMem {
        self.mem.backing()
    }

    /// Guest memory for pre-run initialization.
    pub fn guest_mem_mut(&mut self) -> &mut GuestMem {
        self.mem.backing_mut()
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// True once every core has halted and every buffered store has
    /// performed.
    pub fn quiesced(&self) -> bool {
        self.cores.iter().all(|c| c.halted() && c.sb_len() == 0)
    }

    /// True when ticking `c` this cycle would change nothing but idle
    /// accounting: the core is halted or MonitorWait-sleeping with an empty
    /// store buffer, no responses or notices are queued for it, and a
    /// sleeper's monitor timeout has not come due.
    fn core_skippable(c: &Core, mem: &MemorySystem, now: u64) -> bool {
        c.idle_skippable()
            && !mem.has_core_traffic(c.id())
            && c.wake_at().map(|w| now < w).unwrap_or(true)
    }

    /// Advances one cycle. With the fast paths on, cores whose tick would
    /// be a no-op (halted, or asleep with nothing pending) are skipped;
    /// skipped sleep cycles are credited so statistics stay bit-identical
    /// to the always-tick loop.
    pub fn tick(&mut self) {
        self.now += 1;
        self.mem.tick();
        for c in self.cores.iter_mut() {
            let idx = c.id().index();
            if self.now <= self.start_offsets[idx] {
                continue;
            }
            if self.fast_paths && Self::core_skippable(c, &self.mem, self.now) {
                if c.sleeping() {
                    c.credit_idle_cycles(1);
                }
                continue;
            }
            c.tick(self.now, &mut self.mem);
        }
    }

    /// When every core is quiescent-waiting (halted and drained, asleep
    /// with nothing pending, or not yet past its start offset) and the
    /// memory system is a pure clock between events (the interconnect
    /// reports [`fast_forwardable`](fa_mem::MemorySystem::fast_forwardable)
    /// — both crossbars price contention at send time, so in-flight
    /// messages need no per-cycle work), jumps `now` to one cycle before
    /// the earliest thing that can happen — the next interconnect
    /// delivery, the earliest monitor timeout, the next core start, or
    /// the cycle budget — so the following [`Machine::tick`] lands
    /// exactly there. A no-op whenever any core is active.
    fn try_fast_forward(&mut self, max_cycles: u64) {
        if !self.mem.fast_forwardable() {
            return;
        }
        let mut target = max_cycles;
        for (i, c) in self.cores.iter().enumerate() {
            if self.now <= self.start_offsets[i] {
                // First tick happens at offset + 1.
                target = target.min(self.start_offsets[i] + 1);
            } else if Self::core_skippable(c, &self.mem, self.now) {
                if let Some(wake_at) = c.wake_at() {
                    target = target.min(wake_at);
                }
            } else {
                return;
            }
        }
        if let Some(at) = self.mem.next_event_at() {
            target = target.min(at);
        }
        if target <= self.now + 1 {
            return;
        }
        let skipped = target - 1 - self.now;
        self.mem.skip_to(target - 1);
        for (i, c) in self.cores.iter_mut().enumerate() {
            if self.now > self.start_offsets[i] && c.sleeping() {
                c.credit_idle_cycles(skipped);
            }
        }
        self.now = target - 1;
    }

    /// The collected execution — per-core committed data events plus the
    /// coherence layer's write-serialization log — for the axiomatic
    /// checker. Empty unless the machine was built with
    /// [`CheckMode::Tso`].
    pub fn execution(&self) -> Execution {
        Execution {
            cores: self.cores.iter().map(|c| c.data_events().to_vec()).collect(),
            ser: self.mem.ser_events().to_vec(),
        }
    }

    /// Runs the axiomatic TSO + RMW-atomicity checker over an execution,
    /// wrapping any violation in a [`SimError::Tso`] that carries the
    /// machine snapshot (with the flight-recorder tail when tracing is
    /// on). Public so injection tests can corrupt an execution and prove
    /// the checker is not vacuous.
    // The Err variant carries a full diagnostic snapshot by design; it is
    // built once on the cold failure path.
    #[allow(clippy::result_large_err)]
    pub fn check_execution(&self, x: &Execution) -> Result<(), SimError> {
        match axiom::check_model(x, self.model) {
            Ok(_) => Ok(()),
            Err(v) => Err(SimError::Tso {
                axiom: v.axiom,
                detail: v.detail,
                snapshot: self.snapshot(),
            }),
        }
    }

    /// Snapshot of the whole machine for diagnostics.
    pub fn snapshot(&self) -> MachineSnapshot {
        let mut tail: Vec<FlightEntry> = Vec::new();
        for (comp, records) in self.trace_events_tail(FLIGHT_TAIL) {
            tail.extend(records.into_iter().map(|r| FlightEntry {
                comp: comp.clone(),
                cycle: r.cycle,
                seq: r.seq,
                ev: r.ev,
            }));
        }
        // Global order: time first; the per-component sequence and the
        // component name break same-cycle ties deterministically.
        tail.sort_by(|a, b| {
            (a.cycle, a.seq, &a.comp).cmp(&(b.cycle, b.seq, &b.comp))
        });
        MachineSnapshot {
            cycle: self.now,
            cores: self.cores.iter().map(|c| c.diag()).collect(),
            mem: self.mem.diag(),
            trace_tail: tail,
        }
    }

    /// Every non-empty trace ring in a stable component order: cores
    /// (`core{i}`), then the memory system's components (`l1c{i}`, `dir`,
    /// `noc`). Empty when tracing is off.
    pub fn trace_events(&self) -> Vec<(String, Vec<TraceRecord>)> {
        let mut out = Vec::new();
        for (i, c) in self.cores.iter().enumerate() {
            let records = c.trace_records();
            if !records.is_empty() {
                out.push((format!("core{i}"), records));
            }
        }
        out.extend(self.mem.trace_events());
        out
    }

    /// Like [`trace_events`](Self::trace_events) but keeping only the last
    /// `n` records per component.
    fn trace_events_tail(&self, n: usize) -> Vec<(String, Vec<TraceRecord>)> {
        let mut out = Vec::new();
        for (i, c) in self.cores.iter().enumerate() {
            let records = c.trace_tail(n);
            if !records.is_empty() {
                out.push((format!("core{i}"), records));
            }
        }
        out.extend(self.mem.trace_tails(n));
        out
    }

    /// The recorded trace as Chrome-trace/Perfetto JSON (load it at
    /// `ui.perfetto.dev` or `chrome://tracing`). Contains only metadata
    /// when tracing is off.
    pub fn perfetto_trace(&self) -> String {
        chrome_trace(&self.trace_events())
    }

    /// Runs until quiescence.
    ///
    /// When `MemConfig::audit` is enabled, the invariant auditor sweeps the
    /// machine every `audit.sweep_every` cycles (default: every cycle) and
    /// every core is held to the forward-progress bound (`max_core_stall`
    /// cycles without a commit while unhalted and awake, checked every
    /// cycle), converting silent livelock into [`SimError::Audit`].
    /// Audited runs never fast-forward, so the sweep cadence is exact.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Timeout`] if the machine does not quiesce within
    /// `max_cycles` — with the deadlock-avoidance watchdog active this
    /// indicates either an undersized budget or a genuine forward-progress
    /// bug, which is exactly what the deadlock test suite looks for — and
    /// [`SimError::Audit`] on an invariant violation. With
    /// `MemConfig::progress` escalation enabled (the default), a wedged
    /// retry site or a core that stops committing raises
    /// [`SimError::NoProgress`] long before the cycle budget burns down,
    /// and an armed [`set_wall_deadline`] raises [`SimError::WallTimeout`].
    /// All carry a [`MachineSnapshot`].
    // The Err variant carries a full diagnostic snapshot by design; it is
    // built once on the cold failure path, never per cycle.
    #[allow(clippy::result_large_err)]
    pub fn run(&mut self, max_cycles: u64) -> Result<RunResult, SimError> {
        let audit_on = self.mem.config().audit.enabled;
        let max_stall = self.mem.config().audit.max_core_stall;
        let sweep_every = self.mem.config().audit.sweep_every.max(1);
        let prog = self.mem.config().progress;
        // (instructions, cycle) at each core's last observed commit.
        let mut progress: Vec<(u64, u64)> =
            self.cores.iter().map(|c| (c.stats.instructions, self.now)).collect();
        let mut iters: u64 = 0;
        while self.now < max_cycles {
            // Fast-forward only outside audited runs: the auditor's sweep
            // cadence and forward-progress bookkeeping observe every cycle.
            let before = self.now;
            if self.fast_paths && !audit_on {
                self.try_fast_forward(max_cycles);
            }
            self.tick();
            iters += 1;
            if audit_on {
                if self.now.is_multiple_of(sweep_every) {
                    if let Err(violation) = self.mem.audit() {
                        return Err(SimError::Audit {
                            cycle: self.now,
                            violation,
                            snapshot: self.snapshot(),
                        });
                    }
                }
                for (i, c) in self.cores.iter().enumerate() {
                    if c.halted() || c.sleeping() || c.stats.instructions != progress[i].0 {
                        progress[i] = (c.stats.instructions, self.now);
                    } else if self.now > self.start_offsets[i]
                        && self.now - progress[i].1 > max_stall
                    {
                        return Err(SimError::Audit {
                            cycle: self.now,
                            violation: AuditViolation::NoProgress {
                                core: CoreId(i as u16),
                                stalled_for: self.now - progress[i].1,
                                committed: c.stats.instructions,
                            },
                            snapshot: self.snapshot(),
                        });
                    }
                }
            } else if prog.enabled {
                // Site `core-commit`: the audit bookkeeping, with the
                // escalation threshold from the (always-on) progress
                // config. A fast-forwarded span proves every core was
                // quiescent across it, so it resets the stall baselines —
                // wedged cores spin awake and are never skipped.
                if self.now > before + 1 {
                    for p in progress.iter_mut() {
                        p.1 = self.now;
                    }
                }
                for (i, c) in self.cores.iter().enumerate() {
                    if c.halted() || c.sleeping() || c.stats.instructions != progress[i].0 {
                        progress[i] = (c.stats.instructions, self.now);
                    } else if self.now > self.start_offsets[i]
                        && self.now - progress[i].1 > prog.stall_cycles
                    {
                        return Err(SimError::NoProgress {
                            site: "core-commit",
                            observed: self.now - progress[i].1,
                            threshold: prog.stall_cycles,
                            snapshot: self.snapshot(),
                        });
                    }
                }
            }
            // Memory-side progress sites and the wall-clock watchdog are
            // polled on iteration cadences (pure reads — cheap enough to
            // leave always-on without perturbing anything).
            if prog.enabled && iters.is_multiple_of(1024) {
                if let Some(r) = self.mem.progress_report() {
                    return Err(SimError::NoProgress {
                        site: r.site,
                        observed: r.observed,
                        threshold: r.threshold,
                        snapshot: self.snapshot(),
                    });
                }
            }
            if iters.is_multiple_of(4096) {
                if let Some(budget_ms) = wall_deadline_expired() {
                    return Err(SimError::WallTimeout {
                        budget_ms,
                        snapshot: self.snapshot(),
                    });
                }
            }
            if self.quiesced() {
                for c in self.cores.iter_mut() {
                    c.finalize_stats();
                }
                // Conformance check on the completed execution. Gated on
                // the collected events being non-empty rather than on the
                // config so the gate and the collection can never disagree.
                if self.cores.iter().any(|c| !c.data_events().is_empty()) {
                    self.check_execution(&self.execution())?;
                }
                return Ok(RunResult {
                    cycles: self.now,
                    per_core: self.cores.iter().map(|c| c.stats.clone()).collect(),
                    mem: self.mem.stats(),
                });
            }
        }
        Err(SimError::Timeout(RunTimeout {
            max_cycles,
            halted: self.cores.iter().filter(|c| c.halted()).count(),
            cores: self.cores.len(),
            snapshot: self.snapshot(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_core::AtomicPolicy;
    use fa_isa::{Kasm, Reg};

    fn counter_prog(iters: i64) -> Program {
        let mut k = Kasm::new();
        k.li(Reg::R1, 0x100);
        k.li(Reg::R2, 1);
        k.li(Reg::R3, 0);
        let top = k.here_label();
        k.fetch_add(Reg::R4, Reg::R1, 0, Reg::R2);
        k.addi(Reg::R3, Reg::R3, 1);
        k.blt_imm(Reg::R3, iters, top);
        k.halt();
        k.finish().unwrap()
    }

    #[test]
    fn machine_runs_counter_to_completion() {
        let cfg = MachineConfig::default();
        let mut m = Machine::new(cfg, vec![counter_prog(50); 2], GuestMem::new(1 << 16));
        let r = m.run(2_000_000).expect("quiesce");
        assert_eq!(m.guest_mem().load(0x100), 100);
        assert!(r.cycles > 0);
        assert_eq!(r.instructions(), r.per_core.iter().map(|c| c.instructions).sum::<u64>());
        assert!(r.apki() > 0.0);
    }

    #[test]
    fn start_offsets_shift_execution() {
        let cfg = MachineConfig {
            core: CoreConfig::default().with_policy(AtomicPolicy::FreeFwd),
            ..MachineConfig::default()
        };
        let mut a = Machine::new(cfg.clone(), vec![counter_prog(20); 2], GuestMem::new(1 << 16));
        let ra = a.run(1_000_000).unwrap();
        let mut b = Machine::new(cfg, vec![counter_prog(20); 2], GuestMem::new(1 << 16));
        b.set_start_offsets(vec![0, 500]);
        let rb = b.run(1_000_000).unwrap();
        assert_eq!(b.guest_mem().load(0x100), 40);
        assert!(rb.cycles >= ra.cycles, "offset run cannot be faster");
    }

    #[test]
    fn timeout_reports_progress_and_snapshot() {
        // A spin that never ends: thread 0 waits on a flag nobody sets.
        let mut k = Kasm::new();
        k.li(Reg::R1, 0x200);
        let top = k.here_label();
        k.ld(Reg::R2, Reg::R1, 0);
        k.beq_imm(Reg::R2, 0, top);
        k.halt();
        let spin = k.finish().unwrap();
        let mut m = Machine::new(MachineConfig::default(), vec![spin], GuestMem::new(1 << 12));
        let err = m.run(10_000).unwrap_err();
        let SimError::Timeout(t) = err else { panic!("expected timeout, got {err:?}") };
        assert_eq!(t.halted, 0);
        assert_eq!(t.cores, 1);
        assert!(t.to_string().contains("did not quiesce"));
        // The diagnostic snapshot names the spinning core's state.
        assert_eq!(t.snapshot.cycle, 10_000);
        assert_eq!(t.snapshot.cores.len(), 1);
        assert!(!t.snapshot.cores[0].halted);
        assert!(t.snapshot.cores[0].committed > 0, "the spin commits instructions");
        assert!(t.to_string().contains("machine state at cycle"));
    }

    #[test]
    fn progress_audit_flags_commitless_livelock() {
        // The same endless spin, but with the forward-progress bound tight
        // enough to trip on the *load round-trips* never advancing past the
        // branch: commits do happen here, so instead use a deadlock shape —
        // one core's atomic spins on a line the test never unlocks. Simplest
        // reliable shape: a tiny max_core_stall that even a legal memory
        // round-trip exceeds, proving the bound converts a stall into a
        // structured report naming the core.
        let mut k = Kasm::new();
        k.li(Reg::R1, 0x200);
        let top = k.here_label();
        k.ld(Reg::R2, Reg::R1, 0);
        k.beq_imm(Reg::R2, 0, top);
        k.halt();
        let spin = k.finish().unwrap();
        let mut cfg = MachineConfig::default();
        cfg.mem.audit =
            fa_mem::AuditConfig { enabled: true, max_core_stall: 2, ..fa_mem::AuditConfig::on() };
        let mut m = Machine::new(cfg, vec![spin], GuestMem::new(1 << 12));
        let err = m.run(100_000).unwrap_err();
        match err {
            SimError::Audit {
                violation: AuditViolation::NoProgress { core: CoreId(0), stalled_for, .. },
                ..
            } => assert!(stalled_for > 2),
            other => panic!("expected NoProgress, got {other:?}"),
        }
    }

    /// A two-core kernel with long quiescent-wait spans: core 0 sleeps in
    /// MonitorWait on a flag line until its monitor timeout or until core 1
    /// (delayed by a start offset) finally writes it, then both count.
    fn sleepy_pair() -> Vec<Program> {
        let mut waiter = Kasm::new();
        waiter.li(Reg::R1, 0x200);
        let top = waiter.here_label();
        waiter.monitor_wait(Reg::R1, 0);
        waiter.ld(Reg::R2, Reg::R1, 0);
        waiter.beq_imm(Reg::R2, 0, top);
        waiter.halt();
        let mut setter = Kasm::new();
        setter.li(Reg::R1, 0x200);
        setter.li(Reg::R2, 1);
        setter.st(Reg::R2, Reg::R1, 0);
        setter.halt();
        vec![waiter.finish().unwrap(), setter.finish().unwrap()]
    }

    /// Runs `programs` with the given offsets, fast paths on or off, and
    /// returns the full result plus the flag value.
    fn run_pair(fast: bool, offsets: Vec<u64>) -> (RunResult, fa_isa::Word) {
        let mut m =
            Machine::new(MachineConfig::default(), sleepy_pair(), GuestMem::new(1 << 12));
        m.set_fast_paths(fast);
        m.set_start_offsets(offsets);
        let r = m.run(2_000_000).expect("quiesce");
        (r, m.guest_mem().load(0x200))
    }

    #[test]
    fn fast_paths_preserve_results_bitwise() {
        // The setter starts 20k cycles late, so the waiter cycles through
        // several full MonitorWait sleep periods — exactly the span the
        // idle-skip and fast-forward paths elide.
        for offsets in [vec![0, 20_000], vec![0, 0], vec![300, 0]] {
            let (slow, slow_flag) = run_pair(false, offsets.clone());
            let (fast, fast_flag) = run_pair(true, offsets.clone());
            assert_eq!(slow.cycles, fast.cycles, "offsets {offsets:?}");
            assert_eq!(slow.per_core, fast.per_core, "offsets {offsets:?}");
            assert_eq!(slow.mem, fast.mem, "offsets {offsets:?}");
            assert_eq!(slow_flag, fast_flag);
            assert_eq!(fast_flag, 1);
        }
    }

    #[test]
    fn fast_paths_skip_sleep_heavy_wall_work() {
        // Not a timing assertion (CI boxes vary) — a structural one: the
        // sleep-heavy run must still account every sleep cycle while the
        // fast loop skips the ticks.
        let (fast, _) = run_pair(true, vec![0, 50_000]);
        let sleep: u64 = fast.per_core.iter().map(|c| c.sleep_cycles).sum();
        assert!(sleep > 10_000, "waiter must have slept through the delay, got {sleep}");
    }

    #[test]
    fn cpi_stack_conserves_cycles_across_policies_and_nocs() {
        // The one-leaf-per-cycle invariant: for every policy, on both
        // crossbars, every core's leaf sum equals its cycle count exactly.
        use fa_trace::CpiLeaf;
        for policy in [
            AtomicPolicy::FencedBaseline,
            AtomicPolicy::FencedSpec,
            AtomicPolicy::Free,
            AtomicPolicy::FreeFwd,
        ] {
            for contended in [false, true] {
                let mut cfg = MachineConfig {
                    core: CoreConfig::default().with_policy(policy),
                    ..MachineConfig::default()
                };
                if contended {
                    cfg.mem.noc = fa_mem::NocConfig::contended(1);
                }
                let mut m =
                    Machine::new(cfg, vec![counter_prog(30); 2], GuestMem::new(1 << 16));
                let r = m.run(2_000_000).expect("quiesce");
                for (i, c) in r.per_core.iter().enumerate() {
                    assert_eq!(
                        c.cpi.total(),
                        c.cycles,
                        "{policy:?} contended={contended} core {i}: leaf sum != cycles"
                    );
                    assert!(
                        c.cpi.get(CpiLeaf::Commit) > 0,
                        "{policy:?} contended={contended} core {i}: no commit cycles?"
                    );
                }
            }
        }
    }

    #[test]
    fn cpi_conservation_holds_through_fast_forwarded_sleep() {
        // Fast-forwarded quiescent spans are credited to the idle leaf; the
        // invariant must hold bit-exactly with the fast paths on and off,
        // including the span the setter's 20k-cycle start offset creates.
        use fa_trace::CpiLeaf;
        for fast in [false, true] {
            let (r, flag) = run_pair(fast, vec![0, 20_000]);
            assert_eq!(flag, 1);
            for (i, c) in r.per_core.iter().enumerate() {
                assert_eq!(c.cpi.total(), c.cycles, "fast={fast} core {i}");
            }
            let idle = r.per_core[0].cpi.get(CpiLeaf::Idle);
            assert!(idle > 10_000, "waiter's sleep span must land on idle, got {idle}");
        }
    }

    #[test]
    fn atomic_latency_split_sums_to_exec_exactly() {
        // acquire + transfer + park + local == exec for committed atomics,
        // by construction (the split is staged on the AQ entry and folded
        // in only at store_unlock drain).
        for policy in [AtomicPolicy::FencedBaseline, AtomicPolicy::Free, AtomicPolicy::FreeFwd]
        {
            let cfg = MachineConfig {
                core: CoreConfig::default().with_policy(policy),
                ..MachineConfig::default()
            };
            let mut m = Machine::new(cfg, vec![counter_prog(50); 2], GuestMem::new(1 << 16));
            let r = m.run(2_000_000).expect("quiesce");
            let mut saw_atomics = false;
            for (i, c) in r.per_core.iter().enumerate() {
                let split = c.atomic_lock_acquire_cycles
                    + c.atomic_xfer_cycles.iter().sum::<u64>()
                    + c.atomic_dir_park_cycles
                    + c.atomic_local_cycles;
                assert_eq!(
                    split, c.atomic_exec_cycles,
                    "{policy:?} core {i}: split must sum to exec"
                );
                saw_atomics |= c.atomic_exec_cycles > 0;
            }
            assert!(saw_atomics, "{policy:?}: counter kernel must execute atomics");
        }
    }

    #[test]
    fn amortized_audit_sweeps_match_per_cycle_results() {
        let mut every = MachineConfig::default();
        every.mem.audit = fa_mem::AuditConfig::on();
        let mut m1 =
            Machine::new(every, vec![counter_prog(40); 2], GuestMem::new(1 << 16));
        let r1 = m1.run(2_000_000).expect("clean run");
        let mut amortized = MachineConfig::default();
        amortized.mem.audit =
            fa_mem::AuditConfig { sweep_every: 64, ..fa_mem::AuditConfig::on() };
        let mut m2 =
            Machine::new(amortized, vec![counter_prog(40); 2], GuestMem::new(1 << 16));
        let r2 = m2.run(2_000_000).expect("clean run");
        assert_eq!(r1.cycles, r2.cycles, "sweep cadence must not perturb execution");
        assert_eq!(r1.per_core, r2.per_core);
        assert!(r2.mem.audit.sweeps > 0);
        assert!(r2.mem.audit.sweeps < r1.mem.audit.sweeps);
    }

    #[test]
    fn tracing_does_not_perturb_results() {
        // The tentpole invariant: FA_TRACE=off|flight|full must produce
        // bit-identical cycles, stats and guest memory — histograms are
        // always-on counters and event recording is strictly passive.
        let run_with = |mode: fa_trace::TraceMode| {
            let cfg = MachineConfig::default().with_trace(mode);
            let mut m = Machine::new(cfg, vec![counter_prog(40); 2], GuestMem::new(1 << 16));
            let r = m.run(2_000_000).expect("quiesce");
            (r, m.guest_mem().load(0x100), m.trace_events())
        };
        let (off, off_mem, off_events) = run_with(fa_trace::TraceMode::Off);
        let (flight, flight_mem, _) = run_with(fa_trace::TraceMode::Flight);
        let (full, full_mem, full_events) = run_with(fa_trace::TraceMode::Full);
        assert_eq!(off.cycles, flight.cycles);
        assert_eq!(off.cycles, full.cycles);
        assert_eq!(off.per_core, flight.per_core);
        assert_eq!(off.per_core, full.per_core);
        assert_eq!(off.mem, flight.mem);
        assert_eq!(off.mem, full.mem);
        assert_eq!(off_mem, flight_mem);
        assert_eq!(off_mem, full_mem);
        // Off records nothing; full records across component classes.
        assert!(off_events.is_empty());
        let comps: Vec<&str> = full_events.iter().map(|(c, _)| c.as_str()).collect();
        assert!(comps.contains(&"core0"), "got components {comps:?}");
        assert!(comps.contains(&"l1c0"), "got components {comps:?}");
        assert!(comps.contains(&"noc"), "got components {comps:?}");
        // The always-on histograms actually populated.
        let agg = full.aggregate();
        assert!(agg.atomic_exec_hist.count > 0, "atomics must record exec latency");
        assert_eq!(agg.atomic_exec_hist, off.aggregate().atomic_exec_hist);
    }

    #[test]
    fn checking_does_not_perturb_results() {
        // The checker's collection invariant: FA_CHECK=off|tso must produce
        // bit-identical cycles, stats and guest memory — event capture is
        // strictly passive, and the check itself runs only after quiescence.
        let run_with = |mode: CheckMode| {
            let cfg = MachineConfig::default().with_check(mode);
            let mut m = Machine::new(cfg, vec![counter_prog(40); 2], GuestMem::new(1 << 16));
            let r = m.run(2_000_000).expect("quiesce");
            let x = m.execution();
            (r, m.guest_mem().load(0x100), x)
        };
        let (off, off_mem, off_x) = run_with(CheckMode::Off);
        let (tso, tso_mem, tso_x) = run_with(CheckMode::Tso);
        assert_eq!(off.cycles, tso.cycles);
        assert_eq!(off.per_core, tso.per_core);
        assert_eq!(off.mem, tso.mem);
        assert_eq!(off_mem, tso_mem);
        // Off collects nothing; tso collects both sides of the execution.
        assert!(off_x.cores.iter().all(|c| c.is_empty()) && off_x.ser.is_empty());
        assert!(tso_x.cores.iter().all(|c| !c.is_empty()));
        assert!(!tso_x.ser.is_empty());
        // And the collected execution passes the checker standalone too.
        crate::axiom::check(&tso_x).expect("counter kernel must conform");
    }

    #[test]
    fn half_configured_check_is_normalized_to_both() {
        // Setting only one side of the check config would collect a
        // half-execution and raise false violations; Machine::new must
        // force both sides on.
        let mut cfg = MachineConfig::default();
        cfg.core.check = CheckMode::Tso;
        let mut m = Machine::new(cfg, vec![counter_prog(5)], GuestMem::new(1 << 16));
        m.run(2_000_000).expect("normalized run must pass the checker");
        let x = m.execution();
        assert!(!x.ser.is_empty(), "mem side must have been switched on");
    }

    #[test]
    fn checked_run_rejects_corrupted_execution() {
        // Machine::check_execution is the injection surface: corrupt one
        // committed store's value and the co-wf axiom must fire, wrapped in
        // a SimError::Tso carrying a snapshot.
        let cfg = MachineConfig::default().with_check(CheckMode::Tso);
        let mut m = Machine::new(cfg, vec![counter_prog(10); 2], GuestMem::new(1 << 16));
        m.run(2_000_000).expect("clean run");
        let mut x = m.execution();
        for ev in x.cores[0].iter_mut() {
            if let fa_trace::DataEvent::StoreUnlock { value, .. } = ev {
                *value += 1;
                break;
            }
        }
        let err = m.check_execution(&x).unwrap_err();
        let SimError::Tso { axiom, .. } = &err else { panic!("expected Tso, got {err:?}") };
        assert!(
            *axiom == "co-wf" || *axiom == "rf-wf",
            "value corruption must trip a well-formedness axiom, got {axiom}"
        );
        assert!(err.snapshot().is_some());
    }

    #[test]
    fn audit_violation_carries_flight_recorder_tail() {
        // An injected audit failure (forward-progress bound tight enough
        // that a legal memory round-trip trips it) must surface the last
        // trace events per component inside the error's snapshot.
        let mut k = Kasm::new();
        k.li(Reg::R1, 0x200);
        let top = k.here_label();
        k.ld(Reg::R2, Reg::R1, 0);
        k.beq_imm(Reg::R2, 0, top);
        k.halt();
        let spin = k.finish().unwrap();
        let mut cfg = MachineConfig::default().with_trace(fa_trace::TraceMode::Flight);
        cfg.mem.audit =
            fa_mem::AuditConfig { enabled: true, max_core_stall: 2, ..fa_mem::AuditConfig::on() };
        let mut m = Machine::new(cfg, vec![spin], GuestMem::new(1 << 12));
        let err = m.run(100_000).unwrap_err();
        let snapshot = err.snapshot().expect("audit errors carry a snapshot");
        assert!(
            !snapshot.trace_tail.is_empty(),
            "flight recorder must capture events leading up to the violation"
        );
        // Ordered by (cycle, seq, comp).
        for w in snapshot.trace_tail.windows(2) {
            assert!(
                (w[0].cycle, w[0].seq, &w[0].comp) <= (w[1].cycle, w[1].seq, &w[1].comp),
                "tail must be sorted"
            );
        }
        let text = err.to_string();
        assert!(text.contains("flight recorder tail"), "got: {text}");
        assert!(text.contains("uop.dispatch") || text.contains("noc."), "got: {text}");
        // The tail also exports as JSON.
        let json = fa_trace::flight_json(&snapshot.trace_tail);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"comp\":"));
    }

    #[test]
    fn perfetto_export_has_chrome_trace_shape() {
        let cfg = MachineConfig::default().with_trace(fa_trace::TraceMode::Full);
        let mut m = Machine::new(cfg, vec![counter_prog(10); 2], GuestMem::new(1 << 16));
        m.run(2_000_000).expect("quiesce");
        let json = m.perfetto_trace();
        let events = fa_trace::validate_chrome_trace(&json).expect("valid chrome trace");
        assert!(events > 0, "a traced run must export events");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("atomic.load_lock"), "atomics must appear in the export");
    }

    #[test]
    fn audited_run_matches_unaudited_run() {
        // Auditing must observe, never perturb: identical results with the
        // auditor on and off.
        let cfg = MachineConfig::default();
        let mut a = Machine::new(cfg.clone(), vec![counter_prog(40); 2], GuestMem::new(1 << 16));
        let ra = a.run(2_000_000).expect("clean run");
        let mut audited_cfg = cfg;
        audited_cfg.mem.audit = fa_mem::AuditConfig::on();
        let mut b =
            Machine::new(audited_cfg, vec![counter_prog(40); 2], GuestMem::new(1 << 16));
        let rb = b.run(2_000_000).expect("audited run must pass");
        assert_eq!(ra.cycles, rb.cycles);
        assert_eq!(a.guest_mem().load(0x100), b.guest_mem().load(0x100));
        assert!(rb.mem.audit.sweeps > 0);
    }
}
