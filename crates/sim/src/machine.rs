//! The multicore machine: N cores + one memory system, one cycle loop.

use crate::error::SimError;
use fa_core::{Core, CoreConfig, CoreDiag, CoreStats};
use fa_isa::interp::GuestMem;
use fa_isa::Program;
use fa_mem::{AuditViolation, CoreId, MemConfig, MemDiag, MemStats, MemorySystem};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Machine-level configuration: one core config (homogeneous) + the memory
/// hierarchy.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[derive(Default)]
pub struct MachineConfig {
    /// Core parameters (shared by every core).
    pub core: CoreConfig,
    /// Memory-hierarchy parameters.
    pub mem: MemConfig,
}


/// A point-in-time snapshot of the whole machine, attached to errors so a
/// hang names the stuck micro-ops and locked lines instead of dying silent.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineSnapshot {
    /// Cycle the snapshot was taken.
    pub cycle: u64,
    /// Per-core pipeline state, indexed by core id.
    pub cores: Vec<CoreDiag>,
    /// Memory-system state (locked lines, busy directory entries, stalled
    /// fills, in-flight events).
    pub mem: MemDiag,
}

impl fmt::Display for MachineSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "machine state at cycle {}:", self.cycle)?;
        for (i, c) in self.cores.iter().enumerate() {
            writeln!(f, "  c{i}: {c}")?;
        }
        write!(f, "{}", self.mem)
    }
}

/// The run exceeded its cycle budget without quiescing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunTimeout {
    /// Budget that was exhausted.
    pub max_cycles: u64,
    /// Cores that had halted by then.
    pub halted: usize,
    /// Total cores.
    pub cores: usize,
    /// Machine state at the moment the budget ran out.
    pub snapshot: MachineSnapshot,
}

impl fmt::Display for RunTimeout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "machine did not quiesce within {} cycles ({}/{} cores halted)\n{}",
            self.max_cycles, self.halted, self.cores, self.snapshot
        )
    }
}

impl std::error::Error for RunTimeout {}

/// Results of a completed run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunResult {
    /// Cycle at which the machine quiesced (execution time).
    pub cycles: u64,
    /// Per-core statistics.
    pub per_core: Vec<CoreStats>,
    /// Memory-system statistics.
    pub mem: MemStats,
}

impl RunResult {
    /// Roll-up of the per-core statistics (cycles = max across cores; the
    /// rest summed).
    pub fn aggregate(&self) -> CoreStats {
        let mut agg = CoreStats::default();
        for c in &self.per_core {
            agg.merge(c);
        }
        agg
    }

    /// Total committed instructions.
    pub fn instructions(&self) -> u64 {
        self.per_core.iter().map(|c| c.instructions).sum()
    }

    /// Committed atomics per kilo-instruction across the machine
    /// (Figure 12).
    pub fn apki(&self) -> f64 {
        let instrs = self.instructions();
        if instrs == 0 {
            return 0.0;
        }
        let atomics: u64 = self.per_core.iter().map(|c| c.atomics).sum();
        atomics as f64 * 1000.0 / instrs as f64
    }
}

/// A multicore machine ready to run one workload.
pub struct Machine {
    mem: MemorySystem,
    cores: Vec<Core>,
    start_offsets: Vec<u64>,
    now: u64,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("cores", &self.cores.len())
            .field("now", &self.now)
            .finish()
    }
}

impl Machine {
    /// Builds a machine with one core per program over `guest_mem`.
    pub fn new(cfg: MachineConfig, programs: Vec<Program>, guest_mem: GuestMem) -> Machine {
        let n = programs.len();
        assert!(n > 0, "at least one program required");
        let mem_bytes = guest_mem.size();
        let mem = MemorySystem::new(cfg.mem.clone(), n, guest_mem);
        let cores = programs
            .into_iter()
            .enumerate()
            .map(|(i, p)| Core::new(CoreId(i as u16), cfg.core.clone(), p, mem_bytes))
            .collect();
        Machine { mem, cores, start_offsets: vec![0; n], now: 0 }
    }

    /// Delays each core's first cycle by the given offset — the analogue of
    /// the paper's "randomized sleep timer to alter the architectural
    /// state" (§5.1).
    pub fn set_start_offsets(&mut self, offsets: Vec<u64>) {
        assert_eq!(offsets.len(), self.cores.len());
        self.start_offsets = offsets;
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Guest memory (to inspect results).
    pub fn guest_mem(&self) -> &GuestMem {
        self.mem.backing()
    }

    /// Guest memory for pre-run initialization.
    pub fn guest_mem_mut(&mut self) -> &mut GuestMem {
        self.mem.backing_mut()
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// True once every core has halted and every buffered store has
    /// performed.
    pub fn quiesced(&self) -> bool {
        self.cores.iter().all(|c| c.halted() && c.sb_len() == 0)
    }

    /// Advances one cycle.
    pub fn tick(&mut self) {
        self.now += 1;
        self.mem.tick();
        for c in self.cores.iter_mut() {
            let idx = c.id().index();
            if self.now > self.start_offsets[idx] {
                c.tick(self.now, &mut self.mem);
            }
        }
    }

    /// Snapshot of the whole machine for diagnostics.
    pub fn snapshot(&self) -> MachineSnapshot {
        MachineSnapshot {
            cycle: self.now,
            cores: self.cores.iter().map(|c| c.diag()).collect(),
            mem: self.mem.diag(),
        }
    }

    /// Runs until quiescence.
    ///
    /// When `MemConfig::audit` is enabled, every cycle is swept by the
    /// invariant auditor and every core is held to the forward-progress
    /// bound (`max_core_stall` cycles without a commit while unhalted and
    /// awake), converting silent livelock into [`SimError::Audit`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Timeout`] if the machine does not quiesce within
    /// `max_cycles` — with the deadlock-avoidance watchdog active this
    /// indicates either an undersized budget or a genuine forward-progress
    /// bug, which is exactly what the deadlock test suite looks for — and
    /// [`SimError::Audit`] on an invariant violation. Both carry a
    /// [`MachineSnapshot`].
    // The Err variant carries a full diagnostic snapshot by design; it is
    // built once on the cold failure path, never per cycle.
    #[allow(clippy::result_large_err)]
    pub fn run(&mut self, max_cycles: u64) -> Result<RunResult, SimError> {
        let audit_on = self.mem.config().audit.enabled;
        let max_stall = self.mem.config().audit.max_core_stall;
        // (instructions, cycle) at each core's last observed commit.
        let mut progress: Vec<(u64, u64)> =
            self.cores.iter().map(|c| (c.stats.instructions, self.now)).collect();
        while self.now < max_cycles {
            self.tick();
            if audit_on {
                if let Err(violation) = self.mem.audit() {
                    return Err(SimError::Audit {
                        cycle: self.now,
                        violation,
                        snapshot: self.snapshot(),
                    });
                }
                for (i, c) in self.cores.iter().enumerate() {
                    if c.halted() || c.sleeping() || c.stats.instructions != progress[i].0 {
                        progress[i] = (c.stats.instructions, self.now);
                    } else if self.now > self.start_offsets[i]
                        && self.now - progress[i].1 > max_stall
                    {
                        return Err(SimError::Audit {
                            cycle: self.now,
                            violation: AuditViolation::NoProgress {
                                core: CoreId(i as u16),
                                stalled_for: self.now - progress[i].1,
                                committed: c.stats.instructions,
                            },
                            snapshot: self.snapshot(),
                        });
                    }
                }
            }
            if self.quiesced() {
                for c in self.cores.iter_mut() {
                    c.finalize_stats();
                }
                return Ok(RunResult {
                    cycles: self.now,
                    per_core: self.cores.iter().map(|c| c.stats.clone()).collect(),
                    mem: self.mem.stats(),
                });
            }
        }
        Err(SimError::Timeout(RunTimeout {
            max_cycles,
            halted: self.cores.iter().filter(|c| c.halted()).count(),
            cores: self.cores.len(),
            snapshot: self.snapshot(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_core::AtomicPolicy;
    use fa_isa::{Kasm, Reg};

    fn counter_prog(iters: i64) -> Program {
        let mut k = Kasm::new();
        k.li(Reg::R1, 0x100);
        k.li(Reg::R2, 1);
        k.li(Reg::R3, 0);
        let top = k.here_label();
        k.fetch_add(Reg::R4, Reg::R1, 0, Reg::R2);
        k.addi(Reg::R3, Reg::R3, 1);
        k.blt_imm(Reg::R3, iters, top);
        k.halt();
        k.finish().unwrap()
    }

    #[test]
    fn machine_runs_counter_to_completion() {
        let cfg = MachineConfig::default();
        let mut m = Machine::new(cfg, vec![counter_prog(50); 2], GuestMem::new(1 << 16));
        let r = m.run(2_000_000).expect("quiesce");
        assert_eq!(m.guest_mem().load(0x100), 100);
        assert!(r.cycles > 0);
        assert_eq!(r.instructions(), r.per_core.iter().map(|c| c.instructions).sum::<u64>());
        assert!(r.apki() > 0.0);
    }

    #[test]
    fn start_offsets_shift_execution() {
        let cfg = MachineConfig {
            core: CoreConfig::default().with_policy(AtomicPolicy::FreeFwd),
            ..MachineConfig::default()
        };
        let mut a = Machine::new(cfg.clone(), vec![counter_prog(20); 2], GuestMem::new(1 << 16));
        let ra = a.run(1_000_000).unwrap();
        let mut b = Machine::new(cfg, vec![counter_prog(20); 2], GuestMem::new(1 << 16));
        b.set_start_offsets(vec![0, 500]);
        let rb = b.run(1_000_000).unwrap();
        assert_eq!(b.guest_mem().load(0x100), 40);
        assert!(rb.cycles >= ra.cycles, "offset run cannot be faster");
    }

    #[test]
    fn timeout_reports_progress_and_snapshot() {
        // A spin that never ends: thread 0 waits on a flag nobody sets.
        let mut k = Kasm::new();
        k.li(Reg::R1, 0x200);
        let top = k.here_label();
        k.ld(Reg::R2, Reg::R1, 0);
        k.beq_imm(Reg::R2, 0, top);
        k.halt();
        let spin = k.finish().unwrap();
        let mut m = Machine::new(MachineConfig::default(), vec![spin], GuestMem::new(1 << 12));
        let err = m.run(10_000).unwrap_err();
        let SimError::Timeout(t) = err else { panic!("expected timeout, got {err:?}") };
        assert_eq!(t.halted, 0);
        assert_eq!(t.cores, 1);
        assert!(t.to_string().contains("did not quiesce"));
        // The diagnostic snapshot names the spinning core's state.
        assert_eq!(t.snapshot.cycle, 10_000);
        assert_eq!(t.snapshot.cores.len(), 1);
        assert!(!t.snapshot.cores[0].halted);
        assert!(t.snapshot.cores[0].committed > 0, "the spin commits instructions");
        assert!(t.to_string().contains("machine state at cycle"));
    }

    #[test]
    fn progress_audit_flags_commitless_livelock() {
        // The same endless spin, but with the forward-progress bound tight
        // enough to trip on the *load round-trips* never advancing past the
        // branch: commits do happen here, so instead use a deadlock shape —
        // one core's atomic spins on a line the test never unlocks. Simplest
        // reliable shape: a tiny max_core_stall that even a legal memory
        // round-trip exceeds, proving the bound converts a stall into a
        // structured report naming the core.
        let mut k = Kasm::new();
        k.li(Reg::R1, 0x200);
        let top = k.here_label();
        k.ld(Reg::R2, Reg::R1, 0);
        k.beq_imm(Reg::R2, 0, top);
        k.halt();
        let spin = k.finish().unwrap();
        let mut cfg = MachineConfig::default();
        cfg.mem.audit =
            fa_mem::AuditConfig { enabled: true, max_core_stall: 2, ..fa_mem::AuditConfig::on() };
        let mut m = Machine::new(cfg, vec![spin], GuestMem::new(1 << 12));
        let err = m.run(100_000).unwrap_err();
        match err {
            SimError::Audit {
                violation: AuditViolation::NoProgress { core: CoreId(0), stalled_for, .. },
                ..
            } => assert!(stalled_for > 2),
            other => panic!("expected NoProgress, got {other:?}"),
        }
    }

    #[test]
    fn audited_run_matches_unaudited_run() {
        // Auditing must observe, never perturb: identical results with the
        // auditor on and off.
        let cfg = MachineConfig::default();
        let mut a = Machine::new(cfg.clone(), vec![counter_prog(40); 2], GuestMem::new(1 << 16));
        let ra = a.run(2_000_000).expect("clean run");
        let mut audited_cfg = cfg;
        audited_cfg.mem.audit = fa_mem::AuditConfig::on();
        let mut b =
            Machine::new(audited_cfg, vec![counter_prog(40); 2], GuestMem::new(1 << 16));
        let rb = b.run(2_000_000).expect("audited run must pass");
        assert_eq!(ra.cycles, rb.cycles);
        assert_eq!(a.guest_mem().load(0x100), b.guest_mem().load(0x100));
        assert!(rb.mem.audit.sweeps > 0);
    }
}
