//! Multicore machine driver and analysis substrate for the Free Atomics
//! simulator.
//!
//! Ties [`fa_core::Core`]s to one [`fa_mem::MemorySystem`] under a
//! deterministic cycle loop ([`Machine`]), provides the paper's Table-1
//! configuration presets ([`presets`]), a McPAT-flavoured event-count energy
//! model ([`energy`]), the multi-run measurement methodology of §5.1
//! ([`methodology`]), a parallel sweep engine fanning independent
//! deterministic cells across worker threads ([`sweep`]), and a
//! verification substrate: an operational x86-TSO
//! reference enumerator ([`tsoref`]), a litmus-test harness ([`litmus`])
//! that checks the detailed simulator's outcomes against the reference,
//! under every atomic policy, and an axiomatic x86-TSO + RMW-atomicity
//! conformance checker ([`axiom`]) that validates *full* executions of
//! arbitrary workloads from their data-event streams (`FA_CHECK=tso`).

// Non-test code must justify every panic site; see the `expect` messages
// documenting each invariant. Tests keep plain unwrap for brevity.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod axiom;
pub mod energy;
pub mod env;
pub mod error;
pub mod fuzz;
pub mod litmus;
pub mod machine;
pub mod methodology;
pub mod presets;
pub mod sweep;
pub mod tsoref;

pub use axiom::{CheckReport, Execution, Violation};
pub use energy::{EnergyBreakdown, EnergyModel};
pub use error::{CellFailure, SimError};
pub use fuzz::{fuzz_litmus, FuzzConfig, FuzzReport};
pub use litmus::{LOp, LitmusTest};
pub use machine::{
    set_wall_deadline, Machine, MachineConfig, MachineSnapshot, RunResult, RunTimeout,
};
pub use methodology::{measure, measure_parallel, Methodology, MultiRun};
pub use presets::{icelake_like, skylake_like, tiny_machine};
pub use sweep::{
    run_cells, run_cells_supervised, run_cells_timed, supervise, CellQuarantine, SweepTiming,
};

// The trace layer's user-facing types, re-exported so binaries configure
// tracing without a direct fa-trace dependency.
pub use fa_trace::{
    flight_json, json_object, json_u64_array, validate_chrome_trace, write_id, write_id_parts,
    CheckMode, CpiLeaf, CpiStack, DataEvent, FlightEntry, Hist, MemModel, SerEvent, TraceConfig,
    TraceMode, CPI_LEAVES, WRITE_ID_INIT,
};
