//! Bounded operational x86-TSO reference model.
//!
//! Enumerates *every* outcome a small concurrent program can produce under
//! the operational TSO model of Sewell et al. ("x86-TSO: A Rigorous and
//! Usable Programmer's Model"): per-thread FIFO store buffers, loads that
//! forward from the local buffer, atomic RMWs that execute only with an
//! empty local buffer and read-modify-write memory in one step, and MFENCE
//! draining the buffer.
//!
//! The litmus harness uses the resulting outcome set as ground truth: any
//! outcome observed on the detailed simulator that this enumerator cannot
//! produce is a consistency bug.

use fa_isa::Word;
use std::collections::{BTreeMap, HashSet, VecDeque};

/// One abstract litmus operation (addresses and values are small integers;
/// `out` slots index the observation vector).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TsoOp {
    /// `mem[addr] = val`
    St { addr: u8, val: Word },
    /// `out[out_slot] = mem[addr]`
    Ld { addr: u8, out_slot: u8 },
    /// `out[out_slot] = fetch_add(mem[addr], val)`
    FetchAdd { addr: u8, val: Word, out_slot: u8 },
    /// MFENCE.
    Fence,
}

#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct State {
    mem: BTreeMap<u8, Word>,
    pcs: Vec<u8>,
    sbs: Vec<VecDeque<(u8, Word)>>,
    outs: Vec<Option<Word>>,
}

/// Enumerates the set of reachable observation vectors for `threads`.
///
/// Each thread is a straight-line list of [`TsoOp`]s (no branches — litmus
/// tests are loop-free). `num_outs` sizes the observation vector; unwritten
/// slots read as 0 in the result.
///
/// # Panics
///
/// Panics if the state space exceeds an internal safety bound (1e6 states) —
/// keep litmus tests small.
pub fn enumerate_tso_outcomes(threads: &[Vec<TsoOp>], num_outs: usize) -> HashSet<Vec<Word>> {
    let n = threads.len();
    let init = State {
        mem: BTreeMap::new(),
        pcs: vec![0; n],
        sbs: vec![VecDeque::new(); n],
        outs: vec![None; num_outs],
    };
    let mut seen: HashSet<State> = HashSet::new();
    let mut work = vec![init];
    let mut outcomes = HashSet::new();
    while let Some(st) = work.pop() {
        if !seen.insert(st.clone()) {
            continue;
        }
        assert!(seen.len() <= 1_000_000, "litmus state space too large");
        let mut terminal = true;
        #[allow(clippy::needless_range_loop)] // t indexes parallel vectors
        for t in 0..n {
            // Transition 1: drain the oldest store-buffer entry.
            if let Some(&(a, v)) = st.sbs[t].front() {
                terminal = false;
                let mut next = st.clone();
                next.sbs[t].pop_front();
                next.mem.insert(a, v);
                work.push(next);
            }
            // Transition 2: execute the next instruction.
            let pc = st.pcs[t] as usize;
            let Some(&op) = threads[t].get(pc) else { continue };
            match op {
                TsoOp::St { addr, val } => {
                    terminal = false;
                    let mut next = st.clone();
                    next.sbs[t].push_back((addr, val));
                    next.pcs[t] += 1;
                    work.push(next);
                }
                TsoOp::Ld { addr, out_slot } => {
                    terminal = false;
                    let mut next = st.clone();
                    // Forward from the youngest matching SB entry, else read
                    // memory.
                    let v = st.sbs[t]
                        .iter()
                        .rev()
                        .find(|&&(a, _)| a == addr)
                        .map(|&(_, v)| v)
                        .unwrap_or_else(|| st.mem.get(&addr).copied().unwrap_or(0));
                    next.outs[out_slot as usize] = Some(v);
                    next.pcs[t] += 1;
                    work.push(next);
                }
                TsoOp::FetchAdd { addr, val, out_slot } => {
                    // Atomic RMW: only with an empty local store buffer;
                    // read-modify-write is one atomic step (cache locking).
                    if st.sbs[t].is_empty() {
                        terminal = false;
                        let mut next = st.clone();
                        let old = st.mem.get(&addr).copied().unwrap_or(0);
                        next.mem.insert(addr, old.wrapping_add(val));
                        next.outs[out_slot as usize] = Some(old);
                        next.pcs[t] += 1;
                        work.push(next);
                    } else {
                        terminal = false; // draining is always possible
                    }
                }
                TsoOp::Fence => {
                    if st.sbs[t].is_empty() {
                        terminal = false;
                        let mut next = st.clone();
                        next.pcs[t] += 1;
                        work.push(next);
                    } else {
                        terminal = false;
                    }
                }
            }
        }
        if terminal {
            outcomes.insert(st.outs.iter().map(|o| o.unwrap_or(0)).collect());
        }
    }
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use TsoOp::*;

    #[test]
    fn sb_litmus_allows_both_zero() {
        // The classic store-buffering shape: both loads may read 0.
        let threads = vec![
            vec![St { addr: 0, val: 1 }, Ld { addr: 1, out_slot: 0 }],
            vec![St { addr: 1, val: 1 }, Ld { addr: 0, out_slot: 1 }],
        ];
        let outs = enumerate_tso_outcomes(&threads, 2);
        assert!(outs.contains(&vec![0, 0]), "TSO must allow 0,0 for SB");
        assert!(outs.contains(&vec![1, 1]));
        assert!(outs.contains(&vec![0, 1]));
        assert!(outs.contains(&vec![1, 0]));
    }

    #[test]
    fn sb_with_fences_forbids_both_zero() {
        let threads = vec![
            vec![St { addr: 0, val: 1 }, Fence, Ld { addr: 1, out_slot: 0 }],
            vec![St { addr: 1, val: 1 }, Fence, Ld { addr: 0, out_slot: 1 }],
        ];
        let outs = enumerate_tso_outcomes(&threads, 2);
        assert!(!outs.contains(&vec![0, 0]), "MFENCE forbids 0,0");
        assert_eq!(outs.len(), 3);
    }

    #[test]
    fn sb_with_rmws_forbids_both_zero() {
        // Paper Figure 10: an atomic RMW between the store and the load acts
        // as a fence (type-1 atomicity).
        let threads = vec![
            vec![
                St { addr: 0, val: 1 },
                FetchAdd { addr: 2, val: 1, out_slot: 2 },
                Ld { addr: 1, out_slot: 0 },
            ],
            vec![
                St { addr: 1, val: 1 },
                FetchAdd { addr: 3, val: 1, out_slot: 3 },
                Ld { addr: 0, out_slot: 1 },
            ],
        ];
        let outs = enumerate_tso_outcomes(&threads, 4);
        assert!(
            !outs.iter().any(|o| o[0] == 0 && o[1] == 0),
            "type-1 RMWs forbid 0,0 (Dekker, paper §3.4)"
        );
    }

    #[test]
    fn message_passing_is_ordered() {
        let threads = vec![
            vec![St { addr: 0, val: 42 }, St { addr: 1, val: 1 }],
            vec![Ld { addr: 1, out_slot: 0 }, Ld { addr: 0, out_slot: 1 }],
        ];
        let outs = enumerate_tso_outcomes(&threads, 2);
        // flag=1 but data=0 is forbidden under TSO.
        assert!(!outs.contains(&vec![1, 0]));
        assert!(outs.contains(&vec![1, 42]));
        assert!(outs.contains(&vec![0, 0]));
    }

    #[test]
    fn load_forwards_from_own_buffer() {
        let threads = vec![vec![St { addr: 0, val: 9 }, Ld { addr: 0, out_slot: 0 }]];
        let outs = enumerate_tso_outcomes(&threads, 1);
        assert_eq!(outs, HashSet::from([vec![9]]));
    }

    #[test]
    fn rmw_pair_on_same_address_serializes() {
        let threads = vec![
            vec![FetchAdd { addr: 0, val: 1, out_slot: 0 }],
            vec![FetchAdd { addr: 0, val: 1, out_slot: 1 }],
        ];
        let outs = enumerate_tso_outcomes(&threads, 2);
        // One sees 0, the other 1 — never both 0.
        assert_eq!(outs, HashSet::from([vec![0, 1], vec![1, 0]]));
    }
}
