//! Bounded operational reference models: x86-TSO and an ARM-like weak
//! baseline.
//!
//! [`enumerate_tso_outcomes`] enumerates *every* outcome a small concurrent
//! program can produce under the operational TSO model of Sewell et al.
//! ("x86-TSO: A Rigorous and Usable Programmer's Model"): per-thread FIFO
//! store buffers, loads that forward from the local buffer, atomic RMWs
//! that execute only with an empty local buffer and read-modify-write
//! memory in one step, and MFENCE draining the buffer. Ordering
//! annotations are ignored — under TSO they are inert.
//!
//! [`enumerate_weak_outcomes`] runs the same machine with one relaxation:
//! a load may *hoist* past program-order-earlier unexecuted loads when
//! none of them is acquire-class and none targets the same address (R→R
//! is not preserved for relaxed loads). Everything else keeps its TSO
//! strength — the store buffer stays FIFO (W→W preserved; release stores
//! are architecturally free), stores and fences wait for all predecessors
//! (R→W preserved), only *SC* fences drain the buffer, SC stores block
//! younger loads while buffered, and RMWs are pinned to SeqCst strength.
//!
//! The litmus harness uses the resulting outcome sets as ground truth:
//! any outcome observed on the detailed simulator that the matching
//! enumerator cannot produce is a consistency bug.

use fa_isa::{MemOrder, Word};
use std::collections::{BTreeMap, HashSet, VecDeque};

/// One abstract litmus operation (addresses and values are small integers;
/// `out` slots index the observation vector).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TsoOp {
    /// `mem[addr] = val`
    St { addr: u8, val: Word, ord: MemOrder },
    /// `out[out_slot] = mem[addr]`
    Ld { addr: u8, out_slot: u8, ord: MemOrder },
    /// `out[out_slot] = fetch_add(mem[addr], val)`. The annotation is
    /// inert: RMWs execute at SeqCst strength under both models.
    FetchAdd { addr: u8, val: Word, out_slot: u8, ord: MemOrder },
    /// Standalone fence. Under TSO every fence drains the store buffer;
    /// under weak only `sc` fences do (weaker fences still pin the
    /// program order of everything around them).
    Fence { ord: MemOrder },
}

#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct State {
    mem: BTreeMap<u8, Word>,
    pcs: Vec<u8>,
    sbs: Vec<VecDeque<(u8, Word)>>,
    outs: Vec<Option<Word>>,
}

/// Enumerates the set of reachable observation vectors for `threads`
/// under x86-TSO.
///
/// Each thread is a straight-line list of [`TsoOp`]s (no branches — litmus
/// tests are loop-free). `num_outs` sizes the observation vector; unwritten
/// slots read as 0 in the result.
///
/// # Panics
///
/// Panics if the state space exceeds an internal safety bound (1e6 states) —
/// keep litmus tests small.
pub fn enumerate_tso_outcomes(threads: &[Vec<TsoOp>], num_outs: usize) -> HashSet<Vec<Word>> {
    let n = threads.len();
    let init = State {
        mem: BTreeMap::new(),
        pcs: vec![0; n],
        sbs: vec![VecDeque::new(); n],
        outs: vec![None; num_outs],
    };
    let mut seen: HashSet<State> = HashSet::new();
    let mut work = vec![init];
    let mut outcomes = HashSet::new();
    while let Some(st) = work.pop() {
        if !seen.insert(st.clone()) {
            continue;
        }
        assert!(seen.len() <= 1_000_000, "litmus state space too large");
        let mut terminal = true;
        #[allow(clippy::needless_range_loop)] // t indexes parallel vectors
        for t in 0..n {
            // Transition 1: drain the oldest store-buffer entry.
            if let Some(&(a, v)) = st.sbs[t].front() {
                terminal = false;
                let mut next = st.clone();
                next.sbs[t].pop_front();
                next.mem.insert(a, v);
                work.push(next);
            }
            // Transition 2: execute the next instruction.
            let pc = st.pcs[t] as usize;
            let Some(&op) = threads[t].get(pc) else { continue };
            match op {
                TsoOp::St { addr, val, .. } => {
                    terminal = false;
                    let mut next = st.clone();
                    next.sbs[t].push_back((addr, val));
                    next.pcs[t] += 1;
                    work.push(next);
                }
                TsoOp::Ld { addr, out_slot, .. } => {
                    terminal = false;
                    let mut next = st.clone();
                    // Forward from the youngest matching SB entry, else read
                    // memory.
                    let v = st.sbs[t]
                        .iter()
                        .rev()
                        .find(|&&(a, _)| a == addr)
                        .map(|&(_, v)| v)
                        .unwrap_or_else(|| st.mem.get(&addr).copied().unwrap_or(0));
                    next.outs[out_slot as usize] = Some(v);
                    next.pcs[t] += 1;
                    work.push(next);
                }
                TsoOp::FetchAdd { addr, val, out_slot, .. } => {
                    // Atomic RMW: only with an empty local store buffer;
                    // read-modify-write is one atomic step (cache locking).
                    if st.sbs[t].is_empty() {
                        terminal = false;
                        let mut next = st.clone();
                        let old = st.mem.get(&addr).copied().unwrap_or(0);
                        next.mem.insert(addr, old.wrapping_add(val));
                        next.outs[out_slot as usize] = Some(old);
                        next.pcs[t] += 1;
                        work.push(next);
                    } else {
                        terminal = false; // draining is always possible
                    }
                }
                TsoOp::Fence { .. } => {
                    if st.sbs[t].is_empty() {
                        terminal = false;
                        let mut next = st.clone();
                        next.pcs[t] += 1;
                        work.push(next);
                    } else {
                        terminal = false;
                    }
                }
            }
        }
        if terminal {
            outcomes.insert(st.outs.iter().map(|o| o.unwrap_or(0)).collect());
        }
    }
    outcomes
}

/// Per-thread state for the weak enumerator: loads may complete out of
/// program order, so a done-bitmask replaces the program counter, and
/// store-buffer entries remember whether their store was `sc`-annotated.
#[derive(Clone, PartialEq, Eq, Hash)]
struct WeakState {
    mem: BTreeMap<u8, Word>,
    done: Vec<u32>,
    sbs: Vec<VecDeque<(u8, Word, bool)>>,
    outs: Vec<Option<Word>>,
}

/// True when op `i` of `ops` may execute given the thread's done-mask:
/// either every predecessor is done, or the op is a load and every
/// unexecuted predecessor is a non-acquire load to a different address
/// (the weak model's R→R relaxation; the same-address guard preserves
/// per-location coherence).
fn weak_ready(ops: &[TsoOp], done: u32, i: usize) -> bool {
    let undone = |j: usize| done & (1 << j) == 0;
    if (0..i).all(|j| !undone(j)) {
        return true;
    }
    let TsoOp::Ld { addr, .. } = ops[i] else { return false };
    (0..i).filter(|&j| undone(j)).all(|j| match ops[j] {
        TsoOp::Ld { addr: a, ord, .. } => !ord.is_acquire() && a != addr,
        _ => false,
    })
}

/// Enumerates the set of reachable observation vectors for `threads`
/// under the ARM-like weak baseline model (see the module docs for the
/// exact relaxations relative to TSO).
///
/// # Panics
///
/// Panics if any thread exceeds 32 ops or the state space exceeds an
/// internal safety bound (1e6 states) — keep litmus tests small.
pub fn enumerate_weak_outcomes(threads: &[Vec<TsoOp>], num_outs: usize) -> HashSet<Vec<Word>> {
    let n = threads.len();
    assert!(
        threads.iter().all(|t| t.len() <= 32),
        "weak enumerator supports at most 32 ops per thread"
    );
    let init = WeakState {
        mem: BTreeMap::new(),
        done: vec![0; n],
        sbs: vec![VecDeque::new(); n],
        outs: vec![None; num_outs],
    };
    let mut seen: HashSet<WeakState> = HashSet::new();
    let mut work = vec![init];
    let mut outcomes = HashSet::new();
    while let Some(st) = work.pop() {
        if !seen.insert(st.clone()) {
            continue;
        }
        assert!(seen.len() <= 1_000_000, "litmus state space too large");
        let mut terminal = true;
        #[allow(clippy::needless_range_loop)] // t indexes parallel vectors
        for t in 0..n {
            // Transition 1: drain the oldest store-buffer entry (FIFO —
            // W→W is preserved even for relaxed stores).
            if let Some(&(a, v, _)) = st.sbs[t].front() {
                terminal = false;
                let mut next = st.clone();
                next.sbs[t].pop_front();
                next.mem.insert(a, v);
                work.push(next);
            }
            // Transition 2: execute any ready op.
            for (i, &op) in threads[t].iter().enumerate() {
                if st.done[t] & (1 << i) != 0 || !weak_ready(&threads[t], st.done[t], i) {
                    continue;
                }
                match op {
                    TsoOp::St { addr, val, ord } => {
                        terminal = false;
                        let mut next = st.clone();
                        next.sbs[t].push_back((addr, val, ord.is_sc()));
                        next.done[t] |= 1 << i;
                        work.push(next);
                    }
                    TsoOp::Ld { addr, out_slot, .. } => {
                        // An SC store waiting in the local buffer blocks
                        // every younger load (the store-load half of its
                        // SC fence); acquire annotations on the load
                        // itself need no gate — they only restrict what
                        // *later* ops may hoist past it.
                        if st.sbs[t].iter().any(|&(_, _, sc)| sc) {
                            terminal = false; // draining is always possible
                            continue;
                        }
                        terminal = false;
                        let mut next = st.clone();
                        let v = st.sbs[t]
                            .iter()
                            .rev()
                            .find(|&&(a, _, _)| a == addr)
                            .map(|&(_, v, _)| v)
                            .unwrap_or_else(|| st.mem.get(&addr).copied().unwrap_or(0));
                        next.outs[out_slot as usize] = Some(v);
                        next.done[t] |= 1 << i;
                        work.push(next);
                    }
                    TsoOp::FetchAdd { addr, val, out_slot, .. } => {
                        // SeqCst strength in both models: empty buffer,
                        // atomic step.
                        if st.sbs[t].is_empty() {
                            terminal = false;
                            let mut next = st.clone();
                            let old = st.mem.get(&addr).copied().unwrap_or(0);
                            next.mem.insert(addr, old.wrapping_add(val));
                            next.outs[out_slot as usize] = Some(old);
                            next.done[t] |= 1 << i;
                            work.push(next);
                        } else {
                            terminal = false;
                        }
                    }
                    TsoOp::Fence { ord } => {
                        // Every fence pins program order around itself
                        // (weak_ready already enforces that); only an SC
                        // fence additionally drains the store buffer.
                        if !ord.is_sc() || st.sbs[t].is_empty() {
                            terminal = false;
                            let mut next = st.clone();
                            next.done[t] |= 1 << i;
                            work.push(next);
                        } else {
                            terminal = false;
                        }
                    }
                }
            }
        }
        if terminal {
            outcomes.insert(st.outs.iter().map(|o| o.unwrap_or(0)).collect());
        }
    }
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(addr: u8, val: Word) -> TsoOp {
        TsoOp::St { addr, val, ord: MemOrder::Relaxed }
    }
    fn st_ord(addr: u8, val: Word, ord: MemOrder) -> TsoOp {
        TsoOp::St { addr, val, ord }
    }
    fn ld(addr: u8, out_slot: u8) -> TsoOp {
        TsoOp::Ld { addr, out_slot, ord: MemOrder::Relaxed }
    }
    fn ld_ord(addr: u8, out_slot: u8, ord: MemOrder) -> TsoOp {
        TsoOp::Ld { addr, out_slot, ord }
    }
    fn fadd(addr: u8, val: Word, out_slot: u8) -> TsoOp {
        TsoOp::FetchAdd { addr, val, out_slot, ord: MemOrder::SeqCst }
    }
    fn fence() -> TsoOp {
        TsoOp::Fence { ord: MemOrder::SeqCst }
    }
    fn fence_ord(ord: MemOrder) -> TsoOp {
        TsoOp::Fence { ord }
    }

    #[test]
    fn sb_litmus_allows_both_zero() {
        // The classic store-buffering shape: both loads may read 0.
        let threads = vec![vec![st(0, 1), ld(1, 0)], vec![st(1, 1), ld(0, 1)]];
        let outs = enumerate_tso_outcomes(&threads, 2);
        assert!(outs.contains(&vec![0, 0]), "TSO must allow 0,0 for SB");
        assert!(outs.contains(&vec![1, 1]));
        assert!(outs.contains(&vec![0, 1]));
        assert!(outs.contains(&vec![1, 0]));
    }

    #[test]
    fn sb_with_fences_forbids_both_zero() {
        let threads = vec![
            vec![st(0, 1), fence(), ld(1, 0)],
            vec![st(1, 1), fence(), ld(0, 1)],
        ];
        let outs = enumerate_tso_outcomes(&threads, 2);
        assert!(!outs.contains(&vec![0, 0]), "MFENCE forbids 0,0");
        assert_eq!(outs.len(), 3);
    }

    #[test]
    fn sb_with_rmws_forbids_both_zero() {
        // Paper Figure 10: an atomic RMW between the store and the load acts
        // as a fence (type-1 atomicity).
        let threads = vec![
            vec![st(0, 1), fadd(2, 1, 2), ld(1, 0)],
            vec![st(1, 1), fadd(3, 1, 3), ld(0, 1)],
        ];
        let outs = enumerate_tso_outcomes(&threads, 4);
        assert!(
            !outs.iter().any(|o| o[0] == 0 && o[1] == 0),
            "type-1 RMWs forbid 0,0 (Dekker, paper §3.4)"
        );
    }

    #[test]
    fn message_passing_is_ordered() {
        let threads = vec![vec![st(0, 42), st(1, 1)], vec![ld(1, 0), ld(0, 1)]];
        let outs = enumerate_tso_outcomes(&threads, 2);
        // flag=1 but data=0 is forbidden under TSO.
        assert!(!outs.contains(&vec![1, 0]));
        assert!(outs.contains(&vec![1, 42]));
        assert!(outs.contains(&vec![0, 0]));
    }

    #[test]
    fn load_forwards_from_own_buffer() {
        let threads = vec![vec![st(0, 9), ld(0, 0)]];
        let outs = enumerate_tso_outcomes(&threads, 1);
        assert_eq!(outs, HashSet::from([vec![9]]));
    }

    #[test]
    fn rmw_pair_on_same_address_serializes() {
        let threads = vec![vec![fadd(0, 1, 0)], vec![fadd(0, 1, 1)]];
        let outs = enumerate_tso_outcomes(&threads, 2);
        // One sees 0, the other 1 — never both 0.
        assert_eq!(outs, HashSet::from([vec![0, 1], vec![1, 0]]));
    }

    #[test]
    fn tso_enumerator_ignores_annotations() {
        // MP with a fully relaxed reader: still ordered under TSO.
        let threads = vec![vec![st(0, 42), st(1, 1)], vec![ld(1, 0), ld(0, 1)]];
        let relaxed = enumerate_tso_outcomes(&threads, 2);
        let annotated = vec![
            vec![st_ord(0, 42, MemOrder::Release), st_ord(1, 1, MemOrder::SeqCst)],
            vec![ld_ord(1, 0, MemOrder::Acquire), ld_ord(0, 1, MemOrder::SeqCst)],
        ];
        assert_eq!(relaxed, enumerate_tso_outcomes(&annotated, 2));
    }

    // ---- weak enumerator ----

    #[test]
    fn weak_mp_relaxed_allows_stale_data() {
        let threads = vec![vec![st(0, 42), st(1, 1)], vec![ld(1, 0), ld(0, 1)]];
        let outs = enumerate_weak_outcomes(&threads, 2);
        assert!(outs.contains(&vec![1, 0]), "weak allows flag-without-data");
        assert!(outs.contains(&vec![1, 42]));
        assert!(outs.contains(&vec![0, 0]));
    }

    #[test]
    fn weak_mp_acquire_restores_order() {
        // Reader's first load acquire: the stale-data outcome vanishes.
        // The writer needs no release annotation (FIFO store buffer).
        let threads = vec![
            vec![st(0, 42), st(1, 1)],
            vec![ld_ord(1, 0, MemOrder::Acquire), ld(0, 1)],
        ];
        let outs = enumerate_weak_outcomes(&threads, 2);
        assert!(!outs.contains(&vec![1, 0]));
        assert!(outs.contains(&vec![1, 42]));
    }

    #[test]
    fn weak_mp_acquire_fence_restores_order() {
        let threads = vec![
            vec![st(0, 42), st(1, 1)],
            vec![ld(1, 0), fence_ord(MemOrder::Acquire), ld(0, 1)],
        ];
        let outs = enumerate_weak_outcomes(&threads, 2);
        assert!(!outs.contains(&vec![1, 0]), "any fence pins R->R");
    }

    #[test]
    fn weak_sb_relaxed_allows_both_zero_and_sc_fence_forbids() {
        let relaxed = vec![vec![st(0, 1), ld(1, 0)], vec![st(1, 1), ld(0, 1)]];
        assert!(enumerate_weak_outcomes(&relaxed, 2).contains(&vec![0, 0]));
        let fenced = vec![
            vec![st(0, 1), fence(), ld(1, 0)],
            vec![st(1, 1), fence(), ld(0, 1)],
        ];
        assert!(!enumerate_weak_outcomes(&fenced, 2).contains(&vec![0, 0]));
        // An acquire fence does NOT drain the store buffer: 0,0 survives.
        let acq = vec![
            vec![st(0, 1), fence_ord(MemOrder::Acquire), ld(1, 0)],
            vec![st(1, 1), fence_ord(MemOrder::Acquire), ld(0, 1)],
        ];
        assert!(enumerate_weak_outcomes(&acq, 2).contains(&vec![0, 0]));
    }

    #[test]
    fn weak_sb_sc_stores_forbid_both_zero() {
        // No fences at all: the SC annotation on the stores alone blocks
        // the younger loads until the buffer drains.
        let threads = vec![
            vec![st_ord(0, 1, MemOrder::SeqCst), ld(1, 0)],
            vec![st_ord(1, 1, MemOrder::SeqCst), ld(0, 1)],
        ];
        assert!(!enumerate_weak_outcomes(&threads, 2).contains(&vec![0, 0]));
    }

    #[test]
    fn weak_rmws_keep_sc_strength() {
        let threads = vec![
            vec![st(0, 1), fadd(2, 1, 2), ld(1, 0)],
            vec![st(1, 1), fadd(3, 1, 3), ld(0, 1)],
        ];
        let outs = enumerate_weak_outcomes(&threads, 4);
        assert!(!outs.iter().any(|o| o[0] == 0 && o[1] == 0));
    }

    #[test]
    fn weak_same_address_loads_stay_coherent() {
        // CoRR: the R->R relaxation must not let two same-address loads
        // observe coherence out of order.
        let threads = vec![vec![st(0, 1)], vec![ld(0, 0), ld(0, 1)]];
        let outs = enumerate_weak_outcomes(&threads, 2);
        assert!(!outs.contains(&vec![1, 0]), "CoRR forbidden under weak too");
    }

    #[test]
    fn weak_outcomes_superset_of_tso() {
        // On every shape above, the weak outcome set contains the TSO set.
        let shapes: Vec<Vec<Vec<TsoOp>>> = vec![
            vec![vec![st(0, 42), st(1, 1)], vec![ld(1, 0), ld(0, 1)]],
            vec![vec![st(0, 1), ld(1, 0)], vec![st(1, 1), ld(0, 1)]],
            vec![vec![st(0, 1), fadd(2, 1, 2), ld(1, 0)], vec![st(1, 1), ld(0, 1)]],
            vec![vec![ld(0, 0), st(1, 1)], vec![ld(1, 1), st(0, 1)]],
        ];
        for threads in shapes {
            let n = 4;
            let tso = enumerate_tso_outcomes(&threads, n);
            let weak = enumerate_weak_outcomes(&threads, n);
            assert!(tso.is_subset(&weak), "tso ⊄ weak for {threads:?}");
        }
    }

    #[test]
    fn weak_load_buffering_still_forbidden() {
        // LB: loads may not hoist past *stores* (R->W preserved), so 1,1
        // stays forbidden even under weak.
        let threads = vec![vec![ld(0, 0), st(1, 1)], vec![ld(1, 1), st(0, 1)]];
        assert!(!enumerate_weak_outcomes(&threads, 2).contains(&vec![1, 1]));
    }
}
