//! Litmus-test harness: run small concurrent shapes on the detailed
//! simulator and check every observed outcome against the operational TSO
//! reference enumerator.

use crate::error::SimError;
use crate::machine::{Machine, MachineConfig};
use crate::tsoref::{enumerate_tso_outcomes, TsoOp};
use fa_core::AtomicPolicy;
use fa_isa::interp::GuestMem;
use fa_isa::{Kasm, Program, Reg, Word};
use std::collections::HashSet;

/// One litmus operation. Mirrors [`TsoOp`] but is the public authoring
/// type for tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LOp {
    /// `mem[addr] = val`
    St { addr: u8, val: Word },
    /// Observe `mem[addr]` into observation slot `out`.
    Ld { addr: u8, out: u8 },
    /// Observe `fetch_add(mem[addr], val)`'s old value into slot `out`.
    FetchAdd { addr: u8, val: Word, out: u8 },
    /// MFENCE.
    Fence,
}

/// A named litmus test: one op list per thread.
#[derive(Clone, Debug)]
pub struct LitmusTest {
    /// Human-readable name.
    pub name: &'static str,
    /// Per-thread straight-line programs.
    pub threads: Vec<Vec<LOp>>,
}

/// Base guest address of abstract location `a` (one cache line apart).
fn loc(a: u8) -> i64 {
    0x1000 + (a as i64) * 64
}

/// Base guest address of observation slot `s`.
fn out_slot(s: u8) -> i64 {
    0x4000 + (s as i64) * 64
}

const LITMUS_MEM: u64 = 1 << 16;

impl LitmusTest {
    /// Number of observation slots used.
    pub fn num_outs(&self) -> usize {
        self.threads
            .iter()
            .flatten()
            .filter_map(|op| match op {
                LOp::Ld { out, .. } | LOp::FetchAdd { out, .. } => Some(*out as usize + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Compiles each thread to a guest program.
    pub fn to_programs(&self) -> Vec<Program> {
        self.threads
            .iter()
            .map(|ops| {
                let mut k = Kasm::new();
                for op in ops {
                    match *op {
                        LOp::St { addr, val } => {
                            k.li(Reg::R1, loc(addr));
                            k.li(Reg::R2, val as i64);
                            k.st(Reg::R2, Reg::R1, 0);
                        }
                        LOp::Ld { addr, out } => {
                            k.li(Reg::R1, loc(addr));
                            k.ld(Reg::R2, Reg::R1, 0);
                            k.li(Reg::R3, out_slot(out));
                            k.st(Reg::R2, Reg::R3, 0);
                        }
                        LOp::FetchAdd { addr, val, out } => {
                            k.li(Reg::R1, loc(addr));
                            k.li(Reg::R2, val as i64);
                            k.fetch_add(Reg::R3, Reg::R1, 0, Reg::R2);
                            k.li(Reg::R4, out_slot(out));
                            k.st(Reg::R3, Reg::R4, 0);
                        }
                        LOp::Fence => {
                            k.fence();
                        }
                    }
                }
                k.halt();
                k.finish().expect("litmus programs are straight-line and valid")
            })
            .collect()
    }

    fn to_tso_threads(&self) -> Vec<Vec<TsoOp>> {
        self.threads
            .iter()
            .map(|ops| {
                ops.iter()
                    .map(|op| match *op {
                        LOp::St { addr, val } => TsoOp::St { addr, val },
                        LOp::Ld { addr, out } => TsoOp::Ld { addr, out_slot: out },
                        LOp::FetchAdd { addr, val, out } => {
                            TsoOp::FetchAdd { addr, val, out_slot: out }
                        }
                        LOp::Fence => TsoOp::Fence,
                    })
                    .collect()
            })
            .collect()
    }

    /// All outcomes the x86-TSO reference model allows.
    pub fn allowed_outcomes(&self) -> HashSet<Vec<Word>> {
        enumerate_tso_outcomes(&self.to_tso_threads(), self.num_outs())
    }

    /// Runs the test once on the detailed simulator and returns the
    /// observation vector.
    ///
    /// # Panics
    ///
    /// Panics if the machine fails to quiesce (forward-progress bug).
    pub fn run_detailed(
        &self,
        cfg: &MachineConfig,
        offsets: &[u64],
    ) -> Vec<Word> {
        self.run_checked(cfg, offsets, 5_000_000)
            .unwrap_or_else(|e| panic!("litmus {}: {e}", self.name))
    }

    /// Like [`run_detailed`](Self::run_detailed) but returns the failure
    /// (timeout or audit violation) instead of panicking — the entry point
    /// used by the differential fuzzer, which must keep going and report.
    ///
    /// # Errors
    ///
    /// Any [`SimError`] raised by the run.
    pub fn run_checked(
        &self,
        cfg: &MachineConfig,
        offsets: &[u64],
        max_cycles: u64,
    ) -> Result<Vec<Word>, Box<SimError>> {
        let mut m = Machine::new(cfg.clone(), self.to_programs(), GuestMem::new(LITMUS_MEM));
        if !offsets.is_empty() {
            let mut o = offsets.to_vec();
            o.resize(self.threads.len(), 0);
            m.set_start_offsets(o);
        }
        m.run(max_cycles).map_err(Box::new)?;
        Ok((0..self.num_outs())
            .map(|s| m.guest_mem().load(out_slot(s as u8) as u64))
            .collect())
    }

    /// Runs under `policy` with a spread of start offsets and asserts every
    /// observed outcome is TSO-allowed. Returns the set of observed
    /// outcomes (useful to additionally assert coverage).
    ///
    /// # Panics
    ///
    /// Panics on any TSO-forbidden observation — the core soundness check
    /// of this reproduction.
    pub fn verify_under(
        &self,
        base: &MachineConfig,
        policy: AtomicPolicy,
        offset_sets: &[&[u64]],
    ) -> HashSet<Vec<Word>> {
        let allowed = self.allowed_outcomes();
        let mut cfg = base.clone();
        cfg.core.policy = policy;
        let mut observed = HashSet::new();
        for offs in offset_sets {
            let got = self.run_detailed(&cfg, offs);
            assert!(
                allowed.contains(&got),
                "litmus {}: outcome {:?} observed under {:?} (offsets {:?}) is TSO-FORBIDDEN; \
                 allowed: {:?}",
                self.name,
                got,
                policy,
                offs,
                allowed
            );
            observed.insert(got);
        }
        observed
    }

    // ---- The standard menagerie -------------------------------------

    /// Store buffering (Dekker) — `0,0` allowed without fences.
    pub fn sb() -> LitmusTest {
        LitmusTest {
            name: "SB",
            threads: vec![
                vec![LOp::St { addr: 0, val: 1 }, LOp::Ld { addr: 1, out: 0 }],
                vec![LOp::St { addr: 1, val: 1 }, LOp::Ld { addr: 0, out: 1 }],
            ],
        }
    }

    /// Store buffering with MFENCE — `0,0` forbidden.
    pub fn sb_fences() -> LitmusTest {
        LitmusTest {
            name: "SB+mfence",
            threads: vec![
                vec![LOp::St { addr: 0, val: 1 }, LOp::Fence, LOp::Ld { addr: 1, out: 0 }],
                vec![LOp::St { addr: 1, val: 1 }, LOp::Fence, LOp::Ld { addr: 0, out: 1 }],
            ],
        }
    }

    /// The paper's Figure 10: Dekker with atomic RMWs to unrelated
    /// addresses as the fences — `0,0` forbidden by type-1 atomicity.
    pub fn sb_rmws() -> LitmusTest {
        LitmusTest {
            name: "SB+rmw (paper Fig. 10)",
            threads: vec![
                vec![
                    LOp::St { addr: 0, val: 1 },
                    LOp::FetchAdd { addr: 2, val: 1, out: 2 },
                    LOp::Ld { addr: 1, out: 0 },
                ],
                vec![
                    LOp::St { addr: 1, val: 1 },
                    LOp::FetchAdd { addr: 3, val: 1, out: 3 },
                    LOp::Ld { addr: 0, out: 1 },
                ],
            ],
        }
    }

    /// Message passing: flag observed ⇒ data observed.
    pub fn mp() -> LitmusTest {
        LitmusTest {
            name: "MP",
            threads: vec![
                vec![LOp::St { addr: 0, val: 42 }, LOp::St { addr: 1, val: 1 }],
                vec![LOp::Ld { addr: 1, out: 0 }, LOp::Ld { addr: 0, out: 1 }],
            ],
        }
    }

    /// Load buffering shape — `1,1` forbidden under TSO (no load→store
    /// reordering).
    pub fn lb() -> LitmusTest {
        LitmusTest {
            name: "LB",
            threads: vec![
                vec![LOp::Ld { addr: 0, out: 0 }, LOp::St { addr: 1, val: 1 }],
                vec![LOp::Ld { addr: 1, out: 1 }, LOp::St { addr: 0, val: 1 }],
            ],
        }
    }

    /// Two RMWs racing on one location: strict serialization.
    pub fn rmw_race() -> LitmusTest {
        LitmusTest {
            name: "RMW-race",
            threads: vec![
                vec![LOp::FetchAdd { addr: 0, val: 1, out: 0 }],
                vec![LOp::FetchAdd { addr: 0, val: 1, out: 1 }],
            ],
        }
    }

    /// Independent reads of independent writes (IRIW) with fences. TSO is
    /// multi-copy atomic, so the two readers must agree on the order.
    pub fn iriw_fences() -> LitmusTest {
        LitmusTest {
            name: "IRIW+mfence",
            threads: vec![
                vec![LOp::St { addr: 0, val: 1 }],
                vec![LOp::St { addr: 1, val: 1 }],
                vec![
                    LOp::Ld { addr: 0, out: 0 },
                    LOp::Fence,
                    LOp::Ld { addr: 1, out: 1 },
                ],
                vec![
                    LOp::Ld { addr: 1, out: 2 },
                    LOp::Fence,
                    LOp::Ld { addr: 0, out: 3 },
                ],
            ],
        }
    }

    /// Write-to-read causality (WRC): T0 writes, T1 observes and writes a
    /// flag, T2 observes the flag — it must then observe T0's write
    /// (TSO is multi-copy atomic).
    pub fn wrc() -> LitmusTest {
        LitmusTest {
            name: "WRC",
            threads: vec![
                vec![LOp::St { addr: 0, val: 1 }],
                vec![LOp::Ld { addr: 0, out: 0 }, LOp::Fence, LOp::St { addr: 1, val: 1 }],
                vec![LOp::Ld { addr: 1, out: 1 }, LOp::Fence, LOp::Ld { addr: 0, out: 2 }],
            ],
        }
    }

    /// Coherence read-read (CoRR): two loads of one location in program
    /// order may never observe writes out of coherence order.
    pub fn corr() -> LitmusTest {
        LitmusTest {
            name: "CoRR",
            threads: vec![
                vec![LOp::St { addr: 0, val: 1 }],
                vec![LOp::Ld { addr: 0, out: 0 }, LOp::Ld { addr: 0, out: 1 }],
            ],
        }
    }

    /// RMW-vs-store coherence: a store racing a fetch-add on the same
    /// location; the RMW's read and write must be adjacent in coherence
    /// order (no store may slip between them).
    pub fn rmw_store_race() -> LitmusTest {
        LitmusTest {
            name: "RMW-store-race",
            threads: vec![
                vec![LOp::St { addr: 0, val: 10 }],
                vec![LOp::FetchAdd { addr: 0, val: 1, out: 0 }, LOp::Ld { addr: 0, out: 1 }],
            ],
        }
    }

    // ---- The classic gallery (Alglave et al. naming) ----------------

    /// IRIW without fences. TSO keeps loads in order and stores
    /// multi-copy atomic, so the readers must agree on the writes' order
    /// even unfenced — `1,0,1,0` stays forbidden.
    pub fn iriw() -> LitmusTest {
        LitmusTest {
            name: "IRIW",
            threads: vec![
                vec![LOp::St { addr: 0, val: 1 }],
                vec![LOp::St { addr: 1, val: 1 }],
                vec![LOp::Ld { addr: 0, out: 0 }, LOp::Ld { addr: 1, out: 1 }],
                vec![LOp::Ld { addr: 1, out: 2 }, LOp::Ld { addr: 0, out: 3 }],
            ],
        }
    }

    /// WRC with the fences replaced by atomic RMWs to unrelated lines —
    /// the paper's claim that an RMW orders like a fence, in a causality
    /// chain.
    pub fn wrc_rmw() -> LitmusTest {
        LitmusTest {
            name: "WRC+rmw",
            threads: vec![
                vec![LOp::St { addr: 0, val: 1 }],
                vec![
                    LOp::Ld { addr: 0, out: 0 },
                    LOp::FetchAdd { addr: 2, val: 1, out: 3 },
                    LOp::St { addr: 1, val: 1 },
                ],
                vec![
                    LOp::Ld { addr: 1, out: 1 },
                    LOp::FetchAdd { addr: 3, val: 1, out: 4 },
                    LOp::Ld { addr: 0, out: 2 },
                ],
            ],
        }
    }

    /// Read-to-write causality (RWC): a reader between a write and a
    /// fenced writer-reader — `1,0,0` forbidden.
    pub fn rwc() -> LitmusTest {
        LitmusTest {
            name: "RWC",
            threads: vec![
                vec![LOp::St { addr: 0, val: 1 }],
                vec![LOp::Ld { addr: 0, out: 0 }, LOp::Ld { addr: 1, out: 1 }],
                vec![LOp::St { addr: 1, val: 1 }, LOp::Fence, LOp::Ld { addr: 0, out: 2 }],
            ],
        }
    }

    /// RWC with the fence replaced by an atomic RMW to an unrelated line.
    pub fn rwc_rmw() -> LitmusTest {
        LitmusTest {
            name: "RWC+rmw",
            threads: vec![
                vec![LOp::St { addr: 0, val: 1 }],
                vec![LOp::Ld { addr: 0, out: 0 }, LOp::Ld { addr: 1, out: 1 }],
                vec![
                    LOp::St { addr: 1, val: 1 },
                    LOp::FetchAdd { addr: 2, val: 1, out: 3 },
                    LOp::Ld { addr: 0, out: 2 },
                ],
            ],
        }
    }

    /// Test R: write-write vs fenced write-read. The interesting forbidden
    /// outcome involves the *final* coherence order of `y`, which the
    /// axiomatic checker validates directly from the serialization log
    /// even though the architectural observation (`out0`) cannot see it.
    pub fn r() -> LitmusTest {
        LitmusTest {
            name: "R",
            threads: vec![
                vec![LOp::St { addr: 0, val: 1 }, LOp::St { addr: 1, val: 1 }],
                vec![LOp::St { addr: 1, val: 2 }, LOp::Fence, LOp::Ld { addr: 0, out: 0 }],
            ],
        }
    }

    /// Test S: write-write vs read-write. Like [`R`](Self::r), the
    /// forbidden shape is a co ∪ po cycle that the axiomatic checker
    /// observes via the serialization log.
    pub fn s() -> LitmusTest {
        LitmusTest {
            name: "S",
            threads: vec![
                vec![LOp::St { addr: 0, val: 2 }, LOp::St { addr: 1, val: 1 }],
                vec![LOp::Ld { addr: 1, out: 0 }, LOp::St { addr: 0, val: 1 }],
            ],
        }
    }

    /// 2+2W: two threads writing the same two locations in opposite
    /// orders, plus an observer. The co ∪ po-ww cycle (`x` and `y` both
    /// finally holding the *first* writes) is forbidden under TSO and
    /// caught by the checker from the serialization log.
    pub fn two_plus_two_w() -> LitmusTest {
        LitmusTest {
            name: "2+2W",
            threads: vec![
                vec![LOp::St { addr: 0, val: 1 }, LOp::St { addr: 1, val: 2 }],
                vec![LOp::St { addr: 1, val: 1 }, LOp::St { addr: 0, val: 2 }],
                vec![LOp::Ld { addr: 0, out: 0 }, LOp::Ld { addr: 1, out: 1 }],
            ],
        }
    }

    /// SB with an atomic RMW replacing exactly one of the two fences —
    /// the mixed variant of the paper's Figure 10; `0,0` still forbidden.
    pub fn sb_rmw_mixed() -> LitmusTest {
        LitmusTest {
            name: "SB+rmw+mfence",
            threads: vec![
                vec![
                    LOp::St { addr: 0, val: 1 },
                    LOp::FetchAdd { addr: 2, val: 1, out: 2 },
                    LOp::Ld { addr: 1, out: 0 },
                ],
                vec![LOp::St { addr: 1, val: 1 }, LOp::Fence, LOp::Ld { addr: 0, out: 1 }],
            ],
        }
    }

    /// Every test in the menagerie.
    pub fn all() -> Vec<LitmusTest> {
        vec![
            LitmusTest::sb(),
            LitmusTest::sb_fences(),
            LitmusTest::sb_rmws(),
            LitmusTest::mp(),
            LitmusTest::lb(),
            LitmusTest::rmw_race(),
            LitmusTest::iriw_fences(),
            LitmusTest::wrc(),
            LitmusTest::corr(),
            LitmusTest::rmw_store_race(),
            LitmusTest::iriw(),
            LitmusTest::wrc_rmw(),
            LitmusTest::rwc(),
            LitmusTest::rwc_rmw(),
            LitmusTest::r(),
            LitmusTest::s(),
            LitmusTest::two_plus_two_w(),
            LitmusTest::sb_rmw_mixed(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compilation_round_trip() {
        let t = LitmusTest::sb_rmws();
        assert_eq!(t.num_outs(), 4);
        let progs = t.to_programs();
        assert_eq!(progs.len(), 2);
        assert!(progs[0].len() > 4);
    }

    #[test]
    fn allowed_outcomes_match_reference_expectations() {
        assert!(LitmusTest::sb().allowed_outcomes().contains(&vec![0, 0]));
        assert!(!LitmusTest::sb_fences().allowed_outcomes().contains(&vec![0, 0]));
        let rmw = LitmusTest::sb_rmws().allowed_outcomes();
        assert!(!rmw.iter().any(|o| o[0] == 0 && o[1] == 0));
        // LB: 1,1 forbidden.
        assert!(!LitmusTest::lb().allowed_outcomes().contains(&vec![1, 1]));
    }

    #[test]
    fn new_shapes_have_expected_reference_outcomes() {
        // CoRR: out0=1, out1=0 (new-then-old) is coherence-forbidden.
        assert!(!LitmusTest::corr().allowed_outcomes().contains(&vec![1, 0]));
        // WRC: flag seen (out1=1) with cause chain (out0=1) forces out2=1.
        assert!(!LitmusTest::wrc()
            .allowed_outcomes()
            .iter()
            .any(|o| o[0] == 1 && o[1] == 1 && o[2] == 0));
        // RMW-store-race: the trailing load in the RMW's thread may never
        // observe a value older than the RMW's own write. If the RMW read 0
        // its write was 1; later writes (10) or their combination (11) are
        // fine, but the original 0 may never reappear.
        for o in LitmusTest::rmw_store_race().allowed_outcomes() {
            if o[0] == 0 {
                assert!(o[1] != 0, "{o:?}");
            }
        }
    }

    #[test]
    fn gallery_shapes_have_expected_reference_outcomes() {
        // IRIW unfenced: the readers may never disagree on the order of
        // the two independent writes (TSO is multi-copy atomic and loads
        // stay in program order).
        assert!(!LitmusTest::iriw().allowed_outcomes().contains(&vec![1, 0, 1, 0]));
        // RWC: seeing x=1 then missing y while the fenced writer misses x
        // is forbidden; the RMW variant forbids the same shape.
        assert!(!LitmusTest::rwc()
            .allowed_outcomes()
            .iter()
            .any(|o| o[0] == 1 && o[1] == 0 && o[2] == 0));
        assert!(!LitmusTest::rwc_rmw()
            .allowed_outcomes()
            .iter()
            .any(|o| o[0] == 1 && o[1] == 0 && o[2] == 0));
        // WRC+rmw: causality chain intact with RMWs as the fences.
        assert!(!LitmusTest::wrc_rmw()
            .allowed_outcomes()
            .iter()
            .any(|o| o[0] == 1 && o[1] == 1 && o[2] == 0));
        // SB with one RMW + one fence: 0,0 forbidden.
        assert!(!LitmusTest::sb_rmw_mixed()
            .allowed_outcomes()
            .iter()
            .any(|o| o[0] == 0 && o[1] == 0));
        // 2+2W observer: both locations finally holding the po-first
        // writes implies a co ∪ po-ww cycle — the observer may see the
        // transient 1,2 / 2,1 / etc., but the enumerator's outcomes must
        // all be reachable (sanity: set is non-empty and values bounded).
        let w22 = LitmusTest::two_plus_two_w().allowed_outcomes();
        assert!(!w22.is_empty());
        assert!(w22.iter().all(|o| o.iter().all(|&v| v <= 2)));
        // R and S compile and enumerate (their forbidden shapes live in
        // co, validated by the axiomatic checker, not in out-slots).
        assert_eq!(LitmusTest::r().num_outs(), 1);
        assert_eq!(LitmusTest::s().num_outs(), 1);
    }

    #[test]
    fn detailed_sim_respects_tso_on_quick_shapes() {
        let base = crate::presets::icelake_like();
        let offsets: [&[u64]; 3] = [&[], &[0, 40], &[40, 0]];
        for t in [LitmusTest::sb_rmws(), LitmusTest::mp()] {
            for policy in AtomicPolicy::ALL {
                t.verify_under(&base, policy, &offsets);
            }
        }
    }
}
