//! Litmus-test harness: run small concurrent shapes on the detailed
//! simulator and check every observed outcome against the matching
//! operational reference enumerator (x86-TSO or the ARM-like weak
//! baseline).

use crate::error::SimError;
use crate::machine::{Machine, MachineConfig};
use crate::tsoref::{enumerate_tso_outcomes, enumerate_weak_outcomes, TsoOp};
use fa_core::AtomicPolicy;
use fa_isa::interp::GuestMem;
use fa_isa::{Kasm, MemOrder, Program, Reg, RmwOp, Word};
use fa_trace::MemModel;
use std::collections::HashSet;

/// One litmus operation. Mirrors [`TsoOp`] but is the public authoring
/// type for tests. Prefer the constructor helpers ([`LOp::st`],
/// [`LOp::ld`], [`LOp::fadd`], [`LOp::fence`] and their `_ord` variants)
/// over struct literals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LOp {
    /// `mem[addr] = val`
    St { addr: u8, val: Word, ord: MemOrder },
    /// Observe `mem[addr]` into observation slot `out`.
    Ld { addr: u8, out: u8, ord: MemOrder },
    /// Observe `fetch_add(mem[addr], val)`'s old value into slot `out`.
    /// The annotation is recorded but inert — RMWs execute at SeqCst
    /// strength under both memory models.
    FetchAdd { addr: u8, val: Word, out: u8, ord: MemOrder },
    /// Standalone fence (SeqCst drains the store buffer under both
    /// models; weaker fences only pin program order under weak).
    Fence { ord: MemOrder },
}

impl LOp {
    /// Relaxed store.
    pub fn st(addr: u8, val: Word) -> LOp {
        LOp::St { addr, val, ord: MemOrder::Relaxed }
    }
    /// Annotated store.
    pub fn st_ord(addr: u8, val: Word, ord: MemOrder) -> LOp {
        LOp::St { addr, val, ord }
    }
    /// Relaxed load.
    pub fn ld(addr: u8, out: u8) -> LOp {
        LOp::Ld { addr, out, ord: MemOrder::Relaxed }
    }
    /// Annotated load.
    pub fn ld_ord(addr: u8, out: u8, ord: MemOrder) -> LOp {
        LOp::Ld { addr, out, ord }
    }
    /// Fetch-add (SeqCst, as all RMWs effectively are).
    pub fn fadd(addr: u8, val: Word, out: u8) -> LOp {
        LOp::FetchAdd { addr, val, out, ord: MemOrder::SeqCst }
    }
    /// SeqCst fence (MFENCE).
    pub fn fence() -> LOp {
        LOp::Fence { ord: MemOrder::SeqCst }
    }
    /// Annotated fence.
    pub fn fence_ord(ord: MemOrder) -> LOp {
        LOp::Fence { ord }
    }
}

/// A named litmus test: one op list per thread.
#[derive(Clone, Debug)]
pub struct LitmusTest {
    /// Human-readable name.
    pub name: &'static str,
    /// Per-thread straight-line programs.
    pub threads: Vec<Vec<LOp>>,
}

/// Base guest address of abstract location `a` (one cache line apart).
fn loc(a: u8) -> i64 {
    0x1000 + (a as i64) * 64
}

/// Base guest address of observation slot `s`.
fn out_slot(s: u8) -> i64 {
    0x4000 + (s as i64) * 64
}

const LITMUS_MEM: u64 = 1 << 16;

impl LitmusTest {
    /// Number of observation slots used.
    pub fn num_outs(&self) -> usize {
        self.threads
            .iter()
            .flatten()
            .filter_map(|op| match op {
                LOp::Ld { out, .. } | LOp::FetchAdd { out, .. } => Some(*out as usize + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Compiles each thread to a guest program, preserving the ordering
    /// annotations via the annotated `Kasm` emitters.
    pub fn to_programs(&self) -> Vec<Program> {
        self.threads
            .iter()
            .map(|ops| {
                let mut k = Kasm::new();
                for op in ops {
                    match *op {
                        LOp::St { addr, val, ord } => {
                            k.li(Reg::R1, loc(addr));
                            k.li(Reg::R2, val as i64);
                            k.st_ord(Reg::R2, Reg::R1, 0, ord);
                        }
                        LOp::Ld { addr, out, ord } => {
                            k.li(Reg::R1, loc(addr));
                            k.ld_ord(Reg::R2, Reg::R1, 0, ord);
                            k.li(Reg::R3, out_slot(out));
                            k.st(Reg::R2, Reg::R3, 0);
                        }
                        LOp::FetchAdd { addr, val, out, ord } => {
                            k.li(Reg::R1, loc(addr));
                            k.li(Reg::R2, val as i64);
                            k.rmw_ord(RmwOp::FetchAdd, Reg::R3, Reg::R1, 0, Reg::R2, ord);
                            k.li(Reg::R4, out_slot(out));
                            k.st(Reg::R3, Reg::R4, 0);
                        }
                        LOp::Fence { ord } => {
                            k.fence_ord(ord);
                        }
                    }
                }
                k.halt();
                k.finish().expect("litmus programs are straight-line and valid")
            })
            .collect()
    }

    fn to_tso_threads(&self) -> Vec<Vec<TsoOp>> {
        self.threads
            .iter()
            .map(|ops| {
                ops.iter()
                    .map(|op| match *op {
                        LOp::St { addr, val, ord } => TsoOp::St { addr, val, ord },
                        LOp::Ld { addr, out, ord } => TsoOp::Ld { addr, out_slot: out, ord },
                        LOp::FetchAdd { addr, val, out, ord } => {
                            TsoOp::FetchAdd { addr, val, out_slot: out, ord }
                        }
                        LOp::Fence { ord } => TsoOp::Fence { ord },
                    })
                    .collect()
            })
            .collect()
    }

    /// All outcomes the x86-TSO reference model allows.
    pub fn allowed_outcomes(&self) -> HashSet<Vec<Word>> {
        self.allowed_outcomes_under(MemModel::Tso)
    }

    /// All outcomes the given memory model's reference enumerator allows.
    pub fn allowed_outcomes_under(&self, model: MemModel) -> HashSet<Vec<Word>> {
        let threads = self.to_tso_threads();
        match model {
            MemModel::Tso => enumerate_tso_outcomes(&threads, self.num_outs()),
            MemModel::Weak => enumerate_weak_outcomes(&threads, self.num_outs()),
        }
    }

    /// Runs the test once on the detailed simulator and returns the
    /// observation vector.
    ///
    /// # Panics
    ///
    /// Panics if the machine fails to quiesce (forward-progress bug).
    pub fn run_detailed(
        &self,
        cfg: &MachineConfig,
        offsets: &[u64],
    ) -> Vec<Word> {
        self.run_checked(cfg, offsets, 5_000_000)
            .unwrap_or_else(|e| panic!("litmus {}: {e}", self.name))
    }

    /// Like [`run_detailed`](Self::run_detailed) but returns the failure
    /// (timeout or audit violation) instead of panicking — the entry point
    /// used by the differential fuzzer, which must keep going and report.
    ///
    /// # Errors
    ///
    /// Any [`SimError`] raised by the run.
    pub fn run_checked(
        &self,
        cfg: &MachineConfig,
        offsets: &[u64],
        max_cycles: u64,
    ) -> Result<Vec<Word>, Box<SimError>> {
        let mut m = Machine::new(cfg.clone(), self.to_programs(), GuestMem::new(LITMUS_MEM));
        if !offsets.is_empty() {
            let mut o = offsets.to_vec();
            o.resize(self.threads.len(), 0);
            m.set_start_offsets(o);
        }
        m.run(max_cycles).map_err(Box::new)?;
        Ok((0..self.num_outs())
            .map(|s| m.guest_mem().load(out_slot(s as u8) as u64))
            .collect())
    }

    /// Runs under `policy` with a spread of start offsets and asserts every
    /// observed outcome is TSO-allowed. Returns the set of observed
    /// outcomes (useful to additionally assert coverage).
    ///
    /// # Panics
    ///
    /// Panics on any TSO-forbidden observation — the core soundness check
    /// of this reproduction.
    pub fn verify_under(
        &self,
        base: &MachineConfig,
        policy: AtomicPolicy,
        offset_sets: &[&[u64]],
    ) -> HashSet<Vec<Word>> {
        self.verify_under_model(base, policy, MemModel::Tso, offset_sets)
    }

    /// Like [`verify_under`](Self::verify_under) but runs the core frontend
    /// under `model` and checks against that model's enumerator.
    ///
    /// # Panics
    ///
    /// Panics on any model-forbidden observation.
    pub fn verify_under_model(
        &self,
        base: &MachineConfig,
        policy: AtomicPolicy,
        model: MemModel,
        offset_sets: &[&[u64]],
    ) -> HashSet<Vec<Word>> {
        let allowed = self.allowed_outcomes_under(model);
        let mut cfg = base.clone();
        cfg.core.policy = policy;
        cfg.core.model = model;
        let mut observed = HashSet::new();
        for offs in offset_sets {
            let got = self.run_detailed(&cfg, offs);
            assert!(
                allowed.contains(&got),
                "litmus {}: outcome {:?} observed under {:?}/{} (offsets {:?}) is FORBIDDEN \
                 by the {} reference model; allowed: {:?}",
                self.name,
                got,
                policy,
                model.name(),
                offs,
                model.name(),
                allowed
            );
            observed.insert(got);
        }
        observed
    }

    // ---- The standard menagerie -------------------------------------

    /// Store buffering (Dekker) — `0,0` allowed without fences.
    pub fn sb() -> LitmusTest {
        LitmusTest {
            name: "SB",
            threads: vec![
                vec![LOp::st(0, 1), LOp::ld(1, 0)],
                vec![LOp::st(1, 1), LOp::ld(0, 1)],
            ],
        }
    }

    /// Store buffering with MFENCE — `0,0` forbidden.
    pub fn sb_fences() -> LitmusTest {
        LitmusTest {
            name: "SB+mfence",
            threads: vec![
                vec![LOp::st(0, 1), LOp::fence(), LOp::ld(1, 0)],
                vec![LOp::st(1, 1), LOp::fence(), LOp::ld(0, 1)],
            ],
        }
    }

    /// The paper's Figure 10: Dekker with atomic RMWs to unrelated
    /// addresses as the fences — `0,0` forbidden by type-1 atomicity.
    pub fn sb_rmws() -> LitmusTest {
        LitmusTest {
            name: "SB+rmw (paper Fig. 10)",
            threads: vec![
                vec![LOp::st(0, 1), LOp::fadd(2, 1, 2), LOp::ld(1, 0)],
                vec![LOp::st(1, 1), LOp::fadd(3, 1, 3), LOp::ld(0, 1)],
            ],
        }
    }

    /// Message passing: flag observed ⇒ data observed.
    pub fn mp() -> LitmusTest {
        LitmusTest {
            name: "MP",
            threads: vec![
                vec![LOp::st(0, 42), LOp::st(1, 1)],
                vec![LOp::ld(1, 0), LOp::ld(0, 1)],
            ],
        }
    }

    /// Load buffering shape — `1,1` forbidden under TSO (no load→store
    /// reordering).
    pub fn lb() -> LitmusTest {
        LitmusTest {
            name: "LB",
            threads: vec![
                vec![LOp::ld(0, 0), LOp::st(1, 1)],
                vec![LOp::ld(1, 1), LOp::st(0, 1)],
            ],
        }
    }

    /// Two RMWs racing on one location: strict serialization.
    pub fn rmw_race() -> LitmusTest {
        LitmusTest {
            name: "RMW-race",
            threads: vec![vec![LOp::fadd(0, 1, 0)], vec![LOp::fadd(0, 1, 1)]],
        }
    }

    /// Independent reads of independent writes (IRIW) with fences. TSO is
    /// multi-copy atomic, so the two readers must agree on the order.
    pub fn iriw_fences() -> LitmusTest {
        LitmusTest {
            name: "IRIW+mfence",
            threads: vec![
                vec![LOp::st(0, 1)],
                vec![LOp::st(1, 1)],
                vec![LOp::ld(0, 0), LOp::fence(), LOp::ld(1, 1)],
                vec![LOp::ld(1, 2), LOp::fence(), LOp::ld(0, 3)],
            ],
        }
    }

    /// Write-to-read causality (WRC): T0 writes, T1 observes and writes a
    /// flag, T2 observes the flag — it must then observe T0's write
    /// (TSO is multi-copy atomic).
    pub fn wrc() -> LitmusTest {
        LitmusTest {
            name: "WRC",
            threads: vec![
                vec![LOp::st(0, 1)],
                vec![LOp::ld(0, 0), LOp::fence(), LOp::st(1, 1)],
                vec![LOp::ld(1, 1), LOp::fence(), LOp::ld(0, 2)],
            ],
        }
    }

    /// Coherence read-read (CoRR): two loads of one location in program
    /// order may never observe writes out of coherence order.
    pub fn corr() -> LitmusTest {
        LitmusTest {
            name: "CoRR",
            threads: vec![
                vec![LOp::st(0, 1)],
                vec![LOp::ld(0, 0), LOp::ld(0, 1)],
            ],
        }
    }

    /// RMW-vs-store coherence: a store racing a fetch-add on the same
    /// location; the RMW's read and write must be adjacent in coherence
    /// order (no store may slip between them).
    pub fn rmw_store_race() -> LitmusTest {
        LitmusTest {
            name: "RMW-store-race",
            threads: vec![
                vec![LOp::st(0, 10)],
                vec![LOp::fadd(0, 1, 0), LOp::ld(0, 1)],
            ],
        }
    }

    // ---- The classic gallery (Alglave et al. naming) ----------------

    /// IRIW without fences. TSO keeps loads in order and stores
    /// multi-copy atomic, so the readers must agree on the writes' order
    /// even unfenced — `1,0,1,0` stays forbidden.
    pub fn iriw() -> LitmusTest {
        LitmusTest {
            name: "IRIW",
            threads: vec![
                vec![LOp::st(0, 1)],
                vec![LOp::st(1, 1)],
                vec![LOp::ld(0, 0), LOp::ld(1, 1)],
                vec![LOp::ld(1, 2), LOp::ld(0, 3)],
            ],
        }
    }

    /// WRC with the fences replaced by atomic RMWs to unrelated lines —
    /// the paper's claim that an RMW orders like a fence, in a causality
    /// chain.
    pub fn wrc_rmw() -> LitmusTest {
        LitmusTest {
            name: "WRC+rmw",
            threads: vec![
                vec![LOp::st(0, 1)],
                vec![LOp::ld(0, 0), LOp::fadd(2, 1, 3), LOp::st(1, 1)],
                vec![LOp::ld(1, 1), LOp::fadd(3, 1, 4), LOp::ld(0, 2)],
            ],
        }
    }

    /// Read-to-write causality (RWC): a reader between a write and a
    /// fenced writer-reader — `1,0,0` forbidden.
    pub fn rwc() -> LitmusTest {
        LitmusTest {
            name: "RWC",
            threads: vec![
                vec![LOp::st(0, 1)],
                vec![LOp::ld(0, 0), LOp::ld(1, 1)],
                vec![LOp::st(1, 1), LOp::fence(), LOp::ld(0, 2)],
            ],
        }
    }

    /// RWC with the fence replaced by an atomic RMW to an unrelated line.
    pub fn rwc_rmw() -> LitmusTest {
        LitmusTest {
            name: "RWC+rmw",
            threads: vec![
                vec![LOp::st(0, 1)],
                vec![LOp::ld(0, 0), LOp::ld(1, 1)],
                vec![LOp::st(1, 1), LOp::fadd(2, 1, 3), LOp::ld(0, 2)],
            ],
        }
    }

    /// Test R: write-write vs fenced write-read. The interesting forbidden
    /// outcome involves the *final* coherence order of `y`, which the
    /// axiomatic checker validates directly from the serialization log
    /// even though the architectural observation (`out0`) cannot see it.
    pub fn r() -> LitmusTest {
        LitmusTest {
            name: "R",
            threads: vec![
                vec![LOp::st(0, 1), LOp::st(1, 1)],
                vec![LOp::st(1, 2), LOp::fence(), LOp::ld(0, 0)],
            ],
        }
    }

    /// Test S: write-write vs read-write. Like [`R`](Self::r), the
    /// forbidden shape is a co ∪ po cycle that the axiomatic checker
    /// observes via the serialization log.
    pub fn s() -> LitmusTest {
        LitmusTest {
            name: "S",
            threads: vec![
                vec![LOp::st(0, 2), LOp::st(1, 1)],
                vec![LOp::ld(1, 0), LOp::st(0, 1)],
            ],
        }
    }

    /// 2+2W: two threads writing the same two locations in opposite
    /// orders, plus an observer. The co ∪ po-ww cycle (`x` and `y` both
    /// finally holding the *first* writes) is forbidden under TSO and
    /// caught by the checker from the serialization log.
    pub fn two_plus_two_w() -> LitmusTest {
        LitmusTest {
            name: "2+2W",
            threads: vec![
                vec![LOp::st(0, 1), LOp::st(1, 2)],
                vec![LOp::st(1, 1), LOp::st(0, 2)],
                vec![LOp::ld(0, 0), LOp::ld(1, 1)],
            ],
        }
    }

    /// SB with an atomic RMW replacing exactly one of the two fences —
    /// the mixed variant of the paper's Figure 10; `0,0` still forbidden.
    pub fn sb_rmw_mixed() -> LitmusTest {
        LitmusTest {
            name: "SB+rmw+mfence",
            threads: vec![
                vec![LOp::st(0, 1), LOp::fadd(2, 1, 2), LOp::ld(1, 0)],
                vec![LOp::st(1, 1), LOp::fence(), LOp::ld(0, 1)],
            ],
        }
    }

    /// Every test in the menagerie.
    pub fn all() -> Vec<LitmusTest> {
        vec![
            LitmusTest::sb(),
            LitmusTest::sb_fences(),
            LitmusTest::sb_rmws(),
            LitmusTest::mp(),
            LitmusTest::lb(),
            LitmusTest::rmw_race(),
            LitmusTest::iriw_fences(),
            LitmusTest::wrc(),
            LitmusTest::corr(),
            LitmusTest::rmw_store_race(),
            LitmusTest::iriw(),
            LitmusTest::wrc_rmw(),
            LitmusTest::rwc(),
            LitmusTest::rwc_rmw(),
            LitmusTest::r(),
            LitmusTest::s(),
            LitmusTest::two_plus_two_w(),
            LitmusTest::sb_rmw_mixed(),
        ]
    }

    // ---- The weak-model gallery -------------------------------------
    //
    // Ordering-annotated variants of the classics. Under TSO every
    // annotation is inert; under the weak model the stale-data/reorder
    // outcomes appear exactly when the acquire-side synchronization is
    // missing.

    /// MP with an acquire flag read — stale data forbidden under weak.
    /// The writer stays fully relaxed: the FIFO store buffer makes
    /// release stores architecturally free.
    pub fn mp_acq() -> LitmusTest {
        LitmusTest {
            name: "MP+acq",
            threads: vec![
                vec![LOp::st(0, 42), LOp::st(1, 1)],
                vec![LOp::ld_ord(1, 0, MemOrder::Acquire), LOp::ld(0, 1)],
            ],
        }
    }

    /// MP with a release-annotated flag store *and* an acquire flag read —
    /// the canonical C++ handoff, forbidden under both models.
    pub fn mp_rel_acq() -> LitmusTest {
        LitmusTest {
            name: "MP+rel+acq",
            threads: vec![
                vec![LOp::st(0, 42), LOp::st_ord(1, 1, MemOrder::Release)],
                vec![LOp::ld_ord(1, 0, MemOrder::Acquire), LOp::ld(0, 1)],
            ],
        }
    }

    /// SB with SC-annotated stores and no fences — `0,0` forbidden under
    /// both models (the annotation alone blocks younger loads).
    pub fn sb_sc_stores() -> LitmusTest {
        LitmusTest {
            name: "SB+sc-st",
            threads: vec![
                vec![LOp::st_ord(0, 1, MemOrder::SeqCst), LOp::ld(1, 0)],
                vec![LOp::st_ord(1, 1, MemOrder::SeqCst), LOp::ld(0, 1)],
            ],
        }
    }

    /// SB with acquire fences — too weak to forbid `0,0` under the weak
    /// model (no store-buffer drain), but TSO drains on every fence.
    pub fn sb_acq_fences() -> LitmusTest {
        LitmusTest {
            name: "SB+acq-fence",
            threads: vec![
                vec![LOp::st(0, 1), LOp::fence_ord(MemOrder::Acquire), LOp::ld(1, 0)],
                vec![LOp::st(1, 1), LOp::fence_ord(MemOrder::Acquire), LOp::ld(0, 1)],
            ],
        }
    }

    /// IRIW with acquire readers — our weak baseline is multi-copy atomic
    /// (single shared memory), so the readers still agree on the order.
    pub fn iriw_acq() -> LitmusTest {
        LitmusTest {
            name: "IRIW+acq",
            threads: vec![
                vec![LOp::st(0, 1)],
                vec![LOp::st(1, 1)],
                vec![LOp::ld_ord(0, 0, MemOrder::Acquire), LOp::ld_ord(1, 1, MemOrder::Acquire)],
                vec![LOp::ld_ord(1, 2, MemOrder::Acquire), LOp::ld_ord(0, 3, MemOrder::Acquire)],
            ],
        }
    }

    /// Every weak-gallery test.
    pub fn weak_gallery() -> Vec<LitmusTest> {
        vec![
            LitmusTest::mp_acq(),
            LitmusTest::mp_rel_acq(),
            LitmusTest::sb_sc_stores(),
            LitmusTest::sb_acq_fences(),
            LitmusTest::iriw_acq(),
        ]
    }

    // ---- The memlog-ported synchronization family --------------------
    //
    // Ported from temper's memlog fence-atomic / atomic-fence suites:
    // each shape pairs a *synchronizing* element on the writer side (a
    // release fence before the flag store) with one on the reader side
    // (an acquire load or an acquire fence). `stripped` removes the
    // reader-side acquire — the observable half: stripping the *release*
    // side alone is unobservable in this frontend because the FIFO store
    // buffer keeps W→W regardless (asserted as a documented invariant by
    // the conformance suite).

    /// memlog `fence_atomic` + acquire-op reader: writer `st data;
    /// fence.rel; st flag`, reader `ld.acq flag; ld data`.
    pub fn memlog_fence_atomic_acq_op(stripped: bool) -> LitmusTest {
        LitmusTest {
            name: if stripped { "memlog-fence-atomic-acq-op-stripped" } else { "memlog-fence-atomic-acq-op" },
            threads: vec![
                vec![LOp::st(0, 42), LOp::fence_ord(MemOrder::Release), LOp::st(1, 1)],
                vec![
                    if stripped { LOp::ld(1, 0) } else { LOp::ld_ord(1, 0, MemOrder::Acquire) },
                    LOp::ld(0, 1),
                ],
            ],
        }
    }

    /// memlog `atomic_fence` reader: writer as above, reader `ld flag;
    /// fence.acq; ld data`. `stripped` removes the acquire fence.
    pub fn memlog_atomic_fence_acq_fence(stripped: bool) -> LitmusTest {
        let mut reader = vec![LOp::ld(1, 0)];
        if !stripped {
            reader.push(LOp::fence_ord(MemOrder::Acquire));
        }
        reader.push(LOp::ld(0, 1));
        LitmusTest {
            name: if stripped { "memlog-atomic-fence-stripped" } else { "memlog-atomic-fence" },
            threads: vec![
                vec![LOp::st(0, 42), LOp::fence_ord(MemOrder::Release), LOp::st(1, 1)],
                reader,
            ],
        }
    }

    /// memlog release-chain: a three-thread handoff where the middle
    /// thread republishes under its own release fence. `stripped` removes
    /// both acquire sides.
    pub fn memlog_fence_atomic_chain(stripped: bool) -> LitmusTest {
        let acq = |addr: u8, out: u8| {
            if stripped { LOp::ld(addr, out) } else { LOp::ld_ord(addr, out, MemOrder::Acquire) }
        };
        LitmusTest {
            name: if stripped { "memlog-fence-atomic-chain-stripped" } else { "memlog-fence-atomic-chain" },
            threads: vec![
                vec![LOp::st(0, 42), LOp::fence_ord(MemOrder::Release), LOp::st(1, 1)],
                vec![acq(1, 0), LOp::fence_ord(MemOrder::Release), LOp::st(2, 1)],
                vec![acq(2, 1), LOp::ld(0, 2)],
            ],
        }
    }

    /// memlog SC-fence Dekker: `stripped` removes both fences, exposing
    /// the `0,0` outcome under both models.
    pub fn memlog_sb_sc_fence(stripped: bool) -> LitmusTest {
        if stripped {
            LitmusTest { name: "memlog-sb-sc-fence-stripped", ..LitmusTest::sb() }
        } else {
            LitmusTest { name: "memlog-sb-sc-fence", ..LitmusTest::sb_fences() }
        }
    }

    /// memlog SC-store Dekker: `stripped` relaxes the store annotations.
    pub fn memlog_sb_sc_store(stripped: bool) -> LitmusTest {
        if stripped {
            LitmusTest { name: "memlog-sb-sc-store-stripped", ..LitmusTest::sb() }
        } else {
            LitmusTest { name: "memlog-sb-sc-store", ..LitmusTest::sb_sc_stores() }
        }
    }

    /// memlog release-store handoff: writer `st data; st.rel flag`,
    /// reader acquire. `stripped` relaxes the *release* annotation only —
    /// the documented always-passes case (FIFO store buffer).
    pub fn memlog_mp_release_store(stripped: bool) -> LitmusTest {
        LitmusTest {
            name: if stripped { "memlog-mp-release-store-stripped" } else { "memlog-mp-release-store" },
            threads: vec![
                vec![
                    LOp::st(0, 42),
                    if stripped { LOp::st(1, 1) } else { LOp::st_ord(1, 1, MemOrder::Release) },
                ],
                vec![LOp::ld_ord(1, 0, MemOrder::Acquire), LOp::ld(0, 1)],
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compilation_round_trip() {
        let t = LitmusTest::sb_rmws();
        assert_eq!(t.num_outs(), 4);
        let progs = t.to_programs();
        assert_eq!(progs.len(), 2);
        assert!(progs[0].len() > 4);
    }

    #[test]
    fn allowed_outcomes_match_reference_expectations() {
        assert!(LitmusTest::sb().allowed_outcomes().contains(&vec![0, 0]));
        assert!(!LitmusTest::sb_fences().allowed_outcomes().contains(&vec![0, 0]));
        let rmw = LitmusTest::sb_rmws().allowed_outcomes();
        assert!(!rmw.iter().any(|o| o[0] == 0 && o[1] == 0));
        // LB: 1,1 forbidden.
        assert!(!LitmusTest::lb().allowed_outcomes().contains(&vec![1, 1]));
    }

    #[test]
    fn new_shapes_have_expected_reference_outcomes() {
        // CoRR: out0=1, out1=0 (new-then-old) is coherence-forbidden.
        assert!(!LitmusTest::corr().allowed_outcomes().contains(&vec![1, 0]));
        // WRC: flag seen (out1=1) with cause chain (out0=1) forces out2=1.
        assert!(!LitmusTest::wrc()
            .allowed_outcomes()
            .iter()
            .any(|o| o[0] == 1 && o[1] == 1 && o[2] == 0));
        // RMW-store-race: the trailing load in the RMW's thread may never
        // observe a value older than the RMW's own write. If the RMW read 0
        // its write was 1; later writes (10) or their combination (11) are
        // fine, but the original 0 may never reappear.
        for o in LitmusTest::rmw_store_race().allowed_outcomes() {
            if o[0] == 0 {
                assert!(o[1] != 0, "{o:?}");
            }
        }
    }

    #[test]
    fn gallery_shapes_have_expected_reference_outcomes() {
        // IRIW unfenced: the readers may never disagree on the order of
        // the two independent writes (TSO is multi-copy atomic and loads
        // stay in program order).
        assert!(!LitmusTest::iriw().allowed_outcomes().contains(&vec![1, 0, 1, 0]));
        // RWC: seeing x=1 then missing y while the fenced writer misses x
        // is forbidden; the RMW variant forbids the same shape.
        assert!(!LitmusTest::rwc()
            .allowed_outcomes()
            .iter()
            .any(|o| o[0] == 1 && o[1] == 0 && o[2] == 0));
        assert!(!LitmusTest::rwc_rmw()
            .allowed_outcomes()
            .iter()
            .any(|o| o[0] == 1 && o[1] == 0 && o[2] == 0));
        // WRC+rmw: causality chain intact with RMWs as the fences.
        assert!(!LitmusTest::wrc_rmw()
            .allowed_outcomes()
            .iter()
            .any(|o| o[0] == 1 && o[1] == 1 && o[2] == 0));
        // SB with one RMW + one fence: 0,0 forbidden.
        assert!(!LitmusTest::sb_rmw_mixed()
            .allowed_outcomes()
            .iter()
            .any(|o| o[0] == 0 && o[1] == 0));
        // 2+2W observer: both locations finally holding the po-first
        // writes implies a co ∪ po-ww cycle — the observer may see the
        // transient 1,2 / 2,1 / etc., but the enumerator's outcomes must
        // all be reachable (sanity: set is non-empty and values bounded).
        let w22 = LitmusTest::two_plus_two_w().allowed_outcomes();
        assert!(!w22.is_empty());
        assert!(w22.iter().all(|o| o.iter().all(|&v| v <= 2)));
        // R and S compile and enumerate (their forbidden shapes live in
        // co, validated by the axiomatic checker, not in out-slots).
        assert_eq!(LitmusTest::r().num_outs(), 1);
        assert_eq!(LitmusTest::s().num_outs(), 1);
    }

    #[test]
    fn weak_gallery_reference_expectations() {
        use MemModel::{Tso, Weak};
        // Plain MP: stale data appears only under weak.
        let mp = LitmusTest::mp();
        assert!(!mp.allowed_outcomes_under(Tso).contains(&vec![1, 0]));
        assert!(mp.allowed_outcomes_under(Weak).contains(&vec![1, 0]));
        // Acquire flag read forbids it again (and is inert under TSO).
        for t in [LitmusTest::mp_acq(), LitmusTest::mp_rel_acq()] {
            assert!(!t.allowed_outcomes_under(Weak).contains(&vec![1, 0]), "{}", t.name);
            assert_eq!(
                t.allowed_outcomes_under(Tso),
                mp.allowed_outcomes_under(Tso),
                "{}: annotations must be inert under TSO",
                t.name
            );
        }
        // SC stores forbid SB's 0,0 under weak, but under TSO the store
        // annotation is inert and W->R stays TSO's defining relaxation.
        assert!(!LitmusTest::sb_sc_stores().allowed_outcomes_under(Weak).contains(&vec![0, 0]));
        assert!(LitmusTest::sb_sc_stores().allowed_outcomes_under(Tso).contains(&vec![0, 0]));
        assert!(LitmusTest::sb_acq_fences().allowed_outcomes_under(Weak).contains(&vec![0, 0]));
        assert!(!LitmusTest::sb_acq_fences().allowed_outcomes_under(Tso).contains(&vec![0, 0]));
        // IRIW with acquires: still multi-copy atomic.
        assert!(!LitmusTest::iriw_acq()
            .allowed_outcomes_under(Weak)
            .contains(&vec![1, 0, 1, 0]));
    }

    #[test]
    fn memlog_family_reference_expectations() {
        use MemModel::Weak;
        // Fenced variants forbid the stale outcome; stripping the
        // reader-side acquire exposes it.
        for (fenced, stripped) in [
            (
                LitmusTest::memlog_fence_atomic_acq_op(false),
                LitmusTest::memlog_fence_atomic_acq_op(true),
            ),
            (
                LitmusTest::memlog_atomic_fence_acq_fence(false),
                LitmusTest::memlog_atomic_fence_acq_fence(true),
            ),
        ] {
            assert!(!fenced.allowed_outcomes_under(Weak).contains(&vec![1, 0]), "{}", fenced.name);
            assert!(stripped.allowed_outcomes_under(Weak).contains(&vec![1, 0]), "{}", stripped.name);
        }
        // Chain: both-flags-seen with stale data forbidden when fenced.
        let chain = LitmusTest::memlog_fence_atomic_chain(false);
        assert!(!chain
            .allowed_outcomes_under(Weak)
            .iter()
            .any(|o| o[0] == 1 && o[1] == 1 && o[2] == 0));
        let chain_stripped = LitmusTest::memlog_fence_atomic_chain(true);
        assert!(chain_stripped
            .allowed_outcomes_under(Weak)
            .iter()
            .any(|o| o[0] == 1 && o[1] == 1 && o[2] == 0));
        // Dekker variants.
        assert!(!LitmusTest::memlog_sb_sc_fence(false).allowed_outcomes_under(Weak).contains(&vec![0, 0]));
        assert!(LitmusTest::memlog_sb_sc_fence(true).allowed_outcomes_under(Weak).contains(&vec![0, 0]));
        assert!(!LitmusTest::memlog_sb_sc_store(false).allowed_outcomes_under(Weak).contains(&vec![0, 0]));
        assert!(LitmusTest::memlog_sb_sc_store(true).allowed_outcomes_under(Weak).contains(&vec![0, 0]));
        // Release-store handoff: stripping the *release* side is
        // unobservable (FIFO store buffer keeps W->W) — both variants
        // forbid stale data. This is the documented always-pass case.
        assert!(!LitmusTest::memlog_mp_release_store(false)
            .allowed_outcomes_under(Weak)
            .contains(&vec![1, 0]));
        assert!(!LitmusTest::memlog_mp_release_store(true)
            .allowed_outcomes_under(Weak)
            .contains(&vec![1, 0]));
    }

    #[test]
    fn detailed_sim_respects_tso_on_quick_shapes() {
        let base = crate::presets::icelake_like();
        let offsets: [&[u64]; 3] = [&[], &[0, 40], &[40, 0]];
        for t in [LitmusTest::sb_rmws(), LitmusTest::mp()] {
            for policy in AtomicPolicy::ALL {
                t.verify_under(&base, policy, &offsets);
            }
        }
    }

    #[test]
    fn detailed_sim_respects_weak_model_on_quick_shapes() {
        let base = crate::presets::icelake_like();
        let offsets: [&[u64]; 3] = [&[], &[0, 40], &[40, 0]];
        for t in [LitmusTest::mp_acq(), LitmusTest::sb_sc_stores()] {
            for policy in [AtomicPolicy::FencedBaseline, AtomicPolicy::FreeFwd] {
                t.verify_under_model(&base, policy, MemModel::Weak, &offsets);
            }
        }
    }
}
