//! Axiomatic x86-TSO + RMW-atomicity conformance checking of full
//! executions.
//!
//! The operational reference model ([`crate::tsoref`]) enumerates every
//! legal outcome of a tiny litmus program — exponential, so it caps out at
//! a handful of operations. This module takes the opposite approach,
//! following the axiomatic style of Owens et al. (x86-TSO) and Alglave et
//! al. (herding cats): given the *data events* of one complete execution —
//! per-core committed accesses with values and rf write-ids, plus the
//! memory system's global write-serialization order — it reconstructs the
//! program order `po`, reads-from `rf`, coherence `co`, and from-reads
//! `fr` relations and verifies the TSO axioms in near-linear time. Any
//! run of the detailed simulator, including full synthetic workloads
//! under fault injection and a contended interconnect, can be checked.
//!
//! Checked axioms, in order:
//!
//! 1. **rf-wf** — every load's write-id names a committed store to the
//!    same address carrying the same value (write-id 0 = initial memory).
//! 2. **co-wf** — the serialization log and the committed stores agree
//!    exactly (each committed store performs exactly once, with matching
//!    address and value); per-line directory write-epochs are
//!    non-decreasing along the serialization order; every `store_unlock`
//!    performs inside a lock window.
//! 3. **sc-per-location** — coherence per address: no CoWW, CoRW1,
//!    CoRW2, CoWR, or CoRR shape (uniproc condition).
//! 4. **rmw-atomicity** — a `load_lock`'s `store_unlock` is the
//!    *immediate* co-successor of the write the `load_lock` read from: no
//!    other write to the line lands inside the atomicity window.
//! 5. **tso-ghb** — the global-happens-before relation
//!    `po_tso ∪ rfe ∪ co ∪ fr` is acyclic, where `po_tso` keeps all
//!    program-order edges except W→R (the store-buffer relaxation), and
//!    fences and RMWs restore the W→R edges the buffer would hide.
//!
//! `po_tso` is built in compressed form — O(events) edges instead of
//! O(events²) — from two per-core chains:
//!
//! * an *out-ordering* node (load, load_lock, enforced fence, or
//!   store_unlock — the latter two act as full barriers on x86) orders
//!   everything po-after it: edge to its po-successor plus an edge to the
//!   next out-ordering node, which by induction reaches the rest;
//! * a plain store orders only later writes and later barriers: edge to
//!   the next write and to the next fence/load_lock (a load_lock may not
//!   commit while the store buffer is non-empty, so W→LL is enforced).
//!
//! On failure the checker extracts a shortest violating cycle (SCC
//! restriction + breadth-first search) and reports it edge by edge.
//!
//! Collection of the inputs is strictly passive (side logs gated by
//! [`fa_trace::CheckMode`]); `FA_CHECK=off|tso` produce bit-identical
//! simulation results, which `ci.sh` pins.

use fa_isa::line_of;
use fa_trace::{write_id, write_id_parts, DataEvent, MemModel, SerEvent, WRITE_ID_INIT};
use std::collections::HashMap;
use std::fmt;

/// One complete execution's data events: per-core committed accesses in
/// program order plus the global write-serialization order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Execution {
    /// Committed data events per core, in commit (= program) order.
    pub cores: Vec<Vec<DataEvent>>,
    /// Performed stores in global serialization order; the per-address
    /// subsequence is the coherence order `co`.
    pub ser: Vec<SerEvent>,
}

impl Execution {
    /// Total data events across all cores.
    pub fn events(&self) -> usize {
        self.cores.iter().map(Vec::len).sum()
    }
}

/// A refuted axiom, with enough detail to debug the offending execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Name of the violated axiom: `rf-wf`, `co-wf`, `sc-per-location`,
    /// `rmw-atomicity`, or `tso-ghb`.
    pub axiom: &'static str,
    /// Human-readable description (offending events, or the full cycle).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "axiom {} violated: {}", self.axiom, self.detail)
    }
}

/// Sizes of the checked relations (for overhead reporting and logging).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Data events checked.
    pub events: usize,
    /// Committed stores (= serialization-order length).
    pub writes: usize,
    /// Edges in the compressed global-happens-before graph.
    pub ghb_edges: usize,
}

/// A committed store, keyed by its write-id.
struct WriteInfo {
    core: usize,
    addr: u64,
    value: u64,
    unlock: bool,
}

/// The coherence order: per-address write lists plus a write-id → (addr,
/// 1-based position) index. Position 0 is reserved for initial memory.
struct Co {
    order: HashMap<u64, Vec<u64>>,
    pos: HashMap<u64, usize>,
}

impl Co {
    /// 1-based coherence position of the write a read observed
    /// (0 = initial memory). `None` for an unknown write-id.
    fn read_pos(&self, writer: u64) -> Option<usize> {
        if writer == WRITE_ID_INIT {
            Some(0)
        } else {
            self.pos.get(&writer).copied()
        }
    }
}

/// Checks one complete execution against the x86-TSO + RMW-atomicity
/// axioms.
///
/// # Errors
///
/// The first refuted axiom, with detail naming the offending events (or,
/// for `tso-ghb`, a shortest violating cycle).
pub fn check(x: &Execution) -> Result<CheckReport, Violation> {
    check_model(x, MemModel::Tso)
}

/// Checks one complete execution against the axioms of the given memory
/// model.
///
/// The well-formedness and per-location axioms (`rf-wf`, `co-wf`,
/// `sc-per-location`, `rmw-atomicity`) are model-independent — coherence
/// and RMW atomicity hold in both models. Only the global-happens-before
/// acyclicity axiom is parameterized: under [`MemModel::Tso`] every event
/// has TSO strength (`tso-ghb`); under [`MemModel::Weak`] the preserved
/// program order honours the per-event [`fa_isa::MemOrder`] annotations
/// (`weak-ghb`, see [`check_ghb`] for the exact edge rules).
///
/// # Errors
///
/// The first refuted axiom, with detail naming the offending events (or,
/// for the ghb axiom, a shortest violating cycle).
pub fn check_model(x: &Execution, model: MemModel) -> Result<CheckReport, Violation> {
    let writes = collect_writes(x)?;
    let co = check_co_wf(x, &writes)?;
    check_rf_wf(x, &writes)?;
    check_sc_per_location(x, &co)?;
    check_rmw_atomicity(x, &co)?;
    let ghb_edges = check_ghb(x, &writes, &co, model)?;
    Ok(CheckReport { events: x.events(), writes: writes.len(), ghb_edges })
}

/// Renders an event for violation messages.
fn show(core: usize, ev: &DataEvent) -> String {
    let kind = match ev {
        DataEvent::Load { .. } => "Load",
        DataEvent::LoadLock { .. } => "LoadLock",
        DataEvent::Store { .. } => "Store",
        DataEvent::StoreUnlock { .. } => "StoreUnlock",
        DataEvent::Fence { .. } => "Fence",
    };
    match ev.addr() {
        Some(a) => format!("c{core}:{kind}@{a:#x}(seq {})", ev.seq()),
        None => format!("c{core}:{kind}(seq {})", ev.seq()),
    }
}

/// Renders a write-id for violation messages.
fn show_wid(w: u64) -> String {
    match write_id_parts(w) {
        Some((core, seq)) => format!("c{core}/seq {seq}"),
        None => "<init>".to_string(),
    }
}

fn collect_writes(x: &Execution) -> Result<HashMap<u64, WriteInfo>, Violation> {
    let mut writes = HashMap::new();
    for (core, evs) in x.cores.iter().enumerate() {
        for ev in evs {
            let (addr, value, unlock) = match *ev {
                DataEvent::Store { addr, value, .. } => (addr, value, false),
                DataEvent::StoreUnlock { addr, value, .. } => (addr, value, true),
                _ => continue,
            };
            let wid = write_id(core as u16, ev.seq());
            if writes.insert(wid, WriteInfo { core, addr, value, unlock }).is_some() {
                return Err(Violation {
                    axiom: "co-wf",
                    detail: format!("duplicate committed store {}", show(core, ev)),
                });
            }
        }
    }
    Ok(writes)
}

/// Validates the serialization log against the committed stores and
/// builds the coherence order.
fn check_co_wf(x: &Execution, writes: &HashMap<u64, WriteInfo>) -> Result<Co, Violation> {
    let fail = |detail: String| Violation { axiom: "co-wf", detail };
    let mut order: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut pos: HashMap<u64, usize> = HashMap::new();
    let mut line_epoch: HashMap<u64, u64> = HashMap::new();
    for ev in &x.ser {
        let Some(w) = writes.get(&ev.writer) else {
            return Err(fail(format!(
                "serialized write {} to {:#x} does not match any committed store",
                show_wid(ev.writer),
                ev.addr
            )));
        };
        if w.addr != ev.addr || w.value != ev.value {
            return Err(fail(format!(
                "serialized write {} performed ({:#x}, {}) but committed ({:#x}, {})",
                show_wid(ev.writer),
                ev.addr,
                ev.value,
                w.addr,
                w.value
            )));
        }
        if w.unlock && !ev.under_lock {
            return Err(fail(format!(
                "store_unlock {} performed outside its lock window",
                show_wid(ev.writer)
            )));
        }
        // Write-serialization cross-check: performs funnel through
        // directory exclusive grants, so per-line epochs only grow.
        let line = line_of(ev.addr);
        let last = line_epoch.entry(line).or_insert(0);
        if ev.epoch < *last {
            return Err(fail(format!(
                "write-epoch regressed on line {:#x}: {} after {} (write {})",
                line,
                ev.epoch,
                last,
                show_wid(ev.writer)
            )));
        }
        *last = ev.epoch;
        let per_addr = order.entry(ev.addr).or_default();
        per_addr.push(ev.writer);
        if pos.insert(ev.writer, per_addr.len()).is_some() {
            return Err(fail(format!("write {} serialized twice", show_wid(ev.writer))));
        }
    }
    if pos.len() != writes.len() {
        let missing = writes
            .keys()
            .find(|w| !pos.contains_key(*w))
            .copied()
            .unwrap_or(WRITE_ID_INIT);
        return Err(fail(format!("committed store {} never performed", show_wid(missing))));
    }
    Ok(Co { order, pos })
}

/// Every load reads a committed store to the same address with the same
/// value. Reads of initial memory (write-id 0) skip the value check —
/// initial guest memory is mutated in place, so its original content is
/// not recoverable at check time.
fn check_rf_wf(x: &Execution, writes: &HashMap<u64, WriteInfo>) -> Result<(), Violation> {
    let fail = |detail: String| Violation { axiom: "rf-wf", detail };
    for (core, evs) in x.cores.iter().enumerate() {
        for ev in evs {
            let (addr, value, writer) = match *ev {
                DataEvent::Load { addr, value, writer, .. }
                | DataEvent::LoadLock { addr, value, writer, .. } => (addr, value, writer),
                _ => continue,
            };
            if writer == WRITE_ID_INIT {
                continue;
            }
            let Some(w) = writes.get(&writer) else {
                return Err(fail(format!(
                    "{} reads from unknown write {}",
                    show(core, ev),
                    show_wid(writer)
                )));
            };
            if w.addr != addr {
                return Err(fail(format!(
                    "{} reads from write {} to a different address {:#x}",
                    show(core, ev),
                    show_wid(writer),
                    w.addr
                )));
            }
            if w.value != value {
                return Err(fail(format!(
                    "{} observed {} but its writer {} stored {}",
                    show(core, ev),
                    value,
                    show_wid(writer),
                    w.value
                )));
            }
        }
    }
    Ok(())
}

/// The uniproc condition: per core and address, coherence positions of
/// writes and of observed writers never move backwards. One linear pass
/// with running maxima detects all five classic shapes.
fn check_sc_per_location(x: &Execution, co: &Co) -> Result<(), Violation> {
    let fail = |shape: &str, detail: String| Violation {
        axiom: "sc-per-location",
        detail: format!("{shape}: {detail}"),
    };
    for (core, evs) in x.cores.iter().enumerate() {
        // addr -> (max co-position of po-earlier writes, of observed
        // writers of po-earlier reads).
        let mut maxima: HashMap<u64, (usize, usize)> = HashMap::new();
        for ev in evs {
            match *ev {
                DataEvent::Store { addr, .. } | DataEvent::StoreUnlock { addr, .. } => {
                    let wid = write_id(core as u16, ev.seq());
                    let p = co.pos.get(&wid).copied().unwrap_or(0);
                    let (max_w, max_r) = maxima.entry(addr).or_insert((0, 0));
                    if p < *max_w {
                        return Err(fail(
                            "CoWW",
                            format!(
                                "{} serialized before a po-earlier write to the same address",
                                show(core, ev)
                            ),
                        ));
                    }
                    if p < *max_r {
                        return Err(fail(
                            "CoRW2",
                            format!(
                                "{} serialized before the write a po-earlier read observed",
                                show(core, ev)
                            ),
                        ));
                    }
                    *max_w = p;
                }
                DataEvent::Load { addr, writer, .. } | DataEvent::LoadLock { addr, writer, .. } => {
                    if let Some((wc, wseq)) = write_id_parts(writer) {
                        if wc as usize == core && wseq > ev.seq() {
                            return Err(fail(
                                "CoRW1",
                                format!(
                                    "{} reads from its own po-later store (seq {wseq})",
                                    show(core, ev)
                                ),
                            ));
                        }
                    }
                    let p = co.read_pos(writer).unwrap_or(0);
                    let (max_w, max_r) = maxima.entry(addr).or_insert((0, 0));
                    if p < *max_w {
                        return Err(fail(
                            "CoWR",
                            format!(
                                "{} observes {} although a po-earlier own store is co-later",
                                show(core, ev),
                                show_wid(writer)
                            ),
                        ));
                    }
                    if p < *max_r {
                        return Err(fail(
                            "CoRR",
                            format!(
                                "{} observes {}, co-older than what a po-earlier read saw",
                                show(core, ev),
                                show_wid(writer)
                            ),
                        ));
                    }
                    *max_r = (*max_r).max(p);
                }
                DataEvent::Fence { .. } => {}
            }
        }
    }
    Ok(())
}

/// RMW atomicity: the `store_unlock` must be the immediate co-successor
/// of the write its `load_lock` read — no foreign write inside the
/// window.
fn check_rmw_atomicity(x: &Execution, co: &Co) -> Result<(), Violation> {
    let fail = |detail: String| Violation { axiom: "rmw-atomicity", detail };
    for (core, evs) in x.cores.iter().enumerate() {
        // seq -> event index, for pairing a load_lock (seq s) with its
        // store_unlock (the µop triple is consecutive: s, s+1, s+2).
        let by_seq: HashMap<u64, usize> = evs.iter().enumerate().map(|(i, e)| (e.seq(), i)).collect();
        for ev in evs {
            let DataEvent::LoadLock { seq, addr, writer, .. } = *ev else { continue };
            let su = by_seq
                .get(&(seq + 2))
                .map(|&i| &evs[i])
                .and_then(|e| match e {
                    DataEvent::StoreUnlock { addr: a, .. } if *a == addr => Some(e),
                    _ => None,
                });
            let Some(su) = su else {
                return Err(fail(format!(
                    "{} committed without a matching store_unlock at seq {}",
                    show(core, ev),
                    seq + 2
                )));
            };
            let p = co.read_pos(writer).unwrap_or(0);
            let su_wid = write_id(core as u16, su.seq());
            let q = co.pos.get(&su_wid).copied().unwrap_or(0);
            if q != p + 1 {
                let interloper = co
                    .order
                    .get(&addr)
                    .and_then(|o| o.get(p))
                    .map(|&w| show_wid(w))
                    .unwrap_or_else(|| "<missing>".to_string());
                return Err(fail(format!(
                    "{} read {} (co position {p}) but its store_unlock serialized at \
                     position {q}; intervening write: {interloper}",
                    show(core, ev),
                    show_wid(writer)
                )));
            }
        }
    }
    Ok(())
}

/// Edge labels in the compressed global-happens-before graph.
const LABELS: [&str; 7] = ["po", "po-ww", "po-wb", "rfe", "co/fr", "po-rw", "po-rb"];
const L_PO: u8 = 0;
const L_PO_WW: u8 = 1;
const L_PO_WB: u8 = 2;
const L_RFE: u8 = 3;
const L_COFR: u8 = 4;
const L_PO_RW: u8 = 5;
const L_PO_RB: u8 = 6;

/// Acyclicity of `ppo ∪ rfe ∪ co ∪ fr` over all events, where the
/// preserved-program-order fragment depends on the model:
///
/// * **TSO** — every load, fence, `load_lock`, and `store_unlock` is
///   *out-ordering* (happens-before everything po-later); writes order
///   only to the next write (W→W) and the next fence/`load_lock`.
/// * **Weak** — out-ordering shrinks to acquire-class loads
///   (`acq`/`acq_rel`/`sc`), `load_lock`s, fences of any strength (every
///   logged fence is architecturally enforced), and `sc`-annotated plain
///   stores. Non-acquire loads keep R→W (to the next write, chained) and
///   R→F (to the next fence); same-address R→R is covered separately by
///   `sc-per-location`. Plain non-`sc` stores and `store_unlock`s keep
///   W→W plus edges into the next *SC* fence or `load_lock` (the two
///   barriers that drain the store buffer); a `store_unlock` is not
///   out-ordering under weak — the RMW's acquire side lives on its
///   `load_lock`.
fn check_ghb(
    x: &Execution,
    writes: &HashMap<u64, WriteInfo>,
    co: &Co,
    model: MemModel,
) -> Result<usize, Violation> {
    // Global node numbering: per-core blocks.
    let mut base = Vec::with_capacity(x.cores.len());
    let mut n = 0usize;
    for evs in &x.cores {
        base.push(n);
        n += evs.len();
    }
    let mut adj: Vec<Vec<(u32, u8)>> = vec![Vec::new(); n];
    let mut indeg = vec![0u32; n];
    let mut edges = 0usize;
    let push = |adj: &mut Vec<Vec<(u32, u8)>>, indeg: &mut Vec<u32>, from: usize, to: usize, label: u8| {
        adj[from].push((to as u32, label));
        indeg[to] += 1;
    };

    // Event index of each committed store, for rfe/co/fr endpoints.
    let mut node_of_wid: HashMap<u64, usize> = HashMap::with_capacity(writes.len());
    for (core, evs) in x.cores.iter().enumerate() {
        for (i, ev) in evs.iter().enumerate() {
            if ev.is_write() {
                node_of_wid.insert(write_id(core as u16, ev.seq()), base[core] + i);
            }
        }
    }

    // Compressed per-core ppo edges (model-dependent classification).
    let weak = model == MemModel::Weak;
    let is_out_ordering = |e: &DataEvent| match e {
        DataEvent::LoadLock { .. } | DataEvent::Fence { .. } => true,
        DataEvent::Load { ord, .. } => !weak || ord.is_acquire(),
        DataEvent::Store { ord, .. } => weak && ord.is_sc(),
        DataEvent::StoreUnlock { .. } => !weak,
    };
    // Barrier a po-earlier *read* additionally orders into. Under TSO all
    // loads are out-ordering, so this table goes unused there.
    let is_barrier_in_r = |e: &DataEvent| matches!(e, DataEvent::Fence { .. });
    // Barrier a po-earlier *write* additionally orders into: anything that
    // waits for the store buffer to drain.
    let is_barrier_in_w = |e: &DataEvent| match e {
        DataEvent::LoadLock { .. } => true,
        DataEvent::Fence { ord, .. } => !weak || ord.is_sc(),
        _ => false,
    };
    for (core, evs) in x.cores.iter().enumerate() {
        let m = evs.len();
        // Next-index tables, built backwards.
        let mut next_out = vec![usize::MAX; m];
        let mut next_store = vec![usize::MAX; m];
        let mut next_barrier_r = vec![usize::MAX; m];
        let mut next_barrier_w = vec![usize::MAX; m];
        let (mut o, mut s, mut br, mut bw) =
            (usize::MAX, usize::MAX, usize::MAX, usize::MAX);
        for i in (0..m).rev() {
            next_out[i] = o;
            next_store[i] = s;
            next_barrier_r[i] = br;
            next_barrier_w[i] = bw;
            let e = &evs[i];
            if is_out_ordering(e) {
                o = i;
            }
            if e.is_write() {
                s = i;
            }
            if is_barrier_in_r(e) {
                br = i;
            }
            if is_barrier_in_w(e) {
                bw = i;
            }
        }
        // Under TSO every event is out-ordering or a write, so the
        // succ/next_out/W->W chains already reach everything po-later
        // from any out-ordering node. Under weak, relaxed loads are
        // neither, so a write run can strand them: give each non-out
        // event an explicit edge from its preceding out-ordering node
        // (one incoming edge per event — still linear).
        let mut prev_out = vec![usize::MAX; m];
        if weak {
            let mut p = usize::MAX;
            for i in 0..m {
                prev_out[i] = p;
                if is_out_ordering(&evs[i]) {
                    p = i;
                }
            }
        }
        for (i, e) in evs.iter().enumerate() {
            let from = base[core] + i;
            if is_out_ordering(e) {
                if i + 1 < m {
                    push(&mut adj, &mut indeg, from, from + 1, L_PO);
                    edges += 1;
                }
                if next_out[i] != usize::MAX && next_out[i] != i + 1 {
                    push(&mut adj, &mut indeg, from, base[core] + next_out[i], L_PO);
                    edges += 1;
                }
            } else {
                // Store-like residue: plain/`store_unlock` writes under
                // both models, plus non-acquire loads under weak. Both
                // keep an edge to the next write; the barrier differs.
                let is_read = matches!(e, DataEvent::Load { .. });
                let (ww, wb) = if is_read { (L_PO_RW, L_PO_RB) } else { (L_PO_WW, L_PO_WB) };
                let nb = if is_read { next_barrier_r[i] } else { next_barrier_w[i] };
                if next_store[i] != usize::MAX {
                    push(&mut adj, &mut indeg, from, base[core] + next_store[i], ww);
                    edges += 1;
                }
                if nb != usize::MAX {
                    push(&mut adj, &mut indeg, from, base[core] + nb, wb);
                    edges += 1;
                }
                if prev_out[i] != usize::MAX && prev_out[i] + 1 != i {
                    push(&mut adj, &mut indeg, base[core] + prev_out[i], from, L_PO);
                    edges += 1;
                }
            }
        }
    }

    // Cross-core edges: rfe, co adjacency, fr.
    for (core, evs) in x.cores.iter().enumerate() {
        for (i, ev) in evs.iter().enumerate() {
            let (addr, writer) = match *ev {
                DataEvent::Load { addr, writer, .. }
                | DataEvent::LoadLock { addr, writer, .. } => (addr, writer),
                _ => continue,
            };
            let to = base[core] + i;
            let external =
                writes.get(&writer).map(|w| w.core != core).unwrap_or(false);
            if external {
                if let Some(&wn) = node_of_wid.get(&writer) {
                    push(&mut adj, &mut indeg, wn, to, L_RFE);
                    edges += 1;
                }
            }
            // fr: the read happens-before the co-successor of its writer
            // (includes fri — sound, since a forwarded read's writer is
            // the forwarding store itself).
            let p = co.read_pos(writer).unwrap_or(0);
            if let Some(succ) = co.order.get(&addr).and_then(|o| o.get(p)) {
                if let Some(&sn) = node_of_wid.get(succ) {
                    push(&mut adj, &mut indeg, to, sn, L_COFR);
                    edges += 1;
                }
            }
        }
    }
    for order in co.order.values() {
        for w in order.windows(2) {
            if let (Some(&a), Some(&b)) = (node_of_wid.get(&w[0]), node_of_wid.get(&w[1])) {
                push(&mut adj, &mut indeg, a, b, L_COFR);
                edges += 1;
            }
        }
    }

    // Kahn topological sort; leftovers contain a cycle.
    let mut stack: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
    let mut seen = 0usize;
    let mut indeg_left = indeg;
    while let Some(v) = stack.pop() {
        seen += 1;
        for &(w, _) in &adj[v] {
            indeg_left[w as usize] -= 1;
            if indeg_left[w as usize] == 0 {
                stack.push(w as usize);
            }
        }
    }
    if seen == n {
        return Ok(edges);
    }
    let remaining: Vec<usize> = (0..n).filter(|&v| indeg_left[v] > 0).collect();
    let cycle = shortest_cycle(&adj, &remaining);
    let describe = |v: usize| {
        // Failure path only: linear scan for the owning core (robust to
        // empty cores sharing a base offset).
        for (core, evs) in x.cores.iter().enumerate() {
            if v >= base[core] && v < base[core] + evs.len() {
                return show(core, &evs[v - base[core]]);
            }
        }
        format!("node {v}")
    };
    let mut msg = String::from("global-happens-before cycle: ");
    for (k, &(v, label)) in cycle.iter().enumerate() {
        if k > 0 {
            msg.push_str(" -> ");
        }
        msg.push_str(&describe(v));
        msg.push_str(&format!(" [{}]", LABELS[label as usize]));
    }
    if let Some(&(first, _)) = cycle.first() {
        msg.push_str(&format!(" -> {}", describe(first)));
    }
    let axiom = if weak { "weak-ghb" } else { "tso-ghb" };
    Err(Violation { axiom, detail: msg })
}

/// A shortest cycle inside the cyclic remainder of the graph: restrict to
/// `remaining` (every Kahn leftover lies on or upstream of a cycle), then
/// BFS from candidate start nodes back to themselves. Each node is
/// annotated with the label of its outgoing edge in the cycle.
fn shortest_cycle(adj: &[Vec<(u32, u8)>], remaining: &[usize]) -> Vec<(usize, u8)> {
    let in_rem: std::collections::HashSet<usize> = remaining.iter().copied().collect();
    let mut best: Vec<(usize, u8)> = Vec::new();
    for &start in remaining {
        // BFS over the remaining subgraph looking for a path back to start.
        let mut prev: HashMap<usize, (usize, u8)> = HashMap::new();
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(start);
        let mut found = false;
        'bfs: while let Some(v) = queue.pop_front() {
            for &(w, label) in &adj[v] {
                let w = w as usize;
                if !in_rem.contains(&w) {
                    continue;
                }
                if w == start {
                    prev.insert(start, (v, label));
                    found = true;
                    break 'bfs;
                }
                if let std::collections::hash_map::Entry::Vacant(e) = prev.entry(w) {
                    e.insert((v, label));
                    queue.push_back(w);
                }
            }
        }
        if !found {
            continue;
        }
        // Walk predecessors from start back around the cycle.
        let mut cycle = Vec::new();
        let (mut v, mut label) = prev[&start];
        loop {
            cycle.push((v, label));
            if v == start {
                break;
            }
            let (pv, pl) = prev[&v];
            v = pv;
            label = pl;
        }
        cycle.reverse();
        if best.is_empty() || cycle.len() < best.len() {
            best = cycle;
        }
        if best.len() <= 2 {
            break; // cannot get shorter
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_trace::MemOrder;

    const X: u64 = 0x1000;
    const Y: u64 = 0x1040;

    fn st(seq: u64, addr: u64, value: u64) -> DataEvent {
        st_ord(seq, addr, value, MemOrder::Relaxed)
    }
    fn st_ord(seq: u64, addr: u64, value: u64, ord: MemOrder) -> DataEvent {
        DataEvent::Store { seq, addr, value, ord }
    }
    fn ld(seq: u64, addr: u64, value: u64, writer: u64) -> DataEvent {
        ld_ord(seq, addr, value, writer, MemOrder::Relaxed)
    }
    fn ld_ord(seq: u64, addr: u64, value: u64, writer: u64, ord: MemOrder) -> DataEvent {
        DataEvent::Load { seq, addr, value, writer, ord }
    }
    fn ll(seq: u64, addr: u64, value: u64, writer: u64) -> DataEvent {
        DataEvent::LoadLock { seq, addr, value, writer }
    }
    fn su(seq: u64, addr: u64, value: u64) -> DataEvent {
        DataEvent::StoreUnlock { seq, addr, value }
    }
    fn fence(seq: u64) -> DataEvent {
        DataEvent::Fence { seq, ord: MemOrder::SeqCst }
    }
    fn fence_ord(seq: u64, ord: MemOrder) -> DataEvent {
        DataEvent::Fence { seq, ord }
    }
    /// Serialization event for `write_id(core, seq)`, plain store.
    fn ser(core: u16, seq: u64, addr: u64, value: u64) -> SerEvent {
        SerEvent { addr, writer: write_id(core, seq), value, epoch: 0, under_lock: false }
    }
    fn ser_unlock(core: u16, seq: u64, addr: u64, value: u64) -> SerEvent {
        SerEvent { addr, writer: write_id(core, seq), value, epoch: 0, under_lock: true }
    }

    #[test]
    fn trivial_single_core_accepted() {
        // St x 1; Ld x 1 (forwarded or after drain — writer is the store).
        let x = Execution {
            cores: vec![vec![st(1, X, 1), ld(2, X, 1, write_id(0, 1))]],
            ser: vec![ser(0, 1, X, 1)],
        };
        let r = check(&x).expect("accepted");
        assert_eq!(r.events, 2);
        assert_eq!(r.writes, 1);
    }

    #[test]
    fn sb_weak_outcome_accepted() {
        // Store buffering: both loads read initial memory — TSO-legal.
        let x = Execution {
            cores: vec![
                vec![st(1, X, 1), ld(2, Y, 0, WRITE_ID_INIT)],
                vec![st(1, Y, 1), ld(2, X, 0, WRITE_ID_INIT)],
            ],
            ser: vec![ser(0, 1, X, 1), ser(1, 1, Y, 1)],
        };
        check(&x).expect("SB weak outcome is TSO-legal");
    }

    #[test]
    fn sb_with_fences_forbidden_outcome_rejected() {
        // With fences between store and load, both-read-zero is illegal.
        let x = Execution {
            cores: vec![
                vec![st(1, X, 1), fence(2), ld(3, Y, 0, WRITE_ID_INIT)],
                vec![st(1, Y, 1), fence(2), ld(3, X, 0, WRITE_ID_INIT)],
            ],
            ser: vec![ser(0, 1, X, 1), ser(1, 1, Y, 1)],
        };
        let v = check(&x).expect_err("fenced SB weak outcome is illegal");
        assert_eq!(v.axiom, "tso-ghb");
        assert!(v.detail.contains("cycle"), "got: {}", v.detail);
    }

    #[test]
    fn sb_with_rmws_forbidden_outcome_rejected() {
        // The paper's Fig. 10 shape: the RMW acts as the fence. Core 0:
        // FetchAdd x; Ld y == 0. Core 1: FetchAdd y; Ld x == 0. Illegal.
        let x = Execution {
            cores: vec![
                vec![ll(1, X, 0, WRITE_ID_INIT), su(3, X, 1), ld(4, Y, 0, WRITE_ID_INIT)],
                vec![ll(1, Y, 0, WRITE_ID_INIT), su(3, Y, 1), ld(4, X, 0, WRITE_ID_INIT)],
            ],
            ser: vec![ser_unlock(0, 3, X, 1), ser_unlock(1, 3, Y, 1)],
        };
        let v = check(&x).expect_err("RMW-fenced SB weak outcome is illegal");
        assert_eq!(v.axiom, "tso-ghb");
    }

    #[test]
    fn mp_forbidden_outcome_rejected() {
        // Message passing: c1 sees the flag (y=1) but stale data (x=0),
        // with loads in po — illegal under TSO without any fence.
        let x = Execution {
            cores: vec![
                vec![st(1, X, 1), st(2, Y, 1)],
                vec![ld(1, Y, 1, write_id(0, 2)), ld(2, X, 0, WRITE_ID_INIT)],
            ],
            ser: vec![ser(0, 1, X, 1), ser(0, 2, Y, 1)],
        };
        let v = check(&x).expect_err("MP stale-data outcome is illegal");
        assert_eq!(v.axiom, "tso-ghb");
    }

    #[test]
    fn rf_value_mismatch_rejected() {
        let x = Execution {
            cores: vec![vec![st(1, X, 1), ld(2, X, 2, write_id(0, 1))]],
            ser: vec![ser(0, 1, X, 1)],
        };
        let v = check(&x).expect_err("value mismatch");
        assert_eq!(v.axiom, "rf-wf");
        assert!(v.detail.contains("observed 2"), "got: {}", v.detail);
    }

    #[test]
    fn rf_unknown_writer_rejected() {
        let x = Execution {
            cores: vec![vec![ld(1, X, 7, write_id(3, 9))]],
            ser: vec![],
        };
        let v = check(&x).expect_err("unknown writer");
        assert_eq!(v.axiom, "rf-wf");
    }

    #[test]
    fn co_missing_perform_rejected() {
        let x = Execution { cores: vec![vec![st(1, X, 1)]], ser: vec![] };
        let v = check(&x).expect_err("store never performed");
        assert_eq!(v.axiom, "co-wf");
        assert!(v.detail.contains("never performed"));
    }

    #[test]
    fn co_value_mismatch_rejected() {
        // The serialization log claims a different value than committed —
        // catches swapped store values even with no reader.
        let x = Execution { cores: vec![vec![st(1, X, 1)]], ser: vec![ser(0, 1, X, 9)] };
        let v = check(&x).expect_err("ser value mismatch");
        assert_eq!(v.axiom, "co-wf");
    }

    #[test]
    fn co_epoch_regression_rejected() {
        let mut s1 = ser(0, 1, X, 1);
        s1.epoch = 5;
        let s2 = ser(0, 2, X, 2); // epoch 0 < 5 on the same line
        let x = Execution { cores: vec![vec![st(1, X, 1), st(2, X, 2)]], ser: vec![s1, s2] };
        let v = check(&x).expect_err("epoch regression");
        assert_eq!(v.axiom, "co-wf");
        assert!(v.detail.contains("epoch"), "got: {}", v.detail);
    }

    #[test]
    fn unlock_outside_lock_window_rejected() {
        let x = Execution {
            cores: vec![vec![ll(1, X, 0, WRITE_ID_INIT), su(3, X, 1)]],
            // Logged as a plain (unlocked) perform: the atomicity window
            // was dropped.
            ser: vec![ser(0, 3, X, 1)],
        };
        let v = check(&x).expect_err("unlock outside window");
        assert_eq!(v.axiom, "co-wf");
        assert!(v.detail.contains("lock window"));
    }

    #[test]
    fn coww_rejected() {
        // Two po-ordered stores serialized in the opposite order.
        let x = Execution {
            cores: vec![vec![st(1, X, 1), st(2, X, 2)]],
            ser: vec![ser(0, 2, X, 2), ser(0, 1, X, 1)],
        };
        let v = check(&x).expect_err("CoWW");
        assert_eq!(v.axiom, "sc-per-location");
        assert!(v.detail.contains("CoWW"));
    }

    #[test]
    fn corr_rejected() {
        // Two po-ordered reads observing co in the wrong order.
        let x = Execution {
            cores: vec![
                vec![st(1, X, 1), st(2, X, 2)],
                vec![ld(1, X, 2, write_id(0, 2)), ld(2, X, 1, write_id(0, 1))],
            ],
            ser: vec![ser(0, 1, X, 1), ser(0, 2, X, 2)],
        };
        let v = check(&x).expect_err("CoRR");
        assert_eq!(v.axiom, "sc-per-location");
        assert!(v.detail.contains("CoRR"));
    }

    #[test]
    fn rmw_window_violation_rejected() {
        // A foreign store lands between the load_lock's read and its
        // store_unlock in co: atomicity broken.
        let x = Execution {
            cores: vec![
                vec![ll(1, X, 0, WRITE_ID_INIT), su(3, X, 1)],
                vec![st(1, X, 7)],
            ],
            // co(X): foreign write first, then the unlock — the LL read
            // initial memory (position 0) but its SU sits at position 2.
            ser: vec![ser(1, 1, X, 7), ser_unlock(0, 3, X, 1)],
        };
        let v = check(&x).expect_err("atomicity window violated");
        assert_eq!(v.axiom, "rmw-atomicity");
        assert!(v.detail.contains("intervening write"), "got: {}", v.detail);
    }

    #[test]
    fn rmw_interleaved_counter_accepted() {
        // Two cores each FetchAdd the same counter once; windows do not
        // overlap.
        let x = Execution {
            cores: vec![
                vec![ll(1, X, 0, WRITE_ID_INIT), su(3, X, 1)],
                vec![ll(1, X, 1, write_id(0, 3)), su(3, X, 2)],
            ],
            ser: vec![ser_unlock(0, 3, X, 1), ser_unlock(1, 3, X, 2)],
        };
        check(&x).expect("clean interleaving accepted");
    }

    #[test]
    fn violation_display_names_axiom() {
        let v = Violation { axiom: "tso-ghb", detail: "cycle".into() };
        assert_eq!(v.to_string(), "axiom tso-ghb violated: cycle");
    }

    // ---- weak-model parameterization ----

    /// MP with relaxed accesses everywhere: stale data is TSO-illegal but
    /// weak-legal (the reader's R→R is not preserved without acquire).
    fn mp_stale(reader_ord: MemOrder) -> Execution {
        Execution {
            cores: vec![
                vec![st(1, X, 1), st(2, Y, 1)],
                vec![
                    ld_ord(1, Y, 1, write_id(0, 2), reader_ord),
                    ld(2, X, 0, WRITE_ID_INIT),
                ],
            ],
            ser: vec![ser(0, 1, X, 1), ser(0, 2, Y, 1)],
        }
    }

    #[test]
    fn weak_allows_mp_relaxed_reorder() {
        let x = mp_stale(MemOrder::Relaxed);
        check(&x).expect_err("TSO forbids MP stale data");
        check_model(&x, MemModel::Weak).expect("weak allows it without acquire");
    }

    #[test]
    fn weak_rejects_mp_with_acquire_load() {
        let x = mp_stale(MemOrder::Acquire);
        let v = check_model(&x, MemModel::Weak).expect_err("acquire restores R->R");
        assert_eq!(v.axiom, "weak-ghb");
        assert!(v.detail.contains("cycle"), "got: {}", v.detail);
    }

    #[test]
    fn weak_rejects_mp_with_acquire_fence() {
        // Reader: Ld y=1; Fence.acq; Ld x=0. Every logged fence is
        // architecturally enforced, so even a non-SC fence restores R->R.
        let x = Execution {
            cores: vec![
                vec![st(1, X, 1), st(2, Y, 1)],
                vec![
                    ld(1, Y, 1, write_id(0, 2)),
                    fence_ord(2, MemOrder::Acquire),
                    ld(3, X, 0, WRITE_ID_INIT),
                ],
            ],
            ser: vec![ser(0, 1, X, 1), ser(0, 2, Y, 1)],
        };
        let v = check_model(&x, MemModel::Weak).expect_err("fence restores R->R");
        assert_eq!(v.axiom, "weak-ghb");
    }

    #[test]
    fn weak_keeps_write_write_order() {
        // The writer side of MP needs no release annotation: the FIFO
        // store buffer keeps W->W even for relaxed stores, so once the
        // reader uses acquire the stale-data outcome is forbidden with a
        // fully relaxed writer (release stores are architecturally free).
        let x = Execution {
            cores: vec![
                vec![st(1, X, 1), st(2, Y, 1)],
                vec![
                    ld_ord(1, Y, 1, write_id(0, 2), MemOrder::Acquire),
                    ld(2, X, 0, WRITE_ID_INIT),
                ],
            ],
            ser: vec![ser(0, 2, Y, 1), ser(0, 1, X, 1)],
        };
        let v = check_model(&x, MemModel::Weak).expect_err("W->W is kept");
        assert_eq!(v.axiom, "weak-ghb");
    }

    #[test]
    fn weak_allows_sb_without_sc() {
        // Store buffering, all relaxed: both-read-zero is weak-legal
        // (and TSO-legal — W->R is relaxed under both).
        let x = Execution {
            cores: vec![
                vec![st(1, X, 1), ld(2, Y, 0, WRITE_ID_INIT)],
                vec![st(1, Y, 1), ld(2, X, 0, WRITE_ID_INIT)],
            ],
            ser: vec![ser(0, 1, X, 1), ser(1, 1, Y, 1)],
        };
        check_model(&x, MemModel::Weak).expect("SB weak outcome allowed");
    }

    #[test]
    fn weak_rejects_sb_with_sc_fences() {
        let x = Execution {
            cores: vec![
                vec![st(1, X, 1), fence(2), ld(3, Y, 0, WRITE_ID_INIT)],
                vec![st(1, Y, 1), fence(2), ld(3, X, 0, WRITE_ID_INIT)],
            ],
            ser: vec![ser(0, 1, X, 1), ser(1, 1, Y, 1)],
        };
        let v = check_model(&x, MemModel::Weak).expect_err("SC fences restore W->R");
        assert_eq!(v.axiom, "weak-ghb");
    }

    #[test]
    fn weak_acquire_fence_does_not_restore_store_load() {
        // An acquire fence does not drain the store buffer: SB's
        // both-read-zero stays legal when the fences are only acquire.
        let x = Execution {
            cores: vec![
                vec![st(1, X, 1), fence_ord(2, MemOrder::Acquire), ld(3, Y, 0, WRITE_ID_INIT)],
                vec![st(1, Y, 1), fence_ord(2, MemOrder::Acquire), ld(3, X, 0, WRITE_ID_INIT)],
            ],
            ser: vec![ser(0, 1, X, 1), ser(1, 1, Y, 1)],
        };
        check_model(&x, MemModel::Weak).expect("acquire fence keeps W->R relaxed");
    }

    #[test]
    fn weak_rejects_sb_with_sc_stores() {
        // SC-annotated stores are out-ordering under weak: the store
        // happens-before the po-later load, so both-read-zero cycles.
        let x = Execution {
            cores: vec![
                vec![st_ord(1, X, 1, MemOrder::SeqCst), ld(2, Y, 0, WRITE_ID_INIT)],
                vec![st_ord(1, Y, 1, MemOrder::SeqCst), ld(2, X, 0, WRITE_ID_INIT)],
            ],
            ser: vec![ser(0, 1, X, 1), ser(1, 1, Y, 1)],
        };
        let v = check_model(&x, MemModel::Weak).expect_err("SC stores restore W->R");
        assert_eq!(v.axiom, "weak-ghb");
    }

    #[test]
    fn weak_rmw_store_unlock_not_out_ordering() {
        // The Fig. 10 SB-with-RMWs outcome: TSO-illegal, but the *weak
        // axioms* accept it — a `store_unlock` is not out-ordering under
        // weak (the RMW's acquire side lives on its `load_lock`), so no
        // SU->Ld edge closes the cycle. The weak checker is deliberately
        // looser here than both the hardware (whose SB-empty commit gate
        // never produces this outcome) and the enumerator; all
        // conformance assertions are one-directional, so looseness is
        // sound.
        let x = Execution {
            cores: vec![
                vec![ll(1, X, 0, WRITE_ID_INIT), su(3, X, 1), ld(4, Y, 0, WRITE_ID_INIT)],
                vec![ll(1, Y, 0, WRITE_ID_INIT), su(3, Y, 1), ld(4, X, 0, WRITE_ID_INIT)],
            ],
            ser: vec![ser_unlock(0, 3, X, 1), ser_unlock(1, 3, Y, 1)],
        };
        let v = check(&x).expect_err("TSO forbids SB-with-RMWs (0,0)");
        assert_eq!(v.axiom, "tso-ghb");
        check_model(&x, MemModel::Weak).expect("weak axioms accept it");
    }

    #[test]
    fn weak_relaxed_load_may_pass_later_rmw_read() {
        // A relaxed load is NOT ordered into a po-later load_lock: the
        // MP-stale shape with an intervening RMW on a disjoint address
        // stays weak-legal (C++ SC-RMW acquire semantics order later ops
        // after the RMW *read*, not earlier loads before it), while the
        // RMW's own acquire side still orders the po-later stale load —
        // which TSO turns into a cycle.
        const Z: u64 = 0x1080;
        let x = Execution {
            cores: vec![
                vec![st(1, X, 1), st(2, Y, 1)],
                vec![
                    ld(1, Y, 1, write_id(0, 2)),
                    ll(2, Z, 0, WRITE_ID_INIT),
                    su(4, Z, 1),
                    ld(5, X, 0, WRITE_ID_INIT),
                ],
            ],
            ser: vec![ser(0, 1, X, 1), ser(0, 2, Y, 1), ser_unlock(1, 4, Z, 1)],
        };
        check_model(&x, MemModel::Weak).expect("relaxed load passes later RMW read");
        check(&x).expect_err("TSO keeps R->R through the RMW");
    }

    #[test]
    fn weak_acquire_covers_nonadjacent_later_loads() {
        // Reader: Ld.acq y=1; St z; Ld x=0. The intervening store must
        // not strand the stale load outside the acquire's reach — pins
        // the prev-out coverage edge in the compressed weak encoding.
        const Z: u64 = 0x1080;
        let x = Execution {
            cores: vec![
                vec![st(1, X, 1), st(2, Y, 1)],
                vec![
                    ld_ord(1, Y, 1, write_id(0, 2), MemOrder::Acquire),
                    st(2, Z, 1),
                    ld(3, X, 0, WRITE_ID_INIT),
                ],
            ],
            ser: vec![ser(0, 1, X, 1), ser(0, 2, Y, 1), ser(1, 2, Z, 1)],
        };
        let v = check_model(&x, MemModel::Weak).expect_err("acquire orders all later loads");
        assert_eq!(v.axiom, "weak-ghb");
    }

    #[test]
    fn weak_model_leaves_uniproc_axioms_intact() {
        // Per-location coherence is model-independent: CoRR still rejected.
        let x = Execution {
            cores: vec![
                vec![st(1, X, 1), st(2, X, 2)],
                vec![ld(1, X, 2, write_id(0, 2)), ld(2, X, 1, write_id(0, 1))],
            ],
            ser: vec![ser(0, 1, X, 1), ser(0, 2, X, 2)],
        };
        let v = check_model(&x, MemModel::Weak).expect_err("CoRR is model-independent");
        assert_eq!(v.axiom, "sc-per-location");
    }
}
