//! Parallel sweep engine for independent simulation cells.
//!
//! Regenerating the paper's evaluation is a grid of hundreds of independent
//! deterministic runs — `(kernel, policy, preset, run-seed)` cells — each a
//! single-threaded [`crate::Machine`]. Because every cell is a pure function
//! of its inputs, fanning cells across OS threads and merging results **in
//! cell-index order** yields output bit-identical to the serial loop no
//! matter how the scheduler interleaves the workers. This is the same
//! property gem5's multi-queue event scheduling leans on: determinism per
//! unit of work makes throughput a scheduling problem, not a correctness
//! one.
//!
//! The engine is deliberately generic (`jobs: &[J]`, `f: Fn(usize, &J) ->
//! R`) so the figure bins, the methodology's multi-run loop and the fuzz
//! campaign all ride the same worker pool. Workers pull the next cell from
//! a shared atomic cursor (work stealing by index), so long cells do not
//! convoy short ones.
//!
//! Scoped threads come from `std::thread::scope` — the standard library's
//! take on crossbeam's scoped threads — so borrowed jobs and closures need
//! no `'static` bound and no external dependency.

use crate::error::{CellFailure, SimError};
use crate::machine::set_wall_deadline;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Worker threads to use when the caller passes `threads == 0`: the host's
/// available parallelism, or 1 if that cannot be determined.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn resolve_threads(requested: usize, jobs: usize) -> usize {
    let t = if requested == 0 { default_threads() } else { requested };
    t.clamp(1, jobs.max(1))
}

/// Runs `f` over every job on `threads` worker threads and returns the
/// results in job order. `threads == 0` selects [`default_threads`];
/// `threads == 1` (or a single job) runs inline with no thread spawned.
///
/// Each `f(index, job)` must be independent of every other cell; under that
/// contract the returned vector is bit-identical to the serial
/// `jobs.iter().enumerate().map(..)` loop regardless of scheduling.
///
/// # Panics
///
/// Propagates the first worker panic (by job order at merge time).
pub fn run_cells<J, R>(jobs: &[J], threads: usize, f: impl Fn(usize, &J) -> R + Sync) -> Vec<R>
where
    J: Sync,
    R: Send,
{
    let threads = resolve_threads(threads, jobs.len());
    if threads == 1 {
        return jobs.iter().enumerate().map(|(i, j)| f(i, j)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(jobs.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(i) else { break };
                let r = f(i, job);
                done.lock().expect("a worker panicked while merging").push((i, r));
            });
        }
    });
    let mut merged = done.into_inner().expect("a worker panicked while merging");
    // Merge in cell-index order: this is what makes the parallel sweep
    // byte-identical to the serial loop.
    merged.sort_by_key(|&(i, _)| i);
    debug_assert!(merged.len() == jobs.len());
    merged.into_iter().map(|(_, r)| r).collect()
}

/// A supervised cell that failed every attempt: how many attempts were
/// made and the last attempt's failure. The campaign quarantines the cell
/// and continues.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellQuarantine {
    /// Attempts made (1 + retries).
    pub attempts: u32,
    /// The last attempt's failure (boxed: a `SimError` carries a full
    /// machine snapshot, and the healthy path should stay thin).
    pub failure: Box<CellFailure>,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f` under per-cell isolation: panics are caught at this boundary,
/// the thread's wall-clock watchdog ([`set_wall_deadline`]) is armed for
/// each attempt, and failed attempts are retried up to `retries` times
/// before the cell is quarantined with its last failure.
///
/// The default panic hook still prints each caught panic to stderr; that
/// noise is deliberate (the campaign log should show what happened), and
/// replacing the global hook from concurrent sweep workers would race.
pub fn supervise<R>(
    retries: u32,
    wall: Option<Duration>,
    mut f: impl FnMut() -> Result<R, SimError>,
) -> Result<R, CellQuarantine> {
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        set_wall_deadline(wall);
        let outcome = catch_unwind(AssertUnwindSafe(&mut f));
        set_wall_deadline(None);
        let failure = match outcome {
            Ok(Ok(v)) => return Ok(v),
            Ok(Err(e)) => CellFailure::Sim(e),
            Err(payload) => CellFailure::Panic(panic_message(payload)),
        };
        if attempts > retries {
            return Err(CellQuarantine { attempts, failure: Box::new(failure) });
        }
    }
}

/// [`run_cells`] with per-cell supervision: each cell runs under
/// [`supervise`] (panic isolation + wall watchdog + retries), so one
/// wedged or panicking cell is quarantined instead of killing the
/// campaign. Results keep job order; deterministic cells still merge
/// bit-identical to a serial run at any thread count.
// The inner closure's Err carries a full machine snapshot by design; it
// is built once on the cold failure path, never per cycle.
#[allow(clippy::result_large_err)]
pub fn run_cells_supervised<J, R>(
    jobs: &[J],
    threads: usize,
    retries: u32,
    wall: Option<Duration>,
    f: impl Fn(usize, &J) -> Result<R, SimError> + Sync,
) -> Vec<Result<R, CellQuarantine>>
where
    J: Sync,
    R: Send,
{
    run_cells(jobs, threads, |i, j| supervise(retries, wall, || f(i, j)))
}

/// Wall-clock and simulated-throughput accounting for one sweep, the basis
/// of the repo's recorded perf trajectory (`BENCH_sweep.json`).
#[derive(Clone, Debug)]
pub struct SweepTiming {
    /// Cells executed.
    pub cells: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock time for the whole sweep.
    pub wall: Duration,
    /// Total simulated cycles across all cells.
    pub sim_cycles: u64,
    /// Total committed instructions across all cells.
    pub sim_instructions: u64,
}

impl SweepTiming {
    /// Simulated cycles per wall-clock second (aggregate over all workers).
    pub fn cycles_per_sec(&self) -> f64 {
        self.sim_cycles as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Simulated MIPS: committed instructions per wall-clock microsecond.
    pub fn mips(&self) -> f64 {
        self.sim_instructions as f64 / self.wall.as_secs_f64().max(1e-9) / 1e6
    }
}

/// [`run_cells`], timed: also returns a [`SweepTiming`] whose simulated
/// totals are accumulated from each result via `account(&R) -> (cycles,
/// instructions)`.
pub fn run_cells_timed<J, R>(
    jobs: &[J],
    threads: usize,
    f: impl Fn(usize, &J) -> R + Sync,
    account: impl Fn(&R) -> (u64, u64),
) -> (Vec<R>, SweepTiming)
where
    J: Sync,
    R: Send,
{
    let start = Instant::now();
    let results = run_cells(jobs, threads, f);
    let wall = start.elapsed();
    let (mut sim_cycles, mut sim_instructions) = (0u64, 0u64);
    for r in &results {
        let (c, i) = account(r);
        sim_cycles += c;
        sim_instructions += i;
    }
    let timing = SweepTiming {
        cells: jobs.len(),
        threads: resolve_threads(threads, jobs.len()),
        wall,
        sim_cycles,
        sim_instructions,
    };
    (results, timing)
}

#[cfg(test)]
// Test closures return SimError directly; the cold-path size is fine.
#[allow(clippy::result_large_err)]
mod tests {
    use super::*;

    #[test]
    fn merges_in_cell_index_order() {
        let jobs: Vec<u64> = (0..57).collect();
        // Uneven cell costs exercise the work-stealing cursor.
        let f = |i: usize, &j: &u64| {
            let mut acc = j;
            for _ in 0..(i % 7) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (i as u64, j, acc)
        };
        let serial = run_cells(&jobs, 1, f);
        let parallel = run_cells(&jobs, 4, f);
        assert_eq!(serial, parallel);
        assert_eq!(parallel.len(), 57);
        assert!(parallel.iter().enumerate().all(|(i, r)| r.0 == i as u64));
    }

    #[test]
    fn zero_threads_means_auto_and_oversubscription_is_clamped() {
        let jobs = [1, 2, 3];
        assert_eq!(run_cells(&jobs, 0, |_, &j| j * 2), vec![2, 4, 6]);
        // 64 threads over 3 jobs must not spawn idle workers or lose cells.
        assert_eq!(run_cells(&jobs, 64, |_, &j| j * 2), vec![2, 4, 6]);
        assert_eq!(run_cells::<u64, u64>(&[], 8, |_, &j| j), Vec::<u64>::new());
    }

    #[test]
    fn supervise_retries_then_succeeds() {
        let mut calls = 0;
        let r: Result<u64, CellQuarantine> = supervise(2, None, || {
            calls += 1;
            if calls < 3 {
                Err(SimError::InvalidMethodology { runs: 0, drop_slowest: 0 })
            } else {
                Ok(7)
            }
        });
        assert_eq!(r, Ok(7));
        assert_eq!(calls, 3, "two retries were allowed and consumed");
    }

    #[test]
    fn supervise_quarantines_with_last_failure_after_retries() {
        let mut calls = 0u32;
        let r: Result<u64, CellQuarantine> = supervise(1, None, || {
            calls += 1;
            Err(SimError::InvalidMethodology { runs: calls as usize, drop_slowest: 0 })
        });
        let q = r.expect_err("every attempt failed");
        assert_eq!(q.attempts, 2, "one initial attempt + one retry");
        assert_eq!(
            *q.failure,
            CellFailure::Sim(SimError::InvalidMethodology { runs: 2, drop_slowest: 0 }),
            "the quarantine carries the LAST attempt's failure"
        );
    }

    #[test]
    fn supervise_catches_panics_and_preserves_the_message() {
        let r: Result<(), CellQuarantine> =
            supervise(0, None, || panic!("wedged at cycle {}", 42));
        let q = r.expect_err("panics must not unwind past supervise");
        assert_eq!(q.attempts, 1);
        assert_eq!(*q.failure, CellFailure::Panic("wedged at cycle 42".to_string()));
    }

    #[test]
    fn supervised_sweep_quarantines_one_cell_and_completes_the_rest() {
        let jobs: Vec<u64> = (0..20).collect();
        let f = |_i: usize, &j: &u64| -> Result<u64, SimError> {
            if j == 13 {
                panic!("unlucky cell");
            }
            Ok(j * 10)
        };
        for threads in [1, 4] {
            let rs = run_cells_supervised(&jobs, threads, 1, None, f);
            assert_eq!(rs.len(), 20);
            for (i, r) in rs.iter().enumerate() {
                if i == 13 {
                    let q = r.as_ref().expect_err("cell 13 panics every attempt");
                    assert_eq!(q.attempts, 2);
                    assert_eq!(*q.failure, CellFailure::Panic("unlucky cell".to_string()));
                } else {
                    assert_eq!(*r, Ok(i as u64 * 10), "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn timed_sweep_accounts_simulated_totals() {
        let jobs: Vec<u64> = (1..=10).collect();
        let (results, t) =
            run_cells_timed(&jobs, 2, |_, &j| (j * 100, j), |&(c, i)| (c, i));
        assert_eq!(results.len(), 10);
        assert_eq!(t.cells, 10);
        assert_eq!(t.threads, 2);
        assert_eq!(t.sim_cycles, 5500);
        assert_eq!(t.sim_instructions, 55);
        assert!(t.cycles_per_sec() > 0.0);
        assert!(t.mips() >= 0.0);
    }
}
