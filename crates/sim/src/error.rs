//! Structured simulation errors.
//!
//! A run that goes wrong produces a [`SimError`] carrying a full
//! [`MachineSnapshot`](crate::machine::MachineSnapshot) — per-core ROB-head
//! micro-ops, locked lines, in-flight directory transactions — instead of a
//! bare "did not quiesce" string or a panic deep inside the hierarchy.

use crate::machine::{MachineSnapshot, RunTimeout};
use fa_mem::AuditViolation;
use std::fmt;

/// Why a simulation run failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The machine did not quiesce within its cycle budget.
    Timeout(RunTimeout),
    /// The invariant auditor caught a violated coherence/locking/progress
    /// invariant (only possible when `MemConfig::audit` is enabled).
    Audit {
        /// Cycle at which the violation was detected.
        cycle: u64,
        /// The violated invariant.
        violation: AuditViolation,
        /// Machine state at detection time.
        snapshot: MachineSnapshot,
    },
    /// The axiomatic conformance checker refuted a TSO/RMW-atomicity
    /// axiom on the completed execution (only possible when
    /// `FA_CHECK=tso` / `CheckMode::Tso` is enabled).
    Tso {
        /// Name of the violated axiom (`rf-wf`, `co-wf`,
        /// `sc-per-location`, `rmw-atomicity`, or `tso-ghb`).
        axiom: &'static str,
        /// Offending events, or the shortest violating cycle.
        detail: String,
        /// Machine state at quiescence, with the flight-recorder tail.
        snapshot: MachineSnapshot,
    },
    /// A measurement methodology that cannot produce a mean: zero runs, or
    /// `drop_slowest` discarding every run. Returned by
    /// [`measure`](crate::methodology::measure) before any simulation
    /// starts, so misconfigured sweeps fail loudly instead of averaging a
    /// surprising subset.
    InvalidMethodology {
        /// Configured total runs.
        runs: usize,
        /// Configured number of slowest runs to discard.
        drop_slowest: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Timeout(t) => t.fmt(f),
            SimError::Audit { cycle, violation, snapshot } => {
                write!(f, "invariant audit failed at cycle {cycle}: {violation}\n{snapshot}")
            }
            SimError::Tso { axiom, detail, snapshot } => {
                write!(f, "TSO conformance violation (axiom {axiom}): {detail}\n{snapshot}")
            }
            SimError::InvalidMethodology { runs, drop_slowest } => write!(
                f,
                "invalid methodology: {runs} runs with {drop_slowest} dropped leaves no \
                 retained run to average"
            ),
        }
    }
}

impl std::error::Error for SimError {}

impl From<RunTimeout> for SimError {
    fn from(t: RunTimeout) -> SimError {
        SimError::Timeout(t)
    }
}

impl SimError {
    /// The machine snapshot attached to this error, when one exists
    /// (configuration errors are raised before any machine is built).
    pub fn snapshot(&self) -> Option<&MachineSnapshot> {
        match self {
            SimError::Timeout(t) => Some(&t.snapshot),
            SimError::Audit { snapshot, .. } => Some(snapshot),
            SimError::Tso { snapshot, .. } => Some(snapshot),
            SimError::InvalidMethodology { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_mem::CoreId;

    #[test]
    fn display_includes_violation_and_snapshot() {
        let e = SimError::Audit {
            cycle: 42,
            violation: AuditViolation::LockLeak {
                line: 0x100,
                core: CoreId(1),
                held_for: 99,
                count: 1,
            },
            snapshot: MachineSnapshot::default(),
        };
        let s = e.to_string();
        assert!(s.contains("cycle 42") && s.contains("lock leak"));
        assert!(e.snapshot().expect("audit errors carry a snapshot").cores.is_empty());
    }

    #[test]
    fn tso_display_names_axiom_and_carries_snapshot() {
        let e = SimError::Tso {
            axiom: "rmw-atomicity",
            detail: "intervening write c1/seq 4".into(),
            snapshot: MachineSnapshot::default(),
        };
        let s = e.to_string();
        assert!(s.contains("TSO conformance violation"), "got: {s}");
        assert!(s.contains("axiom rmw-atomicity"), "got: {s}");
        assert!(s.contains("intervening write"), "got: {s}");
        assert!(e.snapshot().is_some());
    }

    #[test]
    fn invalid_methodology_is_structured_and_snapshotless() {
        let e = SimError::InvalidMethodology { runs: 2, drop_slowest: 2 };
        assert!(e.snapshot().is_none());
        let s = e.to_string();
        assert!(s.contains("2 runs") && s.contains("2 dropped"), "got: {s}");
    }
}
