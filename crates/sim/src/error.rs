//! Structured simulation errors.
//!
//! A run that goes wrong produces a [`SimError`] carrying a full
//! [`MachineSnapshot`](crate::machine::MachineSnapshot) — per-core ROB-head
//! micro-ops, locked lines, in-flight directory transactions — instead of a
//! bare "did not quiesce" string or a panic deep inside the hierarchy.

use crate::machine::{MachineSnapshot, RunTimeout};
use fa_mem::AuditViolation;
use std::fmt;

/// Why a simulation run failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The machine did not quiesce within its cycle budget.
    Timeout(RunTimeout),
    /// The invariant auditor caught a violated coherence/locking/progress
    /// invariant (only possible when `MemConfig::audit` is enabled).
    Audit {
        /// Cycle at which the violation was detected.
        cycle: u64,
        /// The violated invariant.
        violation: AuditViolation,
        /// Machine state at detection time.
        snapshot: MachineSnapshot,
    },
    /// The axiomatic conformance checker refuted a TSO/RMW-atomicity
    /// axiom on the completed execution (only possible when
    /// `FA_CHECK=tso` / `CheckMode::Tso` is enabled).
    Tso {
        /// Name of the violated axiom (`rf-wf`, `co-wf`,
        /// `sc-per-location`, `rmw-atomicity`, or `tso-ghb`).
        axiom: &'static str,
        /// Offending events, or the shortest violating cycle.
        detail: String,
        /// Machine state at quiescence, with the flight-recorder tail.
        snapshot: MachineSnapshot,
    },
    /// A measurement methodology that cannot produce a mean: zero runs, or
    /// `drop_slowest` discarding every run. Returned by
    /// [`measure`](crate::methodology::measure) before any simulation
    /// starts, so misconfigured sweeps fail loudly instead of averaging a
    /// surprising subset.
    InvalidMethodology {
        /// Configured total runs.
        runs: usize,
        /// Configured number of slowest runs to discard.
        drop_slowest: usize,
    },
    /// The forward-progress framework detected a wedged resource: some
    /// retry site's stall counter crossed its
    /// [`ProgressConfig`](fa_mem::ProgressConfig) threshold. Raised instead
    /// of burning the rest of the cycle budget on a hang.
    NoProgress {
        /// The tripped site (`core-commit`, `dir-alloc`, `cache-fill`,
        /// `lsq-retry` or `noc-backlog`).
        site: &'static str,
        /// The counter value that tripped.
        observed: u64,
        /// The configured threshold it crossed.
        threshold: u64,
        /// Machine state at detection time — the minimal stuck-resource
        /// report (locked lines, busy directory entries, stalled fills,
        /// flight-recorder tail).
        snapshot: MachineSnapshot,
    },
    /// The per-cell wall-clock watchdog expired
    /// (armed by [`set_wall_deadline`](crate::machine::set_wall_deadline);
    /// the supervised sweep runner sets it from `FA_CELL_BUDGET`).
    WallTimeout {
        /// The wall-clock budget that expired, in milliseconds.
        budget_ms: u64,
        /// Machine state when the deadline was observed.
        snapshot: MachineSnapshot,
    },
    /// A supervised sweep cell failed every attempt and was quarantined.
    /// Carries the last attempt's underlying failure (including the
    /// flight-recorder snapshot for simulation errors).
    CellFailed {
        /// Identity of the failed cell, e.g. `TATP/FreeFwd/Tiny`.
        cell: String,
        /// Attempts made (1 + retries).
        attempts: u32,
        /// The last attempt's failure.
        cause: Box<CellFailure>,
    },
}

/// Why one supervised cell attempt failed: a structured simulation error,
/// or a panic caught at the cell isolation boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CellFailure {
    /// The cell returned a structured [`SimError`].
    Sim(SimError),
    /// The cell panicked; the payload is the panic message.
    Panic(String),
}

impl fmt::Display for CellFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellFailure::Sim(e) => e.fmt(f),
            CellFailure::Panic(msg) => write!(f, "panic: {msg}"),
        }
    }
}

impl CellFailure {
    /// The machine snapshot attached to the underlying failure, if any
    /// (panics unwound past the machine, so they carry none).
    pub fn snapshot(&self) -> Option<&MachineSnapshot> {
        match self {
            CellFailure::Sim(e) => e.snapshot(),
            CellFailure::Panic(_) => None,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Timeout(t) => t.fmt(f),
            SimError::Audit { cycle, violation, snapshot } => {
                write!(f, "invariant audit failed at cycle {cycle}: {violation}\n{snapshot}")
            }
            SimError::Tso { axiom, detail, snapshot } => {
                write!(f, "TSO conformance violation (axiom {axiom}): {detail}\n{snapshot}")
            }
            SimError::InvalidMethodology { runs, drop_slowest } => write!(
                f,
                "invalid methodology: {runs} runs with {drop_slowest} dropped leaves no \
                 retained run to average"
            ),
            SimError::NoProgress { site, observed, threshold, snapshot } => write!(
                f,
                "no forward progress at site {site}: observed {observed} \
                 (threshold {threshold})\n{snapshot}"
            ),
            SimError::WallTimeout { budget_ms, snapshot } => {
                write!(f, "wall-clock watchdog expired after {budget_ms} ms\n{snapshot}")
            }
            SimError::CellFailed { cell, attempts, cause } => {
                write!(f, "cell {cell} failed after {attempts} attempt(s): {cause}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<RunTimeout> for SimError {
    fn from(t: RunTimeout) -> SimError {
        SimError::Timeout(t)
    }
}

impl SimError {
    /// The machine snapshot attached to this error, when one exists
    /// (configuration errors are raised before any machine is built).
    pub fn snapshot(&self) -> Option<&MachineSnapshot> {
        match self {
            SimError::Timeout(t) => Some(&t.snapshot),
            SimError::Audit { snapshot, .. } => Some(snapshot),
            SimError::Tso { snapshot, .. } => Some(snapshot),
            SimError::InvalidMethodology { .. } => None,
            SimError::NoProgress { snapshot, .. } => Some(snapshot),
            SimError::WallTimeout { snapshot, .. } => Some(snapshot),
            SimError::CellFailed { cause, .. } => cause.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_mem::CoreId;

    #[test]
    fn display_includes_violation_and_snapshot() {
        let e = SimError::Audit {
            cycle: 42,
            violation: AuditViolation::LockLeak {
                line: 0x100,
                core: CoreId(1),
                held_for: 99,
                count: 1,
            },
            snapshot: MachineSnapshot::default(),
        };
        let s = e.to_string();
        assert!(s.contains("cycle 42") && s.contains("lock leak"));
        assert!(e.snapshot().expect("audit errors carry a snapshot").cores.is_empty());
    }

    #[test]
    fn tso_display_names_axiom_and_carries_snapshot() {
        let e = SimError::Tso {
            axiom: "rmw-atomicity",
            detail: "intervening write c1/seq 4".into(),
            snapshot: MachineSnapshot::default(),
        };
        let s = e.to_string();
        assert!(s.contains("TSO conformance violation"), "got: {s}");
        assert!(s.contains("axiom rmw-atomicity"), "got: {s}");
        assert!(s.contains("intervening write"), "got: {s}");
        assert!(e.snapshot().is_some());
    }

    #[test]
    fn invalid_methodology_is_structured_and_snapshotless() {
        let e = SimError::InvalidMethodology { runs: 2, drop_slowest: 2 };
        assert!(e.snapshot().is_none());
        let s = e.to_string();
        assert!(s.contains("2 runs") && s.contains("2 dropped"), "got: {s}");
    }

    #[test]
    fn no_progress_display_names_site_and_thresholds() {
        let e = SimError::NoProgress {
            site: "dir-alloc",
            observed: 5_000_123,
            threshold: 5_000_000,
            snapshot: MachineSnapshot::default(),
        };
        let s = e.to_string();
        assert!(s.contains("no forward progress"), "got: {s}");
        assert!(s.contains("site dir-alloc"), "got: {s}");
        assert!(s.contains("5000123") && s.contains("5000000"), "got: {s}");
        assert!(e.snapshot().is_some());
    }

    #[test]
    fn wall_timeout_display_carries_budget_and_snapshot() {
        let e = SimError::WallTimeout { budget_ms: 1500, snapshot: MachineSnapshot::default() };
        let s = e.to_string();
        assert!(s.contains("wall-clock watchdog") && s.contains("1500 ms"), "got: {s}");
        assert!(e.snapshot().is_some());
    }

    #[test]
    fn cell_failed_delegates_snapshot_through_cause() {
        let sim = SimError::CellFailed {
            cell: "TATP/FreeFwd/Tiny".into(),
            attempts: 3,
            cause: Box::new(CellFailure::Sim(SimError::NoProgress {
                site: "lsq-retry",
                observed: 9,
                threshold: 8,
                snapshot: MachineSnapshot::default(),
            })),
        };
        let s = sim.to_string();
        assert!(s.contains("cell TATP/FreeFwd/Tiny"), "got: {s}");
        assert!(s.contains("3 attempt(s)") && s.contains("lsq-retry"), "got: {s}");
        assert!(sim.snapshot().is_some(), "sim causes surface their snapshot");

        let panicked = SimError::CellFailed {
            cell: "PC/Free/Icelake".into(),
            attempts: 1,
            cause: Box::new(CellFailure::Panic("index out of bounds".into())),
        };
        assert!(panicked.to_string().contains("panic: index out of bounds"));
        assert!(panicked.snapshot().is_none(), "panics carry no snapshot");
    }
}
