//! Configuration presets matching the paper's evaluated processors.

use crate::machine::MachineConfig;
use fa_core::CoreConfig;
use fa_mem::MemConfig;

/// Icelake-like preset — the paper's Table-1 configuration (352-entry ROB).
pub fn icelake_like() -> MachineConfig {
    MachineConfig { core: CoreConfig::default(), mem: MemConfig::default() }
}

/// Skylake-like preset — the smaller machine of Figure 1: 224-entry ROB
/// with proportionally smaller queues (72-entry LQ, 56-entry SQ) and a
/// 32 KB 8-way L1D.
pub fn skylake_like() -> MachineConfig {
    let core = CoreConfig {
        fetch_width: 4,
        issue_width: 8,
        commit_width: 8,
        rob_size: 224,
        lq_size: 72,
        sq_size: 56,
        ..CoreConfig::default()
    };
    let mem = MemConfig { l1_sets: 64, l1_ways: 8, ..MemConfig::default() };
    MachineConfig { core, mem }
}

/// A deliberately tiny machine for stress tests: small queues and the
/// [`MemConfig::tiny`] hierarchy, exposing eviction livelocks and inclusion
/// deadlocks quickly.
pub fn tiny_machine() -> MachineConfig {
    let core = CoreConfig {
        fetch_width: 2,
        issue_width: 4,
        commit_width: 4,
        rob_size: 32,
        lq_size: 8,
        sq_size: 8,
        aq_size: 2,
        watchdog_threshold: 500,
        ..CoreConfig::default()
    };
    MachineConfig { core, mem: MemConfig::tiny() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_rob_size() {
        assert_eq!(icelake_like().core.rob_size, 352);
        assert_eq!(skylake_like().core.rob_size, 224);
        assert!(tiny_machine().core.rob_size < 64);
    }

    #[test]
    fn skylake_l1_is_32kb() {
        let m = skylake_like().mem;
        assert_eq!(m.l1_sets * m.l1_ways * 64, 32 * 1024);
    }
}
