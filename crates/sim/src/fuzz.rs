//! Differential litmus fuzzer.
//!
//! Generates small random concurrent programs, runs each under fault
//! injection ([`ChaosConfig`]) crossed with every requested
//! [`AtomicPolicy`], and checks every observed outcome against the
//! operational x86-TSO enumerator ([`crate::tsoref`]). The invariant
//! auditor runs on every cycle of every case, so a fuzzing campaign
//! simultaneously checks consistency (outcomes) and coherence/locking/
//! progress invariants (audit) — the empirical analogue of the paper's
//! §3.2.5 deadlock-avoidance argument, exercised under adversarial timing.
//!
//! Each case also samples an interconnect configuration ([`NocConfig`]):
//! the ideal fixed-latency crossbar or the contended crossbar at link
//! bandwidth 1, 2, or 4 flits/cycle. Bandwidth arbitration reorders
//! message *delivery* but never what is architecturally allowed, so TSO
//! legality and the invariant audit must hold on every sampled topology —
//! contention composing with chaos is exactly the §3.2.5 corner the
//! protocol must survive.
//!
//! Everything is seeded and deterministic: the same `FuzzConfig` replays
//! the same campaign bit-for-bit, so a reported case is a repro.

use crate::error::SimError;
use crate::litmus::{LOp, LitmusTest};
use crate::machine::MachineConfig;
use fa_core::AtomicPolicy;
use fa_isa::{MemOrder, Word};
use fa_mem::{AuditConfig, ChaosConfig, NocConfig, SplitMix64};
use fa_trace::{CheckMode, MemModel};
use std::fmt;

/// Campaign settings. Everything derives from `seed`, so a config is a
/// complete repro recipe.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Number of generated programs.
    pub cases: u64,
    /// Master seed: drives program shape, start offsets, and per-case
    /// chaos seeds.
    pub seed: u64,
    /// Maximum threads per generated program (min 2).
    pub max_threads: usize,
    /// Maximum ops per thread (min 1).
    pub max_ops: usize,
    /// Distinct abstract addresses (small ⇒ more racing).
    pub max_addrs: usize,
    /// Policies every case is run under.
    pub policies: Vec<AtomicPolicy>,
    /// Fault-injection shape; its `seed` field is overridden per case.
    pub chaos: ChaosConfig,
    /// Per-run cycle budget (fault injection stretches runs).
    pub max_cycles: u64,
    /// Axiomatic conformance checking for every run (default: on — the
    /// fuzzer exists to find consistency bugs, so each execution is also
    /// validated against the full TSO + RMW-atomicity axioms, not just
    /// its final observation vector).
    pub check: CheckMode,
    /// Memory model the frontend runs under and the enumerator oracle
    /// checks against (default: TSO). Generated programs carry ordering
    /// annotations either way — under TSO they are inert.
    pub model: MemModel,
    /// Worker threads for the campaign (0 = host parallelism). Case
    /// generation stays serial (it threads one rng), so the report is
    /// bit-identical at any thread count.
    pub threads: usize,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            cases: 64,
            seed: 0xF1A7_F1A7_2022,
            max_threads: 3,
            max_ops: 3,
            max_addrs: 3,
            policies: AtomicPolicy::ALL.to_vec(),
            chaos: ChaosConfig::stress(0),
            max_cycles: 2_000_000,
            check: CheckMode::Tso,
            model: MemModel::Tso,
            threads: 0,
        }
    }
}

/// One failed run, with everything needed to replay it.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// Index of the generated case.
    pub case: u64,
    /// Policy the failing run used.
    pub policy: AtomicPolicy,
    /// The generated program.
    pub test: LitmusTest,
    /// What went wrong.
    pub kind: FailureKind,
}

/// Failure classification.
#[derive(Clone, Debug)]
pub enum FailureKind {
    /// The simulator produced an outcome the campaign model's reference
    /// enumerator cannot (named for the original TSO-only campaigns; the
    /// oracle follows [`FuzzConfig::model`]).
    TsoViolation {
        /// The forbidden observation vector.
        observed: Vec<Word>,
    },
    /// Audit violation or timeout, with full machine snapshot.
    Run(Box<SimError>),
}

impl fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "case {} under {}: ", self.case, self.policy.label())?;
        match &self.kind {
            FailureKind::TsoViolation { observed } => {
                write!(f, "MODEL-FORBIDDEN outcome {observed:?} for {:?}", self.test.threads)
            }
            FailureKind::Run(e) => write!(f, "{e} (program {:?})", self.test.threads),
        }
    }
}

/// Campaign summary.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Generated cases.
    pub cases: u64,
    /// Detailed-simulator runs (cases × policies).
    pub runs: u64,
    /// Distinct TSO-legal outcomes observed across the campaign — a
    /// coverage signal (chaos should surface many legal interleavings).
    pub distinct_outcomes: u64,
    /// Every failed run.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// True when the whole campaign passed.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

impl fmt::Display for FuzzReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fuzz: {} cases, {} runs, {} distinct legal outcomes, {} failures",
            self.cases,
            self.runs,
            self.distinct_outcomes,
            self.failures.len()
        )?;
        for fail in &self.failures {
            writeln!(f, "  {fail}")?;
        }
        Ok(())
    }
}

/// Generates one random straight-line litmus program.
///
/// Shape: 2..=`max_threads` threads, 1..=`max_ops` ops each, over
/// `max_addrs` addresses. Stores and loads dominate; fetch-adds and fences
/// are salted in. Every op draws an ordering annotation uniformly from
/// [`MemOrder::ALL`] — inert under TSO, load-bearing under the weak model.
/// Observation slots are assigned in generation order. A program with no
/// observer gets one appended — an outcome vector is the whole point.
fn gen_test(rng: &mut SplitMix64, cfg: &FuzzConfig) -> LitmusTest {
    let threads = 2 + rng.below(cfg.max_threads.max(2) as u64 - 1) as usize;
    let addrs = cfg.max_addrs.max(1) as u64;
    let mut out: u8 = 0;
    let mut body: Vec<Vec<LOp>> = Vec::with_capacity(threads);
    for _ in 0..threads {
        let ops = 1 + rng.below(cfg.max_ops.max(1) as u64) as usize;
        let mut tops = Vec::with_capacity(ops);
        for _ in 0..ops {
            let addr = rng.below(addrs) as u8;
            let ord = MemOrder::ALL[rng.below(MemOrder::ALL.len() as u64) as usize];
            let op = match rng.below(16) {
                0..=5 => LOp::St { addr, val: 1 + rng.below(3), ord },
                6..=11 => {
                    let o = out;
                    out += 1;
                    LOp::Ld { addr, out: o, ord }
                }
                12..=14 => {
                    let o = out;
                    out += 1;
                    LOp::FetchAdd { addr, val: 1 + rng.below(2), out: o, ord }
                }
                _ => LOp::Fence { ord },
            };
            tops.push(op);
        }
        body.push(tops);
    }
    if out == 0 {
        body[0].push(LOp::ld(0, 0));
    }
    LitmusTest { name: "fuzz", threads: body }
}

/// One pre-generated case: everything a worker needs to run it in
/// isolation. Generation is serial (the campaign threads one rng), running
/// is embarrassingly parallel.
struct FuzzCase {
    case: u64,
    test: LitmusTest,
    offsets: Vec<u64>,
    chaos_seed: u64,
    noc: NocConfig,
}

/// Serially generates the whole campaign from the master seed: program
/// shape, start offsets, per-case chaos seed, and the per-case
/// interconnect configuration (ideal, or contended at bw 1/2/4) all come
/// from the same rng stream, so the campaign is one replayable recipe.
fn gen_cases(fcfg: &FuzzConfig) -> Vec<FuzzCase> {
    let mut rng = SplitMix64::new(fcfg.seed);
    (0..fcfg.cases)
        .map(|case| {
            let test = gen_test(&mut rng, fcfg);
            let offsets: Vec<u64> =
                (0..test.threads.len()).map(|_| rng.below(120)).collect();
            let chaos_seed = rng.next_u64();
            let noc = match rng.below(4) {
                0 => NocConfig::default(),
                b => NocConfig::contended(1 << (b - 1)),
            };
            FuzzCase { case, test, offsets, chaos_seed, noc }
        })
        .collect()
}

/// Runs a differential fuzzing campaign: random programs × policies ×
/// fault injection × sampled interconnects, outcomes checked against the
/// TSO enumerator, the invariant auditor armed throughout. Never panics on a finding — every
/// failure is collected into the report with a replayable identity.
///
/// The case runs fan out across [`FuzzConfig::threads`] workers on the
/// [`crate::sweep`] engine. Each `(case, policy)` run is deterministic and
/// independent, and results merge in case order, so the report —
/// failures, run counts and the distinct-outcome coverage set — is
/// bit-identical to the serial campaign at any thread count.
pub fn fuzz_litmus(base: &MachineConfig, fcfg: &FuzzConfig) -> FuzzReport {
    let cases = gen_cases(fcfg);
    let per_case = crate::sweep::run_cells(&cases, fcfg.threads, |_, fc| {
        let allowed = fc.test.allowed_outcomes_under(fcfg.model);
        let mut outcomes = Vec::new();
        let mut failures = Vec::new();
        for &policy in &fcfg.policies {
            let mut cfg = base.clone().with_check(fcfg.check);
            cfg.core.policy = policy;
            cfg.core.model = fcfg.model;
            cfg.mem.chaos = ChaosConfig { seed: fc.chaos_seed, ..fcfg.chaos.clone() };
            cfg.mem.noc = fc.noc;
            cfg.mem.audit = AuditConfig::on();
            match fc.test.run_checked(&cfg, &fc.offsets, fcfg.max_cycles) {
                Ok(got) => {
                    if allowed.contains(&got) {
                        outcomes.push(got);
                    } else {
                        failures.push(FuzzFailure {
                            case: fc.case,
                            policy,
                            test: fc.test.clone(),
                            kind: FailureKind::TsoViolation { observed: got },
                        });
                    }
                }
                Err(e) => failures.push(FuzzFailure {
                    case: fc.case,
                    policy,
                    test: fc.test.clone(),
                    kind: FailureKind::Run(e),
                }),
            }
        }
        (outcomes, failures)
    });
    let mut report = FuzzReport::default();
    let mut outcomes = std::collections::HashSet::new();
    for (legal, failures) in per_case {
        report.cases += 1;
        report.runs += fcfg.policies.len() as u64;
        outcomes.extend(legal);
        report.failures.extend(failures);
    }
    report.distinct_outcomes = outcomes.len() as u64;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_bounded() {
        let fcfg = FuzzConfig::default();
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..50 {
            let ta = gen_test(&mut a, &fcfg);
            let tb = gen_test(&mut b, &fcfg);
            assert_eq!(ta.threads, tb.threads);
            assert!(ta.threads.len() >= 2 && ta.threads.len() <= fcfg.max_threads);
            for t in &ta.threads {
                assert!(t.len() <= fcfg.max_ops + 1); // +1 for the appended observer
            }
            assert!(ta.num_outs() >= 1);
        }
    }

    #[test]
    fn generation_covers_every_op_shape_and_thread_count() {
        // Coverage audit for gen_test over a 500-case campaign: every LOp
        // variant must appear, every thread count in 2..=max_threads must
        // appear, and — the historically doubted corner — a Fence must
        // appear in a thread's suffix *after* an RMW, since that is
        // exactly the redundant-ordering shape (RMW already fences) a
        // generation bug would silently stop exercising.
        let fcfg = FuzzConfig { cases: 500, ..FuzzConfig::default() };
        let cases = gen_cases(&fcfg);
        assert_eq!(cases.len(), 500);
        let mut st = 0u32;
        let mut ld = 0u32;
        let mut rmw = 0u32;
        let mut fence = 0u32;
        let mut fence_after_rmw = 0u32;
        let mut thread_counts = std::collections::HashSet::new();
        for fc in &cases {
            thread_counts.insert(fc.test.threads.len());
            for t in &fc.test.threads {
                let mut seen_rmw = false;
                for op in t {
                    match op {
                        LOp::St { .. } => st += 1,
                        LOp::Ld { .. } => ld += 1,
                        LOp::FetchAdd { .. } => {
                            rmw += 1;
                            seen_rmw = true;
                        }
                        LOp::Fence { .. } => {
                            fence += 1;
                            if seen_rmw {
                                fence_after_rmw += 1;
                            }
                        }
                    }
                }
            }
        }
        assert!(st > 0 && ld > 0 && rmw > 0 && fence > 0, "St {st}, Ld {ld}, FetchAdd {rmw}, Fence {fence}");
        assert!(
            fence_after_rmw > 0,
            "campaign must generate Fence po-after an RMW in some thread"
        );
        for n in 2..=fcfg.max_threads {
            assert!(thread_counts.contains(&n), "thread count {n} never generated");
        }
    }

    #[test]
    fn generation_covers_every_ordering_times_op_shape() {
        // Every MemOrder × op-shape pair must appear across a 500-case
        // campaign — the weak-model fuzzer is only as good as the
        // annotation coverage it generates.
        let fcfg = FuzzConfig { cases: 500, ..FuzzConfig::default() };
        let cases = gen_cases(&fcfg);
        let mut seen = std::collections::HashSet::new();
        for fc in &cases {
            for t in &fc.test.threads {
                for op in t {
                    let (shape, ord) = match *op {
                        LOp::St { ord, .. } => ("st", ord),
                        LOp::Ld { ord, .. } => ("ld", ord),
                        LOp::FetchAdd { ord, .. } => ("rmw", ord),
                        LOp::Fence { ord } => ("fence", ord),
                    };
                    seen.insert((shape, ord));
                }
            }
        }
        for shape in ["st", "ld", "rmw", "fence"] {
            for ord in MemOrder::ALL {
                assert!(
                    seen.contains(&(shape, ord)),
                    "{shape}.{ord} never generated in 500 cases"
                );
            }
        }
    }

    #[test]
    fn small_campaign_is_clean_and_deterministic() {
        let base = crate::presets::tiny_machine();
        let fcfg = FuzzConfig {
            cases: 12,
            policies: vec![AtomicPolicy::FencedBaseline, AtomicPolicy::FreeFwd],
            ..FuzzConfig::default()
        };
        let r1 = fuzz_litmus(&base, &fcfg);
        let r2 = fuzz_litmus(&base, &fcfg);
        assert!(r1.ok(), "{r1}");
        assert_eq!(r1.runs, 24);
        assert_eq!(r1.distinct_outcomes, r2.distinct_outcomes);
        assert_eq!(r1.runs, r2.runs);
    }

    #[test]
    fn small_weak_campaign_is_clean() {
        // Same seed, weak model: the frontend relaxations must stay
        // inside the weak enumerator's outcome set under chaos + NoC
        // sampling, with the weak axiomatic checker armed.
        let base = crate::presets::tiny_machine();
        let fcfg = FuzzConfig {
            cases: 12,
            model: MemModel::Weak,
            policies: vec![AtomicPolicy::FencedBaseline, AtomicPolicy::FreeFwd],
            ..FuzzConfig::default()
        };
        let r = fuzz_litmus(&base, &fcfg);
        assert!(r.ok(), "{r}");
        assert_eq!(r.runs, 24);
    }

    #[test]
    fn cases_sample_every_interconnect_point() {
        use fa_mem::XbarPolicy;
        let fcfg = FuzzConfig { cases: 64, ..FuzzConfig::default() };
        let cases = gen_cases(&fcfg);
        let again = gen_cases(&fcfg);
        for (a, b) in cases.iter().zip(&again) {
            assert_eq!(a.noc, b.noc, "noc sampling must be deterministic");
            assert_eq!(a.chaos_seed, b.chaos_seed);
        }
        let mut ideal = 0;
        let mut bws = std::collections::HashSet::new();
        for fc in &cases {
            match fc.noc.policy {
                XbarPolicy::Ideal => ideal += 1,
                XbarPolicy::Contended => {
                    assert!(matches!(fc.noc.link_bw, 1 | 2 | 4));
                    bws.insert(fc.noc.link_bw);
                }
            }
        }
        assert!(ideal > 0, "campaign must keep exercising the ideal crossbar");
        assert_eq!(bws.len(), 3, "campaign must hit bw 1, 2 and 4");
    }

    #[test]
    fn parallel_campaign_matches_serial_report() {
        let base = crate::presets::tiny_machine();
        let serial = FuzzConfig {
            cases: 10,
            threads: 1,
            policies: vec![AtomicPolicy::FencedBaseline, AtomicPolicy::FreeFwd],
            ..FuzzConfig::default()
        };
        let parallel = FuzzConfig { threads: 4, ..serial.clone() };
        let rs = fuzz_litmus(&base, &serial);
        let rp = fuzz_litmus(&base, &parallel);
        assert_eq!(rs.cases, rp.cases);
        assert_eq!(rs.runs, rp.runs);
        assert_eq!(rs.distinct_outcomes, rp.distinct_outcomes);
        assert_eq!(rs.to_string(), rp.to_string(), "reports must be bit-identical");
    }
}
