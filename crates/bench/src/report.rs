//! Differential bottleneck report: diffs two `BENCH_sweep.json` files
//! row-by-row on their cycle-accounting (`cpi`) blocks and renders
//! per-leaf deltas with a loud regression verdict.
//!
//! The comparison is keyed on cell identity (`kernel/policy/preset`), so
//! the two reports may come from different bins or row orders; cells
//! present in only one file are listed, not diffed. A **row regression**
//! is total core cycles growing by more than [`CYCLES_REL`] of the
//! baseline (and at least [`ABS_FLOOR`] cycles — sub-noise growth on tiny
//! cells is not a verdict). A **leaf regression** is any taxonomy leaf
//! growing by more than [`LEAF_REL`] of the baseline row's total cycles
//! (same absolute floor) — this catches a bottleneck shifting between
//! leaves even when the total barely moves.
//!
//! The vendored `serde` is derive-markers only, so rows are recovered the
//! way the checkpoint journal replays them: line-oriented scanning of the
//! hand-rolled report format. Only the fields this report needs are
//! extracted (cell identity, the `cpi` block).

use fa_sim::{CpiLeaf, CPI_LEAVES};
use std::fmt::Write as _;

/// Row-regression threshold: total core cycles growing by more than this
/// fraction of the baseline.
pub const CYCLES_REL: f64 = 0.02;

/// Leaf-regression threshold: one leaf growing by more than this fraction
/// of the baseline row's **total** cycles.
pub const LEAF_REL: f64 = 0.05;

/// Absolute growth floor (cycles) below which neither rule fires —
/// scheduling-free noise on tiny cells is not a regression.
pub const ABS_FLOOR: u64 = 100;

/// One row recovered from a sweep report's `rows` array: the cell
/// identity plus its cycle-accounting block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CpiRow {
    /// Cell identity, `kernel/policy/preset`.
    pub key: String,
    /// Total core cycles of the representative run (`cpi.core_cycles`).
    pub core_cycles: u64,
    /// Per-leaf cycle counts, indexed by [`CpiLeaf::index`].
    pub leaves: [u64; CPI_LEAVES],
}

/// The first JSON string field named `name` in `s`.
fn str_field(s: &str, name: &str) -> Option<String> {
    let pat = format!("\"{name}\":\"");
    let rest = &s[s.find(&pat)? + pat.len()..];
    Some(rest[..rest.find('"')?].to_string())
}

/// The first JSON integer field named `name` in `s`.
fn u64_field(s: &str, name: &str) -> Option<u64> {
    let pat = format!("\"{name}\":");
    let rest = &s[s.find(&pat)? + pat.len()..];
    let digits: &str = &rest[..rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len())];
    digits.parse().ok()
}

/// Extracts every row carrying a `cpi` block from the text of a
/// `BENCH_sweep.json` report (or any stream of `SweepRow::json_full`
/// lines). Rows without the block — reports written before the
/// cycle-accounting layer — are skipped, so the caller can distinguish
/// "no such file shape" (empty result) from a parse error.
pub fn parse_rows(text: &str) -> Vec<CpiRow> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with("{\"kernel\":") {
            continue;
        }
        let Some(cpi_at) = line.find("\"cpi\":{") else { continue };
        let cpi = &line[cpi_at..];
        let (Some(kernel), Some(policy), Some(preset)) = (
            str_field(line, "kernel"),
            str_field(line, "policy"),
            str_field(line, "preset"),
        ) else {
            continue;
        };
        let Some(core_cycles) = u64_field(cpi, "core_cycles") else { continue };
        // Leaf names are unique within the stack block; scope the scan to
        // it so e.g. a future top-level "commit" field cannot collide.
        let Some(stack_at) = cpi.find("\"stack\":{") else { continue };
        let stack = &cpi[stack_at..];
        let Some(stack) = stack.get(..stack.find('}').map_or(stack.len(), |i| i + 1)) else {
            continue;
        };
        let mut leaves = [0u64; CPI_LEAVES];
        let mut complete = true;
        for l in CpiLeaf::ALL {
            match u64_field(stack, l.name()) {
                Some(v) => leaves[l.index()] = v,
                None => complete = false,
            }
        }
        if !complete {
            continue;
        }
        out.push(CpiRow { key: format!("{kernel}/{policy}/{preset}"), core_cycles, leaves });
    }
    out
}

/// One compared cell: baseline and current cycle accounting plus the
/// verdict under the thresholds above.
#[derive(Clone, Debug, PartialEq)]
pub struct RowDiff {
    /// Cell identity.
    pub key: String,
    /// Baseline row.
    pub base: CpiRow,
    /// Current row.
    pub cur: CpiRow,
    /// Leaves that regressed (grew past [`LEAF_REL`] of the baseline
    /// total), by [`CpiLeaf::index`].
    pub regressed_leaves: Vec<usize>,
    /// Total core cycles regressed past [`CYCLES_REL`].
    pub cycles_regressed: bool,
}

impl RowDiff {
    /// True when either rule fired for this cell.
    pub fn regressed(&self) -> bool {
        self.cycles_regressed || !self.regressed_leaves.is_empty()
    }
}

/// A finished comparison: per-cell diffs (cells present in both reports,
/// baseline order) and the unmatched keys on each side.
#[derive(Clone, Debug, PartialEq)]
pub struct DiffReport {
    /// Cells compared, in baseline order.
    pub rows: Vec<RowDiff>,
    /// Baseline cells absent from the current report.
    pub missing: Vec<String>,
    /// Current cells absent from the baseline.
    pub added: Vec<String>,
}

impl DiffReport {
    /// True when any compared cell regressed — the `report` bin's
    /// exit-nonzero condition.
    pub fn regressed(&self) -> bool {
        self.rows.iter().any(RowDiff::regressed)
    }

    /// Renders the whole comparison as a human-readable report: one line
    /// per compared cell, per-leaf delta lines for every regressed leaf,
    /// the unmatched keys, and a final loud verdict line.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for d in &self.rows {
            let (b, c) = (d.base.core_cycles, d.cur.core_cycles);
            let _ = writeln!(
                s,
                "{}: core cycles {b} -> {c} ({}{:.2}%){}",
                d.key,
                if c >= b { "+" } else { "-" },
                (c.abs_diff(b)) as f64 * 100.0 / (b.max(1)) as f64,
                if d.cycles_regressed { "  ** CYCLES REGRESSED **" } else { "" }
            );
            for &i in &d.regressed_leaves {
                let leaf = CpiLeaf::ALL[i];
                let _ = writeln!(
                    s,
                    "    leaf {}: {} -> {} (+{:.2}% of baseline total)  ** LEAF REGRESSED **",
                    leaf.name(),
                    d.base.leaves[i],
                    d.cur.leaves[i],
                    d.cur.leaves[i].saturating_sub(d.base.leaves[i]) as f64 * 100.0
                        / d.base.core_cycles.max(1) as f64
                );
            }
        }
        for k in &self.missing {
            let _ = writeln!(s, "{k}: in baseline only (not compared)");
        }
        for k in &self.added {
            let _ = writeln!(s, "{k}: in current only (not compared)");
        }
        let n = self.rows.iter().filter(|d| d.regressed()).count();
        let _ = if n == 0 {
            writeln!(s, "verdict: OK — {} cell(s) compared, no regressions", self.rows.len())
        } else {
            writeln!(s, "verdict: REGRESSED — {n} of {} cell(s) regressed", self.rows.len())
        };
        s
    }
}

/// Compares `current` against `baseline`, cell by cell.
pub fn diff(baseline: &[CpiRow], current: &[CpiRow]) -> DiffReport {
    let mut rows = Vec::new();
    let mut missing = Vec::new();
    for b in baseline {
        let Some(c) = current.iter().find(|c| c.key == b.key) else {
            missing.push(b.key.clone());
            continue;
        };
        let grew = c.core_cycles.saturating_sub(b.core_cycles);
        let cycles_regressed =
            grew >= ABS_FLOOR && grew as f64 > b.core_cycles as f64 * CYCLES_REL;
        let mut regressed_leaves = Vec::new();
        for i in 0..CPI_LEAVES {
            let grew = c.leaves[i].saturating_sub(b.leaves[i]);
            if grew >= ABS_FLOOR && grew as f64 > b.core_cycles as f64 * LEAF_REL {
                regressed_leaves.push(i);
            }
        }
        rows.push(RowDiff {
            key: b.key.clone(),
            base: b.clone(),
            cur: c.clone(),
            regressed_leaves,
            cycles_regressed,
        });
    }
    let added = current
        .iter()
        .filter(|c| !baseline.iter().any(|b| b.key == c.key))
        .map(|c| c.key.clone())
        .collect();
    DiffReport { rows, missing, added }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_report(rows: &[(&str, u64, u64, u64)]) -> String {
        // (key fields are kernel/policy/preset = k/p/r) with commit,
        // sb_drain and idle carrying the cycles; the rest zero.
        let mut s = String::from("{\n  \"schema\": \"fa-sweep-v1\",\n  \"rows\": [\n");
        for (i, (kernel, commit, sb, idle)) in rows.iter().enumerate() {
            let total = commit + sb + idle;
            let mut stack: Vec<(&str, String)> = Vec::new();
            for l in CpiLeaf::ALL {
                let v = match l {
                    CpiLeaf::Commit => *commit,
                    CpiLeaf::SbDrain => *sb,
                    CpiLeaf::Idle => *idle,
                    _ => 0,
                };
                stack.push((l.name(), v.to_string()));
            }
            let sep = if i + 1 == rows.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "    {{\"kernel\":\"{kernel}\",\"policy\":\"baseline\",\"preset\":\"tiny\",\
                 \"runs\":3,\"mean_cycles\":1.000000,\"rep_cycles\":{total},\
                 \"instructions\":10,\"hists\":{{}},\"cpi\":{{\"core_cycles\":{total},\
                 \"stack\":{},\"atomic\":{{\"acquire\":0,\"xfer\":[0,0,0,0,0],\
                 \"dir_park\":0,\"local\":0}},\"fill\":[0,0,0,0,0]}}}}{sep}",
                fa_sim::json_object(&stack)
            );
        }
        s.push_str("  ]\n}\n");
        s
    }

    #[test]
    fn parse_recovers_identity_and_leaves() {
        let text = synthetic_report(&[("TATP", 500, 300, 200), ("PC", 900, 0, 100)]);
        let rows = parse_rows(&text);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].key, "TATP/baseline/tiny");
        assert_eq!(rows[0].core_cycles, 1000);
        assert_eq!(rows[0].leaves[CpiLeaf::Commit.index()], 500);
        assert_eq!(rows[0].leaves[CpiLeaf::SbDrain.index()], 300);
        assert_eq!(rows[0].leaves[CpiLeaf::Idle.index()], 200);
        assert_eq!(rows[0].leaves.iter().sum::<u64>(), rows[0].core_cycles);
        assert_eq!(rows[1].key, "PC/baseline/tiny");
        // Rows without a cpi block (pre-accounting reports) are skipped.
        assert!(parse_rows("{\"kernel\":\"X\",\"policy\":\"p\",\"preset\":\"t\"}").is_empty());
        assert!(parse_rows("not json at all").is_empty());
    }

    #[test]
    fn identical_reports_diff_clean() {
        let rows = parse_rows(&synthetic_report(&[("TATP", 5000, 3000, 2000)]));
        let d = diff(&rows, &rows);
        assert!(!d.regressed(), "a report must never regress against itself");
        assert!(d.missing.is_empty() && d.added.is_empty());
        let r = d.render();
        assert!(r.contains("verdict: OK"), "{r}");
        assert!(r.contains("core cycles 10000 -> 10000 (+0.00%)"), "{r}");
    }

    #[test]
    fn inflated_leaf_regresses_even_with_flat_total() {
        // sb_drain grows by 1000 (10% of baseline total) while commit
        // shrinks to match: the bottleneck moved, the total did not.
        let base = parse_rows(&synthetic_report(&[("TATP", 5000, 3000, 2000)]));
        let cur = parse_rows(&synthetic_report(&[("TATP", 4000, 4000, 2000)]));
        let d = diff(&base, &cur);
        assert!(d.regressed());
        assert!(!d.rows[0].cycles_regressed, "total is flat");
        assert_eq!(d.rows[0].regressed_leaves, vec![CpiLeaf::SbDrain.index()]);
        let r = d.render();
        assert!(r.contains("leaf sb_drain: 3000 -> 4000"), "{r}");
        assert!(r.contains("** LEAF REGRESSED **"), "{r}");
        assert!(r.contains("verdict: REGRESSED — 1 of 1 cell(s) regressed"), "{r}");
    }

    #[test]
    fn grown_total_regresses_and_small_jitter_does_not() {
        let base = parse_rows(&synthetic_report(&[("TATP", 5000, 3000, 2000)]));
        // +5% total, spread below the per-leaf threshold.
        let grown = parse_rows(&synthetic_report(&[("TATP", 5300, 3100, 2100)]));
        let d = diff(&base, &grown);
        assert!(d.rows[0].cycles_regressed);
        assert!(d.rows[0].regressed_leaves.is_empty());
        assert!(d.render().contains("** CYCLES REGRESSED **"));
        // +60 cycles on a tiny cell: relative growth is huge but below the
        // absolute floor — noise, not a verdict.
        let tiny_base = parse_rows(&synthetic_report(&[("PC", 50, 20, 30)]));
        let tiny_cur = parse_rows(&synthetic_report(&[("PC", 80, 50, 30)]));
        assert!(!diff(&tiny_base, &tiny_cur).regressed());
        // Improvements never regress.
        let faster = parse_rows(&synthetic_report(&[("TATP", 4000, 1000, 2000)]));
        assert!(!diff(&base, &faster).regressed());
    }

    #[test]
    fn unmatched_cells_are_listed_not_compared() {
        let base = parse_rows(&synthetic_report(&[("TATP", 5000, 3000, 2000)]));
        let cur = parse_rows(&synthetic_report(&[("PC", 900, 0, 100)]));
        let d = diff(&base, &cur);
        assert!(d.rows.is_empty());
        assert_eq!(d.missing, vec!["TATP/baseline/tiny"]);
        assert_eq!(d.added, vec!["PC/baseline/tiny"]);
        assert!(!d.regressed(), "unmatched cells alone are not a regression");
        let r = d.render();
        assert!(r.contains("in baseline only"), "{r}");
        assert!(r.contains("in current only"), "{r}");
    }

    #[test]
    fn real_sweep_reports_round_trip_and_conserve() {
        // End to end: emit a real report, read it back, and check the
        // conservation invariant survives serialization; a self-diff of
        // real rows is clean and its rendered rows are bit-identical
        // across renders (passivity).
        use crate::sweep::{grid, run_grid, Preset, SweepReport};
        use fa_core::AtomicPolicy;
        let opts = crate::BenchOpts {
            cores: 2,
            scale: 0.05,
            runs: 2,
            drop_slowest: 0,
            seed: 0xF00D,
            threads: 1,
            ..crate::BenchOpts::default()
        };
        let ws = fa_workloads::suite::select(&["TATP"]).expect("suite names");
        let cells = grid(&ws, &[AtomicPolicy::FencedBaseline, AtomicPolicy::FreeFwd], &[Preset::Tiny]);
        let (results, timing) = run_grid(&opts, &cells).expect("grid");
        let json = SweepReport::new("report-test", &opts, &results, timing).json();
        let rows = parse_rows(&json);
        assert_eq!(rows.len(), cells.len(), "every emitted row parses back");
        for r in &rows {
            assert_eq!(
                r.leaves.iter().sum::<u64>(),
                r.core_cycles,
                "{}: conservation must survive the JSON round trip",
                r.key
            );
        }
        let d = diff(&rows, &rows);
        assert!(!d.regressed());
        assert_eq!(d.render(), diff(&rows, &rows).render(), "rendering is pure");
    }
}
