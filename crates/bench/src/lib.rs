//! Shared harness for the figure/table regeneration benches.
//!
//! Every experiment of the paper's evaluation section (§5) has a binary in
//! `src/bin/` and is also driven by the `figures` bench target; this module
//! holds the common machinery: environment-controlled sizing, the
//! measurement loop, and table formatting.
//!
//! # Environment
//!
//! | variable | default | meaning |
//! |---|---|---|
//! | `FA_CORES` | 8 | simulated cores (the paper uses 32) |
//! | `FA_SCALE` | 0.25 | workload size multiplier |
//! | `FA_RUNS` | 3 | runs per configuration (paper: 10, drop 3) |
//! | `FA_DROP` | 1 | slowest runs dropped |
//! | `FA_THREADS` | 0 | sweep worker threads (0 = host parallelism) |
//! | `FA_WORKLOADS` | all | comma-separated subset of workload names |
//! | `FA_NOC` | `ideal` | interconnect: `ideal`, `contended`, or `contended:<bw>` |
//! | `FA_TRACE` | `off` | event tracing: `off`, `flight`, or `full[:path]` |
//! | `FA_CHECK` | `off` | axiomatic conformance checking: `off` or `tso` |
//! | `FA_MODEL` | `tso` | hardware memory model: `tso` or `weak` |
//! | `FA_BENCH_JSON` | `BENCH_sweep.json` | sweep-report destination |
//! | `FA_PROGRESS` | `on` | forward-progress escalation: `off`, `on`, or `on:<stall_cycles>` |
//! | `FA_RETRIES` | 1 | supervised-cell retries before quarantine |
//! | `FA_CELL_BUDGET` | unset | per-cell budget: `<cycles>` or `<cycles>:<wall_secs>` |
//! | `FA_CHECKPOINT` | unset | append-only sweep journal for kill/resume |
//! | `FA_REPORT_BASELINE` | unset | baseline `BENCH_sweep.json` for the `report` bin's diff |
//!
//! All parsing goes through [`fa_sim::env`], so a malformed value fails
//! loudly with the variable name and the expected grammar.

// Non-test code must justify every panic site; see the `expect` messages
// documenting each invariant. Tests keep plain unwrap for brevity.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod checkpoint;
pub mod figures;
pub mod report;
pub mod sweep;

use fa_core::AtomicPolicy;
use fa_mem::{NocConfig, ProgressConfig};
use fa_sim::env;
use fa_sim::error::SimError;
use fa_sim::machine::{MachineConfig, RunResult};
use fa_sim::methodology::{measure_parallel, Methodology, MultiRun};
use fa_sim::{CheckMode, MemModel, TraceMode};
use fa_workloads::{suite, WorkloadParams, WorkloadSpec};

/// Experiment sizing, read from the environment.
#[derive(Clone, Copy, Debug)]
pub struct BenchOpts {
    /// Simulated cores.
    pub cores: usize,
    /// Workload scale factor.
    pub scale: f64,
    /// Runs per configuration.
    pub runs: usize,
    /// Slowest runs dropped.
    pub drop_slowest: usize,
    /// Base seed.
    pub seed: u64,
    /// Sweep worker threads (0 = host parallelism). Results are
    /// bit-identical at any value; this only trades wall clock.
    pub threads: usize,
    /// Interconnect model (`FA_NOC`), applied to every driver run —
    /// grid sweeps and single-run bins alike. The default ideal crossbar
    /// reproduces the historical fixed-latency numbers bit-for-bit.
    pub noc: NocConfig,
    /// Event-trace mode (`FA_TRACE`), applied to every driver run. Off by
    /// default; any mode produces bit-identical simulation results —
    /// latency histograms are always-on counters and event recording is
    /// strictly passive.
    pub trace: TraceMode,
    /// Axiomatic TSO conformance checking (`FA_CHECK`), applied to every
    /// driver run. Off by default; when on, every completed run is
    /// validated against the full TSO + RMW-atomicity axioms, with
    /// bit-identical simulation statistics either way.
    pub check: CheckMode,
    /// Hardware memory model (`FA_MODEL`), applied to every driver run.
    /// TSO by default, which reproduces the historical rows bit-for-bit
    /// (ordering annotations are architecturally inert under TSO); `weak`
    /// selects the ARM-like acquire/release-native baseline.
    pub model: MemModel,
    /// Forward-progress escalation (`FA_PROGRESS`), applied to every
    /// driver run. On by default with wedge-sized thresholds: stall
    /// counters are unconditional passive statistics, and escalation never
    /// fires on healthy runs, so golden results are bit-identical with the
    /// framework on or off.
    pub progress: ProgressConfig,
}

impl Default for BenchOpts {
    fn default() -> BenchOpts {
        BenchOpts {
            cores: 8,
            scale: 0.25,
            runs: 3,
            drop_slowest: 1,
            seed: 0xF00D,
            threads: 0,
            noc: NocConfig::default(),
            trace: TraceMode::Off,
            check: CheckMode::Off,
            model: MemModel::Tso,
            progress: ProgressConfig::default(),
        }
    }
}

impl BenchOpts {
    /// Reads sizing from the environment (see module docs) via the unified
    /// [`fa_sim::env`] helpers.
    ///
    /// # Panics
    ///
    /// Panics on any set-but-malformed `FA_*` variable, naming the
    /// variable and the expected grammar.
    pub fn from_env() -> BenchOpts {
        let d = BenchOpts::default();
        BenchOpts {
            cores: env::usize_or("FA_CORES", d.cores),
            scale: env::f64_or("FA_SCALE", d.scale),
            runs: env::usize_or("FA_RUNS", d.runs),
            drop_slowest: env::usize_or("FA_DROP", d.drop_slowest),
            seed: d.seed,
            threads: env::usize_or("FA_THREADS", d.threads),
            noc: env::noc_config(),
            trace: env::trace_setting().0,
            check: env::check_setting(),
            model: env::model_setting(),
            progress: env::progress_setting(),
        }
    }

    /// Workload parameters for these options.
    pub fn params(&self) -> WorkloadParams {
        WorkloadParams { cores: self.cores, scale: self.scale, seed: self.seed }
    }

    /// Measurement methodology for these options.
    pub fn methodology(&self) -> Methodology {
        Methodology {
            runs: self.runs,
            drop_slowest: self.drop_slowest,
            max_offset: 1500,
            seed: self.seed ^ 0xDEAD_BEEF,
            max_cycles: 400_000_000,
        }
    }

    /// The workload subset selected via `FA_WORKLOADS`, or the full suite.
    ///
    /// # Panics
    ///
    /// Panics on an unknown name in `FA_WORKLOADS` — a typo used to be
    /// silently dropped, turning the sweep into a no-op.
    pub fn workloads(&self) -> Vec<WorkloadSpec> {
        match env::list("FA_WORKLOADS") {
            Some(names) => {
                let names: Vec<&str> = names.iter().map(String::as_str).collect();
                suite::select(&names).unwrap_or_else(|e| panic!("FA_WORKLOADS: {e}"))
            }
            None => suite::all(),
        }
    }

    /// `base` specialized for one run under these options: policy, NoC
    /// model, trace mode, conformance-check mode, memory model, and
    /// forward-progress escalation applied.
    pub fn config_for(&self, base: &MachineConfig, policy: AtomicPolicy) -> MachineConfig {
        let mut cfg = base.clone().with_trace(self.trace).with_check(self.check);
        cfg.core.policy = policy;
        cfg.core.model = self.model;
        cfg.mem.noc = self.noc;
        cfg.mem.progress = self.progress;
        cfg
    }
}

/// Runs `spec` under `policy` with the multi-run methodology, the
/// independent runs fanned across `opts.threads` sweep workers.
///
/// # Errors
///
/// Any [`SimError`] raised by a run (timeout or invariant-audit failure),
/// or an invalid methodology.
pub fn try_run_workload(
    spec: &WorkloadSpec,
    policy: AtomicPolicy,
    base: &MachineConfig,
    opts: &BenchOpts,
) -> Result<MultiRun, Box<SimError>> {
    let cfg = opts.config_for(base, policy);
    let params = opts.params();
    measure_parallel(&cfg, &opts.methodology(), opts.threads, || {
        let w = spec.build(&params);
        (w.programs, w.mem)
    })
    .map_err(Box::new)
}

/// [`try_run_workload`], panicking on failure — for callers (tests,
/// micro-benches) where a failed run is a straight bug.
///
/// # Panics
///
/// Panics if any run fails to quiesce — a forward-progress bug.
pub fn run_workload(
    spec: &WorkloadSpec,
    policy: AtomicPolicy,
    base: &MachineConfig,
    opts: &BenchOpts,
) -> MultiRun {
    try_run_workload(spec, policy, base, opts)
        .unwrap_or_else(|e| panic!("{} under {policy:?}: {e}", spec.name))
}

/// Runs `spec` once (single run, no offsets) — for characterization tables
/// where per-counter detail matters more than timing noise.
pub fn run_once(
    spec: &WorkloadSpec,
    policy: AtomicPolicy,
    base: &MachineConfig,
    opts: &BenchOpts,
) -> RunResult {
    run_once_checked(spec, policy, base, opts)
        .unwrap_or_else(|e| panic!("{} under {policy:?}: {e}", spec.name))
}

/// Like [`run_once`] but hands the failure — timeout or invariant-audit
/// violation, each carrying a full machine snapshot — back to the caller.
/// The `diag` binary uses this to print the snapshot instead of unwinding.
///
/// # Errors
///
/// Any [`SimError`] raised by the run.
pub fn run_once_checked(
    spec: &WorkloadSpec,
    policy: AtomicPolicy,
    base: &MachineConfig,
    opts: &BenchOpts,
) -> Result<RunResult, Box<SimError>> {
    let cfg = opts.config_for(base, policy);
    let params = opts.params();
    let w = spec.build(&params);
    let mut m = fa_sim::Machine::new(cfg, w.programs, w.mem);
    m.run(400_000_000).map_err(Box::new)
}

/// Geometric-mean helper (the paper reports averages over normalized
/// values; we use arithmetic means of ratios like the paper's bars).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// Formats `x` with `d` decimals.
pub fn fmt(x: f64, d: usize) -> String {
    format!("{x:.d$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opts_default_and_params() {
        let o = BenchOpts::default();
        assert_eq!(o.params().cores, 8);
        assert_eq!(o.methodology().runs, 3);
        assert_eq!(o.noc, NocConfig::default());
        assert_eq!(o.trace, TraceMode::Off);
    }

    #[test]
    fn noc_env_values_parse() {
        // The shared grammar now lives in fa_sim::env; pin that the
        // historical `FA_NOC` meanings survived the move.
        use fa_mem::XbarPolicy;
        use fa_sim::env::parse_noc;
        assert_eq!(parse_noc("ideal"), Some(NocConfig::default()));
        let c = parse_noc("contended").expect("bare contended");
        assert_eq!(c.policy, XbarPolicy::Contended);
        assert_eq!(c.link_bw, NocConfig::default().link_bw);
        assert_eq!(parse_noc("contended:4"), Some(NocConfig::contended(4)));
        assert_eq!(parse_noc("contended:x"), None);
        assert_eq!(parse_noc("mesh"), None);
    }

    #[test]
    fn config_for_applies_policy_noc_trace_and_check() {
        let opts = BenchOpts {
            noc: NocConfig::contended(4),
            trace: TraceMode::Flight,
            check: CheckMode::Tso,
            model: MemModel::Weak,
            ..BenchOpts::default()
        };
        let cfg = opts.config_for(&MachineConfig::default(), AtomicPolicy::FreeFwd);
        assert_eq!(cfg.core.policy, AtomicPolicy::FreeFwd);
        assert_eq!(cfg.core.model, MemModel::Weak);
        assert_eq!(cfg.mem.noc, NocConfig::contended(4));
        assert!(cfg.mem.progress.enabled, "progress escalation rides along by default");
        assert_eq!(cfg.core.trace.mode, TraceMode::Flight);
        assert_eq!(cfg.mem.trace.mode, TraceMode::Flight);
        assert_eq!(cfg.core.check, CheckMode::Tso);
        assert_eq!(cfg.mem.check, CheckMode::Tso);
        // Default opts keep checking off and the model TSO (golden stats
        // must not change).
        let off = BenchOpts::default().config_for(&MachineConfig::default(), AtomicPolicy::Free);
        assert_eq!(off.core.check, CheckMode::Off);
        assert_eq!(off.core.model, MemModel::Tso);
    }

    #[test]
    fn mean_of_values() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn row_formatting() {
        assert_eq!(row(&["a".into(), "b".into()]), "| a | b |");
        assert_eq!(fmt(1.2345, 2), "1.23");
    }
}
