//! Append-only checkpoint journal for supervised sweep campaigns
//! (`FA_CHECKPOINT`).
//!
//! A killed campaign must resume exactly where it stopped, and the merged
//! output must be byte-identical to an uninterrupted run. The journal
//! therefore stores each completed cell's emitted row **verbatim** — the
//! exact `json_full` line the report would print — so resumption re-emits
//! bytes instead of re-deriving them (the vendored `serde` is
//! derive-markers only; nothing here needs a JSON parser).
//!
//! # Format
//!
//! One header line, then one record line per completed cell:
//!
//! ```text
//! fa-checkpoint-v1 fingerprint=<hex16> cells=<n>
//! cell <idx> cycles=<c> instr=<i> health=<r>:<da>:<fa>:<la>:<nb> row=<row json>
//! ```
//!
//! The `health=` token carries the cell's forward-progress counters
//! (directory rescues, then the worst dir-alloc / fill / LSQ attempt
//! counts and the NoC backlog high-water mark) so a resumed campaign's
//! summary line accounts journaled cells too. The token is optional on
//! replay — records written by older journals parse with zeroed health.
//!
//! The header fingerprint is an FNV-1a 64 hash of the canonical campaign
//! configuration (everything that affects simulated results — seed, sizing,
//! methodology, NoC, check mode, cell identities — and nothing that does
//! not, such as worker-thread count or trace mode). Resuming against a
//! journal whose fingerprint differs panics loudly: replaying rows from a
//! different campaign would silently corrupt the sweep.
//!
//! # Crash tolerance
//!
//! Records are appended with a single `write` call each, so a `SIGKILL`
//! can at worst leave one torn line at the tail. Only complete,
//! newline-terminated, well-formed lines count on replay; a torn tail (or
//! any malformed line) is skipped and its cell simply re-runs. Duplicate
//! records for one cell are last-wins — append-only journals never need
//! rewriting.

use fa_mem::ProgressStats;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The journal schema tag, first token of the header line.
pub const SCHEMA: &str = "fa-checkpoint-v1";

/// FNV-1a 64-bit hash — the campaign fingerprint function. Stable across
/// platforms and dependency-free.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One journaled cell: the simulated totals (summed over every methodology
/// run, for resumed timing accounting) and the emitted row line, verbatim.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CellRecord {
    /// Simulated cycles across all runs of the cell (including dropped).
    pub cycles: u64,
    /// Committed instructions across all runs of the cell.
    pub instructions: u64,
    /// Forward-progress counters aggregated over every run of the cell
    /// (rescues summed, high-water marks maxed) — journaled so a resumed
    /// campaign's health summary matches an uninterrupted one.
    pub health: ProgressStats,
    /// The row exactly as the report emits it (`SweepRow::json_full`).
    pub row: String,
}

/// An open campaign journal: previously completed cells plus an append
/// handle shared by the sweep workers.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<File>,
    /// Cells already completed by a previous (possibly killed) campaign,
    /// keyed by cell index. These are skipped on resume and their rows
    /// re-emitted verbatim.
    pub completed: BTreeMap<usize, CellRecord>,
}

impl Journal {
    /// Opens `path`, replaying any usable records from a prior campaign
    /// with the same fingerprint. A missing file, or one whose header is
    /// torn, starts a fresh journal.
    ///
    /// # Errors
    ///
    /// Any I/O error from reading or creating the file.
    ///
    /// # Panics
    ///
    /// Panics when the journal belongs to a *different* campaign
    /// (fingerprint or cell-count mismatch) — resuming it would corrupt
    /// the sweep.
    pub fn open(path: &Path, fingerprint: u64, cells: usize) -> std::io::Result<Journal> {
        let completed = match std::fs::read(path) {
            Ok(bytes) => parse(&String::from_utf8_lossy(&bytes), path, fingerprint, cells),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };
        let (file, completed) = match completed {
            Some(completed) => {
                let file = OpenOptions::new().append(true).open(path)?;
                (file, completed)
            }
            None => {
                // Fresh campaign (or a tail-torn header from a kill before
                // the first record): truncate and write a new header.
                let mut file =
                    OpenOptions::new().create(true).write(true).truncate(true).open(path)?;
                file.write_all(
                    format!("{SCHEMA} fingerprint={fingerprint:016x} cells={cells}\n").as_bytes(),
                )?;
                (file, BTreeMap::new())
            }
        };
        Ok(Journal { path: path.to_path_buf(), file: Mutex::new(file), completed })
    }

    /// The journal's path (for messages).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one completed-cell record with a single `write` call, so a
    /// kill mid-append tears at most this line.
    ///
    /// # Errors
    ///
    /// Any I/O error from the append.
    pub fn record(&self, idx: usize, r: &CellRecord) -> std::io::Result<()> {
        debug_assert!(!r.row.contains('\n'), "rows are single-line JSON");
        let h = &r.health;
        let line = format!(
            "cell {idx} cycles={} instr={} health={}:{}:{}:{}:{} row={}\n",
            r.cycles,
            r.instructions,
            h.dir_rescues,
            h.dir_alloc_attempts_max,
            h.fill_attempts_max,
            h.lsq_attempts_max,
            h.noc_backlog_max,
            r.row
        );
        let mut f = self.file.lock().expect("a sweep worker panicked holding the journal");
        f.write_all(line.as_bytes())
    }
}

/// Replays journal text: `Some(records)` when the header matches this
/// campaign, `None` when the file holds no complete header line (treated
/// as a fresh start).
///
/// # Panics
///
/// Panics on a well-formed header naming a different campaign.
fn parse(
    text: &str,
    path: &Path,
    fingerprint: u64,
    cells: usize,
) -> Option<BTreeMap<usize, CellRecord>> {
    // Only newline-terminated lines count: a kill mid-append leaves the
    // final line torn, and `split('\n')` puts that fragment (or an empty
    // string) after the last terminator — dropped here.
    let mut lines: Vec<&str> = text.split('\n').collect();
    lines.pop();
    let mut it = lines.into_iter();
    let header = it.next()?;
    let expected = format!("{SCHEMA} fingerprint={fingerprint:016x} cells={cells}");
    assert_eq!(
        header,
        expected,
        "{}: checkpoint journal belongs to a different campaign \
         (its header is {header:?}, this campaign is {expected:?}); \
         delete the journal or restore the matching FA_* configuration",
        path.display()
    );
    let mut completed = BTreeMap::new();
    for line in it {
        if let Some((idx, rec)) = parse_record(line, cells) {
            completed.insert(idx, rec); // last-wins
        }
    }
    Some(completed)
}

/// Parses one record line; `None` for anything malformed (skipped — the
/// cell just re-runs).
fn parse_record(line: &str, cells: usize) -> Option<(usize, CellRecord)> {
    let rest = line.strip_prefix("cell ")?;
    let (idx, rest) = rest.split_once(' ')?;
    let idx: usize = idx.parse().ok()?;
    if idx >= cells {
        return None;
    }
    let (cycles, rest) = rest.strip_prefix("cycles=")?.split_once(' ')?;
    let (instr, rest) = rest.strip_prefix("instr=")?.split_once(' ')?;
    // The health token is optional: records from journals written before
    // the cycle-accounting layer carry none and replay with zeroed health.
    let (health, row) = match rest.strip_prefix("health=") {
        Some(r) => {
            let (h, row) = r.split_once(" row=")?;
            (parse_health(h)?, row)
        }
        None => (ProgressStats::default(), rest.strip_prefix("row=")?),
    };
    // A torn write cannot end in a newline, so any complete `row=` payload
    // is the full verbatim row; still insist it looks like one JSON object.
    if !(row.starts_with('{') && row.ends_with('}')) {
        return None;
    }
    Some((
        idx,
        CellRecord {
            cycles: cycles.parse().ok()?,
            instructions: instr.parse().ok()?,
            health,
            row: row.to_string(),
        },
    ))
}

/// Parses the 5-field colon-separated health token (see the module docs
/// for field order); `None` for any other shape.
fn parse_health(h: &str) -> Option<ProgressStats> {
    let mut it = h.split(':').map(str::parse::<u64>);
    let mut next = || it.next()?.ok();
    let s = ProgressStats {
        dir_rescues: next()?,
        dir_alloc_attempts_max: next()?,
        fill_attempts_max: next()?,
        lsq_attempts_max: next()?,
        noc_backlog_max: next()?,
    };
    if it.next().is_some() {
        return None;
    }
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("fa-ckpt-test-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fresh_journal_writes_header_and_replays_records() {
        let p = tmp("fresh");
        let _ = std::fs::remove_file(&p);
        let health = ProgressStats {
            dir_rescues: 2,
            dir_alloc_attempts_max: 9,
            fill_attempts_max: 4,
            lsq_attempts_max: 1,
            noc_backlog_max: 37,
        };
        {
            let j = Journal::open(&p, 0xABCD, 4).unwrap();
            assert!(j.completed.is_empty());
            j.record(
                2,
                &CellRecord { cycles: 100, instructions: 50, health, row: "{\"k\":1}".into() },
            )
            .unwrap();
            j.record(0, &CellRecord { cycles: 7, instructions: 3, row: "{\"k\":0}".into(), ..CellRecord::default() })
                .unwrap();
        }
        let j = Journal::open(&p, 0xABCD, 4).unwrap();
        assert_eq!(j.completed.len(), 2);
        assert_eq!(j.completed[&2].row, "{\"k\":1}");
        assert_eq!(j.completed[&2].health, health, "health survives the round trip");
        assert_eq!(j.completed[&0].cycles, 7);
        assert_eq!(j.completed[&0].health, ProgressStats::default());
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn records_without_health_token_replay_with_zeroed_health() {
        // Journals written before the cycle-accounting layer carry no
        // `health=` token; their records must still replay.
        let line = "cell 1 cycles=10 instr=5 row={\"a\":1}";
        let (idx, rec) = parse_record(line, 4).unwrap();
        assert_eq!(idx, 1);
        assert_eq!(rec.cycles, 10);
        assert_eq!(rec.health, ProgressStats::default());
        assert_eq!(rec.row, "{\"a\":1}");
        // A malformed health token drops the record (the cell re-runs).
        assert!(parse_record("cell 1 cycles=10 instr=5 health=1:2 row={\"a\":1}", 4).is_none());
        assert!(parse_record("cell 1 cycles=10 instr=5 health=x:0:0:0:0 row={\"a\":1}", 4).is_none());
    }

    #[test]
    fn torn_tail_and_malformed_lines_are_skipped_last_wins() {
        let text = format!(
            "{SCHEMA} fingerprint={:016x} cells=4\n\
             cell 1 cycles=10 instr=5 row={{\"a\":1}}\n\
             cell 9 cycles=1 instr=1 row={{\"oob\":1}}\n\
             not a record\n\
             cell 1 cycles=20 instr=9 row={{\"a\":2}}\n\
             cell 3 cycles=3 instr=2 row={{\"torn\"",
            0xFEEDu64
        );
        let got = parse(&text, Path::new("j"), 0xFEED, 4).unwrap();
        assert_eq!(got.len(), 1, "oob index, garbage and the torn tail are all dropped");
        assert_eq!(got[&1].row, "{\"a\":2}", "duplicate records are last-wins");
        assert_eq!(got[&1].cycles, 20);
    }

    #[test]
    fn torn_header_means_fresh_start() {
        assert!(parse("fa-checkpoint-v1 finger", Path::new("j"), 0xFEED, 4).is_none());
        assert!(parse("", Path::new("j"), 0xFEED, 4).is_none());
    }

    #[test]
    #[should_panic(expected = "different campaign")]
    fn fingerprint_mismatch_panics_loudly() {
        let text = format!("{SCHEMA} fingerprint={:016x} cells=4\n", 0x1111u64);
        parse(&text, Path::new("j"), 0x2222, 4);
    }

    #[test]
    #[should_panic(expected = "different campaign")]
    fn cell_count_mismatch_panics_loudly() {
        let text = format!("{SCHEMA} fingerprint={:016x} cells=4\n", 0x1111u64);
        parse(&text, Path::new("j"), 0x1111, 5);
    }
}
