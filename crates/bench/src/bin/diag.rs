//! Developer diagnostic: per-policy counter dump for selected workloads.

// Non-test code must justify every panic site.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use fa_bench::BenchOpts;
use fa_core::AtomicPolicy;
use fa_sim::presets::icelake_like;

fn main() {
    let mut opts = BenchOpts::from_env();
    if fa_sim::env::var("FA_SCALE").is_none() {
        opts.scale = 0.1;
    }
    if fa_sim::env::var("FA_CORES").is_none() {
        opts.cores = 4;
    }
    let mut failed = false;
    for spec in opts.workloads() {
        for policy in AtomicPolicy::ALL {
            // A failed run prints its diagnostic snapshot (per-core ROB
            // heads, locked lines, busy directory entries) and moves on, so
            // one wedged configuration doesn't hide the rest of the table.
            let r = match fa_bench::run_once_checked(&spec, policy, &icelake_like(), &opts) {
                Ok(r) => r,
                Err(e) => {
                    failed = true;
                    eprintln!("{:<14} {:<16} FAILED: {e}", spec.name, policy.label());
                    continue;
                }
            };
            let a = r.aggregate();
            println!(
                "{:<14} {:<16} cycles={:<8} atomics={:<6} wd={:<4} sq_br={:<5} sq_mdv={:<5} \
                 sq_inv={:<6} squop={:<8} fba={:<5} fbs={:<5} sleep={:<8} parked={}",
                spec.name,
                policy.label(),
                r.cycles,
                a.atomics,
                a.watchdog_fires,
                a.squashes_branch,
                a.squashes_memorder,
                a.squashes_inval,
                a.squashed_uops,
                a.atomics_fwd_from_atomic,
                a.atomics_fwd_from_store,
                a.sleep_cycles,
                r.mem.cores.iter().map(|c| c.parked_on_lock).sum::<u64>(),
            );
        }
    }
    if failed {
        std::process::exit(1);
    }
}
