//! Regenerates **Figure 14**: normalized execution time of the four
//! atomic policies, including the §5.5 headline averages. Runs on the
//! parallel sweep engine (`FA_THREADS`) and writes `BENCH_sweep.json`.

// Non-test code must justify every panic site.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

fn main() {
    if let Err(e) = fa_bench::figures::fig14_exec_time(&fa_bench::BenchOpts::from_env()) {
        eprintln!("fig14_exec_time failed: {e}");
        std::process::exit(1);
    }
}
