//! Regenerates **Figure 14**: normalized execution time of the four
//! atomic policies, including the §5.5 headline averages.

fn main() {
    fa_bench::figures::fig14_exec_time(&fa_bench::BenchOpts::from_env());
}
