//! Regenerates **Figure 12**: atomics per kilo-instruction.

fn main() {
    fa_bench::figures::fig12_apki(&fa_bench::BenchOpts::from_env());
}
