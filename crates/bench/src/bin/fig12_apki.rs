//! Regenerates **Figure 12**: atomics per kilo-instruction.

fn main() {
    if let Err(e) = fa_bench::figures::fig12_apki(&fa_bench::BenchOpts::from_env()) {
        eprintln!("fig12_apki failed: {e}");
        std::process::exit(1);
    }
}
