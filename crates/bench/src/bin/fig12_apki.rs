//! Regenerates **Figure 12**: atomics per kilo-instruction.

// Non-test code must justify every panic site.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

fn main() {
    if let Err(e) = fa_bench::figures::fig12_apki(&fa_bench::BenchOpts::from_env()) {
        eprintln!("fig12_apki failed: {e}");
        std::process::exit(1);
    }
}
