//! Regenerates **Table 2**: characterization of Free atomics.

// Non-test code must justify every panic site.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

fn main() {
    if let Err(e) = fa_bench::figures::table2_characterization(&fa_bench::BenchOpts::from_env()) {
        eprintln!("table2_characterization failed: {e}");
        std::process::exit(1);
    }
}
