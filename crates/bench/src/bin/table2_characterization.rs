//! Regenerates **Table 2**: characterization of Free atomics.

fn main() {
    if let Err(e) = fa_bench::figures::table2_characterization(&fa_bench::BenchOpts::from_env()) {
        eprintln!("table2_characterization failed: {e}");
        std::process::exit(1);
    }
}
