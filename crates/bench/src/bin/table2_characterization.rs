//! Regenerates **Table 2**: characterization of Free atomics.

fn main() {
    fa_bench::figures::table2_characterization(&fa_bench::BenchOpts::from_env());
}
