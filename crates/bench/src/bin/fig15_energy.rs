//! Regenerates **Figure 15**: normalized energy consumption.

fn main() {
    fa_bench::figures::fig15_energy(&fa_bench::BenchOpts::from_env());
}
