//! Regenerates **Figure 15**: normalized energy consumption. Runs on the
//! parallel sweep engine (`FA_THREADS`) and writes `BENCH_sweep.json`.

// Non-test code must justify every panic site.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

fn main() {
    if let Err(e) = fa_bench::figures::fig15_energy(&fa_bench::BenchOpts::from_env()) {
        eprintln!("fig15_energy failed: {e}");
        std::process::exit(1);
    }
}
