//! Differential bottleneck report: diffs the cycle-accounting (`cpi`)
//! blocks of two `BENCH_sweep.json` files and prints per-cell, per-leaf
//! deltas with a loud verdict.
//!
//! Usage:
//!
//! ```text
//! FA_REPORT_BASELINE=<baseline.json> report [current.json]
//! report <baseline.json> <current.json>
//! ```
//!
//! With `FA_REPORT_BASELINE` set, the current report defaults to the
//! `FA_BENCH_JSON` destination (`BENCH_sweep.json`), so the natural flow
//! is: run a sweep on the baseline commit, set the variable to the saved
//! artifact, re-run the sweep, then run `report` with no arguments.
//!
//! Exit status: 0 for a clean diff, 1 for a configuration or I/O failure
//! (missing baseline, unreadable file, no `cpi` rows), 2 when any
//! compared cell regressed — total core cycles past the row threshold or
//! any taxonomy leaf past the leaf threshold (see `fa_bench::report`).

// Non-test code must justify every panic site.
#![deny(clippy::unwrap_used)]

use fa_bench::report::{diff, parse_rows};
use fa_bench::sweep::SweepReport;
use fa_sim::env;

fn read_rows(path: &str) -> Vec<fa_bench::report::CpiRow> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("report: {path}: {e}");
        std::process::exit(1);
    });
    let rows = parse_rows(&text);
    if rows.is_empty() {
        eprintln!(
            "report: {path}: no rows with a cpi block (not a BENCH_sweep.json written \
             with cycle accounting?)"
        );
        std::process::exit(1);
    }
    rows
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (baseline, current) = match (env::report_baseline(), args.as_slice()) {
        (Some(b), []) => (b, SweepReport::default_path().display().to_string()),
        (Some(b), [c]) => (b, c.clone()),
        (None, [b, c]) => (b.clone(), c.clone()),
        _ => {
            eprintln!(
                "report: need a baseline and a current report — set \
                 FA_REPORT_BASELINE=<baseline.json> (current defaults to FA_BENCH_JSON / \
                 BENCH_sweep.json, or pass it positionally) or run \
                 `report <baseline.json> <current.json>`"
            );
            std::process::exit(1);
        }
    };
    println!("# report: {baseline} (baseline) vs {current} (current)\n");
    let d = diff(&read_rows(&baseline), &read_rows(&current));
    print!("{}", d.render());
    if d.regressed() {
        std::process::exit(2);
    }
}
