//! Regenerates **Figure 1**: the cost of fenced atomic RMWs.

// Non-test code must justify every panic site.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

fn main() {
    if let Err(e) = fa_bench::figures::fig01_atomic_cost(&fa_bench::BenchOpts::from_env()) {
        eprintln!("fig01_atomic_cost failed: {e}");
        std::process::exit(1);
    }
}
