//! Regenerates **Figure 1**: the cost of fenced atomic RMWs.

fn main() {
    fa_bench::figures::fig01_atomic_cost(&fa_bench::BenchOpts::from_env());
}
