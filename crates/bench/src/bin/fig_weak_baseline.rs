//! Regenerates the **weak-baseline experiment**: FreeFwd's residual
//! speedup over an acquire/release-native (ARM-like weak) baseline,
//! alongside its speedup over the paper's fenced x86-TSO baseline.

// Non-test code must justify every panic site.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

fn main() {
    if let Err(e) = fa_bench::figures::fig_weak_baseline(&fa_bench::BenchOpts::from_env()) {
        eprintln!("fig_weak_baseline failed: {e}");
        std::process::exit(1);
    }
}
