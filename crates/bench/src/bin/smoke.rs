//! Quick end-to-end smoke run: every workload on the detailed simulator
//! under two policies at a small scale, printing cycles / instructions /
//! APKI. Used during development and as a fast sanity gate.

// Non-test code must justify every panic site.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use fa_bench::{fmt, row, BenchOpts};
use fa_core::AtomicPolicy;
use fa_sim::presets::icelake_like;

fn main() {
    let mut opts = BenchOpts::from_env();
    if fa_sim::env::var("FA_SCALE").is_none() {
        opts.scale = 0.1;
    }
    if fa_sim::env::var("FA_CORES").is_none() {
        opts.cores = 4;
    }
    let base = icelake_like();
    println!(
        "{}",
        row(&["workload".into(), "policy".into(), "cycles".into(), "instrs".into(), "APKI".into()])
    );
    for spec in opts.workloads() {
        for policy in [AtomicPolicy::FencedBaseline, AtomicPolicy::FreeFwd] {
            let t0 = std::time::Instant::now();
            let r = fa_bench::run_once(&spec, policy, &base, &opts);
            println!(
                "{}  ({:.2}s wall)",
                row(&[
                    spec.name.into(),
                    policy.label().into(),
                    r.cycles.to_string(),
                    r.instructions().to_string(),
                    fmt(r.apki(), 2),
                ]),
                t0.elapsed().as_secs_f64()
            );
        }
    }
}
