//! Regenerates **Figure 16**: network sensitivity of the Free-atomics
//! speedup — fenced baseline vs FreeAtomics+Fwd under the ideal crossbar
//! and the contended crossbar at link bandwidth 1/2/4 flits/cycle, with
//! per-link utilization and queue-depth detail. Runs on the parallel sweep
//! engine (`FA_THREADS`) and writes the merged `BENCH_sweep.json`.

// Non-test code must justify every panic site.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

fn main() {
    if let Err(e) =
        fa_bench::figures::fig16_network_sensitivity(&fa_bench::BenchOpts::from_env())
    {
        eprintln!("fig16_network_sensitivity failed: {e}");
        std::process::exit(1);
    }
}
