//! Ablation sweeps over the design parameters DESIGN.md calls out:
//!
//! * **AQ size** — the paper's §4.3 sensitivity analysis concludes 4
//!   entries suffice; sweep 1/2/4/8.
//! * **Watchdog threshold** — §3.2.5 picks 10 000 cycles to avoid
//!   unnecessary squashes; sweep 300/1 000/10 000/100 000.
//! * **Forwarding chain limit** — §3.3.4 caps chains at 32 against
//!   livelock; sweep 0/1/4/32.
//!
//! Uses a representative atomic-intensive subset to keep runtime sane;
//! select other workloads with `FA_WORKLOADS`.

use fa_bench::{fmt, row, run_once, BenchOpts};
use fa_core::AtomicPolicy;
use fa_sim::machine::MachineConfig;
use fa_sim::presets::icelake_like;
use fa_workloads::suite;

fn subset(opts: &BenchOpts) -> Vec<fa_workloads::WorkloadSpec> {
    if std::env::var("FA_WORKLOADS").is_ok() {
        return opts.workloads();
    }
    ["TATP", "AS", "barnes", "canneal"]
        .iter()
        .map(|n| suite::by_name(n).expect("known"))
        .collect()
}

fn sweep(
    title: &str,
    opts: &BenchOpts,
    values: &[u64],
    apply: impl Fn(&mut MachineConfig, u64),
) {
    println!("\n## Ablation — {title}\n");
    let mut header = vec!["workload".to_string()];
    header.extend(values.iter().map(|v| v.to_string()));
    println!("{}", row(&header));
    for spec in subset(opts) {
        let mut cells = vec![spec.name.to_string()];
        let mut base = None;
        for &v in values {
            let mut cfg = icelake_like();
            cfg.core.policy = AtomicPolicy::FreeFwd;
            apply(&mut cfg, v);
            let r = run_once(&spec, AtomicPolicy::FreeFwd, &cfg, opts);
            let b = *base.get_or_insert(r.cycles as f64);
            cells.push(fmt(r.cycles as f64 / b, 3));
        }
        println!("{}", row(&cells));
    }
}

fn main() {
    let mut opts = BenchOpts::from_env();
    if std::env::var("FA_SCALE").is_err() {
        opts.scale = 0.15;
    }
    if std::env::var("FA_CORES").is_err() {
        opts.cores = 4;
    }
    println!("(cycles normalized to the leftmost configuration; lower is better)");
    sweep("Atomic Queue entries (paper: 4)", &opts, &[1, 2, 4, 8], |c, v| {
        c.core.aq_size = v as usize;
    });
    sweep(
        "watchdog threshold in cycles (paper: 10000)",
        &opts,
        &[300, 1_000, 10_000, 100_000],
        |c, v| {
            c.core.watchdog_threshold = v;
        },
    );
    sweep(
        "forwarding chain limit (paper: 32; 0 disables forwarding)",
        &opts,
        &[0, 1, 4, 32],
        |c, v| {
            c.core.fwd_chain_max = v as u32;
        },
    );
}
