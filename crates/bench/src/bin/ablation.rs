//! Ablation sweeps over the design parameters DESIGN.md calls out:
//!
//! * **AQ size** — the paper's §4.3 sensitivity analysis concludes 4
//!   entries suffice; sweep 1/2/4/8.
//! * **Watchdog threshold** — §3.2.5 picks 10 000 cycles to avoid
//!   unnecessary squashes; sweep 300/1 000/10 000/100 000.
//! * **Forwarding chain limit** — §3.3.4 caps chains at 32 against
//!   livelock; sweep 0/1/4/32.
//!
//! Uses a representative atomic-intensive subset to keep runtime sane;
//! select other workloads with `FA_WORKLOADS`. Each `(workload, value)`
//! cell is independent, so the grid fans across `FA_THREADS` sweep
//! workers; a failed cell is reported and the binary exits nonzero.

// Non-test code must justify every panic site.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use fa_bench::{fmt, row, run_once_checked, BenchOpts};
use fa_core::AtomicPolicy;
use fa_sim::machine::MachineConfig;
use fa_sim::presets::icelake_like;
use fa_workloads::suite;

fn subset(opts: &BenchOpts) -> Vec<fa_workloads::WorkloadSpec> {
    if fa_sim::env::var("FA_WORKLOADS").is_some() {
        return opts.workloads();
    }
    ["TATP", "AS", "barnes", "canneal"]
        .iter()
        .map(|n| suite::by_name(n).expect("known"))
        .collect()
}

/// Runs one ablation axis: every `(workload, value)` cell on the sweep
/// engine, rows normalized to the leftmost value. Returns false if any
/// cell failed.
fn sweep(
    title: &str,
    opts: &BenchOpts,
    values: &[u64],
    apply: impl Fn(&mut MachineConfig, u64) + Sync,
) -> bool {
    println!("\n## Ablation — {title}\n");
    let mut header = vec!["workload".to_string()];
    header.extend(values.iter().map(|v| v.to_string()));
    println!("{}", row(&header));
    let specs = subset(opts);
    let jobs: Vec<(fa_workloads::WorkloadSpec, u64)> = specs
        .iter()
        .flat_map(|&s| values.iter().map(move |&v| (s, v)))
        .collect();
    let results = fa_sim::run_cells(&jobs, opts.threads, |_, &(spec, v)| {
        let mut cfg = icelake_like();
        cfg.core.policy = AtomicPolicy::FreeFwd;
        apply(&mut cfg, v);
        run_once_checked(&spec, AtomicPolicy::FreeFwd, &cfg, opts)
    });
    let mut ok = true;
    for (spec, chunk) in specs.iter().zip(results.chunks(values.len())) {
        let mut cells = vec![spec.name.to_string()];
        let mut base = None;
        for (r, &v) in chunk.iter().zip(values) {
            match r {
                Ok(r) => {
                    let b = *base.get_or_insert(r.cycles as f64);
                    cells.push(fmt(r.cycles as f64 / b, 3));
                }
                Err(e) => {
                    ok = false;
                    eprintln!("{} at {title}={v}: {e}", spec.name);
                    cells.push("FAIL".to_string());
                }
            }
        }
        println!("{}", row(&cells));
    }
    ok
}

fn main() {
    let mut opts = BenchOpts::from_env();
    if fa_sim::env::var("FA_SCALE").is_none() {
        opts.scale = 0.15;
    }
    if fa_sim::env::var("FA_CORES").is_none() {
        opts.cores = 4;
    }
    println!("(cycles normalized to the leftmost configuration; lower is better)");
    let mut ok = true;
    ok &= sweep("Atomic Queue entries (paper: 4)", &opts, &[1, 2, 4, 8], |c, v| {
        c.core.aq_size = v as usize;
    });
    ok &= sweep(
        "watchdog threshold in cycles (paper: 10000)",
        &opts,
        &[300, 1_000, 10_000, 100_000],
        |c, v| {
            c.core.watchdog_threshold = v;
        },
    );
    ok &= sweep(
        "forwarding chain limit (paper: 32; 0 disables forwarding)",
        &opts,
        &[0, 1, 4, 32],
        |c, v| {
            c.core.fwd_chain_max = v as u32;
        },
    );
    if !ok {
        std::process::exit(1);
    }
}
