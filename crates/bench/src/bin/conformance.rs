//! Full-execution TSO conformance sweep.
//!
//! Runs the workload suite with the axiomatic x86-TSO + RMW-atomicity
//! checker armed on every run, across the grid
//! {baseline, free-atomics} × {ideal, contended crossbar} × {chaos off, on}:
//! every completed execution's data events and write-serialization log are
//! validated against the full axioms (`sc-per-location`, ghb acyclicity,
//! fence/RMW ordering, RMW atomicity), not just its architectural outputs.
//! Prints one line per cell and a violation summary; exits nonzero on any
//! violation or failed run.
//!
//! # Environment
//!
//! Sized by the usual `FA_CORES` / `FA_SCALE` / `FA_WORKLOADS` knobs (small
//! defaults: 4 cores, scale 0.1). `FA_CHECK` defaults to `tso` here —
//! setting it to `off` reduces the bin to a plain smoke run, which is only
//! useful for measuring checker overhead. `FA_MODEL=weak` runs the same
//! grid on the acquire/release-native machine with the parameterized weak
//! axioms armed instead of the TSO ones. Each cell runs under
//! [`fa_sim::supervise`] with the `FA_RETRIES` / `FA_CELL_BUDGET`
//! watchdogs, so a panicking or wedged cell is counted as a failure
//! instead of killing or hanging the sweep.

// Non-test code must justify every panic site.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use fa_bench::sweep::SupervisorOpts;
use fa_bench::{row, BenchOpts};
use fa_core::AtomicPolicy;
use fa_mem::{ChaosConfig, NocConfig};
use fa_sim::error::CellFailure;
use fa_sim::presets::icelake_like;
use fa_sim::{env, supervise, CheckMode, Machine};

fn main() {
    let mut opts = BenchOpts::from_env();
    if env::var("FA_SCALE").is_none() {
        opts.scale = 0.1;
    }
    if env::var("FA_CORES").is_none() {
        opts.cores = 4;
    }
    opts.check = env::check_setting_or(CheckMode::Tso);
    let sup = SupervisorOpts::from_env();
    let max_cycles = sup.budget.max_cycles.unwrap_or(400_000_000);
    let base = icelake_like();
    let params = opts.params();
    let policies = [AtomicPolicy::FencedBaseline, AtomicPolicy::FreeFwd];
    let nocs = [("ideal", NocConfig::default()), ("contended", NocConfig::contended(2))];
    let chaos = [("chaos=off", None), ("chaos=on", Some(opts.seed))];
    println!(
        "{}",
        row(&[
            "workload".into(),
            "policy".into(),
            "noc".into(),
            "chaos".into(),
            "cycles".into(),
            "check".into(),
        ])
    );
    let mut runs = 0u64;
    let mut violations = 0u64;
    let mut failures = 0u64;
    for spec in opts.workloads() {
        for policy in policies {
            for (noc_name, noc) in &nocs {
                for (chaos_name, chaos_seed) in &chaos {
                    let mut cfg = base.clone().with_check(opts.check);
                    cfg.core.policy = policy;
                    cfg.core.model = opts.model;
                    cfg.mem.noc = *noc;
                    cfg.mem.progress = opts.progress;
                    if let Some(seed) = chaos_seed {
                        cfg.mem.chaos = ChaosConfig::stress(*seed);
                    }
                    runs += 1;
                    // The closure's Err carries a machine snapshot; this
                    // cold-path size is fine.
                    #[allow(clippy::result_large_err)]
                    let outcome = supervise(sup.retries, sup.budget.wall, || {
                        let w = spec.build(&params);
                        Machine::new(cfg.clone(), w.programs, w.mem).run(max_cycles)
                    });
                    let status = match outcome {
                        Ok(r) => {
                            println!(
                                "{}",
                                row(&[
                                    spec.name.into(),
                                    policy.label().into(),
                                    (*noc_name).into(),
                                    (*chaos_name).into(),
                                    r.cycles.to_string(),
                                    opts.check.name().into(),
                                ])
                            );
                            continue;
                        }
                        Err(q) => match *q.failure {
                            CellFailure::Sim(e @ fa_sim::SimError::Tso { .. }) => {
                                violations += 1;
                                format!("VIOLATION: {e}")
                            }
                            f => {
                                failures += 1;
                                format!("FAILED (after {} attempt(s)): {f}", q.attempts)
                            }
                        },
                    };
                    println!(
                        "{} {status}",
                        row(&[
                            spec.name.into(),
                            policy.label().into(),
                            (*noc_name).into(),
                            (*chaos_name).into(),
                            "-".into(),
                            opts.check.name().into(),
                        ])
                    );
                }
            }
        }
    }
    println!("conformance: {runs} runs, violations: {violations}, other failures: {failures}");
    if violations > 0 || failures > 0 {
        std::process::exit(1);
    }
}
