//! Differential litmus-fuzzing smoke driver.
//!
//! Runs a seeded campaign of random concurrent programs under fault
//! injection across every atomic policy, checking outcomes against the
//! x86-TSO reference enumerator with the invariant auditor armed. Exits
//! nonzero on any finding and prints each failure with its replay
//! identity (seed + case index + policy).
//!
//! # Environment
//!
//! | variable | default | meaning |
//! |---|---|---|
//! | `FA_FUZZ_CASES` | 100 | generated programs |
//! | `FA_FUZZ_SEED` | 0xF1A7F1A72022 | master campaign seed |
//! | `FA_FUZZ_MAX_THREADS` | 3 | max threads per program |
//! | `FA_FUZZ_MAX_OPS` | 3 | max ops per thread |
//! | `FA_THREADS` | 0 (auto) | campaign worker threads |
//! | `FA_CHECK` | `tso` | axiomatic conformance checking per run (`off` to disable) |
//!
//! Case generation is serial and seeded, so the report is bit-identical
//! at any `FA_THREADS` value.
//!
//! The whole campaign runs under [`fa_sim::supervise`]: a panic anywhere
//! in the fuzzer (or an expired `FA_CELL_BUDGET` wall-clock watchdog) is
//! caught, reported with its structured failure, and exits nonzero instead
//! of unwinding or hanging the CI gate.

// Non-test code must justify every panic site.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use fa_sim::env;
use fa_sim::fuzz::{fuzz_litmus, FuzzConfig};
use fa_sim::presets::tiny_machine;
use fa_sim::{supervise, CheckMode};

fn main() {
    let base = FuzzConfig::default();
    let fcfg = FuzzConfig {
        cases: env::u64_or("FA_FUZZ_CASES", 100),
        seed: env::u64_or("FA_FUZZ_SEED", base.seed),
        max_threads: env::usize_or("FA_FUZZ_MAX_THREADS", base.max_threads),
        max_ops: env::usize_or("FA_FUZZ_MAX_OPS", base.max_ops),
        threads: env::usize_or("FA_THREADS", base.threads),
        check: env::check_setting_or(CheckMode::Tso),
        ..base
    };
    // The supervised closure's Err type carries a machine snapshot; this
    // cold-path size is fine.
    #[allow(clippy::result_large_err)]
    let report =
        match supervise(env::retries(), env::cell_budget().wall, || Ok(fuzz_litmus(&tiny_machine(), &fcfg))) {
            Ok(r) => r,
            Err(q) => {
                eprintln!("fuzz campaign quarantined after {} attempt(s): {}", q.attempts, q.failure);
                std::process::exit(2);
            }
        };
    print!("{report}");
    if !report.ok() {
        std::process::exit(1);
    }
}
