//! Prints **Table 1**: the simulated system configuration.

// Non-test code must justify every panic site.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

fn main() {
    fa_bench::figures::table1_config();
}
