//! Prints **Table 1**: the simulated system configuration.

fn main() {
    fa_bench::figures::table1_config();
}
