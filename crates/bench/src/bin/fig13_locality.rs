//! Regenerates **Figure 13**: locality of atomics.

fn main() {
    if let Err(e) = fa_bench::figures::fig13_locality(&fa_bench::BenchOpts::from_env()) {
        eprintln!("fig13_locality failed: {e}");
        std::process::exit(1);
    }
}
