//! Regenerates **Figure 13**: locality of atomics.

fn main() {
    fa_bench::figures::fig13_locality(&fa_bench::BenchOpts::from_env());
}
