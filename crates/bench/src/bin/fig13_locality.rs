//! Regenerates **Figure 13**: locality of atomics.

// Non-test code must justify every panic site.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

fn main() {
    if let Err(e) = fa_bench::figures::fig13_locality(&fa_bench::BenchOpts::from_env()) {
        eprintln!("fig13_locality failed: {e}");
        std::process::exit(1);
    }
}
