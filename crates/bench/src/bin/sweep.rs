//! Standalone sweep driver: measures a `(kernel, policy, preset)` grid on
//! the parallel sweep engine, prints one row per cell, and writes the
//! `BENCH_sweep.json` throughput report (wall clock, simulated cycles/sec,
//! simulated MIPS).
//!
//! Sized by the usual `FA_*` variables; additionally:
//!
//! | variable | default | meaning |
//! |---|---|---|
//! | `FA_POLICIES` | all four | comma-separated policy labels |
//! | `FA_PRESETS` | `icelake` | comma-separated preset names |
//! | `FA_THREADS` | 0 (auto) | sweep worker threads |
//! | `FA_BENCH_JSON` | `BENCH_sweep.json` | report destination |
//!
//! Rows are a pure function of the simulated cells, so re-running with a
//! different `FA_THREADS` must reproduce them byte-for-byte; only the
//! timing block changes.

use fa_bench::sweep::{grid, run_grid, Preset, SweepReport, SweepRow};
use fa_bench::{row, BenchOpts};
use fa_core::AtomicPolicy;

fn policies() -> Vec<AtomicPolicy> {
    match std::env::var("FA_POLICIES") {
        Ok(list) => list
            .split(',')
            .map(str::trim)
            .map(|name| {
                AtomicPolicy::ALL
                    .into_iter()
                    .find(|p| p.label() == name)
                    .unwrap_or_else(|| {
                        let known: Vec<_> = AtomicPolicy::ALL.iter().map(|p| p.label()).collect();
                        panic!("FA_POLICIES: unknown policy {name:?} (known: {known:?})")
                    })
            })
            .collect(),
        Err(_) => AtomicPolicy::ALL.to_vec(),
    }
}

fn presets() -> Vec<Preset> {
    match std::env::var("FA_PRESETS") {
        Ok(list) => list
            .split(',')
            .map(str::trim)
            .map(|name| {
                Preset::by_name(name)
                    .unwrap_or_else(|| panic!("FA_PRESETS: unknown preset {name:?}"))
            })
            .collect(),
        Err(_) => vec![Preset::Icelake],
    }
}

fn main() {
    let opts = BenchOpts::from_env();
    let cells = grid(&opts.workloads(), &policies(), &presets());
    println!(
        "# sweep: {} cells (cores={}, scale={}, runs={}, drop={}, threads={})",
        cells.len(),
        opts.cores,
        opts.scale,
        opts.runs,
        opts.drop_slowest,
        opts.threads
    );
    let (results, timing) = match run_grid(&opts, &cells) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{}",
        row(&[
            "kernel".into(),
            "policy".into(),
            "preset".into(),
            "mean cycles".into(),
            "rep cycles".into(),
            "instrs".into(),
        ])
    );
    for r in &results {
        let rw = SweepRow::from_result(opts.runs, r);
        println!(
            "{}",
            row(&[
                rw.kernel,
                rw.policy,
                rw.preset,
                format!("{:.1}", rw.mean_cycles),
                rw.rep_cycles.to_string(),
                rw.instructions.to_string(),
            ])
        );
    }
    let report = SweepReport::new("sweep", &opts, &results, timing);
    println!("\n{}", report.timing_line());
    match report.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("sweep: could not write report: {e}");
            std::process::exit(1);
        }
    }
}
