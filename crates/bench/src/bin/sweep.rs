//! Supervised sweep driver: measures a `(kernel, policy, preset)` grid on
//! the parallel sweep engine under per-cell isolation, prints a status line
//! per cell, and writes the `BENCH_sweep.json` throughput report (wall
//! clock, simulated cycles/sec, simulated MIPS, any quarantined cells).
//!
//! Sized by the usual `FA_*` variables; additionally:
//!
//! | variable | default | meaning |
//! |---|---|---|
//! | `FA_POLICIES` | all four | comma-separated policy labels |
//! | `FA_PRESETS` | `icelake` | comma-separated preset names |
//! | `FA_THREADS` | 0 (auto) | sweep worker threads |
//! | `FA_BENCH_JSON` | `BENCH_sweep.json` | report destination |
//! | `FA_RETRIES` | 1 | failed-cell retries before quarantine |
//! | `FA_CELL_BUDGET` | unset | `<cycles>` or `<cycles>:<wall_secs>` per cell |
//! | `FA_CHECKPOINT` | unset | append-only journal for kill/resume |
//!
//! Rows are a pure function of the simulated cells, so re-running with a
//! different `FA_THREADS` — or killing the campaign and resuming it from
//! the `FA_CHECKPOINT` journal — must reproduce them byte-for-byte; only
//! the timing block changes.
//!
//! Exit status: 0 for a clean campaign, 1 for a configuration or I/O
//! failure, 2 when any cell was quarantined (the report is still written).

// Non-test code must justify every panic site.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use fa_bench::sweep::{
    grid, policies_from_env, presets_from_env, run_grid_supervised, SupervisorOpts, SweepReport,
};
use fa_bench::BenchOpts;

fn main() {
    let opts = BenchOpts::from_env();
    let sup = SupervisorOpts::from_env();
    let cells = grid(&opts.workloads(), &policies_from_env(), &presets_from_env());
    println!(
        "# sweep: {} cells (cores={}, scale={}, runs={}, drop={}, threads={}, noc={}, \
         retries={}, budget={:?}, checkpoint={:?})",
        cells.len(),
        opts.cores,
        opts.scale,
        opts.runs,
        opts.drop_slowest,
        opts.threads,
        opts.noc.policy.name(),
        sup.retries,
        sup.budget,
        sup.checkpoint,
    );
    let (outcome, timing) = match run_grid_supervised(&opts, &sup, &cells) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            std::process::exit(1);
        }
    };
    if outcome.resumed > 0 {
        println!("resumed {} completed cell(s) from the checkpoint journal", outcome.resumed);
    }
    let quarantined: Vec<String> = outcome.quarantine.iter().map(|q| q.cell.clone()).collect();
    for cell in &cells {
        let name = cell.name();
        let status = if quarantined.contains(&name) { "QUARANTINED" } else { "ok" };
        println!("{name}: {status}");
    }
    let report = SweepReport::from_outcome("sweep", &opts, outcome, timing);
    println!("\n{}", report.timing_line());
    match report.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("sweep: could not write report: {e}");
            std::process::exit(1);
        }
    }
    if !report.quarantine.is_empty() {
        eprintln!("sweep: {} cell(s) quarantined:", report.quarantine.len());
        for q in &report.quarantine {
            let first = q.failure.lines().next().unwrap_or("(no detail)");
            eprintln!("  {} after {} attempt(s): {first}", q.cell, q.attempts);
        }
        std::process::exit(2);
    }
}
