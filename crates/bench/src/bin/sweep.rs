//! Standalone sweep driver: measures a `(kernel, policy, preset)` grid on
//! the parallel sweep engine, prints one row per cell, and writes the
//! `BENCH_sweep.json` throughput report (wall clock, simulated cycles/sec,
//! simulated MIPS).
//!
//! Sized by the usual `FA_*` variables; additionally:
//!
//! | variable | default | meaning |
//! |---|---|---|
//! | `FA_POLICIES` | all four | comma-separated policy labels |
//! | `FA_PRESETS` | `icelake` | comma-separated preset names |
//! | `FA_THREADS` | 0 (auto) | sweep worker threads |
//! | `FA_BENCH_JSON` | `BENCH_sweep.json` | report destination |
//!
//! Rows are a pure function of the simulated cells, so re-running with a
//! different `FA_THREADS` must reproduce them byte-for-byte; only the
//! timing block changes.

use fa_bench::sweep::{
    grid, hot_locks, hot_locks_line, policies_from_env, presets_from_env, run_grid,
    SweepReport, SweepRow,
};
use fa_bench::{row, BenchOpts};

fn main() {
    let opts = BenchOpts::from_env();
    let cells = grid(&opts.workloads(), &policies_from_env(), &presets_from_env());
    println!(
        "# sweep: {} cells (cores={}, scale={}, runs={}, drop={}, threads={}, noc={})",
        cells.len(),
        opts.cores,
        opts.scale,
        opts.runs,
        opts.drop_slowest,
        opts.threads,
        opts.noc.policy.name()
    );
    let (results, timing) = match run_grid(&opts, &cells) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{}",
        row(&[
            "kernel".into(),
            "policy".into(),
            "preset".into(),
            "mean cycles".into(),
            "rep cycles".into(),
            "instrs".into(),
        ])
    );
    for r in &results {
        let rw = SweepRow::from_result(opts.runs, r);
        println!(
            "{}",
            row(&[
                rw.kernel,
                rw.policy,
                rw.preset,
                format!("{:.1}", rw.mean_cycles),
                rw.rep_cycles.to_string(),
                rw.instructions.to_string(),
            ])
        );
    }
    let report = SweepReport::new("sweep", &opts, &results, timing);
    println!("\n{}", report.timing_line());
    println!("{}", hot_locks_line(&hot_locks(&results)));
    match report.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("sweep: could not write report: {e}");
            std::process::exit(1);
        }
    }
}
