//! Trace exporter and flight-recorder demo.
//!
//! Default mode runs one workload with full event tracing and writes the
//! timeline as Chrome-trace/Perfetto JSON — open it in `ui.perfetto.dev`.
//! The export is self-validated structurally before it is written, so a
//! malformed file fails the run instead of failing in the viewer.
//!
//! `trace --flight-demo` instead drives an audited machine into a
//! deliberate forward-progress violation (a legal memory round-trip under
//! an impossibly tight stall bound) and prints the crash flight recorder:
//! the last structured events per component, as text and as JSON.
//!
//! # Environment
//!
//! Sized by the usual `FA_*` variables (see fa-bench's crate docs). The
//! export path comes from `FA_TRACE=full:<path>` when given, else
//! `fa_trace.json`; the recording mode here is always `full` — this *is*
//! the trace exporter.

// Non-test code must justify every panic site.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use fa_bench::BenchOpts;
use fa_core::AtomicPolicy;
use fa_isa::interp::GuestMem;
use fa_isa::{Kasm, Reg};
use fa_sim::presets::{icelake_like, tiny_machine};
use fa_sim::{flight_json, validate_chrome_trace, Machine, TraceMode};

fn main() {
    if std::env::args().any(|a| a == "--flight-demo") {
        flight_demo();
        return;
    }
    export_timeline();
}

/// Runs the first selected workload in full-trace mode and writes the
/// Perfetto timeline.
fn export_timeline() {
    let mut opts = BenchOpts::from_env();
    if fa_sim::env::var("FA_SCALE").is_none() {
        opts.scale = 0.05;
    }
    if fa_sim::env::var("FA_CORES").is_none() {
        opts.cores = 2;
    }
    opts.trace = TraceMode::Full;
    let path = fa_sim::env::trace_setting()
        .1
        .unwrap_or_else(|| "fa_trace.json".to_string());
    let spec = *opts.workloads().first().expect("workload suite is never empty");
    let cfg = opts.config_for(&icelake_like(), AtomicPolicy::FreeFwd);
    let w = spec.build(&opts.params());
    let mut m = Machine::new(cfg, w.programs, w.mem);
    let r = match m.run(400_000_000) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("trace: {} failed: {e}", spec.name);
            std::process::exit(1);
        }
    };
    let json = m.perfetto_trace();
    let events = match validate_chrome_trace(&json) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("trace: export failed self-validation: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("trace: could not write {path}: {e}");
        std::process::exit(1);
    }
    println!(
        "trace: {} on {} cores, {} cycles, {} instrs -> {} trace events in {path} \
         (open in ui.perfetto.dev)",
        spec.name,
        opts.cores,
        r.cycles,
        r.instructions(),
        events
    );
}

/// Forces a deterministic invariant-audit failure and shows the flight
/// recorder that rides on the resulting error.
fn flight_demo() {
    // A spin loop performing legal loads; an absurdly tight
    // forward-progress bound turns its first memory round-trip into an
    // audit violation — deliberately, to exercise the crash path.
    let mut k = Kasm::new();
    k.li(Reg::R1, 0x200);
    let top = k.here_label();
    k.ld(Reg::R2, Reg::R1, 0);
    k.beq_imm(Reg::R2, 0, top);
    k.halt();
    let spin = k.finish().expect("spin kernel assembles");
    let mut cfg = tiny_machine().with_trace(TraceMode::Flight);
    cfg.mem.audit =
        fa_mem::AuditConfig { enabled: true, max_core_stall: 2, ..fa_mem::AuditConfig::on() };
    let mut m = Machine::new(cfg, vec![spin], GuestMem::new(1 << 12));
    match m.run(100_000) {
        Ok(_) => {
            eprintln!("flight-demo: expected an audit violation, but the run quiesced");
            std::process::exit(1);
        }
        Err(e) => {
            println!("flight-demo: injected violation produced the expected error:\n");
            println!("{e}");
            let tail = e.snapshot().map(|s| s.trace_tail.clone()).unwrap_or_default();
            println!("\nflight recorder as JSON:\n{}", flight_json(&tail));
            if tail.is_empty() {
                eprintln!("flight-demo: flight recorder was empty");
                std::process::exit(1);
            }
        }
    }
}
