//! Per-cell CPI stacks for the figure-14 grid: every core cycle of each
//! `(workload, policy)` cell attributed to one leaf of the fixed cycle
//! taxonomy, plus the atomic-lifetime attribution table. Runs on the
//! parallel sweep engine (`FA_THREADS`) and writes `BENCH_sweep.json`
//! whose rows carry the `cpi` blocks the `report` bin diffs.
//!
//! Exit status: 0 on success, 1 for a configuration, simulation or I/O
//! failure.

// Non-test code must justify every panic site.
#![deny(clippy::unwrap_used)]

fn main() {
    if let Err(e) = fa_bench::figures::cpi_stacks(&fa_bench::BenchOpts::from_env()) {
        eprintln!("cpistack failed: {e}");
        std::process::exit(1);
    }
}
