//! Grid sweeps over `(kernel, policy, preset)` cells on the parallel
//! sweep engine, with wall-clock / simulated-MIPS accounting emitted as
//! `BENCH_sweep.json`.
//!
//! Work fans out at `(cell, run)` granularity — every methodology run of
//! every cell is an independent job on [`fa_sim::sweep::run_cells_timed`] —
//! then per-cell runs are regrouped in run order and summarized with
//! [`Methodology::summarize`]. Because each run derives its perturbations
//! from its own `seed + run` stream, the per-cell summaries (and therefore
//! the emitted rows) are bit-identical at any worker-thread count; only the
//! timing block differs. The JSON is hand-rolled — the vendored `serde` is
//! derive-markers only — and keeps the scheduling-dependent wall-clock
//! fields out of `rows` so serial and parallel sweeps agree byte-for-byte
//! there.

use crate::checkpoint::{fnv1a64, CellRecord, Journal};
use crate::BenchOpts;
use fa_core::AtomicPolicy;
use fa_mem::{HotLock, NocStats, ProgressStats, XbarPolicy};
use fa_sim::env;
use fa_sim::error::SimError;
use fa_sim::machine::{MachineConfig, RunResult};
use fa_sim::methodology::{Methodology, MultiRun};
use fa_sim::sweep::{run_cells_timed, supervise, SweepTiming};
use fa_sim::{json_object, json_u64_array, CpiStack, Hist};
use fa_workloads::{WorkloadParams, WorkloadSpec};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;

/// A named machine preset — the grid's third axis, and the name recorded
/// in each emitted row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Preset {
    /// The paper's Icelake-like Table-1 machine (352-entry ROB).
    Icelake,
    /// The Skylake-like variant (224-entry ROB).
    Skylake,
    /// The small audit-friendly machine used by tests and the fuzzer.
    Tiny,
}

impl Preset {
    /// The row label (also accepted by [`Preset::by_name`]).
    pub const fn name(self) -> &'static str {
        match self {
            Preset::Icelake => "icelake",
            Preset::Skylake => "skylake",
            Preset::Tiny => "tiny",
        }
    }

    /// The machine configuration this preset names.
    pub fn config(self) -> MachineConfig {
        match self {
            Preset::Icelake => fa_sim::presets::icelake_like(),
            Preset::Skylake => fa_sim::presets::skylake_like(),
            Preset::Tiny => fa_sim::presets::tiny_machine(),
        }
    }

    /// Parses a preset name (as printed by [`Preset::name`]).
    pub fn by_name(name: &str) -> Option<Preset> {
        [Preset::Icelake, Preset::Skylake, Preset::Tiny]
            .into_iter()
            .find(|p| p.name() == name)
    }
}

/// The policy axis selected via `FA_POLICIES` (comma-separated
/// [`AtomicPolicy::label`]s), or all four.
///
/// # Panics
///
/// Panics on an unknown policy label, listing the known ones.
pub fn policies_from_env() -> Vec<AtomicPolicy> {
    match env::list("FA_POLICIES") {
        Some(names) => names
            .iter()
            .map(|name| {
                AtomicPolicy::ALL
                    .into_iter()
                    .find(|p| p.label() == name)
                    .unwrap_or_else(|| {
                        let known: Vec<_> = AtomicPolicy::ALL.iter().map(|p| p.label()).collect();
                        panic!("FA_POLICIES: unknown policy {name:?} (known: {known:?})")
                    })
            })
            .collect(),
        None => AtomicPolicy::ALL.to_vec(),
    }
}

/// The preset axis selected via `FA_PRESETS` (comma-separated
/// [`Preset::name`]s), or just `icelake`.
///
/// # Panics
///
/// Panics on an unknown preset name.
pub fn presets_from_env() -> Vec<Preset> {
    match env::list("FA_PRESETS") {
        Some(names) => names
            .iter()
            .map(|name| {
                Preset::by_name(name)
                    .unwrap_or_else(|| panic!("FA_PRESETS: unknown preset {name:?}"))
            })
            .collect(),
        None => vec![Preset::Icelake],
    }
}

/// One independent sweep cell: a kernel under a policy on a preset. The
/// run-seed axis is added by the driver (one job per methodology run).
#[derive(Clone, Copy, Debug)]
pub struct SweepCell {
    /// The workload (kernel) to run.
    pub workload: WorkloadSpec,
    /// The atomic policy under test.
    pub policy: AtomicPolicy,
    /// The machine preset.
    pub preset: Preset,
}

impl SweepCell {
    /// The cell's stable identity, `kernel/policy/preset` — used by
    /// quarantine reports and the campaign fingerprint.
    pub fn name(&self) -> String {
        format!("{}/{}/{}", self.workload.name, self.policy.label(), self.preset.name())
    }
}

/// The full cross product, in row-major `(workload, policy, preset)` order
/// — the canonical cell enumeration every driver shares so row order is
/// stable across bins.
pub fn grid(
    workloads: &[WorkloadSpec],
    policies: &[AtomicPolicy],
    presets: &[Preset],
) -> Vec<SweepCell> {
    let mut cells = Vec::with_capacity(workloads.len() * policies.len() * presets.len());
    for &workload in workloads {
        for &policy in policies {
            for &preset in presets {
                cells.push(SweepCell { workload, policy, preset });
            }
        }
    }
    cells
}

/// One measured cell: the cell identity plus its multi-run summary.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// The cell that was measured.
    pub cell: SweepCell,
    /// Multi-run summary (mean over retained runs, fastest first).
    pub summary: MultiRun,
}

/// Runs every `(cell, run)` job of the grid across `opts.threads` workers
/// and returns per-cell summaries in cell order plus the sweep timing.
///
/// # Errors
///
/// [`SimError::InvalidMethodology`] for a configuration retaining no runs;
/// otherwise the first failing `(cell, run)` job's error, in job order
/// (every job is still attempted).
pub fn run_grid(
    opts: &BenchOpts,
    cells: &[SweepCell],
) -> Result<(Vec<CellResult>, SweepTiming), Box<SimError>> {
    let meth = opts.methodology();
    meth.validate().map_err(Box::new)?;
    let params = opts.params();
    let jobs: Vec<(usize, usize)> = (0..cells.len())
        .flat_map(|c| (0..meth.runs).map(move |r| (c, r)))
        .collect();
    let (results, timing) = run_cells_timed(
        &jobs,
        opts.threads,
        // Cold failure path; the error's diagnostic snapshot dominates.
        #[allow(clippy::result_large_err)]
        |_, &(ci, run)| {
            let cell = &cells[ci];
            let cfg = opts.config_for(&cell.preset.config(), cell.policy);
            let w = cell.workload.build(&params);
            meth.run_single(&cfg, run, w.programs, w.mem)
        },
        |r| r.as_ref().map(|rr| (rr.cycles, rr.instructions())).unwrap_or((0, 0)),
    );
    let mut out = Vec::with_capacity(cells.len());
    let mut it = results.into_iter();
    for &cell in cells {
        let runs: Result<Vec<_>, SimError> = it.by_ref().take(meth.runs).collect();
        let summary = meth.summarize(runs.map_err(Box::new)?).map_err(Box::new)?;
        out.push(CellResult { cell, summary });
    }
    Ok((out, timing))
}

/// Supervision settings for a sweep campaign: per-cell retries, the
/// simulated-cycle / wall-clock cell budget, and the optional checkpoint
/// journal for kill/resume.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SupervisorOpts {
    /// Failed-cell retries before quarantine (`FA_RETRIES`).
    pub retries: u32,
    /// Per-cell budget (`FA_CELL_BUDGET`): an optional simulated-cycle cap
    /// overriding the methodology's `max_cycles`, and an optional
    /// wall-clock watchdog armed for each attempt.
    pub budget: env::CellBudget,
    /// Checkpoint journal path (`FA_CHECKPOINT`); `None` disables
    /// checkpointing.
    pub checkpoint: Option<PathBuf>,
}

impl SupervisorOpts {
    /// Reads supervision settings from the environment.
    ///
    /// # Panics
    ///
    /// Panics on any set-but-malformed variable, naming the grammar.
    pub fn from_env() -> SupervisorOpts {
        SupervisorOpts {
            retries: env::retries(),
            budget: env::cell_budget(),
            checkpoint: env::checkpoint().map(PathBuf::from),
        }
    }

    /// No retries, no budget override, no checkpointing — supervision is
    /// pure isolation (panics still quarantine instead of unwinding).
    pub fn none() -> SupervisorOpts {
        SupervisorOpts::default()
    }
}

/// One quarantined cell, as recorded in the report's `quarantine` block:
/// the campaign completed without it after every attempt failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuarantinedCell {
    /// Cell identity (`kernel/policy/preset`).
    pub cell: String,
    /// Attempts made (1 + retries).
    pub attempts: u32,
    /// The last attempt's failure, rendered — for simulation errors this
    /// includes the machine snapshot with the flight-recorder tail.
    pub failure: String,
}

/// The outcome of a supervised campaign: rows for every completed cell (in
/// grid order), quarantine entries for the rest, and the resume count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepOutcome {
    /// `SweepRow::json_full` lines of completed cells, in grid order.
    /// Journal-resumed cells contribute their stored line verbatim, so a
    /// killed-and-resumed campaign is byte-identical to an uninterrupted
    /// one.
    pub row_lines: Vec<String>,
    /// Cells that failed every attempt, in grid order.
    pub quarantine: Vec<QuarantinedCell>,
    /// Cells replayed from the checkpoint journal instead of re-run.
    pub resumed: usize,
    /// Forward-progress counters aggregated over every run of every
    /// completed cell (rescues summed, high-water marks maxed); journaled
    /// cells contribute their stored health, so a resumed campaign's
    /// summary matches an uninterrupted one.
    pub health: ProgressStats,
}

/// Folds one forward-progress sample into an aggregate: event counts
/// (rescues) sum, high-water marks max — the same shape at every level of
/// aggregation (runs into a cell, cells into a campaign).
pub fn merge_health(into: &mut ProgressStats, h: &ProgressStats) {
    into.dir_rescues += h.dir_rescues;
    into.dir_alloc_attempts_max = into.dir_alloc_attempts_max.max(h.dir_alloc_attempts_max);
    into.fill_attempts_max = into.fill_attempts_max.max(h.fill_attempts_max);
    into.lsq_attempts_max = into.lsq_attempts_max.max(h.lsq_attempts_max);
    into.noc_backlog_max = into.noc_backlog_max.max(h.noc_backlog_max);
}

/// The campaign fingerprint for the checkpoint journal: an FNV-1a 64 hash
/// over everything that affects simulated rows — sizing, methodology,
/// seed, NoC, check mode, memory model, progress thresholds, the cycle
/// budget, and the cell identities — and nothing that does not
/// (worker-thread count, trace mode, wall-clock budget).
pub fn campaign_fingerprint(opts: &BenchOpts, budget_cycles: Option<u64>, cells: &[SweepCell]) -> u64 {
    let mut s = format!(
        "cores={} scale={:?} runs={} drop={} seed={} noc={:?} check={:?} model={:?} \
         progress={:?} budget_cycles={budget_cycles:?};cells:",
        opts.cores, opts.scale, opts.runs, opts.drop_slowest, opts.seed, opts.noc, opts.check,
        opts.model, opts.progress
    );
    for c in cells {
        s.push_str(&c.name());
        s.push(',');
    }
    fnv1a64(s.as_bytes())
}

/// Runs one whole cell — every methodology run, serially — and returns its
/// journal record: simulated totals over **all** runs (dropped ones
/// included, matching the unsupervised engine's accounting) plus the
/// emitted row line. Each run derives its perturbations from `seed + run`,
/// so this is bit-identical to the `(cell, run)`-granular fan-out.
// Cold failure path; the error's diagnostic snapshot dominates.
#[allow(clippy::result_large_err)]
fn run_one_cell(
    opts: &BenchOpts,
    meth: &Methodology,
    params: &WorkloadParams,
    cell: &SweepCell,
) -> Result<CellRecord, SimError> {
    let cfg = opts.config_for(&cell.preset.config(), cell.policy);
    let mut runs = Vec::with_capacity(meth.runs);
    let (mut cycles, mut instructions) = (0u64, 0u64);
    let mut health = ProgressStats::default();
    for run in 0..meth.runs {
        let w = cell.workload.build(params);
        let rr = meth.run_single(&cfg, run, w.programs, w.mem)?;
        cycles += rr.cycles;
        instructions += rr.instructions();
        merge_health(&mut health, &rr.mem.progress);
        runs.push(rr);
    }
    let summary = meth.summarize(runs)?;
    let mut row = SweepRow::from_result(meth.runs, &CellResult { cell: *cell, summary });
    row.checked = opts.check.on();
    row.model = opts.model;
    Ok(CellRecord { cycles, instructions, health, row: row.json_full() })
}

/// [`run_grid`] under full supervision: each cell is one isolated job —
/// panics caught, the `FA_CELL_BUDGET` watchdogs armed, failures retried
/// `sup.retries` times, survivors quarantined into the outcome instead of
/// aborting the campaign — and, when `sup.checkpoint` is set, every
/// completed cell is journaled as it finishes so a killed campaign resumes
/// exactly where it stopped.
///
/// Completed rows are byte-identical to [`run_grid`]'s at any worker-thread
/// count, with or without an intervening kill/resume.
///
/// # Errors
///
/// [`SimError::InvalidMethodology`] for a configuration retaining no runs.
/// Per-cell failures do not error — they quarantine.
///
/// # Panics
///
/// Panics when the checkpoint journal cannot be opened or appended to, or
/// belongs to a different campaign (fingerprint mismatch).
// The supervised closure's Err carries a full machine snapshot by design;
// it is built once on the cold failure path, never per cycle.
#[allow(clippy::result_large_err)]
pub fn run_grid_supervised(
    opts: &BenchOpts,
    sup: &SupervisorOpts,
    cells: &[SweepCell],
) -> Result<(SweepOutcome, SweepTiming), Box<SimError>> {
    let mut meth = opts.methodology();
    if let Some(c) = sup.budget.max_cycles {
        meth.max_cycles = c;
    }
    meth.validate().map_err(Box::new)?;
    let params = opts.params();
    let journal = sup.checkpoint.as_deref().map(|p| {
        let fp = campaign_fingerprint(opts, sup.budget.max_cycles, cells);
        Journal::open(p, fp, cells.len())
            .unwrap_or_else(|e| panic!("FA_CHECKPOINT {}: {e}", p.display()))
    });
    let done = |ci: &usize| journal.as_ref().is_some_and(|j| j.completed.contains_key(ci));
    let pending: Vec<usize> = (0..cells.len()).filter(|ci| !done(ci)).collect();
    let resumed = cells.len() - pending.len();
    let (results, mut timing) = run_cells_timed(
        &pending,
        opts.threads,
        |_, &ci| {
            let r = supervise(sup.retries, sup.budget.wall, || {
                run_one_cell(opts, &meth, &params, &cells[ci])
            });
            if let (Ok(rec), Some(j)) = (&r, &journal) {
                // Journal the success before the worker moves on: a kill
                // after this point cannot lose the cell.
                j.record(ci, rec)
                    .unwrap_or_else(|e| panic!("FA_CHECKPOINT {}: {e}", j.path().display()));
            }
            r
        },
        |r| r.as_ref().map(|rec| (rec.cycles, rec.instructions)).unwrap_or((0, 0)),
    );
    timing.cells = cells.len();
    let mut row_lines = Vec::with_capacity(cells.len());
    let mut quarantine = Vec::new();
    let mut health = ProgressStats::default();
    let mut fresh = results.into_iter();
    for (ci, cell) in cells.iter().enumerate() {
        if let Some(rec) = journal.as_ref().and_then(|j| j.completed.get(&ci)) {
            row_lines.push(rec.row.clone());
            timing.sim_cycles += rec.cycles;
            timing.sim_instructions += rec.instructions;
            merge_health(&mut health, &rec.health);
            continue;
        }
        match fresh.next().expect("one supervised result per pending cell") {
            Ok(rec) => {
                merge_health(&mut health, &rec.health);
                row_lines.push(rec.row);
            }
            Err(q) => quarantine.push(QuarantinedCell {
                cell: cell.name(),
                attempts: q.attempts,
                failure: q.failure.to_string(),
            }),
        }
    }
    Ok((SweepOutcome { row_lines, quarantine, resumed, health }, timing))
}

/// The latency-histogram block of one sweep row: log₂-bucketed
/// distributions from the representative run. Histograms are always-on
/// passive counters with fixed bucket edges, so these merge element-wise
/// and are bit-identical at any `FA_THREADS` value and any `FA_TRACE`
/// mode.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RowHists {
    /// Atomic execution latency (`load_lock` issue → `store_unlock`
    /// perform), summed across cores.
    pub atomic_exec: Hist,
    /// Store-buffer drain cycles paid before a `load_lock` could issue
    /// (the fence cost free atomics remove; all-zero under free policies).
    pub atomic_drain: Hist,
    /// Cycles fills stalled on an all-ways-locked set, across cores.
    pub fill_stall: Hist,
    /// Cache-lock hold windows (outermost lock → unlock), across cores.
    pub lock_hold: Hist,
    /// Interconnect delivered latency (contended crossbar; empty under
    /// the ideal crossbar, which does not model delivery queues).
    pub noc_delivered: Hist,
}

impl RowHists {
    /// Collects the histogram block from one run's statistics.
    pub fn from_run(r: &RunResult) -> RowHists {
        let agg = r.aggregate();
        let mut h = RowHists {
            atomic_exec: agg.atomic_exec_hist,
            atomic_drain: agg.atomic_drain_hist,
            noc_delivered: r.mem.noc.delivered_hist,
            ..RowHists::default()
        };
        for c in &r.mem.cores {
            h.fill_stall.merge(&c.fill_stall_hist);
            h.lock_hold.merge(&c.lock_hold_hist);
        }
        h
    }

    /// The block as a single-line JSON object (stable field order), via
    /// the same hand-rolled serializer helper every emitted block shares.
    pub fn json(&self) -> String {
        json_object(&[
            ("atomic_exec", self.atomic_exec.json()),
            ("atomic_drain", self.atomic_drain.json()),
            ("fill_stall", self.fill_stall.json()),
            ("lock_hold", self.lock_hold.json()),
            ("noc_delivered", self.noc_delivered.json()),
        ])
    }
}

/// The cycle-accounting block of one sweep row, from the representative
/// run: every core's CPI stack merged element-wise (so the block's
/// `stack` total equals `core_cycles` exactly — the same conservation
/// invariant the per-core stacks obey), the atomic-lifetime split
/// (acquire / per-[`LatClass`](fa_mem::LatClass) transfer / directory
/// park / local execute, summing exactly to the committed atomics' exec
/// latency), and the memory side's fill-latency attribution by class.
/// All counters are always-on passive statistics, so the block is
/// bit-identical at any `FA_THREADS` value and any `FA_TRACE` mode.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RowCpi {
    /// Core cycles summed over every core of the representative run —
    /// exactly `stack`'s total.
    pub core_cycles: u64,
    /// Element-wise sum of the per-core CPI stacks.
    pub stack: CpiStack,
    /// Σ cache-lock acquire cycles of committed atomics across cores.
    pub atomic_acquire: u64,
    /// Σ remote-line transfer cycles of committed atomics' fills, indexed
    /// by [`LatClass::index`](fa_mem::LatClass::index).
    pub atomic_xfer: [u64; 5],
    /// Σ cycles committed atomics' fills sat parked behind a busy
    /// directory entry.
    pub atomic_dir_park: u64,
    /// Σ local-execute cycles (lock acquired → store_unlock performed).
    pub atomic_local: u64,
    /// Σ fill latency by [`LatClass::index`](fa_mem::LatClass::index)
    /// across cores, from the memory side (demand fills, not just
    /// atomics).
    pub fill: [u64; 5],
}

impl RowCpi {
    /// Collects the cycle-accounting block from one run's statistics.
    pub fn from_run(r: &RunResult) -> RowCpi {
        let mut cpi = RowCpi::default();
        for c in &r.per_core {
            cpi.core_cycles += c.cycles;
            cpi.stack.merge(&c.cpi);
            cpi.atomic_acquire += c.atomic_lock_acquire_cycles;
            for (t, v) in cpi.atomic_xfer.iter_mut().zip(c.atomic_xfer_cycles) {
                *t += v;
            }
            cpi.atomic_dir_park += c.atomic_dir_park_cycles;
            cpi.atomic_local += c.atomic_local_cycles;
        }
        for m in &r.mem.cores {
            for (t, v) in cpi.fill.iter_mut().zip(m.fill_cycles_by_class) {
                *t += v;
            }
        }
        cpi
    }

    /// The block as a single-line JSON object (stable field order).
    pub fn json(&self) -> String {
        json_object(&[
            ("core_cycles", self.core_cycles.to_string()),
            ("stack", self.stack.json()),
            (
                "atomic",
                json_object(&[
                    ("acquire", self.atomic_acquire.to_string()),
                    ("xfer", json_u64_array(&self.atomic_xfer)),
                    ("dir_park", self.atomic_dir_park.to_string()),
                    ("local", self.atomic_local.to_string()),
                ]),
            ),
            ("fill", json_u64_array(&self.fill)),
        ])
    }
}

/// One emitted row of `BENCH_sweep.json`. Deliberately excludes every
/// wall-clock quantity: rows depend only on the deterministic simulation,
/// so serial and parallel sweeps emit byte-identical row arrays.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepRow {
    /// Workload name.
    pub kernel: String,
    /// Policy label (as [`AtomicPolicy::label`]).
    pub policy: String,
    /// Preset name.
    pub preset: String,
    /// Runs executed for this cell.
    pub runs: usize,
    /// Mean cycles over the retained runs.
    pub mean_cycles: f64,
    /// Cycles of the representative (fastest retained) run.
    pub rep_cycles: u64,
    /// Committed instructions of the representative run.
    pub instructions: u64,
    /// Interconnect stats of the representative run — only populated for
    /// the contended crossbar so historical (ideal-crossbar) rows stay
    /// byte-identical to the pre-interconnect goldens.
    pub net: Option<NocStats>,
    /// Latency histograms of the representative run, emitted by
    /// [`SweepRow::json_full`] (and therefore by `BENCH_sweep.json`).
    pub hists: RowHists,
    /// Cycle-accounting block of the representative run (CPI stack,
    /// atomic-lifetime split, fill attribution), emitted by
    /// [`SweepRow::json_full`] — the `cpistack` and `report` bins read it
    /// back out of `BENCH_sweep.json`.
    pub cpi: RowCpi,
    /// True when every run behind this row passed the axiomatic
    /// conformance checker (`FA_CHECK=tso`); set by [`SweepReport::new`].
    /// Flagged in `BENCH_sweep.json` but kept out of the golden-stable
    /// [`SweepRow::json`] form.
    pub checked: bool,
    /// The hardware memory model the row was measured under
    /// (`FA_MODEL`). Tagged in `BENCH_sweep.json` only when weak — TSO
    /// rows stay byte-identical to the pre-weak-frontend goldens, which
    /// the ci transparency gate pins.
    pub model: fa_sim::MemModel,
}

impl SweepRow {
    /// Builds the row for one measured cell.
    pub fn from_result(runs: usize, r: &CellResult) -> SweepRow {
        let rep = r.summary.representative();
        let noc = &rep.mem.noc;
        SweepRow {
            kernel: r.cell.workload.name.to_string(),
            policy: r.cell.policy.label().to_string(),
            preset: r.cell.preset.name().to_string(),
            runs,
            mean_cycles: r.summary.mean_cycles,
            rep_cycles: rep.cycles,
            instructions: rep.instructions(),
            net: (noc.policy == XbarPolicy::Contended).then(|| noc.clone()),
            hists: RowHists::from_run(rep),
            cpi: RowCpi::from_run(rep),
            checked: false,
            model: fa_sim::MemModel::Tso,
        }
    }

    /// The row as a single-line JSON object (stable field order; a `net`
    /// block is appended only for contended-crossbar rows). Kept
    /// byte-identical to the pre-trace-layer rows — the goldens pin it;
    /// [`SweepRow::json_full`] adds the histogram block.
    pub fn json(&self) -> String {
        let mut s = format!(
            "{{\"kernel\":\"{}\",\"policy\":\"{}\",\"preset\":\"{}\",\"runs\":{},\
             \"mean_cycles\":{:.6},\"rep_cycles\":{},\"instructions\":{}",
            self.kernel, self.policy, self.preset, self.runs, self.mean_cycles,
            self.rep_cycles, self.instructions
        );
        if let Some(net) = &self.net {
            let _ = write!(s, ",\"net\":{}", net.json());
        }
        s.push('}');
        s
    }

    /// [`SweepRow::json`] plus the latency-histogram and cycle-accounting
    /// blocks — the form `BENCH_sweep.json` emits. Checked rows (runs
    /// validated by the axiomatic checker) additionally carry
    /// `"checked":true`, and weak-model rows carry `"model":"weak"`;
    /// unchecked TSO rows stay byte-identical to the pre-checker goldens.
    pub fn json_full(&self) -> String {
        let mut s = self.json();
        s.pop();
        let _ = write!(s, ",\"hists\":{}", self.hists.json());
        let _ = write!(s, ",\"cpi\":{}", self.cpi.json());
        if self.checked {
            s.push_str(",\"checked\":true");
        }
        if self.model != fa_sim::MemModel::Tso {
            let _ = write!(s, ",\"model\":\"{}\"", self.model.name());
        }
        s.push('}');
        s
    }
}

/// Merges the hottest locked lines across the representative runs of
/// `results` (summing per line), ordered by total hold cycles descending
/// with the line address as the deterministic tiebreak, truncated to
/// [`fa_mem::MemStats::HOT_LOCKS`] entries.
pub fn hot_locks(results: &[CellResult]) -> Vec<HotLock> {
    let mut by_line: BTreeMap<u64, HotLock> = BTreeMap::new();
    for r in results {
        for h in &r.summary.representative().mem.hot_locks {
            let e = by_line.entry(h.line).or_insert(HotLock { line: h.line, ..HotLock::default() });
            e.acquisitions += h.acquisitions;
            e.hold_cycles += h.hold_cycles;
        }
    }
    let mut hot: Vec<HotLock> = by_line.into_values().collect();
    hot.sort_unstable_by(|a, b| b.hold_cycles.cmp(&a.hold_cycles).then(a.line.cmp(&b.line)));
    hot.truncate(fa_mem::MemStats::HOT_LOCKS);
    hot
}

/// One-line report of the hottest locked lines, for the bench summary.
pub fn hot_locks_line(locks: &[HotLock]) -> String {
    if locks.is_empty() {
        return "hot locks: none".to_string();
    }
    let items: Vec<String> = locks
        .iter()
        .map(|h| format!("{:#x} ({} acq, {} cyc held)", h.line, h.acquisitions, h.hold_cycles))
        .collect();
    format!("hot locks: {}", items.join(", "))
}

/// Escapes `s` for embedding in a JSON string literal (the quarantine
/// block carries rendered failure reports, which are multi-line).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A complete sweep report: row lines, any quarantined cells, and the
/// timing block.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// The driver that produced the report (e.g. `"sweep"`, `"fig14"`).
    pub bin: String,
    /// Runs per cell (for the human summary line).
    pub runs: usize,
    /// Emitted rows (`SweepRow::json_full` lines), in grid (cell) order.
    /// Kept as verbatim lines so journal-resumed campaigns re-emit bytes.
    pub row_lines: Vec<String>,
    /// Cells quarantined by the supervisor; empty for unsupervised grids,
    /// and the `quarantine` block is omitted from the JSON when empty so
    /// healthy reports stay byte-identical to the historical shape.
    pub quarantine: Vec<QuarantinedCell>,
    /// Forward-progress counters aggregated across the campaign
    /// (directory rescues summed; dir-alloc / fill / LSQ attempt and NoC
    /// backlog high-water marks maxed) — surfaced on the human summary
    /// line. Supervised campaigns aggregate over every run; unsupervised
    /// grids over the retained runs of each cell.
    pub health: ProgressStats,
    /// Wall-clock / simulated-throughput accounting.
    pub timing: SweepTiming,
}

impl SweepReport {
    /// Summarizes a finished grid under `bin`'s name. Rows of a checked
    /// sweep (`FA_CHECK=tso`) are flagged: every run behind them passed
    /// the axiomatic conformance checker, or the grid would have errored.
    pub fn new(bin: &str, opts: &BenchOpts, results: &[CellResult], timing: SweepTiming) -> SweepReport {
        let row_lines = results
            .iter()
            .map(|r| {
                let mut row = SweepRow::from_result(opts.runs, r);
                row.checked = opts.check.on();
                row.model = opts.model;
                row.json_full()
            })
            .collect();
        let mut health = ProgressStats::default();
        for r in results {
            for run in &r.summary.runs {
                merge_health(&mut health, &run.mem.progress);
            }
        }
        SweepReport {
            bin: bin.to_string(),
            runs: opts.runs,
            row_lines,
            quarantine: Vec::new(),
            health,
            timing,
        }
    }

    /// Summarizes a supervised campaign, carrying its quarantine block
    /// and aggregated forward-progress health.
    pub fn from_outcome(bin: &str, opts: &BenchOpts, outcome: SweepOutcome, timing: SweepTiming) -> SweepReport {
        SweepReport {
            bin: bin.to_string(),
            runs: opts.runs,
            row_lines: outcome.row_lines,
            quarantine: outcome.quarantine,
            health: outcome.health,
            timing,
        }
    }

    /// The whole report as pretty-stable JSON: a `fa-sweep-v1` header, the
    /// timing block, one row object per line, and — only when the
    /// supervisor quarantined cells — a `quarantine` block.
    pub fn json(&self) -> String {
        let t = &self.timing;
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\n  \"schema\": \"fa-sweep-v1\",\n  \"bin\": \"{}\",\n  \"threads\": {},\n  \
             \"cells\": {},\n  \"wall_secs\": {:.6},\n  \"sim_cycles\": {},\n  \
             \"sim_instructions\": {},\n  \"cycles_per_sec\": {:.1},\n  \"mips\": {:.3},\n  \
             \"rows\": [\n",
            self.bin,
            t.threads,
            self.row_lines.len(),
            t.wall.as_secs_f64(),
            t.sim_cycles,
            t.sim_instructions,
            t.cycles_per_sec(),
            t.mips()
        );
        for (i, row) in self.row_lines.iter().enumerate() {
            let sep = if i + 1 == self.row_lines.len() { "" } else { "," };
            let _ = writeln!(s, "    {row}{sep}");
        }
        if self.quarantine.is_empty() {
            s.push_str("  ]\n}\n");
        } else {
            s.push_str("  ],\n  \"quarantine\": [\n");
            for (i, q) in self.quarantine.iter().enumerate() {
                let sep = if i + 1 == self.quarantine.len() { "" } else { "," };
                let _ = writeln!(
                    s,
                    "    {{\"cell\":\"{}\",\"attempts\":{},\"failure\":\"{}\"}}{sep}",
                    json_escape(&q.cell),
                    q.attempts,
                    json_escape(&q.failure)
                );
            }
            s.push_str("  ]\n}\n");
        }
        s
    }

    /// The destination honoring `FA_BENCH_JSON` (default
    /// `BENCH_sweep.json` in the working directory).
    pub fn default_path() -> PathBuf {
        env::var("FA_BENCH_JSON")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("BENCH_sweep.json"))
    }

    /// Writes the report to [`SweepReport::default_path`] and returns the
    /// path written.
    ///
    /// # Errors
    ///
    /// Any I/O error from writing the file.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = SweepReport::default_path();
        std::fs::write(&path, self.json())?;
        Ok(path)
    }

    /// One-line human summary of the timing block, the forward-progress
    /// health counters (directory rescues and the worst retry/backlog
    /// high-water marks), and any quarantine.
    pub fn timing_line(&self) -> String {
        let t = &self.timing;
        let h = &self.health;
        let mut line = format!(
            "sweep: {} cells x {} runs on {} thread(s): {:.2}s wall, {} sim cycles \
             ({:.2e} cyc/s), {} instrs ({:.2} MIPS), progress: {} dir rescue(s), \
             worst attempts dir={} fill={} lsq={}, noc backlog {}",
            self.row_lines.len(),
            self.runs,
            t.threads,
            t.wall.as_secs_f64(),
            t.sim_cycles,
            t.cycles_per_sec(),
            t.sim_instructions,
            t.mips(),
            h.dir_rescues,
            h.dir_alloc_attempts_max,
            h.fill_attempts_max,
            h.lsq_attempts_max,
            h.noc_backlog_max
        );
        if !self.quarantine.is_empty() {
            let _ = write!(line, ", {} cell(s) QUARANTINED", self.quarantine.len());
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_workloads::suite;

    fn small_opts(threads: usize) -> BenchOpts {
        BenchOpts {
            cores: 2,
            scale: 0.05,
            runs: 3,
            drop_slowest: 1,
            seed: 0xF00D,
            threads,
            noc: fa_mem::NocConfig::default(),
            trace: fa_sim::TraceMode::Off,
            check: fa_sim::CheckMode::Off,
            model: fa_sim::MemModel::Tso,
            progress: fa_mem::ProgressConfig::default(),
        }
    }

    fn small_grid() -> Vec<SweepCell> {
        let ws =
            suite::select(&["TATP", "PC"]).expect("suite names");
        grid(
            &ws,
            &[AtomicPolicy::FencedBaseline, AtomicPolicy::FreeFwd],
            &[Preset::Tiny],
        )
    }

    #[test]
    fn preset_names_round_trip() {
        for p in [Preset::Icelake, Preset::Skylake, Preset::Tiny] {
            assert_eq!(Preset::by_name(p.name()), Some(p));
        }
        assert_eq!(Preset::by_name("epyc"), None);
    }

    #[test]
    fn grid_is_row_major_and_complete() {
        let cells = small_grid();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].workload.name, "TATP");
        assert_eq!(cells[0].policy, AtomicPolicy::FencedBaseline);
        assert_eq!(cells[1].policy, AtomicPolicy::FreeFwd);
        assert_eq!(cells[2].workload.name, "PC");
    }

    #[test]
    fn parallel_rows_are_byte_identical_to_serial() {
        let cells = small_grid();
        let (serial, _) = run_grid(&small_opts(1), &cells).expect("serial grid");
        let (parallel, _) = run_grid(&small_opts(4), &cells).expect("parallel grid");
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            let (rs, rp) =
                (SweepRow::from_result(3, s).json(), SweepRow::from_result(3, p).json());
            assert_eq!(rs, rp, "rows must be byte-identical at any thread count");
        }
        // The full reports differ only in the timing block.
        let o = small_opts(1);
        let a = SweepReport::new("test", &o, &serial, sweep_timing_stub());
        let b = SweepReport::new("test", &o, &parallel, sweep_timing_stub());
        assert_eq!(a.row_lines, b.row_lines);
        assert_eq!(a.json(), b.json());
    }

    #[test]
    fn contended_rows_carry_net_block_ideal_rows_do_not() {
        let cells = small_grid()[..1].to_vec();
        let opts = small_opts(1);
        let (ideal, _) = run_grid(&opts, &cells).expect("ideal grid");
        let r = SweepRow::from_result(3, &ideal[0]);
        assert!(r.net.is_none());
        assert!(!r.json().contains("\"net\":"), "ideal rows must match the goldens");

        let copts = BenchOpts { noc: fa_mem::NocConfig::contended(2), ..opts };
        let (contended, _) = run_grid(&copts, &cells).expect("contended grid");
        let r = SweepRow::from_result(3, &contended[0]);
        let net = r.net.as_ref().expect("contended rows surface network stats");
        assert_eq!(net.policy, XbarPolicy::Contended);
        assert!(net.net_messages > 0);
        let j = r.json();
        assert!(j.contains("\"net\":{\"policy\":\"contended\""), "{j}");
        assert!(j.ends_with("}}"), "net block must close the row: {j}");
    }

    fn sweep_timing_stub() -> SweepTiming {
        SweepTiming {
            cells: 4,
            threads: 1,
            wall: std::time::Duration::from_millis(10),
            sim_cycles: 100,
            sim_instructions: 50,
        }
    }

    #[test]
    fn report_rows_are_identical_across_trace_modes_and_threads() {
        // Satellite of the trace layer's tentpole invariant: the entire
        // emitted row array — including the histogram blocks — is a pure
        // function of the simulated cells, whatever the trace mode and
        // worker-thread count.
        use fa_sim::TraceMode;
        let cells = small_grid();
        let report_with = |threads: usize, trace: TraceMode| {
            let opts = BenchOpts { trace, ..small_opts(threads) };
            let (results, _) = run_grid(&opts, &cells).expect("grid");
            let rep = SweepReport::new("det", &opts, &results, sweep_timing_stub());
            (rep.json(), hot_locks(&results))
        };
        let (base_json, base_hot) = report_with(1, TraceMode::Off);
        for threads in [1usize, 4] {
            for trace in [TraceMode::Off, TraceMode::Flight, TraceMode::Full] {
                let (j, hot) = report_with(threads, trace);
                assert_eq!(
                    j, base_json,
                    "rows must be byte-identical at threads={threads}, trace={trace:?}"
                );
                assert_eq!(hot, base_hot);
            }
        }
        // The histogram block is actually populated in the emitted JSON.
        assert!(base_json.contains("\"hists\":{\"atomic_exec\":{\"count\":"), "{base_json}");
        assert!(base_json.contains("\"noc_delivered\":"), "{base_json}");
    }

    #[test]
    fn checked_sweep_flags_rows_without_perturbing_stats() {
        // FA_CHECK=tso must leave every simulated quantity bit-identical
        // — the golden json() form byte-for-byte — and differ in
        // json_full() only by the appended `"checked":true` flag.
        use fa_sim::CheckMode;
        let cells = small_grid()[..2].to_vec();
        let off_opts = small_opts(1);
        let tso_opts = BenchOpts { check: CheckMode::Tso, ..off_opts };
        let (off, ot) = run_grid(&off_opts, &cells).expect("unchecked grid");
        let (tso, tt) = run_grid(&tso_opts, &cells).expect("checked grid");
        for (a, b) in off.iter().zip(&tso) {
            let ra = SweepRow::from_result(3, a);
            let rb = SweepRow::from_result(3, b);
            assert_eq!(ra.json(), rb.json(), "checking must not perturb golden rows");
        }
        let off_rep = SweepReport::new("chk", &off_opts, &off, ot);
        let tso_rep = SweepReport::new("chk", &tso_opts, &tso, tt);
        for (a, b) in off_rep.row_lines.iter().zip(&tso_rep.row_lines) {
            assert!(!a.contains("\"checked\""));
            assert!(b.ends_with(",\"checked\":true}"), "{b}");
            assert_eq!(*a, b.replace(",\"checked\":true", ""));
        }
    }

    #[test]
    fn weak_sweep_tags_rows_and_tso_rows_stay_untagged() {
        // FA_MODEL=weak rows carry `"model":"weak"` in the full JSON form
        // only; TSO rows (the default) never grow a model field, so the
        // goldens and the ci transparency gate keep working unchanged.
        use fa_sim::MemModel;
        let cells = small_grid()[..2].to_vec();
        let tso_opts = small_opts(1);
        let weak_opts = BenchOpts { model: MemModel::Weak, ..tso_opts };
        let (tso, tt) = run_grid(&tso_opts, &cells).expect("tso grid");
        let (weak, wt) = run_grid(&weak_opts, &cells).expect("weak grid");
        let tso_rep = SweepReport::new("mdl", &tso_opts, &tso, tt);
        let weak_rep = SweepReport::new("mdl", &weak_opts, &weak, wt);
        for (a, b) in tso_rep.row_lines.iter().zip(&weak_rep.row_lines) {
            assert!(!a.contains("\"model\""), "TSO rows must stay untagged: {a}");
            assert!(b.ends_with(",\"model\":\"weak\"}"), "{b}");
        }
        // The weak machine is a different campaign: resuming a TSO journal
        // under FA_MODEL=weak must be refused by the fingerprint.
        assert_ne!(
            campaign_fingerprint(&tso_opts, None, &cells),
            campaign_fingerprint(&weak_opts, None, &cells)
        );
        // Both models conserve every core cycle in the CPI stack.
        for r in &weak {
            let row = SweepRow::from_result(3, r);
            assert_eq!(
                row.cpi.stack.total(),
                row.cpi.core_cycles,
                "{}/{}: weak runs must conserve cycles",
                row.kernel,
                row.policy
            );
        }
    }

    #[test]
    fn row_hists_populate_and_json_full_extends_json() {
        let cells = small_grid();
        let (results, _) = run_grid(&small_opts(1), &cells).expect("grid");
        let r = SweepRow::from_result(3, &results[0]);
        // Every kernel in the grid performs atomics, so the exec histogram
        // must have samples; the baseline policy also pays SB drains.
        assert!(r.hists.atomic_exec.count > 0);
        assert!(r.hists.lock_hold.count > 0, "atomics hold cache locks");
        assert_eq!(r.policy, "baseline");
        assert!(r.hists.atomic_drain.count > 0, "baseline pays drains");
        // json() stays golden-stable; json_full() appends the block.
        let (j, jf) = (r.json(), r.json_full());
        assert!(!j.contains("\"hists\":"));
        assert!(jf.starts_with(&j[..j.len() - 1]));
        assert!(jf.ends_with("}}"));
        assert!(jf.contains(",\"hists\":{\"atomic_exec\":"));
    }

    #[test]
    fn cpi_block_conserves_cycles_and_stays_out_of_golden_rows() {
        use fa_sim::CpiLeaf;
        let cells = small_grid();
        let (results, _) = run_grid(&small_opts(1), &cells).expect("grid");
        for r in &results {
            let row = SweepRow::from_result(3, r);
            // Conservation: the merged stack accounts every core cycle of
            // the representative run, exactly.
            assert_eq!(
                row.cpi.stack.total(),
                row.cpi.core_cycles,
                "{}/{}: CPI stack must conserve cycles",
                row.kernel,
                row.policy
            );
            assert!(row.cpi.stack.get(CpiLeaf::Commit) > 0, "work commits in every cell");
            // The atomic-lifetime split sums exactly to the committed
            // atomics' exec latency.
            let split = row.cpi.atomic_acquire
                + row.cpi.atomic_xfer.iter().sum::<u64>()
                + row.cpi.atomic_dir_park
                + row.cpi.atomic_local;
            let exec: u64 =
                r.summary.representative().per_core.iter().map(|c| c.atomic_exec_cycles).sum();
            assert_eq!(split, exec, "{}/{}: atomic split must be exact", row.kernel, row.policy);
            // The block lives in json_full only; json() stays golden.
            let (j, jf) = (row.json(), row.json_full());
            assert!(!j.contains("\"cpi\""), "golden rows must not grow a cpi block");
            assert!(jf.contains(",\"cpi\":{\"core_cycles\":"), "{jf}");
            assert!(jf.contains("\"stack\":{\"commit\":"), "{jf}");
            assert!(jf.contains("\"atomic\":{\"acquire\":"), "{jf}");
        }
        // Baseline pays fence drains the free policies do not.
        let base = SweepRow::from_result(3, &results[0]);
        let free = SweepRow::from_result(3, &results[1]);
        assert_eq!(base.policy, "baseline");
        assert_eq!(free.policy, "FreeAtomics+Fwd");
        assert!(
            base.cpi.stack.get(CpiLeaf::SbDrain) > free.cpi.stack.get(CpiLeaf::SbDrain),
            "the baseline's store-buffer drain leaf must dominate FreeFwd's \
             (base {} vs free {})",
            base.cpi.stack.get(CpiLeaf::SbDrain),
            free.cpi.stack.get(CpiLeaf::SbDrain)
        );
    }

    #[test]
    fn atomic_split_stays_exact_under_watchdog_storms() {
        // CQ and RBT drive heavy squash/reissue traffic (watchdog-recovered
        // lock deadlocks, long directory parks). A reissued load_lock merges
        // onto its first attempt's still-in-flight MSHR, so the response's
        // transfer/park stamps can predate the reissue — the staging clamp
        // must keep acquire + xfer + park + local == exec exact anyway.
        let ws = suite::select(&["CQ", "RBT"]).expect("suite names");
        let cells =
            grid(&ws, &[AtomicPolicy::FencedBaseline, AtomicPolicy::FreeFwd], &[Preset::Tiny]);
        let mut opts = small_opts(2);
        opts.cores = 4;
        let (results, _) = run_grid(&opts, &cells).expect("grid");
        for r in &results {
            for run in &r.summary.runs {
                for (i, c) in run.per_core.iter().enumerate() {
                    let split = c.atomic_lock_acquire_cycles
                        + c.atomic_xfer_cycles.iter().sum::<u64>()
                        + c.atomic_dir_park_cycles
                        + c.atomic_local_cycles;
                    assert_eq!(
                        split, c.atomic_exec_cycles,
                        "{}/{} core {i}: split must stay exact under storms",
                        r.cell.workload.name,
                        r.cell.policy.label()
                    );
                    assert_eq!(
                        c.cpi.total(),
                        c.cycles,
                        "{}/{} core {i}: leaf sum != cycles",
                        r.cell.workload.name,
                        r.cell.policy.label()
                    );
                }
            }
        }
    }

    #[test]
    fn timing_line_surfaces_progress_health() {
        let cells = small_grid()[..1].to_vec();
        let opts = small_opts(1);
        let (results, timing) = run_grid(&opts, &cells).expect("grid");
        let rep = SweepReport::new("health", &opts, &results, timing);
        let line = rep.timing_line();
        assert!(line.contains(", progress: 0 dir rescue(s)"), "healthy runs never rescue: {line}");
        assert!(line.contains("worst attempts dir="), "{line}");
        assert!(line.contains("noc backlog"), "{line}");
        // merge_health: counts sum, high-water marks max.
        let mut agg = ProgressStats::default();
        merge_health(
            &mut agg,
            &ProgressStats {
                dir_rescues: 2,
                dir_alloc_attempts_max: 5,
                fill_attempts_max: 1,
                lsq_attempts_max: 0,
                noc_backlog_max: 10,
            },
        );
        merge_health(
            &mut agg,
            &ProgressStats {
                dir_rescues: 1,
                dir_alloc_attempts_max: 3,
                fill_attempts_max: 4,
                lsq_attempts_max: 2,
                noc_backlog_max: 7,
            },
        );
        assert_eq!(
            agg,
            ProgressStats {
                dir_rescues: 3,
                dir_alloc_attempts_max: 5,
                fill_attempts_max: 4,
                lsq_attempts_max: 2,
                noc_backlog_max: 10,
            }
        );
    }

    #[test]
    fn hot_locks_merge_and_render() {
        let cells = small_grid();
        let (results, _) = run_grid(&small_opts(1), &cells).expect("grid");
        let hot = hot_locks(&results);
        assert!(!hot.is_empty(), "atomic kernels must produce locked lines");
        assert!(hot.len() <= fa_mem::MemStats::HOT_LOCKS);
        for w in hot.windows(2) {
            assert!(
                w[0].hold_cycles > w[1].hold_cycles
                    || (w[0].hold_cycles == w[1].hold_cycles && w[0].line < w[1].line),
                "hot locks must be ordered by hold cycles then line"
            );
        }
        let line = hot_locks_line(&hot);
        assert!(line.starts_with("hot locks: 0x"), "{line}");
        assert!(line.contains("acq"), "{line}");
        assert_eq!(hot_locks_line(&[]), "hot locks: none");
    }

    #[test]
    fn invalid_methodology_is_rejected_before_any_run() {
        let cells = small_grid();
        let opts = BenchOpts { runs: 2, drop_slowest: 2, ..small_opts(1) };
        let err = run_grid(&opts, &cells).expect_err("must reject");
        assert_eq!(*err, SimError::InvalidMethodology { runs: 2, drop_slowest: 2 });
    }

    #[test]
    fn report_json_shape() {
        let opts = small_opts(1);
        let cells = small_grid()[..1].to_vec();
        let (results, timing) = run_grid(&opts, &cells).expect("grid");
        let rep = SweepReport::new("unit", &opts, &results, timing);
        let j = rep.json();
        assert!(j.starts_with("{\n  \"schema\": \"fa-sweep-v1\""));
        assert!(j.contains("\"bin\": \"unit\""));
        assert!(j.contains("\"kernel\":\"TATP\""));
        assert!(j.contains("\"mips\":"));
        assert!(j.ends_with("  ]\n}\n"));
        assert!(!j.contains("\"quarantine\""), "healthy reports omit the quarantine block");
        assert!(!rep.timing_line().is_empty());
    }

    fn row_lines_of(opts: &BenchOpts, results: &[CellResult]) -> Vec<String> {
        results
            .iter()
            .map(|r| {
                let mut row = SweepRow::from_result(opts.runs, r);
                row.checked = opts.check.on();
                row.model = opts.model;
                row.json_full()
            })
            .collect()
    }

    #[test]
    fn supervised_rows_match_unsupervised_at_any_thread_count() {
        let cells = small_grid();
        let (results, _) = run_grid(&small_opts(1), &cells).expect("grid");
        let base = row_lines_of(&small_opts(1), &results);
        for threads in [1, 4, 8] {
            let (out, t) = run_grid_supervised(&small_opts(threads), &SupervisorOpts::none(), &cells)
                .expect("supervised grid");
            assert!(out.quarantine.is_empty());
            assert_eq!(out.resumed, 0);
            assert_eq!(out.row_lines, base, "threads={threads}");
            assert_eq!(t.cells, cells.len());
            assert!(t.sim_cycles > 0 && t.sim_instructions > 0);
        }
    }

    fn tmp_journal(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("fa-sweep-journal-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn killed_and_resumed_campaign_is_byte_identical() {
        let cells = small_grid();
        let (reference, _) = run_grid_supervised(&small_opts(1), &SupervisorOpts::none(), &cells)
            .expect("reference run");
        // One full checkpointed campaign produces the journal to truncate.
        let jpath = tmp_journal("resume");
        let _ = std::fs::remove_file(&jpath);
        let sup = |threads: usize| {
            (
                BenchOpts { threads, ..small_opts(1) },
                SupervisorOpts { checkpoint: Some(jpath.clone()), ..SupervisorOpts::none() },
            )
        };
        let (o, s) = sup(1);
        let (full, full_timing) = run_grid_supervised(&o, &s, &cells).expect("checkpointed run");
        assert_eq!(full.row_lines, reference.row_lines);
        let journal = std::fs::read(&jpath).expect("journal written");
        let newlines: Vec<usize> =
            journal.iter().enumerate().filter(|(_, &b)| b == b'\n').map(|(i, _)| i).collect();
        assert_eq!(newlines.len(), 1 + cells.len(), "header + one record per cell");
        // Kill points: mid-header, header only, after each of the first two
        // records, mid-record (torn write), and the complete journal.
        let cuts = [
            5,
            newlines[0] + 1,
            newlines[1] + 1,
            newlines[2] + 1,
            newlines[2] + 30, // torn third record
            journal.len(),
        ];
        for threads in [1usize, 8] {
            for &cut in &cuts {
                std::fs::write(&jpath, &journal[..cut]).expect("truncate journal");
                let (o, s) = sup(threads);
                let (resumed, t) = run_grid_supervised(&o, &s, &cells).expect("resumed run");
                assert_eq!(
                    resumed.row_lines, reference.row_lines,
                    "rows must be byte-identical after kill at byte {cut}, threads={threads}"
                );
                assert!(resumed.quarantine.is_empty());
                // Health is identical however the work splits between
                // journal replay and fresh runs.
                assert_eq!(resumed.health, reference.health, "cut {cut}");
                // Simulated totals are identical however the work splits
                // between journal replay and fresh runs.
                assert_eq!(
                    t.sim_cycles, full_timing.sim_cycles,
                    "resumed timing must account journaled cells too (cut {cut})"
                );
                assert_eq!(t.sim_instructions, full_timing.sim_instructions);
            }
        }
        // After a complete campaign, every cell resumes from the journal.
        std::fs::write(&jpath, &journal).expect("restore journal");
        let (o, s) = sup(1);
        let (all_resumed, _) = run_grid_supervised(&o, &s, &cells).expect("full resume");
        assert_eq!(all_resumed.resumed, cells.len());
        assert_eq!(all_resumed.row_lines, reference.row_lines);
        std::fs::remove_file(&jpath).expect("cleanup");
    }

    #[test]
    #[should_panic(expected = "different campaign")]
    fn resuming_under_different_options_panics() {
        let cells = small_grid();
        let jpath = tmp_journal("mismatch");
        let _ = std::fs::remove_file(&jpath);
        let sup = SupervisorOpts { checkpoint: Some(jpath.clone()), ..SupervisorOpts::none() };
        run_grid_supervised(&small_opts(1), &sup, &cells).expect("first campaign");
        // A different seed is a different campaign; replaying its rows
        // would corrupt the sweep, so the journal must refuse loudly.
        let other = BenchOpts { seed: 0xBEEF, ..small_opts(1) };
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_grid_supervised(&other, &sup, &cells)
        }));
        std::fs::remove_file(&jpath).expect("cleanup");
        if let Err(p) = r {
            std::panic::resume_unwind(p);
        }
    }

    #[test]
    fn exhausted_cell_budget_quarantines_and_the_campaign_completes() {
        let cells = small_grid();
        // 200 cycles is far too few for any cell: every attempt times out,
        // is retried once, then the cell is quarantined — but the campaign
        // still returns Ok with a structured report per lost cell.
        let sup = SupervisorOpts {
            retries: 1,
            budget: env::CellBudget { max_cycles: Some(200), wall: None },
            checkpoint: None,
        };
        let (out, _) = run_grid_supervised(&small_opts(1), &sup, &cells).expect("campaign");
        assert!(out.row_lines.is_empty());
        assert_eq!(out.quarantine.len(), cells.len());
        let q = &out.quarantine[0];
        assert_eq!(q.cell, "TATP/baseline/tiny");
        assert_eq!(q.attempts, 2, "one initial attempt + FA_RETRIES=1 retry");
        assert!(q.failure.contains("did not quiesce within 200 cycles"), "{}", q.failure);

        // The report renders the quarantine block, flags the summary line,
        // and the JSON stays well-shaped.
        let opts = small_opts(1);
        let rep = SweepReport::from_outcome("qtest", &opts, out, sweep_timing_stub());
        let j = rep.json();
        assert!(j.contains("\"quarantine\": [\n"), "{j}");
        assert!(j.contains("{\"cell\":\"TATP/baseline/tiny\",\"attempts\":2,\"failure\":\""));
        assert!(j.contains("did not quiesce"), "failure text is carried, escaped");
        assert!(!j.contains("\nsnapshot"), "newlines in failures must be escaped");
        assert!(j.ends_with("  ]\n}\n"));
        assert!(rep.timing_line().ends_with("4 cell(s) QUARANTINED"), "{}", rep.timing_line());
    }

    #[test]
    fn json_escape_handles_quotes_newlines_and_controls() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("l1\nl2\tt"), "l1\\nl2\\tt");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn campaign_fingerprint_tracks_results_affecting_knobs_only() {
        let cells = small_grid();
        let opts = small_opts(1);
        let fp = campaign_fingerprint(&opts, None, &cells);
        assert_eq!(fp, campaign_fingerprint(&BenchOpts { threads: 8, ..opts }, None, &cells));
        assert_eq!(
            fp,
            campaign_fingerprint(&BenchOpts { trace: fa_sim::TraceMode::Flight, ..opts }, None, &cells),
            "trace mode never perturbs rows, so it is not part of the campaign identity"
        );
        assert_ne!(fp, campaign_fingerprint(&BenchOpts { seed: 1, ..opts }, None, &cells));
        assert_ne!(fp, campaign_fingerprint(&opts, Some(1000), &cells));
        assert_ne!(fp, campaign_fingerprint(&opts, None, &cells[..3]));
    }
}
