//! Regeneration of every table and figure in the paper's evaluation
//! section. Each function prints the same rows/series the paper reports;
//! EXPERIMENTS.md records the measured-vs-paper comparison.
//!
//! Every simulating function returns `Result` — a failed measure (timeout,
//! invariant-audit violation, invalid methodology) propagates so the bins
//! can exit nonzero instead of printing a clean-looking partial table. The
//! policy-comparison figures (14, 15) and the characterization table run on
//! the parallel sweep engine and the figure-14/15 drivers emit the
//! `BENCH_sweep.json` throughput report.

use crate::sweep::{grid, presets_from_env, run_grid, CellResult, Preset, RowCpi, SweepReport};
use crate::{fmt, mean, row, run_once_checked, BenchOpts};
use fa_core::AtomicPolicy;
use fa_mem::NocConfig;
use fa_sim::energy::EnergyModel;
use fa_sim::error::SimError;
use fa_sim::machine::RunResult;
use fa_sim::presets::{icelake_like, skylake_like};
use fa_sim::sweep::SweepTiming;
use fa_sim::{CpiLeaf, MemModel};

fn agg(r: &RunResult) -> fa_core::CoreStats {
    r.aggregate()
}

/// Measures the `(workload × every policy)` grid on the Icelake-like
/// preset and returns per-workload groups of four [`CellResult`]s (policy
/// order as [`AtomicPolicy::ALL`]) plus the emitted sweep report.
fn policy_grid(bin: &str, opts: &BenchOpts) -> Result<(Vec<Vec<CellResult>>, SweepReport), Box<SimError>> {
    let workloads = opts.workloads();
    let cells = grid(&workloads, &AtomicPolicy::ALL, &[Preset::Icelake]);
    let (results, timing) = run_grid(opts, &cells)?;
    let report = SweepReport::new(bin, opts, &results, timing);
    let groups = results
        .chunks(AtomicPolicy::ALL.len())
        .map(<[CellResult]>::to_vec)
        .collect();
    Ok((groups, report))
}

fn emit_report(report: &SweepReport) {
    println!("\n{}", report.timing_line());
    match report.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write sweep report: {e}"),
    }
}

/// **Figure 1** — average cost (cycles) of a fenced atomic RMW, split into
/// Drain_SB and Atomic, on Skylake-like (224 ROB) and Icelake-like
/// (352 ROB) machines.
///
/// # Errors
///
/// The first failed run.
pub fn fig01_atomic_cost(opts: &BenchOpts) -> Result<(), Box<SimError>> {
    println!("\n## Figure 1 — cost of fenced atomic RMWs (cycles per atomic)\n");
    println!(
        "{}",
        row(&[
            "workload".into(),
            "skylake Drain_SB".into(),
            "skylake Atomic".into(),
            "icelake Drain_SB".into(),
            "icelake Atomic".into(),
        ])
    );
    let mut sky_tot = Vec::new();
    let mut ice_tot = Vec::new();
    for spec in opts.workloads() {
        let sky = run_once_checked(&spec, AtomicPolicy::FencedBaseline, &skylake_like(), opts)?;
        let ice = run_once_checked(&spec, AtomicPolicy::FencedBaseline, &icelake_like(), opts)?;
        let (sd, sa) = agg(&sky).atomic_cost();
        let (id, ia) = agg(&ice).atomic_cost();
        sky_tot.push(sd + sa);
        ice_tot.push(id + ia);
        println!(
            "{}",
            row(&[spec.name.into(), fmt(sd, 1), fmt(sa, 1), fmt(id, 1), fmt(ia, 1)])
        );
    }
    println!(
        "\naverage total cost: skylake {:.1}, icelake {:.1} cycles/atomic \
         (paper: >100, growing with ROB size)",
        mean(&sky_tot),
        mean(&ice_tot)
    );
    Ok(())
}

/// **Table 1** — the simulated system configuration.
pub fn table1_config() {
    let m = icelake_like();
    println!("\n## Table 1 — system configuration (Icelake-like preset)\n");
    println!("Processor:");
    println!("  width        fetch/decode {} instr, issue/commit {} uops", m.core.fetch_width, m.core.issue_width);
    println!("  ROB, LQ, SQ  {}, {}, {} entries", m.core.rob_size, m.core.lq_size, m.core.sq_size);
    println!("  AQ           {} entries; watchdog {} cycles; fwd chain ≤ {}", m.core.aq_size, m.core.watchdog_threshold, m.core.fwd_chain_max);
    println!("  predictors   tournament gshare/bimodal ({} bits), StoreSets", m.core.bp_table_bits);
    println!("  store prefetch at commit: {}", m.core.store_prefetch_at_commit);
    println!("Memory:");
    println!("  L1D  {} sets x {} ways ({} KB), {} cycles", m.mem.l1_sets, m.mem.l1_ways, m.mem.l1_sets * m.mem.l1_ways * 64 / 1024, m.mem.l1_lat);
    println!("  L2   {} sets x {} ways ({} KB), {} cycles", m.mem.l2_sets, m.mem.l2_ways, m.mem.l2_sets * m.mem.l2_ways * 64 / 1024, m.mem.l2_lat);
    println!("  LLC  {} sets x {} ways ({} MB), {} cycles", m.mem.llc_sets, m.mem.llc_ways, m.mem.llc_sets * m.mem.llc_ways * 64 / 1024 / 1024, m.mem.llc_lat);
    println!("  Dir  {} sets x {} ways (inclusive), {} cycles", m.mem.dir_sets, m.mem.dir_ways, m.mem.dir_lat);
    println!("  Mem  {} cycles; NoC hop {} cycles", m.mem.mem_lat, m.mem.net_lat);
    let aq = fa_core::aq_storage(
        m.core.aq_size as u32,
        m.mem.l1_sets as u32,
        m.mem.l1_ways as u32,
        m.core.rob_size as u32,
        m.core.sq_size as u32,
    );
    println!(
        "  AQ storage   {} bits/entry, {} bits total = {} bytes (paper §4.3: 29/116/15)",
        aq.bits_per_entry, aq.total_bits, aq.total_bytes
    );
    let s = skylake_like();
    println!("Skylake-like variant: ROB {}, LQ {}, SQ {}, L1D {} KB 8-way", s.core.rob_size, s.core.lq_size, s.core.sq_size, s.mem.l1_sets * s.mem.l1_ways * 64 / 1024);
}

/// **Figure 12** — committed atomics per kilo-instruction.
///
/// # Errors
///
/// The first failed run.
pub fn fig12_apki(opts: &BenchOpts) -> Result<(), Box<SimError>> {
    println!("\n## Figure 12 — atomic RMWs per kilo-instruction (APKI)\n");
    println!("{}", row(&["workload".into(), "APKI".into(), "class".into()]));
    for spec in opts.workloads() {
        let r = run_once_checked(&spec, AtomicPolicy::FencedBaseline, &icelake_like(), opts)?;
        let cls = if spec.atomic_intensive { "atomic-intensive" } else { "non-atomic-intensive" };
        println!("{}", row(&[spec.name.into(), fmt(r.apki(), 2), cls.into()]));
    }
    println!("\n(the paper draws the atomic-intensive threshold at 0.75 APKI)");
    Ok(())
}

/// **Table 2** — characterization of Free atomics (FreeAtomics+Fwd on the
/// Icelake-like machine): omitted fences, watchdog timeouts, memory-
/// dependence-violation squashes, forwarding sources. The per-workload
/// runs are independent, so they fan across the sweep workers.
///
/// # Errors
///
/// The first failed run, in workload order.
pub fn table2_characterization(opts: &BenchOpts) -> Result<(), Box<SimError>> {
    println!("\n## Table 2 — characterization of Free atomics (FreeAtomics+Fwd)\n");
    println!(
        "{}",
        row(&[
            "workload".into(),
            "omitted fences %".into(),
            "timeouts".into(),
            "MDV (% squashes)".into(),
            "FbA (% atomics)".into(),
            "FbS (% atomics)".into(),
        ])
    );
    let specs = opts.workloads();
    let runs = fa_sim::run_cells(&specs, opts.threads, |_, spec| {
        run_once_checked(spec, AtomicPolicy::FreeFwd, &icelake_like(), opts)
    });
    let (mut of, mut to, mut mdv, mut fba, mut fbs) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for (spec, r) in specs.iter().zip(runs) {
        let a = agg(&r?);
        let omitted = a.omitted_fence_ratio() * 100.0;
        let timeouts = a.watchdog_fires;
        let mdv_pct = if a.total_squashes() == 0 {
            0.0
        } else {
            a.squashes_memorder as f64 * 100.0 / a.total_squashes() as f64
        };
        let fba_pct = if a.atomics == 0 {
            0.0
        } else {
            a.atomics_fwd_from_atomic as f64 * 100.0 / a.atomics as f64
        };
        let fbs_pct = if a.atomics == 0 {
            0.0
        } else {
            a.atomics_fwd_from_store as f64 * 100.0 / a.atomics as f64
        };
        of.push(omitted);
        to.push(timeouts as f64);
        mdv.push(mdv_pct);
        fba.push(fba_pct);
        fbs.push(fbs_pct);
        println!(
            "{}",
            row(&[
                spec.name.into(),
                fmt(omitted, 2),
                timeouts.to_string(),
                fmt(mdv_pct, 2),
                fmt(fba_pct, 2),
                fmt(fbs_pct, 3),
            ])
        );
    }
    println!(
        "\naverage: omitted {:.2}% (paper 97.58), timeouts {:.1} (paper 3.46), \
         MDV {:.2}% (paper 2.19), FbA {:.2}% (paper 11.81), FbS {:.2}% (paper 1.41)",
        mean(&of),
        mean(&to),
        mean(&mdv),
        mean(&fba),
        mean(&fbs)
    );
    Ok(())
}

/// **Figure 13** — locality of atomics: fraction of load_locks whose data
/// was found locally (SQ forward or write-permission hit), baseline vs
/// FreeAtomics+Fwd, with the forwarded component split out.
///
/// # Errors
///
/// The first failed run.
pub fn fig13_locality(opts: &BenchOpts) -> Result<(), Box<SimError>> {
    println!("\n## Figure 13 — locality of atomics (ratio of load_locks)\n");
    println!(
        "{}",
        row(&[
            "workload".into(),
            "baseline L1/L2".into(),
            "free L1/L2".into(),
            "free forwarded".into(),
            "free total".into(),
        ])
    );
    for spec in opts.workloads() {
        let b = run_once_checked(&spec, AtomicPolicy::FencedBaseline, &icelake_like(), opts)?;
        let f = run_once_checked(&spec, AtomicPolicy::FreeFwd, &icelake_like(), opts)?;
        let (b_tot, _) = agg(&b).atomic_locality();
        let (f_tot, f_fwd) = agg(&f).atomic_locality();
        println!(
            "{}",
            row(&[
                spec.name.into(),
                fmt(b_tot, 3),
                fmt(f_tot - f_fwd, 3),
                fmt(f_fwd, 3),
                fmt(f_tot, 3),
            ])
        );
    }
    Ok(())
}

/// **Figure 14** — execution time of each policy normalized to the fenced
/// baseline, with the active/sleep split, plus the §5.5 headline averages.
/// Runs on the sweep engine and emits `BENCH_sweep.json`.
///
/// # Errors
///
/// The first failed `(cell, run)` job.
pub fn fig14_exec_time(opts: &BenchOpts) -> Result<(), Box<SimError>> {
    println!("\n## Figure 14 — normalized execution time (lower is better)\n");
    println!(
        "{}",
        row(&[
            "workload".into(),
            "baseline".into(),
            "baseline+Spec".into(),
            "FreeAtomics".into(),
            "FreeAtomics+Fwd".into(),
            "sleep frac (fwd)".into(),
        ])
    );
    let (groups, report) = policy_grid("fig14_exec_time", opts)?;
    let mut norm: Vec<Vec<f64>> = vec![Vec::new(); 4];
    let mut norm_ai: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for runs in &groups {
        let spec = runs[0].cell.workload;
        let base = runs[0].summary.mean_cycles;
        let mut cells = vec![spec.name.to_string()];
        for (i, r) in runs.iter().enumerate() {
            let n = r.summary.mean_cycles / base;
            norm[i].push(n);
            if spec.atomic_intensive {
                norm_ai[i].push(n);
            }
            cells.push(fmt(n, 3));
        }
        let rep = runs[3].summary.representative();
        let total_core_cycles = rep.cycles as f64 * rep.per_core.len() as f64;
        let sleep: f64 = rep.per_core.iter().map(|c| c.sleep_cycles as f64).sum();
        cells.push(fmt(sleep / total_core_cycles, 3));
        println!("{}", row(&cells));
    }
    println!("\naverages (all / atomic-intensive):");
    for (i, p) in AtomicPolicy::ALL.iter().enumerate() {
        println!(
            "  {:<16} {:.3} / {:.3}",
            p.label(),
            mean(&norm[i]),
            mean(&norm_ai[i])
        );
    }
    let full = 1.0 - mean(&norm[3]);
    let ai = 1.0 - mean(&norm_ai[3]);
    println!(
        "\nFreeAtomics+Fwd time reduction: {:.1}% all, {:.1}% atomic-intensive \
         (paper: 12.5% / 25.2% at 32 cores)",
        full * 100.0,
        ai * 100.0
    );
    emit_report(&report);
    Ok(())
}

/// **CPI stacks** — the figure-14 grid re-rendered as top-down cycle
/// accounting: for every `(workload, policy)` cell, the percentage of all
/// core cycles attributed to each leaf of the fixed taxonomy (merged over
/// cores of the representative run; the leaves sum to 100% by the
/// conservation invariant), followed by the atomic-lifetime attribution
/// table splitting each policy's mean RMW exec latency into cache-lock
/// acquire, remote transfer, directory park and local execute. Runs on
/// the sweep engine and emits `BENCH_sweep.json` with the `cpi` blocks
/// the `report` bin diffs.
///
/// # Errors
///
/// The first failed `(cell, run)` job.
pub fn cpi_stacks(opts: &BenchOpts) -> Result<(), Box<SimError>> {
    println!("\n## CPI stacks — top-down cycle accounting (% of core cycles)\n");
    let mut header = vec!["workload".to_string(), "policy".to_string()];
    header.extend(CpiLeaf::ALL.iter().map(|l| l.name().to_string()));
    println!("{}", row(&header));
    let (groups, report) = policy_grid("cpistack", opts)?;
    for runs in &groups {
        for r in runs {
            let cpi = RowCpi::from_run(r.summary.representative());
            let total = cpi.core_cycles.max(1) as f64;
            let mut cells =
                vec![r.cell.workload.name.to_string(), r.cell.policy.label().to_string()];
            cells.extend(
                CpiLeaf::ALL.iter().map(|&l| fmt(cpi.stack.get(l) as f64 * 100.0 / total, 1)),
            );
            println!("{}", row(&cells));
        }
    }
    println!("\natomic-lifetime attribution (cycles per committed atomic, representative runs):\n");
    println!(
        "{}",
        row(&[
            "workload".into(),
            "policy".into(),
            "acquire".into(),
            "xfer".into(),
            "dir park".into(),
            "local".into(),
            "exec total".into(),
        ])
    );
    for runs in &groups {
        for r in runs {
            let rep = r.summary.representative();
            let cpi = RowCpi::from_run(rep);
            let atomics: u64 = rep.per_core.iter().map(|c| c.atomics).sum();
            let per = |v: u64| if atomics == 0 { 0.0 } else { v as f64 / atomics as f64 };
            let exec: u64 = rep.per_core.iter().map(|c| c.atomic_exec_cycles).sum();
            println!(
                "{}",
                row(&[
                    r.cell.workload.name.into(),
                    r.cell.policy.label().into(),
                    fmt(per(cpi.atomic_acquire), 1),
                    fmt(per(cpi.atomic_xfer.iter().sum()), 1),
                    fmt(per(cpi.atomic_dir_park), 1),
                    fmt(per(cpi.atomic_local), 1),
                    fmt(per(exec), 1),
                ])
            );
        }
    }
    emit_report(&report);
    Ok(())
}

/// **Figure 16** — network sensitivity: fenced baseline vs FreeAtomics+Fwd
/// across interconnect models — the ideal fixed-latency crossbar and the
/// contended crossbar at link bandwidth 1, 2 and 4 flits/cycle. The paper
/// evaluates on a fixed network; this sweep checks that the Free-atomics
/// speedup survives (and how it shifts) when coherence traffic has to queue
/// for links. Per-point network detail (link utilization, queue depth,
/// grant latency) comes straight from the NoC stats of the representative
/// FreeAtomics+Fwd run. Emits every `(noc, kernel, policy, preset)` row
/// into one merged `BENCH_sweep.json` report; contended rows carry the
/// `net` block.
///
/// # Errors
///
/// The first failed `(cell, run)` job of any grid point.
pub fn fig16_network_sensitivity(opts: &BenchOpts) -> Result<(), Box<SimError>> {
    println!("\n## Figure 16 — network sensitivity (speedup of FreeAtomics+Fwd)\n");
    let points: [(&str, NocConfig); 4] = [
        ("ideal", NocConfig::default()),
        ("bw=1", NocConfig::contended(1)),
        ("bw=2", NocConfig::contended(2)),
        ("bw=4", NocConfig::contended(4)),
    ];
    let policies = [AtomicPolicy::FencedBaseline, AtomicPolicy::FreeFwd];
    let workloads = opts.workloads();
    let presets = presets_from_env();
    let cells = grid(&workloads, &policies, &presets);
    println!(
        "{}",
        row(&[
            "noc".into(),
            "workload".into(),
            "preset".into(),
            "baseline".into(),
            "free".into(),
            "speedup".into(),
            "max util".into(),
            "max queue".into(),
            "grant lat".into(),
        ])
    );
    let mut all = Vec::new();
    let mut detail = Vec::new();
    let mut total = SweepTiming {
        cells: 0,
        threads: 0,
        wall: std::time::Duration::ZERO,
        sim_cycles: 0,
        sim_instructions: 0,
    };
    for (label, noc) in points {
        let p_opts = BenchOpts { noc, ..*opts };
        let (results, t) = run_grid(&p_opts, &cells)?;
        total.cells += t.cells;
        total.threads = t.threads;
        total.wall += t.wall;
        total.sim_cycles += t.sim_cycles;
        total.sim_instructions += t.sim_instructions;
        // Grid order is (workload, policy, preset) row-major: within one
        // workload chunk, cell `policy * presets + preset`.
        for wchunk in results.chunks(policies.len() * presets.len()) {
            for (pi, preset) in presets.iter().enumerate() {
                let base = &wchunk[pi];
                let free = &wchunk[presets.len() + pi];
                let ns = &free.summary.representative().mem.noc;
                let contended = ns.policy == fa_mem::XbarPolicy::Contended;
                println!(
                    "{}",
                    row(&[
                        label.into(),
                        base.cell.workload.name.into(),
                        preset.name().into(),
                        fmt(base.summary.mean_cycles, 1),
                        fmt(free.summary.mean_cycles, 1),
                        fmt(base.summary.mean_cycles / free.summary.mean_cycles, 3),
                        if contended { fmt(ns.max_link_utilization(), 3) } else { "-".into() },
                        if contended { ns.max_queue().to_string() } else { "-".into() },
                        fmt(ns.avg_grant_latency(), 1),
                    ])
                );
                if contended {
                    detail.push(format!(
                        "{label} {}/{}: {ns}",
                        base.cell.workload.name,
                        preset.name()
                    ));
                }
            }
        }
        all.extend(results);
    }
    println!("\nnetwork detail (representative FreeAtomics+Fwd runs):");
    for line in &detail {
        println!("  {line}");
    }
    let report = SweepReport::new("fig16_network_sensitivity", opts, &all, total);
    emit_report(&report);
    Ok(())
}

/// **Figure 15** — processor energy of each policy normalized to the
/// fenced baseline, split dynamic/static. Runs on the sweep engine and
/// emits `BENCH_sweep.json`.
///
/// # Errors
///
/// The first failed `(cell, run)` job.
pub fn fig15_energy(opts: &BenchOpts) -> Result<(), Box<SimError>> {
    println!("\n## Figure 15 — normalized energy (lower is better)\n");
    println!(
        "{}",
        row(&[
            "workload".into(),
            "baseline".into(),
            "baseline+Spec".into(),
            "FreeAtomics".into(),
            "FreeAtomics+Fwd".into(),
            "static frac (fwd)".into(),
        ])
    );
    let model = EnergyModel::default();
    let (groups, report) = policy_grid("fig15_energy", opts)?;
    let mut norm: Vec<Vec<f64>> = vec![Vec::new(); 4];
    let mut norm_ai: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for runs in &groups {
        let spec = runs[0].cell.workload;
        let energies: Vec<_> =
            runs.iter().map(|r| model.evaluate(r.summary.representative())).collect();
        let base = energies[0].total_nj();
        let mut cells = vec![spec.name.to_string()];
        for (i, e) in energies.iter().enumerate() {
            let n = e.total_nj() / base;
            norm[i].push(n);
            if spec.atomic_intensive {
                norm_ai[i].push(n);
            }
            cells.push(fmt(n, 3));
        }
        cells.push(fmt(energies[3].static_nj / energies[3].total_nj(), 3));
        println!("{}", row(&cells));
    }
    println!("\naverages (all / atomic-intensive):");
    for (i, p) in AtomicPolicy::ALL.iter().enumerate() {
        println!("  {:<16} {:.3} / {:.3}", p.label(), mean(&norm[i]), mean(&norm_ai[i]));
    }
    println!(
        "\nFreeAtomics+Fwd energy saving: {:.1}% all, {:.1}% atomic-intensive \
         (paper: 11% / 23%)",
        (1.0 - mean(&norm[3])) * 100.0,
        (1.0 - mean(&norm_ai[3])) * 100.0
    );
    emit_report(&report);
    Ok(())
}

/// **Weak-baseline experiment** — FreeFwd's residual speedup over an
/// acquire/release-native baseline.
///
/// The paper evaluates free atomics against a fenced x86-TSO baseline,
/// where every RMW pays a full store-buffer drain. A natural question is
/// how much of the win survives on a weakly ordered machine whose ISA is
/// already acquire/release-native: plain accesses are relaxed, release
/// stores ride the FIFO store buffer for free, and only SC fences and the
/// RMWs themselves drain. This experiment measures the
/// `(workload × {baseline, FreeFwd} × {tso, weak})` grid and reports
/// FreeFwd's speedup under each hardware model — the weak column is the
/// residual benefit attributable to the atomic-fence elision itself rather
/// than to TSO's globally conservative ordering.
///
/// Emits a combined `BENCH_sweep.json`: TSO rows untagged (golden shape),
/// weak rows tagged `"model":"weak"`.
///
/// # Errors
///
/// The first failed `(cell, run)` job of either grid.
pub fn fig_weak_baseline(opts: &BenchOpts) -> Result<(), Box<SimError>> {
    println!("\n## Weak baseline — FreeFwd residual speedup on acquire/release-native hardware\n");
    let workloads = opts.workloads();
    let policies = [AtomicPolicy::FencedBaseline, AtomicPolicy::FreeFwd];
    let cells = grid(&workloads, &policies, &[Preset::Icelake]);
    let tso_opts = BenchOpts { model: MemModel::Tso, ..*opts };
    let weak_opts = BenchOpts { model: MemModel::Weak, ..*opts };
    let (tso, tso_timing) = run_grid(&tso_opts, &cells)?;
    let (weak, weak_timing) = run_grid(&weak_opts, &cells)?;
    let weak_totals = weak_timing.clone();
    println!(
        "{}",
        row(&[
            "workload".into(),
            "speedup (tso)".into(),
            "speedup (weak)".into(),
            "residual frac".into(),
        ])
    );
    let mut sp_tso = Vec::new();
    let mut sp_weak = Vec::new();
    for (i, spec) in workloads.iter().enumerate() {
        let base_tso = tso[2 * i].summary.mean_cycles;
        let fwd_tso = tso[2 * i + 1].summary.mean_cycles;
        let base_weak = weak[2 * i].summary.mean_cycles;
        let fwd_weak = weak[2 * i + 1].summary.mean_cycles;
        let (st, sw) = (base_tso / fwd_tso, base_weak / fwd_weak);
        sp_tso.push(st);
        sp_weak.push(sw);
        // Fraction of the TSO-relative gain that survives against the
        // acquire/release-native baseline (1.0 = all of it; gains are
        // measured as speedup - 1, clamped for workloads with no gain).
        let residual = if st > 1.0 { ((sw - 1.0) / (st - 1.0)).max(0.0) } else { 1.0 };
        println!(
            "{}",
            row(&[spec.name.into(), fmt(st, 3), fmt(sw, 3), fmt(residual, 3)])
        );
    }
    println!(
        "\naverage FreeFwd speedup: {:.3} over the fenced TSO baseline, \
         {:.3} over the acquire/release-native weak baseline",
        mean(&sp_tso),
        mean(&sp_weak)
    );
    let mut report = SweepReport::new("fig_weak_baseline", &tso_opts, &tso, tso_timing);
    let weak_report = SweepReport::new("fig_weak_baseline", &weak_opts, &weak, weak_timing);
    report.row_lines.extend(weak_report.row_lines);
    report.timing.cells += weak_totals.cells;
    report.timing.wall += weak_totals.wall;
    report.timing.sim_cycles += weak_totals.sim_cycles;
    report.timing.sim_instructions += weak_totals.sim_instructions;
    emit_report(&report);
    Ok(())
}
