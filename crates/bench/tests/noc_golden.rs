//! Golden-determinism regression for the interconnect layer.
//!
//! Two guarantees pinned here:
//!
//! 1. The default ideal crossbar reproduces the pre-interconnect sweep
//!    rows **byte-for-byte**. The literals below were captured from the
//!    fixed-latency message path before `mem::noc` existed; if this test
//!    fails, the refactor has changed simulated behavior, not just code
//!    shape.
//! 2. The contended crossbar is bit-deterministic: the same grid at any
//!    worker-thread count emits identical rows, including the appended
//!    `net` stats block.

use fa_bench::sweep::{grid, run_grid, Preset, SweepRow};
use fa_bench::BenchOpts;
use fa_core::AtomicPolicy;
use fa_mem::NocConfig;
use fa_workloads::suite;

/// The mini-sweep sizing the goldens were captured with.
fn golden_opts(threads: usize, noc: NocConfig) -> BenchOpts {
    BenchOpts {
        cores: 2,
        scale: 0.05,
        runs: 2,
        drop_slowest: 0,
        seed: 0xF00D,
        threads,
        noc,
        trace: fa_sim::TraceMode::Off,
        check: fa_sim::CheckMode::Off,
        model: fa_sim::MemModel::Tso,
        // Escalation armed even for the goldens: stall counters are passive
        // and thresholds are wedge-sized, so rows must not move.
        progress: fa_mem::ProgressConfig::default(),
    }
}

fn golden_grid() -> Vec<fa_bench::sweep::SweepCell> {
    let ws = suite::select(&["TATP", "PC"]).expect("suite names");
    grid(&ws, &[AtomicPolicy::FencedBaseline, AtomicPolicy::FreeFwd], &[Preset::Tiny])
}

fn rows(opts: &BenchOpts) -> Vec<String> {
    let (results, _) = run_grid(opts, &golden_grid()).expect("grid");
    results.iter().map(|r| SweepRow::from_result(opts.runs, r).json()).collect()
}

#[test]
fn ideal_crossbar_reproduces_pre_interconnect_goldens() {
    let got = rows(&golden_opts(1, NocConfig::default()));
    let want = [
        "{\"kernel\":\"TATP\",\"policy\":\"baseline\",\"preset\":\"tiny\",\"runs\":2,\
         \"mean_cycles\":11316.000000,\"rep_cycles\":11230,\"instructions\":12788}",
        "{\"kernel\":\"TATP\",\"policy\":\"FreeAtomics+Fwd\",\"preset\":\"tiny\",\"runs\":2,\
         \"mean_cycles\":8713.500000,\"rep_cycles\":8611,\"instructions\":12792}",
        "{\"kernel\":\"PC\",\"policy\":\"baseline\",\"preset\":\"tiny\",\"runs\":2,\
         \"mean_cycles\":7373.000000,\"rep_cycles\":7214,\"instructions\":13040}",
        "{\"kernel\":\"PC\",\"policy\":\"FreeAtomics+Fwd\",\"preset\":\"tiny\",\"runs\":2,\
         \"mean_cycles\":6709.000000,\"rep_cycles\":6550,\"instructions\":13044}",
    ];
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g, w, "ideal-crossbar row drifted from the pre-interconnect golden");
    }
}

#[test]
fn tso_model_keeps_golden_rows_at_any_thread_count() {
    // FA_MODEL=tso must be a strict no-op: the ordering-annotation and
    // model plumbing may not move a single byte of the historical rows,
    // serial or fanned across workers.
    let want = rows(&golden_opts(1, NocConfig::default()));
    for threads in [1, 8] {
        let mut opts = golden_opts(threads, NocConfig::default());
        opts.model = fa_sim::MemModel::Tso;
        assert_eq!(rows(&opts), want, "FA_MODEL=tso rows drifted at threads={threads}");
    }
}

#[test]
fn contended_crossbar_rows_are_bit_identical_across_thread_counts() {
    let serial = rows(&golden_opts(1, NocConfig::contended(2)));
    for threads in [2, 4] {
        let parallel = rows(&golden_opts(threads, NocConfig::contended(2)));
        assert_eq!(serial, parallel, "contended rows must not depend on FA_THREADS");
    }
    for r in &serial {
        assert!(
            r.contains("\"net\":{\"policy\":\"contended\",\"bw\":2"),
            "contended rows must carry network stats: {r}"
        );
    }
    // Contention must actually bite relative to the ideal goldens.
    assert!(serial[0].contains("\"rep_cycles\""));
    assert_ne!(serial[0], rows(&golden_opts(1, NocConfig::default()))[0]);
}
