//! Criterion microbenchmarks: simulator throughput and the atomic-policy
//! latency microbenchmark (a contended fetch-add counter — the minimal
//! kernel exhibiting the paper's effect).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fa_core::AtomicPolicy;
use fa_isa::interp::GuestMem;
use fa_isa::{Kasm, Program, Reg};
use fa_sim::machine::Machine;
use fa_sim::presets::icelake_like;

fn counter_prog(iters: i64) -> Program {
    let mut k = Kasm::new();
    k.li(Reg::R1, 0x100);
    k.li(Reg::R2, 1);
    k.li(Reg::R3, 0);
    let top = k.here_label();
    k.fetch_add(Reg::R4, Reg::R1, 0, Reg::R2);
    k.addi(Reg::R3, Reg::R3, 1);
    k.blt_imm(Reg::R3, iters, top);
    k.halt();
    k.finish().unwrap()
}

fn scalar_prog(iters: i64) -> Program {
    let mut k = Kasm::new();
    k.li(Reg::R1, 0x1000);
    k.li(Reg::R3, 0);
    let top = k.here_label();
    k.ld(Reg::R4, Reg::R1, 0);
    k.addi(Reg::R4, Reg::R4, 1);
    k.st(Reg::R4, Reg::R1, 0);
    k.alu(fa_isa::AluOp::Mul, Reg::R5, Reg::R4, fa_isa::Operand::Imm(7));
    k.addi(Reg::R3, Reg::R3, 1);
    k.blt_imm(Reg::R3, iters, top);
    k.halt();
    k.finish().unwrap()
}

/// Simulated cycles for a 4-core contended counter, per policy. The point
/// of the paper in one number per policy: fewer cycles = faster atomics.
fn contended_counter(c: &mut Criterion) {
    let mut g = c.benchmark_group("contended_counter_4c");
    for policy in AtomicPolicy::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(policy.label()), &policy, |b, &p| {
            b.iter(|| {
                let mut cfg = icelake_like();
                cfg.core.policy = p;
                let mut m =
                    Machine::new(cfg, vec![counter_prog(50); 4], GuestMem::new(1 << 16));
                m.run(10_000_000).expect("quiesce").cycles
            })
        });
    }
    g.finish();
}

/// Host-side simulation throughput (simulated instructions per host
/// second) on a single-core scalar kernel.
fn simulator_throughput(c: &mut Criterion) {
    c.bench_function("simulate_10k_instrs_1core", |b| {
        b.iter(|| {
            let mut m = Machine::new(
                icelake_like(),
                vec![scalar_prog(1600)],
                GuestMem::new(1 << 16),
            );
            m.run(10_000_000).expect("quiesce").cycles
        })
    });
}

criterion_group!(benches, contended_counter, simulator_throughput);
criterion_main!(benches);
