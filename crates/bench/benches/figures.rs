//! `cargo bench` entry point that regenerates every table and figure of
//! the paper's evaluation section (sized via FA_CORES / FA_SCALE /
//! FA_RUNS / FA_THREADS; see fa-bench's crate docs).

use fa_sim::error::SimError;

type Step = fn(&fa_bench::BenchOpts) -> Result<(), Box<SimError>>;

fn main() {
    // `cargo bench` passes --bench (and possibly filter args); ignore them.
    let opts = fa_bench::BenchOpts::from_env();
    println!("# Free Atomics — evaluation reproduction");
    println!(
        "(cores={}, scale={}, runs={}, drop={}, threads={})",
        opts.cores, opts.scale, opts.runs, opts.drop_slowest, opts.threads
    );
    fa_bench::figures::table1_config();
    let steps: Vec<(&str, Step)> = vec![
        ("fig01_atomic_cost", fa_bench::figures::fig01_atomic_cost),
        ("fig12_apki", fa_bench::figures::fig12_apki),
        ("table2_characterization", fa_bench::figures::table2_characterization),
        ("fig13_locality", fa_bench::figures::fig13_locality),
        ("fig14_exec_time", fa_bench::figures::fig14_exec_time),
        ("fig15_energy", fa_bench::figures::fig15_energy),
    ];
    for (name, step) in steps {
        if let Err(e) = step(&opts) {
            eprintln!("{name} failed: {e}");
            std::process::exit(1);
        }
    }
}
