//! `cargo bench` entry point that regenerates every table and figure of
//! the paper's evaluation section (sized via FA_CORES / FA_SCALE /
//! FA_RUNS; see fa-bench's crate docs).

fn main() {
    // `cargo bench` passes --bench (and possibly filter args); ignore them.
    let opts = fa_bench::BenchOpts::from_env();
    println!("# Free Atomics — evaluation reproduction");
    println!(
        "(cores={}, scale={}, runs={}, drop={})",
        opts.cores, opts.scale, opts.runs, opts.drop_slowest
    );
    fa_bench::figures::table1_config();
    fa_bench::figures::fig01_atomic_cost(&opts);
    fa_bench::figures::fig12_apki(&opts);
    fa_bench::figures::table2_characterization(&opts);
    fa_bench::figures::fig13_locality(&opts);
    fa_bench::figures::fig14_exec_time(&opts);
    fa_bench::figures::fig15_energy(&opts);
}
