//! The memory-system facade the cores talk to.
//!
//! Per simulated cycle the machine driver calls [`MemorySystem::tick`] first
//! (advancing time and processing due protocol events into per-core
//! outboxes), then ticks each core, which drains its outbox/notices and
//! issues new requests. Same-cycle core commands (store performs, lock and
//! unlock transfers) apply to controller state immediately, which closes the
//! read-then-lock race window without transient protocol states.
//!
//! All message delivery — network messages *and* core-local completion
//! events — routes through the [`crate::noc`] interconnect, which owns the
//! event wheel, the latency/bandwidth model and the fault-injection engine.
//! This file is pure protocol glue: controllers emit actions, the system
//! translates them onto the crossbar ports.

use crate::audit::AuditViolation;
use crate::chaos::ChaosEngine;
use crate::dir::{DirAction, Directory};
use crate::msgs::{CoreNotice, CoreResp, DirMsg, LatClass};
use crate::noc::{Interconnect, NocEv};
use crate::privcache::{Action, PrivCache, ReqOutcome};
use crate::progress::{ProgressGuard, ProgressPolicy, ProgressReport, ProgressStats};
use crate::stats::{HotLock, MemStats};
use crate::{CoreId, Cycle, Line, MemConfig};
use fa_isa::interp::GuestMem;
use fa_isa::{Addr, Word};
use fa_trace::{
    write_id, SerEvent, TraceBuf, TraceEvent, TraceRecord, NOC_READ_DONE, NOC_STORE_READY,
    NOC_TO_DIR, NOC_TO_L1,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Synthetic node id for the directory in NoC trace events (cores use
/// their `CoreId`).
const DIR_NODE: u16 = u16::MAX;

/// A point-in-time snapshot of memory-system state, attached to timeout
/// reports so a hang names the locked lines and in-flight transactions
/// instead of dying silently.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemDiag {
    /// `(core, line, lock count)` for every locked line, sorted.
    pub locked: Vec<(u16, Line, u32)>,
    /// Lines whose directory entry has a transaction in flight.
    pub busy_lines: Vec<Line>,
    /// `(core, line)` for fills stalled on all-ways-locked sets.
    pub stalled_fills: Vec<(u16, Line)>,
    /// Protocol events still in flight on the wheel.
    pub pending_events: usize,
    /// Cycle of the earliest in-flight event — a delivery time far beyond
    /// the snapshot cycle points at interconnect backlog, not a protocol
    /// deadlock.
    pub next_event_at: Option<Cycle>,
}

impl fmt::Display for MemDiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "  mem: {} events in flight", self.pending_events)?;
        if let Some(at) = self.next_event_at {
            write!(f, " (next at cycle {at})")?;
        }
        if !self.locked.is_empty() {
            write!(f, "\n  locked lines:")?;
            for (core, line, count) in &self.locked {
                write!(f, " c{core}:{line:#x}(x{count})")?;
            }
        }
        if !self.busy_lines.is_empty() {
            write!(f, "\n  busy directory lines:")?;
            for line in &self.busy_lines {
                write!(f, " {line:#x}")?;
            }
        }
        if !self.stalled_fills.is_empty() {
            write!(f, "\n  stalled fills:")?;
            for (core, line) in &self.stalled_fills {
                write!(f, " c{core}:{line:#x}")?;
            }
        }
        Ok(())
    }
}

/// The full memory hierarchy for `n` cores plus the global backing store.
#[derive(Debug)]
pub struct MemorySystem {
    cfg: MemConfig,
    now: Cycle,
    /// The interconnect: owns the event wheel and the chaos engine.
    noc: Box<dyn Interconnect>,
    caches: Vec<PrivCache>,
    dir: Directory,
    backing: GuestMem,
    outbox: Vec<Vec<CoreResp>>,
    notices: Vec<Vec<CoreNotice>>,
    stats: MemStats,
    /// First cycle each `(core, line)` lock was observed held, maintained by
    /// the audit sweep (empty while auditing is off).
    lock_ages: HashMap<(CoreId, Line), Cycle>,
    trace_line: Option<Line>,
    /// Structured trace ring for interconnect send/deliver events (the
    /// per-cache and directory controllers own their own rings).
    noc_trace: TraceBuf,
    /// Conformance-check collection enabled (`cfg.check`).
    check: bool,
    /// Last write-id per word address, sampled by read performs for the
    /// checker's rf edges. Empty while `check` is off.
    last_writer: HashMap<Addr, u64>,
    /// The global write-serialization order: one event per performed
    /// store, in perform order. Empty while `check` is off.
    ser: Vec<SerEvent>,
    /// Forward-progress guard for the LSQ retry path (site `lsq-retry`):
    /// consecutive [`ReqOutcome::Retry`] outcomes per core.
    lsq_guard: ProgressGuard<CoreId>,
    /// Largest in-flight interconnect event population observed, sampled
    /// at the top of every tick (site `noc-backlog`). Between core sends
    /// and deliveries the population is constant, so sampling only ticked
    /// cycles sees the same maximum whether or not idle spans are
    /// fast-forwarded.
    backlog_max: u64,
}

impl MemorySystem {
    /// Creates a memory system for `n_cores` cores over `backing`.
    pub fn new(cfg: MemConfig, n_cores: usize, backing: GuestMem) -> MemorySystem {
        let chaos = ChaosEngine::new(cfg.chaos.clone());
        // Fault injection may clamp the effective MSHR count.
        let mut cache_cfg = cfg.clone();
        cache_cfg.mshrs = chaos.effective_mshrs(cfg.mshrs);
        MemorySystem {
            caches: (0..n_cores).map(|i| PrivCache::new(CoreId(i as u16), &cache_cfg)).collect(),
            dir: Directory::new(&cfg),
            backing,
            outbox: vec![Vec::new(); n_cores],
            notices: vec![Vec::new(); n_cores],
            stats: MemStats::new(n_cores),
            now: 0,
            noc: crate::noc::build(&cfg, n_cores, chaos),
            lock_ages: HashMap::new(),
            noc_trace: TraceBuf::new(&cfg.trace),
            check: cfg.check.on(),
            last_writer: HashMap::new(),
            ser: Vec::new(),
            lsq_guard: ProgressGuard::new(ProgressPolicy::counting(), 0),
            backlog_max: 0,
            cfg,
            trace_line: std::env::var("FA_TRACE_LINE")
                .ok()
                .and_then(|s| u64::from_str_radix(s.trim_start_matches("0x"), 16).ok()),
        }
    }

    fn trace(&self, line: Line, msg: impl FnOnce() -> String) {
        if self.trace_line == Some(line) {
            eprintln!("[{:>8}] {}", self.now, msg());
        }
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.caches.len()
    }

    /// The configuration in use.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Read access to guest memory (workload setup / result checking).
    pub fn backing(&self) -> &GuestMem {
        &self.backing
    }

    /// Write access to guest memory (workload initialization only — writing
    /// mid-simulation would bypass coherence).
    pub fn backing_mut(&mut self) -> &mut GuestMem {
        &mut self.backing
    }

    /// Advances one cycle and processes all protocol events now due.
    pub fn tick(&mut self) {
        self.now += 1;
        // Progress site `noc-backlog`: sample before this tick's deliveries
        // so the maximum is identical under idle-span fast-forwarding (the
        // population only changes at ticked cycles).
        self.backlog_max = self.backlog_max.max(self.noc.pending() as u64);
        // Trace timestamps only — the directory's protocol logic is
        // event-driven and never reads the clock.
        self.dir.set_now(self.now);
        // Fault injection: periodic back-invalidation storms.
        if self.noc.chaos().enabled() {
            let burst = self.noc.chaos_mut().storm_due(self.now);
            if burst > 0 {
                let mut dout = Vec::new();
                let evicted = self.dir.storm_evict(burst, &mut dout);
                self.noc.chaos_mut().stats.storm_evictions += evicted;
                self.apply_dir_actions(dout);
            }
        }
        // Retry fills stalled on all-ways-locked sets.
        for i in 0..self.caches.len() {
            let mut acts = Vec::new();
            self.caches[i].retry_stalled_fills(self.now, &mut acts);
            self.apply_cache_actions(i, acts);
        }
        while let Some((sent, ev)) = self.noc.pop_due(self.now) {
            self.process(sent, ev);
        }
    }

    fn process(&mut self, sent: Cycle, ev: NocEv) {
        if self.noc_trace.on() {
            let lat = self.now.saturating_sub(sent);
            let (kind, dst) = match ev {
                NocEv::ToDir(_) => (NOC_TO_DIR, DIR_NODE),
                NocEv::ToL1(core, _) => (NOC_TO_L1, core.0),
                NocEv::ReadDone { core, .. } => (NOC_READ_DONE, core.0),
                NocEv::StoreReady { core, .. } => (NOC_STORE_READY, core.0),
            };
            self.noc_trace.record(self.now, TraceEvent::NocDeliver { kind, dst, lat });
        }
        match ev {
            NocEv::ToDir(msg) => {
                let mut dout = Vec::new();
                self.dir.handle(msg, &mut dout);
                self.apply_dir_actions(dout);
            }
            NocEv::ToL1(core, msg) => {
                let mut acts = Vec::new();
                self.caches[core.index()].handle_ext(msg, &mut acts);
                self.apply_cache_actions(core.index(), acts);
            }
            NocEv::ReadDone { core, seq, addr, class, had_write_perm, locked, park } => {
                // Interconnect transfer cycles of the final fill leg:
                // injection stamp → delivery. Zero for local hits under a
                // quiet network (the stamp excludes the sender-side cache
                // pipeline delay).
                let xfer = self.now.saturating_sub(sent);
                let c = &mut self.stats.cores[core.index()];
                match class {
                    LatClass::L1 => c.l1_hits += 1,
                    LatClass::L2 => c.l2_hits += 1,
                    LatClass::Llc => c.llc_hits += 1,
                    LatClass::Mem => c.mem_accesses += 1,
                    LatClass::Remote => c.remote_transfers += 1,
                }
                c.fill_cycles_by_class[class.index()] += xfer;
                let value = self.backing.load(addr);
                self.trace(fa_isa::line_of(addr), || {
                    format!("{core:?} ReadDone seq={seq} addr={addr:#x} val={value} locked={locked}")
                });
                // Value and rf writer are sampled at the same instant —
                // the read's perform point — so they always agree.
                let writer = if self.check {
                    self.last_writer.get(&addr).copied().unwrap_or(0)
                } else {
                    0
                };
                self.outbox[core.index()].push(CoreResp::ReadResp {
                    seq,
                    addr,
                    value,
                    writer,
                    class,
                    had_write_perm,
                    locked,
                    xfer,
                    park,
                });
            }
            NocEv::StoreReady { core, seq, line } => {
                self.outbox[core.index()].push(CoreResp::StoreReady { seq, line });
            }
        }
    }

    /// Routes directory output onto the response ports. The `extra` delay
    /// (directory/LLC/memory access time) rides along so the interconnect
    /// can separate access latency from network latency. Grants,
    /// invalidations and downgrades are all per-line-serialized by the
    /// `Unblock` protocol, so network delay (jitter or contention) reorders
    /// only independent messages (requests arriving "early" park) — TSO
    /// outcomes stay legal under any interconnect configuration.
    fn apply_dir_actions(&mut self, actions: Vec<DirAction>) {
        for a in actions {
            match a {
                DirAction::ToL1 { core, msg, extra } => {
                    self.noc_trace.record(
                        self.now,
                        TraceEvent::NocSend { kind: NOC_TO_L1, src: DIR_NODE, dst: core.0 },
                    );
                    self.noc.send(self.now, extra, NocEv::ToL1(core, msg));
                }
                DirAction::Redispatch(req) => {
                    // Allocation polling, not a protocol message: delivered
                    // next cycle with no latency, jitter or contention.
                    self.noc.send_raw(self.now + 1, NocEv::ToDir(DirMsg::Req(req)));
                }
            }
        }
    }

    /// Routes private-cache output: completions onto the core-local port,
    /// directory requests onto the core's request egress port.
    fn apply_cache_actions(&mut self, core: usize, actions: Vec<Action>) {
        for a in actions {
            if self.noc_trace.on() {
                let send = match a {
                    Action::ReadDone { .. } => {
                        Some((NOC_READ_DONE, core as u16, core as u16))
                    }
                    Action::StoreReady { .. } => {
                        Some((NOC_STORE_READY, core as u16, core as u16))
                    }
                    Action::ToDir(_) => Some((NOC_TO_DIR, core as u16, DIR_NODE)),
                    Action::LineLost { .. } => None,
                };
                if let Some((kind, src, dst)) = send {
                    self.noc_trace.record(self.now, TraceEvent::NocSend { kind, src, dst });
                }
            }
            match a {
                Action::ReadDone { delay, seq, addr, class, had_write_perm, locked, park } => {
                    self.noc.send(
                        self.now,
                        delay,
                        NocEv::ReadDone {
                            core: CoreId(core as u16),
                            seq,
                            addr,
                            class,
                            had_write_perm,
                            locked,
                            park,
                        },
                    );
                }
                Action::StoreReady { delay, seq, line } => {
                    self.noc.send(
                        self.now,
                        delay,
                        NocEv::StoreReady { core: CoreId(core as u16), seq, line },
                    );
                }
                Action::ToDir(msg) => {
                    self.noc.send(self.now, 0, NocEv::ToDir(msg));
                }
                Action::LineLost { line, remote_write } => {
                    self.notices[core].push(CoreNotice::LineLost { line, remote_write });
                }
            }
        }
    }

    // ---- Core-facing port (called during the core's tick) ----

    /// Issues a demand read. `exclusive` requests write permission
    /// (load_lock path); `lock_intent` locks the line at perform time.
    pub fn read(
        &mut self,
        core: CoreId,
        seq: u64,
        addr: Addr,
        exclusive: bool,
        lock_intent: bool,
    ) -> ReqOutcome {
        let mut acts = Vec::new();
        let r = self.caches[core.index()].read(seq, addr, exclusive, lock_intent, &mut acts);
        self.apply_cache_actions(core.index(), acts);
        self.note_lsq_outcome(core, r);
        r
    }

    /// Requests write permission for the store tagged `seq`.
    pub fn store_acquire(&mut self, core: CoreId, seq: u64, addr: Addr) -> ReqOutcome {
        let mut acts = Vec::new();
        let r = self.caches[core.index()].store_acquire(seq, addr, &mut acts);
        self.apply_cache_actions(core.index(), acts);
        self.note_lsq_outcome(core, r);
        r
    }

    /// Progress site `lsq-retry`: count consecutive structural-hazard
    /// retries per core, cleared the moment a request is accepted.
    fn note_lsq_outcome(&mut self, core: CoreId, r: ReqOutcome) {
        match r {
            ReqOutcome::Retry => {
                self.lsq_guard.note_attempt(core);
            }
            ReqOutcome::Accepted => self.lsq_guard.note_success(core),
        }
    }

    /// Attempts to perform a store this cycle: requires the private cache to
    /// hold write permission. On success the backing store is written
    /// immediately (this *is* the store's perform, and — with checking on —
    /// the point logged into the global write-serialization order under
    /// `write_id(core, seq)`). `lock` applies the `lock_on_access`
    /// responsibility; `unlock` releases one lock count (a store_unlock
    /// draining, §3.3).
    pub fn try_store_perform(
        &mut self,
        core: CoreId,
        seq: u64,
        addr: Addr,
        value: Word,
        lock: bool,
        unlock: bool,
    ) -> bool {
        let mut acts = Vec::new();
        let info = self.caches[core.index()].try_store_perform(addr, lock, unlock, &mut acts);
        if let Some(info) = &info {
            self.backing.store(addr, value);
            self.stats.cores[core.index()].stores_performed += 1;
            if self.check {
                let w = write_id(core.0, seq);
                self.last_writer.insert(addr, w);
                self.ser.push(SerEvent {
                    addr,
                    writer: w,
                    value,
                    epoch: self.dir.write_epoch(fa_isa::line_of(addr)),
                    under_lock: info.under_lock,
                });
            }
            self.trace(fa_isa::line_of(addr), || {
                format!("{core:?} StorePerform addr={addr:#x} val={value} lock={lock} unlock={unlock}")
            });
        }
        self.apply_cache_actions(core.index(), acts);
        info.is_some()
    }

    /// The global write-serialization order collected so far (empty while
    /// checking is off). The per-address subsequence is the coherence
    /// order `co` the axiomatic checker consumes.
    pub fn ser_events(&self) -> &[SerEvent] {
        &self.ser
    }

    /// Adds a lock count on `line` (load_lock performed on an
    /// already-present writable line, or a lock transfer during forwarding).
    pub fn lock_line(&mut self, core: CoreId, line: Line) {
        self.trace(line, || format!("{core:?} LockLine"));
        self.caches[core.index()].lock(line);
    }

    /// Releases one lock count on `line`; at zero, parked external requests
    /// replay (squash-driven unlock, store_unlock drain, or orphaned lock).
    ///
    /// # Panics
    ///
    /// Panics if the line is not locked by `core` — an AQ desync bug.
    pub fn unlock_line(&mut self, core: CoreId, line: Line) {
        self.trace(line, || format!("{core:?} UnlockLine (count {})", self.lock_count(core, line)));
        let mut acts = Vec::new();
        self.caches[core.index()].unlock(line, &mut acts);
        self.apply_cache_actions(core.index(), acts);
    }

    /// Takes this cycle's responses for `core`.
    pub fn drain_responses(&mut self, core: CoreId) -> Vec<CoreResp> {
        std::mem::take(&mut self.outbox[core.index()])
    }

    /// Takes this cycle's notices for `core`.
    pub fn drain_notices(&mut self, core: CoreId) -> Vec<CoreNotice> {
        std::mem::take(&mut self.notices[core.index()])
    }

    /// True if `core`'s private cache currently holds write permission.
    pub fn writable(&self, core: CoreId, line: Line) -> bool {
        self.caches[core.index()].writable(line)
    }

    /// True if `core` has `line` locked.
    pub fn is_locked(&self, core: CoreId, line: Line) -> bool {
        self.caches[core.index()].is_locked(line)
    }

    /// Lock count held by `core` on `line`.
    pub fn lock_count(&self, core: CoreId, line: Line) -> u32 {
        self.caches[core.index()].lock_count(line)
    }

    /// Number of protocol events still in flight (quiescence check).
    pub fn pending_events(&self) -> usize {
        self.noc.pending()
    }

    /// True when `core` has undelivered responses or notices queued — a
    /// halted or sleeping core with traffic pending must still be ticked so
    /// it can drain them (and, for a sleeper, observe its wake condition).
    pub fn has_core_traffic(&self, core: CoreId) -> bool {
        !self.outbox[core.index()].is_empty() || !self.notices[core.index()].is_empty()
    }

    /// Cycle of the earliest in-flight protocol event, if any.
    pub fn next_event_at(&self) -> Option<Cycle> {
        self.noc.next_at()
    }

    /// True when ticking this memory system over a span of idle cycles is a
    /// pure clock advance: the interconnect has no per-cycle work (fault
    /// injection's storm scheduling is per-cycle; both crossbars otherwise
    /// compute delivery times at send time) and no fills are stalled on
    /// all-ways-locked sets (their retry poll is per-cycle). The machine
    /// driver uses this to fast-forward `now` to the next event while every
    /// core is quiescent-waiting.
    pub fn fast_forwardable(&self) -> bool {
        self.noc.fast_forwardable() && self.caches.iter().all(|c| !c.has_stalled_fills())
    }

    /// Jumps the clock to `cycle` without processing the intervening
    /// (empty) cycles. Callers must have established that the skip is a
    /// no-op: `cycle` precedes the next scheduled event, the system is
    /// [`fast_forwardable`](Self::fast_forwardable), and no core issues a
    /// request in the skipped span.
    pub fn skip_to(&mut self, cycle: Cycle) {
        debug_assert!(cycle >= self.now, "skip_to cannot rewind the clock");
        debug_assert!(
            self.noc.next_at().map(|at| at > cycle).unwrap_or(true),
            "skip_to must not jump over a scheduled event"
        );
        debug_assert!(self.fast_forwardable(), "skip_to requires a pure clock advance");
        self.now = cycle;
        // Keep controller trace clocks in step across the skipped span so
        // lock-hold and fill-stall attributions stay cycle-accurate.
        self.dir.set_now(cycle);
        for c in &mut self.caches {
            c.set_now(cycle);
        }
    }

    /// True while `core`'s interconnect links are serializing queued
    /// traffic (contended crossbar only). Pure read for the cycle-
    /// accounting layer — never perturbs the run.
    pub fn core_backpressured(&self, core: CoreId) -> bool {
        self.noc.core_backpressured(core.index(), self.now)
    }

    /// True while `core` has a directory request waiting on entry
    /// allocation (the `dir-alloc` progress site). Pure read for the
    /// cycle-accounting layer — never perturbs the run.
    pub fn core_alloc_waiting(&self, core: CoreId) -> bool {
        self.dir.core_alloc_waiting(core)
    }

    /// Checks every memory-side forward-progress site against the
    /// configured [`ProgressConfig`](crate::ProgressConfig) thresholds and
    /// returns the first tripped site's minimal stuck-resource report, or
    /// `None` while everything is within bounds (always, when escalation
    /// is disabled). Pure reads — polling this never perturbs the run.
    pub fn progress_report(&self) -> Option<ProgressReport> {
        let p = &self.cfg.progress;
        if !p.enabled {
            return None;
        }
        let dir = self.dir.alloc_guard.worst_outstanding();
        if dir > p.max_attempts {
            return Some(ProgressReport {
                site: "dir-alloc",
                observed: dir,
                threshold: p.max_attempts,
            });
        }
        let fill =
            self.caches.iter().map(|c| c.fill_guard.worst_outstanding()).max().unwrap_or(0);
        if fill > p.max_attempts {
            return Some(ProgressReport {
                site: "cache-fill",
                observed: fill,
                threshold: p.max_attempts,
            });
        }
        let lsq = self.lsq_guard.worst_outstanding();
        if lsq > p.max_attempts {
            return Some(ProgressReport {
                site: "lsq-retry",
                observed: lsq,
                threshold: p.max_attempts,
            });
        }
        if self.backlog_max > p.max_backlog {
            return Some(ProgressReport {
                site: "noc-backlog",
                observed: self.backlog_max,
                threshold: p.max_backlog,
            });
        }
        None
    }

    /// Runs one invariant-audit sweep. Free when `cfg.audit.enabled` is
    /// false; otherwise checks SWMR, directory–L1 inclusion and the
    /// lock-hold bound (see [`crate::audit`]), returning the first violation
    /// in a deterministic order.
    pub fn audit(&mut self) -> Result<(), AuditViolation> {
        if !self.cfg.audit.enabled {
            return Ok(());
        }
        self.stats.audit.sweeps += 1;
        // SWMR and inclusion, from the caches' resident lines.
        let mut holders: HashMap<Line, (Vec<CoreId>, Vec<CoreId>)> = HashMap::new();
        for (i, c) in self.caches.iter().enumerate() {
            let id = CoreId(i as u16);
            for (line, st) in c.resident_lines() {
                // Inclusion: every private copy must be covered by a
                // directory sharer bit (the directory is a superset due to
                // silent evictions, never a subset).
                if self.dir.sharers(line) & (1u64 << i) == 0 {
                    return Err(AuditViolation::InclusionHole {
                        line,
                        core: id,
                        entry_missing: !self.dir.has_entry(line),
                    });
                }
                let h = holders.entry(line).or_default();
                h.1.push(id);
                if st.writable() {
                    h.0.push(id);
                }
            }
        }
        let mut lines: Vec<Line> = holders.keys().copied().collect();
        lines.sort_unstable();
        for line in lines {
            let (writers, all) = &holders[&line];
            if !writers.is_empty() && all.len() > 1 {
                return Err(AuditViolation::MultipleWriters {
                    line,
                    writers: writers.clone(),
                    holders: all.clone(),
                });
            }
        }
        // Lock-pairing bound: age every live lock; drop ages for released
        // locks; flag any lock held continuously past the bound.
        let mut live: Vec<(CoreId, Line, u32)> = Vec::new();
        for (i, c) in self.caches.iter().enumerate() {
            for (line, count) in c.locks_iter() {
                live.push((CoreId(i as u16), line, count));
            }
        }
        live.sort_unstable_by_key(|&(c, l, _)| (c, l));
        self.lock_ages.retain(|&(c, l), _| live.iter().any(|&(lc, ll, _)| (lc, ll) == (c, l)));
        for &(core, line, count) in &live {
            let since = *self.lock_ages.entry((core, line)).or_insert(self.now);
            let held_for = self.now - since;
            self.stats.audit.max_lock_hold_seen =
                self.stats.audit.max_lock_hold_seen.max(held_for);
            if held_for > self.cfg.audit.max_lock_hold {
                return Err(AuditViolation::LockLeak { line, core, held_for, count });
            }
        }
        Ok(())
    }

    /// Snapshot of the hang-relevant state for diagnostics.
    pub fn diag(&self) -> MemDiag {
        let mut locked: Vec<(u16, Line, u32)> = Vec::new();
        let mut stalled: Vec<(u16, Line)> = Vec::new();
        for (i, c) in self.caches.iter().enumerate() {
            for (line, count) in c.locks_iter() {
                locked.push((i as u16, line, count));
            }
            for line in c.stalled_fill_lines() {
                stalled.push((i as u16, line));
            }
        }
        locked.sort_unstable();
        stalled.sort_unstable();
        MemDiag {
            locked,
            busy_lines: self.dir.busy_lines().collect(),
            stalled_fills: stalled,
            pending_events: self.noc.pending(),
            next_event_at: self.noc.next_at(),
        }
    }

    /// Snapshot of the statistics, merging controller counters.
    pub fn stats(&self) -> MemStats {
        let mut s = self.stats.clone();
        for (i, c) in self.caches.iter().enumerate() {
            let cs = &mut s.cores[i];
            cs.parked_on_lock = c.stat_parked;
            cs.evictions = c.stat_evictions;
            cs.fill_stalled_all_locked = c.stat_fill_stalled;
            cs.max_fill_stall = c.stat_fill_stall_max;
            cs.prefetches = c.stat_prefetches;
            cs.invals_received = c.stat_invals;
            cs.fill_stall_hist = c.hist_fill_stall;
            cs.lock_hold_hist = c.hist_lock_hold;
        }
        // Hottest locked lines: merge per-cache lock accounting by line,
        // rank by total hold cycles (line address as the deterministic
        // tiebreak), keep the top entries.
        let mut by_line: HashMap<Line, (u64, u64)> = HashMap::new();
        for c in &self.caches {
            for (&line, &(acqs, held)) in &c.lock_acct {
                let e = by_line.entry(line).or_insert((0, 0));
                e.0 += acqs;
                e.1 += held;
            }
        }
        let mut hot: Vec<HotLock> = by_line
            .into_iter()
            .map(|(line, (acquisitions, hold_cycles))| HotLock { line, acquisitions, hold_cycles })
            .collect();
        hot.sort_unstable_by(|a, b| {
            b.hold_cycles.cmp(&a.hold_cycles).then(a.line.cmp(&b.line))
        });
        hot.truncate(MemStats::HOT_LOCKS);
        s.hot_locks = hot;
        s.dir.requests = self.dir.stat_requests;
        s.dir.parked_busy = self.dir.stat_parked_busy;
        s.dir.invals_sent = self.dir.stat_invals_sent;
        s.dir.downgrades_sent = self.dir.stat_downgrades_sent;
        s.dir.entry_evictions = self.dir.stat_entry_evictions;
        s.dir.alloc_waits = self.dir.stat_alloc_waits;
        s.dir.alloc_rescues = self.dir.stat_alloc_rescues;
        s.chaos = self.noc.chaos().stats.clone();
        s.noc = self.noc.stats(self.now);
        s.messages = s.noc.net_messages;
        s.progress = ProgressStats {
            dir_alloc_attempts_max: self.dir.alloc_guard.attempts_max,
            dir_rescues: self.dir.alloc_guard.rescues,
            fill_attempts_max: self
                .caches
                .iter()
                .map(|c| c.fill_guard.attempts_max)
                .max()
                .unwrap_or(0),
            lsq_attempts_max: self.lsq_guard.attempts_max,
            noc_backlog_max: self.backlog_max,
        };
        s
    }

    /// Every non-empty trace ring in a stable order: per-core cache
    /// controllers (`l1c{i}`), the directory (`dir`), then the interconnect
    /// (`noc`). Empty when tracing is off.
    pub fn trace_events(&self) -> Vec<(String, Vec<TraceRecord>)> {
        let mut out = Vec::new();
        for (i, c) in self.caches.iter().enumerate() {
            if !c.trace.is_empty() {
                out.push((format!("l1c{i}"), c.trace.records()));
            }
        }
        if !self.dir.trace.is_empty() {
            out.push(("dir".to_string(), self.dir.trace.records()));
        }
        if !self.noc_trace.is_empty() {
            out.push(("noc".to_string(), self.noc_trace.records()));
        }
        out
    }

    /// The last `n` trace records per component (flight-recorder tails),
    /// same component order and naming as [`trace_events`](Self::trace_events).
    pub fn trace_tails(&self, n: usize) -> Vec<(String, Vec<TraceRecord>)> {
        let mut out = Vec::new();
        for (i, c) in self.caches.iter().enumerate() {
            if !c.trace.is_empty() {
                out.push((format!("l1c{i}"), c.trace.tail(n)));
            }
        }
        if !self.dir.trace.is_empty() {
            out.push(("dir".to_string(), self.dir.trace.tail(n)));
        }
        if !self.noc_trace.is_empty() {
            out.push(("noc".to_string(), self.noc_trace.tail(n)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C0: CoreId = CoreId(0);
    const C1: CoreId = CoreId(1);

    fn sys(n: usize) -> MemorySystem {
        MemorySystem::new(MemConfig::tiny(), n, GuestMem::new(1 << 16))
    }

    /// Ticks until `core` receives a response, with a safety bound.
    fn run_until_resp(m: &mut MemorySystem, core: CoreId, bound: u64) -> Vec<CoreResp> {
        for _ in 0..bound {
            m.tick();
            let r = m.drain_responses(core);
            if !r.is_empty() {
                return r;
            }
        }
        panic!("no response within {bound} cycles");
    }

    #[test]
    fn cold_read_round_trip_returns_value() {
        let mut m = sys(1);
        m.backing_mut().store(0x100, 77);
        assert_eq!(m.read(C0, 1, 0x100, false, false), ReqOutcome::Accepted);
        let resps = run_until_resp(&mut m, C0, 1000);
        match resps[0] {
            CoreResp::ReadResp { seq: 1, value, class, .. } => {
                assert_eq!(value, 77);
                assert_eq!(class, LatClass::Mem);
            }
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn second_read_hits_l1_fast() {
        let mut m = sys(1);
        m.read(C0, 1, 0x100, false, false);
        run_until_resp(&mut m, C0, 1000);
        let t0 = m.now();
        m.read(C0, 2, 0x108, false, false);
        let resps = run_until_resp(&mut m, C0, 100);
        assert!(m.now() - t0 <= m.config().l1_lat + 1);
        assert!(matches!(resps[0], CoreResp::ReadResp { class: LatClass::L1, .. }));
    }

    #[test]
    fn store_round_trip_and_perform() {
        let mut m = sys(1);
        assert_eq!(m.store_acquire(C0, 9, 0x200), ReqOutcome::Accepted);
        let resps = run_until_resp(&mut m, C0, 1000);
        assert!(matches!(resps[0], CoreResp::StoreReady { seq: 9, .. }));
        assert!(m.try_store_perform(C0, 1, 0x200, 1234, false, false));
        assert_eq!(m.backing().load(0x200), 1234);
    }

    #[test]
    fn remote_write_invalidates_reader_with_notice() {
        let mut m = sys(2);
        // Core 0 reads the line.
        m.read(C0, 1, 0x100, false, false);
        run_until_resp(&mut m, C0, 1000);
        // Core 1 writes it.
        m.store_acquire(C1, 2, 0x100);
        run_until_resp(&mut m, C1, 2000);
        assert!(m.try_store_perform(C1, 1, 0x100, 5, false, false));
        let notices = m.drain_notices(C0);
        assert!(
            notices.contains(&CoreNotice::LineLost { line: 0x100, remote_write: true }),
            "got {notices:?}"
        );
        // Core 0 re-reads and sees the new value.
        m.read(C0, 3, 0x100, false, false);
        let resps = run_until_resp(&mut m, C0, 2000);
        assert!(matches!(resps[0], CoreResp::ReadResp { value: 5, .. }));
    }

    #[test]
    fn locked_line_blocks_remote_getx_until_unlock() {
        let mut m = sys(2);
        // Core 0 takes the line with lock intent (a performing load_lock).
        m.read(C0, 1, 0x100, true, true);
        let r = run_until_resp(&mut m, C0, 1000);
        assert!(matches!(r[0], CoreResp::ReadResp { locked: true, .. }));
        assert!(m.is_locked(C0, 0x100));
        // Core 1 wants to write: its GetX parks at core 0.
        m.store_acquire(C1, 2, 0x100);
        for _ in 0..500 {
            m.tick();
        }
        assert!(
            m.drain_responses(C1).is_empty(),
            "store must not become ready while the line is locked"
        );
        // Unlock: parked Inv replays, core 1 gets permission.
        m.unlock_line(C0, 0x100);
        let r = run_until_resp(&mut m, C1, 1000);
        assert!(matches!(r[0], CoreResp::StoreReady { seq: 2, .. }));
        // Core 0 lost the line.
        let notices = m.drain_notices(C0);
        assert!(notices
            .iter()
            .any(|n| matches!(n, CoreNotice::LineLost { line: 0x100, remote_write: true })));
    }

    #[test]
    fn read_lock_then_store_unlock_round_trip() {
        let mut m = sys(2);
        m.backing_mut().store(0x300, 10);
        // Atomic on core 0: load_lock reads 10, store_unlock writes 11.
        m.read(C0, 1, 0x300, true, true);
        let r = run_until_resp(&mut m, C0, 1000);
        assert!(matches!(r[0], CoreResp::ReadResp { value: 10, locked: true, .. }));
        assert!(m.try_store_perform(C0, 3, 0x300, 11, false, true));
        assert!(!m.is_locked(C0, 0x300));
        assert_eq!(m.backing().load(0x300), 11);
    }

    #[test]
    fn two_cores_reading_share_the_line() {
        let mut m = sys(2);
        m.read(C0, 1, 0x100, false, false);
        run_until_resp(&mut m, C0, 1000);
        m.read(C1, 2, 0x100, false, false);
        let r = run_until_resp(&mut m, C1, 2000);
        // Remote transfer: core 0 held it exclusively.
        assert!(matches!(r[0], CoreResp::ReadResp { class: LatClass::Remote, .. }));
        // Neither core may now write without a request.
        assert!(!m.writable(C0, 0x100) || !m.writable(C1, 0x100));
    }

    #[test]
    fn store_perform_fails_after_losing_permission() {
        let mut m = sys(2);
        m.store_acquire(C0, 1, 0x100);
        run_until_resp(&mut m, C0, 1000);
        // Core 1 steals the line.
        m.store_acquire(C1, 2, 0x100);
        run_until_resp(&mut m, C1, 2000);
        assert!(!m.try_store_perform(C0, 1, 0x100, 1, false, false));
        assert!(m.try_store_perform(C1, 2, 0x100, 2, false, false));
        assert_eq!(m.backing().load(0x100), 2);
    }

    #[test]
    fn stats_track_hit_classes() {
        let mut m = sys(1);
        m.read(C0, 1, 0x100, false, false);
        run_until_resp(&mut m, C0, 1000);
        m.read(C0, 2, 0x100, false, false);
        run_until_resp(&mut m, C0, 100);
        let s = m.stats();
        assert_eq!(s.cores[0].mem_accesses, 1);
        assert_eq!(s.cores[0].l1_hits, 1);
        assert!(s.messages >= 2);
    }

    #[test]
    fn deadlock_shape_two_locked_lines_cross_getx() {
        // The RMW-RMW deadlock substrate (paper Figure 5): each core locks a
        // line and then requests the other's. Neither request completes; both
        // park. Progress requires an unlock — exactly what the core-level
        // watchdog provides.
        let mut m = sys(2);
        m.read(C0, 1, 0x100, true, true);
        run_until_resp(&mut m, C0, 1000);
        m.read(C1, 2, 0x200, true, true);
        run_until_resp(&mut m, C1, 1000);
        // Cross requests.
        m.read(C0, 3, 0x200, true, true);
        m.read(C1, 4, 0x100, true, true);
        for _ in 0..2000 {
            m.tick();
        }
        assert!(m.drain_responses(C0).is_empty());
        assert!(m.drain_responses(C1).is_empty());
        // Core 0 squashes its atomic (watchdog): unlock line 0x100.
        m.unlock_line(C0, 0x100);
        let r = run_until_resp(&mut m, C1, 2000);
        assert!(matches!(r[0], CoreResp::ReadResp { seq: 4, locked: true, .. }));
        // Core 1 finishes both atomics; core 0 then proceeds.
        assert!(m.try_store_perform(C1, 3, 0x100, 1, false, true));
        assert!(m.try_store_perform(C1, 5, 0x200, 1, false, true));
        let r = run_until_resp(&mut m, C0, 4000);
        assert!(matches!(r[0], CoreResp::ReadResp { seq: 3, locked: true, .. }));
    }

    // ---- Invariant auditor: clean runs pass, corruption is caught ----

    #[test]
    fn auditor_catches_forced_swmr_violation() {
        let mut cfg = MemConfig::tiny();
        cfg.audit = crate::AuditConfig::on();
        let mut m = MemorySystem::new(cfg, 2, GuestMem::new(1 << 16));
        m.read(C0, 1, 0x100, false, false);
        run_until_resp(&mut m, C0, 1000);
        m.read(C1, 2, 0x100, false, false);
        run_until_resp(&mut m, C1, 2000);
        m.audit().expect("legal sharing must pass the audit");
        // Corrupt the protocol: core 0 claims write permission while core 1
        // still holds a shared copy.
        m.caches[0].force_state(0x100, crate::privcache::Mesi::M);
        match m.audit() {
            Err(AuditViolation::MultipleWriters { line: 0x100, writers, holders }) => {
                assert_eq!(writers, vec![C0]);
                assert!(holders.contains(&C1));
            }
            other => panic!("expected MultipleWriters, got {other:?}"),
        }
    }

    #[test]
    fn auditor_catches_forced_inclusion_hole() {
        let mut cfg = MemConfig::tiny();
        cfg.audit = crate::AuditConfig::on();
        let mut m = MemorySystem::new(cfg, 1, GuestMem::new(1 << 16));
        m.read(C0, 1, 0x100, false, false);
        run_until_resp(&mut m, C0, 1000);
        m.audit().expect("covered copy must pass the audit");
        m.dir.force_drop_entry(0x100);
        match m.audit() {
            Err(AuditViolation::InclusionHole { line: 0x100, core, entry_missing: true }) => {
                assert_eq!(core, C0);
            }
            other => panic!("expected InclusionHole, got {other:?}"),
        }
    }

    #[test]
    fn auditor_catches_lock_leak() {
        let mut cfg = MemConfig::tiny();
        cfg.audit =
            crate::AuditConfig { enabled: true, max_lock_hold: 10, ..crate::AuditConfig::on() };
        let mut m = MemorySystem::new(cfg, 1, GuestMem::new(1 << 16));
        // A load_lock whose store_unlock never drains: the lock leaks.
        m.read(C0, 1, 0x100, true, true);
        run_until_resp(&mut m, C0, 1000);
        let mut leaked = None;
        for _ in 0..50 {
            m.tick();
            if let Err(v) = m.audit() {
                leaked = Some(v);
                break;
            }
        }
        match leaked {
            Some(AuditViolation::LockLeak { line: 0x100, core, held_for, count: 1 }) => {
                assert_eq!(core, C0);
                assert!(held_for > 10);
            }
            other => panic!("expected LockLeak, got {other:?}"),
        }
        assert!(m.stats().audit.sweeps > 0);
    }

    #[test]
    fn diag_reports_locked_lines_and_busy_state() {
        let mut m = sys(2);
        m.read(C0, 1, 0x100, true, true);
        run_until_resp(&mut m, C0, 1000);
        // Remote GetX parks on the locked line; the dir entry stays busy.
        m.store_acquire(C1, 2, 0x100);
        for _ in 0..200 {
            m.tick();
        }
        let d = m.diag();
        assert_eq!(d.locked, vec![(0, 0x100, 1)]);
        assert!(d.busy_lines.contains(&0x100));
        let text = d.to_string();
        assert!(text.contains("0x100") && text.contains("c0"), "got: {text}");
    }

    // ---- Fault injection: invariants hold, schedules are reproducible ----

    /// A contended lock/unlock workload under the aggressive chaos preset,
    /// auditing every round. Returns (final cycle, final stats).
    fn chaos_run(seed: u64) -> (Cycle, MemStats) {
        chaos_run_on(seed, crate::NocConfig::default())
    }

    fn chaos_run_on(seed: u64, noc: crate::NocConfig) -> (Cycle, MemStats) {
        let mut cfg = MemConfig::tiny();
        cfg.chaos = crate::ChaosConfig::stress(seed);
        cfg.audit = crate::AuditConfig::on();
        cfg.noc = noc;
        let mut m = MemorySystem::new(cfg, 2, GuestMem::new(1 << 16));
        for round in 0..6u64 {
            let addr = 0x400 + round * 0x40;
            m.read(C0, round * 10 + 1, addr, true, true);
            run_until_resp(&mut m, C0, 100_000);
            m.read(C1, round * 10 + 2, 0x2000 + round * 0x40, false, false);
            run_until_resp(&mut m, C1, 100_000);
            assert!(
                m.try_store_perform(C0, round, addr, round, false, true),
                "locked line must stay writable under chaos"
            );
            m.audit().expect("invariants must hold under chaos");
        }
        for _ in 0..200_000 {
            if m.pending_events() == 0 {
                break;
            }
            m.tick();
            m.audit().expect("invariants must hold while draining");
        }
        assert_eq!(m.pending_events(), 0, "chaos must not wedge the protocol");
        (m.now(), m.stats())
    }

    #[test]
    fn chaos_stress_preserves_invariants_and_is_deterministic() {
        let (t1, s1) = chaos_run(42);
        let (t2, s2) = chaos_run(42);
        assert_eq!(t1, t2, "same seed must reproduce the same schedule");
        assert_eq!(s1, s2, "same seed must reproduce identical stats");
        assert!(s1.chaos.delayed_events > 0, "jitter must actually fire");
        assert!(s1.chaos.storms > 0, "storms must actually fire");
        assert!(s1.chaos.storm_evictions > 0, "storms must evict entries");
    }

    #[test]
    fn chaos_plus_contention_preserves_invariants_and_is_deterministic() {
        // Fault injection composed with bandwidth contention: the audit
        // runs every round inside chaos_run_on, so this is the SWMR/
        // inclusion regression for the chaos-in-the-NoC relocation.
        let noc = crate::NocConfig::contended(1);
        let (t1, s1) = chaos_run_on(42, noc);
        let (t2, s2) = chaos_run_on(42, noc);
        assert_eq!(t1, t2, "chaos + contention must reproduce the same schedule");
        assert_eq!(s1, s2, "chaos + contention must reproduce identical stats");
        assert!(s1.chaos.delayed_events > 0, "jitter must fire through the contended xbar");
        assert!(s1.noc.max_link_utilization() > 0.0, "links must report occupancy");
    }

    #[test]
    fn contended_interconnect_preserves_protocol_and_reports_stats() {
        let mut cfg = MemConfig::tiny();
        cfg.noc = crate::NocConfig::contended(1);
        let mut m = MemorySystem::new(cfg, 2, GuestMem::new(1 << 16));
        m.backing_mut().store(0x100, 77);
        m.read(C0, 1, 0x100, false, false);
        let r = run_until_resp(&mut m, C0, 5000);
        assert!(matches!(r[0], CoreResp::ReadResp { value: 77, .. }));
        // Remote ownership transfer still works under contention.
        m.store_acquire(C1, 2, 0x100);
        run_until_resp(&mut m, C1, 5000);
        assert!(m.try_store_perform(C1, 1, 0x100, 5, false, false));
        let s = m.stats();
        assert_eq!(s.noc.policy, crate::XbarPolicy::Contended);
        assert_eq!(s.messages, s.noc.net_messages, "flat message count mirrors the NoC");
        assert!(s.noc.net_messages > 0);
        assert!(s.noc.local_deliveries > 0);
        assert!(s.noc.dir_ingress.messages > 0);
        assert!(s.noc.max_link_utilization() > 0.0);
    }

    #[test]
    fn contention_slows_cold_reads_monotonically() {
        let cold_read_cycles = |noc: crate::NocConfig| {
            let mut cfg = MemConfig::tiny();
            cfg.noc = noc;
            let mut m = MemorySystem::new(cfg, 1, GuestMem::new(1 << 16));
            m.read(C0, 1, 0x100, false, false);
            run_until_resp(&mut m, C0, 5000);
            m.now()
        };
        let ideal = cold_read_cycles(crate::NocConfig::default());
        let wide = cold_read_cycles(crate::NocConfig::contended(4));
        let narrow = cold_read_cycles(crate::NocConfig::contended(1));
        assert!(wide >= ideal, "serialization cannot beat the ideal xbar");
        assert!(narrow > wide, "bw=1 must pay more serialization than bw=4");
    }

    #[test]
    fn mshr_clamp_limits_outstanding_misses() {
        let mut cfg = MemConfig::tiny();
        cfg.chaos = crate::ChaosConfig {
            enabled: true,
            seed: 1,
            mshr_clamp: 2,
            ..crate::ChaosConfig::default()
        };
        let mut m = MemorySystem::new(cfg, 1, GuestMem::new(1 << 16));
        assert_eq!(m.read(C0, 1, 0x1000, false, false), ReqOutcome::Accepted);
        assert_eq!(m.read(C0, 2, 0x2000, false, false), ReqOutcome::Accepted);
        assert_eq!(
            m.read(C0, 3, 0x3000, false, false),
            ReqOutcome::Retry,
            "third miss must hit the clamped MSHR limit"
        );
    }
}
