//! The memory-system facade the cores talk to.
//!
//! Per simulated cycle the machine driver calls [`MemorySystem::tick`] first
//! (advancing time and processing due protocol events into per-core
//! outboxes), then ticks each core, which drains its outbox/notices and
//! issues new requests. Same-cycle core commands (store performs, lock and
//! unlock transfers) apply to controller state immediately, which closes the
//! read-then-lock race window without transient protocol states.

use crate::dir::{DirAction, Directory};
use crate::msgs::{CoreNotice, CoreResp, DirMsg, L1Msg, LatClass};
use crate::privcache::{Action, PrivCache, ReqOutcome};
use crate::stats::MemStats;
use crate::wheel::Wheel;
use crate::{CoreId, Cycle, Line, MemConfig};
use fa_isa::interp::GuestMem;
use fa_isa::{Addr, Word};

#[derive(Clone, Copy, Debug)]
enum Ev {
    ToDir(DirMsg),
    ToL1(CoreId, L1Msg),
    ReadDone {
        core: CoreId,
        seq: u64,
        addr: Addr,
        class: LatClass,
        had_write_perm: bool,
        locked: bool,
    },
    StoreReady {
        core: CoreId,
        seq: u64,
        line: Line,
    },
}

/// The full memory hierarchy for `n` cores plus the global backing store.
#[derive(Debug)]
pub struct MemorySystem {
    cfg: MemConfig,
    now: Cycle,
    wheel: Wheel<Ev>,
    caches: Vec<PrivCache>,
    dir: Directory,
    backing: GuestMem,
    outbox: Vec<Vec<CoreResp>>,
    notices: Vec<Vec<CoreNotice>>,
    stats: MemStats,
    trace_line: Option<Line>,
}

impl MemorySystem {
    /// Creates a memory system for `n_cores` cores over `backing`.
    pub fn new(cfg: MemConfig, n_cores: usize, backing: GuestMem) -> MemorySystem {
        MemorySystem {
            caches: (0..n_cores).map(|i| PrivCache::new(CoreId(i as u16), &cfg)).collect(),
            dir: Directory::new(&cfg),
            backing,
            outbox: vec![Vec::new(); n_cores],
            notices: vec![Vec::new(); n_cores],
            stats: MemStats::new(n_cores),
            now: 0,
            wheel: Wheel::new(),
            cfg,
            trace_line: std::env::var("FA_TRACE_LINE")
                .ok()
                .and_then(|s| u64::from_str_radix(s.trim_start_matches("0x"), 16).ok()),
        }
    }

    fn trace(&self, line: Line, msg: impl FnOnce() -> String) {
        if self.trace_line == Some(line) {
            eprintln!("[{:>8}] {}", self.now, msg());
        }
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.caches.len()
    }

    /// The configuration in use.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Read access to guest memory (workload setup / result checking).
    pub fn backing(&self) -> &GuestMem {
        &self.backing
    }

    /// Write access to guest memory (workload initialization only — writing
    /// mid-simulation would bypass coherence).
    pub fn backing_mut(&mut self) -> &mut GuestMem {
        &mut self.backing
    }

    /// Advances one cycle and processes all protocol events now due.
    pub fn tick(&mut self) {
        self.now += 1;
        // Retry fills stalled on all-ways-locked sets.
        for i in 0..self.caches.len() {
            let mut acts = Vec::new();
            self.caches[i].retry_stalled_fills(&mut acts);
            self.apply_cache_actions(i, acts);
        }
        while let Some(ev) = self.wheel.pop_due(self.now) {
            self.process(ev);
        }
    }

    fn process(&mut self, ev: Ev) {
        match ev {
            Ev::ToDir(msg) => {
                let mut dout = Vec::new();
                self.dir.handle(msg, &mut dout);
                for a in dout {
                    match a {
                        DirAction::ToL1 { core, msg, extra } => {
                            self.stats.messages += 1;
                            self.wheel.schedule(
                                self.now + extra + self.cfg.net_lat,
                                Ev::ToL1(core, msg),
                            );
                        }
                        DirAction::Redispatch(req) => {
                            self.wheel.schedule(self.now + 1, Ev::ToDir(DirMsg::Req(req)));
                        }
                    }
                }
            }
            Ev::ToL1(core, msg) => {
                let mut acts = Vec::new();
                self.caches[core.index()].handle_ext(msg, &mut acts);
                self.apply_cache_actions(core.index(), acts);
            }
            Ev::ReadDone { core, seq, addr, class, had_write_perm, locked } => {
                let c = &mut self.stats.cores[core.index()];
                match class {
                    LatClass::L1 => c.l1_hits += 1,
                    LatClass::L2 => c.l2_hits += 1,
                    LatClass::Llc => c.llc_hits += 1,
                    LatClass::Mem => c.mem_accesses += 1,
                    LatClass::Remote => c.remote_transfers += 1,
                }
                let value = self.backing.load(addr);
                self.trace(fa_isa::line_of(addr), || {
                    format!("{core:?} ReadDone seq={seq} addr={addr:#x} val={value} locked={locked}")
                });
                self.outbox[core.index()].push(CoreResp::ReadResp {
                    seq,
                    addr,
                    value,
                    class,
                    had_write_perm,
                    locked,
                });
            }
            Ev::StoreReady { core, seq, line } => {
                self.outbox[core.index()].push(CoreResp::StoreReady { seq, line });
            }
        }
    }

    fn apply_cache_actions(&mut self, core: usize, actions: Vec<Action>) {
        for a in actions {
            match a {
                Action::ReadDone { delay, seq, addr, class, had_write_perm, locked } => {
                    self.wheel.schedule(
                        self.now + delay,
                        Ev::ReadDone {
                            core: CoreId(core as u16),
                            seq,
                            addr,
                            class,
                            had_write_perm,
                            locked,
                        },
                    );
                }
                Action::StoreReady { delay, seq, line } => {
                    self.wheel.schedule(
                        self.now + delay,
                        Ev::StoreReady { core: CoreId(core as u16), seq, line },
                    );
                }
                Action::ToDir(msg) => {
                    self.stats.messages += 1;
                    self.wheel.schedule(self.now + self.cfg.net_lat, Ev::ToDir(msg));
                }
                Action::LineLost { line, remote_write } => {
                    self.notices[core].push(CoreNotice::LineLost { line, remote_write });
                }
            }
        }
    }

    // ---- Core-facing port (called during the core's tick) ----

    /// Issues a demand read. `exclusive` requests write permission
    /// (load_lock path); `lock_intent` locks the line at perform time.
    pub fn read(
        &mut self,
        core: CoreId,
        seq: u64,
        addr: Addr,
        exclusive: bool,
        lock_intent: bool,
    ) -> ReqOutcome {
        let mut acts = Vec::new();
        let r = self.caches[core.index()].read(seq, addr, exclusive, lock_intent, &mut acts);
        self.apply_cache_actions(core.index(), acts);
        r
    }

    /// Requests write permission for the store tagged `seq`.
    pub fn store_acquire(&mut self, core: CoreId, seq: u64, addr: Addr) -> ReqOutcome {
        let mut acts = Vec::new();
        let r = self.caches[core.index()].store_acquire(seq, addr, &mut acts);
        self.apply_cache_actions(core.index(), acts);
        r
    }

    /// Attempts to perform a store this cycle: requires the private cache to
    /// hold write permission. On success the backing store is written
    /// immediately (this *is* the store's perform). `lock` applies the
    /// `lock_on_access` responsibility; `unlock` releases one lock count
    /// (a store_unlock draining, §3.3).
    pub fn try_store_perform(
        &mut self,
        core: CoreId,
        addr: Addr,
        value: Word,
        lock: bool,
        unlock: bool,
    ) -> bool {
        let mut acts = Vec::new();
        let ok = self.caches[core.index()].try_store_perform(addr, lock, unlock, &mut acts);
        if ok {
            self.backing.store(addr, value);
            self.stats.cores[core.index()].stores_performed += 1;
            self.trace(fa_isa::line_of(addr), || {
                format!("{core:?} StorePerform addr={addr:#x} val={value} lock={lock} unlock={unlock}")
            });
        }
        self.apply_cache_actions(core.index(), acts);
        ok
    }

    /// Adds a lock count on `line` (load_lock performed on an
    /// already-present writable line, or a lock transfer during forwarding).
    pub fn lock_line(&mut self, core: CoreId, line: Line) {
        self.trace(line, || format!("{core:?} LockLine"));
        self.caches[core.index()].lock(line);
    }

    /// Releases one lock count on `line`; at zero, parked external requests
    /// replay (squash-driven unlock, store_unlock drain, or orphaned lock).
    ///
    /// # Panics
    ///
    /// Panics if the line is not locked by `core` — an AQ desync bug.
    pub fn unlock_line(&mut self, core: CoreId, line: Line) {
        self.trace(line, || format!("{core:?} UnlockLine (count {})", self.lock_count(core, line)));
        let mut acts = Vec::new();
        self.caches[core.index()].unlock(line, &mut acts);
        self.apply_cache_actions(core.index(), acts);
    }

    /// Takes this cycle's responses for `core`.
    pub fn drain_responses(&mut self, core: CoreId) -> Vec<CoreResp> {
        std::mem::take(&mut self.outbox[core.index()])
    }

    /// Takes this cycle's notices for `core`.
    pub fn drain_notices(&mut self, core: CoreId) -> Vec<CoreNotice> {
        std::mem::take(&mut self.notices[core.index()])
    }

    /// True if `core`'s private cache currently holds write permission.
    pub fn writable(&self, core: CoreId, line: Line) -> bool {
        self.caches[core.index()].writable(line)
    }

    /// True if `core` has `line` locked.
    pub fn is_locked(&self, core: CoreId, line: Line) -> bool {
        self.caches[core.index()].is_locked(line)
    }

    /// Lock count held by `core` on `line`.
    pub fn lock_count(&self, core: CoreId, line: Line) -> u32 {
        self.caches[core.index()].lock_count(line)
    }

    /// Number of protocol events still in flight (quiescence check).
    pub fn pending_events(&self) -> usize {
        self.wheel.len()
    }

    /// Snapshot of the statistics, merging controller counters.
    pub fn stats(&self) -> MemStats {
        let mut s = self.stats.clone();
        for (i, c) in self.caches.iter().enumerate() {
            let cs = &mut s.cores[i];
            cs.parked_on_lock = c.stat_parked;
            cs.evictions = c.stat_evictions;
            cs.fill_stalled_all_locked = c.stat_fill_stalled;
            cs.prefetches = c.stat_prefetches;
            cs.invals_received = c.stat_invals;
        }
        s.dir.requests = self.dir.stat_requests;
        s.dir.parked_busy = self.dir.stat_parked_busy;
        s.dir.invals_sent = self.dir.stat_invals_sent;
        s.dir.downgrades_sent = self.dir.stat_downgrades_sent;
        s.dir.entry_evictions = self.dir.stat_entry_evictions;
        s.dir.alloc_waits = self.dir.stat_alloc_waits;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C0: CoreId = CoreId(0);
    const C1: CoreId = CoreId(1);

    fn sys(n: usize) -> MemorySystem {
        MemorySystem::new(MemConfig::tiny(), n, GuestMem::new(1 << 16))
    }

    /// Ticks until `core` receives a response, with a safety bound.
    fn run_until_resp(m: &mut MemorySystem, core: CoreId, bound: u64) -> Vec<CoreResp> {
        for _ in 0..bound {
            m.tick();
            let r = m.drain_responses(core);
            if !r.is_empty() {
                return r;
            }
        }
        panic!("no response within {bound} cycles");
    }

    #[test]
    fn cold_read_round_trip_returns_value() {
        let mut m = sys(1);
        m.backing_mut().store(0x100, 77);
        assert_eq!(m.read(C0, 1, 0x100, false, false), ReqOutcome::Accepted);
        let resps = run_until_resp(&mut m, C0, 1000);
        match resps[0] {
            CoreResp::ReadResp { seq: 1, value, class, .. } => {
                assert_eq!(value, 77);
                assert_eq!(class, LatClass::Mem);
            }
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn second_read_hits_l1_fast() {
        let mut m = sys(1);
        m.read(C0, 1, 0x100, false, false);
        run_until_resp(&mut m, C0, 1000);
        let t0 = m.now();
        m.read(C0, 2, 0x108, false, false);
        let resps = run_until_resp(&mut m, C0, 100);
        assert!(m.now() - t0 <= m.config().l1_lat + 1);
        assert!(matches!(resps[0], CoreResp::ReadResp { class: LatClass::L1, .. }));
    }

    #[test]
    fn store_round_trip_and_perform() {
        let mut m = sys(1);
        assert_eq!(m.store_acquire(C0, 9, 0x200), ReqOutcome::Accepted);
        let resps = run_until_resp(&mut m, C0, 1000);
        assert!(matches!(resps[0], CoreResp::StoreReady { seq: 9, .. }));
        assert!(m.try_store_perform(C0, 0x200, 1234, false, false));
        assert_eq!(m.backing().load(0x200), 1234);
    }

    #[test]
    fn remote_write_invalidates_reader_with_notice() {
        let mut m = sys(2);
        // Core 0 reads the line.
        m.read(C0, 1, 0x100, false, false);
        run_until_resp(&mut m, C0, 1000);
        // Core 1 writes it.
        m.store_acquire(C1, 2, 0x100);
        run_until_resp(&mut m, C1, 2000);
        assert!(m.try_store_perform(C1, 0x100, 5, false, false));
        let notices = m.drain_notices(C0);
        assert!(
            notices.contains(&CoreNotice::LineLost { line: 0x100, remote_write: true }),
            "got {notices:?}"
        );
        // Core 0 re-reads and sees the new value.
        m.read(C0, 3, 0x100, false, false);
        let resps = run_until_resp(&mut m, C0, 2000);
        assert!(matches!(resps[0], CoreResp::ReadResp { value: 5, .. }));
    }

    #[test]
    fn locked_line_blocks_remote_getx_until_unlock() {
        let mut m = sys(2);
        // Core 0 takes the line with lock intent (a performing load_lock).
        m.read(C0, 1, 0x100, true, true);
        let r = run_until_resp(&mut m, C0, 1000);
        assert!(matches!(r[0], CoreResp::ReadResp { locked: true, .. }));
        assert!(m.is_locked(C0, 0x100));
        // Core 1 wants to write: its GetX parks at core 0.
        m.store_acquire(C1, 2, 0x100);
        for _ in 0..500 {
            m.tick();
        }
        assert!(
            m.drain_responses(C1).is_empty(),
            "store must not become ready while the line is locked"
        );
        // Unlock: parked Inv replays, core 1 gets permission.
        m.unlock_line(C0, 0x100);
        let r = run_until_resp(&mut m, C1, 1000);
        assert!(matches!(r[0], CoreResp::StoreReady { seq: 2, .. }));
        // Core 0 lost the line.
        let notices = m.drain_notices(C0);
        assert!(notices
            .iter()
            .any(|n| matches!(n, CoreNotice::LineLost { line: 0x100, remote_write: true })));
    }

    #[test]
    fn read_lock_then_store_unlock_round_trip() {
        let mut m = sys(2);
        m.backing_mut().store(0x300, 10);
        // Atomic on core 0: load_lock reads 10, store_unlock writes 11.
        m.read(C0, 1, 0x300, true, true);
        let r = run_until_resp(&mut m, C0, 1000);
        assert!(matches!(r[0], CoreResp::ReadResp { value: 10, locked: true, .. }));
        assert!(m.try_store_perform(C0, 0x300, 11, false, true));
        assert!(!m.is_locked(C0, 0x300));
        assert_eq!(m.backing().load(0x300), 11);
    }

    #[test]
    fn two_cores_reading_share_the_line() {
        let mut m = sys(2);
        m.read(C0, 1, 0x100, false, false);
        run_until_resp(&mut m, C0, 1000);
        m.read(C1, 2, 0x100, false, false);
        let r = run_until_resp(&mut m, C1, 2000);
        // Remote transfer: core 0 held it exclusively.
        assert!(matches!(r[0], CoreResp::ReadResp { class: LatClass::Remote, .. }));
        // Neither core may now write without a request.
        assert!(!m.writable(C0, 0x100) || !m.writable(C1, 0x100));
    }

    #[test]
    fn store_perform_fails_after_losing_permission() {
        let mut m = sys(2);
        m.store_acquire(C0, 1, 0x100);
        run_until_resp(&mut m, C0, 1000);
        // Core 1 steals the line.
        m.store_acquire(C1, 2, 0x100);
        run_until_resp(&mut m, C1, 2000);
        assert!(!m.try_store_perform(C0, 0x100, 1, false, false));
        assert!(m.try_store_perform(C1, 0x100, 2, false, false));
        assert_eq!(m.backing().load(0x100), 2);
    }

    #[test]
    fn stats_track_hit_classes() {
        let mut m = sys(1);
        m.read(C0, 1, 0x100, false, false);
        run_until_resp(&mut m, C0, 1000);
        m.read(C0, 2, 0x100, false, false);
        run_until_resp(&mut m, C0, 100);
        let s = m.stats();
        assert_eq!(s.cores[0].mem_accesses, 1);
        assert_eq!(s.cores[0].l1_hits, 1);
        assert!(s.messages >= 2);
    }

    #[test]
    fn deadlock_shape_two_locked_lines_cross_getx() {
        // The RMW-RMW deadlock substrate (paper Figure 5): each core locks a
        // line and then requests the other's. Neither request completes; both
        // park. Progress requires an unlock — exactly what the core-level
        // watchdog provides.
        let mut m = sys(2);
        m.read(C0, 1, 0x100, true, true);
        run_until_resp(&mut m, C0, 1000);
        m.read(C1, 2, 0x200, true, true);
        run_until_resp(&mut m, C1, 1000);
        // Cross requests.
        m.read(C0, 3, 0x200, true, true);
        m.read(C1, 4, 0x100, true, true);
        for _ in 0..2000 {
            m.tick();
        }
        assert!(m.drain_responses(C0).is_empty());
        assert!(m.drain_responses(C1).is_empty());
        // Core 0 squashes its atomic (watchdog): unlock line 0x100.
        m.unlock_line(C0, 0x100);
        let r = run_until_resp(&mut m, C1, 2000);
        assert!(matches!(r[0], CoreResp::ReadResp { seq: 4, locked: true, .. }));
        // Core 1 finishes both atomics; core 0 then proceeds.
        assert!(m.try_store_perform(C1, 0x100, 1, false, true));
        assert!(m.try_store_perform(C1, 0x200, 1, false, true));
        let r = run_until_resp(&mut m, C0, 4000);
        assert!(matches!(r[0], CoreResp::ReadResp { seq: 3, locked: true, .. }));
    }
}
