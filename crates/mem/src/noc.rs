//! The interconnect (NoC) layer: typed message delivery between the
//! private-cache controllers, the directory/LLC and the cores.
//!
//! Historically `system.rs` delivered every protocol message by scheduling
//! directly onto the event wheel with one fixed hop latency, splicing chaos
//! jitter in at each call site. This module makes the network a first-class
//! subsystem behind the [`Interconnect`] trait: the system hands each
//! outbound message to its crossbar **port** ([`Interconnect::send`]) and
//! drains deliveries with [`Interconnect::pop_due`]; the crossbar owns the
//! event wheel, the fault-injection engine, and all latency/bandwidth
//! modeling.
//!
//! Two implementations ship:
//!
//! - [`IdealXbar`] — infinite bandwidth, one fixed hop latency
//!   (`net_lat`). Reproduces the pre-refactor delivery schedule exactly:
//!   under the default configuration the whole simulator is bit-identical
//!   to the ad-hoc path (pinned by the golden-stats test in
//!   `crates/bench/tests/noc_golden.rs`).
//! - [`ContendedXbar`] — finite per-link bandwidth in flits/cycle, with
//!   per-port ingress/egress serialization and occupancy accounting, in the
//!   spirit of the GARNET crossbar the paper's gem5 setup uses. Control
//!   messages are one flit; grants carry a data payload
//!   ([`NocConfig::data_flits`]).
//!
//! # Arbitration determinism
//!
//! The contended crossbar arbitrates by **arrival order**: each link keeps a
//! busy-until horizon and serves messages in the order `send` observes them.
//! Because `send` is only ever invoked while draining the event wheel — a
//! min-heap keyed by `(cycle, insertion seq)` — that order is a pure
//! function of the simulation, which makes the arbitration a deterministic
//! round-robin keyed by `(cycle, seq)`: same configuration, same schedule,
//! bit-identical results at any host thread count.
//!
//! # Chaos relocation
//!
//! The [`ChaosEngine`](crate::chaos::ChaosEngine) lives *inside* the
//! interconnect: message jitter and directory-stall injection perturb the
//! injection time of each message before bandwidth arbitration, so fault
//! injection composes with contention (a jittered message also queues). The
//! jitter stream is drawn in send order, which the ideal crossbar preserves
//! exactly — chaos runs replay bit-for-bit across the refactor.

use crate::chaos::ChaosEngine;
use crate::msgs::{DirMsg, L1Msg, LatClass};
use crate::wheel::Wheel;
use crate::{CoreId, Cycle, Line, MemConfig};
use fa_isa::Addr;
use fa_trace::Hist;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Which crossbar model routes protocol messages.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum XbarPolicy {
    /// Fixed-latency, infinite-bandwidth crossbar (the paper's baseline
    /// network assumption and this repo's historical behavior).
    #[default]
    Ideal,
    /// Finite per-link bandwidth with ingress/egress serialization.
    Contended,
}

impl XbarPolicy {
    /// Stable lowercase label used in JSON and summary lines.
    pub const fn name(self) -> &'static str {
        match self {
            XbarPolicy::Ideal => "ideal",
            XbarPolicy::Contended => "contended",
        }
    }
}

/// Interconnect configuration. The default is the ideal crossbar, which is
/// bit-identical to the pre-NoC message path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NocConfig {
    /// Crossbar model.
    pub policy: XbarPolicy,
    /// Link bandwidth in flits/cycle (contended crossbar only; min 1).
    pub link_bw: u64,
    /// Flits in a data-bearing message (grants): a 64 B line over 16 B
    /// flits plus a head flit. Control messages are always one flit.
    pub data_flits: u64,
}

impl Default for NocConfig {
    fn default() -> NocConfig {
        NocConfig { policy: XbarPolicy::Ideal, link_bw: 2, data_flits: 5 }
    }
}

impl NocConfig {
    /// A contended crossbar with `link_bw` flits/cycle per link.
    pub fn contended(link_bw: u64) -> NocConfig {
        NocConfig { policy: XbarPolicy::Contended, link_bw: link_bw.max(1), ..NocConfig::default() }
    }
}

/// Buckets of the per-link queue-occupancy histogram: depth 0..=6 plus a
/// 7-or-deeper tail.
pub const QUEUE_BUCKETS: usize = 8;

/// Per-link counters (one physical port direction of the crossbar).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Messages serialized through this link.
    pub messages: u64,
    /// Flits carried.
    pub flits: u64,
    /// Cycles the link was occupied transmitting.
    pub busy_cycles: u64,
    /// Queue-occupancy histogram, sampled at each message's arrival:
    /// `queue_hist[d]` counts arrivals that found `d` messages still in
    /// flight ahead of them (last bucket is `QUEUE_BUCKETS - 1` or deeper).
    pub queue_hist: [u64; QUEUE_BUCKETS],
    /// Deepest queue any arrival observed.
    pub max_queue: u64,
}

impl LinkStats {
    /// Fraction of `elapsed` cycles this link spent transmitting.
    pub fn utilization(&self, elapsed: Cycle) -> f64 {
        self.busy_cycles as f64 / elapsed.max(1) as f64
    }
}

/// Network-layer statistics, surfaced through
/// [`MemStats`](crate::stats::MemStats). All counters are zero under the
/// ideal crossbar except the message/latency tallies.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NocStats {
    /// Crossbar model that produced these counters.
    pub policy: XbarPolicy,
    /// Configured link bandwidth (contended only; 0 for ideal).
    pub link_bw: u64,
    /// Cycle the snapshot was taken (denominator for utilizations).
    pub elapsed: Cycle,
    /// Network messages routed (requests + directory responses) — the
    /// energy model's message count.
    pub net_messages: u64,
    /// Core-local deliveries routed (read/store completion events).
    pub local_deliveries: u64,
    /// Grants delivered, by latency class (`LatClass::ALL` order).
    pub class_msgs: [u64; LatClass::ALL.len()],
    /// Total network cycles (hop + jitter + queuing + serialization) those
    /// grants spent in flight, by latency class.
    pub class_cycles: [u64; LatClass::ALL.len()],
    /// Distribution of delivered network latency across all grants (the
    /// same population `class_cycles` sums; log₂ buckets, deterministic
    /// merge).
    pub delivered_hist: Hist,
    /// Per-core request egress links (core → directory), contended only.
    pub req_links: Vec<LinkStats>,
    /// Per-core response ingress links (directory → core), contended only.
    pub resp_links: Vec<LinkStats>,
    /// The directory's shared ingress port, contended only.
    pub dir_ingress: LinkStats,
    /// The directory's shared egress port, contended only.
    pub dir_egress: LinkStats,
}

impl NocStats {
    /// Every link in a stable order: per-core request links, per-core
    /// response links, then the directory ingress/egress ports.
    pub fn links(&self) -> impl Iterator<Item = &LinkStats> {
        self.req_links
            .iter()
            .chain(self.resp_links.iter())
            .chain([&self.dir_ingress, &self.dir_egress])
    }

    /// Highest per-link utilization (0.0 under the ideal crossbar).
    pub fn max_link_utilization(&self) -> f64 {
        self.links().map(|l| l.utilization(self.elapsed)).fold(0.0, f64::max)
    }

    /// Deepest queue observed on any link.
    pub fn max_queue(&self) -> u64 {
        self.links().map(|l| l.max_queue).max().unwrap_or(0)
    }

    /// Queue-occupancy histogram summed over every link.
    pub fn queue_hist(&self) -> [u64; QUEUE_BUCKETS] {
        let mut h = [0u64; QUEUE_BUCKETS];
        for l in self.links() {
            for (acc, x) in h.iter_mut().zip(l.queue_hist.iter()) {
                *acc += x;
            }
        }
        h
    }

    /// Mean network latency of grant deliveries across all latency classes
    /// (hop + jitter + queuing + serialization; excludes directory/LLC/
    /// memory access time).
    pub fn avg_grant_latency(&self) -> f64 {
        let msgs: u64 = self.class_msgs.iter().sum();
        if msgs == 0 {
            return 0.0;
        }
        self.class_cycles.iter().sum::<u64>() as f64 / msgs as f64
    }

    /// Mean network latency of grants in one latency class.
    pub fn class_latency(&self, class: LatClass) -> f64 {
        let i = class.index();
        if self.class_msgs[i] == 0 {
            return 0.0;
        }
        self.class_cycles[i] as f64 / self.class_msgs[i] as f64
    }

    /// The stats as a single-line JSON object (stable field order). Hand-
    /// rolled because the vendored `serde` is derive-markers only.
    pub fn json(&self) -> String {
        let fmt_utils = |links: &[LinkStats]| {
            let parts: Vec<String> =
                links.iter().map(|l| format!("{:.4}", l.utilization(self.elapsed))).collect();
            parts.join(",")
        };
        let hist = self.queue_hist();
        let hist: Vec<String> = hist.iter().map(u64::to_string).collect();
        let class_lat: Vec<String> =
            LatClass::ALL.iter().map(|&c| format!("{:.3}", self.class_latency(c))).collect();
        format!(
            "{{\"policy\":\"{}\",\"bw\":{},\"net_messages\":{},\"local_deliveries\":{},\
             \"avg_grant_lat\":{:.3},\"class_lat\":[{}],\"max_link_util\":{:.4},\
             \"req_util\":[{}],\"resp_util\":[{}],\"dir_in_util\":{:.4},\
             \"dir_out_util\":{:.4},\"max_queue\":{},\"queue_hist\":[{}],\
             \"delivered_hist\":{}}}",
            self.policy.name(),
            self.link_bw,
            self.net_messages,
            self.local_deliveries,
            self.avg_grant_latency(),
            class_lat.join(","),
            self.max_link_utilization(),
            fmt_utils(&self.req_links),
            fmt_utils(&self.resp_links),
            self.dir_ingress.utilization(self.elapsed),
            self.dir_egress.utilization(self.elapsed),
            self.max_queue(),
            hist.join(","),
            self.delivered_hist.json(),
        )
    }
}

impl fmt::Display for NocStats {
    /// One-line summary so sweep/figure bins can print network utilization
    /// without JSON post-processing.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.policy {
            XbarPolicy::Ideal => write!(
                f,
                "noc[ideal]: {} net msgs, {} local deliveries, avg grant net lat {:.1}",
                self.net_messages,
                self.local_deliveries,
                self.avg_grant_latency()
            ),
            XbarPolicy::Contended => write!(
                f,
                "noc[contended bw={}]: {} net msgs, max link util {:.1}%, \
                 max queue {}, avg grant net lat {:.1}",
                self.link_bw,
                self.net_messages,
                self.max_link_utilization() * 100.0,
                self.max_queue(),
                self.avg_grant_latency()
            ),
        }
    }
}

/// An event routed through the interconnect: a network message (to the
/// directory or to a private cache) or a core-local completion delivery.
/// Local deliveries ride the same wheel so the global `(cycle, seq)` order
/// — and with it the chaos jitter stream — is preserved end to end.
#[derive(Clone, Copy, Debug)]
pub(crate) enum NocEv {
    /// A protocol message to the directory.
    ToDir(DirMsg),
    /// A protocol message to a private cache controller.
    ToL1(CoreId, L1Msg),
    /// A read performed; deliver the response to the core.
    ReadDone {
        core: CoreId,
        seq: u64,
        addr: Addr,
        class: LatClass,
        had_write_perm: bool,
        locked: bool,
        /// Directory park cycles carried through from the grant
        /// (attribution metadata for the core's atomic-latency split).
        park: u64,
    },
    /// Write permission obtained; deliver StoreReady to the core.
    StoreReady { core: CoreId, seq: u64, line: Line },
}

/// The source core of a directory-bound message (its request egress port).
fn dir_msg_src(m: &DirMsg) -> CoreId {
    match *m {
        DirMsg::Req(req) => req.from,
        DirMsg::InvAck { from, .. }
        | DirMsg::DownAck { from, .. }
        | DirMsg::Unblock { from, .. } => from,
    }
}

/// The latency class of a grant, if `msg` is one (grants are the
/// data-bearing messages; invalidations and downgrades are control).
fn grant_class(msg: &L1Msg) -> Option<LatClass> {
    match *msg {
        L1Msg::GrantS { class, .. } | L1Msg::GrantX { class, .. } => Some(class),
        L1Msg::Inv { .. } | L1Msg::Downgrade { .. } => None,
    }
}

/// A pluggable crossbar. The memory system pushes every outbound event
/// through [`send`](Interconnect::send) and drains due deliveries with
/// [`pop_due`](Interconnect::pop_due); the implementation decides latency,
/// bandwidth, queuing and fault injection.
pub(crate) trait Interconnect: fmt::Debug + Send {
    /// Routes `ev`. `extra` is the sender-side delay already accrued before
    /// injection: directory/LLC/memory access time for directory responses,
    /// cache pipeline latency for local completions, zero for requests.
    /// Network messages additionally pay hop latency, chaos jitter and (in
    /// the contended crossbar) link serialization and queuing.
    fn send(&mut self, now: Cycle, extra: Cycle, ev: NocEv);

    /// Schedules `ev` for delivery at exactly `at` — no latency, jitter or
    /// contention. Used for the directory's allocation-poll redispatch,
    /// which is a local retry rather than a network message (it is neither
    /// jittered nor counted).
    fn send_raw(&mut self, at: Cycle, ev: NocEv);

    /// Next delivery due at or before `now`, in `(cycle, seq)` order,
    /// paired with its injection cycle (send time plus sender-side `extra`)
    /// so the consumer can attribute delivered latency without re-deriving
    /// the crossbar's schedule.
    fn pop_due(&mut self, now: Cycle) -> Option<(Cycle, NocEv)>;

    /// Cycle of the earliest pending delivery.
    fn next_at(&self) -> Option<Cycle>;

    /// Deliveries still in flight.
    fn pending(&self) -> usize;

    /// The fault-injection engine (owned by the interconnect so jitter
    /// composes with contention).
    fn chaos(&self) -> &ChaosEngine;

    /// Mutable access for the storm scheduler.
    fn chaos_mut(&mut self) -> &mut ChaosEngine;

    /// True when idle cycles can be skipped: delivery times are computed at
    /// send time (busy-until horizons, not per-cycle arbitration), so both
    /// crossbars are skippable unless fault injection needs per-cycle
    /// storm checks.
    fn fast_forwardable(&self) -> bool;

    /// True while either of `core`'s links (request egress or response
    /// ingress) has a transmission horizon past `now` — i.e. the core's
    /// traffic is queued behind link serialization. Pure read used by the
    /// cycle-accounting layer; the ideal crossbar never backpressures.
    fn core_backpressured(&self, _core: usize, _now: Cycle) -> bool {
        false
    }

    /// Statistics snapshot at cycle `now`.
    fn stats(&self, now: Cycle) -> NocStats;
}

/// Builds the crossbar `cfg` selects, seeding it with `chaos`.
pub(crate) fn build(cfg: &MemConfig, n_cores: usize, chaos: ChaosEngine) -> Box<dyn Interconnect> {
    match cfg.noc.policy {
        XbarPolicy::Ideal => Box::new(IdealXbar::new(cfg.net_lat, chaos)),
        XbarPolicy::Contended => Box::new(ContendedXbar::new(cfg, n_cores, chaos)),
    }
}

/// Fixed-latency, infinite-bandwidth crossbar: every network message takes
/// exactly `net_lat` (plus chaos jitter), local deliveries take their
/// sender-side delay. Bit-identical to the pre-NoC delivery schedule.
#[derive(Debug)]
pub(crate) struct IdealXbar {
    net_lat: Cycle,
    wheel: Wheel<(Cycle, NocEv)>,
    chaos: ChaosEngine,
    net_messages: u64,
    local_deliveries: u64,
    class_msgs: [u64; LatClass::ALL.len()],
    class_cycles: [u64; LatClass::ALL.len()],
    delivered_hist: Hist,
}

impl IdealXbar {
    pub(crate) fn new(net_lat: Cycle, chaos: ChaosEngine) -> IdealXbar {
        IdealXbar {
            net_lat,
            wheel: Wheel::new(),
            chaos,
            net_messages: 0,
            local_deliveries: 0,
            class_msgs: [0; LatClass::ALL.len()],
            class_cycles: [0; LatClass::ALL.len()],
            delivered_hist: Hist::new(),
        }
    }
}

impl Interconnect for IdealXbar {
    fn send(&mut self, now: Cycle, extra: Cycle, ev: NocEv) {
        match ev {
            NocEv::ToDir(_) => {
                self.net_messages += 1;
                let jitter = self.chaos.event_jitter();
                self.wheel.schedule(now + extra + self.net_lat + jitter, (now + extra, ev));
            }
            NocEv::ToL1(_, msg) => {
                self.net_messages += 1;
                let jitter = self.chaos.dir_response_jitter();
                if let Some(class) = grant_class(&msg) {
                    self.class_msgs[class.index()] += 1;
                    self.class_cycles[class.index()] += self.net_lat + jitter;
                    self.delivered_hist.record(self.net_lat + jitter);
                }
                self.wheel.schedule(now + extra + self.net_lat + jitter, (now + extra, ev));
            }
            NocEv::ReadDone { .. } | NocEv::StoreReady { .. } => {
                self.local_deliveries += 1;
                let jitter = self.chaos.event_jitter();
                self.wheel.schedule(now + extra + jitter, (now + extra, ev));
            }
        }
    }

    fn send_raw(&mut self, at: Cycle, ev: NocEv) {
        self.wheel.schedule(at, (at, ev));
    }

    fn pop_due(&mut self, now: Cycle) -> Option<(Cycle, NocEv)> {
        self.wheel.pop_due(now)
    }

    fn next_at(&self) -> Option<Cycle> {
        self.wheel.next_at()
    }

    fn pending(&self) -> usize {
        self.wheel.len()
    }

    fn chaos(&self) -> &ChaosEngine {
        &self.chaos
    }

    fn chaos_mut(&mut self) -> &mut ChaosEngine {
        &mut self.chaos
    }

    fn fast_forwardable(&self) -> bool {
        !self.chaos.enabled()
    }

    fn stats(&self, now: Cycle) -> NocStats {
        NocStats {
            policy: XbarPolicy::Ideal,
            link_bw: 0,
            elapsed: now,
            net_messages: self.net_messages,
            local_deliveries: self.local_deliveries,
            class_msgs: self.class_msgs,
            class_cycles: self.class_cycles,
            delivered_hist: self.delivered_hist,
            ..NocStats::default()
        }
    }
}

/// One direction of one crossbar port: a busy-until horizon plus occupancy
/// accounting. Messages are served in arrival (`(cycle, seq)`) order.
#[derive(Debug, Default)]
struct Link {
    busy_until: Cycle,
    /// Completion times of messages accepted but possibly not yet clear,
    /// pruned lazily — its length at arrival is the queue-depth sample.
    inflight: VecDeque<Cycle>,
    stats: LinkStats,
}

impl Link {
    /// Serializes a `flits`-flit message through the link no earlier than
    /// `ready`, at `bw` flits/cycle. Returns the cycle the last flit
    /// clears.
    fn transmit(&mut self, ready: Cycle, flits: u64, bw: u64) -> Cycle {
        while self.inflight.front().is_some_and(|&t| t <= ready) {
            self.inflight.pop_front();
        }
        let depth = self.inflight.len() as u64;
        self.stats.queue_hist[(depth as usize).min(QUEUE_BUCKETS - 1)] += 1;
        self.stats.max_queue = self.stats.max_queue.max(depth);
        let start = self.busy_until.max(ready);
        let ser = flits.div_ceil(bw.max(1)).max(1);
        self.busy_until = start + ser;
        self.inflight.push_back(self.busy_until);
        self.stats.messages += 1;
        self.stats.flits += flits;
        self.stats.busy_cycles += ser;
        self.busy_until
    }
}

/// Flits in a control message (requests, acks, invalidations, downgrades).
const CTRL_FLITS: u64 = 1;

/// Finite-bandwidth crossbar. Each core owns a request egress link toward
/// the directory and a response ingress link from it; the directory owns a
/// shared ingress port and a shared egress port. A message serializes
/// through its source link, crosses the hop (`net_lat`), then serializes
/// through its destination port — so both endpoint bandwidth and the
/// directory's shared ports are contention points, as in a GARNET-style
/// crossbar. Chaos jitter perturbs the injection time before arbitration.
#[derive(Debug)]
pub(crate) struct ContendedXbar {
    net_lat: Cycle,
    bw: u64,
    data_flits: u64,
    wheel: Wheel<(Cycle, NocEv)>,
    chaos: ChaosEngine,
    net_messages: u64,
    local_deliveries: u64,
    class_msgs: [u64; LatClass::ALL.len()],
    class_cycles: [u64; LatClass::ALL.len()],
    delivered_hist: Hist,
    req_links: Vec<Link>,
    resp_links: Vec<Link>,
    dir_in: Link,
    dir_out: Link,
}

impl ContendedXbar {
    pub(crate) fn new(cfg: &MemConfig, n_cores: usize, chaos: ChaosEngine) -> ContendedXbar {
        ContendedXbar {
            net_lat: cfg.net_lat,
            bw: cfg.noc.link_bw.max(1),
            data_flits: cfg.noc.data_flits.max(1),
            wheel: Wheel::new(),
            chaos,
            net_messages: 0,
            local_deliveries: 0,
            class_msgs: [0; LatClass::ALL.len()],
            class_cycles: [0; LatClass::ALL.len()],
            delivered_hist: Hist::new(),
            req_links: (0..n_cores).map(|_| Link::default()).collect(),
            resp_links: (0..n_cores).map(|_| Link::default()).collect(),
            dir_in: Link::default(),
            dir_out: Link::default(),
        }
    }
}

impl Interconnect for ContendedXbar {
    fn send(&mut self, now: Cycle, extra: Cycle, ev: NocEv) {
        match ev {
            NocEv::ToDir(ref m) => {
                self.net_messages += 1;
                // Same rng call as the ideal path keeps the chaos stream
                // aligned across crossbar models.
                let jitter = self.chaos.event_jitter();
                let src = dir_msg_src(m).index();
                let inject = now + extra + jitter;
                let sent = self.req_links[src].transmit(inject, CTRL_FLITS, self.bw);
                let at = self.dir_in.transmit(sent + self.net_lat, CTRL_FLITS, self.bw);
                self.wheel.schedule(at, (now + extra, ev));
            }
            NocEv::ToL1(core, msg) => {
                self.net_messages += 1;
                let jitter = self.chaos.dir_response_jitter();
                let flits =
                    if grant_class(&msg).is_some() { self.data_flits } else { CTRL_FLITS };
                let inject = now + extra + jitter;
                let sent = self.dir_out.transmit(inject, flits, self.bw);
                let at = self.resp_links[core.index()].transmit(sent + self.net_lat, flits, self.bw);
                if let Some(class) = grant_class(&msg) {
                    self.class_msgs[class.index()] += 1;
                    self.class_cycles[class.index()] += at - (now + extra);
                    self.delivered_hist.record(at - (now + extra));
                }
                self.wheel.schedule(at, (now + extra, ev));
            }
            NocEv::ReadDone { .. } | NocEv::StoreReady { .. } => {
                self.local_deliveries += 1;
                let jitter = self.chaos.event_jitter();
                self.wheel.schedule(now + extra + jitter, (now + extra, ev));
            }
        }
    }

    fn send_raw(&mut self, at: Cycle, ev: NocEv) {
        self.wheel.schedule(at, (at, ev));
    }

    fn pop_due(&mut self, now: Cycle) -> Option<(Cycle, NocEv)> {
        self.wheel.pop_due(now)
    }

    fn next_at(&self) -> Option<Cycle> {
        self.wheel.next_at()
    }

    fn pending(&self) -> usize {
        self.wheel.len()
    }

    fn chaos(&self) -> &ChaosEngine {
        &self.chaos
    }

    fn chaos_mut(&mut self) -> &mut ChaosEngine {
        &mut self.chaos
    }

    fn fast_forwardable(&self) -> bool {
        // Busy-until horizons are event-driven; only per-cycle storm
        // scheduling forbids skipping idle spans.
        !self.chaos.enabled()
    }

    fn core_backpressured(&self, core: usize, now: Cycle) -> bool {
        self.req_links.get(core).is_some_and(|l| l.busy_until > now)
            || self.resp_links.get(core).is_some_and(|l| l.busy_until > now)
    }

    fn stats(&self, now: Cycle) -> NocStats {
        NocStats {
            policy: XbarPolicy::Contended,
            link_bw: self.bw,
            elapsed: now,
            net_messages: self.net_messages,
            local_deliveries: self.local_deliveries,
            class_msgs: self.class_msgs,
            class_cycles: self.class_cycles,
            delivered_hist: self.delivered_hist,
            req_links: self.req_links.iter().map(|l| l.stats.clone()).collect(),
            resp_links: self.resp_links.iter().map(|l| l.stats.clone()).collect(),
            dir_ingress: self.dir_in.stats.clone(),
            dir_egress: self.dir_out.stats.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::ChaosConfig;
    use crate::msgs::{DirReq, DirReqKind};

    fn quiet_chaos() -> ChaosEngine {
        ChaosEngine::new(ChaosConfig::default())
    }

    fn req(from: u16) -> NocEv {
        NocEv::ToDir(DirMsg::Req(DirReq { from: CoreId(from), line: 0x100, kind: DirReqKind::GetS }))
    }

    fn grant(core: u16, class: LatClass) -> NocEv {
        NocEv::ToL1(CoreId(core), L1Msg::GrantS { line: 0x100, class, park: 0 })
    }

    fn drain_times(x: &mut dyn Interconnect, horizon: Cycle) -> Vec<Cycle> {
        let mut out = Vec::new();
        for t in 0..=horizon {
            while x.pop_due(t).is_some() {
                out.push(t);
            }
        }
        out
    }

    #[test]
    fn ideal_xbar_delivers_at_fixed_latency() {
        let mut x = IdealXbar::new(8, quiet_chaos());
        x.send(10, 0, req(0));
        x.send(10, 5, grant(0, LatClass::Mem));
        assert_eq!(x.next_at(), Some(18));
        assert_eq!(drain_times(&mut x, 100), vec![18, 23]);
        let s = x.stats(100);
        assert_eq!(s.net_messages, 2);
        assert_eq!(s.class_msgs[LatClass::Mem.index()], 1);
        // Network latency excludes the sender-side `extra`.
        assert_eq!(s.class_cycles[LatClass::Mem.index()], 8);
        assert_eq!(s.max_link_utilization(), 0.0);
    }

    #[test]
    fn contended_xbar_serializes_on_shared_dir_port() {
        let cfg = MemConfig { noc: NocConfig::contended(1), ..MemConfig::default() };
        let mut x = ContendedXbar::new(&cfg, 4, quiet_chaos());
        // Four requests from different cores in the same cycle: egress
        // links are disjoint, but the directory ingress port serializes.
        for c in 0..4 {
            x.send(0, 0, req(c));
        }
        let times = drain_times(&mut x, 200);
        assert_eq!(times.len(), 4);
        assert!(times.windows(2).all(|w| w[1] > w[0]), "dir ingress must serialize: {times:?}");
        let s = x.stats(times[3]);
        assert_eq!(s.dir_ingress.messages, 4);
        assert!(s.dir_ingress.queue_hist[1..].iter().sum::<u64>() > 0, "arrivals must queue");
        assert!(s.max_queue() >= 1);
        assert!(s.max_link_utilization() > 0.0);
    }

    #[test]
    fn contended_grants_pay_data_serialization() {
        let cfg = MemConfig { noc: NocConfig::contended(1), ..MemConfig::default() };
        let mut x = ContendedXbar::new(&cfg, 2, quiet_chaos());
        x.send(0, 0, grant(0, LatClass::Llc));
        // One 5-flit grant at 1 flit/cycle: 5 (egress) + 8 (hop) + 5
        // (ingress) = cycle 18.
        assert_eq!(x.next_at(), Some(18));
        let s = x.stats(18);
        assert_eq!(s.class_msgs[LatClass::Llc.index()], 1);
        assert_eq!(s.class_cycles[LatClass::Llc.index()], 18);
        assert_eq!(s.dir_egress.flits, 5);
        assert!(s.avg_grant_latency() > 8.0);
    }

    #[test]
    fn wider_links_deliver_sooner() {
        let narrow = MemConfig { noc: NocConfig::contended(1), ..MemConfig::default() };
        let wide = MemConfig { noc: NocConfig::contended(4), ..MemConfig::default() };
        let mut xn = ContendedXbar::new(&narrow, 2, quiet_chaos());
        let mut xw = ContendedXbar::new(&wide, 2, quiet_chaos());
        for x in [&mut xn as &mut dyn Interconnect, &mut xw] {
            x.send(0, 0, grant(0, LatClass::Mem));
            x.send(0, 0, grant(1, LatClass::Mem));
        }
        let (tn, tw) = (drain_times(&mut xn, 300), drain_times(&mut xw, 300));
        assert!(tw.last() < tn.last(), "bw=4 must finish before bw=1: {tw:?} vs {tn:?}");
    }

    #[test]
    fn same_sends_same_schedule_and_stats() {
        let cfg = MemConfig { noc: NocConfig::contended(2), ..MemConfig::default() };
        let mk = || {
            let mut x =
                ContendedXbar::new(&cfg, 2, ChaosEngine::new(ChaosConfig::stress(77)));
            for i in 0..20u16 {
                x.send(i as u64, (i % 3) as u64, req(i % 2));
                x.send(i as u64, 2, grant(i % 2, LatClass::Remote));
            }
            (drain_times(&mut x, 2000), x.stats(2000))
        };
        let (ta, sa) = mk();
        let (tb, sb) = mk();
        assert_eq!(ta, tb, "delivery schedule must be deterministic");
        assert_eq!(sa, sb, "stats must be deterministic");
        assert!(sa.net_messages == 40);
    }

    #[test]
    fn redispatch_bypasses_latency_and_counters() {
        for x in [
            &mut IdealXbar::new(8, quiet_chaos()) as &mut dyn Interconnect,
            &mut ContendedXbar::new(&MemConfig::default(), 1, quiet_chaos()),
        ] {
            x.send_raw(7, req(0));
            assert_eq!(x.next_at(), Some(7));
            assert_eq!(x.stats(10).net_messages, 0, "redispatch is not a network message");
        }
    }

    #[test]
    fn backpressure_probe_tracks_link_horizons() {
        let mut ideal = IdealXbar::new(8, quiet_chaos());
        ideal.send(0, 0, req(0));
        assert!(!ideal.core_backpressured(0, 0), "ideal xbar never backpressures");

        let cfg = MemConfig { noc: NocConfig::contended(1), ..MemConfig::default() };
        let mut x = ContendedXbar::new(&cfg, 2, quiet_chaos());
        x.send(0, 0, grant(0, LatClass::Mem));
        assert!(x.core_backpressured(0, 0), "resp link busy while the grant serializes");
        assert!(!x.core_backpressured(1, 0), "other cores' links are idle");
        let last = *drain_times(&mut x, 300).last().expect("grant delivers");
        assert!(!x.core_backpressured(0, last), "horizon passed, probe clears");
    }

    #[test]
    fn stats_json_and_display_shape() {
        let cfg = MemConfig { noc: NocConfig::contended(2), ..MemConfig::default() };
        let mut x = ContendedXbar::new(&cfg, 2, quiet_chaos());
        x.send(0, 0, req(0));
        x.send(0, 0, grant(1, LatClass::Mem));
        let s = x.stats(50);
        let j = s.json();
        assert!(j.starts_with("{\"policy\":\"contended\",\"bw\":2,"), "got {j}");
        for key in ["\"req_util\":[", "\"resp_util\":[", "\"queue_hist\":[", "\"max_queue\":"] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert!(s.to_string().starts_with("noc[contended bw=2]:"));
        let ideal = IdealXbar::new(8, quiet_chaos()).stats(10);
        assert!(ideal.to_string().starts_with("noc[ideal]:"));
        assert!(ideal.json().starts_with("{\"policy\":\"ideal\","));
    }
}
