//! Generic set-associative tag array with LRU replacement and pinned
//! (locked) ways.

use crate::Line;
use fa_isa::LINE_SHIFT;

/// One way of a set.
#[derive(Clone, Debug)]
struct Way<S> {
    line: Line,
    state: S,
    /// Higher = more recently used.
    lru: u64,
}

/// A set-associative tag array mapping lines to per-line state `S`.
///
/// Victim selection skips lines for which the caller's `pinned` predicate
/// holds — the mechanism behind the paper's "a locked cacheline is never
/// selected as the victim" rule (§3.2.4).
#[derive(Clone, Debug)]
pub struct TagArray<S> {
    sets: Vec<Vec<Way<S>>>,
    ways: usize,
    tick: u64,
}

impl<S> TagArray<S> {
    /// Creates an array with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics unless `sets` is a nonzero power of two and `ways > 0`.
    pub fn new(sets: usize, ways: usize) -> TagArray<S> {
        assert!(sets.is_power_of_two() && sets > 0, "sets must be a power of two");
        assert!(ways > 0, "ways must be nonzero");
        TagArray { sets: (0..sets).map(|_| Vec::with_capacity(ways)).collect(), ways, tick: 0 }
    }

    #[inline]
    fn set_of(&self, line: Line) -> usize {
        ((line >> LINE_SHIFT) as usize) & (self.sets.len() - 1)
    }

    /// The set index `line` maps to.
    pub fn set_index(&self, line: Line) -> usize {
        self.set_of(line)
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    pub fn num_ways(&self) -> usize {
        self.ways
    }

    /// Looks up `line`, updating recency on hit.
    pub fn touch(&mut self, line: Line) -> Option<&mut S> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(line);
        self.sets[set].iter_mut().find(|w| w.line == line).map(|w| {
            w.lru = tick;
            &mut w.state
        })
    }

    /// Looks up `line` without updating recency.
    pub fn peek(&self, line: Line) -> Option<&S> {
        let set = self.set_of(line);
        self.sets[set].iter().find(|w| w.line == line).map(|w| &w.state)
    }

    /// Mutable lookup without updating recency.
    pub fn peek_mut(&mut self, line: Line) -> Option<&mut S> {
        let set = self.set_of(line);
        self.sets[set].iter_mut().find(|w| w.line == line).map(|w| &mut w.state)
    }

    /// True if `line` is present.
    pub fn contains(&self, line: Line) -> bool {
        self.peek(line).is_some()
    }

    /// Inserts `line` with `state`, evicting the LRU way whose line does not
    /// satisfy `pinned` if the set is full.
    ///
    /// Returns `Ok(evicted)` — `None` when a free way existed, `Some((line,
    /// state))` of the victim otherwise — or `Err(InsertFullError)` when every
    /// way is pinned and no victim exists (the caller must retry later; for
    /// locked lines this is a deliberate deadlock candidate resolved by the
    /// core watchdog).
    ///
    /// # Panics
    ///
    /// Panics if `line` is already present (callers always check first).
    pub fn insert(
        &mut self,
        line: Line,
        state: S,
        mut pinned: impl FnMut(Line) -> bool,
    ) -> Result<Option<(Line, S)>, InsertFullError> {
        assert!(!self.contains(line), "inserting already-present line {line:#x}");
        self.tick += 1;
        let tick = self.tick;
        let set_idx = self.set_of(line);
        let set = &mut self.sets[set_idx];
        if set.len() < self.ways {
            set.push(Way { line, state, lru: tick });
            return Ok(None);
        }
        let victim = set
            .iter()
            .enumerate()
            .filter(|(_, w)| !pinned(w.line))
            .min_by_key(|(_, w)| w.lru)
            .map(|(i, _)| i);
        match victim {
            Some(i) => {
                let old = std::mem::replace(&mut set[i], Way { line, state, lru: tick });
                Ok(Some((old.line, old.state)))
            }
            None => Err(InsertFullError),
        }
    }

    /// Removes `line`, returning its state.
    pub fn remove(&mut self, line: Line) -> Option<S> {
        let set = self.set_of(line);
        let pos = self.sets[set].iter().position(|w| w.line == line)?;
        Some(self.sets[set].swap_remove(pos).state)
    }

    /// Iterates over (line, state) pairs in the set `line` maps to.
    pub fn set_lines(&self, line: Line) -> impl Iterator<Item = (Line, &S)> + '_ {
        self.sets[self.set_of(line)].iter().map(|w| (w.line, &w.state))
    }

    /// Total number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// True when no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over all resident (line, state) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Line, &S)> + '_ {
        self.sets.iter().flatten().map(|w| (w.line, &w.state))
    }
}

/// Returned by [`TagArray::insert`] when every way in the target set is
/// pinned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InsertFullError;

impl std::fmt::Display for InsertFullError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "all ways in the target set are pinned")
    }
}

impl std::error::Error for InsertFullError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(set: u64, tag: u64, sets: u64) -> Line {
        (tag * sets + set) << LINE_SHIFT
    }

    #[test]
    fn hit_and_miss() {
        let mut t: TagArray<u32> = TagArray::new(4, 2);
        assert!(t.touch(line(1, 0, 4)).is_none());
        t.insert(line(1, 0, 4), 7, |_| false).unwrap();
        assert_eq!(t.touch(line(1, 0, 4)), Some(&mut 7));
        assert!(t.contains(line(1, 0, 4)));
        assert!(!t.contains(line(2, 0, 4)));
    }

    #[test]
    fn lru_eviction_order() {
        let mut t: TagArray<u32> = TagArray::new(4, 2);
        let a = line(0, 1, 4);
        let b = line(0, 2, 4);
        let c = line(0, 3, 4);
        t.insert(a, 1, |_| false).unwrap();
        t.insert(b, 2, |_| false).unwrap();
        t.touch(a); // b is now LRU
        let evicted = t.insert(c, 3, |_| false).unwrap();
        assert_eq!(evicted, Some((b, 2)));
        assert!(t.contains(a) && t.contains(c));
    }

    #[test]
    fn pinned_ways_are_skipped() {
        let mut t: TagArray<u32> = TagArray::new(4, 2);
        let a = line(0, 1, 4);
        let b = line(0, 2, 4);
        let c = line(0, 3, 4);
        t.insert(a, 1, |_| false).unwrap();
        t.insert(b, 2, |_| false).unwrap();
        // `a` is LRU but pinned: `b` must be the victim.
        let evicted = t.insert(c, 3, |l| l == a).unwrap();
        assert_eq!(evicted, Some((b, 2)));
    }

    #[test]
    fn all_pinned_reports_full() {
        let mut t: TagArray<u32> = TagArray::new(4, 2);
        let a = line(0, 1, 4);
        let b = line(0, 2, 4);
        t.insert(a, 1, |_| false).unwrap();
        t.insert(b, 2, |_| false).unwrap();
        assert_eq!(t.insert(line(0, 3, 4), 3, |_| true), Err(InsertFullError));
        // Still resident, untouched.
        assert!(t.contains(a) && t.contains(b));
    }

    #[test]
    fn remove_and_len() {
        let mut t: TagArray<u32> = TagArray::new(4, 2);
        let a = line(2, 1, 4);
        t.insert(a, 9, |_| false).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(a), Some(9));
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
        assert_eq!(t.remove(a), None);
    }

    #[test]
    fn set_lines_lists_resident_set_members() {
        let mut t: TagArray<u32> = TagArray::new(4, 2);
        let a = line(3, 1, 4);
        let b = line(3, 2, 4);
        t.insert(a, 1, |_| false).unwrap();
        t.insert(b, 2, |_| false).unwrap();
        let mut lines: Vec<Line> = t.set_lines(a).map(|(l, _)| l).collect();
        lines.sort_unstable();
        let mut expect = vec![a, b];
        expect.sort_unstable();
        assert_eq!(lines, expect);
    }

    #[test]
    #[should_panic]
    fn double_insert_panics() {
        let mut t: TagArray<u32> = TagArray::new(4, 2);
        t.insert(64, 1, |_| false).unwrap();
        let _ = t.insert(64, 2, |_| false);
    }
}
