//! Message types: core-facing responses/notices and internal protocol
//! messages.

use crate::{CoreId, Line};
use fa_isa::{Addr, Word};
use serde::{Deserialize, Serialize};

/// Where a read was satisfied — used for latency-class statistics and the
/// paper's Figure-13 locality metric.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum LatClass {
    /// Hit in the L1D.
    L1,
    /// Hit in the private L2.
    L2,
    /// Served by the shared LLC.
    Llc,
    /// Served by main memory.
    Mem,
    /// Transferred from a remote private cache.
    Remote,
}

impl LatClass {
    /// Every class, in display/index order.
    pub const ALL: [LatClass; 5] =
        [LatClass::L1, LatClass::L2, LatClass::Llc, LatClass::Mem, LatClass::Remote];

    /// Dense index (position in [`LatClass::ALL`]) — used by the NoC
    /// layer's per-class latency breakdown.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            LatClass::L1 => 0,
            LatClass::L2 => 1,
            LatClass::Llc => 2,
            LatClass::Mem => 3,
            LatClass::Remote => 4,
        }
    }

    /// Stable lowercase label.
    pub const fn name(self) -> &'static str {
        match self {
            LatClass::L1 => "l1",
            LatClass::L2 => "l2",
            LatClass::Llc => "llc",
            LatClass::Mem => "mem",
            LatClass::Remote => "remote",
        }
    }
}

/// Response delivered to a core's LSU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoreResp {
    /// A read (load or load_lock) performed.
    ReadResp {
        /// The request tag the core supplied.
        seq: u64,
        /// Word address read.
        addr: Addr,
        /// Value at perform time.
        value: Word,
        /// Write-id of the store that produced `value` (0 = initial
        /// memory). Only populated under `CheckMode::Tso`, for the
        /// axiomatic checker's rf edges.
        writer: u64,
        /// Where the line was found.
        class: LatClass,
        /// True if the private cache already held write permission when the
        /// request arrived (Figure-13 locality numerator, together with SQ
        /// forwarding which the core tracks itself).
        had_write_perm: bool,
        /// True if the controller locked the line on behalf of this request
        /// (lock-intent reads). If the requesting micro-op was squashed
        /// meanwhile, the core must release the lock immediately.
        locked: bool,
        /// Interconnect transfer cycles of the final fill leg (NoC
        /// injection stamp → delivery; 0 for local hits). Passive
        /// attribution metadata — never consulted by protocol logic.
        xfer: u64,
        /// Cycles the underlying directory request spent parked behind a
        /// busy entry before being granted (0 when served without
        /// parking). Passive attribution metadata.
        park: u64,
    },
    /// Write permission is held for this line; the store at the buffer head
    /// may perform.
    StoreReady {
        /// The request tag the core supplied.
        seq: u64,
        /// Line now writable.
        line: Line,
    },
}

/// Asynchronous notification to a core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoreNotice {
    /// The private cache lost `line` (invalidation or downgrade from a
    /// remote write, or a capacity eviction). Drives (a) the squash of
    /// speculatively performed loads — the TSO load→load repair of
    /// Gharachorloo et al. that the paper relies on — and (b) MonitorWait
    /// wakeups.
    LineLost {
        /// The departed line.
        line: Line,
        /// True when caused by a remote writer (invalidation), false for a
        /// local capacity eviction or a downgrade to shared.
        remote_write: bool,
    },
}

/// Requests travelling from a private cache controller to the directory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum DirReqKind {
    /// Read permission (MESI GetS).
    GetS,
    /// Write permission (MESI GetX / upgrade).
    GetX,
}

/// A directory request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct DirReq {
    pub from: CoreId,
    pub line: Line,
    pub kind: DirReqKind,
}

/// Messages delivered to a private cache controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum L1Msg {
    /// Directory grants shared permission. `park` is how long the request
    /// sat parked behind a busy directory entry (attribution metadata).
    GrantS { line: Line, class: LatClass, park: u64 },
    /// Directory grants exclusive permission. `park` as in `GrantS`.
    GrantX { line: Line, class: LatClass, park: u64 },
    /// Invalidate `line` (remote GetX or directory eviction); reply InvAck.
    Inv { line: Line },
    /// Downgrade `line` M/E → S (remote GetS); reply DownAck.
    Downgrade { line: Line },
}

/// Messages delivered to the directory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum DirMsg {
    /// A coherence request from a core.
    Req(DirReq),
    /// Invalidation acknowledged by `from`.
    InvAck { from: CoreId, line: Line },
    /// Downgrade acknowledged by `from`; `had_line` is false if the copy had
    /// been silently evicted.
    DownAck { from: CoreId, line: Line, had_line: bool },
    /// The grantee finished filling `line`: the directory may start the next
    /// transaction (gem5-Ruby-style "Unblock"). Without it, an invalidation
    /// for the next requester could overtake a slow grant in flight and
    /// leave the grantee with a stale exclusive copy.
    Unblock { from: CoreId, line: Line },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latclass_is_hashable_and_comparable() {
        use std::collections::HashSet;
        let s: HashSet<LatClass> = LatClass::ALL.into_iter().collect();
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn latclass_index_matches_all_order() {
        for (i, c) in LatClass::ALL.into_iter().enumerate() {
            assert_eq!(c.index(), i);
            assert!(!c.name().is_empty());
        }
    }

    #[test]
    fn notices_carry_remote_write_flag() {
        let n = CoreNotice::LineLost { line: 64, remote_write: true };
        match n {
            CoreNotice::LineLost { line, remote_write } => {
                assert_eq!(line, 64);
                assert!(remote_write);
            }
        }
    }
}
