//! Deterministic fault injection for the memory system.
//!
//! The paper's central risk (§3.2.5) is that locked L1 lines turn protocol
//! corner cases — parked invalidations, all-ways-locked sets, inclusion
//! evictions — into deadlock or livelock fuel. This module *manufactures*
//! those corners on demand so the watchdog and the invariant auditor are
//! exercised by adversarial interleavings rather than only by hand-written
//! shapes.
//!
//! Every perturbation is **behaviour-preserving**: it changes *when* things
//! happen, never *what* is architecturally allowed to happen. TSO outcomes
//! therefore remain legal under any chaos configuration:
//!
//! - **Message jitter** delays protocol messages and response deliveries by
//!   a bounded pseudo-random amount. Per-line directory serialization (the
//!   `Unblock` protocol) means at most one protocol-critical message is in
//!   flight per (line, core), so jitter can only reorder *independent*
//!   messages — and requests arriving "early" simply park, which the
//!   protocol already handles.
//! - **Directory response stalls** add extra latency to directory→L1
//!   messages specifically, widening the windows in which requests pile up
//!   parked behind busy lines.
//! - **MSHR clamping** shrinks the effective MSHR count, forcing
//!   [`ReqOutcome::Retry`](crate::privcache::ReqOutcome) pressure and MSHR
//!   merging far below the configured capacity.
//! - **Back-invalidation storms** periodically force inclusion evictions of
//!   idle directory entries, exactly the §3.2.5 mechanism by which a
//!   directory conflict reaches into private caches and collides with
//!   locked lines.
//!
//! Everything is driven by a seeded [`SplitMix64`] stream, so a given
//! `(seed, config)` pair reproduces the identical cycle-level schedule.
//!
//! The live [`ChaosEngine`] is owned by the interconnect ([`crate::noc`]),
//! not by `system.rs`: jitter and directory stalls perturb a message's
//! *injection* time before bandwidth arbitration, so fault injection
//! composes with contention on the contended crossbar, and the jitter
//! stream is drawn in send order — which the ideal crossbar preserves
//! exactly, keeping pre-relocation chaos runs bit-identical.

use serde::{Deserialize, Serialize};

/// SplitMix64 — the deterministic pseudo-random stream behind every chaos
/// decision (and the `sim` crate's litmus fuzzer). Tiny, fast and stable
/// across platforms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream from `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; returns 0 for `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// Fault-injection configuration. `ChaosConfig::default()` is fully off and
/// adds zero per-event cost; [`ChaosConfig::stress`] is the aggressive
/// preset the fuzzer and the chaos tests use.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Master switch. When false every other field is ignored.
    pub enabled: bool,
    /// Seed for the deterministic perturbation stream.
    pub seed: u64,
    /// Maximum extra cycles added to any scheduled memory-system event
    /// (protocol messages and core response deliveries). 0 = no jitter.
    pub msg_jitter: u64,
    /// Maximum *additional* extra cycles on directory→L1 messages (grant
    /// and invalidation stalls). 0 = none.
    pub dir_stall: u64,
    /// Clamp the per-cache MSHR count to this many entries (0 = off).
    /// Values above the configured `mshrs` have no effect.
    pub mshr_clamp: usize,
    /// Force an inclusion eviction of up to [`ChaosConfig::storm_burst`]
    /// idle directory entries every this many cycles (0 = off).
    pub storm_interval: u64,
    /// Entries back-invalidated per storm tick.
    pub storm_burst: u32,
}

impl ChaosConfig {
    /// Aggressive preset: jitter every hop, stall the directory, choke the
    /// MSHRs and trigger frequent back-invalidation storms.
    pub fn stress(seed: u64) -> ChaosConfig {
        ChaosConfig {
            enabled: true,
            seed,
            msg_jitter: 24,
            dir_stall: 40,
            mshr_clamp: 2,
            storm_interval: 150,
            storm_burst: 4,
        }
    }

    /// Jitter-only preset: bounded latency noise with no structural
    /// pressure. Useful to separate timing sensitivity from capacity
    /// effects.
    pub fn jitter_only(seed: u64, max: u64) -> ChaosConfig {
        ChaosConfig { enabled: true, seed, msg_jitter: max, ..ChaosConfig::default() }
    }
}

/// Counters for the injected faults, surfaced through
/// [`MemStats`](crate::stats::MemStats).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosStats {
    /// Total extra cycles injected into event schedules.
    pub jitter_cycles: u64,
    /// Events that received a nonzero delay.
    pub delayed_events: u64,
    /// Back-invalidation storms triggered.
    pub storms: u64,
    /// Directory entries force-evicted by storms.
    pub storm_evictions: u64,
}

/// Live fault-injection state owned by the memory system.
#[derive(Clone, Debug)]
pub struct ChaosEngine {
    cfg: ChaosConfig,
    rng: SplitMix64,
    pub(crate) stats: ChaosStats,
}

impl ChaosEngine {
    /// Builds the engine for `cfg` (inert when `cfg.enabled` is false).
    pub fn new(cfg: ChaosConfig) -> ChaosEngine {
        let rng = SplitMix64::new(cfg.seed ^ 0xC4A0_5C4A_05C4_A05C);
        ChaosEngine { cfg, rng, stats: ChaosStats::default() }
    }

    /// The active configuration.
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// True when any perturbation is active.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Extra delay for a generic scheduled event.
    #[inline]
    pub(crate) fn event_jitter(&mut self) -> u64 {
        if !self.cfg.enabled || self.cfg.msg_jitter == 0 {
            return 0;
        }
        let delay = self.rng.below(self.cfg.msg_jitter + 1);
        self.charge(delay)
    }

    /// Extra delay for a directory→L1 message (jitter + directory stall).
    #[inline]
    pub(crate) fn dir_response_jitter(&mut self) -> u64 {
        if !self.cfg.enabled {
            return 0;
        }
        let bound = self.cfg.msg_jitter + self.cfg.dir_stall;
        if bound == 0 {
            return 0;
        }
        let delay = self.rng.below(bound + 1);
        self.charge(delay)
    }

    /// Effective MSHR capacity under the clamp.
    pub(crate) fn effective_mshrs(&self, configured: usize) -> usize {
        if self.cfg.enabled && self.cfg.mshr_clamp > 0 {
            configured.min(self.cfg.mshr_clamp)
        } else {
            configured
        }
    }

    /// Number of directory entries to storm-evict this cycle (usually 0).
    pub(crate) fn storm_due(&mut self, now: u64) -> u32 {
        if !self.cfg.enabled
            || self.cfg.storm_interval == 0
            || self.cfg.storm_burst == 0
            || now == 0
            || !now.is_multiple_of(self.cfg.storm_interval)
        {
            return 0;
        }
        self.stats.storms += 1;
        // Vary the burst size so storms do not resonate with workload loops.
        1 + self.rng.below(self.cfg.storm_burst as u64) as u32
    }

    fn charge(&mut self, delay: u64) -> u64 {
        if delay > 0 {
            self.stats.jitter_cycles += delay;
            self.stats.delayed_events += 1;
        }
        delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_varied() {
        let mut a = SplitMix64::new(1234);
        let mut b = SplitMix64::new(1234);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
        assert!((0..100).all(|_| a.below(7) < 7));
    }

    #[test]
    fn disabled_engine_injects_nothing() {
        let mut e = ChaosEngine::new(ChaosConfig::default());
        for now in 0..1000 {
            assert_eq!(e.event_jitter(), 0);
            assert_eq!(e.dir_response_jitter(), 0);
            assert_eq!(e.storm_due(now), 0);
        }
        assert_eq!(e.effective_mshrs(16), 16);
        assert_eq!(e.stats, ChaosStats::default());
    }

    #[test]
    fn stress_engine_jitters_within_bounds() {
        let cfg = ChaosConfig::stress(7);
        let mut e = ChaosEngine::new(cfg.clone());
        for _ in 0..1000 {
            assert!(e.event_jitter() <= cfg.msg_jitter);
            assert!(e.dir_response_jitter() <= cfg.msg_jitter + cfg.dir_stall);
        }
        assert!(e.stats.delayed_events > 0);
        assert!(e.stats.jitter_cycles >= e.stats.delayed_events);
        assert_eq!(e.effective_mshrs(16), cfg.mshr_clamp);
        assert_eq!(e.effective_mshrs(1), 1);
    }

    #[test]
    fn storms_fire_on_interval_only() {
        let mut e = ChaosEngine::new(ChaosConfig::stress(3));
        let interval = e.config().storm_interval;
        let burst = e.config().storm_burst;
        assert_eq!(e.storm_due(0), 0, "no storm at cycle 0");
        assert_eq!(e.storm_due(interval - 1), 0);
        let n = e.storm_due(interval);
        assert!(n >= 1 && n <= burst);
        assert_eq!(e.stats.storms, 1);
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = ChaosEngine::new(ChaosConfig::stress(99));
        let mut b = ChaosEngine::new(ChaosConfig::stress(99));
        for now in 1..500 {
            assert_eq!(a.event_jitter(), b.event_jitter());
            assert_eq!(a.dir_response_jitter(), b.dir_response_jitter());
            assert_eq!(a.storm_due(now), b.storm_due(now));
        }
        assert_eq!(a.stats, b.stats);
    }
}
